// swve — command-line front end.
//
//   swve align  [options] QUERY.fa TARGET.fa     pairwise alignment
//   swve search [options] QUERY.fa DB.fa         scenario-1 database search
//   swve batch  [options] QUERIES.fa DB.fa       scenario-2 batched server
//   swve info                                    CPU/ISA/build report
//
// All three alignment commands go through service::AlignService — the same
// async, instrumented front door a server embedding would use — so
// `--metrics` and `--deadline-ms` work uniformly.
//
// Common options:
//   --matrix NAME        blosum45/50/62/80/90, pam120/250, dna_iupac
//   --match N --mismatch N   fixed scoring instead of a matrix
//   --open N --extend N  affine gap penalties (default 11/1)
//   --linear N           linear gap penalty N
//   --band N             banded alignment |i-j| <= N
//   --isa NAME           scalar/sse41/avx2/avx512/auto
//   --width 8|16|32|auto DP integer width
//   --top K              hits per query (search/batch; default 10)
//   --threads N          worker threads (default: hardware)
//   --deadline-ms N      fail the request if not done within N ms
//   --metrics            dump the service metrics snapshot to stderr
//   --metrics-format=F   metrics exposition format: text | prom | json
//                        (implies --metrics)
//   --trace-out FILE     write a Chrome trace-event JSON (Perfetto /
//                        chrome://tracing) of the request's spans to FILE
//   --sample-period-ms N run the live profiling sampler every N ms and dump
//                        its frequency/GCUPS time series to stderr
//   --topdown-every N    attach a top-down pipeline analysis to 1-in-N
//                        requests and report it on stderr
//   --flight-out FILE    install the flight recorder: on SIGSEGV/SIGABRT or
//                        SIGTERM/SIGINT, dump trace ring + metrics snapshot +
//                        in-flight request table to FILE (also flushes
//                        --trace-out), then exit/re-raise
//   --slo-ms N           latency SLO: the watchdog emits a structured
//                        slow-request record for any request executing
//                        longer than N ms
//   --no-pmu             disable span-scoped hardware-counter attribution
//   --dna                parse sequences with the DNA alphabet
#include <chrono>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <memory>
#include <string>

#include "swve.hpp"

using namespace swve;

namespace {

struct CliOptions {
  align::AlignConfig cfg;
  std::string matrix_name = "blosum62";
  size_t top_k = 10;
  unsigned threads = 0;
  bool dna = false;
  bool metrics = false;
  obs::MetricsFormat metrics_format = obs::MetricsFormat::Text;
  std::string trace_out;
  int sample_period_ms = 0;  // 0 = sampler off
  uint32_t topdown_every = 0;  // 0 = no top-down sampling
  int deadline_ms = 0;  // 0 = none
  std::string flight_out;    // flight-recorder dump path ("" = not installed)
  int slo_ms = 0;            // 0 = watchdog off
  bool no_pmu = false;
  std::vector<std::string> positional;
};

[[noreturn]] void usage(const char* msg = nullptr) {
  if (msg) std::fprintf(stderr, "error: %s\n\n", msg);
  std::fputs(
      "usage: swve <align|search|batch|info> [options] FILES...\n"
      "  swve align  QUERY.fa TARGET.fa   pairwise (first record of each)\n"
      "  swve search QUERY.fa DB.fa       one query vs database, top hits\n"
      "  swve batch  QUERIES.fa DB.fa     many queries vs database\n"
      "  swve info                        CPU / ISA / calibration report\n"
      "options: --matrix NAME | --match N --mismatch N | --open N --extend N\n"
      "         --linear N | --band N | --isa NAME | --width 8|16|32|auto\n"
      "         --top K | --threads N | --deadline-ms N | --metrics | --dna\n"
      "         --metrics-format=text|prom|json | --trace-out FILE\n"
      "         --sample-period-ms N | --topdown-every N\n"
      "         --flight-out FILE | --slo-ms N | --no-pmu\n",
      stderr);
  std::exit(2);
}

CliOptions parse(int argc, char** argv) {
  CliOptions o;
  bool fixed = false;
  for (int i = 2; i < argc; ++i) {
    std::string s = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) usage(("missing value for " + s).c_str());
      return argv[++i];
    };
    if (s == "--matrix") o.matrix_name = next();
    else if (s == "--match") { o.cfg.match = std::atoi(next()); fixed = true; }
    else if (s == "--mismatch") { o.cfg.mismatch = std::atoi(next()); fixed = true; }
    else if (s == "--open") o.cfg.gap_open = std::atoi(next());
    else if (s == "--extend") o.cfg.gap_extend = std::atoi(next());
    else if (s == "--linear") {
      o.cfg.gap_model = core::GapModel::Linear;
      o.cfg.gap_extend = std::atoi(next());
    } else if (s == "--band") o.cfg.band = std::atoi(next());
    else if (s == "--isa") o.cfg.isa = simd::isa_from_string(next());
    else if (s == "--width") {
      std::string w = next();
      o.cfg.width = w == "8"    ? core::Width::W8
                    : w == "16" ? core::Width::W16
                    : w == "32" ? core::Width::W32
                                : core::Width::Adaptive;
    } else if (s == "--top") o.top_k = std::strtoul(next(), nullptr, 10);
    else if (s == "--threads") o.threads = static_cast<unsigned>(std::atoi(next()));
    else if (s == "--deadline-ms") o.deadline_ms = std::atoi(next());
    else if (s == "--metrics") o.metrics = true;
    else if (s.rfind("--metrics-format", 0) == 0) {
      const std::string v = s.size() > 16 && s[16] == '=' ? s.substr(17) : next();
      auto fmt = obs::metrics_format_from_string(v);
      if (!fmt) usage(("unknown metrics format " + v).c_str());
      o.metrics_format = *fmt;
      o.metrics = true;
    }
    else if (s == "--trace-out") o.trace_out = next();
    else if (s == "--flight-out") o.flight_out = next();
    else if (s == "--slo-ms") o.slo_ms = std::atoi(next());
    else if (s == "--no-pmu") o.no_pmu = true;
    else if (s == "--sample-period-ms") o.sample_period_ms = std::atoi(next());
    else if (s == "--topdown-every")
      o.topdown_every = static_cast<uint32_t>(std::strtoul(next(), nullptr, 10));
    else if (s == "--dna") o.dna = true;
    else if (s == "--help") usage();
    else if (s.rfind("--", 0) == 0) usage(("unknown option " + s).c_str());
    else o.positional.push_back(s);
  }
  if (fixed) {
    o.cfg.scheme = core::ScoreScheme::Fixed;
  } else {
    const matrix::ScoreMatrix* m = matrix::ScoreMatrix::find(o.matrix_name);
    if (!m) usage(("unknown matrix " + o.matrix_name).c_str());
    o.cfg.matrix = m;
    if (m->alphabet().kind() == seq::AlphabetKind::Dna) o.dna = true;
  }
  o.cfg.validate();
  return o;
}

const seq::Alphabet& alpha(const CliOptions& o) {
  return o.dna ? seq::Alphabet::dna() : seq::Alphabet::protein();
}

service::ServiceOptions service_options(const CliOptions& o,
                                        obs::TraceSink* sink) {
  service::ServiceOptions so;
  so.pool_threads = o.threads;
  so.config = o.cfg;
  so.default_top_k = o.top_k;
  so.trace_sink = sink;
  so.sampler_period_s = o.sample_period_ms > 0 ? o.sample_period_ms * 1e-3 : 0;
  so.topdown_every_n = o.topdown_every;
  so.pmu_attribution = !o.no_pmu;
  so.slow_request_slo_s = o.slo_ms > 0 ? o.slo_ms * 1e-3 : 0;
  return so;
}

/// Sink for the service to record into when --trace-out or --flight-out was
/// given (must be constructed before — and so outlive — the AlignService).
std::unique_ptr<obs::TraceSink> make_sink(const CliOptions& o) {
  return o.trace_out.empty() && o.flight_out.empty()
             ? nullptr
             : std::make_unique<obs::TraceSink>();
}

/// Install the flight recorder over the service's observability state, so
/// SIGTERM/SIGINT (and crashes) flush --trace-out and dump the black box
/// instead of losing everything. No-op when neither --flight-out nor
/// --trace-out was given. The recorder must be declared after the service:
/// its destructor uninstalls the handlers before the service (whose
/// registry/in-flight table they read) is torn down.
void install_recorder(obs::FlightRecorder& rec, const CliOptions& o,
                      service::AlignService& svc, obs::TraceSink* sink) {
  if (o.flight_out.empty() && o.trace_out.empty()) return;
  obs::FlightRecorderOptions fo;
  fo.path = o.flight_out;
  fo.trace_out = o.trace_out;
  fo.sink = sink;
  fo.registry = svc.registry();
  fo.inflight = svc.inflight();
  rec.install(fo);
}

void apply_deadline(service::RequestOptions& ro, const CliOptions& o) {
  if (o.deadline_ms > 0)
    ro.deadline = std::chrono::milliseconds(o.deadline_ms);
}

void report_topdown(const service::RequestTrace& tr) {
  if (!tr.topdown) return;
  const perf::TopDownResult& td = *tr.topdown;
  std::fprintf(stderr,
               "topdown (%s): retiring %.1f%%, frontend %.1f%%, "
               "bad-spec %.1f%%, backend %.1f%% (memory %.1f%%, core %.1f%%), "
               "ipc %.2f\n",
               td.source.c_str(), 100 * td.retiring, 100 * td.frontend_bound,
               100 * td.bad_speculation, 100 * td.backend_bound,
               100 * td.memory_bound, 100 * td.core_bound, td.ipc);
}

/// End-of-command observability dump: metrics in the chosen format, the
/// sampler time series, and the Chrome trace file.
void dump_observability(const CliOptions& o, const service::AlignService& svc,
                        const obs::TraceSink* sink) {
  if (o.metrics)
    std::fputs(svc.dump_metrics(o.metrics_format).c_str(), stderr);
  // The service keeps a telemetry sampler alive by default now; the dump
  // stays tied to the explicit --sample-period-ms opt-in.
  if (o.sample_period_ms > 0 && svc.sampler())
    std::fprintf(stderr, "sampler: %s", svc.sampler()->json().c_str());
  if (sink && !o.trace_out.empty()) {
    const std::string json = sink->chrome_trace_json();
    std::FILE* f = std::fopen(o.trace_out.c_str(), "w");
    if (!f) {
      std::fprintf(stderr, "swve: cannot write %s\n", o.trace_out.c_str());
      return;
    }
    std::fwrite(json.data(), 1, json.size(), f);
    std::fclose(f);
    std::fprintf(stderr, "trace: wrote %zu events to %s\n",
                 sink->snapshot_events().size(), o.trace_out.c_str());
  }
}

int cmd_info() {
  const auto& f = simd::cpu_features();
  std::printf("swve %s\n", "1.0.0");
  std::printf("cpu: sse4.1=%d avx2=%d avx512(bw/vl)=%d vbmi=%d, %u hardware threads\n",
              f.sse41, f.avx2, f.avx512bw_vl, f.avx512vbmi, f.hardware_threads);
  std::printf("resolved ISA: %s\n", simd::isa_name(simd::resolve_isa(simd::Isa::Auto)));
  perf::FreqSample fs = perf::measure_frequency(50);
  std::printf("effective frequency: %.2f GHz\n", fs.ghz);
  std::printf("built-in matrices:");
  for (const auto& n : matrix::ScoreMatrix::builtin_names()) std::printf(" %s", n.c_str());
  std::printf(" dna_iupac\n");
  return 0;
}

int cmd_align(const CliOptions& o) {
  if (o.positional.size() != 2) usage("align needs QUERY.fa TARGET.fa");
  auto qs = seq::read_fasta_file(o.positional[0], alpha(o));
  auto ts = seq::read_fasta_file(o.positional[1], alpha(o));
  if (qs.empty() || ts.empty()) usage("empty FASTA input");

  auto sink = make_sink(o);
  service::ServiceOptions so = service_options(o, sink.get());
  so.config.traceback = true;
  so.config.max_traceback_cells = uint64_t{1} << 34;
  service::AlignService svc(so);
  obs::FlightRecorder rec;
  install_recorder(rec, o, svc, sink.get());

  service::AlignRequest rq;
  rq.query = qs[0];
  rq.reference = ts[0];
  apply_deadline(rq.options, o);
  service::AlignResponse resp = svc.submit(std::move(rq)).get();
  const core::Alignment& a = resp.alignment;

  align::AlignmentStats st = align::alignment_stats(qs[0], ts[0], a);
  std::printf("%s x %s: score %d, identity %.1f%%, cigar %s\n", qs[0].id().c_str(),
              ts[0].id().c_str(), a.score, 100 * st.identity(),
              a.cigar.to_string().c_str());
  std::printf("query [%d,%d]  target [%d,%d]  (%s, %d-bit%s)\n\n", a.begin_query,
              a.end_query, a.begin_ref, a.end_ref, simd::isa_name(a.isa_used),
              a.width_used == core::Width::W8 ? 8
              : a.width_used == core::Width::W16 ? 16 : 32,
              a.saturated_8 ? ", 8-bit saturated" : "");
  std::fputs(align::format_alignment(qs[0], ts[0], a).c_str(), stdout);
  report_topdown(resp.trace);
  dump_observability(o, svc, sink.get());
  return 0;
}

int cmd_search(const CliOptions& o) {
  if (o.positional.size() != 2) usage("search needs QUERY.fa DB.fa");
  auto qs = seq::read_fasta_file(o.positional[0], alpha(o));
  if (qs.empty()) usage("empty query FASTA");
  seq::SequenceDatabase db =
      seq::SequenceDatabase::from_fasta_file(o.positional[1], alpha(o));

  auto sink = make_sink(o);
  service::AlignService svc(db, service_options(o, sink.get()));
  obs::FlightRecorder rec;
  install_recorder(rec, o, svc, sink.get());
  service::SearchRequest rq;
  rq.query = qs[0];
  apply_deadline(rq.options, o);
  service::SearchResponse resp = svc.submit_search(std::move(rq)).get();
  const align::SearchResult& res = resp.result;

  std::fprintf(stderr, "searched %zu sequences (%llu residues) in %.3f s, %.2f GCUPS\n",
               db.size(), static_cast<unsigned long long>(db.total_residues()),
               res.seconds, res.gcups());
  std::printf("query\ttarget\tscore\tend_q\tend_t\n");
  for (const auto& h : res.hits)
    std::printf("%s\t%s\t%d\t%d\t%d\n", qs[0].id().c_str(),
                db[h.seq_index].id().c_str(), h.score, h.end_query, h.end_ref);
  report_topdown(resp.trace);
  dump_observability(o, svc, sink.get());
  return 0;
}

int cmd_batch(const CliOptions& o) {
  if (o.positional.size() != 2) usage("batch needs QUERIES.fa DB.fa");
  auto qs = seq::read_fasta_file(o.positional[0], alpha(o));
  if (qs.empty()) usage("empty queries FASTA");
  seq::SequenceDatabase db =
      seq::SequenceDatabase::from_fasta_file(o.positional[1], alpha(o));

  auto sink = make_sink(o);
  service::AlignService svc(db, service_options(o, sink.get()));
  obs::FlightRecorder rec;
  install_recorder(rec, o, svc, sink.get());
  service::BatchRequest rq;
  rq.queries = qs;
  apply_deadline(rq.options, o);
  perf::Stopwatch sw;
  service::BatchResponse resp = svc.submit_batch(std::move(rq)).get();

  uint64_t cells = 0;
  for (const auto& q : qs) cells += q.length() * db.total_residues();
  std::fprintf(stderr, "%zu queries x %zu sequences in %.3f s, %.2f GCUPS (%d lanes)\n",
               qs.size(), db.size(), sw.seconds(), perf::gcups(cells, sw.seconds()),
               svc.batch_lanes());
  std::printf("query\ttarget\tscore\n");
  for (size_t qi = 0; qi < qs.size(); ++qi)
    for (const auto& h : resp.results[qi].result.hits)
      std::printf("%s\t%s\t%d\n", qs[qi].id().c_str(), db[h.seq_index].id().c_str(),
                  h.score);
  report_topdown(resp.trace);
  dump_observability(o, svc, sink.get());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) usage();
  const std::string cmd = argv[1];
  try {
    if (cmd == "info") return cmd_info();
    CliOptions o = parse(argc, argv);
    if (cmd == "align") return cmd_align(o);
    if (cmd == "search") return cmd_search(o);
    if (cmd == "batch") return cmd_batch(o);
    usage(("unknown command " + cmd).c_str());
  } catch (const service::ServiceError& e) {
    std::fprintf(stderr, "swve: request failed (%s): %s\n",
                 core::ConfigError::code_name(e.code()), e.what());
    return 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "swve: %s\n", e.what());
    return 1;
  }
}
