// swve_client — command-line client for a running swve_server.
//
//   swve_client ping    [net options]
//   swve_client align   [options] QUERY.fa TARGET.fa
//   swve_client search  [options] QUERY.fa
//   swve_client batch   [options] QUERIES.fa
//   swve_client metrics [--json | --watch S] [net options]
//   swve_client bench   [options]      closed-loop QPS/latency microbench
//
// Sequences are encoded client-side and sent as binary protocol v1 frames,
// so responses are bit-identical to in-process AlignService calls against
// the server's database. Provenance of each response is reported: [cache]
// for LRU hits, [coalesced] for singleflight joins.
//
// Net options:
//   --host ADDR          server address (default 127.0.0.1)
//   --port N             server port (default 7731)
//   --timeout S          socket timeout (default 10)
//   --tier interactive|standard|bulk   QoS tier (default standard)
//   --deadline-ms N      request deadline
//   --no-cache           ask the server to bypass its result cache
//   --top K              hits per query (search/batch)
//   --dna                DNA alphabet (default protein)
//   --repeat N           send the request N times (cache/dedup demos)
//   --trace              send requests wire-traced: each response's
//                        server-side breakdown (queue/exec/serialize vs.
//                        network) is printed; bench reports the split
//
// bench options (plus net options above):
//   --requests N         closed-loop requests to send (default 200)
//   --length N           synthetic query length (default 320)
//   --distinct N         distinct queries cycled through (default 1)
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "net/json.hpp"
#include "swve.hpp"

using namespace swve;

namespace {

struct Options {
  std::string host = "127.0.0.1";
  uint16_t port = 7731;
  double timeout_s = 10.0;
  service::QosTier tier = service::QosTier::Standard;
  int deadline_ms = 0;
  bool no_cache = false;
  size_t top_k = 10;
  bool dna = false;
  int repeat = 1;
  bool batch = false;  ///< search: batch engine (the server's sharded path)
  bool json = false;
  bool trace = false;
  double watch_s = 0;  ///< metrics: poll interval; 0 = single dump
  // bench
  int requests = 200;
  uint32_t length = 320;
  int distinct = 1;
  std::vector<std::string> positional;
};

[[noreturn]] void usage(const char* msg = nullptr) {
  if (msg != nullptr) std::fprintf(stderr, "error: %s\n\n", msg);
  std::fputs(
      "usage: swve_client <ping|align|search|batch|metrics|bench> [options]\n"
      "  --host ADDR | --port N | --timeout S | --tier NAME\n"
      "  --deadline-ms N | --no-cache | --top K | --dna | --repeat N\n"
      "  --batch (search: batch engine — the sharded path when the server\n"
      "           runs --shards)\n"
      "  --trace (server timing breakdown)\n"
      "  --json | --watch S (metrics) | --requests N --length N "
      "--distinct N (bench)\n",
      stderr);
  std::exit(2);
}

Options parse(int argc, char** argv) {
  Options o;
  for (int i = 2; i < argc; ++i) {
    const std::string s = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) usage(("missing value for " + s).c_str());
      return argv[++i];
    };
    if (s == "--host") o.host = next();
    else if (s == "--port") o.port = static_cast<uint16_t>(std::atoi(next()));
    else if (s == "--timeout") o.timeout_s = std::atof(next());
    else if (s == "--tier") {
      const std::string t = next();
      if (t == "interactive") o.tier = service::QosTier::Interactive;
      else if (t == "standard") o.tier = service::QosTier::Standard;
      else if (t == "bulk") o.tier = service::QosTier::Bulk;
      else usage(("unknown tier " + t).c_str());
    } else if (s == "--deadline-ms") o.deadline_ms = std::atoi(next());
    else if (s == "--no-cache") o.no_cache = true;
    else if (s == "--top") o.top_k = std::strtoul(next(), nullptr, 10);
    else if (s == "--dna") o.dna = true;
    else if (s == "--repeat") o.repeat = std::atoi(next());
    else if (s == "--batch") o.batch = true;
    else if (s == "--json") o.json = true;
    else if (s == "--watch") o.watch_s = std::atof(next());
    else if (s == "--trace") o.trace = true;
    else if (s == "--requests") o.requests = std::atoi(next());
    else if (s == "--length")
      o.length = static_cast<uint32_t>(std::atoi(next()));
    else if (s == "--distinct") o.distinct = std::atoi(next());
    else if (s == "--help" || s == "-h") usage();
    else if (s.rfind("--", 0) == 0) usage(("unknown option " + s).c_str());
    else o.positional.push_back(s);
  }
  return o;
}

service::RequestOptions request_options(const Options& o) {
  service::RequestOptions ro;
  ro.tier = o.tier;
  ro.top_k = o.top_k;
  if (o.deadline_ms > 0)
    ro.deadline = std::chrono::milliseconds(o.deadline_ms);
  return ro;
}

const char* provenance(uint8_t flags) {
  if ((flags & net::kFlagFromCache) != 0) return " [cache]";
  if ((flags & net::kFlagCoalesced) != 0) return " [coalesced]";
  return "";
}

const char* timing_source(uint8_t source) {
  return source == 1 ? "cache" : source == 2 ? "coalesced" : "executed";
}

/// --trace: decompose the measured RTT into the server's reported
/// queue/exec/serialize time and the remainder (network + client).
template <typename R>
void print_timing(const net::RpcResult<R>& r, double rtt_ms) {
  if (!r.timing) return;
  const net::ServerTiming& t = *r.timing;
  const double server_ms =
      static_cast<double>(t.queue_us + t.exec_us + t.serialize_us) / 1000.0;
  std::printf(
      "  trace %llu [%s]: rtt %.3f ms = network %.3f + queue %.3f + "
      "exec %.3f + serialize %.3f\n",
      static_cast<unsigned long long>(t.trace_id), timing_source(t.source),
      rtt_ms, std::max(0.0, rtt_ms - server_ms),
      t.queue_us / 1000.0, t.exec_us / 1000.0, t.serialize_us / 1000.0);
}

seq::Sequence first_record(const std::string& path, const seq::Alphabet& a) {
  auto records = seq::read_fasta_file(path, a);
  if (records.empty()) usage(("no sequences in " + path).c_str());
  return std::move(records.front());
}

int run_bench(net::Client& client, const Options& o) {
  // Closed-loop: one request at a time, wall-clock percentiles client-side.
  // --distinct 1 exercises the hot result cache; larger values sweep it.
  std::vector<seq::Sequence> queries;
  for (int i = 0; i < std::max(1, o.distinct); ++i)
    queries.push_back(seq::generate_sequence(
        1000 + static_cast<uint64_t>(i), o.length,
        o.dna ? seq::AlphabetKind::Dna : seq::AlphabetKind::Protein));

  std::vector<double> lat_ms;
  lat_ms.reserve(static_cast<size_t>(o.requests));
  std::vector<double> net_ms, queue_ms, exec_ms;  // --trace decomposition
  uint64_t cache_hits = 0;
  uint64_t errors = 0;
  const auto bench_start = std::chrono::steady_clock::now();
  for (int i = 0; i < o.requests; ++i) {
    service::SearchRequest rq;
    rq.query = queries[static_cast<size_t>(i) % queries.size()];
    rq.options = request_options(o);
    const auto t0 = std::chrono::steady_clock::now();
    const auto r =
        client.search(rq, o.no_cache ? net::kFlagNoCache : uint8_t{0});
    const auto t1 = std::chrono::steady_clock::now();
    if (!r.ok()) {
      ++errors;
      continue;
    }
    if (r.from_cache()) ++cache_hits;
    const double rtt =
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    lat_ms.push_back(rtt);
    if (r.timing) {
      const net::ServerTiming& t = *r.timing;
      const double server =
          static_cast<double>(t.queue_us + t.exec_us + t.serialize_us) /
          1000.0;
      net_ms.push_back(std::max(0.0, rtt - server));
      queue_ms.push_back(t.queue_us / 1000.0);
      exec_ms.push_back(t.exec_us / 1000.0);
    }
  }
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    bench_start)
          .count();

  if (lat_ms.empty()) {
    std::fprintf(stderr, "bench: all %d requests failed\n", o.requests);
    return 1;
  }
  std::sort(lat_ms.begin(), lat_ms.end());
  const auto pct = [&](double p) {
    const size_t idx = static_cast<size_t>(p * (lat_ms.size() - 1));
    return lat_ms[idx];
  };
  std::printf(
      "bench: %zu ok, %llu errors, %.0f qps | p50 %.3f ms, p99 %.3f ms | "
      "cache hits %llu (%.0f%%)\n",
      lat_ms.size(), static_cast<unsigned long long>(errors),
      lat_ms.size() / wall_s, pct(0.50), pct(0.99),
      static_cast<unsigned long long>(cache_hits),
      100.0 * cache_hits / lat_ms.size());
  if (!net_ms.empty()) {
    // Wire tracing was on: split the RTT percentiles into where the time
    // actually went (server timing trailer vs. the network remainder).
    const auto pctof = [](std::vector<double>& v, double p) {
      std::sort(v.begin(), v.end());
      return v[static_cast<size_t>(p * (v.size() - 1))];
    };
    std::printf(
        "bench trace: network p50 %.3f / p99 %.3f ms | queue p50 %.3f / "
        "p99 %.3f ms | exec p50 %.3f / p99 %.3f ms\n",
        pctof(net_ms, 0.50), pctof(net_ms, 0.99), pctof(queue_ms, 0.50),
        pctof(queue_ms, 0.99), pctof(exec_ms, 0.50), pctof(exec_ms, 0.99));
  }

  // Server startup cost is not a request latency: fetch the db section of
  // the metrics JSON and report the one-time database load separately, so
  // the percentiles above are never conflated with cold-start.
  const auto m = client.metrics(/*json=*/true);
  if (m.ok()) {
    const auto doc = net::Json::parse(*m.response);
    if (doc) {
      const net::Json& dbj = (*doc)["db"];
      if (dbj.is_object()) {
        std::printf(
            "bench server: db source %s, db load %.1f ms (one-time startup, "
            "excluded from latencies), map %.1f MiB\n",
            dbj["source"].as_string().c_str(),
            dbj["load_seconds"].as_number() * 1e3,
            dbj["map_bytes"].as_number() / (1024.0 * 1024.0));
      }
    }
  }
  return 0;
}

/// metrics --watch S: poll the server's JSON metrics at a fixed cadence
/// and print per-interval rates computed with the same counter-delta
/// helpers the server-side time-series store uses (perf::delta_rate /
/// delta_ratio), so a watch line and a /varz point agree.
int run_metrics_watch(net::Client& client, double interval_s) {
  if (interval_s <= 0) interval_s = 1.0;
  uint64_t prev_completed = 0, prev_hits = 0, prev_misses = 0, prev_cells = 0;
  double prev_kernel_s = 0;
  bool have_prev = false;
  auto prev_t = std::chrono::steady_clock::now();
  std::printf("%10s %10s %12s %10s %10s\n", "dt_s", "qps", "completed",
              "cache_hit", "gcups");
  for (;;) {
    const auto r = client.metrics(/*json=*/true);
    if (!r.ok()) {
      std::fprintf(stderr, "swve_client: %s\n", r.error.c_str());
      return 1;
    }
    const auto now_t = std::chrono::steady_clock::now();
    const auto doc = net::Json::parse(*r.response);
    if (!doc) {
      std::fprintf(stderr, "swve_client: unparseable metrics JSON\n");
      return 1;
    }
    const uint64_t completed =
        static_cast<uint64_t>((*doc)["requests"]["completed"].as_number());
    const uint64_t hits =
        static_cast<uint64_t>((*doc)["result_cache"]["hits"].as_number());
    const uint64_t misses =
        static_cast<uint64_t>((*doc)["result_cache"]["misses"].as_number());
    const uint64_t cells =
        static_cast<uint64_t>((*doc)["kernel"]["cells"].as_number());
    const double kernel_s = (*doc)["kernel"]["seconds"].as_number();
    if (have_prev) {
      const double dt =
          std::chrono::duration<double>(now_t - prev_t).count();
      const double qps = perf::delta_rate(completed, prev_completed, dt);
      const double hit_rate = perf::delta_ratio(
          hits, prev_hits, hits + misses, prev_hits + prev_misses);
      const double ks_d = std::max(0.0, kernel_s - prev_kernel_s);
      const double gcups =
          ks_d > 0 ? static_cast<double>(
                         perf::counter_delta(cells, prev_cells)) /
                         ks_d / 1e9
                   : 0.0;
      std::printf("%10.1f %10.1f %+12lld %9.1f%% %10.2f\n", dt, qps,
                  static_cast<long long>(
                      perf::counter_delta(completed, prev_completed)),
                  hit_rate * 100.0, gcups);
      std::fflush(stdout);
    }
    prev_completed = completed;
    prev_hits = hits;
    prev_misses = misses;
    prev_cells = cells;
    prev_kernel_s = kernel_s;
    prev_t = now_t;
    have_prev = true;
    std::this_thread::sleep_for(std::chrono::duration<double>(interval_s));
  }
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) usage();
  const std::string cmd = argv[1];
  const Options o = parse(argc, argv);
  const seq::Alphabet& alphabet =
      o.dna ? seq::Alphabet::dna() : seq::Alphabet::protein();

  auto connected = net::Client::connect(o.host, o.port, o.timeout_s);
  if (!connected) {
    std::fprintf(stderr, "swve_client: %s\n",
                 connected.error().message.c_str());
    return 1;
  }
  net::Client& client = *connected.value();
  if (o.trace) client.enable_tracing(true);
  const uint8_t extra = o.no_cache ? net::kFlagNoCache : uint8_t{0};

  if (cmd == "ping") {
    const auto r = client.ping();
    std::printf("%s\n", r.ok() ? "pong" : r.error.c_str());
    return r.ok() ? 0 : 1;
  }

  if (cmd == "metrics") {
    if (o.watch_s > 0) return run_metrics_watch(client, o.watch_s);
    const auto r = client.metrics(o.json);
    if (!r.ok()) {
      std::fprintf(stderr, "swve_client: %s\n", r.error.c_str());
      return 1;
    }
    std::fputs(r.response->c_str(), stdout);
    return 0;
  }

  if (cmd == "bench") return run_bench(client, o);

  if (cmd == "align") {
    if (o.positional.size() != 2) usage("align needs QUERY.fa TARGET.fa");
    service::AlignRequest rq;
    rq.query = first_record(o.positional[0], alphabet);
    rq.reference = first_record(o.positional[1], alphabet);
    rq.options = request_options(o);
    rq.options.traceback = true;
    for (int i = 0; i < o.repeat; ++i) {
      const auto t0 = std::chrono::steady_clock::now();
      const auto r = client.align(rq, extra);
      const double rtt = std::chrono::duration<double, std::milli>(
                             std::chrono::steady_clock::now() - t0)
                             .count();
      if (!r.ok()) {
        std::fprintf(stderr, "swve_client: %s: %s\n",
                     service::status_name(r.status), r.error.c_str());
        return 1;
      }
      const core::Alignment& a = r.response->alignment;
      std::printf("score %d  query %d-%d  ref %d-%d  cigar %s%s\n", a.score,
                  a.begin_query, a.end_query, a.begin_ref, a.end_ref,
                  a.cigar.to_string().c_str(), provenance(r.flags));
      print_timing(r, rtt);
    }
    return 0;
  }

  if (cmd == "search") {
    if (o.positional.size() != 1) usage("search needs QUERY.fa");
    service::SearchRequest rq;
    rq.query = first_record(o.positional[0], alphabet);
    if (o.batch) rq.mode = align::SearchMode::Batch;
    rq.options = request_options(o);
    for (int i = 0; i < o.repeat; ++i) {
      const auto t0 = std::chrono::steady_clock::now();
      const auto r = client.search(rq, extra);
      const double rtt = std::chrono::duration<double, std::milli>(
                             std::chrono::steady_clock::now() - t0)
                             .count();
      if (!r.ok()) {
        std::fprintf(stderr, "swve_client: %s: %s\n",
                     service::status_name(r.status), r.error.c_str());
        return 1;
      }
      std::printf("query %s: %zu hits%s\n", rq.query.id().c_str(),
                  r.response->result.hits.size(), provenance(r.flags));
      print_timing(r, rtt);
      for (const auto& h : r.response->result.hits)
        std::printf("  db[%u] score %d end (%d,%d)\n", h.seq_index, h.score,
                    h.end_query, h.end_ref);
    }
    return 0;
  }

  if (cmd == "batch") {
    if (o.positional.size() != 1) usage("batch needs QUERIES.fa");
    service::BatchRequest rq;
    rq.queries = seq::read_fasta_file(o.positional[0], alphabet);
    rq.options = request_options(o);
    for (int i = 0; i < o.repeat; ++i) {
      const auto t0 = std::chrono::steady_clock::now();
      const auto r = client.batch(rq, extra);
      const double rtt = std::chrono::duration<double, std::milli>(
                             std::chrono::steady_clock::now() - t0)
                             .count();
      if (!r.ok()) {
        std::fprintf(stderr, "swve_client: %s: %s\n",
                     service::status_name(r.status), r.error.c_str());
        return 1;
      }
      std::printf("%zu queries%s\n", r.response->results.size(),
                  provenance(r.flags));
      print_timing(r, rtt);
      for (size_t q = 0; q < r.response->results.size(); ++q) {
        const auto& hits = r.response->results[q].result.hits;
        std::printf("  query %zu: %zu hits, best %d\n", q, hits.size(),
                    hits.empty() ? 0 : hits.front().score);
      }
    }
    return 0;
  }

  usage(("unknown command " + cmd).c_str());
}
