// swve_server — the standalone protocol v1 serving daemon.
//
//   swve_server [options]
//
// Loads (or synthesizes) a sequence database, builds an AlignService, and
// serves it over TCP via net::Server: binary protocol v1 with singleflight
// coalescing and an LRU result cache, plus "GET /metrics" and "/healthz"
// HTTP on the same port. SIGTERM/SIGINT trigger a graceful drain through
// the flight recorder (in-flight requests finish, then the process exits).
//
// Database options:
//   --db FILE                serve this database: a FASTA file, or a
//                            pre-packed swdb artifact (swve_db_build) —
//                            routed by magic sniff or a .swdb extension,
//                            so corrupt artifacts are rejected with a
//                            typed error rather than misparsed as FASTA.
//                            Artifacts mmap in O(1) instead of re-packing.
//   --shm                    artifact only: attach/create a shared-memory
//                            resident copy (falls back to file mmap;
//                            SWVE_SHM=off forces the fallback)
//   --madvise MODE           artifact only: off | sequential | willneed |
//                            sequential+willneed mapping hints
//   --synthetic-residues N   serve a deterministic synthetic database
//                            (default: 2,000,000 residues, seed 42)
//   --seed N                 synthetic generator seed
//   --dna                    DNA alphabet (default: protein; FASTA only —
//                            an artifact records its own alphabet)
//
// Serving options:
//   --port N                 TCP port (default 7731; 0 = ephemeral)
//   --bind ADDR              bind address (default 127.0.0.1)
//   --max-conns N            concurrent connection cap (default 1024)
//   --max-frame-mb N         per-frame payload cap in MiB (default 16)
//   --cache-entries N        result-cache capacity (default 512; 0 = off)
//   --no-singleflight        disable in-flight request coalescing
//   --no-http                disable the HTTP /metrics endpoint
//   --drain-timeout S        graceful-drain budget in seconds (default 10)
//
// Service options:
//   --matrix NAME            scoring matrix (default blosum62)
//   --top K                  default hits per query (default 10)
//   --threads N              pool threads for intra-request fan-out
//   --shards N|auto          split batch search into N database shards
//                            with per-shard pinned pools and a
//                            bit-identical top-k merge ("auto" = one
//                            shard per NUMA node; default 1 = unsharded)
//   --numa MODE              off | interleave | bind placement of packed
//                            shard columns (needs --shards; SWVE_NUMA=off
//                            overrides)
//   --executors N            executor threads draining the queue
//   --queue-cap N            submission queue capacity (default 256)
//   --slo-ms N               watchdog SLO for slow-request records
//   --flight-out FILE        flight-recorder dump path on signals
//
// Telemetry history & SLO alerting options:
//   --telemetry-cadence S    time-series sample period in seconds
//                            (default 1; 0 disables history, /varz, and
//                            the burn-rate engine)
//   --telemetry-retention S  history window kept in memory (default 600)
//   --slo-p99-ms N           latency SLO target for burn-rate alerting:
//                            latency_objective of requests must finish
//                            within N ms (distinct from --slo-ms, which
//                            only records slow requests in the watchdog)
//   --slo-objective F        fraction of requests that must meet the
//                            latency target (default 0.99)
//   --tracez-entries N       /tracez ring capacity (default 32)
//
// Observability options:
//   --log-file FILE          structured JSON-lines log file (O_APPEND)
//   --log-level LVL          debug | info | warn | error (default info)
//   --log-rate N             per-event-site records/second cap (0 = off)
//   --trace-events N         trace-sink ring capacity per thread
//                            (default 8192; 0 disables the sink and the
//                            span half of /tracez)
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "swve.hpp"

using namespace swve;

namespace {

[[noreturn]] void usage(const char* msg = nullptr) {
  if (msg != nullptr) std::fprintf(stderr, "error: %s\n\n", msg);
  std::fputs(
      "usage: swve_server [options]\n"
      "  --db FILE(.fa|.swdb) [--shm] [--madvise MODE]\n"
      "  --synthetic-residues N [--seed N] [--dna]\n"
      "  --port N | --bind ADDR | --max-conns N | --max-frame-mb N\n"
      "  --cache-entries N | --no-singleflight | --no-http\n"
      "  --drain-timeout S | --matrix NAME | --top K | --threads N\n"
      "  --shards N|auto | --numa off|interleave|bind\n"
      "  --executors N | --queue-cap N | --slo-ms N | --flight-out FILE\n"
      "  --log-file FILE | --log-level LVL | --log-rate N\n"
      "  --trace-events N | --tracez-entries N\n"
      "  --telemetry-cadence S | --telemetry-retention S\n"
      "  --slo-p99-ms N | --slo-objective F\n",
      stderr);
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  std::string db_path;
  bool use_shm = false;
  core::MappedDbOptions::Madvise madvise_mode =
      core::MappedDbOptions::Madvise::Off;
  uint64_t synthetic_residues = 2'000'000;
  uint64_t seed = 42;
  bool dna = false;
  std::string matrix_name = "blosum62";
  std::string flight_out;
  int slo_ms = 0;
  std::string log_file;
  std::string log_level = "info";
  uint64_t log_rate = 0;
  size_t trace_events = 8192;

  service::ServiceOptions opt;
  opt.serve.port = 7731;

  for (int i = 1; i < argc; ++i) {
    const std::string s = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) usage(("missing value for " + s).c_str());
      return argv[++i];
    };
    if (s == "--db") db_path = next();
    else if (s == "--shm") use_shm = true;
    else if (s == "--madvise") {
      const std::string m = next();
      if (m == "off") madvise_mode = core::MappedDbOptions::Madvise::Off;
      else if (m == "sequential")
        madvise_mode = core::MappedDbOptions::Madvise::Sequential;
      else if (m == "willneed")
        madvise_mode = core::MappedDbOptions::Madvise::WillNeed;
      else if (m == "sequential+willneed")
        madvise_mode = core::MappedDbOptions::Madvise::SequentialWillNeed;
      else usage(("unknown --madvise mode " + m).c_str());
    }
    else if (s == "--synthetic-residues")
      synthetic_residues = std::strtoull(next(), nullptr, 10);
    else if (s == "--seed") seed = std::strtoull(next(), nullptr, 10);
    else if (s == "--dna") dna = true;
    else if (s == "--port")
      opt.serve.port = static_cast<uint16_t>(std::atoi(next()));
    else if (s == "--bind") opt.serve.bind = next();
    else if (s == "--max-conns")
      opt.serve.max_connections = std::strtoul(next(), nullptr, 10);
    else if (s == "--max-frame-mb")
      opt.serve.max_frame_bytes = std::strtoul(next(), nullptr, 10) << 20;
    else if (s == "--cache-entries")
      opt.serve.result_cache_capacity = std::strtoul(next(), nullptr, 10);
    else if (s == "--no-singleflight") opt.serve.singleflight = false;
    else if (s == "--no-http") opt.serve.http_metrics = false;
    else if (s == "--drain-timeout")
      opt.serve.drain_timeout_s = std::atof(next());
    else if (s == "--shards") {
      const std::string v = next();
      opt.search.shards = (v == "auto") ? 0 : std::atoi(v.c_str());
    } else if (s == "--numa") {
      const std::string v = next();
      if (!parallel::parse_numa_policy(v, &opt.search.numa))
        usage(("unknown --numa policy " + v).c_str());
    }
    else if (s == "--matrix") matrix_name = next();
    else if (s == "--top") opt.default_top_k = std::strtoul(next(), nullptr, 10);
    else if (s == "--threads")
      opt.pool_threads = static_cast<unsigned>(std::atoi(next()));
    else if (s == "--executors")
      opt.queue.executors = static_cast<unsigned>(std::atoi(next()));
    else if (s == "--queue-cap")
      opt.queue.capacity = std::strtoul(next(), nullptr, 10);
    else if (s == "--slo-ms") slo_ms = std::atoi(next());
    else if (s == "--telemetry-cadence")
      opt.serve.telemetry_cadence_s = std::atof(next());
    else if (s == "--telemetry-retention")
      opt.serve.telemetry_retention_s = std::atof(next());
    else if (s == "--slo-p99-ms")
      opt.obs.slo.latency_target_s = std::atof(next()) / 1000.0;
    else if (s == "--slo-objective")
      opt.obs.slo.latency_objective = std::atof(next());
    else if (s == "--tracez-entries")
      opt.serve.tracez_capacity = std::strtoul(next(), nullptr, 10);
    else if (s == "--flight-out") flight_out = next();
    else if (s == "--log-file") log_file = next();
    else if (s == "--log-level") log_level = next();
    else if (s == "--log-rate") log_rate = std::strtoull(next(), nullptr, 10);
    else if (s == "--trace-events")
      trace_events = std::strtoul(next(), nullptr, 10);
    else if (s == "--help" || s == "-h") usage();
    else usage(("unknown option " + s).c_str());
  }

  const seq::Alphabet& alphabet =
      dna ? seq::Alphabet::dna() : seq::Alphabet::protein();
  const matrix::ScoreMatrix* matrix = matrix::ScoreMatrix::find(matrix_name);
  if (matrix == nullptr) usage(("unknown matrix " + matrix_name).c_str());
  opt.config.matrix = matrix;
  opt.obs.slow_request_slo_s = slo_ms / 1000.0;

  // The logger outlives everything that logs (service threads, server
  // loop, flight recorder), so it is declared before them and destroyed
  // last; the destructor drains the rings, losing nothing accepted.
  obs::LoggerOptions logopt;
  logopt.min_level = obs::log_level_from_string(log_level);
  logopt.path = log_file;
  logopt.rate_limit_per_sec = log_rate;
  obs::Logger logger(logopt);
  obs::Logger::install_global(&logger);

  // Trace sink for wire tracing: propagated trace ids land here as
  // queue/dispatch/kernel spans, surfaced through /tracez and the flight
  // recorder's Chrome-trace dump.
  std::unique_ptr<obs::TraceSink> trace_sink;
  if (trace_events > 0) {
    trace_sink = std::make_unique<obs::TraceSink>(trace_events);
    opt.obs.trace_sink = trace_sink.get();
  }

  // The mapping is declared before the service: the service serves
  // sequences and batch columns straight out of it for its whole lifetime.
  std::unique_ptr<core::MappedDb> mapped;
  seq::SequenceDatabase db;
  // Artifact routing: the magic sniff, OR the .swdb extension — so a
  // corrupted artifact (bad magic included) still reaches the reader and
  // comes back as a typed invalid_artifact error instead of being
  // misparsed as FASTA.
  const bool is_artifact =
      !db_path.empty() &&
      (core::file_has_swdb_magic(db_path) ||
       (db_path.size() > 5 &&
        db_path.compare(db_path.size() - 5, 5, ".swdb") == 0));
  if (is_artifact) {
    core::MappedDbOptions mopts;
    mopts.residency = use_shm
                          ? core::MappedDbOptions::Residency::SharedMemory
                          : core::MappedDbOptions::Residency::File;
    mopts.madvise = madvise_mode;
    auto opened = core::MappedDb::open(db_path, mopts);
    if (!opened) {
      std::fprintf(stderr, "swve_server: %s (%s)\n",
                   opened.error().message.c_str(),
                   core::ConfigError::code_name(opened.error().code));
      return 1;
    }
    mapped = std::move(opened.value());
  } else if (!db_path.empty()) {
    try {
      db = seq::SequenceDatabase::from_fasta_file(db_path, alphabet);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "swve_server: cannot load %s: %s\n",
                   db_path.c_str(), e.what());
      return 1;
    }
  } else {
    seq::SyntheticConfig scfg;
    scfg.seed = seed;
    scfg.kind = dna ? seq::AlphabetKind::Dna : seq::AlphabetKind::Protein;
    scfg.target_residues = synthetic_residues;
    db = seq::SequenceDatabase::synthetic(scfg);
  }

  std::unique_ptr<service::AlignService> svc_holder =
      mapped ? std::make_unique<service::AlignService>(*mapped, opt)
             : std::make_unique<service::AlignService>(db, opt);
  service::AlignService& svc = *svc_holder;
  auto started = net::Server::start(svc);
  if (!started) {
    std::fprintf(stderr, "swve_server: %s\n", started.error().message.c_str());
    return 1;
  }
  std::unique_ptr<net::Server> server = std::move(started.value());

  // SIGTERM/SIGINT: the flight recorder dumps (when --flight-out is set),
  // pokes the server's term eventfd, and returns — the drain below owns
  // process exit.
  obs::FlightRecorder recorder;
  obs::FlightRecorderOptions fr;
  fr.path = flight_out;
  fr.sink = trace_sink.get();
  fr.registry = svc.registry();
  fr.inflight = svc.inflight();
  fr.notify_fd = server->term_fd();
  fr.exit_on_term = false;
  recorder.install(fr);

  const seq::SequenceDatabase& served = *svc.database();
  std::fprintf(stderr,
               "swve_server: listening on %s:%u (%zu sequences, %llu "
               "residues, db source %s, db load %.1f ms, matrix %s, "
               "cache %zu, singleflight %s)\n",
               svc.options().serve.bind.c_str(), server->port(),
               served.sequences().size(),
               static_cast<unsigned long long>(served.total_residues()),
               core::db_source_name(svc.db_source()),
               svc.db_load_seconds() * 1e3, matrix_name.c_str(),
               opt.serve.result_cache_capacity,
               opt.serve.singleflight ? "on" : "off");
  if (const align::ShardedSearch* sh = svc.sharded()) {
    std::fprintf(stderr,
                 "swve_server: sharded search: %zu shards, numa %s, %zu "
                 "node(s)%s\n",
                 sh->shard_count(), parallel::numa_policy_name(sh->numa_policy()),
                 sh->topology().nodes.size(),
                 sh->topology().synthetic ? " (synthetic topology)" : "");
    obs::log_info("server.shards",
                  {{"shards", sh->shard_count()},
                   {"numa", parallel::numa_policy_name(sh->numa_policy())},
                   {"nodes", sh->topology().nodes.size()}});
  }
  obs::log_info("server.start",
                {{"port", static_cast<unsigned>(server->port())},
                 {"sequences", served.sequences().size()},
                 {"residues", served.total_residues()},
                 {"db_source", core::db_source_name(svc.db_source())},
                 {"db_load_ms", svc.db_load_seconds() * 1e3},
                 {"db_map_bytes", svc.db_map_bytes()},
                 {"cache_entries", opt.serve.result_cache_capacity},
                 {"singleflight", opt.serve.singleflight}});

  server->join();  // runs until SIGTERM/SIGINT starts (and finishes) a drain

  const perf::MetricsSnapshot snap = server->metrics();
  std::fprintf(stderr,
               "swve_server: drained; %llu requests, cache hit rate %.2f, "
               "dedup ratio %.2f\n",
               static_cast<unsigned long long>(snap.completed),
               snap.result_cache_hit_rate(), snap.dedup_ratio());
  obs::log_info("server.exit", {{"completed", snap.completed},
                                {"cache_hits", snap.result_cache_hits},
                                {"coalesced", snap.coalesced}});
  return 0;
}
