// swve db artifact round-trip: the on-disk format (core/db_format.hpp), the
// mmap/shm reader (core/mapped_db.hpp), and the corruption-rejection matrix
// the db-artifact CI lane drives end to end.
#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "core/db_format.hpp"
#include "core/dispatch.hpp"
#include "core/mapped_db.hpp"
#include "core/workspace.hpp"
#include "net/protocol.hpp"
#include "seq/synthetic.hpp"
#include "simd/cpu.hpp"

namespace swve::core {
namespace {

seq::SequenceDatabase small_db(uint64_t seed, uint64_t residues,
                               uint32_t min_len = 5, uint32_t max_len = 300) {
  seq::SyntheticConfig cfg;
  cfg.seed = seed;
  cfg.target_residues = residues;
  cfg.min_length = min_len;
  cfg.max_length = max_len;
  return seq::SequenceDatabase::synthetic(cfg);
}

// ctest runs each test in its own process, so pid + tag keeps parallel
// sanitizer lanes from stomping each other's files.
std::string tmp_path(const std::string& tag) {
  return "/tmp/swve_swdb_test_" + std::to_string(::getpid()) + "_" + tag +
         ".swdb";
}

/// Writes db (+ a fresh packing) to a temp artifact; registers no cleanup —
/// callers std::remove when done (leaks under /tmp on assert-abort only).
std::string write_artifact(const seq::SequenceDatabase& db,
                           const Batch32Db& bdb, const std::string& tag) {
  const std::string path = tmp_path(tag);
  auto stats = write_swdb(db, bdb, path);
  EXPECT_TRUE(stats.ok()) << (stats.ok() ? "" : stats.error().message);
  return path;
}

std::vector<uint8_t> slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::vector<uint8_t>(std::istreambuf_iterator<char>(in),
                              std::istreambuf_iterator<char>());
}

void spit(const std::string& path, const std::vector<uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

// ---------------------------------------------------------------- format --

TEST(SwdbFormat, Fnv1aMatchesReferenceVectors) {
  EXPECT_EQ(fnv1a_64(nullptr, 0), kFnvOffsetBasis);
  EXPECT_EQ(fnv1a_64("a", 1), 0xaf63dc4c8601ec8cull);
  EXPECT_EQ(fnv1a_64("foobar", 6), 0x85944171f73967e8ull);
  // Seedable: folding in two halves equals one pass.
  const char* s = "swve-db";
  EXPECT_EQ(fnv1a_64(s + 3, 4, fnv1a_64(s, 3)), fnv1a_64(s, 7));
}

TEST(SwdbFormat, FingerprintIsTheWireEpoch) {
  // The artifact's stored db_epoch must equal what a FASTA-startup server
  // computes, or result-cache keys would diverge across startup paths.
  auto db = small_db(31, 12'000);
  EXPECT_EQ(database_fingerprint(db), net::database_epoch(db));
  auto db2 = small_db(32, 12'000);
  EXPECT_NE(database_fingerprint(db), database_fingerprint(db2));
}

TEST(SwdbFormat, MagicSniffRoutesFiles) {
  auto db = small_db(33, 4'000);
  Batch32Db bdb(db, 32);
  const std::string art = write_artifact(db, bdb, "sniff");
  EXPECT_TRUE(file_has_swdb_magic(art));

  const std::string fasta = tmp_path("sniff_fa");
  {
    std::ofstream out(fasta);
    out << ">seq1\nACDEFGHIKLMNPQRSTVWY\n";
  }
  EXPECT_FALSE(file_has_swdb_magic(fasta));
  EXPECT_FALSE(file_has_swdb_magic(tmp_path("does_not_exist")));
  std::remove(art.c_str());
  std::remove(fasta.c_str());
}

TEST(SwdbFormat, WriterRejectsInconsistentInputs) {
  auto db = small_db(34, 4'000);
  Batch32Db bdb(db, 32);
  const std::string path = tmp_path("reject");

  seq::SequenceDatabase empty;
  auto r1 = write_swdb(empty, bdb, path);
  ASSERT_FALSE(r1.ok());
  EXPECT_EQ(r1.error().code, ConfigError::Code::InvalidArtifact);

  auto other = small_db(35, 2'000);  // different sequence count than bdb
  ASSERT_NE(other.size(), db.size());
  auto r2 = write_swdb(other, bdb, path);
  ASSERT_FALSE(r2.ok());
  EXPECT_EQ(r2.error().code, ConfigError::Code::InvalidArtifact);
  std::remove(path.c_str());
}

TEST(SwdbFormat, HeaderFieldsRoundTrip) {
  auto db = small_db(36, 9'000);
  Batch32Db bdb(db, 32, PackingPolicy::LengthBinned);
  const std::string path = write_artifact(db, bdb, "header");

  const std::vector<uint8_t> bytes = slurp(path);
  ASSERT_GE(bytes.size(), sizeof(SwdbHeader));
  SwdbHeader h;
  std::memcpy(&h, bytes.data(), sizeof h);
  EXPECT_EQ(h.magic, kSwdbMagic);
  EXPECT_EQ(h.endian_tag, kSwdbEndianTag);
  EXPECT_EQ(h.version, kSwdbVersion);
  EXPECT_EQ(h.section_count, kSwdbSectionCount);
  EXPECT_EQ(h.lanes, 32);
  EXPECT_EQ(h.packing, static_cast<uint8_t>(PackingPolicy::LengthBinned));
  EXPECT_EQ(h.seq_count, db.size());
  EXPECT_EQ(h.total_residues, db.total_residues());
  EXPECT_EQ(h.batch_count, bdb.batch_count());
  EXPECT_EQ(h.db_epoch, database_fingerprint(db));
  EXPECT_EQ(h.file_bytes, bytes.size());

  // Every section offset is kSwdbAlign-aligned and in bounds.
  ASSERT_GE(bytes.size(), sizeof(SwdbHeader) +
                              kSwdbSectionCount * sizeof(SwdbSection));
  for (uint32_t i = 0; i < h.section_count; ++i) {
    SwdbSection s;
    std::memcpy(&s, bytes.data() + sizeof(SwdbHeader) + i * sizeof(SwdbSection),
                sizeof s);
    EXPECT_EQ(s.id, i + 1);  // v1 writes ids 1..10 in order
    EXPECT_EQ(s.offset % kSwdbAlign, 0u) << "section " << s.id;
    EXPECT_LE(s.offset + s.bytes, bytes.size()) << "section " << s.id;
  }
  std::remove(path.c_str());
}

// ---------------------------------------------------------------- reader --

class MappedDbPolicyTest : public ::testing::TestWithParam<PackingPolicy> {};

TEST_P(MappedDbPolicyTest, MappedViewIsBitIdenticalToOwned) {
  const PackingPolicy policy = GetParam();
  auto db = small_db(41, 20'000);
  Batch32Db owned(db, 32, policy);
  const std::string path = write_artifact(db, owned, "policy");

  MappedDbOptions opts;
  opts.verify_all = true;  // exercise the full-checksum path too
  auto mapped = MappedDb::open(path, opts);
  ASSERT_TRUE(mapped.ok()) << mapped.error().message;
  const MappedDb& m = **mapped;
  EXPECT_EQ(m.source(), DbSource::Mmap);
  EXPECT_EQ(m.epoch(), database_fingerprint(db));
  EXPECT_GT(m.mapped_bytes(), 0u);
  EXPECT_LE(m.resident_bytes(), m.mapped_bytes());

  // Sequence content: ids and residues byte-for-byte.
  ASSERT_EQ(m.db().size(), db.size());
  EXPECT_EQ(m.db().total_residues(), db.total_residues());
  EXPECT_EQ(m.db().max_length(), db.max_length());
  for (size_t i = 0; i < db.size(); ++i) {
    EXPECT_EQ(m.db()[i].id(), db[i].id()) << i;
    ASSERT_EQ(m.db()[i].length(), db[i].length()) << i;
    EXPECT_EQ(std::memcmp(m.db()[i].data(), db[i].data(), db[i].length()), 0)
        << i;
    EXPECT_FALSE(m.db()[i].owns_storage()) << i;
  }

  // Batch sections: the view serves the same bytes the writer consumed.
  const Batch32Db& v = m.batch_db();
  EXPECT_FALSE(v.owns_storage());
  EXPECT_EQ(v.lanes(), owned.lanes());
  EXPECT_EQ(v.policy(), owned.policy());
  ASSERT_EQ(v.batch_count(), owned.batch_count());
  EXPECT_EQ(v.real_residues(), owned.real_residues());
  EXPECT_EQ(v.padded_residues(), owned.padded_residues());
  const auto vc = v.column_bytes(), oc = owned.column_bytes();
  ASSERT_EQ(vc.size(), oc.size());
  EXPECT_EQ(std::memcmp(vc.data(), oc.data(), oc.size()), 0);
  const auto vi = v.seq_index_data(), oi = owned.seq_index_data();
  ASSERT_EQ(vi.size(), oi.size());
  EXPECT_EQ(std::memcmp(vi.data(), oi.data(), oi.size_bytes()), 0);
  const auto vr = v.batch_records(), orr = owned.batch_records();
  ASSERT_EQ(vr.size(), orr.size());
  EXPECT_EQ(std::memcmp(vr.data(), orr.data(), orr.size_bytes()), 0);
  std::remove(path.c_str());
}

TEST_P(MappedDbPolicyTest, SearchScoresMatchAcrossIlpDepths) {
  const PackingPolicy policy = GetParam();
  auto db = small_db(42, 15'000);
  Batch32Db owned(db, 32, policy);
  const std::string path = write_artifact(db, owned, "ilp");
  auto mapped = MappedDb::open(path);
  ASSERT_TRUE(mapped.ok()) << mapped.error().message;

  const simd::Isa isa = simd::resolve_isa(simd::Isa::Auto);
  AlignConfig cfg;
  auto q = seq::generate_sequence(43, 120);
  Workspace ws_a, ws_b;
  for (int k : {1, 2, 4}) {
    set_ilp_override(isa, IlpPolicy::fixed(k));
    auto from_owned = batch_scores(q, owned, db, cfg, ws_a);
    auto from_view =
        batch_scores(q, (*mapped)->batch_db(), (*mapped)->db(), cfg, ws_b);
    EXPECT_EQ(from_owned, from_view) << "ilp k=" << k;
  }
  set_ilp_override(isa, IlpPolicy::auto_policy());
  std::remove(path.c_str());
}

INSTANTIATE_TEST_SUITE_P(
    Policies, MappedDbPolicyTest,
    ::testing::Values(PackingPolicy::DbOrder, PackingPolicy::LengthSorted,
                      PackingPolicy::LengthBinned),
    [](const auto& info) {
      switch (info.param) {
        case PackingPolicy::DbOrder: return "DbOrder";
        case PackingPolicy::LengthSorted: return "LengthSorted";
        case PackingPolicy::LengthBinned: return "LengthBinned";
      }
      return "Unknown";
    });

TEST(MappedDb, EveryMadviseModeOpens) {
  auto db = small_db(44, 6'000);
  Batch32Db bdb(db, 32);
  const std::string path = write_artifact(db, bdb, "madvise");
  for (auto mode : {MappedDbOptions::Madvise::Off,
                    MappedDbOptions::Madvise::Sequential,
                    MappedDbOptions::Madvise::WillNeed,
                    MappedDbOptions::Madvise::SequentialWillNeed}) {
    MappedDbOptions opts;
    opts.madvise = mode;
    auto m = MappedDb::open(path, opts);
    ASSERT_TRUE(m.ok()) << m.error().message;
    EXPECT_EQ((*m)->db().size(), db.size());
    EXPECT_GE((*m)->load_seconds(), 0.0);
  }
  std::remove(path.c_str());
}

TEST(MappedDb, ConcurrentReadersNeedNoLocking) {
  // TSan target: one shared mapping, several threads searching through it.
  auto db = small_db(45, 10'000);
  Batch32Db owned(db, 32);
  const std::string path = write_artifact(db, owned, "threads");
  auto mapped = MappedDb::open(path);
  ASSERT_TRUE(mapped.ok()) << mapped.error().message;
  const MappedDb& m = **mapped;

  AlignConfig cfg;
  Workspace ws0;
  auto q = seq::generate_sequence(46, 90);
  const auto expect = batch_scores(q, owned, db, cfg, ws0);

  std::vector<std::thread> threads;
  std::vector<int> mismatches(4, 0);
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      Workspace ws;
      for (int rep = 0; rep < 3; ++rep) {
        auto got = batch_scores(q, m.batch_db(), m.db(), cfg, ws);
        if (got != expect) ++mismatches[static_cast<size_t>(t)];
      }
    });
  }
  for (auto& th : threads) th.join();
  for (int t = 0; t < 4; ++t) EXPECT_EQ(mismatches[static_cast<size_t>(t)], 0);
  std::remove(path.c_str());
}

// ---------------------------------------------------- corruption matrix --

/// Copies the artifact, applies `mutate`, and expects MappedDb::open to
/// return a typed InvalidArtifact error (never a crash).
void expect_rejected(const std::string& art, const std::string& tag,
                     void (*mutate)(std::vector<uint8_t>&),
                     bool verify_all = false) {
  std::vector<uint8_t> bytes = slurp(art);
  ASSERT_FALSE(bytes.empty());
  mutate(bytes);
  const std::string bad = tmp_path(tag);
  spit(bad, bytes);
  MappedDbOptions opts;
  opts.verify_all = verify_all;
  auto m = MappedDb::open(bad, opts);
  ASSERT_FALSE(m.ok()) << tag << ": corrupt artifact was accepted";
  EXPECT_EQ(m.error().code, ConfigError::Code::InvalidArtifact) << tag;
  EXPECT_FALSE(m.error().message.empty()) << tag;
  std::remove(bad.c_str());
}

class SwdbCorruption : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = small_db(51, 8'000);
    bdb_ = std::make_unique<Batch32Db>(db_, 32);
    art_ = write_artifact(db_, *bdb_, "corrupt_base");
  }
  void TearDown() override { std::remove(art_.c_str()); }
  seq::SequenceDatabase db_;
  std::unique_ptr<Batch32Db> bdb_;
  std::string art_;
};

TEST_F(SwdbCorruption, TruncatedHeaderRejected) {
  expect_rejected(art_, "trunc_hdr",
                  [](std::vector<uint8_t>& b) { b.resize(64); });
}

TEST_F(SwdbCorruption, BadMagicRejected) {
  expect_rejected(art_, "bad_magic",
                  [](std::vector<uint8_t>& b) { b[0] ^= 0xFF; });
}

TEST_F(SwdbCorruption, WrongVersionRejected) {
  expect_rejected(art_, "bad_version", [](std::vector<uint8_t>& b) {
    b[8] = 99;  // SwdbHeader.version (offset 8, little-endian)
  });
}

TEST_F(SwdbCorruption, FlippedSectionTableByteRejected) {
  expect_rejected(art_, "bad_table", [](std::vector<uint8_t>& b) {
    b[sizeof(SwdbHeader) + 8] ^= 0x01;  // first section's offset field
  });
}

TEST_F(SwdbCorruption, ShortFileRejected) {
  expect_rejected(art_, "short_file",
                  [](std::vector<uint8_t>& b) { b.resize(b.size() / 2); });
}

/// Finds section `id` in the table and flips the first byte of its payload.
void flip_payload_byte(std::vector<uint8_t>& b, SwdbSectionId id) {
  for (uint32_t i = 0; i < kSwdbSectionCount; ++i) {
    SwdbSection s;
    std::memcpy(&s, b.data() + sizeof(SwdbHeader) + i * sizeof(SwdbSection),
                sizeof s);
    if (s.id == static_cast<uint32_t>(id) && s.bytes > 0) {
      b[s.offset] ^= 0x40;
      return;
    }
  }
  FAIL() << "section " << static_cast<uint32_t>(id) << " missing or empty";
}

TEST_F(SwdbCorruption, FlippedMetadataPayloadRejectedAlways) {
  // SeqLengths is small, so its checksum is verified on every open — no
  // verify_all needed to catch metadata corruption.
  expect_rejected(art_, "bad_meta", [](std::vector<uint8_t>& b) {
    flip_payload_byte(b, SwdbSectionId::SeqLengths);
  });
}

TEST_F(SwdbCorruption, FlippedColumnPayloadRejectedUnderVerifyAll) {
  // BatchColumns is one of the two big sections whose checksum only runs
  // under verify_all (checksumming gigabytes would defeat O(1) startup).
  expect_rejected(
      art_, "bad_payload",
      [](std::vector<uint8_t>& b) {
        flip_payload_byte(b, SwdbSectionId::BatchColumns);
      },
      /*verify_all=*/true);
}

// ------------------------------------------------------------------ shm --

TEST(SwdbShm, EnvKnobForcesFileFallback) {
  auto db = small_db(61, 5'000);
  Batch32Db bdb(db, 32);
  const std::string path = write_artifact(db, bdb, "shm_env");
  ::setenv("SWVE_SHM", "off", 1);
  MappedDbOptions opts;
  opts.residency = MappedDbOptions::Residency::SharedMemory;
  auto m = MappedDb::open(path, opts);
  ::unsetenv("SWVE_SHM");
  ASSERT_TRUE(m.ok()) << m.error().message;
  EXPECT_EQ((*m)->source(), DbSource::Mmap);
  EXPECT_TRUE((*m)->shm_name().empty());
  std::remove(path.c_str());
}

TEST(SwdbShm, AttachCreateReattachAndUnlink) {
  auto db = small_db(62, 7'000);
  Batch32Db owned(db, 32);
  const std::string path = write_artifact(db, owned, "shm_rt");
  MappedDbOptions opts;
  opts.residency = MappedDbOptions::Residency::SharedMemory;

  auto first = MappedDb::open(path, opts);
  ASSERT_TRUE(first.ok()) << first.error().message;
  if ((*first)->source() != DbSource::Shm) {
    // No usable /dev/shm here (container without shm, SWVE_SHM in the
    // environment): the graceful-fallback contract is the test.
    EXPECT_EQ((*first)->source(), DbSource::Mmap);
    std::remove(path.c_str());
    GTEST_SKIP() << "shm unavailable; file-mmap fallback verified";
  }
  EXPECT_FALSE((*first)->shm_name().empty());

  // Second open attaches to the existing object by name.
  auto second = MappedDb::open(path, opts);
  ASSERT_TRUE(second.ok()) << second.error().message;
  EXPECT_EQ((*second)->source(), DbSource::Shm);
  EXPECT_EQ((*second)->shm_name(), (*first)->shm_name());

  // Content through shm is the same packing, bit for bit.
  AlignConfig cfg;
  Workspace ws_a, ws_b;
  auto q = seq::generate_sequence(63, 100);
  EXPECT_EQ(batch_scores(q, owned, db, cfg, ws_a),
            batch_scores(q, (*second)->batch_db(), (*second)->db(), cfg, ws_b));

  const SwdbHeader header = (*first)->header();
  first.value().reset();
  second.value().reset();
  // The object persists past the last detach (that is the point of
  // attach-by-name residency); explicit unlink reclaims it.
  EXPECT_TRUE(MappedDb::shm_unlink_object(header));
  EXPECT_FALSE(MappedDb::shm_unlink_object(header));
  std::remove(path.c_str());
}

}  // namespace
}  // namespace swve::core
