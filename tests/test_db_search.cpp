#include <gtest/gtest.h>

#include <algorithm>

#include "align/db_search.hpp"
#include "core/scalar_ref.hpp"
#include "seq/synthetic.hpp"

namespace swve::align {
namespace {

seq::SequenceDatabase make_db(uint64_t residues, uint64_t seed = 15) {
  seq::SyntheticConfig cfg;
  cfg.seed = seed;
  cfg.target_residues = residues;
  cfg.min_length = 20;
  cfg.max_length = 400;
  return seq::SequenceDatabase::synthetic(cfg);
}

TEST(DatabaseSearch, TopKMatchesBruteForce) {
  auto db = make_db(60'000);
  AlignConfig cfg;
  DatabaseSearch search(db, cfg);
  auto q = seq::generate_sequence(90, 120);
  SearchResult res = search.search(q, 10);
  ASSERT_LE(res.hits.size(), 10u);

  // Brute force with the golden model.
  std::vector<Hit> all;
  for (size_t s = 0; s < db.size(); ++s) {
    core::Alignment a = core::ref_align(q, db[s], cfg);
    if (a.score > 0)
      all.push_back(Hit{static_cast<uint32_t>(s), a.score, a.end_query, a.end_ref});
  }
  std::sort(all.begin(), all.end());
  all.resize(std::min<size_t>(all.size(), 10));
  ASSERT_EQ(res.hits.size(), all.size());
  for (size_t k = 0; k < all.size(); ++k) {
    EXPECT_EQ(res.hits[k].seq_index, all[k].seq_index) << k;
    EXPECT_EQ(res.hits[k].score, all[k].score) << k;
    EXPECT_EQ(res.hits[k].end_query, all[k].end_query) << k;
    EXPECT_EQ(res.hits[k].end_ref, all[k].end_ref) << k;
  }
}

TEST(DatabaseSearch, HitsAreSortedBestFirst) {
  auto db = make_db(40'000);
  DatabaseSearch search(db, AlignConfig{});
  auto q = seq::generate_sequence(91, 100);
  SearchResult res = search.search(q, 20);
  for (size_t k = 1; k < res.hits.size(); ++k) {
    EXPECT_GE(res.hits[k - 1].score, res.hits[k].score);
    if (res.hits[k - 1].score == res.hits[k].score)
      EXPECT_LT(res.hits[k - 1].seq_index, res.hits[k].seq_index);
  }
}

TEST(DatabaseSearch, IdenticalResultsForAnyThreadCount) {
  auto db = make_db(80'000);
  DatabaseSearch search(db, AlignConfig{});
  auto q = seq::generate_sequence(92, 150);
  SearchResult serial = search.search(q, 15);
  for (unsigned threads : {1u, 2u, 3u, 5u}) {
    parallel::ThreadPool pool(threads);
    SearchResult par = search.search(q, 15, &pool);
    ASSERT_EQ(par.hits.size(), serial.hits.size()) << threads << " threads";
    for (size_t k = 0; k < serial.hits.size(); ++k) {
      EXPECT_EQ(par.hits[k].seq_index, serial.hits[k].seq_index);
      EXPECT_EQ(par.hits[k].score, serial.hits[k].score);
    }
    EXPECT_EQ(par.stats.cells, serial.stats.cells);
  }
}

TEST(DatabaseSearch, StatsCountEveryCell) {
  auto db = make_db(30'000);
  DatabaseSearch search(db, AlignConfig{});
  auto q = seq::generate_sequence(93, 64);
  SearchResult res = search.search(q, 5);
  // Adaptive width may re-run saturated pairs, so cells >= m * residues.
  EXPECT_GE(res.stats.cells, 64u * db.total_residues());
  EXPECT_EQ(res.db_residues, db.total_residues());
  EXPECT_EQ(res.query_length, 64u);
  EXPECT_GT(res.seconds, 0.0);
  EXPECT_GT(res.gcups(), 0.0);
}

TEST(DatabaseSearch, PlantedHomologIsTopHit) {
  auto q = seq::generate_sequence(94, 300);
  std::vector<seq::Sequence> seqs;
  for (int i = 0; i < 60; ++i)
    seqs.push_back(seq::generate_sequence(95 + static_cast<uint64_t>(i), 250));
  seqs.push_back(seq::mutate(q, 96, 0.2));  // index 60
  seq::SequenceDatabase db(std::move(seqs));
  DatabaseSearch search(db, AlignConfig{});
  SearchResult res = search.search(q, 3);
  ASSERT_FALSE(res.hits.empty());
  EXPECT_EQ(res.hits[0].seq_index, 60u);
}

TEST(DatabaseSearch, EmptyQueryAndEmptyDb) {
  auto db = make_db(10'000);
  DatabaseSearch search(db, AlignConfig{});
  seq::Sequence e("e", "", seq::Alphabet::protein());
  EXPECT_TRUE(search.search(e, 10).hits.empty());
  seq::SequenceDatabase empty;
  DatabaseSearch s2(empty, AlignConfig{});
  auto q = seq::generate_sequence(97, 50);
  EXPECT_TRUE(s2.search(q, 10).hits.empty());
}

TEST(DatabaseSearch, BatchModeMatchesDiagonalMode) {
  auto db = make_db(50'000);
  AlignConfig cfg;
  DatabaseSearch diag(db, cfg, SearchMode::Diagonal);
  DatabaseSearch batch(db, cfg, SearchMode::Batch);
  EXPECT_EQ(batch.mode(), SearchMode::Batch);
  for (uint64_t seed : {400u, 401u, 402u}) {
    auto q = seq::generate_sequence(seed, 80 + seed % 200);
    SearchResult a = diag.search(q, 12);
    SearchResult b = batch.search(q, 12);
    ASSERT_EQ(a.hits.size(), b.hits.size()) << "seed " << seed;
    for (size_t k = 0; k < a.hits.size(); ++k) {
      EXPECT_EQ(a.hits[k].seq_index, b.hits[k].seq_index) << k;
      EXPECT_EQ(a.hits[k].score, b.hits[k].score) << k;
      EXPECT_EQ(a.hits[k].end_query, b.hits[k].end_query) << k;
      EXPECT_EQ(a.hits[k].end_ref, b.hits[k].end_ref) << k;
    }
  }
}

TEST(DatabaseSearch, BatchModeDeterministicAcrossThreads) {
  auto db = make_db(40'000);
  DatabaseSearch batch(db, AlignConfig{}, SearchMode::Batch);
  auto q = seq::generate_sequence(410, 150);
  SearchResult serial = batch.search(q, 10);
  for (unsigned threads : {2u, 4u}) {
    parallel::ThreadPool pool(threads);
    SearchResult par = batch.search(q, 10, &pool);
    ASSERT_EQ(par.hits.size(), serial.hits.size());
    for (size_t k = 0; k < serial.hits.size(); ++k) {
      EXPECT_EQ(par.hits[k].seq_index, serial.hits[k].seq_index);
      EXPECT_EQ(par.hits[k].score, serial.hits[k].score);
    }
  }
}

TEST(DatabaseSearch, BatchModeHandlesSaturatingHomolog) {
  auto q = seq::generate_sequence(420, 500);
  std::vector<seq::Sequence> seqs;
  for (int i = 0; i < 50; ++i)
    seqs.push_back(seq::generate_sequence(421 + static_cast<uint64_t>(i), 150));
  seqs.push_back(seq::mutate(q, 422, 0.05));  // saturates the 8-bit kernel
  seq::SequenceDatabase db(std::move(seqs));
  AlignConfig cfg;
  DatabaseSearch batch(db, cfg, SearchMode::Batch);
  SearchResult res = batch.search(q, 3);
  ASSERT_FALSE(res.hits.empty());
  EXPECT_EQ(res.hits[0].seq_index, 50u);
  EXPECT_EQ(res.hits[0].score, core::ref_align(q, db[50], cfg).score);
}

TEST(DatabaseSearch, BatchModeRejectsBand) {
  auto db = make_db(5'000);
  AlignConfig cfg;
  cfg.band = 8;
  EXPECT_THROW(DatabaseSearch(db, cfg, SearchMode::Batch), std::invalid_argument);
}

TEST(DatabaseSearch, TopKZero) {
  auto db = make_db(10'000);
  DatabaseSearch search(db, AlignConfig{});
  auto q = seq::generate_sequence(98, 50);
  EXPECT_TRUE(search.search(q, 0).hits.empty());
}

}  // namespace
}  // namespace swve::align
