#include <gtest/gtest.h>

#include <algorithm>
#include <random>

#include "align/db_search.hpp"
#include "core/scalar_ref.hpp"
#include "seq/synthetic.hpp"

namespace swve::align {
namespace {

seq::SequenceDatabase make_db(uint64_t residues, uint64_t seed = 15) {
  seq::SyntheticConfig cfg;
  cfg.seed = seed;
  cfg.target_residues = residues;
  cfg.min_length = 20;
  cfg.max_length = 400;
  return seq::SequenceDatabase::synthetic(cfg);
}

TEST(DatabaseSearch, TopKMatchesBruteForce) {
  auto db = make_db(60'000);
  AlignConfig cfg;
  DatabaseSearch search(db, cfg);
  auto q = seq::generate_sequence(90, 120);
  SearchResult res = search.search(q, 10);
  ASSERT_LE(res.hits.size(), 10u);

  // Brute force with the golden model.
  std::vector<Hit> all;
  for (size_t s = 0; s < db.size(); ++s) {
    core::Alignment a = core::ref_align(q, db[s], cfg);
    if (a.score > 0)
      all.push_back(Hit{static_cast<uint32_t>(s), a.score, a.end_query, a.end_ref});
  }
  std::sort(all.begin(), all.end());
  all.resize(std::min<size_t>(all.size(), 10));
  ASSERT_EQ(res.hits.size(), all.size());
  for (size_t k = 0; k < all.size(); ++k) {
    EXPECT_EQ(res.hits[k].seq_index, all[k].seq_index) << k;
    EXPECT_EQ(res.hits[k].score, all[k].score) << k;
    EXPECT_EQ(res.hits[k].end_query, all[k].end_query) << k;
    EXPECT_EQ(res.hits[k].end_ref, all[k].end_ref) << k;
  }
}

TEST(DatabaseSearch, HitsAreSortedBestFirst) {
  auto db = make_db(40'000);
  DatabaseSearch search(db, AlignConfig{});
  auto q = seq::generate_sequence(91, 100);
  SearchResult res = search.search(q, 20);
  for (size_t k = 1; k < res.hits.size(); ++k) {
    EXPECT_GE(res.hits[k - 1].score, res.hits[k].score);
    if (res.hits[k - 1].score == res.hits[k].score)
      EXPECT_LT(res.hits[k - 1].seq_index, res.hits[k].seq_index);
  }
}

TEST(DatabaseSearch, IdenticalResultsForAnyThreadCount) {
  auto db = make_db(80'000);
  DatabaseSearch search(db, AlignConfig{});
  auto q = seq::generate_sequence(92, 150);
  SearchResult serial = search.search(q, 15);
  for (unsigned threads : {1u, 2u, 3u, 5u}) {
    parallel::ThreadPool pool(threads);
    SearchResult par = search.search(q, 15, &pool);
    ASSERT_EQ(par.hits.size(), serial.hits.size()) << threads << " threads";
    for (size_t k = 0; k < serial.hits.size(); ++k) {
      EXPECT_EQ(par.hits[k].seq_index, serial.hits[k].seq_index);
      EXPECT_EQ(par.hits[k].score, serial.hits[k].score);
    }
    EXPECT_EQ(par.stats.cells, serial.stats.cells);
  }
}

TEST(DatabaseSearch, StatsCountEveryCell) {
  auto db = make_db(30'000);
  DatabaseSearch search(db, AlignConfig{});
  auto q = seq::generate_sequence(93, 64);
  SearchResult res = search.search(q, 5);
  // Adaptive width may re-run saturated pairs, so cells >= m * residues.
  EXPECT_GE(res.stats.cells, 64u * db.total_residues());
  EXPECT_EQ(res.db_residues, db.total_residues());
  EXPECT_EQ(res.query_length, 64u);
  EXPECT_GT(res.seconds, 0.0);
  EXPECT_GT(res.gcups(), 0.0);
}

TEST(DatabaseSearch, PlantedHomologIsTopHit) {
  auto q = seq::generate_sequence(94, 300);
  std::vector<seq::Sequence> seqs;
  for (int i = 0; i < 60; ++i)
    seqs.push_back(seq::generate_sequence(95 + static_cast<uint64_t>(i), 250));
  seqs.push_back(seq::mutate(q, 96, 0.2));  // index 60
  seq::SequenceDatabase db(std::move(seqs));
  DatabaseSearch search(db, AlignConfig{});
  SearchResult res = search.search(q, 3);
  ASSERT_FALSE(res.hits.empty());
  EXPECT_EQ(res.hits[0].seq_index, 60u);
}

TEST(DatabaseSearch, EmptyQueryAndEmptyDb) {
  auto db = make_db(10'000);
  DatabaseSearch search(db, AlignConfig{});
  seq::Sequence e("e", "", seq::Alphabet::protein());
  EXPECT_TRUE(search.search(e, 10).hits.empty());
  seq::SequenceDatabase empty;
  DatabaseSearch s2(empty, AlignConfig{});
  auto q = seq::generate_sequence(97, 50);
  EXPECT_TRUE(s2.search(q, 10).hits.empty());
}

TEST(DatabaseSearch, BatchModeMatchesDiagonalMode) {
  auto db = make_db(50'000);
  AlignConfig cfg;
  DatabaseSearch diag(db, cfg, SearchMode::Diagonal);
  DatabaseSearch batch(db, cfg, SearchMode::Batch);
  EXPECT_EQ(batch.mode(), SearchMode::Batch);
  for (uint64_t seed : {400u, 401u, 402u}) {
    auto q = seq::generate_sequence(seed, 80 + seed % 200);
    SearchResult a = diag.search(q, 12);
    SearchResult b = batch.search(q, 12);
    ASSERT_EQ(a.hits.size(), b.hits.size()) << "seed " << seed;
    for (size_t k = 0; k < a.hits.size(); ++k) {
      EXPECT_EQ(a.hits[k].seq_index, b.hits[k].seq_index) << k;
      EXPECT_EQ(a.hits[k].score, b.hits[k].score) << k;
      EXPECT_EQ(a.hits[k].end_query, b.hits[k].end_query) << k;
      EXPECT_EQ(a.hits[k].end_ref, b.hits[k].end_ref) << k;
    }
  }
}

TEST(DatabaseSearch, BatchModeDeterministicAcrossThreads) {
  auto db = make_db(40'000);
  DatabaseSearch batch(db, AlignConfig{}, SearchMode::Batch);
  auto q = seq::generate_sequence(410, 150);
  SearchResult serial = batch.search(q, 10);
  for (unsigned threads : {2u, 4u}) {
    parallel::ThreadPool pool(threads);
    SearchResult par = batch.search(q, 10, &pool);
    ASSERT_EQ(par.hits.size(), serial.hits.size());
    for (size_t k = 0; k < serial.hits.size(); ++k) {
      EXPECT_EQ(par.hits[k].seq_index, serial.hits[k].seq_index);
      EXPECT_EQ(par.hits[k].score, serial.hits[k].score);
    }
  }
}

TEST(DatabaseSearch, BatchModeHandlesSaturatingHomolog) {
  auto q = seq::generate_sequence(420, 500);
  std::vector<seq::Sequence> seqs;
  for (int i = 0; i < 50; ++i)
    seqs.push_back(seq::generate_sequence(421 + static_cast<uint64_t>(i), 150));
  seqs.push_back(seq::mutate(q, 422, 0.05));  // saturates the 8-bit kernel
  seq::SequenceDatabase db(std::move(seqs));
  AlignConfig cfg;
  DatabaseSearch batch(db, cfg, SearchMode::Batch);
  SearchResult res = batch.search(q, 3);
  ASSERT_FALSE(res.hits.empty());
  EXPECT_EQ(res.hits[0].seq_index, 50u);
  EXPECT_EQ(res.hits[0].score, core::ref_align(q, db[50], cfg).score);
}

TEST(DatabaseSearch, PackedTopKIdenticalOnAdversarialLengthMix) {
  // Worst case for batch packing: one 10k-residue sequence buried among
  // hundreds of short ones. Every packing policy must return the same top-k
  // (indices, scores, end positions) as the unpacked diagonal path.
  std::mt19937_64 rng(500);
  std::vector<seq::Sequence> seqs;
  for (int i = 0; i < 300; ++i)
    seqs.push_back(seq::generate_sequence(rng(), 25 + static_cast<uint32_t>(rng() % 80)));
  auto mid = seqs.begin() + static_cast<std::ptrdiff_t>(seqs.size() / 2);
  seqs.insert(mid, seq::generate_sequence(rng(), 10'000));
  seq::SequenceDatabase db(std::move(seqs));

  AlignConfig cfg;
  DatabaseSearch diag(db, cfg, SearchMode::Diagonal);
  auto q = seq::generate_sequence(501, 180);
  SearchResult ref = diag.search(q, 15);
  ASSERT_FALSE(ref.hits.empty());

  for (core::PackingPolicy policy :
       {core::PackingPolicy::DbOrder, core::PackingPolicy::LengthSorted,
        core::PackingPolicy::LengthBinned}) {
    DatabaseSearch batch(db, cfg, SearchMode::Batch, policy);
    ASSERT_NE(batch.packed_db(), nullptr);
    EXPECT_EQ(batch.packed_db()->policy(), policy);
    SearchResult res = batch.search(q, 15);
    ASSERT_EQ(res.hits.size(), ref.hits.size())
        << core::packing_policy_name(policy);
    for (size_t k = 0; k < ref.hits.size(); ++k) {
      EXPECT_EQ(res.hits[k].seq_index, ref.hits[k].seq_index) << k;
      EXPECT_EQ(res.hits[k].score, ref.hits[k].score) << k;
      EXPECT_EQ(res.hits[k].end_query, ref.hits[k].end_query) << k;
      EXPECT_EQ(res.hits[k].end_ref, ref.hits[k].end_ref) << k;
    }
    // The batch accounting must agree with the packed database layout.
    EXPECT_EQ(res.batch_stats.useful_cells8, db.total_residues() * q.length());
    EXPECT_GT(res.batch_stats.cells8, 0u);
  }

  // And the length-aware layouts must waste strictly fewer 8-bit cells.
  DatabaseSearch naive(db, cfg, SearchMode::Batch, core::PackingPolicy::DbOrder);
  DatabaseSearch sorted(db, cfg, SearchMode::Batch,
                        core::PackingPolicy::LengthSorted);
  EXPECT_GT(sorted.packed_db()->packing_efficiency(),
            naive.packed_db()->packing_efficiency());
}

TEST(DatabaseSearch, BatchModeSaturationLadderReachesWide32) {
  // Fixed match=30 against a planted identical 1200-mer scores 36000 —
  // past int16 — so the batch path's rescore ladder must climb u8 -> W16
  // -> W32 and still agree with the diagonal path bit for bit.
  auto q = seq::generate_sequence(510, 1200);
  std::vector<seq::Sequence> seqs;
  for (int i = 0; i < 70; ++i)
    seqs.push_back(seq::generate_sequence(511 + static_cast<uint64_t>(i), 90));
  seqs.push_back(seq::mutate(q, 512, 0.0));  // index 70
  seq::SequenceDatabase db(std::move(seqs));
  AlignConfig cfg;
  cfg.scheme = core::ScoreScheme::Fixed;
  cfg.match = 30;
  cfg.mismatch = -3;
  DatabaseSearch diag(db, cfg, SearchMode::Diagonal);
  DatabaseSearch batch(db, cfg, SearchMode::Batch);
  SearchResult a = diag.search(q, 5);
  SearchResult b = batch.search(q, 5);
  ASSERT_FALSE(b.hits.empty());
  EXPECT_EQ(b.hits[0].seq_index, 70u);
  EXPECT_EQ(b.hits[0].score, 30 * 1200);
  EXPECT_GE(b.batch_stats.rescored, 1u);
  ASSERT_EQ(a.hits.size(), b.hits.size());
  for (size_t k = 0; k < a.hits.size(); ++k) {
    EXPECT_EQ(a.hits[k].seq_index, b.hits[k].seq_index) << k;
    EXPECT_EQ(a.hits[k].score, b.hits[k].score) << k;
  }
}

TEST(DatabaseSearch, BatchModeRejectsBand) {
  auto db = make_db(5'000);
  AlignConfig cfg;
  cfg.band = 8;
  EXPECT_THROW(DatabaseSearch(db, cfg, SearchMode::Batch), std::invalid_argument);
}

TEST(DatabaseSearch, TopKZero) {
  auto db = make_db(10'000);
  DatabaseSearch search(db, AlignConfig{});
  auto q = seq::generate_sequence(98, 50);
  EXPECT_TRUE(search.search(q, 0).hits.empty());
}

}  // namespace
}  // namespace swve::align
