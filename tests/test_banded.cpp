// Banded alignment (|i - j| <= band): golden banded model vs the banded
// diagonal kernels, plus band-semantics properties.
#include <gtest/gtest.h>

#include <random>

#include <cstdlib>

#include "core/batch32.hpp"
#include "core/dispatch.hpp"
#include "core/scalar_ref.hpp"
#include "core/traceback.hpp"
#include "seq/synthetic.hpp"
#include "simd/cpu.hpp"

namespace swve::core {
namespace {

std::vector<simd::Isa> all_isas() {
  std::vector<simd::Isa> isas = {simd::Isa::Scalar};
  if (simd::isa_available(simd::Isa::Sse41)) isas.push_back(simd::Isa::Sse41);
  if (simd::isa_available(simd::Isa::Avx2)) isas.push_back(simd::Isa::Avx2);
  if (simd::isa_available(simd::Isa::Avx512)) isas.push_back(simd::Isa::Avx512);
  return isas;
}

TEST(Banded, GoldenWideBandEqualsFullDp) {
  std::mt19937_64 rng(301);
  for (int it = 0; it < 20; ++it) {
    auto q = seq::generate_sequence(rng(), 1 + rng() % 120);
    auto r = seq::generate_sequence(rng(), 1 + rng() % 120);
    AlignConfig full;
    AlignConfig banded = full;
    banded.band = static_cast<int>(q.length() + r.length());  // covers all
    EXPECT_EQ(ref_align(q, r, banded).score, ref_align(q, r, full).score);
  }
}

TEST(Banded, GoldenScoreMonotoneInBand) {
  std::mt19937_64 rng(302);
  for (int it = 0; it < 15; ++it) {
    auto q = seq::generate_sequence(rng(), 40 + rng() % 100);
    auto r = seq::generate_sequence(rng(), 40 + rng() % 100);
    AlignConfig cfg;
    int prev = 0;
    for (int band : {0, 1, 2, 4, 8, 16, 32, 64, 1000}) {
      cfg.band = band;
      int s = ref_align(q, r, cfg).score;
      EXPECT_GE(s, prev) << "band " << band;
      prev = s;
    }
    cfg.band = -1;
    EXPECT_EQ(prev, ref_align(q, r, cfg).score);  // widest band == full
  }
}

TEST(Banded, GoldenBandZeroIsDiagonalOnly) {
  // band 0: only the main diagonal; gaps impossible, score = best
  // positive run of per-position substitution scores.
  seq::Sequence q("q", "ARNDAR", seq::Alphabet::protein());
  AlignConfig cfg;
  cfg.band = 0;
  Alignment a = ref_align(q, q, cfg);
  int diag_sum = 0;
  const auto& mat = matrix::ScoreMatrix::blosum62();
  for (uint8_t c : q.codes()) diag_sum += mat.score(c, c);
  EXPECT_EQ(a.score, diag_sum);  // all diagonal scores positive => full run
}

TEST(Banded, GoldenMatrixMaxMatchesAlign) {
  std::mt19937_64 rng(303);
  for (int it = 0; it < 15; ++it) {
    auto q = seq::generate_sequence(rng(), 1 + rng() % 80);
    auto r = seq::generate_sequence(rng(), 1 + rng() % 80);
    AlignConfig cfg;
    cfg.band = static_cast<int>(rng() % 12);
    Alignment a = ref_align(q, r, cfg);
    auto H = ref_matrix(q, r, cfg);
    int mx = 0;
    for (int h : H) mx = std::max(mx, h);
    EXPECT_EQ(mx, a.score) << "band " << cfg.band;
    // Out-of-band cells are all zero.
    for (int i = 0; i < static_cast<int>(q.length()); ++i)
      for (int j = 0; j < static_cast<int>(r.length()); ++j)
        if (std::abs(i - j) > cfg.band)
          EXPECT_EQ(H[static_cast<size_t>(i) * r.length() + static_cast<size_t>(j)],
                    0);
  }
}

TEST(Banded, KernelsMatchGoldenAcrossBandsAndIsas) {
  std::mt19937_64 rng(304);
  Workspace ws;
  for (simd::Isa isa : all_isas()) {
    for (int it = 0; it < 12; ++it) {
      auto q = seq::generate_sequence(rng(), 1 + rng() % 180);
      auto r = seq::generate_sequence(rng(), 1 + rng() % 180);
      AlignConfig cfg;
      cfg.isa = isa;
      cfg.band = static_cast<int>(rng() % 40);
      cfg.width = (it % 3 == 0)   ? Width::W8
                  : (it % 3 == 1) ? Width::W16
                                  : Width::W32;
      Alignment ref = ref_align(q, r, cfg);
      Alignment got = diag_align(q, r, cfg, ws);
      if (got.saturated) continue;
      EXPECT_EQ(got.score, ref.score)
          << simd::isa_name(isa) << " band=" << cfg.band << " it=" << it;
      EXPECT_EQ(got.end_query, ref.end_query);
      EXPECT_EQ(got.end_ref, ref.end_ref);
    }
  }
}

TEST(Banded, KernelTracebackReplaysWithinBand) {
  std::mt19937_64 rng(305);
  Workspace ws;
  for (int it = 0; it < 25; ++it) {
    auto q = seq::generate_sequence(rng(), 20 + rng() % 150);
    auto hom = seq::mutate(q, rng(), 0.25);
    AlignConfig cfg;
    cfg.band = 4 + static_cast<int>(rng() % 20);
    cfg.traceback = true;
    Alignment got = diag_align(q, hom, cfg, ws);
    if (got.saturated || got.score == 0) continue;
    Alignment ref = ref_align(q, hom, cfg);
    EXPECT_EQ(got.score, ref.score) << "band " << cfg.band;
    EXPECT_EQ(got.cigar, ref.cigar);
    EXPECT_EQ(replay_score(q, hom, cfg, got), got.score);
    // Every cell of the path stays inside the band.
    int i = got.begin_query, j = got.begin_ref;
    for (size_t k = 0; k < got.cigar.size(); ++k)
      for (uint32_t t = 0; t < got.cigar.len(k); ++t) {
        EXPECT_LE(std::abs(i - j), cfg.band);
        switch (got.cigar.op(k)) {
          case CigarOp::Match: ++i; ++j; break;
          case CigarOp::Ins: ++i; break;
          case CigarOp::Del: ++j; break;
        }
      }
  }
}

TEST(Banded, BandZeroKernelHandlesEmptyDiagonals) {
  Workspace ws;
  auto q = seq::generate_sequence(9, 100);
  AlignConfig cfg;
  cfg.band = 0;
  for (simd::Isa isa : all_isas()) {
    cfg.isa = isa;
    Alignment got = diag_align(q, q, cfg, ws);
    Alignment ref = ref_align(q, q, cfg);
    if (!got.saturated) EXPECT_EQ(got.score, ref.score) << simd::isa_name(isa);
  }
}

TEST(Banded, CellAccountingCountsOnlyBandCells) {
  Workspace ws;
  auto q = seq::generate_sequence(10, 200);
  auto r = seq::generate_sequence(11, 200);
  AlignConfig cfg;
  cfg.band = 10;
  cfg.width = Width::W16;
  Alignment a = diag_align(q, r, cfg, ws);
  // Band of width 2*10+1 over 200 diagonal positions, minus corners.
  EXPECT_LT(a.stats.cells, 21u * 200u + 1u);
  EXPECT_GT(a.stats.cells, 15u * 180u);
}

TEST(Banded, BatchKernelRejectsBand) {
  seq::SyntheticConfig sc;
  sc.seed = 12;
  sc.target_residues = 3000;
  auto db = seq::SequenceDatabase::synthetic(sc);
  Batch32Db bdb(db, 32);
  Workspace ws;
  AlignConfig cfg;
  cfg.band = 5;
  auto q = seq::generate_sequence(13, 40);
  EXPECT_THROW(batch_scores(q, bdb, db, cfg, ws), std::invalid_argument);
}

TEST(Banded, ReadMappingUseCase) {
  // A banded alignment of a read against its true locus window costs a
  // fraction of the full DP and finds the same alignment.
  auto ref = seq::generate_sequence(14, 5000, seq::AlphabetKind::Dna);
  auto read = seq::mutate(ref.subsequence(1000, 150), 15, 0.05);
  AlignConfig cfg;
  cfg.scheme = ScoreScheme::Fixed;
  cfg.match = 2;
  cfg.mismatch = -3;
  cfg.gap_open = 5;
  cfg.gap_extend = 2;
  Workspace ws;
  auto window = ref.subsequence(990, 170);
  Alignment full = diag_align(read, window, cfg, ws);
  cfg.band = 32;
  Alignment banded = diag_align(read, window, cfg, ws);
  EXPECT_EQ(banded.score, full.score);  // small indels stay in the band
  EXPECT_LT(banded.stats.cells, full.stats.cells / 2);
}

}  // namespace
}  // namespace swve::core
