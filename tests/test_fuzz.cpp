// Differential fuzzing across every axis at once: random sequences, random
// configurations (scheme, gap model, penalties, matrix, width, ISA,
// delivery, band, traceback), every kernel family versus the golden scalar
// model. Complements the per-axis suites with cross-axis interactions.
#include <gtest/gtest.h>

#include <random>

#include "baseline/diag_basic.hpp"
#include "baseline/scan.hpp"
#include "baseline/striped.hpp"
#include "core/batch32.hpp"
#include "core/dispatch.hpp"
#include "seq/database.hpp"
#include "core/scalar_ref.hpp"
#include "core/traceback.hpp"
#include "seq/synthetic.hpp"
#include "simd/cpu.hpp"

namespace swve::core {
namespace {

struct FuzzCase {
  seq::Sequence q, r;
  AlignConfig cfg;
  std::string desc;
};

seq::Sequence fuzz_seq(std::mt19937_64& rng, uint32_t max_len) {
  const uint32_t len = 1 + static_cast<uint32_t>(rng() % max_len);
  switch (rng() % 4) {
    case 0:  // natural composition
      return seq::generate_sequence(rng(), len);
    case 1: {  // low complexity (gap-chain adversarial)
      std::vector<uint8_t> codes;
      while (codes.size() < len) {
        uint8_t c = static_cast<uint8_t>(rng() % 3);
        for (size_t k = 0, run = 1 + rng() % 13; k < run && codes.size() < len; ++k)
          codes.push_back(c);
      }
      return seq::Sequence("lowc", std::move(codes), seq::Alphabet::protein());
    }
    case 2: {  // self-similar (repeats)
      auto base = seq::generate_sequence(rng(), std::max(4u, len / 4));
      std::vector<uint8_t> codes;
      while (codes.size() < len)
        codes.insert(codes.end(), base.codes().begin(),
                     base.codes().end());
      codes.resize(len);
      return seq::Sequence("rep", std::move(codes), seq::Alphabet::protein());
    }
    default: {  // uniform over the full padded-code range seen in inputs
      std::vector<uint8_t> codes(len);
      for (auto& c : codes) c = static_cast<uint8_t>(rng() % 24);
      return seq::Sequence("uni", std::move(codes), seq::Alphabet::protein());
    }
  }
}

FuzzCase make_case(std::mt19937_64& rng) {
  FuzzCase fc{fuzz_seq(rng, 220), fuzz_seq(rng, 220), {}, {}};
  AlignConfig& c = fc.cfg;
  if (rng() % 4 == 0) {
    c.scheme = ScoreScheme::Fixed;
    c.match = 1 + static_cast<int>(rng() % 8);
    c.mismatch = -static_cast<int>(rng() % 8);
  } else {
    auto names = matrix::ScoreMatrix::builtin_names();
    c.matrix = matrix::ScoreMatrix::find(names[rng() % names.size()]);
  }
  if (rng() % 3 == 0) {
    c.gap_model = GapModel::Linear;
    c.gap_extend = 1 + static_cast<int>(rng() % 5);
  } else {
    c.gap_extend = 1 + static_cast<int>(rng() % 3);
    c.gap_open = c.gap_extend + static_cast<int>(rng() % 14);
  }
  if (rng() % 3 == 0) c.band = static_cast<int>(rng() % 48);
  c.traceback = rng() % 2 == 0;
  switch (rng() % 4) {
    case 0: c.delivery = ScoreDelivery::Auto; break;
    case 1: c.delivery = ScoreDelivery::Gather; break;
    case 2: c.delivery = ScoreDelivery::Fill; break;
    default: c.delivery = ScoreDelivery::Shuffle; break;
  }
  switch (rng() % 4) {
    case 0: c.width = Width::W8; break;
    case 1: c.width = Width::W16; break;
    case 2: c.width = Width::W32; break;
    default: c.width = Width::Adaptive; break;
  }
  return fc;
}

TEST(Fuzz, DiagKernelsAllAxes) {
  std::mt19937_64 rng(777);
  std::vector<simd::Isa> isas = {simd::Isa::Scalar};
  if (simd::isa_available(simd::Isa::Sse41)) isas.push_back(simd::Isa::Sse41);
  if (simd::isa_available(simd::Isa::Avx2)) isas.push_back(simd::Isa::Avx2);
  if (simd::isa_available(simd::Isa::Avx512)) isas.push_back(simd::Isa::Avx512);
  Workspace ws;

  int checked = 0;
  for (int it = 0; it < 250; ++it) {
    FuzzCase fc = make_case(rng);
    const Alignment ref = ref_align(fc.q, fc.r, fc.cfg);
    AlignConfig cfg = fc.cfg;
    cfg.isa = isas[rng() % isas.size()];
    Alignment got = diag_align(fc.q, fc.r, cfg, ws);
    if (got.saturated) continue;  // fixed narrow width on a hot pair
    ASSERT_EQ(got.score, ref.score)
        << "it=" << it << " isa=" << simd::isa_name(cfg.isa)
        << " m=" << fc.q.length() << " n=" << fc.r.length()
        << " band=" << cfg.band << " w=" << static_cast<int>(cfg.width)
        << " d=" << static_cast<int>(cfg.delivery);
    ASSERT_EQ(got.end_query, ref.end_query) << "it=" << it;
    ASSERT_EQ(got.end_ref, ref.end_ref) << "it=" << it;
    if (cfg.traceback && got.score > 0) {
      ASSERT_EQ(got.cigar, ref.cigar) << "it=" << it;
      ASSERT_EQ(replay_score(fc.q, fc.r, cfg, got), got.score) << "it=" << it;
    }
    ++checked;
  }
  EXPECT_GT(checked, 150);  // most cases must be exercised, not skipped
}

TEST(Fuzz, BaselinesAllConfigs) {
  if (!simd::isa_available(simd::Isa::Avx2)) GTEST_SKIP() << "needs AVX2";
  std::mt19937_64 rng(778);
  Workspace ws;
  for (int it = 0; it < 120; ++it) {
    FuzzCase fc = make_case(rng);
    fc.cfg.band = -1;  // baselines are unbanded
    const int ref = ref_align(fc.q, fc.r, fc.cfg).score;
    baseline::StripedAligner striped(fc.q, fc.cfg);
    ASSERT_EQ(striped.align(fc.r, ws).score, ref)
        << "striped it=" << it << " m=" << fc.q.length() << " n=" << fc.r.length();
    baseline::ScanAligner scan(fc.q, fc.cfg);
    ASSERT_EQ(scan.align(fc.r, ws).score, ref) << "scan it=" << it;
    baseline::DiagBasicAligner diag(fc.q, fc.cfg);
    ASSERT_EQ(diag.align(fc.r, ws).score, ref) << "diag it=" << it;
  }
}

TEST(Fuzz, BatchKernelRandomDatabases) {
  std::mt19937_64 rng(779);
  Workspace ws;
  for (int round = 0; round < 6; ++round) {
    std::vector<seq::Sequence> seqs;
    const size_t count = 5 + rng() % 70;
    for (size_t s = 0; s < count; ++s) seqs.push_back(fuzz_seq(rng, 160));
    seq::SequenceDatabase db(std::move(seqs));
    AlignConfig cfg;
    if (round % 2) {
      cfg.scheme = ScoreScheme::Fixed;
      cfg.match = 3;
      cfg.mismatch = -2;
    }
    Batch32Db bdb(db, round % 2 ? 64 : 32);
    auto q = fuzz_seq(rng, 120);
    auto scores = batch_scores(q, bdb, db, cfg, ws);
    for (size_t s = 0; s < db.size(); ++s)
      ASSERT_EQ(scores[s], ref_align(q, db[s], cfg).score)
          << "round=" << round << " seq=" << s;
  }
}

}  // namespace
}  // namespace swve::core
