// Differential tests: every diagonal-kernel instantiation (ISA x width x
// gap model x score scheme x traceback) against the golden scalar model.
#include <gtest/gtest.h>

#include <random>

#include "core/dispatch.hpp"
#include "core/scalar_ref.hpp"
#include "core/traceback.hpp"
#include "seq/synthetic.hpp"
#include "simd/cpu.hpp"

namespace swve::core {
namespace {

struct Param {
  simd::Isa isa;
  Width width;
};

std::vector<Param> kernel_params() {
  std::vector<Param> p;
  std::vector<simd::Isa> isas = {simd::Isa::Scalar};
  if (simd::isa_available(simd::Isa::Sse41)) isas.push_back(simd::Isa::Sse41);
  if (simd::isa_available(simd::Isa::Avx2)) isas.push_back(simd::Isa::Avx2);
  if (simd::isa_available(simd::Isa::Avx512)) isas.push_back(simd::Isa::Avx512);
  for (simd::Isa isa : isas)
    for (Width w : {Width::W8, Width::W16, Width::W32, Width::Adaptive})
      p.push_back({isa, w});
  return p;
}

std::string param_name(const ::testing::TestParamInfo<Param>& info) {
  std::string w;
  switch (info.param.width) {
    case Width::W8: w = "w8"; break;
    case Width::W16: w = "w16"; break;
    case Width::W32: w = "w32"; break;
    case Width::Adaptive: w = "adaptive"; break;
  }
  return std::string(simd::isa_name(info.param.isa)) + "_" + w;
}

class DiagKernelTest : public ::testing::TestWithParam<Param> {
 protected:
  AlignConfig base_config() {
    AlignConfig cfg;
    cfg.isa = GetParam().isa;
    cfg.width = GetParam().width;
    return cfg;
  }
  Workspace ws_;
};

void expect_equal(const Alignment& got, const Alignment& ref, const char* what) {
  ASSERT_FALSE(got.saturated) << what;
  EXPECT_EQ(got.score, ref.score) << what;
  EXPECT_EQ(got.end_query, ref.end_query) << what;
  EXPECT_EQ(got.end_ref, ref.end_ref) << what;
}

TEST_P(DiagKernelTest, MatchesGoldenOnRandomPairs) {
  std::mt19937_64 rng(101);
  for (int it = 0; it < 40; ++it) {
    auto q = seq::generate_sequence(rng(), 1 + rng() % 200);
    auto r = seq::generate_sequence(rng(), 1 + rng() % 250);
    AlignConfig cfg = base_config();
    Alignment got = diag_align(q, r, cfg, ws_);
    if (got.saturated) continue;  // legal for fixed narrow widths
    Alignment ref = ref_align(q, r, cfg);
    expect_equal(got, ref, "random pair");
  }
}

TEST_P(DiagKernelTest, MatchesGoldenAcrossGapModelsAndSchemes) {
  std::mt19937_64 rng(102);
  for (int scheme = 0; scheme < 2; ++scheme)
    for (int gm = 0; gm < 2; ++gm)
      for (int it = 0; it < 8; ++it) {
        auto q = seq::generate_sequence(rng(), 1 + rng() % 120);
        auto r = seq::generate_sequence(rng(), 1 + rng() % 120);
        AlignConfig cfg = base_config();
        cfg.scheme = scheme ? ScoreScheme::Fixed : ScoreScheme::Matrix;
        cfg.gap_model = gm ? GapModel::Linear : GapModel::Affine;
        cfg.gap_open = 6 + static_cast<int>(rng() % 8);
        cfg.gap_extend = 1 + static_cast<int>(rng() % 3);
        Alignment got = diag_align(q, r, cfg, ws_);
        if (got.saturated) continue;
        expect_equal(got, ref_align(q, r, cfg), "scheme/gap sweep");
      }
}

TEST_P(DiagKernelTest, MatchesGoldenOnAllMatrices) {
  std::mt19937_64 rng(103);
  for (const std::string& name : matrix::ScoreMatrix::builtin_names()) {
    auto q = seq::generate_sequence(rng(), 90);
    auto r = seq::generate_sequence(rng(), 110);
    AlignConfig cfg = base_config();
    cfg.matrix = matrix::ScoreMatrix::find(name);
    Alignment got = diag_align(q, r, cfg, ws_);
    if (got.saturated) continue;
    expect_equal(got, ref_align(q, r, cfg), name.c_str());
  }
}

TEST_P(DiagKernelTest, RaggedShapesExerciseScalarTail) {
  // Lengths around the lane counts hit every ragged-diagonal case.
  std::mt19937_64 rng(104);
  for (int m : {1, 2, 3, 7, 8, 15, 16, 17, 31, 32, 33, 63, 64, 65})
    for (int n : {1, 5, 16, 33, 64}) {
      auto q = seq::generate_sequence(rng(), static_cast<uint32_t>(m));
      auto r = seq::generate_sequence(rng(), static_cast<uint32_t>(n));
      AlignConfig cfg = base_config();
      Alignment got = diag_align(q, r, cfg, ws_);
      if (got.saturated) continue;
      expect_equal(got, ref_align(q, r, cfg), "ragged shape");
    }
}

TEST_P(DiagKernelTest, CellAccountingIsExact) {
  auto q = seq::generate_sequence(7, 70);
  auto r = seq::generate_sequence(8, 90);
  AlignConfig cfg = base_config();
  if (cfg.width == Width::Adaptive) cfg.width = Width::W16;
  Alignment a = diag_align(q, r, cfg, ws_);
  EXPECT_EQ(a.stats.cells, 70u * 90u);
  EXPECT_EQ(a.stats.vector_cells + a.stats.scalar_cells, a.stats.cells);
  EXPECT_EQ(a.stats.diagonals, 70u + 90u - 1u);
}

TEST_P(DiagKernelTest, TracebackReplaysToReportedScore) {
  std::mt19937_64 rng(105);
  for (int it = 0; it < 25; ++it) {
    auto q = seq::generate_sequence(rng(), 1 + rng() % 150);
    auto r = seq::generate_sequence(rng(), 1 + rng() % 150);
    AlignConfig cfg = base_config();
    cfg.traceback = true;
    cfg.gap_model = (it & 1) ? GapModel::Linear : GapModel::Affine;
    Alignment got = diag_align(q, r, cfg, ws_);
    if (got.saturated || got.score == 0) continue;
    Alignment ref = ref_align(q, r, cfg);
    expect_equal(got, ref, "traceback pair");
    EXPECT_EQ(replay_score(q, r, cfg, got), got.score);
    EXPECT_EQ(got.begin_query, ref.begin_query);
    EXPECT_EQ(got.begin_ref, ref.begin_ref);
    EXPECT_EQ(got.cigar, ref.cigar);
  }
}

TEST_P(DiagKernelTest, AllScoreDeliveriesAgree) {
  std::mt19937_64 rng(107);
  for (int it = 0; it < 12; ++it) {
    auto q = seq::generate_sequence(rng(), 1 + rng() % 200);
    auto r = seq::generate_sequence(rng(), 1 + rng() % 200);
    AlignConfig cfg = base_config();
    cfg.traceback = (it & 1) != 0;
    Alignment ref = ref_align(q, r, cfg);
    for (ScoreDelivery d : {ScoreDelivery::Gather, ScoreDelivery::Fill,
                            ScoreDelivery::Shuffle, ScoreDelivery::Auto}) {
      cfg.delivery = d;
      Alignment got = diag_align(q, r, cfg, ws_);
      if (got.saturated) continue;
      EXPECT_EQ(got.score, ref.score) << "delivery " << static_cast<int>(d);
      EXPECT_EQ(got.end_query, ref.end_query);
      EXPECT_EQ(got.end_ref, ref.end_ref);
      if (cfg.traceback && got.score > 0) EXPECT_EQ(got.cigar, ref.cigar);
    }
  }
}

TEST_P(DiagKernelTest, EmptyInputs) {
  seq::Sequence e("e", "", seq::Alphabet::protein());
  auto q = seq::generate_sequence(1, 10);
  AlignConfig cfg = base_config();
  Alignment a = diag_align(e, q, cfg, ws_);
  EXPECT_EQ(a.score, 0);
  EXPECT_EQ(a.end_query, -1);
  a = diag_align(q, e, cfg, ws_);
  EXPECT_EQ(a.score, 0);
  a = diag_align(e, e, cfg, ws_);
  EXPECT_EQ(a.score, 0);
}

TEST_P(DiagKernelTest, HighIdentityPairSaturatesNarrowWidths) {
  // ~600 residues of near-identity: score ~ 600*5 >> 255.
  auto q = seq::generate_sequence(9, 600);
  auto hom = seq::mutate(q, 10, 0.05);
  AlignConfig cfg = base_config();
  Alignment ref = ref_align(q, hom, cfg);
  ASSERT_GT(ref.score, 300);  // enough to overflow 8-bit
  Alignment got = diag_align(q, hom, cfg, ws_);
  switch (GetParam().width) {
    case Width::W8:
      EXPECT_TRUE(got.saturated);
      break;
    case Width::Adaptive:
      EXPECT_TRUE(got.saturated_8);
      EXPECT_FALSE(got.saturated);
      EXPECT_EQ(got.score, ref.score);
      break;
    default:
      EXPECT_FALSE(got.saturated);
      EXPECT_EQ(got.score, ref.score);
      break;
  }
}

TEST_P(DiagKernelTest, DeterministicAcrossRepeats) {
  auto q = seq::generate_sequence(11, 130);
  auto r = seq::generate_sequence(12, 170);
  AlignConfig cfg = base_config();
  cfg.traceback = true;
  Alignment a = diag_align(q, r, cfg, ws_);
  for (int rep = 0; rep < 3; ++rep) {
    Alignment b = diag_align(q, r, cfg, ws_);
    EXPECT_EQ(a.score, b.score);
    EXPECT_EQ(a.end_query, b.end_query);
    EXPECT_EQ(a.end_ref, b.end_ref);
    EXPECT_EQ(a.cigar, b.cigar);
  }
}

TEST_P(DiagKernelTest, WorkspaceReuseAcrossShapes) {
  // Shrinking then growing inputs must not leak state between calls.
  std::mt19937_64 rng(106);
  AlignConfig cfg = base_config();
  for (uint32_t len : {200u, 3u, 150u, 1u, 64u, 300u, 2u}) {
    auto q = seq::generate_sequence(rng(), len);
    auto r = seq::generate_sequence(rng(), len / 2 + 1);
    Alignment got = diag_align(q, r, cfg, ws_);
    if (got.saturated) continue;
    expect_equal(got, ref_align(q, r, cfg), "workspace reuse");
  }
}

TEST_P(DiagKernelTest, TracebackCellCapThrows) {
  AlignConfig cfg = base_config();
  cfg.traceback = true;
  cfg.max_traceback_cells = 10;
  auto q = seq::generate_sequence(1, 20);
  auto r = seq::generate_sequence(2, 20);
  EXPECT_THROW(diag_align(q, r, cfg, ws_), std::length_error);
}

INSTANTIATE_TEST_SUITE_P(AllKernels, DiagKernelTest,
                         ::testing::ValuesIn(kernel_params()), param_name);

TEST(DiagDispatch, RejectsAdaptiveWidthAtKernelLevel) {
  DiagRequest rq;
  EXPECT_THROW(run_diag_kernel(rq, simd::Isa::Scalar, Width::Adaptive),
               std::invalid_argument);
}

TEST(DiagDispatch, AutoIsaResolvesAndRuns) {
  Workspace ws;
  auto q = seq::generate_sequence(1, 50);
  auto r = seq::generate_sequence(2, 60);
  AlignConfig cfg;
  cfg.isa = simd::Isa::Auto;
  Alignment a = diag_align(q, r, cfg, ws);
  EXPECT_EQ(a.isa_used, simd::resolve_isa(simd::Isa::Auto));
  EXPECT_EQ(a.score, ref_align(q, r, cfg).score);
}

}  // namespace
}  // namespace swve::core
