#include <gtest/gtest.h>

#include "simd/cpu.hpp"

namespace swve::simd {
namespace {

TEST(Cpu, FeaturesAreCachedAndConsistent) {
  const CpuFeatures& a = cpu_features();
  const CpuFeatures& b = cpu_features();
  EXPECT_EQ(&a, &b);
  EXPECT_GE(a.hardware_threads, 1u);
  if (a.avx512vbmi) EXPECT_TRUE(a.avx512bw_vl);
}

TEST(Cpu, ScalarAlwaysAvailable) {
  EXPECT_TRUE(isa_available(Isa::Scalar));
  EXPECT_TRUE(isa_available(Isa::Auto));
}

TEST(Cpu, ResolveAutoPicksWidestAvailable) {
  Isa resolved = resolve_isa(Isa::Auto);
  EXPECT_NE(resolved, Isa::Auto);
  EXPECT_TRUE(isa_available(resolved));
  if (isa_available(Isa::Avx512)) EXPECT_EQ(resolved, Isa::Avx512);
  else if (isa_available(Isa::Avx2)) EXPECT_EQ(resolved, Isa::Avx2);
  else if (isa_available(Isa::Sse41)) EXPECT_EQ(resolved, Isa::Sse41);
  else EXPECT_EQ(resolved, Isa::Scalar);
}

TEST(Cpu, ResolveConcreteIsIdentityWhenAvailable) {
  for (Isa isa : {Isa::Scalar, Isa::Sse41, Isa::Avx2, Isa::Avx512})
    if (isa_available(isa)) EXPECT_EQ(resolve_isa(isa), isa);
}

TEST(Cpu, AvxImpliesSse41) {
  if (isa_available(Isa::Avx2)) EXPECT_TRUE(isa_available(Isa::Sse41));
}

TEST(Cpu, Names) {
  EXPECT_STREQ(isa_name(Isa::Sse41), "sse41");
  EXPECT_STREQ(isa_name(Isa::Scalar), "scalar");
  EXPECT_STREQ(isa_name(Isa::Avx2), "avx2");
  EXPECT_STREQ(isa_name(Isa::Avx512), "avx512");
  EXPECT_STREQ(isa_name(Isa::Auto), "auto");
}

TEST(Cpu, ParseNames) {
  EXPECT_EQ(isa_from_string("avx2"), Isa::Avx2);
  EXPECT_EQ(isa_from_string("SSE4.1"), Isa::Sse41);
  EXPECT_EQ(isa_from_string("AVX512"), Isa::Avx512);
  EXPECT_EQ(isa_from_string("Scalar"), Isa::Scalar);
  EXPECT_EQ(isa_from_string("auto"), Isa::Auto);
  EXPECT_THROW(isa_from_string("sse9"), std::invalid_argument);
}

}  // namespace
}  // namespace swve::simd
