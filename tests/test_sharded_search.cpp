// ShardedSearch: the sharded scenario-1 batch path (ISSUE 10 tentpole).
//
// The load-bearing property is bit-identity: splitting the packed database
// into S shards, scanning them on independent pinned pools, and merging the
// bounded per-shard heaps must return exactly the flat engine's answer —
// for every packing policy, interleave depth, and shard count, including
// ragged splits and duplicate-score tie-breaks. Also covers the shard
// planner's invariants, the typed config error for impossible shard
// counts, the SWVE_NUMA=off escape hatch, cancellation/deadline mid-shard,
// concurrent searches on one instance (the TSan lane runs this file), and
// the service-level wiring (ServiceOptions.search.shards).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <thread>
#include <vector>

#include "align/db_search.hpp"
#include "align/sharded_search.hpp"
#include "core/dispatch.hpp"
#include "seq/synthetic.hpp"
#include "service/align_service.hpp"

namespace swve::align {
namespace {

using Code = core::ConfigError::Code;

seq::SequenceDatabase make_db(uint64_t residues, uint64_t seed = 15) {
  seq::SyntheticConfig cfg;
  cfg.seed = seed;
  cfg.target_residues = residues;
  cfg.min_length = 20;
  cfg.max_length = 400;
  return seq::SequenceDatabase::synthetic(cfg);
}

void expect_same_hits(const SearchResult& got, const SearchResult& want,
                      const std::string& label) {
  ASSERT_EQ(got.hits.size(), want.hits.size()) << label;
  for (size_t k = 0; k < want.hits.size(); ++k) {
    EXPECT_EQ(got.hits[k].seq_index, want.hits[k].seq_index) << label << " #" << k;
    EXPECT_EQ(got.hits[k].score, want.hits[k].score) << label << " #" << k;
    EXPECT_EQ(got.hits[k].end_query, want.hits[k].end_query) << label << " #" << k;
    EXPECT_EQ(got.hits[k].end_ref, want.hits[k].end_ref) << label << " #" << k;
  }
}

TEST(ShardedSearch, BitIdenticalAcrossPoliciesDepthsAndShardCounts) {
  auto db = make_db(160'000);
  auto q = seq::generate_sequence(90, 150);
  const simd::Isa isa = simd::resolve_isa(simd::Isa::Auto);

  for (core::PackingPolicy policy :
       {core::PackingPolicy::DbOrder, core::PackingPolicy::LengthSorted,
        core::PackingPolicy::LengthBinned}) {
    for (int k : {1, 2, 4}) {
      core::set_ilp_override(isa, core::IlpPolicy::fixed(k));
      DatabaseSearch flat(db, core::AlignConfig{}, SearchMode::Batch, policy);
      SearchResult want = flat.search(q, 12);
      const size_t batches = flat.packed_db()->batch_count();
      ASSERT_GE(batches, 7u) << "workload too small to exercise S=7";

      for (int s : {1, 2, 3, 7}) {
        DatabaseSearch sharded(db, core::AlignConfig{}, SearchMode::Batch,
                               policy);
        ShardOptions sopt;
        sopt.shards = s;
        sopt.total_threads = 4;
        auto ok = sharded.enable_sharding(sopt);
        ASSERT_TRUE(ok.ok()) << ok.error().message;
        ASSERT_NE(sharded.sharded(), nullptr);
        EXPECT_EQ(sharded.sharded()->shard_count(), static_cast<size_t>(s));
        SearchResult got = sharded.search(q, 12);
        expect_same_hits(got, want,
                         std::string(core::packing_policy_name(policy)) +
                             " k" + std::to_string(k) + " s" +
                             std::to_string(s));
      }
    }
  }
  core::set_ilp_override(isa, core::IlpPolicy::auto_policy());
}

TEST(ShardedSearch, PlanShardsIsContiguousCompleteAndNonEmpty) {
  auto db = make_db(50'000, 33);
  core::Batch32Db packed(db, 32);
  const size_t n = packed.batch_count();
  ASSERT_GE(n, 5u);

  for (size_t s : {size_t{1}, size_t{2}, size_t{3}, n - 1, n}) {
    auto ranges = ShardedSearch::plan_shards(packed, s);
    ASSERT_EQ(ranges.size(), s) << s;
    size_t expect_begin = 0;
    for (const auto& [b, e] : ranges) {
      EXPECT_EQ(b, expect_begin) << s;   // contiguous, in order
      EXPECT_GT(e, b) << s;              // every shard owns >= 1 batch
      expect_begin = e;
    }
    EXPECT_EQ(ranges.back().second, n) << s;  // ragged tail absorbs the rest
  }

  // More shards than batches clamps instead of planning empty shards.
  auto clamped = ShardedSearch::plan_shards(packed, n + 10);
  EXPECT_EQ(clamped.size(), n);
}

TEST(ShardedSearch, RaggedLastShardStillIdentical) {
  auto db = make_db(60'000, 7);
  DatabaseSearch flat(db, core::AlignConfig{}, SearchMode::Batch);
  const size_t n = flat.packed_db()->batch_count();
  ASSERT_GE(n, 3u);
  auto q = seq::generate_sequence(91, 120);
  SearchResult want = flat.search(q, 10);

  // n-1 shards forces a deliberately lopsided plan: n-2 singleton shards
  // plus whatever the planner leaves for the tail.
  DatabaseSearch sharded(db, core::AlignConfig{}, SearchMode::Batch);
  ShardOptions sopt;
  sopt.shards = static_cast<int>(n - 1);
  sopt.total_threads = 2;
  ASSERT_TRUE(sharded.enable_sharding(sopt).ok());
  expect_same_hits(sharded.search(q, 10), want, "ragged");
}

TEST(ShardedSearch, DuplicateScoresKeepTieBreakOrder) {
  // Clone one sequence many times: the clones tie exactly, so the top-k is
  // decided purely by the seq_index tie-break — the part of the total order
  // a wrong merge would scramble first.
  auto base = make_db(100'000, 21);
  std::vector<seq::Sequence> seqs;
  for (size_t i = 0; i < base.size(); ++i) seqs.push_back(base[i]);
  const seq::Sequence dup = seq::generate_sequence(5, 150);
  for (int i = 0; i < 40; ++i) seqs.push_back(dup);
  seq::SequenceDatabase db(std::move(seqs));

  DatabaseSearch flat(db, core::AlignConfig{}, SearchMode::Batch);
  // The query *is* the duplicated sequence, so every clone scores the same
  // self-alignment score and floods the top-k with ties.
  SearchResult want = flat.search(dup, 25);
  bool saw_tie = false;
  for (size_t i = 1; i < want.hits.size(); ++i) {
    if (want.hits[i].score == want.hits[i - 1].score) {
      saw_tie = true;
      EXPECT_LT(want.hits[i - 1].seq_index, want.hits[i].seq_index);
    }
  }
  EXPECT_TRUE(saw_tie);

  for (int s : {2, 3}) {
    DatabaseSearch sharded(db, core::AlignConfig{}, SearchMode::Batch);
    ShardOptions sopt;
    sopt.shards = s;
    sopt.total_threads = 3;
    ASSERT_TRUE(sharded.enable_sharding(sopt).ok());
    expect_same_hits(sharded.search(dup, 25), want,
                     "ties s" + std::to_string(s));
  }
}

TEST(ShardedSearch, ShardsExceedingBatchesIsTypedError) {
  auto db = make_db(2'000, 3);  // tiny: a handful of batches at most
  core::Batch32Db packed(db, 32);
  ShardOptions sopt;
  sopt.shards = static_cast<int>(packed.batch_count()) + 1;
  auto r = ShardedSearch::create(db, packed, sopt);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, Code::Unsupported);
  EXPECT_NE(r.error().message.find("exceeds packed batch count"),
            std::string::npos);

  // Negative counts are rejected the same way…
  sopt.shards = -1;
  EXPECT_EQ(ShardedSearch::create(db, packed, sopt).error().code,
            Code::Unsupported);

  // …but auto (0) degrades gracefully, clamping to the batch count.
  set_shard_count_hint(64);
  sopt.shards = 0;
  auto auto_r = ShardedSearch::create(db, packed, sopt);
  set_shard_count_hint(0);
  ASSERT_TRUE(auto_r.ok());
  EXPECT_LE((*auto_r)->shard_count(), packed.batch_count());
  EXPECT_GE((*auto_r)->shard_count(), 1u);
}

TEST(ShardedSearch, NumaEnvKnobForcesPolicyOff) {
  auto db = make_db(20'000, 9);
  core::Batch32Db packed(db, 32);
  ShardOptions sopt;
  sopt.shards = 2;
  sopt.numa = parallel::NumaPolicy::Bind;
  sopt.total_threads = 2;

  ::setenv("SWVE_NUMA", "off", 1);
  auto off = ShardedSearch::create(db, packed, sopt);
  ::unsetenv("SWVE_NUMA");
  ASSERT_TRUE(off.ok());
  EXPECT_EQ((*off)->numa_policy(), parallel::NumaPolicy::Off);

  // Without the knob the requested policy survives (placement may still be
  // a no-op on a single-node host, but the policy is honored).
  auto on = ShardedSearch::create(db, packed, sopt);
  ASSERT_TRUE(on.ok());
  EXPECT_EQ((*on)->numa_policy(), parallel::NumaPolicy::Bind);
}

TEST(ShardedSearch, CancellationAndDeadlineTruncateCleanly) {
  auto db = make_db(60'000, 11);
  DatabaseSearch sharded(db, core::AlignConfig{}, SearchMode::Batch);
  ShardOptions sopt;
  sopt.shards = 3;
  sopt.total_threads = 3;
  ASSERT_TRUE(sharded.enable_sharding(sopt).ok());
  auto q = seq::generate_sequence(92, 200);

  {
    std::atomic<bool> cancel{true};  // cancelled before the first group
    ExecContext ctx;
    ctx.cancel = &cancel;
    SearchResult r = sharded.search(q, 10, ctx);
    EXPECT_TRUE(r.truncated);
    EXPECT_TRUE(r.hits.empty());  // partial answers are withheld, not mixed
  }
  {
    ExecContext ctx;
    ctx.deadline = ExecContext::Clock::now() - std::chrono::milliseconds(1);
    SearchResult r = sharded.search(q, 10, ctx);
    EXPECT_TRUE(r.truncated);
    EXPECT_TRUE(r.hits.empty());
  }
  // The instance stays healthy after a truncated pass.
  SearchResult ok = sharded.search(q, 10);
  EXPECT_FALSE(ok.truncated);
  EXPECT_FALSE(ok.hits.empty());
}

TEST(ShardedSearch, ConcurrentSearchesOnOneInstance) {
  auto db = make_db(40'000, 13);
  DatabaseSearch sharded(db, core::AlignConfig{}, SearchMode::Batch);
  ShardOptions sopt;
  sopt.shards = 3;
  sopt.total_threads = 3;
  ASSERT_TRUE(sharded.enable_sharding(sopt).ok());

  auto q = seq::generate_sequence(94, 130);
  SearchResult want = sharded.search(q, 10);

  std::vector<std::thread> threads;
  std::atomic<int> mismatches{0};
  for (int t = 0; t < 4; ++t)
    threads.emplace_back([&] {
      for (int i = 0; i < 5; ++i) {
        SearchResult got = sharded.search(q, 10);
        if (got.hits.size() != want.hits.size()) {
          ++mismatches;
          continue;
        }
        for (size_t k = 0; k < want.hits.size(); ++k)
          if (got.hits[k].seq_index != want.hits[k].seq_index ||
              got.hits[k].score != want.hits[k].score)
            ++mismatches;
      }
    });
  for (auto& th : threads) th.join();
  EXPECT_EQ(mismatches.load(), 0);
}

TEST(ShardedSearch, StatsAttributeWorkToEveryShard) {
  auto db = make_db(50'000, 17);
  DatabaseSearch sharded(db, core::AlignConfig{}, SearchMode::Batch);
  ShardOptions sopt;
  sopt.shards = 3;
  sopt.total_threads = 3;
  ASSERT_TRUE(sharded.enable_sharding(sopt).ok());
  auto q = seq::generate_sequence(95, 140);
  sharded.search(q, 10);

  const ShardedSearch* sh = sharded.sharded();
  ASSERT_NE(sh, nullptr);
  uint64_t total_batches = 0, total_seqs = 0;
  for (size_t i = 0; i < sh->shard_count(); ++i) {
    const ShardStats st = sh->shard_stats(i);
    EXPECT_EQ(st.searches, 1u) << i;
    EXPECT_GT(st.cells, 0u) << i;
    EXPECT_GT(st.busy_seconds, 0.0) << i;
    EXPECT_EQ(st.end_batch - st.first_batch, st.batches) << i;
    total_batches += st.batches;
    total_seqs += st.sequences;
  }
  EXPECT_EQ(total_batches, sharded.packed_db()->batch_count());
  EXPECT_EQ(total_seqs, db.size());
}

TEST(ShardedSearch, ServiceLevelShardingMatchesUnsharded) {
  auto db = make_db(60'000, 19);
  auto q = seq::generate_sequence(96, 150);

  service::ServiceOptions plain;
  plain.pool_threads = 2;
  service::AlignService flat_svc(db, plain);
  service::SearchRequest rq;
  rq.query = q;
  rq.mode = SearchMode::Batch;
  rq.options.top_k = 10;
  service::SearchResponse want = flat_svc.submit_search(std::move(rq)).get();

  service::ServiceOptions opt;
  opt.pool_threads = 2;
  opt.search.shards = 2;
  ASSERT_TRUE(opt.try_validate().ok());
  service::AlignService svc(db, opt);
  ASSERT_NE(svc.sharded(), nullptr);
  EXPECT_EQ(svc.sharded()->shard_count(), 2u);

  service::SearchRequest srq;
  srq.query = q;
  srq.mode = SearchMode::Batch;
  srq.options.top_k = 10;
  service::SearchResponse got = svc.submit_search(std::move(srq)).get();
  expect_same_hits(got.result, want.result, "service");

  const perf::MetricsSnapshot m = svc.metrics();
  ASSERT_EQ(m.shard_count, 2u);
  EXPECT_GT(m.shards[0].cells + m.shards[1].cells, 0u);

  // Impossible shard counts surface as a typed validation error, not a
  // half-constructed service.
  service::ServiceOptions bad;
  bad.search.shards = -2;
  EXPECT_EQ(bad.try_validate().error().code, Code::Unsupported);
}

}  // namespace
}  // namespace swve::align
