#include <gtest/gtest.h>

#include "seq/alphabet.hpp"

namespace swve::seq {
namespace {

TEST(Alphabet, ProteinOrderMatchesNcbiConvention) {
  const Alphabet& a = Alphabet::protein();
  EXPECT_EQ(a.letters(), "ARNDCQEGHILKMFPSTWYVBZX*");
  EXPECT_EQ(a.size(), 24);
  EXPECT_EQ(a.kind(), AlphabetKind::Protein);
}

TEST(Alphabet, ProteinEncodeDecodeRoundTrip) {
  const Alphabet& a = Alphabet::protein();
  for (int c = 0; c < a.size(); ++c)
    EXPECT_EQ(a.encode(a.decode(static_cast<uint8_t>(c))), c);
}

TEST(Alphabet, EncodeIsCaseInsensitive) {
  const Alphabet& a = Alphabet::protein();
  EXPECT_EQ(a.encode('a'), a.encode('A'));
  EXPECT_EQ(a.encode('w'), a.encode('W'));
  EXPECT_EQ(Alphabet::dna().encode('t'), Alphabet::dna().encode('T'));
}

TEST(Alphabet, UnknownCharactersMapToWildcard) {
  const Alphabet& a = Alphabet::protein();
  EXPECT_EQ(a.encode('J'), a.wildcard());
  EXPECT_EQ(a.encode('@'), a.wildcard());
  EXPECT_EQ(a.encode('\n'), a.wildcard());
  EXPECT_EQ(a.encode('1'), a.wildcard());
  EXPECT_EQ(a.decode(a.wildcard()), 'X');
}

TEST(Alphabet, ProteinWildcardIsX) {
  const Alphabet& a = Alphabet::protein();
  EXPECT_EQ(a.encode('X'), a.wildcard());
  EXPECT_EQ(a.wildcard(), 22);  // position of X in the 24-letter order
}

TEST(Alphabet, DnaWildcardIsN) {
  const Alphabet& a = Alphabet::dna();
  EXPECT_EQ(a.decode(a.wildcard()), 'N');
  EXPECT_EQ(a.encode('Q'), a.wildcard());
}

TEST(Alphabet, DnaCoreBasesHaveLowCodes) {
  const Alphabet& a = Alphabet::dna();
  EXPECT_EQ(a.encode('A'), 0);
  EXPECT_EQ(a.encode('C'), 1);
  EXPECT_EQ(a.encode('G'), 2);
  EXPECT_EQ(a.encode('T'), 3);
}

TEST(Alphabet, AllCodesFitMatrixStride) {
  EXPECT_LE(Alphabet::protein().size(), kMatrixStride);
  EXPECT_LE(Alphabet::dna().size(), kMatrixStride);
}

TEST(Alphabet, GetByKind) {
  EXPECT_EQ(&Alphabet::get(AlphabetKind::Protein), &Alphabet::protein());
  EXPECT_EQ(&Alphabet::get(AlphabetKind::Dna), &Alphabet::dna());
}

TEST(Alphabet, DecodeOutOfRange) {
  EXPECT_EQ(Alphabet::protein().decode(200), '?');
}

TEST(Alphabet, DecodeString) {
  const Alphabet& a = Alphabet::protein();
  uint8_t codes[] = {0, 1, 2, 3};
  EXPECT_EQ(decode_string(a, codes, 4), "ARND");
  EXPECT_EQ(decode_string(a, codes, 0), "");
}

}  // namespace
}  // namespace swve::seq
