#include <gtest/gtest.h>

#include <random>

#include "align/global.hpp"
#include "core/scalar_ref.hpp"
#include "core/traceback.hpp"
#include "seq/synthetic.hpp"

namespace swve::align {
namespace {

using core::AlignConfig;
using core::Alignment;
using seq::Alphabet;
using seq::Sequence;

AlignConfig dna_fixed(int match, int mismatch, int open, int ext) {
  AlignConfig cfg;
  cfg.scheme = core::ScoreScheme::Fixed;
  cfg.match = match;
  cfg.mismatch = mismatch;
  cfg.gap_open = open;
  cfg.gap_extend = ext;
  cfg.traceback = true;
  return cfg;
}

Sequence dna(const char* s) { return Sequence("d", s, Alphabet::dna()); }

// Independent O(3mn) reference for Needleman-Wunsch (affine, full matrices).
int nw_ref(seq::SeqView q, seq::SeqView r, const AlignConfig& cfg) {
  const int m = static_cast<int>(q.length), n = static_cast<int>(r.length);
  const int NEG = INT32_MIN / 4;
  const int open = cfg.gap_model == core::GapModel::Affine ? cfg.gap_open
                                                           : cfg.gap_extend;
  const int ext = cfg.gap_extend;
  auto sc = [&](int i, int j) {
    return cfg.scheme == core::ScoreScheme::Matrix
               ? cfg.matrix->score(q[static_cast<size_t>(i)], r[static_cast<size_t>(j)])
               : (q[static_cast<size_t>(i)] == r[static_cast<size_t>(j)] ? cfg.match
                                                                         : cfg.mismatch);
  };
  std::vector<std::vector<int>> H(m + 1, std::vector<int>(n + 1, NEG)), E = H, F = H;
  H[0][0] = 0;
  for (int i = 1; i <= m; ++i) E[i][0] = H[i][0] = -(open + (i - 1) * ext);
  for (int j = 1; j <= n; ++j) F[0][j] = H[0][j] = -(open + (j - 1) * ext);
  for (int i = 1; i <= m; ++i)
    for (int j = 1; j <= n; ++j) {
      E[i][j] = std::max(H[i - 1][j] - open, E[i - 1][j] - ext);
      F[i][j] = std::max(H[i][j - 1] - open, F[i][j - 1] - ext);
      H[i][j] = std::max({H[i - 1][j - 1] + sc(i - 1, j - 1), E[i][j], F[i][j]});
    }
  return H[m][n];
}

TEST(GlobalAlign, IdenticalSequences) {
  Sequence q("q", "ARNDCQEG", Alphabet::protein());
  AlignConfig cfg;
  cfg.traceback = true;
  Alignment a = global_align(q, q, cfg, GlobalMode::Global);
  int diag = 0;
  for (uint8_t c : q.codes()) diag += cfg.matrix->score(c, c);
  EXPECT_EQ(a.score, diag);
  EXPECT_EQ(a.cigar.to_string(), "8M");
  EXPECT_EQ(a.begin_query, 0);
  EXPECT_EQ(a.end_query, 7);
}

TEST(GlobalAlign, EndGapsPayInGlobalMode) {
  AlignConfig cfg = dna_fixed(5, -4, 3, 1);
  Alignment a = global_align(dna("AATTT"), dna("AAGTTT"), cfg, GlobalMode::Global);
  EXPECT_EQ(a.score, 25 - 3);
  EXPECT_EQ(a.cigar.to_string(), "2M1D3M");
  // Prefix-only overlap: trailing gap must be paid.
  Alignment b = global_align(dna("AAA"), dna("AAATTTT"), cfg, GlobalMode::Global);
  EXPECT_EQ(b.score, 15 - (3 + 3 * 1));
  EXPECT_EQ(b.cigar.to_string(), "3M4D");
}

TEST(GlobalAlign, MatchesIndependentNwReference) {
  std::mt19937_64 rng(501);
  for (int it = 0; it < 40; ++it) {
    auto q = seq::generate_sequence(rng(), 1 + rng() % 90);
    auto r = seq::generate_sequence(rng(), 1 + rng() % 90);
    AlignConfig cfg;
    cfg.gap_open = 4 + static_cast<int>(rng() % 10);
    cfg.gap_extend = 1 + static_cast<int>(rng() % 3);
    cfg.traceback = (it & 1) != 0;
    Alignment a = global_align(q, r, cfg, GlobalMode::Global);
    EXPECT_EQ(a.score, nw_ref(q, r, cfg)) << "it=" << it;
    if (cfg.traceback) {
      EXPECT_EQ(a.cigar.query_consumed(), q.length());
      EXPECT_EQ(a.cigar.ref_consumed(), r.length());
      EXPECT_EQ(core::replay_score(q, r, cfg, a), a.score);
    }
  }
}

TEST(GlobalAlign, SemiGlobalMapsReadIntoWindow) {
  // The whole read must align; reference overhangs are free.
  AlignConfig cfg = dna_fixed(2, -3, 5, 2);
  auto ref = seq::generate_sequence(502, 400, seq::AlphabetKind::Dna);
  auto read = ref.subsequence(120, 60);
  Alignment a = global_align(read, ref, cfg, GlobalMode::SemiGlobal);
  EXPECT_EQ(a.score, 2 * 60);  // perfect read, free overhangs
  EXPECT_EQ(a.begin_ref, 120);
  EXPECT_EQ(a.end_ref, 179);
  EXPECT_EQ(a.begin_query, 0);
  EXPECT_EQ(a.end_query, 59);
  EXPECT_EQ(a.cigar.to_string(), "60M");
}

TEST(GlobalAlign, SemiGlobalChargesQueryGapsOnly) {
  AlignConfig cfg = dna_fixed(5, -4, 3, 1);
  // Read has one extra base relative to its window: one I, overhangs free.
  Alignment a =
      global_align(dna("AACTTT"), dna("GGAATTTGG"), cfg, GlobalMode::SemiGlobal);
  EXPECT_EQ(a.score, 25 - 3);
  EXPECT_EQ(a.cigar.to_string(), "2M1I3M");
}

TEST(GlobalAlign, OverlapDetectsDovetail) {
  // Suffix of q overlaps prefix of r; both overhangs free.
  AlignConfig cfg = dna_fixed(5, -4, 3, 1);
  Alignment a =
      global_align(dna("CCCCAATTT"), dna("AATTTGGGG"), cfg, GlobalMode::Overlap);
  EXPECT_EQ(a.score, 25);
  EXPECT_EQ(a.cigar.to_string(), "5M");
  EXPECT_EQ(a.begin_query, 4);
  EXPECT_EQ(a.end_query, 8);
  EXPECT_EQ(a.begin_ref, 0);
  EXPECT_EQ(a.end_ref, 4);
}

TEST(GlobalAlign, ModeScoresAreOrdered) {
  // Relaxing end-gap charges can only help:
  // Global <= SemiGlobal <= Overlap, and all <= local SW.
  std::mt19937_64 rng(503);
  for (int it = 0; it < 25; ++it) {
    auto q = seq::generate_sequence(rng(), 1 + rng() % 120);
    auto r = seq::generate_sequence(rng(), 1 + rng() % 120);
    AlignConfig cfg;
    cfg.gap_open = 6;
    cfg.gap_extend = 1;
    int g = global_align(q, r, cfg, GlobalMode::Global).score;
    int s = global_align(q, r, cfg, GlobalMode::SemiGlobal).score;
    int o = global_align(q, r, cfg, GlobalMode::Overlap).score;
    int local = core::ref_align(q, r, cfg).score;
    EXPECT_LE(g, s) << it;
    EXPECT_LE(s, o) << it;
    EXPECT_LE(o, local) << it;
  }
}

TEST(GlobalAlign, LinearGapModel) {
  AlignConfig cfg = dna_fixed(5, -4, 0, 2);
  cfg.gap_model = core::GapModel::Linear;
  Alignment a = global_align(dna("AATTT"), dna("AAGGGTTT"), cfg, GlobalMode::Global);
  EXPECT_EQ(a.score, 25 - 3 * 2);
  EXPECT_EQ(a.cigar.to_string(), "2M3D3M");
}

TEST(GlobalAlign, BandedMatchesFullWhenBandCovers) {
  std::mt19937_64 rng(504);
  for (int it = 0; it < 15; ++it) {
    uint32_t len = 30 + static_cast<uint32_t>(rng() % 60);
    auto q = seq::generate_sequence(rng(), len);
    auto hom = seq::mutate(q, rng(), 0.2);
    AlignConfig cfg;
    Alignment full = global_align(q, hom, cfg, GlobalMode::Global);
    cfg.band = static_cast<int>(len);  // covers everything
    Alignment banded = global_align(q, hom, cfg, GlobalMode::Global);
    EXPECT_EQ(banded.score, full.score) << it;
  }
}

TEST(GlobalAlign, BandedRejectsImpossibleGlobalPath) {
  AlignConfig cfg;
  cfg.band = 2;
  auto q = seq::generate_sequence(1, 10);
  auto r = seq::generate_sequence(2, 30);
  EXPECT_THROW(global_align(q, r, cfg, GlobalMode::Global), std::invalid_argument);
}

TEST(GlobalAlign, EmptyInputs) {
  AlignConfig cfg = dna_fixed(5, -4, 3, 1);
  Sequence e("e", "", Alphabet::dna());
  Sequence t = dna("ACGT");
  EXPECT_EQ(global_align(e, t, cfg, GlobalMode::Global).score, -(3 + 3));
  EXPECT_EQ(global_align(e, t, cfg, GlobalMode::SemiGlobal).score, 0);
  EXPECT_EQ(global_align(t, e, cfg, GlobalMode::Global).score, -(3 + 3));
  EXPECT_EQ(global_align(t, e, cfg, GlobalMode::SemiGlobal).score, -(3 + 3));
  EXPECT_EQ(global_align(t, e, cfg, GlobalMode::Overlap).score, 0);
  EXPECT_EQ(global_align(e, e, cfg, GlobalMode::Global).score, 0);
}

TEST(GlobalAlign, TracebackCellCapThrows) {
  AlignConfig cfg;
  cfg.traceback = true;
  cfg.max_traceback_cells = 10;
  auto q = seq::generate_sequence(1, 30);
  EXPECT_THROW(global_align(q, q, cfg, GlobalMode::Global), std::length_error);
}

}  // namespace
}  // namespace swve::align
