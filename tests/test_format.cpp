#include <gtest/gtest.h>

#include "align/aligner.hpp"
#include "align/format.hpp"
#include "seq/synthetic.hpp"

namespace swve::align {
namespace {

using seq::Alphabet;
using seq::Sequence;

core::Alignment tb_align(const Sequence& q, const Sequence& t,
                         AlignConfig cfg = {}) {
  cfg.traceback = true;
  Aligner a(cfg);
  return a.align(q, t);
}

TEST(Format, StatsForPerfectMatch) {
  Sequence q("q", "ARNDCQEG", Alphabet::protein());
  core::Alignment a = tb_align(q, q);
  AlignmentStats s = alignment_stats(q, q, a);
  EXPECT_EQ(s.columns, 8u);
  EXPECT_EQ(s.matches, 8u);
  EXPECT_EQ(s.mismatches, 0u);
  EXPECT_EQ(s.gaps, 0u);
  EXPECT_EQ(s.gap_openings, 0u);
  EXPECT_DOUBLE_EQ(s.identity(), 1.0);
}

TEST(Format, StatsCountGapsAndMismatches) {
  AlignConfig cfg;
  cfg.scheme = core::ScoreScheme::Fixed;
  cfg.match = 5;
  cfg.mismatch = -4;
  cfg.gap_open = 3;
  cfg.gap_extend = 1;
  Sequence q("q", "AATTT", Alphabet::dna());
  Sequence t("t", "AAGGGTTT", Alphabet::dna());
  core::Alignment a = tb_align(q, t, cfg);  // 2M3D3M
  AlignmentStats s = alignment_stats(q, t, a);
  EXPECT_EQ(s.columns, 8u);
  EXPECT_EQ(s.matches, 5u);
  EXPECT_EQ(s.mismatches, 0u);
  EXPECT_EQ(s.gaps, 3u);
  EXPECT_EQ(s.gap_openings, 1u);
  EXPECT_NEAR(s.identity(), 5.0 / 8.0, 1e-12);
}

TEST(Format, StatsRejectScoreWithoutCigar) {
  Sequence q("q", "ARND", Alphabet::protein());
  core::Alignment a;
  a.score = 10;  // positive score, no traceback
  EXPECT_THROW(alignment_stats(q, q, a), std::invalid_argument);
  a.score = 0;
  EXPECT_EQ(alignment_stats(q, q, a).columns, 0u);
}

TEST(Format, RenderedBlockShowsMatchMarkers) {
  Sequence q("q", "MKTAYIAKQR", Alphabet::protein());
  Sequence t("t", "MKTAYIGKQR", Alphabet::protein());
  core::Alignment a = tb_align(q, t);
  std::string s = format_alignment(q, t, a);
  EXPECT_NE(s.find("Query  1"), std::string::npos);
  EXPECT_NE(s.find("Sbjct  1"), std::string::npos);
  EXPECT_NE(s.find("MKTAYIAKQR"), std::string::npos);
  EXPECT_NE(s.find("||||||.|||"), std::string::npos);  // one mismatch dot
}

TEST(Format, RenderedBlockShowsGapDashes) {
  AlignConfig cfg;
  cfg.scheme = core::ScoreScheme::Fixed;
  cfg.match = 5;
  cfg.mismatch = -4;
  cfg.gap_open = 3;
  cfg.gap_extend = 1;
  Sequence q("q", "AATTT", Alphabet::dna());
  Sequence t("t", "AAGTTT", Alphabet::dna());
  std::string s = format_alignment(q, t, tb_align(q, t, cfg));
  EXPECT_NE(s.find("AA-TTT"), std::string::npos);
  EXPECT_NE(s.find("AAGTTT"), std::string::npos);
}

TEST(Format, WrapsAtWidthWithRunningCoordinates) {
  auto q = seq::generate_sequence(61, 150);
  core::Alignment a = tb_align(q, q);
  std::string s = format_alignment(q, q, a, 50);
  // 150 identical columns at width 50 => three blocks; the second block
  // starts at residue 51.
  EXPECT_NE(s.find("Query  51"), std::string::npos);
  EXPECT_NE(s.find("Query  101"), std::string::npos);
  EXPECT_NE(s.find("\t150\n"), std::string::npos);
}

TEST(Format, EmptyAlignmentRendersEmpty) {
  Sequence q("q", "AAAA", Alphabet::dna());
  Sequence t("t", "TTTT", Alphabet::dna());
  AlignConfig cfg;
  cfg.scheme = core::ScoreScheme::Fixed;
  cfg.match = 2;
  cfg.mismatch = -3;
  core::Alignment a = tb_align(q, t, cfg);
  EXPECT_EQ(a.score, 0);
  EXPECT_EQ(format_alignment(q, t, a), "");
}

TEST(DnaIupacMatrix, UnambiguousBasesScorePlus5Minus4) {
  const auto& m = matrix::ScoreMatrix::dna_iupac();
  const auto& a = Alphabet::dna();
  auto s = [&](char x, char y) { return m.score(a.encode(x), a.encode(y)); };
  for (char x : {'A', 'C', 'G', 'T'})
    for (char y : {'A', 'C', 'G', 'T'})
      EXPECT_EQ(s(x, y), x == y ? 5 : -4);
}

TEST(DnaIupacMatrix, AmbiguityCodesFollowOverlapFormula) {
  const auto& m = matrix::ScoreMatrix::dna_iupac();
  const auto& a = Alphabet::dna();
  auto s = [&](char x, char y) { return m.score(a.encode(x), a.encode(y)); };
  EXPECT_EQ(s('N', 'N'), -2);  // p = 1/4 -> -1.75 -> -2 (EDNAFULL's value)
  EXPECT_EQ(s('A', 'N'), -2);  // p = 1/4
  EXPECT_EQ(s('A', 'R'), 1);   // p = 1/2 -> 0.5 -> 1
  EXPECT_EQ(s('R', 'Y'), -4);  // disjoint sets
  EXPECT_EQ(s('U', 'T'), 5);   // U == T
  // Symmetry over the whole table.
  for (int x = 0; x < m.dim(); ++x)
    for (int y = 0; y < m.dim(); ++y)
      EXPECT_EQ(m.score(static_cast<uint8_t>(x), static_cast<uint8_t>(y)),
                m.score(static_cast<uint8_t>(y), static_cast<uint8_t>(x)));
}

TEST(DnaIupacMatrix, UsableByKernels) {
  auto q = seq::generate_sequence(62, 80, seq::AlphabetKind::Dna);
  auto t = seq::generate_sequence(63, 90, seq::AlphabetKind::Dna);
  AlignConfig cfg;
  cfg.matrix = &matrix::ScoreMatrix::dna_iupac();
  cfg.gap_open = 5;
  cfg.gap_extend = 2;
  Aligner aligner(cfg);
  core::Alignment got = aligner.align(q, t);
  EXPECT_EQ(got.score, core::ref_align(q, t, cfg).score);
  EXPECT_EQ(matrix::ScoreMatrix::find("DNA"), &matrix::ScoreMatrix::dna_iupac());
}

}  // namespace
}  // namespace swve::align
