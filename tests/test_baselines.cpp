// The Parasail-style baselines (striped / scan / diag) against the golden
// scalar model, including lazy-F adversarial inputs.
#include <gtest/gtest.h>

#include <random>

#include "baseline/diag_basic.hpp"
#include "baseline/scan.hpp"
#include "baseline/striped.hpp"
#include "core/scalar_ref.hpp"
#include "seq/synthetic.hpp"
#include "simd/cpu.hpp"

namespace swve::baseline {
namespace {

using core::AlignConfig;
using core::GapModel;
using core::ScoreScheme;
using core::Workspace;

bool have_avx2() { return simd::isa_available(simd::Isa::Avx2); }

class BaselineSweep : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!have_avx2()) GTEST_SKIP() << "baseline kernels require AVX2";
  }
  Workspace ws_;
};

TEST_F(BaselineSweep, StripedMatchesGoldenOnRandomPairs) {
  std::mt19937_64 rng(31);
  for (int it = 0; it < 50; ++it) {
    auto q = seq::generate_sequence(rng(), 1 + rng() % 250);
    auto r = seq::generate_sequence(rng(), 1 + rng() % 250);
    AlignConfig cfg;
    cfg.gap_open = 4 + static_cast<int>(rng() % 12);
    cfg.gap_extend = 1 + static_cast<int>(rng() % 3);
    int ref = core::ref_align(q, r, cfg).score;
    StripedAligner sa(q, cfg);
    BaselineResult r16 = sa.align16(r, ws_);
    EXPECT_EQ(r16.score, ref) << "striped16 it=" << it;
    BaselineResult r8 = sa.align8(r, ws_);
    if (!r8.saturated) EXPECT_EQ(r8.score, ref) << "striped8 it=" << it;
    EXPECT_EQ(sa.align(r, ws_).score, ref) << "striped adaptive it=" << it;
  }
}

TEST_F(BaselineSweep, ScanMatchesGoldenOnRandomPairs) {
  std::mt19937_64 rng(32);
  for (int it = 0; it < 50; ++it) {
    auto q = seq::generate_sequence(rng(), 1 + rng() % 250);
    auto r = seq::generate_sequence(rng(), 1 + rng() % 250);
    AlignConfig cfg;
    cfg.gap_open = 4 + static_cast<int>(rng() % 12);
    cfg.gap_extend = 1 + static_cast<int>(rng() % 3);
    int ref = core::ref_align(q, r, cfg).score;
    ScanAligner sa(q, cfg);
    EXPECT_EQ(sa.align16(r, ws_).score, ref) << "scan16 it=" << it;
  }
}

TEST_F(BaselineSweep, DiagBasicMatchesGoldenOnRandomPairs) {
  std::mt19937_64 rng(33);
  for (int it = 0; it < 50; ++it) {
    auto q = seq::generate_sequence(rng(), 1 + rng() % 250);
    auto r = seq::generate_sequence(rng(), 1 + rng() % 250);
    AlignConfig cfg;
    cfg.gap_open = 4 + static_cast<int>(rng() % 12);
    cfg.gap_extend = 1 + static_cast<int>(rng() % 3);
    int ref = core::ref_align(q, r, cfg).score;
    DiagBasicAligner da(q, cfg);
    EXPECT_EQ(da.align16(r, ws_).score, ref) << "diag16 it=" << it;
  }
}

// Adversarial for the lazy-F loop: cheap gaps and long identical runs force
// vertical-gap chains across the whole striped vector.
TEST_F(BaselineSweep, LazyFGapHeavyInputs) {
  std::mt19937_64 rng(34);
  for (int it = 0; it < 30; ++it) {
    // Low-complexity sequences: few distinct residues, long runs.
    auto make_runny = [&](uint32_t len) {
      std::vector<uint8_t> codes;
      while (codes.size() < len) {
        uint8_t c = static_cast<uint8_t>(rng() % 3);  // A/R/N only
        size_t run = 1 + rng() % 17;
        for (size_t k = 0; k < run && codes.size() < len; ++k) codes.push_back(c);
      }
      return seq::Sequence("runny", std::move(codes), seq::Alphabet::protein());
    };
    auto q = make_runny(64 + rng() % 200);
    auto r = make_runny(64 + rng() % 200);
    AlignConfig cfg;
    cfg.gap_open = 1 + static_cast<int>(rng() % 2);  // cheap gaps
    cfg.gap_extend = 1;
    int ref = core::ref_align(q, r, cfg).score;
    StripedAligner sa(q, cfg);
    BaselineResult r16 = sa.align16(r, ws_);
    if (!r16.saturated) EXPECT_EQ(r16.score, ref) << "striped16 lazyF it=" << it;
    EXPECT_GT(r16.lazy_f_iterations, 0u);
    ScanAligner sc(q, cfg);
    BaselineResult s16 = sc.align16(r, ws_);
    if (!s16.saturated) EXPECT_EQ(s16.score, ref) << "scan16 lazyF it=" << it;
  }
}

TEST_F(BaselineSweep, LazyFWorkIsDataDependent) {
  // The paper's determinism point: striped does data-dependent correction
  // work. Aggregate the correction iterations of gap-friendly scoring vs
  // gap-hostile scoring over the same low-complexity inputs.
  std::mt19937_64 rng(37);
  auto make_runny = [&](uint32_t len) {
    std::vector<uint8_t> codes;
    while (codes.size() < len) {
      uint8_t c = static_cast<uint8_t>(rng() % 3);
      size_t run = 1 + rng() % 17;
      for (size_t k = 0; k < run && codes.size() < len; ++k) codes.push_back(c);
    }
    return seq::Sequence("runny", std::move(codes), seq::Alphabet::protein());
  };
  AlignConfig cfg;
  cfg.gap_open = 2;
  cfg.gap_extend = 1;
  uint64_t iters_runny = 0, iters_random = 0, cells = 0;
  for (int it = 0; it < 20; ++it) {
    uint32_t m = 150 + static_cast<uint32_t>(rng() % 100);
    uint32_t n = 150 + static_cast<uint32_t>(rng() % 100);
    auto q1 = make_runny(m);
    auto r1 = make_runny(n);
    iters_runny += StripedAligner(q1, cfg).align16(r1, ws_).lazy_f_iterations;
    auto q2 = seq::generate_sequence(rng(), m);
    auto r2 = seq::generate_sequence(rng(), n);
    iters_random += StripedAligner(q2, cfg).align16(r2, ws_).lazy_f_iterations;
    cells += static_cast<uint64_t>(m) * n;
  }
  // Identical problem shapes, different residue statistics => materially
  // different amounts of speculative-correction work.
  double ratio = static_cast<double>(iters_runny) /
                 static_cast<double>(std::max<uint64_t>(1, iters_random));
  EXPECT_GT(std::abs(ratio - 1.0), 0.10)
      << "runny=" << iters_runny << " random=" << iters_random;
  EXPECT_GT(iters_runny + iters_random, 0u);
  (void)cells;
}

TEST_F(BaselineSweep, FixedSchemeAndLinearGaps) {
  std::mt19937_64 rng(35);
  for (int it = 0; it < 20; ++it) {
    auto q = seq::generate_sequence(rng(), 1 + rng() % 120);
    auto r = seq::generate_sequence(rng(), 1 + rng() % 120);
    AlignConfig cfg;
    cfg.scheme = ScoreScheme::Fixed;
    cfg.match = 4;
    cfg.mismatch = -3;
    cfg.gap_model = GapModel::Linear;
    cfg.gap_extend = 2;
    int ref = core::ref_align(q, r, cfg).score;
    StripedAligner sa(q, cfg);
    ScanAligner sc(q, cfg);
    DiagBasicAligner da(q, cfg);
    EXPECT_EQ(sa.align16(r, ws_).score, ref);
    EXPECT_EQ(sc.align16(r, ws_).score, ref);
    EXPECT_EQ(da.align16(r, ws_).score, ref);
  }
}

TEST_F(BaselineSweep, SaturationEscalatesToExactResult) {
  auto q = seq::generate_sequence(40, 400);
  auto hom = seq::mutate(q, 41, 0.02);
  AlignConfig cfg;
  int ref = core::ref_align(q, hom, cfg).score;
  ASSERT_GT(ref, 255);  // must saturate 8-bit
  StripedAligner sa(q, cfg);
  BaselineResult r8 = sa.align8(hom, ws_);
  EXPECT_TRUE(r8.saturated);
  core::Alignment adaptive = sa.align(hom, ws_);
  EXPECT_TRUE(adaptive.saturated_8);
  EXPECT_EQ(adaptive.score, ref);
}

TEST_F(BaselineSweep, TinyInputs) {
  AlignConfig cfg;
  seq::Sequence e("e", "", seq::Alphabet::protein());
  auto q = seq::generate_sequence(42, 1);
  StripedAligner sa(q, cfg);
  EXPECT_EQ(sa.align16(e, ws_).score, 0);
  StripedAligner se(e, cfg);
  EXPECT_EQ(se.align16(q, ws_).score, 0);
  ScanAligner sc(q, cfg);
  EXPECT_EQ(sc.align16(e, ws_).score, 0);
  DiagBasicAligner da(q, cfg);
  EXPECT_EQ(da.align16(e, ws_).score, 0);
}

TEST_F(BaselineSweep, EndRefPointsAtAMaximalColumn) {
  std::mt19937_64 rng(36);
  for (int it = 0; it < 15; ++it) {
    auto q = seq::generate_sequence(rng(), 40 + rng() % 60);
    auto r = seq::generate_sequence(rng(), 40 + rng() % 60);
    AlignConfig cfg;
    StripedAligner sa(q, cfg);
    BaselineResult res = sa.align16(r, ws_);
    if (res.score == 0) continue;
    ASSERT_GE(res.end_ref, 0);
    // Some cell in the reported column must hold the max score.
    auto H = core::ref_matrix(q, r, cfg);
    bool found = false;
    for (size_t i = 0; i < q.length(); ++i)
      if (H[i * r.length() + static_cast<size_t>(res.end_ref)] == res.score)
        found = true;
    EXPECT_TRUE(found) << "it=" << it;
  }
}

}  // namespace
}  // namespace swve::baseline
