#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>

#include "core/workspace.hpp"

namespace swve::core {
namespace {

TEST(AlignedBuf, StartsEmpty) {
  AlignedBuf b;
  EXPECT_EQ(b.data(), nullptr);
  EXPECT_EQ(b.capacity(), 0u);
}

TEST(AlignedBuf, EnsureAllocates64Aligned) {
  AlignedBuf b;
  void* p = b.ensure(100);
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(p) % 64, 0u);
  EXPECT_GE(b.capacity(), 100u);
}

TEST(AlignedBuf, GrowOnlyKeepsCapacity) {
  AlignedBuf b;
  b.ensure(1000);
  size_t cap = b.capacity();
  b.ensure(10);  // no shrink
  EXPECT_EQ(b.capacity(), cap);
  b.ensure(5000);
  EXPECT_GE(b.capacity(), 5000u);
}

TEST(AlignedBuf, EnsureZeroedClears) {
  AlignedBuf b;
  auto* p = static_cast<uint8_t*>(b.ensure(256));
  std::memset(p, 0xAB, 256);
  p = static_cast<uint8_t*>(b.ensure_zeroed(256));
  for (int i = 0; i < 256; ++i) EXPECT_EQ(p[i], 0) << i;
}

TEST(AlignedBuf, MoveTransfersOwnership) {
  AlignedBuf a;
  void* p = a.ensure(128);
  AlignedBuf b = std::move(a);
  EXPECT_EQ(b.data(), p);
  EXPECT_EQ(a.data(), nullptr);  // NOLINT(bugprone-use-after-move)
  AlignedBuf c;
  c.ensure(64);
  c = std::move(b);
  EXPECT_EQ(c.data(), p);
}

TEST(AlignedBuf, CapacityRoundsToCacheLines) {
  AlignedBuf b;
  b.ensure(1);
  EXPECT_EQ(b.capacity() % 64, 0u);
}

TEST(Workspace, PadCoversWidestEngine) {
  // AVX-512 u8 engine uses 64 lanes; kPad must cover an i-1 unaligned load.
  EXPECT_GE(kPad, 64);
}

}  // namespace
}  // namespace swve::core
