// Protocol v1 codecs (net/protocol.hpp) and the debug-mode JSON layer:
// header and payload round-trips, deterministic re-encoding (the
// result-cache contract), rejection of truncated / fuzzed / oversized
// payloads, cache-key semantics, and the ResultCache/Singleflight
// coalescing substrate.
#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "matrix/score_matrix.hpp"
#include "net/coalesce.hpp"
#include "net/json.hpp"
#include "net/protocol.hpp"
#include "seq/synthetic.hpp"

namespace swve::net {
namespace {

using service::AlignRequest;
using service::BatchRequest;
using service::SearchRequest;

seq::Sequence make_seq(uint64_t seed, uint32_t len) {
  return seq::generate_sequence(seed, len);
}

std::vector<uint8_t> codes_of(const seq::Sequence& s) {
  return {s.codes().begin(), s.codes().end()};
}

AlignRequest make_align_request() {
  AlignRequest rq;
  rq.query = make_seq(1, 60);
  rq.reference = make_seq(2, 90);
  rq.options.traceback = true;
  rq.options.top_k = 7;
  rq.options.tier = service::QosTier::Interactive;
  core::AlignConfig cfg;
  cfg.matrix = matrix::ScoreMatrix::find("blosum50");
  cfg.gap_open = 10;
  cfg.gap_extend = 2;
  rq.options.config = cfg;
  return rq;
}

SearchRequest make_search_request() {
  SearchRequest rq;
  rq.query = make_seq(3, 120);
  rq.mode = align::SearchMode::Batch;
  rq.options.top_k = 5;
  return rq;
}

BatchRequest make_batch_request() {
  BatchRequest rq;
  rq.queries = {make_seq(4, 40), make_seq(5, 80), make_seq(6, 120)};
  rq.options.top_k = 3;
  return rq;
}

// ------------------------------------------------------------------ header

TEST(NetProtocol, HeaderRoundTrip) {
  FrameHeader h;
  h.type = MsgType::SearchRequest;
  h.flags = kFlagNoCache | kFlagJson;
  h.tier = 2;
  h.status = 5;
  h.request_id = 0x1122334455667788ull;
  h.payload_len = 12345;

  std::string bytes;
  encode_header(bytes, h);
  ASSERT_EQ(bytes.size(), kHeaderSize);

  const auto back = decode_header(reinterpret_cast<const uint8_t*>(bytes.data()));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->type, h.type);
  EXPECT_EQ(back->flags, h.flags);
  EXPECT_EQ(back->tier, h.tier);
  EXPECT_EQ(back->status, h.status);
  EXPECT_EQ(back->request_id, h.request_id);
  EXPECT_EQ(back->payload_len, h.payload_len);
}

TEST(NetProtocol, HeaderRejectsBadMagic) {
  std::string bytes;
  encode_header(bytes, FrameHeader{});
  bytes[0] ^= 0x5a;
  EXPECT_FALSE(
      decode_header(reinterpret_cast<const uint8_t*>(bytes.data())));
}

// ---------------------------------------------------------- request codecs

TEST(NetProtocol, AlignRequestRoundTrip) {
  const AlignRequest rq = make_align_request();
  std::string payload;
  encode_align_request(payload, rq);
  const auto back = decode_align_request(payload);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(codes_of(back->query), codes_of(rq.query));
  EXPECT_EQ(codes_of(back->reference), codes_of(rq.reference));
  EXPECT_EQ(back->options.top_k, rq.options.top_k);
  EXPECT_EQ(back->options.traceback, rq.options.traceback);
  ASSERT_TRUE(back->options.config.has_value());
  EXPECT_EQ(back->options.config->matrix, rq.options.config->matrix);
  EXPECT_EQ(back->options.config->gap_open, rq.options.config->gap_open);

  // Re-encoding the decoded request reproduces the bytes exactly — the
  // property cache keys rely on.
  std::string again;
  encode_align_request(again, *back);
  EXPECT_EQ(again, payload);
}

TEST(NetProtocol, SearchRequestRoundTrip) {
  const SearchRequest rq = make_search_request();
  std::string payload;
  encode_search_request(payload, rq);
  const auto back = decode_search_request(payload);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(codes_of(back->query), codes_of(rq.query));
  EXPECT_EQ(back->mode, rq.mode);
  EXPECT_EQ(back->options.top_k, rq.options.top_k);
}

TEST(NetProtocol, BatchRequestRoundTrip) {
  const BatchRequest rq = make_batch_request();
  std::string payload;
  encode_batch_request(payload, rq);
  const auto back = decode_batch_request(payload);
  ASSERT_TRUE(back.has_value());
  ASSERT_EQ(back->queries.size(), rq.queries.size());
  for (size_t i = 0; i < rq.queries.size(); ++i)
    EXPECT_EQ(codes_of(back->queries[i]), codes_of(rq.queries[i]));
}

TEST(NetProtocol, EveryTruncationIsRejected) {
  std::string align_p, search_p, batch_p;
  encode_align_request(align_p, make_align_request());
  encode_search_request(search_p, make_search_request());
  encode_batch_request(batch_p, make_batch_request());

  for (size_t n = 0; n < align_p.size(); ++n)
    EXPECT_FALSE(decode_align_request(std::string_view(align_p).substr(0, n)))
        << "align prefix " << n;
  for (size_t n = 0; n < search_p.size(); ++n)
    EXPECT_FALSE(
        decode_search_request(std::string_view(search_p).substr(0, n)))
        << "search prefix " << n;
  for (size_t n = 0; n < batch_p.size(); ++n)
    EXPECT_FALSE(decode_batch_request(std::string_view(batch_p).substr(0, n)))
        << "batch prefix " << n;
}

TEST(NetProtocol, FuzzedPayloadsNeverCrash) {
  // Deterministic xorshift mutations of a valid payload plus pure-noise
  // buffers: every decode must return cleanly (usually nullopt, never UB).
  std::string base;
  encode_batch_request(base, make_batch_request());

  uint64_t state = 0x9e3779b97f4a7c15ull;
  auto rnd = [&state]() {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
  };

  for (int iter = 0; iter < 500; ++iter) {
    std::string mutated = base;
    const int flips = 1 + static_cast<int>(rnd() % 8);
    for (int f = 0; f < flips; ++f)
      mutated[rnd() % mutated.size()] ^= static_cast<char>(rnd() & 0xff);
    (void)decode_batch_request(mutated);
    (void)decode_search_request(mutated);
    (void)decode_align_request(mutated);
  }
  for (int iter = 0; iter < 200; ++iter) {
    std::string noise(rnd() % 512, '\0');
    for (auto& b : noise) b = static_cast<char>(rnd() & 0xff);
    (void)decode_batch_request(noise);
    (void)decode_search_request(noise);
    (void)decode_align_request(noise);
    (void)decode_align_response(noise);
    (void)decode_search_response(noise);
    (void)decode_batch_response(noise);
  }
}

TEST(NetProtocol, HugeCountFieldIsRejectedWithoutAllocating) {
  // A hostile batch payload claiming 2^32-1 queries in a tiny buffer must
  // fail the count-vs-remaining sanity check, not try to reserve memory.
  std::string payload;
  payload.append("\xff\xff\xff\xff", 4);  // u32 query count
  payload.append(16, '\0');
  EXPECT_FALSE(decode_batch_request(payload));
}

// ----------------------------------------------------------------- JSON

TEST(NetJson, ParseAndDump) {
  const auto doc = Json::parse(R"({"b":true,"n":3.5,"s":"x\n","a":[1,2]})");
  ASSERT_TRUE(doc.has_value());
  EXPECT_TRUE((*doc)["b"].as_bool());
  EXPECT_DOUBLE_EQ((*doc)["n"].as_number(), 3.5);
  EXPECT_EQ((*doc)["s"].as_string(), "x\n");
  ASSERT_TRUE((*doc)["a"].is_array());
  EXPECT_EQ((*doc)["a"].as_array().size(), 2u);

  const auto again = Json::parse(doc->dump());
  ASSERT_TRUE(again.has_value());
  EXPECT_EQ(again->dump(), doc->dump());
}

TEST(NetJson, RejectsTrailingGarbageAndDeepNesting) {
  EXPECT_FALSE(Json::parse("{} trailing"));
  EXPECT_FALSE(Json::parse("{\"a\":}"));
  EXPECT_FALSE(Json::parse(""));
  std::string deep(64, '[');
  deep += std::string(64, ']');
  EXPECT_FALSE(Json::parse(deep));  // depth limit 32
}

TEST(NetJson, AlignRequestFromJson) {
  const auto rq = decode_align_request_json(
      R"({"query":"MKVLA","ref":"MKVLAW","traceback":true,"top_k":4,)"
      R"("config":{"matrix":"blosum62","gap_open":11,"gap_extend":1}})");
  ASSERT_TRUE(rq.has_value());
  EXPECT_EQ(rq->query.length(), 5u);
  EXPECT_EQ(rq->reference.length(), 6u);
  EXPECT_EQ(rq->options.top_k, 4u);
  ASSERT_TRUE(rq->options.config.has_value());
  EXPECT_EQ(rq->options.config->matrix, matrix::ScoreMatrix::find("blosum62"));
  EXPECT_FALSE(decode_align_request_json("{\"query\":17}"));
  EXPECT_FALSE(decode_align_request_json("not json"));
}

TEST(NetProtocol, ErrorPayloadFormats) {
  const std::string bin =
      error_payload(service::ServiceStatus::QueueFull, "try later", false);
  EXPECT_EQ(bin, "try later");
  const std::string js =
      error_payload(service::ServiceStatus::QueueFull, "try later", true);
  const auto doc = Json::parse(js);
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ((*doc)["status"].as_string(), "queue_full");
  EXPECT_EQ((*doc)["message"].as_string(), "try later");
}

// ------------------------------------------------------------- cache keys

TEST(NetCacheKey, IdentityAndSensitivity) {
  const SearchRequest rq = make_search_request();
  const uint64_t epoch = 42;
  const uint64_t key = cache_key(rq, epoch);
  EXPECT_EQ(cache_key(rq, epoch), key);  // deterministic

  // Result-affecting fields change the key...
  SearchRequest other = rq;
  other.query = make_seq(99, 120);
  EXPECT_NE(cache_key(other, epoch), key);
  other = rq;
  other.options.top_k = 6;
  EXPECT_NE(cache_key(other, epoch), key);
  other = rq;
  other.mode = align::SearchMode::Diagonal;
  EXPECT_NE(cache_key(other, epoch), key);
  EXPECT_NE(cache_key(rq, epoch + 1), key);  // different database

  // ...scheduling-only fields do not: tier and deadline shape when a
  // request runs, never what it returns.
  other = rq;
  other.options.tier = service::QosTier::Bulk;
  other.options.deadline = std::chrono::seconds(1);
  EXPECT_EQ(cache_key(other, epoch), key);
}

TEST(NetCacheKey, ScenariosNeverCollide) {
  // An align and a search request over the same bytes must key apart.
  AlignRequest a;
  a.query = make_seq(7, 50);
  a.reference = make_seq(8, 50);
  SearchRequest s;
  s.query = make_seq(7, 50);
  EXPECT_NE(cache_key(a, 1), cache_key(s, 1));
}

TEST(NetCacheKey, DatabaseEpochTracksContent) {
  seq::SyntheticConfig cfg;
  cfg.target_residues = 20'000;
  cfg.seed = 1;
  const auto db1 = seq::SequenceDatabase::synthetic(cfg);
  const auto db1b = seq::SequenceDatabase::synthetic(cfg);
  cfg.seed = 2;
  const auto db2 = seq::SequenceDatabase::synthetic(cfg);
  EXPECT_EQ(database_epoch(db1), database_epoch(db1b));
  EXPECT_NE(database_epoch(db1), database_epoch(db2));
}

// ------------------------------------------------------------- coalescing

TEST(NetCoalesce, ResultCacheLruEviction) {
  ResultCache cache(2);
  const auto resp = [](const char* p) {
    CachedResponse r;
    r.payload = p;
    return r;
  };
  EXPECT_EQ(cache.put(1, "id1", resp("one")), 0u);
  EXPECT_EQ(cache.put(2, "id2", resp("two")), 0u);
  ASSERT_NE(cache.get(1, "id1"), nullptr);  // refreshes 1; 2 becomes LRU
  EXPECT_EQ(cache.put(3, "id3", resp("three")), 1u);
  EXPECT_EQ(cache.get(2, "id2"), nullptr);  // evicted
  ASSERT_NE(cache.get(1, "id1"), nullptr);
  EXPECT_EQ(cache.get(1, "id1")->payload, "one");
  ASSERT_NE(cache.get(3, "id3"), nullptr);
  EXPECT_EQ(cache.entries(), 2u);
}

TEST(NetCoalesce, ResultCacheVerifiesIdentityNotJustKey) {
  // A crafted request colliding on the 64-bit key must read as a miss, not
  // be served another request's cached response.
  ResultCache cache(4);
  CachedResponse r;
  r.payload = "victim";
  EXPECT_EQ(cache.put(1, "victim-request", r), 0u);
  EXPECT_EQ(cache.get(1, "attacker-request"), nullptr);
  ASSERT_NE(cache.get(1, "victim-request"), nullptr);  // intact

  // Publishing under a colliding key replaces the entry wholesale; the old
  // identity no longer matches.
  CachedResponse r2;
  r2.payload = "other";
  EXPECT_EQ(cache.put(1, "attacker-request", r2), 0u);
  EXPECT_EQ(cache.get(1, "victim-request"), nullptr);
  EXPECT_EQ(cache.get(1, "attacker-request")->payload, "other");
}

TEST(NetCoalesce, ZeroCapacityCacheIsDisabled) {
  ResultCache cache(0);
  CachedResponse r;
  r.payload = "x";
  EXPECT_EQ(cache.put(1, "id", r), 0u);
  EXPECT_EQ(cache.get(1, "id"), nullptr);
  EXPECT_EQ(cache.entries(), 0u);
}

TEST(NetCoalesce, SingleflightJoinsAndCompletes) {
  using Join = Singleflight::Join;
  Singleflight sf;
  EXPECT_EQ(sf.join(10, "a", FlightWaiter{1, 100, false, false}),
            Join::Started);
  EXPECT_EQ(sf.join(10, "a", FlightWaiter{2, 200, false, false}),
            Join::Joined);
  EXPECT_EQ(sf.join(10, "a", FlightWaiter{3, 300, false, false}),
            Join::Joined);
  EXPECT_EQ(sf.join(11, "b", FlightWaiter{1, 101, false, false}),
            Join::Started);
  EXPECT_EQ(sf.inflight(), 2u);

  sf.drop_connection(2);  // disconnect one waiter; the flight stays live
  const auto waiters = sf.complete(10);
  ASSERT_EQ(waiters.size(), 2u);
  EXPECT_TRUE(waiters[0].initiator);
  EXPECT_EQ(waiters[0].request_id, 100u);
  EXPECT_FALSE(waiters[1].initiator);
  EXPECT_EQ(waiters[1].request_id, 300u);
  EXPECT_EQ(sf.inflight(), 1u);
  EXPECT_TRUE(sf.complete(999).empty());  // unknown key is harmless
}

TEST(NetCoalesce, SingleflightRejectsCollidingJoin) {
  using Join = Singleflight::Join;
  Singleflight sf;
  EXPECT_EQ(sf.join(10, "victim-request", FlightWaiter{1, 100, false, false}),
            Join::Started);
  // Same key, different identity bytes: must NOT be coalesced onto the
  // victim's execution — and must not corrupt the victim's waiter list.
  EXPECT_EQ(
      sf.join(10, "attacker-request", FlightWaiter{2, 200, false, false}),
      Join::Mismatch);
  const auto waiters = sf.complete(10);
  ASSERT_EQ(waiters.size(), 1u);
  EXPECT_EQ(waiters[0].conn_id, 1u);
}

TEST(NetProtocol, TraceContextRoundTrip) {
  WireTraceContext ctx;
  ctx.trace_id = 0xDEADBEEFCAFEF00Dull;
  ctx.sampled = true;
  std::string bytes;
  encode_trace_context(bytes, ctx);
  ASSERT_EQ(bytes.size(), kTraceContextSize);

  // Prefix position: whatever follows the context must be left in place.
  bytes += "request-bytes";
  std::string_view view = bytes;
  const auto back = decode_trace_context(view);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->trace_id, ctx.trace_id);
  EXPECT_TRUE(back->sampled);
  EXPECT_EQ(view, "request-bytes");

  // The sampled bit survives off as well.
  std::string off;
  encode_trace_context(off, WireTraceContext{7, false});
  std::string_view offv = off;
  const auto back2 = decode_trace_context(offv);
  ASSERT_TRUE(back2.has_value());
  EXPECT_EQ(back2->trace_id, 7u);
  EXPECT_FALSE(back2->sampled);
  EXPECT_TRUE(offv.empty());
}

TEST(NetProtocol, TraceContextRejectsShortOrZeroId) {
  std::string bytes;
  encode_trace_context(bytes, WireTraceContext{42, true});
  for (size_t n = 0; n < kTraceContextSize; ++n) {
    std::string_view view(bytes.data(), n);
    EXPECT_FALSE(decode_trace_context(view).has_value()) << n;
    EXPECT_EQ(view.size(), n);  // untouched on failure
  }
  // trace_id 0 is the "no trace" sentinel and must not decode.
  std::string zero;
  encode_trace_context(zero, WireTraceContext{0, true});
  std::string_view zv = zero;
  EXPECT_FALSE(decode_trace_context(zv).has_value());
  EXPECT_EQ(zv.size(), kTraceContextSize);
}

TEST(NetProtocol, ServerTimingRoundTrip) {
  ServerTiming t;
  t.trace_id = 0x1122334455667788ull;
  t.queue_us = 1234;
  t.exec_us = 567890;
  t.serialize_us = 17;
  t.source = 2;
  // Trailer position: the response payload precedes it and must survive.
  std::string bytes = "response-bytes";
  encode_server_timing(bytes, t);
  ASSERT_EQ(bytes.size(), 14 + kServerTimingSize);

  std::string_view view = bytes;
  const auto back = decode_server_timing(view);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->trace_id, t.trace_id);
  EXPECT_EQ(back->queue_us, t.queue_us);
  EXPECT_EQ(back->exec_us, t.exec_us);
  EXPECT_EQ(back->serialize_us, t.serialize_us);
  EXPECT_EQ(back->source, t.source);
  EXPECT_EQ(view, "response-bytes");
}

TEST(NetProtocol, ServerTimingRejectsTruncation) {
  std::string bytes;
  encode_server_timing(bytes, ServerTiming{9, 1, 2, 3, 0});
  for (size_t n = 0; n < kServerTimingSize; ++n) {
    std::string_view view(bytes.data(), n);
    EXPECT_FALSE(decode_server_timing(view).has_value()) << n;
    EXPECT_EQ(view.size(), n);
  }
}

TEST(NetCacheKey, IdentityBytesMatchKey) {
  const SearchRequest rq = make_search_request();
  const std::string id = cache_identity(rq, 42);
  EXPECT_FALSE(id.empty());
  EXPECT_EQ(cache_key(std::string_view(id)), cache_key(rq, 42));
  // Scheduling-only fields leave the identity bytes unchanged too.
  SearchRequest other = rq;
  other.options.tier = service::QosTier::Bulk;
  other.options.deadline = std::chrono::seconds(1);
  EXPECT_EQ(cache_identity(other, 42), id);
}

}  // namespace
}  // namespace swve::net
