// The library's determinism guarantee (§IV-H of the paper): identical
// results for identical inputs regardless of ISA, width ladder, repetition,
// or thread count.
#include <gtest/gtest.h>

#include <random>

#include "align/batch_server.hpp"
#include "align/db_search.hpp"
#include "core/dispatch.hpp"
#include "seq/synthetic.hpp"
#include "simd/cpu.hpp"

namespace swve {
namespace {

using core::AlignConfig;
using core::Alignment;
using core::Width;
using core::Workspace;

TEST(Determinism, AllIsasAgreeCellForCell) {
  std::vector<simd::Isa> isas = {simd::Isa::Scalar};
  if (simd::isa_available(simd::Isa::Sse41)) isas.push_back(simd::Isa::Sse41);
  if (simd::isa_available(simd::Isa::Avx2)) isas.push_back(simd::Isa::Avx2);
  if (simd::isa_available(simd::Isa::Avx512)) isas.push_back(simd::Isa::Avx512);
  if (isas.size() < 2) GTEST_SKIP() << "single-ISA machine";

  std::mt19937_64 rng(200);
  Workspace ws;
  for (int it = 0; it < 30; ++it) {
    auto q = seq::generate_sequence(rng(), 1 + rng() % 300);
    auto r = seq::generate_sequence(rng(), 1 + rng() % 300);
    AlignConfig cfg;
    cfg.traceback = true;
    cfg.isa = isas[0];
    Alignment base = core::diag_align(q, r, cfg, ws);
    for (size_t i = 1; i < isas.size(); ++i) {
      cfg.isa = isas[i];
      Alignment other = core::diag_align(q, r, cfg, ws);
      EXPECT_EQ(other.score, base.score) << simd::isa_name(isas[i]);
      EXPECT_EQ(other.end_query, base.end_query);
      EXPECT_EQ(other.end_ref, base.end_ref);
      EXPECT_EQ(other.begin_query, base.begin_query);
      EXPECT_EQ(other.begin_ref, base.begin_ref);
      EXPECT_EQ(other.cigar, base.cigar);
    }
  }
}

TEST(Determinism, WidthLadderAgreesWithDirect32) {
  std::mt19937_64 rng(201);
  Workspace ws;
  for (int it = 0; it < 20; ++it) {
    auto q = seq::generate_sequence(rng(), 1 + rng() % 200);
    auto r = seq::generate_sequence(rng(), 1 + rng() % 200);
    AlignConfig cfg;
    cfg.width = Width::Adaptive;
    Alignment adaptive = core::diag_align(q, r, cfg, ws);
    cfg.width = Width::W32;
    Alignment exact = core::diag_align(q, r, cfg, ws);
    EXPECT_EQ(adaptive.score, exact.score);
    EXPECT_EQ(adaptive.end_query, exact.end_query);
    EXPECT_EQ(adaptive.end_ref, exact.end_ref);
  }
}

TEST(Determinism, SearchIdenticalAcrossRuns) {
  seq::SyntheticConfig sc;
  sc.seed = 55;
  sc.target_residues = 60'000;
  auto db = seq::SequenceDatabase::synthetic(sc);
  align::DatabaseSearch search(db, AlignConfig{});
  auto q = seq::generate_sequence(202, 180);
  auto a = search.search(q, 10);
  auto b = search.search(q, 10);
  ASSERT_EQ(a.hits.size(), b.hits.size());
  for (size_t k = 0; k < a.hits.size(); ++k) {
    EXPECT_EQ(a.hits[k].seq_index, b.hits[k].seq_index);
    EXPECT_EQ(a.hits[k].score, b.hits[k].score);
  }
}

TEST(Determinism, BatchKernelAgreesWithDiagKernel) {
  seq::SyntheticConfig sc;
  sc.seed = 56;
  sc.target_residues = 20'000;
  sc.min_length = 10;
  sc.max_length = 200;
  auto db = seq::SequenceDatabase::synthetic(sc);
  AlignConfig cfg;
  core::Batch32Db bdb(db, 32);
  Workspace ws;
  auto q = seq::generate_sequence(203, 90);
  auto batch = core::batch_scores(q, bdb, db, cfg, ws);
  for (size_t s = 0; s < db.size(); ++s) {
    Alignment a = core::diag_align(q, db[s], cfg, ws);
    EXPECT_EQ(batch[s], a.score) << s;
  }
}

}  // namespace
}  // namespace swve
