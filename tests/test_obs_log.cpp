// obs::Logger — the async structured JSON-lines logger: record formatting
// and field typing, level filtering, per-site rate limiting, ring-overflow
// and thread-overflow drop accounting, the async-signal-safe fatal path,
// and the global install used by the log_info()/log_warn() helpers. The
// concurrency cases ("StructuredLog" suite) also run under TSan in CI.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "net/json.hpp"
#include "obs/log.hpp"

namespace swve::obs {
namespace {

std::vector<std::string> read_lines(const std::string& path) {
  std::ifstream in(path);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line))
    if (!line.empty()) lines.push_back(line);
  return lines;
}

/// A unique file path per test; removed on destruction.
struct TempLog {
  explicit TempLog(const char* name)
      : path(testing::TempDir() + "swve_log_" + name + ".jsonl") {
    std::remove(path.c_str());
  }
  ~TempLog() { std::remove(path.c_str()); }
  std::string path;
};

TEST(StructuredLog, JsonLinesRoundTripTypedFields) {
  TempLog tmp("roundtrip");
  LoggerOptions opt;
  opt.fd = -1;  // file sink only — keep test output clean
  opt.path = tmp.path;
  Logger logger(opt);

  const std::string long_str(60, 'x');  // beyond the 48-byte inline cap
  logger.log(LogLevel::Info, "test.event",
             {{"i", -5},
              {"u", 123456789u},
              {"f", 1.5},
              {"b", true},
              {"s", "hello \"quoted\"\nline"},
              {"t", long_str}});
  logger.log(LogLevel::Error, "test.error", {});
  logger.flush();

  const auto lines = read_lines(tmp.path);
  ASSERT_EQ(lines.size(), 2u);

  // Same-microsecond records may drain in either order; pick by event.
  const bool swapped = lines[0].find("test.error") != std::string::npos;
  const auto first = net::Json::parse(lines[swapped ? 1 : 0]);
  ASSERT_TRUE(first.has_value()) << lines[0];
  EXPECT_GT((*first)["ts_us"].as_number(), 0.0);
  EXPECT_EQ((*first)["level"].as_string(), "info");
  EXPECT_EQ((*first)["event"].as_string(), "test.event");
  EXPECT_EQ((*first)["i"].as_number(), -5.0);
  EXPECT_EQ((*first)["u"].as_number(), 123456789.0);
  EXPECT_EQ((*first)["f"].as_number(), 1.5);
  EXPECT_TRUE((*first)["b"].as_bool());
  EXPECT_EQ((*first)["s"].as_string(), "hello \"quoted\"\nline");
  // Strings are truncated into the record's inline buffer, never dropped.
  EXPECT_EQ((*first)["t"].as_string(),
            long_str.substr(0, LogValue::kMaxStringBytes - 1));

  const auto second = net::Json::parse(lines[swapped ? 0 : 1]);
  ASSERT_TRUE(second.has_value()) << lines[1];
  EXPECT_EQ((*second)["level"].as_string(), "error");
  EXPECT_EQ(logger.emitted(), 2u);
}

TEST(StructuredLog, LevelFiltering) {
  TempLog tmp("levels");
  LoggerOptions opt;
  opt.fd = -1;
  opt.path = tmp.path;
  opt.min_level = LogLevel::Warn;
  Logger logger(opt);

  EXPECT_FALSE(logger.enabled(LogLevel::Debug));
  EXPECT_FALSE(logger.enabled(LogLevel::Info));
  EXPECT_TRUE(logger.enabled(LogLevel::Warn));

  logger.log(LogLevel::Info, "filtered.out", {});
  logger.log(LogLevel::Warn, "kept", {});
  logger.flush();

  const auto lines = read_lines(tmp.path);
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_NE(lines[0].find("\"kept\""), std::string::npos);
  EXPECT_EQ(logger.emitted(), 1u);

  // The CLI flag parser behind --log-level.
  EXPECT_EQ(log_level_from_string("debug"), LogLevel::Debug);
  EXPECT_EQ(log_level_from_string("warn"), LogLevel::Warn);
  EXPECT_EQ(log_level_from_string("warning"), LogLevel::Warn);
  EXPECT_EQ(log_level_from_string("error"), LogLevel::Error);
  EXPECT_EQ(log_level_from_string("bogus"), LogLevel::Info);
}

TEST(StructuredLog, RateLimitSuppressesPerSite) {
  LoggerOptions opt;
  opt.fd = -1;
  opt.rate_limit_per_sec = 1;
  Logger logger(opt);

  constexpr int kAttempts = 50;
  for (int i = 0; i < kAttempts; ++i)
    logger.log(LogLevel::Info, "noisy.site", {{"i", i}});
  // A different event site is not affected by noisy.site's budget.
  logger.log(LogLevel::Info, "quiet.site", {});
  logger.flush();

  EXPECT_GE(logger.suppressed(), static_cast<uint64_t>(kAttempts - 2));
  EXPECT_EQ(logger.emitted() + logger.suppressed(),
            static_cast<uint64_t>(kAttempts + 1));
}

TEST(StructuredLog, RingOverflowIsCountedNotBlocking) {
  TempLog tmp("overflow");
  LoggerOptions opt;
  opt.fd = -1;
  opt.path = tmp.path;
  opt.ring_capacity = 16;
  opt.flush_period_s = 5.0;  // the flusher stays out of the way
  constexpr int kAttempts = 100;
  uint64_t dropped = 0;
  {
    Logger logger(opt);
    for (int i = 0; i < kAttempts; ++i)
      logger.log(LogLevel::Info, "burst", {{"i", i}});
    dropped = logger.dropped_overflow();
    EXPECT_GT(dropped, 0u);  // a 16-slot ring cannot hold 100 records
    // Destruction drains the ring: every accepted record reaches the file.
  }
  const auto lines = read_lines(tmp.path);
  EXPECT_EQ(lines.size() + dropped, static_cast<size_t>(kAttempts));
}

TEST(StructuredLog, ThreadsBeyondCapacityDropButCount) {
  LoggerOptions opt;
  opt.fd = -1;
  opt.max_threads = 1;
  Logger logger(opt);
  logger.log(LogLevel::Info, "main.claims.slot", {});  // registers ring 0

  constexpr int kPerThread = 7;
  auto worker = [&] {
    for (int i = 0; i < kPerThread; ++i)
      logger.log(LogLevel::Info, "homeless", {{"i", i}});
  };
  std::thread a(worker), b(worker);
  a.join();
  b.join();
  logger.flush();

  EXPECT_EQ(logger.dropped_threads(), static_cast<uint64_t>(2 * kPerThread));
  EXPECT_EQ(logger.emitted(), 1u);
}

TEST(StructuredLog, ConcurrentWritersProduceNoTornLines) {
  TempLog tmp("concurrent");
  LoggerOptions opt;
  opt.fd = -1;
  opt.path = tmp.path;
  opt.ring_capacity = 64;  // small enough that overflow paths also run
  opt.flush_period_s = 0.005;
  constexpr unsigned kThreads = 8;
  constexpr int kPerThread = 500;
  uint64_t accounted = 0;
  {
    Logger logger(opt);
    std::atomic<bool> go{false};
    std::vector<std::thread> threads;
    for (unsigned t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
        for (int i = 0; i < kPerThread; ++i)
          logger.log(LogLevel::Info, "worker.tick",
                     {{"thread", t}, {"i", i}, {"ok", true}});
      });
    }
    go.store(true, std::memory_order_release);
    for (auto& t : threads) t.join();
    logger.flush();
    // Every attempt is accounted for exactly once: emitted, dropped on a
    // full ring, or dropped for want of a ring. Nothing vanishes.
    accounted = logger.emitted() + logger.dropped_overflow() +
                logger.dropped_threads() + logger.suppressed();
    EXPECT_EQ(accounted, static_cast<uint64_t>(kThreads) * kPerThread);
  }
  // No torn or interleaved lines: every line in the file is one complete
  // JSON object with the mandatory keys.
  const auto lines = read_lines(tmp.path);
  EXPECT_FALSE(lines.empty());
  for (const std::string& line : lines) {
    const auto doc = net::Json::parse(line);
    ASSERT_TRUE(doc.has_value()) << line;
    EXPECT_GT((*doc)["ts_us"].as_number(), 0.0);
    EXPECT_EQ((*doc)["level"].as_string(), "info");
    EXPECT_EQ((*doc)["event"].as_string(), "worker.tick");
  }
}

TEST(StructuredLog, FatalLineBypassesTheRing) {
  TempLog tmp("fatal");
  LoggerOptions opt;
  opt.fd = -1;
  opt.path = tmp.path;
  opt.flush_period_s = 5.0;  // prove no flusher pass is needed
  Logger logger(opt);

  logger.write_fatal_line("fatal.signal", "SIGSEGV");
  // Visible immediately — the crash path cannot wait for a drain.
  const auto lines = read_lines(tmp.path);
  ASSERT_EQ(lines.size(), 1u);
  const auto doc = net::Json::parse(lines[0]);
  ASSERT_TRUE(doc.has_value()) << lines[0];
  EXPECT_EQ((*doc)["level"].as_string(), "error");
  EXPECT_EQ((*doc)["event"].as_string(), "fatal.signal");
  EXPECT_EQ((*doc)["reason"].as_string(), "SIGSEGV");
}

TEST(StructuredLog, GlobalInstallDrivesTheHelpers) {
  // Without a global logger the helpers are safe no-ops.
  ASSERT_EQ(Logger::global(), nullptr);
  log_info("into.the.void", {{"ignored", 1}});

  TempLog tmp("global");
  LoggerOptions opt;
  opt.fd = -1;
  opt.path = tmp.path;
  opt.min_level = LogLevel::Debug;
  {
    Logger logger(opt);
    Logger::install_global(&logger);
    EXPECT_EQ(Logger::global(), &logger);
    log_debug("helper.debug");
    log_info("helper.info", {{"n", 1}});
    log_warn("helper.warn");
    log_error("helper.error");
    logger.flush();
    EXPECT_EQ(logger.emitted(), 4u);
    // Destruction deregisters itself — no dangling global.
  }
  EXPECT_EQ(Logger::global(), nullptr);
  log_info("into.the.void.again");

  const auto lines = read_lines(tmp.path);
  ASSERT_EQ(lines.size(), 4u);
  const std::string all = lines[0] + lines[1] + lines[2] + lines[3];
  for (const char* event :
       {"helper.debug", "helper.info", "helper.warn", "helper.error"})
    EXPECT_NE(all.find(event), std::string::npos) << event;
}

}  // namespace
}  // namespace swve::obs
