#include <gtest/gtest.h>

#include <sstream>
#include <thread>

#include "perf/freq_monitor.hpp"
#include "perf/gcups.hpp"
#include "perf/table.hpp"
#include "perf/timer.hpp"
#include "perf/topdown.hpp"

namespace swve::perf {
namespace {

TEST(Gcups, Math) {
  EXPECT_DOUBLE_EQ(gcups(2'000'000'000ull, 1.0), 2.0);
  EXPECT_DOUBLE_EQ(gcups(1'000'000'000ull, 0.5), 2.0);
  EXPECT_DOUBLE_EQ(gcups(100, 0.0), 0.0);
  EXPECT_EQ(alignment_cells(100, 1000), 100'000u);
}

TEST(Stopwatch, MeasuresElapsedTime) {
  Stopwatch sw;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  double s = sw.seconds();
  EXPECT_GE(s, 0.015);
  EXPECT_LT(s, 2.0);
  sw.reset();
  EXPECT_LT(sw.seconds(), 0.015);
}

TEST(Table, FormatsAlignedColumns) {
  Table t({"name", "gcups"});
  t.row({"query1", Table::num(1.234, 2)});
  t.row({"a-much-longer-name", Table::num(10.5, 2)});
  std::ostringstream os;
  t.print(os);
  std::string text = os.str();
  EXPECT_NE(text.find("name"), std::string::npos);
  EXPECT_NE(text.find("1.23"), std::string::npos);
  EXPECT_NE(text.find("10.50"), std::string::npos);
  EXPECT_NE(text.find("----"), std::string::npos);
  // Every line has the same length (fixed-width columns).
  std::istringstream in(text);
  std::string line;
  size_t len = 0;
  while (std::getline(in, line)) {
    if (len == 0) len = line.size();
    EXPECT_EQ(line.size(), len);
  }
}

TEST(Table, Helpers) {
  EXPECT_EQ(Table::num(3.14159, 3), "3.142");
  EXPECT_EQ(Table::integer(42), "42");
  EXPECT_EQ(Table::percent(0.123, 1), "12.3%");
}

TEST(Table, ShortRowsArePadded) {
  Table t({"a", "b", "c"});
  t.row({"only-one"});
  std::ostringstream os;
  EXPECT_NO_THROW(t.print(os));
}

TEST(FreqMonitor, SpinChainCountsAdds) {
  uint64_t sink = 1;
  EXPECT_EQ(spin_chain(1000, &sink), 8000u);
  EXPECT_NE(sink, 1u);
}

TEST(FreqMonitor, MeasuresPlausibleFrequency) {
  FreqSample s = measure_frequency(30);
  // Anything from a throttled VM to a boosted desktop core.
  EXPECT_GT(s.ghz, 0.2);
  EXPECT_LT(s.ghz, 10.0);
}

TEST(FreqMonitor, ScalingReportShape) {
  FreqScalingReport rep = frequency_scaling(2, 20);
  ASSERT_EQ(rep.threads.size(), 2u);
  EXPECT_EQ(rep.threads[0], 1);
  EXPECT_EQ(rep.threads[1], 2);
  for (double g : rep.ghz_mean) EXPECT_GT(g, 0.1);
  for (size_t i = 0; i < rep.ghz_min.size(); ++i)
    EXPECT_LE(rep.ghz_min[i], rep.ghz_mean[i] + 1e-9);
}

TEST(TopDown, FractionsAreSane) {
  ModelInputs model;
  model.instructions = 50'000'000;
  model.mem_bytes = 10'000'000;
  TopDownResult r = topdown_analyze(
      [] {
        volatile uint64_t x = 0;
        for (int i = 0; i < 50'000'000; ++i) x = x + 1;
      },
      model);
  EXPECT_GE(r.retiring, 0.0);
  EXPECT_LE(r.retiring, 1.0);
  EXPECT_GE(r.backend_bound, 0.0);
  EXPECT_LE(r.retiring + r.frontend_bound + r.bad_speculation + r.backend_bound,
            1.0 + 1e-6);
  EXPECT_NEAR(r.memory_bound + r.core_bound, r.backend_bound, 1e-9);
  EXPECT_FALSE(r.source.empty());
  EXPECT_GT(r.cycles, 0u);
}

TEST(TopDown, StreamingBandwidthPositive) {
  double bw = streaming_bandwidth_gbps();
  EXPECT_GT(bw, 0.5);
  EXPECT_LT(bw, 1000.0);
  EXPECT_DOUBLE_EQ(bw, streaming_bandwidth_gbps());  // cached
}

}  // namespace
}  // namespace swve::perf
