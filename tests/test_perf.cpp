#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <thread>

#include "obs/trace.hpp"
#include "perf/freq_monitor.hpp"
#include "perf/gcups.hpp"
#include "perf/metrics.hpp"
#include "perf/table.hpp"
#include "perf/timer.hpp"
#include "perf/topdown.hpp"
#include "seq/synthetic.hpp"
#include "service/align_service.hpp"

namespace swve::perf {
namespace {

TEST(Gcups, Math) {
  EXPECT_DOUBLE_EQ(gcups(2'000'000'000ull, 1.0), 2.0);
  EXPECT_DOUBLE_EQ(gcups(1'000'000'000ull, 0.5), 2.0);
  EXPECT_DOUBLE_EQ(gcups(100, 0.0), 0.0);
  EXPECT_EQ(alignment_cells(100, 1000), 100'000u);
}

TEST(Stopwatch, MeasuresElapsedTime) {
  Stopwatch sw;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  double s = sw.seconds();
  EXPECT_GE(s, 0.015);
  EXPECT_LT(s, 2.0);
  sw.reset();
  EXPECT_LT(sw.seconds(), 0.015);
}

TEST(Table, FormatsAlignedColumns) {
  Table t({"name", "gcups"});
  t.row({"query1", Table::num(1.234, 2)});
  t.row({"a-much-longer-name", Table::num(10.5, 2)});
  std::ostringstream os;
  t.print(os);
  std::string text = os.str();
  EXPECT_NE(text.find("name"), std::string::npos);
  EXPECT_NE(text.find("1.23"), std::string::npos);
  EXPECT_NE(text.find("10.50"), std::string::npos);
  EXPECT_NE(text.find("----"), std::string::npos);
  // Every line has the same length (fixed-width columns).
  std::istringstream in(text);
  std::string line;
  size_t len = 0;
  while (std::getline(in, line)) {
    if (len == 0) len = line.size();
    EXPECT_EQ(line.size(), len);
  }
}

TEST(Table, Helpers) {
  EXPECT_EQ(Table::num(3.14159, 3), "3.142");
  EXPECT_EQ(Table::integer(42), "42");
  EXPECT_EQ(Table::percent(0.123, 1), "12.3%");
}

TEST(Table, ShortRowsArePadded) {
  Table t({"a", "b", "c"});
  t.row({"only-one"});
  std::ostringstream os;
  EXPECT_NO_THROW(t.print(os));
}

TEST(FreqMonitor, SpinChainCountsAdds) {
  uint64_t sink = 1;
  EXPECT_EQ(spin_chain(1000, &sink), 8000u);
  EXPECT_NE(sink, 1u);
}

TEST(FreqMonitor, MeasuresPlausibleFrequency) {
  FreqSample s = measure_frequency(30);
  // Anything from a throttled VM to a boosted desktop core.
  EXPECT_GT(s.ghz, 0.2);
  EXPECT_LT(s.ghz, 10.0);
}

TEST(FreqMonitor, ScalingReportShape) {
  FreqScalingReport rep = frequency_scaling(2, 20);
  ASSERT_EQ(rep.threads.size(), 2u);
  EXPECT_EQ(rep.threads[0], 1);
  EXPECT_EQ(rep.threads[1], 2);
  for (double g : rep.ghz_mean) EXPECT_GT(g, 0.1);
  for (size_t i = 0; i < rep.ghz_min.size(); ++i)
    EXPECT_LE(rep.ghz_min[i], rep.ghz_mean[i] + 1e-9);
}

TEST(TopDown, FractionsAreSane) {
  ModelInputs model;
  model.instructions = 50'000'000;
  model.mem_bytes = 10'000'000;
  TopDownResult r = topdown_analyze(
      [] {
        volatile uint64_t x = 0;
        for (int i = 0; i < 50'000'000; ++i) x = x + 1;
      },
      model);
  EXPECT_GE(r.retiring, 0.0);
  EXPECT_LE(r.retiring, 1.0);
  EXPECT_GE(r.backend_bound, 0.0);
  EXPECT_LE(r.retiring + r.frontend_bound + r.bad_speculation + r.backend_bound,
            1.0 + 1e-6);
  EXPECT_NEAR(r.memory_bound + r.core_bound, r.backend_bound, 1e-9);
  EXPECT_FALSE(r.source.empty());
  EXPECT_GT(r.cycles, 0u);
}

TEST(TopDown, StreamingBandwidthPositive) {
  double bw = streaming_bandwidth_gbps();
  EXPECT_GT(bw, 0.5);
  EXPECT_LT(bw, 1000.0);
  EXPECT_DOUBLE_EQ(bw, streaming_bandwidth_gbps());  // cached
}

// ---------------------------------------------------------------------------
// LatencyHistogram bucket semantics: bucket 0 is [0, 1us); bucket i >= 1 is
// [2^(i-1), 2^i) us; the last bucket saturates.

TEST(LatencyHistogram, BucketBoundaries) {
  LatencyHistogram h;
  h.record(0.0);          // 0 us -> bucket 0
  h.record(0.5e-6);       // 0.5 us -> bucket 0
  h.record(1e-6);         // exactly 1 us -> bucket 1 ([1, 2) us)
  h.record(2e-6);         // 2 us -> bucket 2 ([2, 4) us)
  h.record(1024e-6);      // 2^10 us -> bucket 11
  LatencyHistogram::Snapshot s = h.snapshot();
  EXPECT_EQ(s.buckets[0], 2u);
  EXPECT_EQ(s.buckets[1], 1u);
  EXPECT_EQ(s.buckets[2], 1u);
  EXPECT_EQ(s.buckets[11], 1u);
  EXPECT_EQ(s.count, 5u);
}

TEST(LatencyHistogram, SaturatesAtLastBucket) {
  LatencyHistogram h;
  h.record(1e5);   // ~28 hours: far beyond 2^30 us
  h.record(1e9);   // absurd, must still land in the last bucket
  LatencyHistogram::Snapshot s = h.snapshot();
  EXPECT_EQ(s.buckets[LatencyHistogram::kBuckets - 1], 2u);
  EXPECT_EQ(s.count, 2u);
}

TEST(LatencyHistogram, PercentilesInterpolateWithinBucket) {
  LatencyHistogram h;
  for (int i = 0; i < 1000; ++i) h.record(3e-6);  // all in bucket 2: [2,4) us
  LatencyHistogram::Snapshot s = h.snapshot();
  // The raw bucket upper bound would report 4 us; log-linear interpolation
  // keeps every percentile strictly inside the bucket.
  EXPECT_GT(s.p50_s, 2e-6);
  EXPECT_LT(s.p50_s, 4e-6);
  EXPECT_NEAR(s.p50_s, 2e-6 * std::exp2(0.5), 0.1e-6);  // ~2.83 us
  // p99 interpolates high in the bucket but is clamped to the observed max.
  EXPECT_LE(s.p99_s, s.max_s + 1e-12);
  EXPECT_GE(s.p99_s, s.p50_s);
}

TEST(LatencyHistogram, PercentileClampedToObservedMax) {
  LatencyHistogram h;
  h.record(5e-6);  // lone sample in bucket 3 ([4, 8) us)
  LatencyHistogram::Snapshot s = h.snapshot();
  EXPECT_LE(s.p99_s, 5e-6 + 1e-12);  // never above the max, despite 8us bound
}

// Snapshot window algebra: subtract() carves out the samples recorded
// between two snapshots of one histogram; merge() folds disjoint
// histograms (e.g. tiers) together. Both recompute percentiles with the
// same interpolation live snapshots use.

TEST(LatencyHistogram, SnapshotSubtractIsolatesTheWindow) {
  LatencyHistogram h;
  for (int i = 0; i < 10; ++i) h.record(3e-6);  // bucket 2
  LatencyHistogram::Snapshot before = h.snapshot();
  for (int i = 0; i < 5; ++i) h.record(100e-6);  // bucket 7: [64, 128) us
  LatencyHistogram::Snapshot after = h.snapshot();

  LatencyHistogram::Snapshot d =
      LatencyHistogram::Snapshot::subtract(after, before);
  EXPECT_EQ(d.count, 5u);
  EXPECT_EQ(d.buckets[2], 0u);  // the old samples cancel out
  EXPECT_EQ(d.buckets[7], 5u);
  // Window percentiles come from the window's only bucket, not the
  // lifetime distribution (whose p50 is still in bucket 2).
  EXPECT_GT(d.p50_s, 64e-6);
  EXPECT_LE(d.p50_s, 128e-6);
  EXPECT_NEAR(d.mean_s, 100e-6, 1e-9);
}

TEST(LatencyHistogram, SnapshotSubtractEmptyWindowIsZero) {
  LatencyHistogram h;
  h.record(3e-6);
  LatencyHistogram::Snapshot s = h.snapshot();
  LatencyHistogram::Snapshot d = LatencyHistogram::Snapshot::subtract(s, s);
  EXPECT_EQ(d.count, 0u);
  EXPECT_DOUBLE_EQ(d.p50_s, 0.0);
  EXPECT_DOUBLE_EQ(d.p99_s, 0.0);
  EXPECT_DOUBLE_EQ(d.mean_s, 0.0);
}

TEST(LatencyHistogram, SnapshotSubtractClampsNonMonotonePairs) {
  LatencyHistogram small, big;
  small.record(3e-6);
  for (int i = 0; i < 4; ++i) big.record(3e-6);
  // "now" has fewer samples than "prev" (counter reset / mixed-up
  // histograms): per-bucket clamp to zero, never underflow.
  LatencyHistogram::Snapshot d = LatencyHistogram::Snapshot::subtract(
      small.snapshot(), big.snapshot());
  EXPECT_EQ(d.count, 0u);
  for (uint64_t b : d.buckets) EXPECT_EQ(b, 0u);
}

TEST(LatencyHistogram, SnapshotMergeIsCountWeighted) {
  LatencyHistogram a, b;
  for (int i = 0; i < 3; ++i) a.record(2e-6);
  for (int i = 0; i < 1; ++i) b.record(1000e-6);
  LatencyHistogram::Snapshot m = LatencyHistogram::Snapshot::merge(
      a.snapshot(), b.snapshot());
  EXPECT_EQ(m.count, 4u);
  EXPECT_EQ(m.buckets[2], 3u);
  EXPECT_EQ(m.buckets[10], 1u);  // 1000 us: [512, 1024) us
  EXPECT_NEAR(m.mean_s, (3 * 2e-6 + 1 * 1000e-6) / 4.0, 1e-9);
  EXPECT_NEAR(m.max_s, 1000e-6, 1e-12);
  EXPECT_GE(m.p99_s, m.p50_s);  // percentiles recomputed over the union
}

TEST(LatencyHistogram, CountOverIsExactAtBucketBoundaries) {
  LatencyHistogram h;
  h.record(0.5e-6);   // bucket 0, upper 1us
  h.record(100e-6);   // bucket 8, upper 128us
  h.record(5000e-6);  // bucket 13, upper 8192us
  LatencyHistogram::Snapshot s = h.snapshot();
  EXPECT_EQ(s.count_over(0.0), 3u);
  EXPECT_EQ(s.count_over(1e-6), 2u);     // bucket 0 ends exactly here
  EXPECT_EQ(s.count_over(128e-6), 1u);   // bucket 8 ends exactly here
  EXPECT_EQ(s.count_over(64e-6), 2u);    // inside bucket 8: conservative
  EXPECT_EQ(s.count_over(1.0), 0u);
}

TEST(MetricsDelta, CounterHelpersShareOneDefinition) {
  EXPECT_EQ(counter_delta(10, 4), 6u);
  EXPECT_EQ(counter_delta(4, 10), 0u);  // reset clamps, never wraps
  EXPECT_DOUBLE_EQ(delta_rate(100, 40, 2.0), 30.0);
  EXPECT_DOUBLE_EQ(delta_rate(100, 40, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(delta_ratio(8, 4, 10, 5), 0.8);
  EXPECT_DOUBLE_EQ(delta_ratio(8, 4, 5, 5), 0.0);  // empty denominator
}

TEST(MetricsDelta, QueryLengthBinsMatchPackingRegimes) {
  using S = MetricsSnapshot;
  EXPECT_EQ(S::length_bin_of(0), 0);
  EXPECT_EQ(S::length_bin_of(1), 0);
  EXPECT_EQ(S::length_bin_of(2), 1);
  EXPECT_EQ(S::length_bin_of(3), 1);
  EXPECT_EQ(S::length_bin_of(4), 2);
  EXPECT_EQ(S::length_bin_of(320), 8);      // [256, 512)
  EXPECT_EQ(S::length_bin_of(32768), S::kLengthBins - 1);
  EXPECT_EQ(S::length_bin_of(1u << 30), S::kLengthBins - 1);  // saturates
  EXPECT_EQ(S::length_bin_lower(0), 0u);
  EXPECT_EQ(S::length_bin_lower(1), 2u);
  EXPECT_EQ(S::length_bin_lower(8), 256u);
  EXPECT_EQ(S::length_bin_lower(S::kLengthBins - 1), 32768u);
}

TEST(FormatSeconds, UnitSeams) {
  EXPECT_EQ(format_seconds(999.4e-6), "999us");
  EXPECT_EQ(format_seconds(999.6e-6), "1.00ms");   // not "1000us"
  EXPECT_EQ(format_seconds(0.9994), "999.40ms");
  EXPECT_EQ(format_seconds(0.9999999), "1.000s");  // not "1000.00ms"
  EXPECT_EQ(format_seconds(248e-6), "248us");
  EXPECT_EQ(format_seconds(3.2e-3), "3.20ms");
  EXPECT_EQ(format_seconds(1.5), "1.500s");
}

// ---------------------------------------------------------------------------
// Pay-for-what-you-use tracing: a traced pairwise request returns a
// bit-identical alignment to an untraced one.

TEST(TracingOverhead, TracedPairwiseIsBitIdentical) {
  seq::Sequence q = seq::generate_sequence(404, 150);
  seq::Sequence r = seq::generate_sequence(405, 220);

  auto run = [&](obs::TraceSink* sink) {
    service::ServiceOptions opt;
    opt.trace_sink = sink;
    service::AlignService svc(opt);
    service::AlignRequest rq;
    rq.query = q;
    rq.reference = r;
    rq.options.traceback = true;
    return svc.submit(std::move(rq)).get();
  };

  obs::TraceSink sink;
  service::AlignResponse traced = run(&sink);
  service::AlignResponse plain = run(nullptr);

  EXPECT_EQ(traced.alignment.score, plain.alignment.score);
  EXPECT_EQ(traced.alignment.end_query, plain.alignment.end_query);
  EXPECT_EQ(traced.alignment.end_ref, plain.alignment.end_ref);
  EXPECT_EQ(traced.alignment.begin_query, plain.alignment.begin_query);
  EXPECT_EQ(traced.alignment.begin_ref, plain.alignment.begin_ref);
  EXPECT_EQ(traced.alignment.cigar, plain.alignment.cigar);
  EXPECT_EQ(traced.alignment.width_used, plain.alignment.width_used);
  EXPECT_EQ(traced.alignment.isa_used, plain.alignment.isa_used);
  EXPECT_EQ(traced.alignment.stats.cells, plain.alignment.stats.cells);
  // The traced run actually recorded spans; the untraced one had no sink to
  // record into and its trace_id stays 0.
  EXPECT_GT(sink.recorded(), 0u);
  EXPECT_GT(traced.trace.trace_id, 0u);
  EXPECT_EQ(plain.trace.trace_id, 0u);
}

}  // namespace
}  // namespace swve::perf
