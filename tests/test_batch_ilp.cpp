// The interleaved (software-pipelined) batch kernel must be bit-identical
// to K = 1 for every depth, ISA, group shape, and packing policy: the fused
// column loop only reorders independent work across batches, never within
// one. These tests pin that equivalence, the saturation-mask propagation,
// the rescore ladder under interleaving, and the IlpPolicy / prefetch knobs.
#include <gtest/gtest.h>

#include <vector>

#include "core/batch32.hpp"
#include "core/dispatch.hpp"
#include "core/scalar_ref.hpp"
#include "seq/synthetic.hpp"
#include "simd/cpu.hpp"

namespace swve::core {
namespace {

seq::SequenceDatabase small_db(uint64_t seed, uint64_t residues,
                               uint32_t min_len = 5, uint32_t max_len = 300) {
  seq::SyntheticConfig cfg;
  cfg.seed = seed;
  cfg.target_residues = residues;
  cfg.min_length = min_len;
  cfg.max_length = max_len;
  return seq::SequenceDatabase::synthetic(cfg);
}

/// All (isa, lanes) combinations the batch kernel dispatch supports on this
/// machine. Scalar runs both lane widths (emulated engines).
std::vector<std::pair<simd::Isa, int>> isa_lane_cases() {
  std::vector<std::pair<simd::Isa, int>> cases = {
      {simd::Isa::Scalar, 32}, {simd::Isa::Scalar, 64}};
  if (simd::isa_available(simd::Isa::Avx2)) cases.push_back({simd::Isa::Avx2, 32});
  if (simd::isa_available(simd::Isa::Avx512)) {
    cases.push_back({simd::Isa::Avx512, 32});  // falls to the AVX2 engine
    if (simd::cpu_features().avx512vbmi) cases.push_back({simd::Isa::Avx512, 64});
  }
  return cases;
}

std::vector<BatchCols> all_cols(const Batch32Db& bdb) {
  std::vector<BatchCols> cols(bdb.batch_count());
  for (size_t b = 0; b < bdb.batch_count(); ++b)
    cols[b] = BatchCols{bdb.batch(b).columns, bdb.batch(b).max_len};
  return cols;
}

void expect_same(const Batch8Result& got, const Batch8Result& ref, int lanes,
                 const char* what, size_t batch) {
  for (int k = 0; k < lanes; ++k)
    EXPECT_EQ(got.max_score[k], ref.max_score[k])
        << what << " batch " << batch << " lane " << k;
  EXPECT_EQ(got.saturated_mask, ref.saturated_mask) << what << " batch " << batch;
}

TEST(BatchIlp, InterleavedKernelBitIdenticalToK1AcrossIsas) {
  auto db = small_db(21, 60'000);
  auto q = seq::generate_sequence(101, 90);
  Workspace ws;
  AlignConfig base;
  for (auto [isa, lanes] : isa_lane_cases()) {
    for (ScoreScheme scheme : {ScoreScheme::Matrix, ScoreScheme::Fixed}) {
      for (GapModel gaps : {GapModel::Affine, GapModel::Linear}) {
        AlignConfig cfg = base;
        cfg.isa = isa;
        cfg.scheme = scheme;
        cfg.gap_model = gaps;
        if (scheme == ScoreScheme::Fixed) {
          cfg.match = 3;
          cfg.mismatch = -2;
        }
        Batch32Db bdb(db, lanes);
        const std::vector<BatchCols> cols = all_cols(bdb);
        const int n = static_cast<int>(cols.size());
        ASSERT_GE(n, 3) << "need several batches for a meaningful group";
        std::vector<Batch8Result> ref(cols.size());
        for (size_t b = 0; b < cols.size(); ++b)
          ref[b] = batch32_align_u8(q, bdb.batch(b), lanes, cfg, ws, isa);
        for (int k : {2, 4}) {
          std::vector<Batch8Result> got(cols.size());
          batch32_align_u8_group(q, cols.data(), n, lanes, cfg, ws, isa, k,
                                 got.data());
          for (size_t b = 0; b < cols.size(); ++b)
            expect_same(got[b], ref[b], lanes, simd::isa_name(isa), b);
        }
      }
    }
  }
}

TEST(BatchIlp, RaggedGroupCountsDecomposeExactly) {
  // Counts that don't divide by the interleave depth force the dispatcher
  // to split into 4/2/1 sub-groups; every split must stay bit-identical.
  auto db = small_db(22, 30'000, 20, 200);
  auto q = seq::generate_sequence(102, 70);
  Workspace ws;
  AlignConfig cfg;
  const simd::Isa isa = simd::resolve_isa(simd::Isa::Auto);
  Batch32Db bdb(db, 32);
  const std::vector<BatchCols> cols = all_cols(bdb);
  std::vector<Batch8Result> ref(cols.size());
  for (size_t b = 0; b < cols.size(); ++b)
    ref[b] = batch32_align_u8(q, bdb.batch(b), 32, cfg, ws, isa);
  for (int count : {1, 2, 3, 5, 7}) {
    if (count > static_cast<int>(cols.size())) break;
    for (int k : {1, 2, 4}) {
      std::vector<Batch8Result> got(static_cast<size_t>(count));
      batch32_align_u8_group(q, cols.data(), count, 32, cfg, ws, isa, k,
                             got.data());
      for (int b = 0; b < count; ++b)
        expect_same(got[static_cast<size_t>(b)], ref[static_cast<size_t>(b)],
                    32, "ragged", static_cast<size_t>(b));
    }
  }
}

TEST(BatchIlp, SaturationMaskPropagatesPerBatchUnderInterleaving) {
  // Plant a near-copy of the query so one lane of one batch saturates; the
  // fused kernel must set exactly the same per-batch mask bits as K = 1.
  auto q = seq::generate_sequence(103, 500);
  std::vector<seq::Sequence> seqs;
  for (int i = 0; i < 100; ++i)
    seqs.push_back(seq::generate_sequence(104 + static_cast<uint64_t>(i), 80));
  seqs.push_back(seq::mutate(q, 105, 0.03));
  seq::SequenceDatabase db(std::move(seqs));
  Workspace ws;
  AlignConfig cfg;
  const simd::Isa isa = simd::resolve_isa(simd::Isa::Auto);
  for (int lanes : {32, 64}) {
    Batch32Db bdb(db, lanes);
    const std::vector<BatchCols> cols = all_cols(bdb);
    std::vector<Batch8Result> ref(cols.size());
    uint64_t any_saturated = 0;
    for (size_t b = 0; b < cols.size(); ++b) {
      ref[b] = batch32_align_u8(q, bdb.batch(b), lanes, cfg, ws, isa);
      any_saturated |= ref[b].saturated_mask;
    }
    ASSERT_NE(any_saturated, 0u) << "setup must provoke saturation";
    for (int k : {2, 4}) {
      std::vector<Batch8Result> got(cols.size());
      batch32_align_u8_group(q, cols.data(), static_cast<int>(cols.size()),
                             lanes, cfg, ws, isa, k, got.data());
      for (size_t b = 0; b < cols.size(); ++b)
        expect_same(got[b], ref[b], lanes, "saturation", b);
    }
  }
}

TEST(BatchIlp, RescoreLadderExactUnderEveryDepth) {
  // Same setup as the batch32 ladder test: one sequence needs the 16-bit
  // rung, one overflows int16 and needs the 32-bit rung. Scores must be
  // exact at every pinned interleave depth.
  auto q = seq::generate_sequence(110, 1200);
  std::vector<uint8_t> prefix(q.codes().begin(), q.codes().begin() + 400);
  std::vector<seq::Sequence> seqs;
  for (int i = 0; i < 40; ++i)
    seqs.push_back(seq::generate_sequence(111 + static_cast<uint64_t>(i), 60));
  seqs.emplace_back("w16", prefix, seq::Alphabet::protein());  // index 40
  seqs.push_back(seq::mutate(q, 112, 0.0));                    // index 41
  seq::SequenceDatabase db(std::move(seqs));
  AlignConfig cfg;
  cfg.scheme = ScoreScheme::Fixed;
  cfg.match = 30;
  cfg.mismatch = -3;
  Workspace ws;
  const simd::Isa isa = simd::resolve_isa(simd::Isa::Auto);
  Batch32Db bdb(db, 32);
  for (int k : {1, 2, 4}) {
    set_ilp_override(isa, IlpPolicy::fixed(k));
    BatchSearchStats stats;
    auto scores = batch_scores(q, bdb, db, cfg, ws, &stats);
    EXPECT_GE(stats.rescored, 2u) << "K=" << k;
    EXPECT_EQ(scores[40], 30 * 400) << "K=" << k;
    EXPECT_EQ(scores[41], 30 * 1200) << "K=" << k;
    for (size_t s = 0; s < db.size(); ++s)
      EXPECT_EQ(scores[s], ref_align(q, db[s], cfg).score)
          << "K=" << k << " seq " << s;
  }
  set_ilp_override(isa, IlpPolicy::auto_policy());
}

TEST(BatchIlp, BatchScoresIdenticalAcrossDepthsAndPolicies) {
  auto db = small_db(23, 25'000);
  auto q = seq::generate_sequence(113, 100);
  Workspace ws;
  AlignConfig cfg;
  const simd::Isa isa = simd::resolve_isa(simd::Isa::Auto);
  for (PackingPolicy policy :
       {PackingPolicy::DbOrder, PackingPolicy::LengthSorted,
        PackingPolicy::LengthBinned}) {
    Batch32Db bdb(db, 32, policy);
    std::vector<int> ref_scores;
    for (int k : {1, 2, 4}) {
      set_ilp_override(isa, IlpPolicy::fixed(k));
      auto scores = batch_scores(q, bdb, db, cfg, ws);
      if (ref_scores.empty())
        ref_scores = scores;
      else
        EXPECT_EQ(scores, ref_scores)
            << packing_policy_name(policy) << " K=" << k;
    }
    for (size_t s = 0; s < db.size(); ++s)
      EXPECT_EQ(ref_scores[s], ref_align(q, db[s], cfg).score) << "seq " << s;
  }
  set_ilp_override(isa, IlpPolicy::auto_policy());
}

TEST(BatchIlp, IlpOverrideNormalizesAndClears) {
  const simd::Isa isa = simd::resolve_isa(simd::Isa::Auto);
  set_ilp_override(isa, IlpPolicy::fixed(4));
  EXPECT_EQ(resolved_ilp(isa), 4);
  set_ilp_override(isa, IlpPolicy::fixed(3));  // not a supported depth
  EXPECT_EQ(resolved_ilp(isa), 2);
  set_ilp_override(isa, IlpPolicy::fixed(1));
  EXPECT_EQ(resolved_ilp(isa), 1);
  set_ilp_override(isa, IlpPolicy::auto_policy());
  const int k = resolved_ilp(isa);  // calibrated
  EXPECT_TRUE(k == 1 || k == 2 || k == 4) << k;
  EXPECT_EQ(resolved_ilp(isa), k) << "calibration result must be cached";
}

TEST(BatchIlp, PrefetchDistanceClampsAndNeverChangesResults) {
  const uint32_t saved = batch_prefetch_distance();
  set_batch_prefetch_distance(100);
  EXPECT_EQ(batch_prefetch_distance(), 64u);  // clamped
  set_batch_prefetch_distance(0);
  EXPECT_EQ(batch_prefetch_distance(), 0u);   // disabled

  auto db = small_db(24, 15'000);
  auto q = seq::generate_sequence(114, 80);
  Workspace ws;
  AlignConfig cfg;
  const simd::Isa isa = simd::resolve_isa(simd::Isa::Auto);
  Batch32Db bdb(db, 32);
  const std::vector<BatchCols> cols = all_cols(bdb);
  std::vector<Batch8Result> ref(cols.size());
  batch32_align_u8_group(q, cols.data(), static_cast<int>(cols.size()), 32,
                         cfg, ws, isa, 4, ref.data());
  for (uint32_t dist : {4u, 16u, 64u}) {
    set_batch_prefetch_distance(dist);
    std::vector<Batch8Result> got(cols.size());
    batch32_align_u8_group(q, cols.data(), static_cast<int>(cols.size()), 32,
                           cfg, ws, isa, 4, got.data());
    for (size_t b = 0; b < cols.size(); ++b)
      expect_same(got[b], ref[b], 32, "prefetch", b);
  }
  set_batch_prefetch_distance(saved);
}

}  // namespace
}  // namespace swve::core
