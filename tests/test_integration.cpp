// End-to-end flows across the whole stack.
#include <gtest/gtest.h>

#include <cstdlib>
#include <random>
#include <sstream>

#include "align/aligner.hpp"
#include "align/batch_server.hpp"
#include "align/db_search.hpp"
#include "core/traceback.hpp"
#include "seq/fasta.hpp"
#include "seq/synthetic.hpp"

namespace swve {
namespace {

using align::AlignConfig;
using align::Aligner;

TEST(Integration, FastaToSearchToTraceback) {
  // Build a FASTA in memory, read it back, search, re-align the top hit.
  seq::SyntheticConfig sc;
  sc.seed = 71;
  sc.target_residues = 30'000;
  auto seqs = seq::generate_database(sc);
  auto query = seq::mutate(seqs[3], 72, 0.1);  // homolog of entry 3

  std::ostringstream fasta;
  seq::write_fasta(fasta, seqs);
  std::istringstream in(fasta.str());
  seq::SequenceDatabase db(seq::read_fasta(in, seq::Alphabet::protein()));
  ASSERT_EQ(db.size(), seqs.size());

  align::DatabaseSearch search(db, AlignConfig{});
  auto res = search.search(query, 5);
  ASSERT_FALSE(res.hits.empty());
  EXPECT_EQ(res.hits[0].seq_index, 3u);

  AlignConfig tb_cfg;
  tb_cfg.traceback = true;
  Aligner aligner(tb_cfg);
  core::Alignment a = aligner.align(query, db[res.hits[0].seq_index]);
  EXPECT_EQ(a.score, res.hits[0].score);
  EXPECT_EQ(core::replay_score(query, db[res.hits[0].seq_index], tb_cfg, a), a.score);
}

TEST(Integration, ScenarioThreeReusableAlignerAllocatesOnceWarm) {
  Aligner aligner;
  std::mt19937_64 rng(73);
  // Warm up at the maximum size, then confirm many small alignments work
  // and agree with one-shot calls.
  auto big_q = seq::generate_sequence(rng(), 256);
  auto big_r = seq::generate_sequence(rng(), 256);
  aligner.align(big_q, big_r);
  for (int it = 0; it < 200; ++it) {
    auto q = seq::generate_sequence(rng(), 1 + rng() % 128);
    auto r = seq::generate_sequence(rng(), 1 + rng() % 128);
    EXPECT_EQ(aligner.align(q, r).score, align::align(q, r).score);
  }
}

TEST(Integration, DnaReadMappingFlow) {
  // Scenario 3 flavored: map short DNA reads against a small reference.
  std::mt19937_64 rng(74);
  auto ref = seq::generate_sequence(75, 2000, seq::AlphabetKind::Dna);
  AlignConfig cfg;
  cfg.scheme = core::ScoreScheme::Fixed;
  cfg.match = 2;
  cfg.mismatch = -3;
  cfg.gap_open = 5;
  cfg.gap_extend = 2;
  cfg.traceback = true;
  Aligner aligner(cfg);
  for (int read_i = 0; read_i < 20; ++read_i) {
    size_t pos = rng() % 1900;
    auto read = seq::mutate(ref.subsequence(pos, 100), rng(), 0.05);
    core::Alignment a = aligner.align(read, ref);
    ASSERT_GT(a.score, 100);  // ~100bp at +2 with few errors
    // The mapped window must overlap the true origin.
    EXPECT_LT(std::abs(a.begin_ref - static_cast<int>(pos)), 20);
  }
}

TEST(Integration, PlantedDomainsCreateSharedHits) {
  // The synthetic generator plants shared domains; two sequences carrying
  // the same domain must align far better than background.
  seq::SyntheticConfig sc;
  sc.seed = 76;
  sc.target_residues = 120'000;
  sc.planted_fraction = 0.5;
  sc.min_length = 150;
  auto db = seq::SequenceDatabase::synthetic(sc);
  align::DatabaseSearch search(db, AlignConfig{});
  // Search each of a few sequences against the db; at least one should have
  // a strong non-self hit (shared domain).
  int strong_pairs = 0;
  for (size_t s = 0; s < std::min<size_t>(db.size(), 20); ++s) {
    auto res = search.search(db[s], 3);
    for (const auto& h : res.hits)
      if (h.seq_index != s && h.score > 200) ++strong_pairs;
  }
  EXPECT_GT(strong_pairs, 0);
}

TEST(Integration, BatchServerPipelineWithThreads) {
  seq::SyntheticConfig sc;
  sc.seed = 77;
  sc.target_residues = 50'000;
  auto db = seq::SequenceDatabase::synthetic(sc);
  AlignConfig cfg;
  align::BatchServer server(db, cfg);
  auto queries = seq::make_query_ladder(78, 5, 60, 500);
  parallel::ThreadPool pool(2);
  auto results = server.run(queries, 10, &pool);
  ASSERT_EQ(results.size(), queries.size());
  for (size_t qi = 0; qi < queries.size(); ++qi) {
    for (const auto& hit : results[qi].result.hits) {
      core::Alignment exact = server.realign(queries[qi], hit);
      EXPECT_EQ(exact.score, hit.score) << "query " << qi;
    }
  }
}

}  // namespace
}  // namespace swve
