#include <gtest/gtest.h>

#include "core/traceback.hpp"
#include "seq/sequence.hpp"

namespace swve::core {
namespace {

TEST(Cigar, PushMergesAdjacentSameOps) {
  Cigar c;
  c.push(CigarOp::Match, 3);
  c.push(CigarOp::Match, 2);
  c.push(CigarOp::Ins, 1);
  c.push(CigarOp::Match, 4);
  EXPECT_EQ(c.to_string(), "5M1I4M");
  EXPECT_EQ(c.size(), 3u);
}

TEST(Cigar, ZeroLengthIgnored) {
  Cigar c;
  c.push(CigarOp::Del, 0);
  EXPECT_TRUE(c.empty());
}

TEST(Cigar, ConsumedCounts) {
  Cigar c;
  c.push(CigarOp::Match, 5);
  c.push(CigarOp::Ins, 2);
  c.push(CigarOp::Del, 3);
  EXPECT_EQ(c.query_consumed(), 7u);  // M + I
  EXPECT_EQ(c.ref_consumed(), 8u);    // M + D
}

TEST(Cigar, Reverse) {
  Cigar c;
  c.push(CigarOp::Match, 1);
  c.push(CigarOp::Del, 2);
  c.reverse();
  EXPECT_EQ(c.to_string(), "2D1M");
}

TEST(Cigar, LargeRunLengths) {
  Cigar c;
  c.push(CigarOp::Match, 1'000'000);
  c.push(CigarOp::Match, 1);
  EXPECT_EQ(c.len(0), 1'000'001u);
}

// Hand-built 2x2 flag matrix:
//   (0,0) diag-start, (1,1) diag from (0,0).
TEST(WalkTraceback, PureDiagonal) {
  uint8_t flags[4] = {kTbDiag, kTbStop, kTbStop, kTbDiag};
  auto at = [&](int i, int j) { return flags[i * 2 + j]; };
  TracebackResult t = walk_traceback(at, 1, 1);
  EXPECT_EQ(t.cigar.to_string(), "2M");
  EXPECT_EQ(t.begin_query, 0);
  EXPECT_EQ(t.begin_ref, 0);
}

// H at (1,2) came from F (horizontal run of 2 via extension), which opened
// from H at (1,0)... flags encode: (1,2): src F with Fext; (1,1): Fext clear
// means open from H(1,0); (1,0) diag from (0,-1)-boundary.
TEST(WalkTraceback, GapRunWithExplicitOpen) {
  // 2 rows x 3 cols.
  uint8_t flags[6] = {};
  flags[1 * 3 + 2] = kTbF | kTbFExt;  // extend: keep consuming ref
  flags[1 * 3 + 1] = kTbF;            // (state F here) open: next is H
  flags[1 * 3 + 0] = kTbDiag;
  auto at = [&](int i, int j) { return flags[i * 3 + j]; };
  TracebackResult t = walk_traceback(at, 1, 2);
  EXPECT_EQ(t.cigar.to_string(), "1M2D");
  EXPECT_EQ(t.begin_query, 1);
  EXPECT_EQ(t.begin_ref, 0);
}

TEST(WalkTraceback, VerticalGap) {
  // 3 rows x 1 col: (2,0) from E opening at H(1,0)... E without ext bit.
  uint8_t flags[3] = {};
  flags[2] = kTbE;  // consume query residue 2, then H at (1,0)
  flags[1] = kTbDiag;
  auto at = [&](int i, int j) { return flags[i * 1 + j]; };
  TracebackResult t = walk_traceback(at, 2, 0);
  EXPECT_EQ(t.cigar.to_string(), "1M1I");
  EXPECT_EQ(t.begin_query, 1);
  EXPECT_EQ(t.begin_ref, 0);
}

TEST(WalkTraceback, StopsAtMatrixEdge) {
  uint8_t flags[1] = {kTbDiag};
  auto at = [&](int i, int j) { return flags[i + j]; };
  TracebackResult t = walk_traceback(at, 0, 0);
  EXPECT_EQ(t.cigar.to_string(), "1M");
  EXPECT_EQ(t.begin_query, 0);
  EXPECT_EQ(t.begin_ref, 0);
}

TEST(DiagTracebackView, IndexesDiagonalMajorLayout) {
  // m=2, n=3: diagonals d=0..3 with lengths 1,2,2,1.
  // Cells in diag-major order: (0,0) | (0,1),(1,0) | (0,2),(1,1) | (1,2).
  uint8_t dirs[6] = {10, 11, 12, 13, 14, 15};
  uint64_t offsets[5] = {0, 1, 3, 5, 0};
  DiagTracebackView v{dirs, offsets, 3};
  EXPECT_EQ(v(0, 0), 10);
  EXPECT_EQ(v(0, 1), 11);
  EXPECT_EQ(v(1, 0), 12);
  EXPECT_EQ(v(0, 2), 13);
  EXPECT_EQ(v(1, 1), 14);
  EXPECT_EQ(v(1, 2), 15);
}

TEST(ReplayScore, ThrowsOnBrokenCigar) {
  seq::Sequence q("q", "ARND", seq::Alphabet::protein());
  seq::Sequence r("r", "ARND", seq::Alphabet::protein());
  AlignConfig cfg;
  Alignment a;
  a.score = 10;
  a.begin_query = 0;
  a.begin_ref = 0;
  a.end_query = 3;
  a.end_ref = 3;
  a.cigar.push(CigarOp::Match, 10);  // runs past the end
  EXPECT_THROW(replay_score(q, r, cfg, a), std::out_of_range);
  a.cigar.clear();
  a.cigar.push(CigarOp::Match, 2);  // stops short of the end cell
  EXPECT_THROW(replay_score(q, r, cfg, a), std::out_of_range);
}

TEST(ReplayScore, EmptyCigarScoresZero) {
  seq::Sequence q("q", "AR", seq::Alphabet::protein());
  AlignConfig cfg;
  Alignment a;
  EXPECT_EQ(replay_score(q, q, cfg, a), 0);
}

}  // namespace
}  // namespace swve::core
