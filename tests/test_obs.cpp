// Observability subsystem (ISSUE 2 tentpole): lock-free TraceSink,
// Chrome-trace export, metric exporters (Prometheus/JSON), sliding-window
// GCUPS, per-target counters, and the live sampler.
//
// The concurrency tests here are the ThreadSanitizer targets of the tsan CI
// job: writers record into per-thread rings while a reader exports.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <regex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/exporters.hpp"
#include "obs/sampler.hpp"
#include "obs/trace.hpp"
#include "perf/metrics.hpp"

namespace swve::obs {
namespace {

// Minimal extractor for the flat JSON the exporters emit: the number that
// follows `"key":`.
uint64_t json_u64(const std::string& json, const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  const size_t at = json.find(needle);
  if (at == std::string::npos) return ~uint64_t{0};
  return std::strtoull(json.c_str() + at + needle.size(), nullptr, 10);
}

TraceEvent make_event(const char* name, uint64_t trace_id, uint64_t ts_ns) {
  TraceEvent e;
  e.name = name;
  e.trace_id = trace_id;
  e.ts_ns = ts_ns;
  e.dur_ns = 10;
  return e;
}

TEST(TraceSink, RecordsAndSnapshotsInTimestampOrder) {
  TraceSink sink(64, 4);
  sink.record(make_event("b", 1, 200));
  sink.record(make_event("a", 1, 100));
  auto events = sink.snapshot_events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_STREQ(events[0].name, "a");
  EXPECT_STREQ(events[1].name, "b");
  EXPECT_EQ(sink.recorded(), 2u);
  EXPECT_EQ(sink.dropped(), 0u);
}

TEST(TraceSink, RingWrapDropsOldestAndCounts) {
  TraceSink sink(8, 1);  // 8 slots, one thread
  for (uint64_t i = 0; i < 20; ++i)
    sink.record(make_event("e", 1, i));
  EXPECT_EQ(sink.recorded(), 20u);
  EXPECT_EQ(sink.dropped(), 12u);  // 20 written - 8 live
  auto events = sink.snapshot_events();
  ASSERT_EQ(events.size(), 8u);
  EXPECT_EQ(events.front().ts_ns, 12u);  // oldest survivor
  EXPECT_EQ(events.back().ts_ns, 19u);
}

TEST(TraceSink, ThreadsBeyondCapacityDropButCount) {
  TraceSink sink(16, 1);  // one thread slot only
  sink.record(make_event("main", 1, 1));  // claims the slot
  std::thread t([&] {
    for (int i = 0; i < 5; ++i) sink.record(make_event("evicted", 2, 10));
  });
  t.join();
  EXPECT_EQ(sink.snapshot_events().size(), 1u);
  EXPECT_EQ(sink.dropped(), 5u);
  EXPECT_EQ(sink.recorded(), 6u);
}

TEST(TraceSink, TraceIdsAreMonotone) {
  TraceSink sink;
  const uint64_t a = sink.next_trace_id();
  const uint64_t b = sink.next_trace_id();
  EXPECT_GT(a, 0u);
  EXPECT_EQ(b, a + 1);
}

TEST(TraceSink, ConcurrentWritersAndExportStayConsistent) {
  // TSan target: 4 writers wrap their rings while a reader exports
  // continuously. Every surviving event must read back intact.
  TraceSink sink(256, 8);
  constexpr int kWriters = 4;
  constexpr uint64_t kPerWriter = 20'000;
  std::atomic<bool> stop{false};
  std::thread reader([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      for (const TraceEvent& e : sink.snapshot_events()) {
        ASSERT_STREQ(e.name, "w");
        ASSERT_EQ(e.dur_ns, e.ts_ns + 1);  // writer invariant, torn-proof
      }
      std::string json = sink.chrome_trace_json();
      ASSERT_NE(json.find("traceEvents"), std::string::npos);
    }
  });
  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      for (uint64_t i = 0; i < kPerWriter; ++i) {
        TraceEvent e;
        e.name = "w";
        e.trace_id = static_cast<uint64_t>(w) + 1;
        e.ts_ns = i;
        e.dur_ns = i + 1;
        e.cells = i;
        sink.record(e);
      }
    });
  }
  for (auto& t : writers) t.join();
  stop.store(true, std::memory_order_relaxed);
  reader.join();
  EXPECT_EQ(sink.recorded(), kWriters * kPerWriter);
  // Final quiescent snapshot: the last 256 events of each writer survive.
  EXPECT_EQ(sink.snapshot_events().size(), kWriters * 256u);
}

TEST(Span, InactiveContextIsNoOp) {
  TraceContext inactive;  // no sink
  EXPECT_FALSE(inactive.active());
  Span span(inactive, "never");
  span.set_isa(simd::Isa::Avx2);
  span.set_width_bits(8);
  span.set_lanes(32);
  span.add_cells(1000);
  span.set_index(3);
  span.set_trunc(TruncCause::Deadline);
  span.end();  // nothing to record, nowhere to record it
}

TEST(Span, RecordsOnceWithAnnotations) {
  TraceSink sink;
  TraceContext ctx{&sink, 42};
  {
    Span span(ctx, "chunk.test");
    span.set_isa(simd::Isa::Avx2);
    span.set_width_bits(8);
    span.set_lanes(32);
    span.add_cells(500);
    span.add_cells(500);
    span.set_index(7);
    span.end();
    span.end();  // idempotent: destructor must not double-record either
  }
  auto events = sink.snapshot_events();
  ASSERT_EQ(events.size(), 1u);
  const TraceEvent& e = events[0];
  EXPECT_STREQ(e.name, "chunk.test");
  EXPECT_EQ(e.trace_id, 42u);
  EXPECT_EQ(e.isa, simd::Isa::Avx2);
  EXPECT_EQ(e.width_bits, 8u);
  EXPECT_EQ(e.lanes, 32u);
  EXPECT_EQ(e.cells, 1000u);
  EXPECT_EQ(e.index, 7u);
  EXPECT_EQ(e.trunc, TruncCause::None);
}

TEST(TraceSink, ChromeTraceJsonShape) {
  TraceSink sink;
  TraceContext ctx{&sink, 9};
  {
    Span span(ctx, "annotated");
    span.set_isa(simd::Isa::Scalar);
    span.set_width_bits(16);
    span.set_lanes(64);
    span.add_cells(123);
    span.set_index(4);
    span.set_trunc(TruncCause::Cancelled);
  }
  // Recorded after the annotated span with a later start, so it sorts last
  // and the args-omission checks below can scan from its position onward.
  const uint64_t t0 = sink.now_ns();
  sink.record_span("bare", 9, t0, t0 + 100);
  std::string json = sink.chrome_trace_json();
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"annotated\""), std::string::npos);
  EXPECT_NE(json.find("\"isa\":\"scalar\""), std::string::npos);
  EXPECT_NE(json.find("\"width_bits\":16"), std::string::npos);
  EXPECT_NE(json.find("\"lanes\":64"), std::string::npos);
  EXPECT_NE(json.find("\"cells\":123"), std::string::npos);
  EXPECT_NE(json.find("\"index\":4"), std::string::npos);
  EXPECT_NE(json.find("\"trunc\":\"cancelled\""), std::string::npos);
  EXPECT_NE(json.find("\"dropped_events\":0"), std::string::npos);
  // The bare span omits every unset annotation: no isa/lanes in its args.
  const size_t bare = json.find("\"name\":\"bare\"");
  ASSERT_NE(bare, std::string::npos);
  EXPECT_EQ(json.find("\"isa\"", bare), std::string::npos);
  EXPECT_EQ(json.find("\"lanes\"", bare), std::string::npos);
  // Balanced braces => parseable (both exporters are brace-safe strings).
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
}

TEST(TruncCauseName, CoversAllCauses) {
  EXPECT_STREQ(trunc_cause_name(TruncCause::None), "none");
  EXPECT_STREQ(trunc_cause_name(TruncCause::Cancelled), "cancelled");
  EXPECT_STREQ(trunc_cause_name(TruncCause::Deadline), "deadline");
}

// ---------------------------------------------------------------- exporters

perf::MetricsSnapshot sample_snapshot() {
  perf::MetricsRegistry reg;
  reg.on_submitted();
  reg.on_submitted();
  reg.on_submitted();
  reg.on_rejected_queue_full();
  reg.on_queue_wait(50e-6);
  reg.on_queue_wait(120e-6);
  reg.on_completed(perf::MetricsRegistry::Scenario::Pairwise, 0.25, 1'000'000);
  reg.on_completed(perf::MetricsRegistry::Scenario::Search, 0.5, 2'000'000'000);
  reg.on_kernel_completed(simd::Isa::Avx2, perf::KernelVariant::Diagonal,
                          1'000'000);
  reg.on_kernel_completed(simd::Isa::Avx2, perf::KernelVariant::Batch32,
                          2'000'000'000);
  perf::MetricsSnapshot s = reg.snapshot();
  s.pool_threads = 4;
  s.pool_jobs = 12;
  s.pool_busy_seconds = 0.6;
  return s;
}

TEST(Exporters, PrometheusLinesAreWellFormed) {
  std::string prom = to_prometheus(sample_snapshot());
  // Every non-comment line is `name{labels} value` or `name value`.
  const std::regex line_re(
      R"(^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_]+="[^"]*"(,[a-zA-Z_]+="[^"]*")*\})? -?[0-9].*$)");
  const std::regex comment_re(R"(^# (HELP|TYPE) [a-zA-Z_:][a-zA-Z0-9_:]* .+$)");
  std::istringstream in(prom);
  std::string line;
  size_t samples = 0, comments = 0;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    if (line[0] == '#') {
      EXPECT_TRUE(std::regex_match(line, comment_re)) << line;
      ++comments;
    } else {
      EXPECT_TRUE(std::regex_match(line, line_re)) << line;
      ++samples;
    }
  }
  EXPECT_GT(samples, 20u);
  EXPECT_GT(comments, 20u);
}

TEST(Exporters, PrometheusCarriesCountersAndWindowGauge) {
  std::string prom = to_prometheus(sample_snapshot());
  EXPECT_NE(prom.find("swve_requests_submitted_total 3"), std::string::npos);
  EXPECT_NE(
      prom.find("swve_requests_failed_total{reason=\"queue_full\"} 1"),
      std::string::npos);
  EXPECT_NE(prom.find("swve_kernel_target_requests_total{isa=\"avx2\","
                      "kernel=\"diagonal\"} 1"),
            std::string::npos);
  EXPECT_NE(prom.find("swve_kernel_target_cells_total{isa=\"avx2\","
                      "kernel=\"batch32\"} 2000000000"),
            std::string::npos);
  EXPECT_NE(prom.find("swve_gcups_window{window_s=\"60\"}"), std::string::npos);
  EXPECT_NE(prom.find("swve_queue_wait_seconds_count 2"), std::string::npos);
  EXPECT_NE(prom.find("swve_kernel_time_seconds_bucket{le=\"+Inf\"} 2"),
            std::string::npos);
  EXPECT_NE(prom.find("swve_pool_threads 4"), std::string::npos);
}

TEST(Exporters, JsonRoundTripsCounters) {
  perf::MetricsSnapshot s = sample_snapshot();
  std::string json = to_json(s);
  EXPECT_EQ(json_u64(json, "submitted"), s.submitted);
  EXPECT_EQ(json_u64(json, "completed"), s.completed);
  EXPECT_EQ(json_u64(json, "rejected_queue_full"), s.rejected_queue_full);
  EXPECT_EQ(json_u64(json, "pairwise"), s.pairwise);
  EXPECT_EQ(json_u64(json, "search"), s.search);
  EXPECT_EQ(json_u64(json, "cells"), s.cells);
  EXPECT_EQ(json_u64(json, "threads"), 4u);
  EXPECT_EQ(json_u64(json, "jobs"), 12u);
  EXPECT_NE(json.find("\"targets\":[{\"isa\":\"avx2\",\"kernel\":\"diagonal\""),
            std::string::npos);
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
}

TEST(Exporters, BuildInfoAndTraceAccounting) {
  perf::MetricsSnapshot s = sample_snapshot();
  s.trace_recorded = 10;
  s.trace_dropped_wrap = 3;
  s.trace_dropped_torn = 1;
  s.trace_dropped_overflow = 2;
  s.pmu_unavailable = 1;
  s.slow_requests = 4;

  BuildInfo info = build_info();
  EXPECT_NE(info.version[0], '\0');
  EXPECT_NE(info.isas[0], '\0');

  std::string prom = to_prometheus(s);
  EXPECT_NE(prom.find("swve_build_info{version=\""), std::string::npos);
  EXPECT_NE(prom.find("swve_trace_events_total 10"), std::string::npos);
  EXPECT_NE(prom.find("swve_trace_dropped_total{cause=\"wrap\"} 3"),
            std::string::npos);
  EXPECT_NE(prom.find("swve_trace_dropped_total{cause=\"torn\"} 1"),
            std::string::npos);
  EXPECT_NE(prom.find("swve_trace_dropped_total{cause=\"overflow\"} 2"),
            std::string::npos);
  EXPECT_NE(prom.find("swve_pmu_unavailable 1"), std::string::npos);
  EXPECT_NE(prom.find("swve_slow_requests_total 4"), std::string::npos);

  std::string json = to_json(s);
  EXPECT_NE(json.find("\"build\":{\"version\":\""), std::string::npos);
  EXPECT_EQ(json_u64(json, "recorded"), 10u);
  EXPECT_EQ(json_u64(json, "dropped_wrap"), 3u);
  EXPECT_EQ(json_u64(json, "dropped_torn"), 1u);
  EXPECT_EQ(json_u64(json, "dropped_overflow"), 2u);
  EXPECT_EQ(json_u64(json, "unavailable"), 1u);
  EXPECT_EQ(json_u64(json, "slow_requests"), 4u);
}

// Regression: a hostile build identity (quotes, backslashes, a newline —
// all of which real __VERSION__ strings have contained pieces of) must
// come out as one well-formed exposition line, not break the scrape.
TEST(Exporters, PrometheusEscapesHostileBuildInfoLabels) {
  BuildInfo hostile;
  hostile.version = "1.0\"evil";
  hostile.compiler = "g++ (a \"b\") \\ 13.2\nsecond-line";
  hostile.isas = "scalar+avx2";
  const std::string prom =
      to_prometheus(sample_snapshot(), hostile);

  // The raw quote/backslash/newline are escaped per exposition 0.0.4.
  EXPECT_NE(prom.find("version=\"1.0\\\"evil\""), std::string::npos);
  EXPECT_NE(prom.find("compiler=\"g++ (a \\\"b\\\") \\\\ 13.2\\nsecond-line\""),
            std::string::npos);

  // The whole build_info family is still exactly one sample line that
  // matches the exposition grammar (the escaped value contains no raw
  // newline and no unescaped quote).
  std::istringstream in(prom);
  std::string line;
  size_t build_lines = 0;
  const std::regex line_re(
      R"(^swve_build_info\{[a-zA-Z_]+="([^"\\]|\\.)*"(,[a-zA-Z_]+="([^"\\]|\\.)*")*\} 1$)");
  while (std::getline(in, line)) {
    if (line.rfind("swve_build_info{", 0) != 0) continue;
    ++build_lines;
    EXPECT_TRUE(std::regex_match(line, line_re)) << line;
  }
  EXPECT_EQ(build_lines, 1u);

  EXPECT_EQ(prom_escape_label("plain"), "plain");
  EXPECT_EQ(prom_escape_label("a\\b"), "a\\\\b");
  EXPECT_EQ(prom_escape_label("a\"b"), "a\\\"b");
  EXPECT_EQ(prom_escape_label("a\nb"), "a\\nb");
}

TEST(Exporters, SloStatusRidesAlongInBothFormats) {
  SloStatus st;
  st.state = AlertState::Firing;
  st.instant = AlertState::Warning;
  st.latency_fast_burn = 20.5;
  st.latency_slow_burn = 18.25;
  st.availability_fast_burn = 1.5;
  st.availability_slow_burn = 0.75;
  st.evaluations = 42;
  st.transitions = 3;

  const std::string prom =
      to_prometheus(sample_snapshot(), build_info(), &st);
  EXPECT_NE(prom.find("swve_slo_state 2"), std::string::npos);
  EXPECT_NE(prom.find("swve_slo_burn_rate{objective=\"latency\","
                      "window=\"fast\"} 20.5"),
            std::string::npos);
  EXPECT_NE(prom.find("swve_slo_burn_rate{objective=\"availability\","
                      "window=\"slow\"} 0.75"),
            std::string::npos);
  EXPECT_NE(prom.find("swve_slo_transitions_total 3"), std::string::npos);
  // Without a status, no swve_slo family appears at all.
  EXPECT_EQ(to_prometheus(sample_snapshot()).find("swve_slo_"),
            std::string::npos);

  const std::string json = to_json(sample_snapshot(), &st);
  EXPECT_NE(json.find("\"slo\":{\"state\":\"firing\",\"instant\":"
                      "\"warning\""),
            std::string::npos);
  EXPECT_EQ(json_u64(json, "evaluations"), 42u);
  EXPECT_EQ(to_json(sample_snapshot()).find("\"slo\""), std::string::npos);
}

TEST(Exporters, QueryLengthBinsExportWhenPopulated) {
  perf::MetricsSnapshot s = sample_snapshot();
  s.query_length_bins[8] = 7;   // [256, 512)
  s.query_length_bins[0] = 2;
  const std::string prom = to_prometheus(s);
  EXPECT_NE(prom.find("swve_query_length_requests_total{min_residues="
                      "\"256\"} 7"),
            std::string::npos);
  EXPECT_NE(prom.find("swve_query_length_requests_total{min_residues="
                      "\"0\"} 2"),
            std::string::npos);
  const std::string json = to_json(s);
  EXPECT_NE(json.find("\"query_length_bins\":[2,0,0,0,0,0,0,0,7,"),
            std::string::npos);
}

TEST(Exporters, PmuAttributionCellsInBothFormats) {
  perf::MetricsRegistry reg;
  perf::PmuSample span;
  span.samples = 1;
  span.wall_ns = 1'000'000;
  span.cycles = 3'000'000;
  span.instructions = 6'000'000;
  span.stall_backend = 750'000;
  span.llc_misses = 42;
  reg.on_pmu_sample(simd::Isa::Avx2, perf::KernelVariant::Diagonal, 16, span);
  reg.on_pmu_sample(simd::Isa::Avx2, perf::KernelVariant::Diagonal, 16, span);
  // Out-of-range targets must be dropped, not smeared into a cell.
  reg.on_pmu_sample(static_cast<simd::Isa>(99), perf::KernelVariant::Diagonal,
                    16, span);
  perf::MetricsSnapshot s = reg.snapshot();

  const perf::PmuSample& cell =
      s.pmu[static_cast<int>(simd::Isa::Avx2)][0]
           [perf::MetricsSnapshot::width_index(16)];
  EXPECT_EQ(cell.samples, 2u);
  EXPECT_DOUBLE_EQ(cell.ipc(), 2.0);
  EXPECT_DOUBLE_EQ(cell.backend_stall_fraction(), 0.25);
  EXPECT_EQ(s.pmu_total().samples, 2u);

  std::string prom = to_prometheus(s);
  EXPECT_NE(prom.find("swve_pmu_spans_total{isa=\"avx2\",kernel=\"diagonal\","
                      "width=\"16\"} 2"),
            std::string::npos);
  EXPECT_NE(prom.find("swve_pmu_stall_cycles_total{isa=\"avx2\","
                      "kernel=\"diagonal\",width=\"16\",side=\"backend\"}"),
            std::string::npos);
  EXPECT_NE(prom.find("swve_pmu_ipc{isa=\"avx2\",kernel=\"diagonal\","
                      "width=\"16\"} 2"),
            std::string::npos);

  std::string json = to_json(s);
  EXPECT_NE(json.find("\"pmu\":{\"unavailable\":0,\"cells\":[{\"isa\":\"avx2\""),
            std::string::npos);
  EXPECT_NE(json.find("\"width\":16"), std::string::npos);
  EXPECT_NE(json.find("\"ipc\":2"), std::string::npos);
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
}

TEST(Exporters, FormatSelection) {
  EXPECT_EQ(metrics_format_from_string("text"), MetricsFormat::Text);
  EXPECT_EQ(metrics_format_from_string("prom"), MetricsFormat::Prometheus);
  EXPECT_EQ(metrics_format_from_string("prometheus"),
            MetricsFormat::Prometheus);
  EXPECT_EQ(metrics_format_from_string("json"), MetricsFormat::Json);
  EXPECT_FALSE(metrics_format_from_string("xml").has_value());

  perf::MetricsSnapshot s = sample_snapshot();
  EXPECT_EQ(render_metrics(s, MetricsFormat::Text), s.to_string());
  EXPECT_EQ(render_metrics(s, MetricsFormat::Prometheus), to_prometheus(s));
  EXPECT_EQ(render_metrics(s, MetricsFormat::Json), to_json(s));
}

// ------------------------------------------------------------------ metrics

TEST(MetricsWindow, RecentWorkCountsTowardWindowGcups) {
  perf::MetricsRegistry reg;
  reg.on_completed(perf::MetricsRegistry::Scenario::Search, 0.5, 1'000'000'000);
  perf::MetricsSnapshot s = reg.snapshot();
  EXPECT_EQ(s.window_cells, 1'000'000'000u);
  EXPECT_NEAR(s.window_kernel_seconds, 0.5, 1e-6);
  EXPECT_NEAR(s.window_gcups(), 2.0, 0.01);
  EXPECT_NEAR(s.window_gcups(), s.aggregate_gcups(), 0.01);  // all recent
}

TEST(MetricsTargets, OutOfRangeTargetIsIgnored) {
  perf::MetricsRegistry reg;
  reg.on_kernel_completed(static_cast<simd::Isa>(99),
                          perf::KernelVariant::Diagonal, 10);
  reg.on_kernel_completed(simd::Isa::Sse41, static_cast<perf::KernelVariant>(7),
                          10);
  perf::MetricsSnapshot s = reg.snapshot();
  for (int i = 0; i < perf::MetricsSnapshot::kIsas; ++i)
    for (int k = 0; k < perf::MetricsSnapshot::kKernelVariants; ++k)
      EXPECT_EQ(s.target_requests[i][k], 0u) << i << "," << k;
}

TEST(MetricsRegistry, ConcurrentRecordingIsRaceFree) {
  // TSan target: counters, window buckets, and histograms hammered from
  // several threads while another snapshots.
  perf::MetricsRegistry reg;
  std::atomic<bool> stop{false};
  std::thread reader([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      perf::MetricsSnapshot s = reg.snapshot();
      ASSERT_LE(s.pairwise + s.search + s.batch, s.completed);
    }
  });
  std::vector<std::thread> writers;
  for (int w = 0; w < 4; ++w) {
    writers.emplace_back([&] {
      for (int i = 0; i < 5000; ++i) {
        reg.on_submitted();
        reg.on_queue_wait(5e-6);
        reg.on_completed(perf::MetricsRegistry::Scenario::Pairwise, 1e-5, 100);
        reg.on_kernel_completed(simd::Isa::Avx2,
                                perf::KernelVariant::Diagonal, 100);
      }
    });
  }
  for (auto& t : writers) t.join();
  stop.store(true, std::memory_order_relaxed);
  reader.join();
  perf::MetricsSnapshot s = reg.snapshot();
  EXPECT_EQ(s.completed, 20'000u);
  EXPECT_EQ(s.cells, 2'000'000u);
  EXPECT_EQ(s.target_requests[static_cast<int>(simd::Isa::Avx2)][0], 20'000u);
}

// ------------------------------------------------------------------ sampler

TEST(Sampler, CollectsBoundedChronologicalSeries) {
  std::atomic<uint64_t> calls{0};
  SamplerOptions so;
  so.period_s = 0.005;
  so.freq_probe_ms = 0.5;
  so.capacity = 3;
  Sampler sampler(so, [&] {
    perf::MetricsSnapshot s;
    s.completed = calls.fetch_add(1) + 1;
    return s;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(80));
  sampler.stop();
  std::vector<Sample> snap = sampler.samples();
  ASSERT_GE(snap.size(), 2u);
  ASSERT_LE(snap.size(), 3u);  // capacity trims the oldest
  for (size_t i = 1; i < snap.size(); ++i) {
    EXPECT_GT(snap[i].t_s, snap[i - 1].t_s);
    EXPECT_GT(snap[i].completed, snap[i - 1].completed);
  }
  EXPECT_GT(snap.back().ghz, 0.1);
  sampler.stop();  // idempotent
  std::string json = sampler.json();
  EXPECT_NE(json.find("\"period_s\""), std::string::npos);
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
}

}  // namespace
}  // namespace swve::obs
