#include <gtest/gtest.h>

#include "align/batch_server.hpp"
#include "core/scalar_ref.hpp"
#include "core/traceback.hpp"
#include "seq/synthetic.hpp"

namespace swve::align {
namespace {

seq::SequenceDatabase make_db(uint64_t residues, uint64_t seed = 25) {
  seq::SyntheticConfig cfg;
  cfg.seed = seed;
  cfg.target_residues = residues;
  cfg.min_length = 20;
  cfg.max_length = 300;
  return seq::SequenceDatabase::synthetic(cfg);
}

TEST(BatchServer, ScoresAgreeWithDatabaseSearch) {
  auto db = make_db(50'000);
  AlignConfig cfg;
  BatchServer server(db, cfg);
  DatabaseSearch search(db, cfg);
  auto queries = seq::make_query_ladder(30, 4, 40, 300);
  auto results = server.run(queries, 8);
  ASSERT_EQ(results.size(), queries.size());
  for (size_t qi = 0; qi < queries.size(); ++qi) {
    SearchResult direct = search.search(queries[qi], 8);
    const auto& batch = results[qi].result;
    ASSERT_EQ(batch.hits.size(), direct.hits.size()) << "query " << qi;
    for (size_t k = 0; k < direct.hits.size(); ++k) {
      EXPECT_EQ(batch.hits[k].seq_index, direct.hits[k].seq_index);
      EXPECT_EQ(batch.hits[k].score, direct.hits[k].score);
    }
  }
}

TEST(BatchServer, DeterministicAcrossThreadCounts) {
  auto db = make_db(40'000);
  BatchServer server(db, AlignConfig{});
  auto queries = seq::make_query_ladder(31, 6, 50, 400);
  auto serial = server.run(queries, 5);
  for (unsigned threads : {2u, 4u}) {
    parallel::ThreadPool pool(threads);
    auto par = server.run(queries, 5, &pool);
    ASSERT_EQ(par.size(), serial.size());
    for (size_t qi = 0; qi < serial.size(); ++qi) {
      ASSERT_EQ(par[qi].result.hits.size(), serial[qi].result.hits.size());
      for (size_t k = 0; k < serial[qi].result.hits.size(); ++k) {
        EXPECT_EQ(par[qi].result.hits[k].seq_index,
                  serial[qi].result.hits[k].seq_index);
        EXPECT_EQ(par[qi].result.hits[k].score, serial[qi].result.hits[k].score);
      }
    }
  }
}

TEST(BatchServer, RealignProducesValidTraceback) {
  auto q = seq::generate_sequence(32, 200);
  std::vector<seq::Sequence> seqs;
  for (int i = 0; i < 40; ++i)
    seqs.push_back(seq::generate_sequence(33 + static_cast<uint64_t>(i), 150));
  seqs.push_back(seq::mutate(q, 34, 0.15));
  seq::SequenceDatabase db(std::move(seqs));
  AlignConfig cfg;
  BatchServer server(db, cfg);
  auto results = server.run({q}, 3);
  ASSERT_FALSE(results[0].result.hits.empty());
  const Hit& top = results[0].result.hits[0];
  EXPECT_EQ(top.seq_index, 40u);
  core::Alignment a = server.realign(q, top);
  EXPECT_EQ(a.score, top.score);
  ASSERT_FALSE(a.cigar.empty());
  AlignConfig replay_cfg = cfg;
  replay_cfg.traceback = true;
  EXPECT_EQ(core::replay_score(q, db[top.seq_index], replay_cfg, a), a.score);
}

TEST(BatchServer, LanesMatchCpuCapability) {
  auto db = make_db(5'000);
  BatchServer server(db, AlignConfig{});
  EXPECT_TRUE(server.lanes() == 32 || server.lanes() == 64);
  EXPECT_EQ(server.packed_db().lanes(), server.lanes());
}

TEST(BatchServer, EmptyQueryListAndStats) {
  auto db = make_db(5'000);
  BatchServer server(db, AlignConfig{});
  EXPECT_TRUE(server.run({}, 5).empty());
  auto q = seq::generate_sequence(35, 80);
  auto results = server.run({q}, 5);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_GT(results[0].batch_stats.cells8, 0u);
}

}  // namespace
}  // namespace swve::align
