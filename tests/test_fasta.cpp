#include <gtest/gtest.h>

#include <sstream>

#include "seq/fasta.hpp"

namespace swve::seq {
namespace {

TEST(Fasta, ParsesSimpleRecords) {
  std::istringstream in(">q1 description here\nARND\n>q2\nCQEG\nHILK\n");
  auto seqs = read_fasta(in, Alphabet::protein());
  ASSERT_EQ(seqs.size(), 2u);
  EXPECT_EQ(seqs[0].id(), "q1");  // id stops at first whitespace
  EXPECT_EQ(seqs[0].to_string(), "ARND");
  EXPECT_EQ(seqs[1].id(), "q2");
  EXPECT_EQ(seqs[1].to_string(), "CQEGHILK");  // wrapped lines concatenated
}

TEST(Fasta, HandlesCrLfAndBlankLines) {
  std::istringstream in(">a\r\nAR\r\n\r\nND\r\n");
  auto seqs = read_fasta(in, Alphabet::protein());
  ASSERT_EQ(seqs.size(), 1u);
  EXPECT_EQ(seqs[0].to_string(), "ARND");
}

TEST(Fasta, SkipsOldStyleComments) {
  std::istringstream in(">a\n;comment line\nAR\n");
  auto seqs = read_fasta(in, Alphabet::protein());
  ASSERT_EQ(seqs.size(), 1u);
  EXPECT_EQ(seqs[0].to_string(), "AR");
}

TEST(Fasta, ResiduesBeforeHeaderThrow) {
  std::istringstream in("ARND\n>late\nAR\n");
  EXPECT_THROW(read_fasta(in, Alphabet::protein()), std::runtime_error);
}

TEST(Fasta, EmptyInputYieldsNoRecords) {
  std::istringstream in("");
  EXPECT_TRUE(read_fasta(in, Alphabet::protein()).empty());
}

TEST(Fasta, EmptyRecordAllowed) {
  std::istringstream in(">empty\n>after\nAR\n");
  auto seqs = read_fasta(in, Alphabet::protein());
  ASSERT_EQ(seqs.size(), 2u);
  EXPECT_EQ(seqs[0].length(), 0u);
  EXPECT_EQ(seqs[1].to_string(), "AR");
}

TEST(Fasta, WriteReadRoundTrip) {
  std::vector<Sequence> seqs;
  seqs.emplace_back("alpha", "ARNDCQEGHILKMFPSTWYV", Alphabet::protein());
  seqs.emplace_back("beta", std::string(150, 'W'), Alphabet::protein());
  std::ostringstream out;
  write_fasta(out, seqs, 60);
  std::istringstream in(out.str());
  auto back = read_fasta(in, Alphabet::protein());
  ASSERT_EQ(back.size(), 2u);
  EXPECT_EQ(back[0], seqs[0]);
  EXPECT_EQ(back[1], seqs[1]);
  EXPECT_EQ(back[1].id(), "beta");
}

TEST(Fasta, WriterWrapsLines) {
  std::vector<Sequence> seqs;
  seqs.emplace_back("x", std::string(130, 'A'), Alphabet::protein());
  std::ostringstream out;
  write_fasta(out, seqs, 60);
  std::string text = out.str();
  // 130 residues at width 60 -> lines of 60, 60, 10.
  EXPECT_NE(text.find("\n" + std::string(60, 'A') + "\n"), std::string::npos);
  EXPECT_NE(text.find("\n" + std::string(10, 'A') + "\n"), std::string::npos);
}

TEST(Fasta, MissingFileThrows) {
  EXPECT_THROW(read_fasta_file("/nonexistent/swve.fasta", Alphabet::protein()),
               std::runtime_error);
}

TEST(Fasta, DnaAlphabetParsing) {
  std::istringstream in(">d\nACGTN\n");
  auto seqs = read_fasta(in, Alphabet::dna());
  ASSERT_EQ(seqs.size(), 1u);
  EXPECT_EQ(seqs[0].to_string(), "ACGTN");
}

}  // namespace
}  // namespace swve::seq
