#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "align/db_search.hpp"
#include "align/query_cache.hpp"
#include "core/dispatch.hpp"
#include "core/scalar_ref.hpp"
#include "seq/synthetic.hpp"

namespace swve::align {
namespace {

seq::SequenceDatabase make_db(uint64_t residues, uint64_t seed = 33) {
  seq::SyntheticConfig cfg;
  cfg.seed = seed;
  cfg.target_residues = residues;
  cfg.min_length = 20;
  cfg.max_length = 300;
  return seq::SequenceDatabase::synthetic(cfg);
}

TEST(PreparedQuery, FeedsMatchWorkspaceBuiltState) {
  auto q = seq::generate_sequence(600, 150);
  core::PreparedQuery prep(q);
  ASSERT_EQ(prep.query_length(), 150);
  for (int i = 0; i < 150; ++i) {
    EXPECT_EQ(prep.qmul32()[i], static_cast<int32_t>(q.codes()[i]) * seq::kMatrixStride);
    EXPECT_EQ(prep.qenc<uint8_t>()[i], q.codes()[i]);
    EXPECT_EQ(prep.qenc<uint16_t>()[i], q.codes()[i]);
    EXPECT_EQ(prep.qenc<int32_t>()[i], q.codes()[i]);
  }
  // Padding tail must be zero (kernels read a few lanes past the end).
  for (int i = 150; i < 150 + 32; ++i) {
    EXPECT_EQ(prep.qmul32()[i], 0);
    EXPECT_EQ(prep.qenc<uint8_t>()[i], 0);
  }
  EXPECT_GT(prep.memory_bytes(), 0u);
}

TEST(PreparedQuery, DiagAlignBitIdenticalWithAndWithoutPrep) {
  auto q = seq::generate_sequence(601, 200);
  core::PreparedQuery prep(q);
  core::Workspace ws1, ws2;
  for (uint64_t seed : {610u, 611u, 612u}) {
    auto r = seq::generate_sequence(seed, 100 + seed % 300);
    for (auto delivery : {core::ScoreDelivery::Gather, core::ScoreDelivery::Fill,
                          core::ScoreDelivery::Shuffle}) {
      core::AlignConfig cfg;
      cfg.delivery = delivery;
      core::Alignment plain = core::diag_align(q, r, cfg, ws1);
      core::Alignment cached = core::diag_align(q, r, cfg, ws2, &prep);
      EXPECT_EQ(cached.score, plain.score);
      EXPECT_EQ(cached.end_query, plain.end_query);
      EXPECT_EQ(cached.end_ref, plain.end_ref);
      EXPECT_EQ(plain.score, core::ref_align(q, r, cfg).score);
    }
    // Fixed scheme exercises the qenc (compare) feed instead of qmul.
    core::AlignConfig fixed;
    fixed.scheme = core::ScoreScheme::Fixed;
    fixed.match = 3;
    fixed.mismatch = -2;
    core::Alignment plain = core::diag_align(q, r, fixed, ws1);
    core::Alignment cached = core::diag_align(q, r, fixed, ws2, &prep);
    EXPECT_EQ(cached.score, plain.score);
    EXPECT_EQ(plain.score, core::ref_align(q, r, fixed).score);
  }
}

TEST(PreparedQuery, LengthMismatchIsIgnoredByKernel) {
  // A prep built for a different query length must be ignored, not consumed.
  auto q = seq::generate_sequence(602, 120);
  auto other = seq::generate_sequence(603, 80);
  core::PreparedQuery stale(other);
  core::Workspace ws;
  core::AlignConfig cfg;
  auto r = seq::generate_sequence(604, 150);
  core::Alignment a = core::diag_align(q, r, cfg, ws, &stale);
  EXPECT_EQ(a.score, core::ref_align(q, r, cfg).score);
}

TEST(QueryStateCache, HitsMissesAndSharedEntries) {
  QueryStateCache cache(8);
  auto q1 = seq::generate_sequence(620, 100);
  auto q2 = seq::generate_sequence(621, 100);
  core::AlignConfig cfg;
  auto p1 = cache.prepared(q1, cfg);
  auto p1b = cache.prepared(q1, cfg);
  auto p2 = cache.prepared(q2, cfg);
  EXPECT_EQ(p1.get(), p1b.get());  // same entry served twice
  EXPECT_NE(p1.get(), p2.get());
  QueryCacheStats s = cache.stats();
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.misses, 2u);
  EXPECT_EQ(s.entries, 2u);
  EXPECT_GT(s.prepared_bytes, 0u);
}

TEST(QueryStateCache, ConfigChangesKeyButEquivalentConfigsShare) {
  QueryStateCache cache(8);
  auto q = seq::generate_sequence(622, 90);
  core::AlignConfig a;           // Matrix scheme
  core::AlignConfig b = a;
  b.gap_open = 13;               // different gaps -> different entry
  core::AlignConfig c = a;
  c.match = 99;                  // Fixed-only field; irrelevant under Matrix
  cache.prepared(q, a);
  cache.prepared(q, b);
  cache.prepared(q, c);
  QueryCacheStats s = cache.stats();
  EXPECT_EQ(s.misses, 2u) << "config c must share config a's entry";
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.entries, 2u);
}

TEST(QueryStateCache, LruEvictionAtCapacity) {
  QueryStateCache cache(2);
  core::AlignConfig cfg;
  auto q1 = seq::generate_sequence(630, 50);
  auto q2 = seq::generate_sequence(631, 50);
  auto q3 = seq::generate_sequence(632, 50);
  auto p1 = cache.prepared(q1, cfg);  // held across eviction
  cache.prepared(q2, cfg);
  cache.prepared(q3, cfg);            // evicts q1 (least recent)
  QueryCacheStats s = cache.stats();
  EXPECT_EQ(s.evictions, 1u);
  EXPECT_EQ(s.entries, 2u);
  // The evicted entry's shared_ptr stays valid for in-flight users.
  EXPECT_EQ(p1->query_length(), 50);
  cache.prepared(q1, cfg);  // re-miss after eviction
  EXPECT_EQ(cache.stats().misses, 4u);
  cache.prepared(q3, cfg);  // q3 must still be resident
  EXPECT_EQ(cache.stats().hits, 1u);
}

TEST(QueryStateCache, WorkspaceLeasesRecycleThroughPool) {
  QueryStateCache cache(4, 2);
  {
    auto l1 = cache.lease_workspace();
    auto l2 = cache.lease_workspace();
    l1.ws().qmul32.ensure(64);  // touch to prove it's a live workspace
  }
  QueryCacheStats s = cache.stats();
  EXPECT_EQ(s.ws_creates, 2u);
  EXPECT_EQ(s.ws_reuses, 0u);
  EXPECT_EQ(s.pooled_workspaces, 2u);
  {
    auto l3 = cache.lease_workspace();
    EXPECT_EQ(cache.stats().ws_reuses, 1u);
  }
  // Static helper: null cache still yields a usable (detached) workspace.
  auto detached = QueryStateCache::lease(nullptr);
  detached.ws().qmul32.ensure(16);
}

TEST(QueryStateCache, ClearDropsEntriesButKeepsCounters) {
  QueryStateCache cache(4);
  core::AlignConfig cfg;
  cache.prepared(seq::generate_sequence(640, 40), cfg);
  { auto l = cache.lease_workspace(); }
  cache.clear();
  QueryCacheStats s = cache.stats();
  EXPECT_EQ(s.entries, 0u);
  EXPECT_EQ(s.pooled_workspaces, 0u);
  EXPECT_EQ(s.misses, 1u);
}

TEST(QueryStateCache, SearchResultsBitIdenticalWithAndWithoutCache) {
  auto db = make_db(50'000);
  core::AlignConfig cfg;
  auto q = seq::generate_sequence(650, 140);
  QueryStateCache cache(8);
  for (SearchMode mode : {SearchMode::Diagonal, SearchMode::Batch}) {
    DatabaseSearch search(db, cfg, mode);
    ExecContext plain;
    ExecContext cached;
    cached.query_cache = &cache;
    SearchResult a = search.search(q, 12, plain);
    // Twice through the cache: the second run hits the LRU.
    SearchResult b = search.search(q, 12, cached);
    SearchResult c = search.search(q, 12, cached);
    ASSERT_EQ(a.hits.size(), b.hits.size());
    for (size_t k = 0; k < a.hits.size(); ++k) {
      EXPECT_EQ(a.hits[k].seq_index, b.hits[k].seq_index) << k;
      EXPECT_EQ(a.hits[k].score, b.hits[k].score) << k;
      EXPECT_EQ(a.hits[k].end_query, b.hits[k].end_query) << k;
      EXPECT_EQ(b.hits[k].seq_index, c.hits[k].seq_index) << k;
      EXPECT_EQ(b.hits[k].score, c.hits[k].score) << k;
    }
  }
  QueryCacheStats s = cache.stats();
  EXPECT_GT(s.hits, 0u);
  EXPECT_GT(s.ws_reuses, 0u);
}

TEST(QueryStateCache, ConcurrentLookupsAreSafeAndConverge) {
  QueryStateCache cache(16);
  core::AlignConfig cfg;
  std::vector<seq::Sequence> queries;
  for (uint64_t i = 0; i < 4; ++i)
    queries.push_back(seq::generate_sequence(660 + i, 64));
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 50; ++i) {
        auto p = cache.prepared(queries[static_cast<size_t>((t + i) % 4)], cfg);
        ASSERT_EQ(p->query_length(), 64);
        auto lease = cache.lease_workspace();
      }
    });
  }
  for (auto& th : threads) th.join();
  QueryCacheStats s = cache.stats();
  EXPECT_EQ(s.hits + s.misses, 200u);
  EXPECT_LE(s.entries, 4u);
  // Racing first lookups may build duplicates, but the LRU converges to one
  // entry per distinct key and never loses a request.
  EXPECT_GE(s.hits, 200u - 16u);
}

}  // namespace
}  // namespace swve::align
