#include <gtest/gtest.h>

#include "matrix/score_matrix.hpp"

namespace swve::matrix {
namespace {

using seq::Alphabet;
using seq::kMatrixStride;

class BuiltinMatrixTest : public ::testing::TestWithParam<std::string> {};

TEST_P(BuiltinMatrixTest, Symmetric) {
  const ScoreMatrix* m = ScoreMatrix::find(GetParam());
  ASSERT_NE(m, nullptr);
  for (int a = 0; a < m->dim(); ++a)
    for (int b = 0; b < m->dim(); ++b)
      EXPECT_EQ(m->score(static_cast<uint8_t>(a), static_cast<uint8_t>(b)),
                m->score(static_cast<uint8_t>(b), static_cast<uint8_t>(a)))
          << GetParam() << " asymmetric at (" << a << "," << b << ")";
}

TEST_P(BuiltinMatrixTest, DiagonalDominatesRowAndIsPositive) {
  const ScoreMatrix* m = ScoreMatrix::find(GetParam());
  ASSERT_NE(m, nullptr);
  for (int a = 0; a < 20; ++a) {  // real amino acids
    int diag = m->score(static_cast<uint8_t>(a), static_cast<uint8_t>(a));
    EXPECT_GT(diag, 0);
    for (int b = 0; b < 20; ++b)
      if (a != b)
        EXPECT_GE(diag, m->score(static_cast<uint8_t>(a), static_cast<uint8_t>(b)));
  }
}

TEST_P(BuiltinMatrixTest, PaddingScoresMinimum) {
  const ScoreMatrix* m = ScoreMatrix::find(GetParam());
  ASSERT_NE(m, nullptr);
  for (int pad = m->dim(); pad < kMatrixStride; ++pad) {
    EXPECT_EQ(m->score(static_cast<uint8_t>(pad), 0), m->min_score());
    EXPECT_EQ(m->score(0, static_cast<uint8_t>(pad)), m->min_score());
  }
}

TEST_P(BuiltinMatrixTest, BiasedByteRowsConsistent) {
  const ScoreMatrix* m = ScoreMatrix::find(GetParam());
  ASSERT_NE(m, nullptr);
  const uint8_t* rows = m->rows_biased_u8();
  for (int a = 0; a < kMatrixStride; ++a)
    for (int b = 0; b < kMatrixStride; ++b)
      EXPECT_EQ(rows[a * kMatrixStride + b],
                m->score(static_cast<uint8_t>(a), static_cast<uint8_t>(b)) +
                    m->bias());
}

TEST_P(BuiltinMatrixTest, MinMaxConsistent) {
  const ScoreMatrix* m = ScoreMatrix::find(GetParam());
  ASSERT_NE(m, nullptr);
  int mn = 1000, mx = -1000;
  for (int a = 0; a < m->dim(); ++a)
    for (int b = 0; b < m->dim(); ++b) {
      mn = std::min(mn, m->score(static_cast<uint8_t>(a), static_cast<uint8_t>(b)));
      mx = std::max(mx, m->score(static_cast<uint8_t>(a), static_cast<uint8_t>(b)));
    }
  EXPECT_EQ(mn, m->min_score());
  EXPECT_EQ(mx, m->max_score());
  EXPECT_EQ(m->bias(), -mn);
}

INSTANTIATE_TEST_SUITE_P(AllBuiltins, BuiltinMatrixTest,
                         ::testing::ValuesIn(ScoreMatrix::builtin_names()),
                         [](const auto& info) { return info.param; });

TEST(ScoreMatrix, KnownBlosum62Values) {
  const ScoreMatrix& m = ScoreMatrix::blosum62();
  const Alphabet& a = Alphabet::protein();
  auto s = [&](char x, char y) { return m.score(a.encode(x), a.encode(y)); };
  EXPECT_EQ(s('A', 'A'), 4);
  EXPECT_EQ(s('W', 'W'), 11);
  EXPECT_EQ(s('C', 'C'), 9);
  EXPECT_EQ(s('A', 'R'), -1);
  EXPECT_EQ(s('W', 'C'), -2);
  EXPECT_EQ(s('E', 'Q'), 2);
  EXPECT_EQ(s('I', 'L'), 2);
  EXPECT_EQ(s('N', 'B'), 3);
  EXPECT_EQ(s('X', 'X'), -1);
  EXPECT_EQ(s('*', '*'), 1);
  EXPECT_EQ(s('A', '*'), -4);
  EXPECT_EQ(m.min_score(), -4);
  EXPECT_EQ(m.max_score(), 11);
  EXPECT_EQ(m.bias(), 4);
}

TEST(ScoreMatrix, KnownBlosum50Values) {
  const ScoreMatrix& m = ScoreMatrix::blosum50();
  const Alphabet& a = Alphabet::protein();
  auto s = [&](char x, char y) { return m.score(a.encode(x), a.encode(y)); };
  EXPECT_EQ(s('A', 'A'), 5);
  EXPECT_EQ(s('W', 'W'), 15);
  EXPECT_EQ(s('C', 'C'), 13);
  EXPECT_EQ(s('R', 'K'), 3);
}

TEST(ScoreMatrix, FindIsCaseInsensitive) {
  EXPECT_EQ(ScoreMatrix::find("BLOSUM62"), &ScoreMatrix::blosum62());
  EXPECT_EQ(ScoreMatrix::find("Pam250"), &ScoreMatrix::pam250());
  EXPECT_EQ(ScoreMatrix::find("nope"), nullptr);
}

TEST(ScoreMatrix, BuiltinNamesAllResolve) {
  for (const std::string& n : ScoreMatrix::builtin_names())
    EXPECT_NE(ScoreMatrix::find(n), nullptr) << n;
}

TEST(ScoreMatrix, MatchMismatch) {
  ScoreMatrix m = ScoreMatrix::match_mismatch(2, -3, Alphabet::dna());
  EXPECT_EQ(m.score(0, 0), 2);
  EXPECT_EQ(m.score(0, 1), -3);
  EXPECT_EQ(m.max_score(), 2);
  EXPECT_EQ(m.min_score(), -3);
  EXPECT_EQ(m.bias(), 3);
  EXPECT_THROW(ScoreMatrix::match_mismatch(-3, 2, Alphabet::dna()),
               std::invalid_argument);
}

TEST(ScoreMatrix, ConstructorValidation) {
  std::vector<int8_t> t16(16 * 16, 1);
  EXPECT_NO_THROW(ScoreMatrix("t", Alphabet::dna(), t16, 16));
  // dim must cover the alphabet:
  std::vector<int8_t> t(4, 1);
  EXPECT_THROW(ScoreMatrix("t", Alphabet::protein(), t, 2), std::invalid_argument);
  EXPECT_THROW(ScoreMatrix("t", Alphabet::protein(), t, 40), std::invalid_argument);
  std::vector<int8_t> wrong(5, 1);
  EXPECT_THROW(ScoreMatrix("t", Alphabet::protein(), wrong, 24),
               std::invalid_argument);
}

TEST(ScoreMatrix, Gather32LayoutMatchesScore) {
  const ScoreMatrix& m = ScoreMatrix::blosum62();
  const int32_t* d = m.data32();
  for (int a = 0; a < kMatrixStride; ++a)
    for (int b = 0; b < kMatrixStride; ++b)
      EXPECT_EQ(d[a * kMatrixStride + b],
                m.score(static_cast<uint8_t>(a), static_cast<uint8_t>(b)));
}

}  // namespace
}  // namespace swve::matrix
