#include <gtest/gtest.h>

#include "seq/sequence.hpp"

namespace swve::seq {
namespace {

TEST(Sequence, EncodeFromString) {
  Sequence s("q1", "ARND", Alphabet::protein());
  EXPECT_EQ(s.id(), "q1");
  ASSERT_EQ(s.length(), 4u);
  EXPECT_EQ(s.codes()[0], 0);
  EXPECT_EQ(s.codes()[1], 1);
  EXPECT_EQ(s.codes()[2], 2);
  EXPECT_EQ(s.codes()[3], 3);
  EXPECT_EQ(s.to_string(), "ARND");
}

TEST(Sequence, LowercaseAndUnknownResidues) {
  Sequence s("q", "arJd", Alphabet::protein());
  EXPECT_EQ(s.to_string(), "ARXD");  // J is not an amino-acid letter
}

TEST(Sequence, EmptySequence) {
  Sequence s("e", "", Alphabet::protein());
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.length(), 0u);
  EXPECT_EQ(s.to_string(), "");
}

TEST(Sequence, AdoptCodes) {
  std::vector<uint8_t> codes = {0, 5, 10};
  Sequence s("c", codes, Alphabet::protein());
  EXPECT_EQ(s.to_string(), "AQL");
}

TEST(Sequence, AdoptCodesRejectsOutOfRange) {
  std::vector<uint8_t> codes = {0, 200};
  EXPECT_THROW(Sequence("bad", codes, Alphabet::protein()), std::invalid_argument);
}

TEST(Sequence, Subsequence) {
  Sequence s("s", "ARNDCQEG", Alphabet::protein());
  EXPECT_EQ(s.subsequence(2, 3).to_string(), "NDC");
  EXPECT_EQ(s.subsequence(6, 100).to_string(), "EG");  // clamped
  EXPECT_EQ(s.subsequence(100, 5).to_string(), "");
}

TEST(Sequence, EqualityIgnoresId) {
  Sequence a("a", "ARND", Alphabet::protein());
  Sequence b("b", "ARND", Alphabet::protein());
  Sequence c("c", "ARNE", Alphabet::protein());
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a == c);
}

TEST(SeqView, FromSequenceAndSpan) {
  Sequence s("s", "ARND", Alphabet::protein());
  SeqView v = s;
  EXPECT_EQ(v.length, 4u);
  EXPECT_EQ(v[0], 0);
  SeqView empty;
  EXPECT_TRUE(empty.empty());
}

}  // namespace
}  // namespace swve::seq
