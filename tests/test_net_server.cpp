// End-to-end tests of net::Server + net::Client over a real loopback
// socket: wire results bit-identical to in-process AlignService calls,
// result-cache hits (kFlagFromCache), singleflight coalescing under a
// paused service (kFlagCoalesced), protocol-error statuses, partial-frame
// reassembly, oversized-frame rejection, deadline mapping, the HTTP
// /metrics endpoint, and graceful drain.
#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "net/client.hpp"
#include "net/json.hpp"
#include "net/protocol.hpp"
#include "net/server.hpp"
#include "seq/synthetic.hpp"
#include "service/align_service.hpp"

namespace swve::net {
namespace {

using service::AlignRequest;
using service::SearchRequest;
using service::ServiceStatus;
using std::chrono::milliseconds;

seq::SequenceDatabase make_db(uint64_t residues = 60'000, uint64_t seed = 15) {
  seq::SyntheticConfig cfg;
  cfg.seed = seed;
  cfg.target_residues = residues;
  cfg.min_length = 20;
  cfg.max_length = 400;
  return seq::SequenceDatabase::synthetic(cfg);
}

/// A service + server on an ephemeral loopback port, torn down in order.
struct Loopback {
  explicit Loopback(service::ServiceOptions opt = {}, uint64_t residues = 60'000)
      : db(make_db(residues)) {
    opt.serve.port = 0;  // ephemeral
    svc = std::make_unique<service::AlignService>(db, opt);
    auto started = Server::start(*svc);
    if (!started.ok()) {
      ADD_FAILURE() << started.error().message;
      return;
    }
    server = std::move(started.value());
  }

  std::unique_ptr<Client> client(double timeout_s = 20.0) {
    auto c = Client::connect("127.0.0.1", server->port(), timeout_s);
    EXPECT_TRUE(c.ok());
    return std::move(c.value());
  }

  seq::SequenceDatabase db;
  std::unique_ptr<service::AlignService> svc;
  std::unique_ptr<Server> server;
};

SearchRequest search_request(uint64_t seed = 31, uint32_t len = 150) {
  SearchRequest rq;
  rq.query = seq::generate_sequence(seed, len);
  rq.options.top_k = 5;
  return rq;
}

TEST(NetServer, SearchOverWireMatchesInProcess) {
  Loopback lb;
  const SearchRequest rq = search_request();

  const auto wire = lb.client()->search(rq);
  ASSERT_TRUE(wire.ok()) << wire.error;

  auto fut = lb.svc->submit_search(rq);
  const auto local = fut.get();

  // The tentpole sentinel: hits decoded off the wire are bit-identical to
  // the in-process response.
  ASSERT_EQ(wire.response->result.hits.size(), local.result.hits.size());
  for (size_t i = 0; i < local.result.hits.size(); ++i) {
    EXPECT_EQ(wire.response->result.hits[i].seq_index,
              local.result.hits[i].seq_index);
    EXPECT_EQ(wire.response->result.hits[i].score, local.result.hits[i].score);
    EXPECT_EQ(wire.response->result.hits[i].end_query,
              local.result.hits[i].end_query);
    EXPECT_EQ(wire.response->result.hits[i].end_ref,
              local.result.hits[i].end_ref);
  }
}

TEST(NetServer, AlignWithTracebackMatchesInProcess) {
  Loopback lb;
  AlignRequest rq;
  rq.query = seq::generate_sequence(7, 90);
  rq.reference = seq::generate_sequence(8, 130);
  rq.options.traceback = true;

  const auto wire = lb.client()->align(rq);
  ASSERT_TRUE(wire.ok()) << wire.error;
  auto fut = lb.svc->submit(rq);
  const auto local = fut.get();

  EXPECT_EQ(wire.response->alignment.score, local.alignment.score);
  EXPECT_EQ(wire.response->alignment.end_query, local.alignment.end_query);
  EXPECT_EQ(wire.response->alignment.end_ref, local.alignment.end_ref);
  EXPECT_EQ(wire.response->alignment.begin_query, local.alignment.begin_query);
  EXPECT_EQ(wire.response->alignment.begin_ref, local.alignment.begin_ref);
  EXPECT_EQ(wire.response->alignment.cigar.to_string(),
            local.alignment.cigar.to_string());
}

TEST(NetServer, RepeatedRequestServedFromCache) {
  Loopback lb;
  auto client = lb.client();
  const SearchRequest rq = search_request();

  const auto first = client->search(rq);
  ASSERT_TRUE(first.ok()) << first.error;
  EXPECT_FALSE(first.from_cache());

  const auto second = client->search(rq);
  ASSERT_TRUE(second.ok()) << second.error;
  EXPECT_TRUE(second.from_cache());

  // Identical decoded results either way.
  ASSERT_EQ(first.response->result.hits.size(),
            second.response->result.hits.size());
  for (size_t i = 0; i < first.response->result.hits.size(); ++i)
    EXPECT_EQ(first.response->result.hits[i].score,
              second.response->result.hits[i].score);

  // And kFlagNoCache forces a fresh execution.
  const auto third = client->search(rq, kFlagNoCache);
  ASSERT_TRUE(third.ok());
  EXPECT_FALSE(third.from_cache());

  const auto snap = lb.server->metrics();
  EXPECT_GE(snap.result_cache_hits, 1u);
  EXPECT_GE(snap.result_cache_misses, 1u);
  EXPECT_GE(snap.result_cache_entries, 1u);
  EXPECT_GT(snap.result_cache_hit_rate(), 0.0);
}

TEST(NetServer, IdenticalInflightRequestsCoalesce) {
  service::ServiceOptions opt;
  opt.queue.start_paused = true;  // hold execution so both requests queue
  Loopback lb(opt);
  const SearchRequest rq = search_request();

  auto c1 = lb.client();
  auto c2 = lb.client();
  RpcResult<service::SearchResponse> r1, r2;
  std::thread t1([&] { r1 = c1->search(rq); });
  std::thread t2([&] { r2 = c2->search(rq); });

  // Wait until the coalesced join is visible in the metrics, then release
  // the executors: exactly one execution serves both clients.
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (lb.svc->metrics().coalesced < 1 &&
         std::chrono::steady_clock::now() < deadline)
    std::this_thread::sleep_for(milliseconds(5));
  lb.svc->resume();
  t1.join();
  t2.join();

  ASSERT_TRUE(r1.ok()) << r1.error;
  ASSERT_TRUE(r2.ok()) << r2.error;
  EXPECT_EQ(r1.coalesced() + r2.coalesced(), 1)  // exactly one joiner
      << "initiator and joiner flags: " << int(r1.flags) << " "
      << int(r2.flags);
  ASSERT_EQ(r1.response->result.hits.size(), r2.response->result.hits.size());
  for (size_t i = 0; i < r1.response->result.hits.size(); ++i)
    EXPECT_EQ(r1.response->result.hits[i].score,
              r2.response->result.hits[i].score);

  const auto snap = lb.server->metrics();
  EXPECT_EQ(snap.coalesced, 1u);
  EXPECT_GT(snap.dedup_ratio(), 0.0);
}

TEST(NetServer, ErrorStatusesCrossTheWire) {
  // Pairwise-only service: search must come back NoDatabase, not a hang or
  // a protocol error.
  service::ServiceOptions opt;
  auto svc = std::make_unique<service::AlignService>(opt);  // no database
  auto started = Server::start(*svc);
  ASSERT_TRUE(started.ok());
  auto client = Client::connect("127.0.0.1", started.value()->port(), 20.0);
  ASSERT_TRUE(client.ok());

  const auto r = client.value()->search(search_request());
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status, ServiceStatus::NoDatabase);
  EXPECT_FALSE(r.error.empty());
}

TEST(NetServer, ProtocolErrorsAreTyped) {
  Loopback lb;

  {  // Undecodable payload under a valid header -> BadFrame.
    auto c = lb.client();
    FrameHeader h;
    h.type = MsgType::SearchRequest;
    h.request_id = 5;
    const auto reply = c->roundtrip_raw(encode_frame(h, "garbage"));
    ASSERT_TRUE(reply.has_value());
    EXPECT_EQ(reply->first.type, MsgType::ErrorResponse);
    EXPECT_EQ(service::status_from_wire(reply->first.status),
              ServiceStatus::BadFrame);
    EXPECT_EQ(reply->first.request_id, 5u);
  }
  {  // Unknown type byte -> UnknownType.
    auto c = lb.client();
    FrameHeader h;
    h.type = static_cast<MsgType>(77);
    const auto reply = c->roundtrip_raw(encode_frame(h, ""));
    ASSERT_TRUE(reply.has_value());
    EXPECT_EQ(service::status_from_wire(reply->first.status),
              ServiceStatus::UnknownType);
  }
  {  // Bad magic -> BadVersion, then the connection is dropped.
    auto c = lb.client();
    std::string frame = encode_frame(FrameHeader{}, "");
    frame[0] = 'X';
    const auto reply = c->roundtrip_raw(frame);
    ASSERT_TRUE(reply.has_value());
    EXPECT_EQ(service::status_from_wire(reply->first.status),
              ServiceStatus::BadVersion);
    EXPECT_FALSE(c->read_frame().has_value());  // server closed
  }
  const auto snap = lb.server->metrics();
  EXPECT_GE(snap.server_protocol_errors, 3u);
}

TEST(NetServer, OversizedFrameRejected) {
  service::ServiceOptions opt;
  opt.serve.max_frame_bytes = 1024;
  Loopback lb(opt);
  auto c = lb.client();

  FrameHeader h;
  h.type = MsgType::SearchRequest;
  h.payload_len = 1u << 20;  // claims 1 MiB
  std::string bytes;
  encode_header(bytes, h);
  ASSERT_TRUE(c->send_raw(bytes));
  const auto reply = c->read_frame();
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(service::status_from_wire(reply->first.status),
            ServiceStatus::FrameTooLarge);
  EXPECT_FALSE(c->read_frame().has_value());  // connection closed
}

TEST(NetServer, PartialFramesReassemble) {
  Loopback lb;
  auto c = lb.client();
  const SearchRequest rq = search_request();
  std::string payload;
  encode_search_request(payload, rq);
  FrameHeader h;
  h.type = MsgType::SearchRequest;
  h.request_id = 9;
  const std::string frame = encode_frame(h, payload);

  // Dribble the frame across five writes with pauses; the server must
  // buffer and answer exactly once it has the whole thing.
  const size_t step = frame.size() / 5 + 1;
  for (size_t off = 0; off < frame.size(); off += step) {
    ASSERT_TRUE(c->send_raw(frame.substr(off, step)));
    std::this_thread::sleep_for(milliseconds(20));
  }
  const auto reply = c->read_frame();
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(reply->first.type, MsgType::SearchResponse);
  EXPECT_EQ(reply->first.request_id, 9u);
  const auto decoded = decode_search_response(reply->second);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->result.hits.size(), 5u);
}

TEST(NetServer, JsonDebugMode) {
  Loopback lb;
  auto c = lb.client();
  FrameHeader h;
  h.type = MsgType::AlignRequest;
  h.flags = kFlagJson;
  h.request_id = 3;
  const auto reply = c->roundtrip_raw(encode_frame(
      h, R"({"query":"MKVLAEEQW","ref":"MKVLAEEQW","traceback":true})"));
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(reply->first.type, MsgType::AlignResponse);
  EXPECT_NE(reply->first.flags & kFlagJson, 0);
  const auto doc = Json::parse(reply->second);
  ASSERT_TRUE(doc.has_value()) << reply->second;
  EXPECT_GT((*doc)["score"].as_number(), 0.0);
}

TEST(NetServer, DeadlineExpiresInQueue) {
  service::ServiceOptions opt;
  opt.queue.start_paused = true;
  Loopback lb(opt);
  auto c = lb.client();

  SearchRequest rq = search_request();
  rq.options.deadline = milliseconds(1);
  std::thread release([&] {
    std::this_thread::sleep_for(milliseconds(300));
    lb.svc->resume();
  });
  const auto r = c->search(rq);
  release.join();
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status, ServiceStatus::DeadlineExceeded);
}

TEST(NetServer, HttpMetricsAndHealth) {
  Loopback lb;
  // Generate one request so the counters are warm.
  ASSERT_TRUE(lb.client()->search(search_request()).ok());

  const auto prom =
      http_get("127.0.0.1", lb.server->port(), "/metrics");
  ASSERT_TRUE(prom.ok()) << prom.error().message;
  EXPECT_NE(prom.value().find("swve_requests_submitted_total"),
            std::string::npos);
  EXPECT_NE(prom.value().find("swve_result_cache_lookups_total"),
            std::string::npos);
  EXPECT_NE(prom.value().find("swve_server_connections_total"),
            std::string::npos);

  const auto json =
      http_get("127.0.0.1", lb.server->port(), "/metrics?format=json");
  ASSERT_TRUE(json.ok());
  const auto doc = Json::parse(json.value());
  ASSERT_TRUE(doc.has_value());
  EXPECT_TRUE((*doc)["server"].is_object());
  EXPECT_TRUE((*doc)["result_cache"].is_object());

  std::string head;
  const auto health =
      http_get("127.0.0.1", lb.server->port(), "/healthz", 10.0, &head);
  ASSERT_TRUE(health.ok());
  EXPECT_EQ(health.value(), "ok\n");
  EXPECT_NE(head.find("200"), std::string::npos);

  std::string head404;
  const auto missing =
      http_get("127.0.0.1", lb.server->port(), "/nope", 10.0, &head404);
  ASSERT_TRUE(missing.ok());
  EXPECT_NE(head404.find("404"), std::string::npos);

  const auto snap = lb.server->metrics();
  EXPECT_GE(snap.server_http_scrapes, 2u);
  EXPECT_GE(snap.server_connections, 1u);
}

TEST(NetServer, GracefulDrainFinishesInflightWork) {
  service::ServiceOptions opt;
  opt.queue.start_paused = true;
  opt.serve.drain_timeout_s = 20;
  Loopback lb(opt);
  auto c = lb.client();

  RpcResult<service::SearchResponse> r;
  std::thread t([&] { r = c->search(search_request()); });
  // Let the request reach the (paused) queue, then start draining while it
  // is still pending.
  std::this_thread::sleep_for(milliseconds(200));
  lb.server->shutdown();
  std::this_thread::sleep_for(milliseconds(100));
  EXPECT_TRUE(lb.server->running());  // drain waits for the pending request
  lb.svc->resume();
  t.join();
  lb.server->join();

  ASSERT_TRUE(r.ok()) << r.error;  // the in-flight request completed
  EXPECT_EQ(r.response->result.hits.size(), 5u);
  EXPECT_FALSE(lb.server->running());

  // The listener is gone: new connections are refused.
  EXPECT_FALSE(Client::connect("127.0.0.1", lb.server->port(), 2.0).ok());
}

TEST(NetServer, ServingRejectsBlockingOverflow) {
  // Overflow::Block would park the event-loop thread on the queue's
  // condition variable when the queue fills, stalling every connection and
  // the drain path — the server must refuse to start with it.
  auto db = make_db(20'000);
  service::ServiceOptions opt;
  opt.queue.overflow = service::QueueOptions::Overflow::Block;
  service::AlignService svc(db, opt);
  const auto started = Server::start(svc);
  ASSERT_FALSE(started.ok());
  EXPECT_NE(started.error().message.find("overflow"), std::string::npos)
      << started.error().message;
}

TEST(NetServer, LateCompletionAfterServerDestructionIsDropped) {
  // Regression: a request still executing (here: still queued, executors
  // paused) when the drain deadline passes used to leave a completion
  // callback holding a raw Server pointer; ~Server freed the object and
  // the late completion wrote a destroyed mutex and a closed eventfd. The
  // callback now holds the shared completion sink, which ~Server closes,
  // so the late completion is dropped on the floor.
  auto db = make_db(20'000);
  service::ServiceOptions opt;
  opt.queue.start_paused = true;     // the request never starts executing
  opt.serve.drain_timeout_s = 0.05;  // give up draining almost immediately
  opt.serve.port = 0;
  service::AlignService svc(db, opt);
  auto started = Server::start(svc);
  ASSERT_TRUE(started.ok());
  auto server = std::move(started.value());

  auto conn = Client::connect("127.0.0.1", server->port(), 5.0);
  ASSERT_TRUE(conn.ok());
  RpcResult<service::SearchResponse> r;
  std::thread t([&] { r = conn.value()->search(search_request()); });

  // Wait until the request has been submitted into the (paused) queue.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (svc.metrics().submitted < 1 &&
         std::chrono::steady_clock::now() < deadline)
    std::this_thread::sleep_for(milliseconds(5));
  ASSERT_GE(svc.metrics().submitted, 1u);

  server->shutdown();
  server->join();  // drain deadline passes with the execution outstanding
  server.reset();  // destroy the server while the completion is pending
  t.join();        // the client sees its connection closed, no response
  EXPECT_FALSE(r.ok());

  // Release the executors: the completion fires into the closed sink and
  // must be dropped without touching the destroyed server.
  svc.resume();
  std::this_thread::sleep_for(milliseconds(200));
}

TEST(NetServer, PingAndBinaryMetrics) {
  Loopback lb;
  auto c = lb.client();
  EXPECT_TRUE(c->ping().ok());
  const auto prom = c->metrics(false);
  ASSERT_TRUE(prom.ok());
  EXPECT_NE(prom.response->find("swve_build_info"), std::string::npos);
  const auto json = c->metrics(true);
  ASSERT_TRUE(json.ok());
  EXPECT_TRUE(Json::parse(*json.response).has_value());
}

}  // namespace
}  // namespace swve::net
