// End-to-end tests of net::Server + net::Client over a real loopback
// socket: wire results bit-identical to in-process AlignService calls,
// result-cache hits (kFlagFromCache), singleflight coalescing under a
// paused service (kFlagCoalesced), protocol-error statuses, partial-frame
// reassembly, oversized-frame rejection, deadline mapping, the HTTP
// /metrics endpoint, and graceful drain.
#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "net/client.hpp"
#include "net/json.hpp"
#include "net/protocol.hpp"
#include "net/server.hpp"
#include "obs/trace.hpp"
#include "seq/synthetic.hpp"
#include "service/align_service.hpp"

namespace swve::net {
namespace {

using service::AlignRequest;
using service::SearchRequest;
using service::ServiceStatus;
using std::chrono::milliseconds;

seq::SequenceDatabase make_db(uint64_t residues = 60'000, uint64_t seed = 15) {
  seq::SyntheticConfig cfg;
  cfg.seed = seed;
  cfg.target_residues = residues;
  cfg.min_length = 20;
  cfg.max_length = 400;
  return seq::SequenceDatabase::synthetic(cfg);
}

/// A service + server on an ephemeral loopback port, torn down in order.
struct Loopback {
  explicit Loopback(service::ServiceOptions opt = {}, uint64_t residues = 60'000)
      : db(make_db(residues)) {
    opt.serve.port = 0;  // ephemeral
    svc = std::make_unique<service::AlignService>(db, opt);
    auto started = Server::start(*svc);
    if (!started.ok()) {
      ADD_FAILURE() << started.error().message;
      return;
    }
    server = std::move(started.value());
  }

  std::unique_ptr<Client> client(double timeout_s = 20.0) {
    auto c = Client::connect("127.0.0.1", server->port(), timeout_s);
    EXPECT_TRUE(c.ok());
    return std::move(c.value());
  }

  seq::SequenceDatabase db;
  std::unique_ptr<service::AlignService> svc;
  std::unique_ptr<Server> server;
};

SearchRequest search_request(uint64_t seed = 31, uint32_t len = 150) {
  SearchRequest rq;
  rq.query = seq::generate_sequence(seed, len);
  rq.options.top_k = 5;
  return rq;
}

TEST(NetServer, SearchOverWireMatchesInProcess) {
  Loopback lb;
  const SearchRequest rq = search_request();

  const auto wire = lb.client()->search(rq);
  ASSERT_TRUE(wire.ok()) << wire.error;

  auto fut = lb.svc->submit_search(rq);
  const auto local = fut.get();

  // The tentpole sentinel: hits decoded off the wire are bit-identical to
  // the in-process response.
  ASSERT_EQ(wire.response->result.hits.size(), local.result.hits.size());
  for (size_t i = 0; i < local.result.hits.size(); ++i) {
    EXPECT_EQ(wire.response->result.hits[i].seq_index,
              local.result.hits[i].seq_index);
    EXPECT_EQ(wire.response->result.hits[i].score, local.result.hits[i].score);
    EXPECT_EQ(wire.response->result.hits[i].end_query,
              local.result.hits[i].end_query);
    EXPECT_EQ(wire.response->result.hits[i].end_ref,
              local.result.hits[i].end_ref);
  }
}

TEST(NetServer, AlignWithTracebackMatchesInProcess) {
  Loopback lb;
  AlignRequest rq;
  rq.query = seq::generate_sequence(7, 90);
  rq.reference = seq::generate_sequence(8, 130);
  rq.options.traceback = true;

  const auto wire = lb.client()->align(rq);
  ASSERT_TRUE(wire.ok()) << wire.error;
  auto fut = lb.svc->submit(rq);
  const auto local = fut.get();

  EXPECT_EQ(wire.response->alignment.score, local.alignment.score);
  EXPECT_EQ(wire.response->alignment.end_query, local.alignment.end_query);
  EXPECT_EQ(wire.response->alignment.end_ref, local.alignment.end_ref);
  EXPECT_EQ(wire.response->alignment.begin_query, local.alignment.begin_query);
  EXPECT_EQ(wire.response->alignment.begin_ref, local.alignment.begin_ref);
  EXPECT_EQ(wire.response->alignment.cigar.to_string(),
            local.alignment.cigar.to_string());
}

TEST(NetServer, RepeatedRequestServedFromCache) {
  Loopback lb;
  auto client = lb.client();
  const SearchRequest rq = search_request();

  const auto first = client->search(rq);
  ASSERT_TRUE(first.ok()) << first.error;
  EXPECT_FALSE(first.from_cache());

  const auto second = client->search(rq);
  ASSERT_TRUE(second.ok()) << second.error;
  EXPECT_TRUE(second.from_cache());

  // Identical decoded results either way.
  ASSERT_EQ(first.response->result.hits.size(),
            second.response->result.hits.size());
  for (size_t i = 0; i < first.response->result.hits.size(); ++i)
    EXPECT_EQ(first.response->result.hits[i].score,
              second.response->result.hits[i].score);

  // And kFlagNoCache forces a fresh execution.
  const auto third = client->search(rq, kFlagNoCache);
  ASSERT_TRUE(third.ok());
  EXPECT_FALSE(third.from_cache());

  const auto snap = lb.server->metrics();
  EXPECT_GE(snap.result_cache_hits, 1u);
  EXPECT_GE(snap.result_cache_misses, 1u);
  EXPECT_GE(snap.result_cache_entries, 1u);
  EXPECT_GT(snap.result_cache_hit_rate(), 0.0);
}

TEST(NetServer, IdenticalInflightRequestsCoalesce) {
  service::ServiceOptions opt;
  opt.queue.start_paused = true;  // hold execution so both requests queue
  Loopback lb(opt);
  const SearchRequest rq = search_request();

  auto c1 = lb.client();
  auto c2 = lb.client();
  RpcResult<service::SearchResponse> r1, r2;
  std::thread t1([&] { r1 = c1->search(rq); });
  std::thread t2([&] { r2 = c2->search(rq); });

  // Wait until the coalesced join is visible in the metrics, then release
  // the executors: exactly one execution serves both clients.
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (lb.svc->metrics().coalesced < 1 &&
         std::chrono::steady_clock::now() < deadline)
    std::this_thread::sleep_for(milliseconds(5));
  lb.svc->resume();
  t1.join();
  t2.join();

  ASSERT_TRUE(r1.ok()) << r1.error;
  ASSERT_TRUE(r2.ok()) << r2.error;
  EXPECT_EQ(r1.coalesced() + r2.coalesced(), 1)  // exactly one joiner
      << "initiator and joiner flags: " << int(r1.flags) << " "
      << int(r2.flags);
  ASSERT_EQ(r1.response->result.hits.size(), r2.response->result.hits.size());
  for (size_t i = 0; i < r1.response->result.hits.size(); ++i)
    EXPECT_EQ(r1.response->result.hits[i].score,
              r2.response->result.hits[i].score);

  const auto snap = lb.server->metrics();
  EXPECT_EQ(snap.coalesced, 1u);
  EXPECT_GT(snap.dedup_ratio(), 0.0);
}

TEST(NetServer, ErrorStatusesCrossTheWire) {
  // Pairwise-only service: search must come back NoDatabase, not a hang or
  // a protocol error.
  service::ServiceOptions opt;
  auto svc = std::make_unique<service::AlignService>(opt);  // no database
  auto started = Server::start(*svc);
  ASSERT_TRUE(started.ok());
  auto client = Client::connect("127.0.0.1", started.value()->port(), 20.0);
  ASSERT_TRUE(client.ok());

  const auto r = client.value()->search(search_request());
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status, ServiceStatus::NoDatabase);
  EXPECT_FALSE(r.error.empty());
}

TEST(NetServer, ProtocolErrorsAreTyped) {
  Loopback lb;

  {  // Undecodable payload under a valid header -> BadFrame.
    auto c = lb.client();
    FrameHeader h;
    h.type = MsgType::SearchRequest;
    h.request_id = 5;
    const auto reply = c->roundtrip_raw(encode_frame(h, "garbage"));
    ASSERT_TRUE(reply.has_value());
    EXPECT_EQ(reply->first.type, MsgType::ErrorResponse);
    EXPECT_EQ(service::status_from_wire(reply->first.status),
              ServiceStatus::BadFrame);
    EXPECT_EQ(reply->first.request_id, 5u);
  }
  {  // Unknown type byte -> UnknownType.
    auto c = lb.client();
    FrameHeader h;
    h.type = static_cast<MsgType>(77);
    const auto reply = c->roundtrip_raw(encode_frame(h, ""));
    ASSERT_TRUE(reply.has_value());
    EXPECT_EQ(service::status_from_wire(reply->first.status),
              ServiceStatus::UnknownType);
  }
  {  // Bad magic -> BadVersion, then the connection is dropped.
    auto c = lb.client();
    std::string frame = encode_frame(FrameHeader{}, "");
    frame[0] = 'X';
    const auto reply = c->roundtrip_raw(frame);
    ASSERT_TRUE(reply.has_value());
    EXPECT_EQ(service::status_from_wire(reply->first.status),
              ServiceStatus::BadVersion);
    EXPECT_FALSE(c->read_frame().has_value());  // server closed
  }
  const auto snap = lb.server->metrics();
  EXPECT_GE(snap.server_protocol_errors, 3u);
}

TEST(NetServer, OversizedFrameRejected) {
  service::ServiceOptions opt;
  opt.serve.max_frame_bytes = 1024;
  Loopback lb(opt);
  auto c = lb.client();

  FrameHeader h;
  h.type = MsgType::SearchRequest;
  h.payload_len = 1u << 20;  // claims 1 MiB
  std::string bytes;
  encode_header(bytes, h);
  ASSERT_TRUE(c->send_raw(bytes));
  const auto reply = c->read_frame();
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(service::status_from_wire(reply->first.status),
            ServiceStatus::FrameTooLarge);
  EXPECT_FALSE(c->read_frame().has_value());  // connection closed
}

TEST(NetServer, PartialFramesReassemble) {
  Loopback lb;
  auto c = lb.client();
  const SearchRequest rq = search_request();
  std::string payload;
  encode_search_request(payload, rq);
  FrameHeader h;
  h.type = MsgType::SearchRequest;
  h.request_id = 9;
  const std::string frame = encode_frame(h, payload);

  // Dribble the frame across five writes with pauses; the server must
  // buffer and answer exactly once it has the whole thing.
  const size_t step = frame.size() / 5 + 1;
  for (size_t off = 0; off < frame.size(); off += step) {
    ASSERT_TRUE(c->send_raw(frame.substr(off, step)));
    std::this_thread::sleep_for(milliseconds(20));
  }
  const auto reply = c->read_frame();
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(reply->first.type, MsgType::SearchResponse);
  EXPECT_EQ(reply->first.request_id, 9u);
  const auto decoded = decode_search_response(reply->second);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->result.hits.size(), 5u);
}

TEST(NetServer, JsonDebugMode) {
  Loopback lb;
  auto c = lb.client();
  FrameHeader h;
  h.type = MsgType::AlignRequest;
  h.flags = kFlagJson;
  h.request_id = 3;
  const auto reply = c->roundtrip_raw(encode_frame(
      h, R"({"query":"MKVLAEEQW","ref":"MKVLAEEQW","traceback":true})"));
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(reply->first.type, MsgType::AlignResponse);
  EXPECT_NE(reply->first.flags & kFlagJson, 0);
  const auto doc = Json::parse(reply->second);
  ASSERT_TRUE(doc.has_value()) << reply->second;
  EXPECT_GT((*doc)["score"].as_number(), 0.0);
}

TEST(NetServer, DeadlineExpiresInQueue) {
  service::ServiceOptions opt;
  opt.queue.start_paused = true;
  Loopback lb(opt);
  auto c = lb.client();

  SearchRequest rq = search_request();
  rq.options.deadline = milliseconds(1);
  std::thread release([&] {
    std::this_thread::sleep_for(milliseconds(300));
    lb.svc->resume();
  });
  const auto r = c->search(rq);
  release.join();
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status, ServiceStatus::DeadlineExceeded);
}

TEST(NetServer, HttpMetricsAndHealth) {
  Loopback lb;
  // Generate one request so the counters are warm.
  ASSERT_TRUE(lb.client()->search(search_request()).ok());

  const auto prom =
      http_get("127.0.0.1", lb.server->port(), "/metrics");
  ASSERT_TRUE(prom.ok()) << prom.error().message;
  EXPECT_NE(prom.value().find("swve_requests_submitted_total"),
            std::string::npos);
  EXPECT_NE(prom.value().find("swve_result_cache_lookups_total"),
            std::string::npos);
  EXPECT_NE(prom.value().find("swve_server_connections_total"),
            std::string::npos);

  const auto json =
      http_get("127.0.0.1", lb.server->port(), "/metrics?format=json");
  ASSERT_TRUE(json.ok());
  const auto doc = Json::parse(json.value());
  ASSERT_TRUE(doc.has_value());
  EXPECT_TRUE((*doc)["server"].is_object());
  EXPECT_TRUE((*doc)["result_cache"].is_object());

  std::string head;
  const auto health =
      http_get("127.0.0.1", lb.server->port(), "/healthz", 10.0, &head);
  ASSERT_TRUE(health.ok());
  EXPECT_EQ(health.value(), "ok\n");
  EXPECT_NE(head.find("200"), std::string::npos);

  std::string head404;
  const auto missing =
      http_get("127.0.0.1", lb.server->port(), "/nope", 10.0, &head404);
  ASSERT_TRUE(missing.ok());
  EXPECT_NE(head404.find("404"), std::string::npos);

  const auto snap = lb.server->metrics();
  EXPECT_GE(snap.server_http_scrapes, 2u);
  EXPECT_GE(snap.server_connections, 1u);
}

TEST(NetServer, GracefulDrainFinishesInflightWork) {
  service::ServiceOptions opt;
  opt.queue.start_paused = true;
  opt.serve.drain_timeout_s = 20;
  Loopback lb(opt);
  auto c = lb.client();

  RpcResult<service::SearchResponse> r;
  std::thread t([&] { r = c->search(search_request()); });
  // Let the request reach the (paused) queue, then start draining while it
  // is still pending.
  std::this_thread::sleep_for(milliseconds(200));
  lb.server->shutdown();
  std::this_thread::sleep_for(milliseconds(100));
  EXPECT_TRUE(lb.server->running());  // drain waits for the pending request
  lb.svc->resume();
  t.join();
  lb.server->join();

  ASSERT_TRUE(r.ok()) << r.error;  // the in-flight request completed
  EXPECT_EQ(r.response->result.hits.size(), 5u);
  EXPECT_FALSE(lb.server->running());

  // The listener is gone: new connections are refused.
  EXPECT_FALSE(Client::connect("127.0.0.1", lb.server->port(), 2.0).ok());
}

TEST(NetServer, ServingRejectsBlockingOverflow) {
  // Overflow::Block would park the event-loop thread on the queue's
  // condition variable when the queue fills, stalling every connection and
  // the drain path — the server must refuse to start with it.
  auto db = make_db(20'000);
  service::ServiceOptions opt;
  opt.queue.overflow = service::QueueOptions::Overflow::Block;
  service::AlignService svc(db, opt);
  const auto started = Server::start(svc);
  ASSERT_FALSE(started.ok());
  EXPECT_NE(started.error().message.find("overflow"), std::string::npos)
      << started.error().message;
}

TEST(NetServer, LateCompletionAfterServerDestructionIsDropped) {
  // Regression: a request still executing (here: still queued, executors
  // paused) when the drain deadline passes used to leave a completion
  // callback holding a raw Server pointer; ~Server freed the object and
  // the late completion wrote a destroyed mutex and a closed eventfd. The
  // callback now holds the shared completion sink, which ~Server closes,
  // so the late completion is dropped on the floor.
  auto db = make_db(20'000);
  service::ServiceOptions opt;
  opt.queue.start_paused = true;     // the request never starts executing
  opt.serve.drain_timeout_s = 0.05;  // give up draining almost immediately
  opt.serve.port = 0;
  service::AlignService svc(db, opt);
  auto started = Server::start(svc);
  ASSERT_TRUE(started.ok());
  auto server = std::move(started.value());

  auto conn = Client::connect("127.0.0.1", server->port(), 5.0);
  ASSERT_TRUE(conn.ok());
  RpcResult<service::SearchResponse> r;
  std::thread t([&] { r = conn.value()->search(search_request()); });

  // Wait until the request has been submitted into the (paused) queue.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (svc.metrics().submitted < 1 &&
         std::chrono::steady_clock::now() < deadline)
    std::this_thread::sleep_for(milliseconds(5));
  ASSERT_GE(svc.metrics().submitted, 1u);

  server->shutdown();
  server->join();  // drain deadline passes with the execution outstanding
  server.reset();  // destroy the server while the completion is pending
  t.join();        // the client sees its connection closed, no response
  EXPECT_FALSE(r.ok());

  // Release the executors: the completion fires into the closed sink and
  // must be dropped without touching the destroyed server.
  svc.resume();
  std::this_thread::sleep_for(milliseconds(200));
}

TEST(NetServer, TracedResponseBitIdenticalWithTiming) {
  // The wire-tracing sentinel, checked at the byte level: a traced
  // response is exactly the untraced response bytes plus a ServerTiming
  // trailer. Nothing about the result may depend on tracing.
  Loopback lb;
  auto c = lb.client();
  const SearchRequest rq = search_request();
  std::string payload;
  encode_search_request(payload, rq);

  FrameHeader h;
  h.type = MsgType::SearchRequest;
  h.request_id = 21;
  const auto plain = c->roundtrip_raw(encode_frame(h, payload));
  ASSERT_TRUE(plain.has_value());
  ASSERT_EQ(plain->first.type, MsgType::SearchResponse);
  EXPECT_EQ(plain->first.flags & kFlagTraced, 0);

  // Same request traced: it replays the cache entry the untraced call
  // stored, so after stripping the trailer the bytes must match exactly —
  // the trailer rides outside the cached payload.
  const uint64_t kTraceId = 0xDEADBEEFCAFEF00Dull;
  FrameHeader ht;
  ht.type = MsgType::SearchRequest;
  ht.flags = kFlagTraced;
  ht.request_id = 22;
  std::string traced_payload;
  encode_trace_context(traced_payload, WireTraceContext{kTraceId, true});
  traced_payload += payload;
  const auto traced = c->roundtrip_raw(encode_frame(ht, traced_payload));
  ASSERT_TRUE(traced.has_value());
  ASSERT_EQ(traced->first.type, MsgType::SearchResponse);
  EXPECT_NE(traced->first.flags & kFlagTraced, 0);
  EXPECT_NE(traced->first.flags & kFlagFromCache, 0);

  std::string_view body = traced->second;
  const auto timing = decode_server_timing(body);
  ASSERT_TRUE(timing.has_value());
  EXPECT_EQ(timing->trace_id, kTraceId);        // client id echoed verbatim
  EXPECT_EQ(timing->source, 1);                 // cache provenance
  EXPECT_EQ(std::string(body), plain->second);  // bit-identical payload

  // A traced fresh execution (kFlagNoCache): the payload embeds wall-clock
  // telemetry (RequestTrace), so two executions differ in those bytes —
  // the decoded *results* must still be identical to the untraced run's.
  FrameHeader hx;
  hx.type = MsgType::SearchRequest;
  hx.flags = kFlagTraced | kFlagNoCache;
  hx.request_id = 24;
  const auto fresh = c->roundtrip_raw(encode_frame(hx, traced_payload));
  ASSERT_TRUE(fresh.has_value());
  ASSERT_EQ(fresh->first.type, MsgType::SearchResponse);
  std::string_view fresh_body = fresh->second;
  const auto fresh_timing = decode_server_timing(fresh_body);
  ASSERT_TRUE(fresh_timing.has_value());
  EXPECT_EQ(fresh_timing->source, 0);  // executed
  EXPECT_GT(fresh_timing->exec_us, 0u);
  const auto plain_decoded = decode_search_response(plain->second);
  const auto fresh_decoded = decode_search_response(fresh_body);
  ASSERT_TRUE(plain_decoded.has_value());
  ASSERT_TRUE(fresh_decoded.has_value());
  ASSERT_EQ(plain_decoded->result.hits.size(),
            fresh_decoded->result.hits.size());
  for (size_t i = 0; i < plain_decoded->result.hits.size(); ++i) {
    EXPECT_EQ(plain_decoded->result.hits[i].seq_index,
              fresh_decoded->result.hits[i].seq_index);
    EXPECT_EQ(plain_decoded->result.hits[i].score,
              fresh_decoded->result.hits[i].score);
    EXPECT_EQ(plain_decoded->result.hits[i].end_query,
              fresh_decoded->result.hits[i].end_query);
    EXPECT_EQ(plain_decoded->result.hits[i].end_ref,
              fresh_decoded->result.hits[i].end_ref);
  }

  // A traced flag without a decodable context is a typed BadFrame, not a
  // garbage decode of the shifted payload.
  FrameHeader hb;
  hb.type = MsgType::SearchRequest;
  hb.flags = kFlagTraced;
  hb.request_id = 23;
  const auto bad = c->roundtrip_raw(encode_frame(hb, "abc"));
  ASSERT_TRUE(bad.has_value());
  EXPECT_EQ(bad->first.type, MsgType::ErrorResponse);
  EXPECT_EQ(service::status_from_wire(bad->first.status),
            ServiceStatus::BadFrame);
}

TEST(NetServer, PropagatedTraceIdThreadsServerSpans) {
  // One client-chosen id must thread every server-side span: the trace
  // sink's Chrome export and the /tracez entry both carry it verbatim.
  obs::TraceSink sink;
  service::ServiceOptions opt;
  opt.obs.trace_sink = &sink;
  Loopback lb(opt);
  auto c = lb.client();
  c->enable_tracing(true);
  const uint64_t kTraceId = 0x5EEDF00DDEADBEEFull;
  c->set_trace_id(kTraceId);

  const auto r = c->search(search_request());
  ASSERT_TRUE(r.ok()) << r.error;
  ASSERT_TRUE(r.timing.has_value());
  EXPECT_EQ(r.timing->trace_id, kTraceId);

  const std::string want = "\"trace_id\":" + std::to_string(kTraceId);
  EXPECT_NE(sink.chrome_trace_json().find(want), std::string::npos);

  const auto body = http_get("127.0.0.1", lb.server->port(), "/tracez");
  ASSERT_TRUE(body.ok()) << body.error().message;
  const auto doc = Json::parse(body.value());
  ASSERT_TRUE(doc.has_value()) << body.value();
  ASSERT_TRUE((*doc)["entries"].is_array());
  EXPECT_GT((*doc)["capacity"].as_number(), 0.0);
  bool found = false;
  for (const Json& e : (*doc)["entries"].as_array()) {
    if (e["trace_id"].as_string() != std::to_string(kTraceId)) continue;
    found = true;
    EXPECT_EQ(e["source"].as_string(), "executed");
    EXPECT_TRUE(e["tier"].is_string());
    EXPECT_GT(e["exec_us"].as_number(), 0.0);
    ASSERT_TRUE(e["spans"].is_array());
    EXPECT_FALSE(e["spans"].as_array().empty());  // the id found its spans
    for (const Json& s : e["spans"].as_array()) {
      EXPECT_TRUE(s["name"].is_string());
      EXPECT_TRUE(s["dur_ns"].is_string());  // u64s travel as strings
    }
  }
  EXPECT_TRUE(found) << body.value();
}

TEST(NetServer, TracedCacheHitReportsProvenance) {
  Loopback lb;
  auto c = lb.client();
  c->enable_tracing(true);
  const SearchRequest rq = search_request();

  const auto first = c->search(rq);
  ASSERT_TRUE(first.ok()) << first.error;
  ASSERT_TRUE(first.timing.has_value());
  EXPECT_EQ(first.timing->source, 0);

  const auto second = c->search(rq);
  ASSERT_TRUE(second.ok()) << second.error;
  EXPECT_TRUE(second.from_cache());
  ASSERT_TRUE(second.timing.has_value());
  EXPECT_EQ(second.timing->source, 1);  // cache provenance
  EXPECT_EQ(second.timing->queue_us, 0u);
  EXPECT_EQ(second.timing->exec_us, 0u);

  // The trailer stays out of the cache: decoded results are identical.
  ASSERT_EQ(first.response->result.hits.size(),
            second.response->result.hits.size());
  for (size_t i = 0; i < first.response->result.hits.size(); ++i)
    EXPECT_EQ(first.response->result.hits[i].score,
              second.response->result.hits[i].score);
}

TEST(NetServer, TracedCoalescedJoinerReportsProvenance) {
  service::ServiceOptions opt;
  opt.queue.start_paused = true;
  Loopback lb(opt);
  const SearchRequest rq = search_request();

  auto c1 = lb.client();
  auto c2 = lb.client();
  c1->enable_tracing(true);
  c1->set_trace_id(111);
  c2->enable_tracing(true);
  c2->set_trace_id(222);
  RpcResult<service::SearchResponse> r1, r2;
  std::thread t1([&] { r1 = c1->search(rq); });
  std::thread t2([&] { r2 = c2->search(rq); });
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (lb.svc->metrics().coalesced < 1 &&
         std::chrono::steady_clock::now() < deadline)
    std::this_thread::sleep_for(milliseconds(5));
  lb.svc->resume();
  t1.join();
  t2.join();

  ASSERT_TRUE(r1.ok()) << r1.error;
  ASSERT_TRUE(r2.ok()) << r2.error;
  ASSERT_TRUE(r1.timing.has_value());
  ASSERT_TRUE(r2.timing.has_value());
  // Each waiter gets its own id back even though one execution served
  // both; provenance tells the joiner its spans live under the initiator.
  EXPECT_EQ(r1.timing->trace_id, 111u);
  EXPECT_EQ(r2.timing->trace_id, 222u);
  ASSERT_EQ(r1.coalesced() + r2.coalesced(), 1);
  const auto& joiner = r1.coalesced() ? *r1.timing : *r2.timing;
  const auto& initiator = r1.coalesced() ? *r2.timing : *r1.timing;
  EXPECT_EQ(joiner.source, 2);
  EXPECT_EQ(initiator.source, 0);
  // Both carry the single execution's timing.
  EXPECT_EQ(joiner.exec_us, initiator.exec_us);
}

TEST(NetServer, HttpNonGetGetsClean405) {
  Loopback lb;
  for (const char* method : {"POST", "HEAD", "PUT", "DELETE"}) {
    std::string head;
    const auto r = http_get("127.0.0.1", lb.server->port(), "/metrics", 10.0,
                            &head, method);
    ASSERT_TRUE(r.ok()) << method << ": " << r.error().message;
    EXPECT_NE(head.find("405"), std::string::npos) << method;
    EXPECT_NE(head.find("Allow: GET"), std::string::npos) << method;
    EXPECT_EQ(r.value(), "method not allowed\n") << method;
  }
}

TEST(NetServer, HttpOversizedHeaderCloses) {
  Loopback lb;
  auto c = lb.client();
  // An HTTP request line that never terminates must not buffer forever.
  std::string bytes = "GET /";
  bytes.append(9000, 'a');
  ASSERT_TRUE(c->send_raw(bytes));
  EXPECT_FALSE(c->read_frame().has_value());  // server closed
}

TEST(NetServer, StatuszSchema) {
  Loopback lb;
  ASSERT_TRUE(lb.client()->search(search_request()).ok());

  const auto body = http_get("127.0.0.1", lb.server->port(), "/statusz");
  ASSERT_TRUE(body.ok()) << body.error().message;
  const auto parsed = Json::parse(body.value());
  ASSERT_TRUE(parsed.has_value()) << body.value();
  const Json& doc = *parsed;

  ASSERT_TRUE(doc["build"].is_object());
  EXPECT_TRUE(doc["build"]["version"].is_string());
  EXPECT_TRUE(doc["build"]["compiler"].is_string());
  // 64-bit identities travel as decimal strings (JSON numbers are
  // doubles); the epoch must match the serving database bit-exactly.
  ASSERT_TRUE(doc["db_epoch"].is_string());
  EXPECT_EQ(doc["db_epoch"].as_string(),
            std::to_string(lb.server->db_epoch()));
  EXPECT_EQ(doc["port"].as_number(),
            static_cast<double>(lb.server->port()));
  EXPECT_GE(doc["uptime_s"].as_number(), 0.0);
  EXPECT_FALSE(doc["draining"].as_bool());

  ASSERT_TRUE(doc["options"].is_object());
  EXPECT_TRUE(doc["options"]["serve"].is_object());
  EXPECT_TRUE(doc["options"]["queue"].is_object());
  ASSERT_TRUE(doc["requests"].is_object());
  EXPECT_GE(doc["requests"]["completed"].as_number(), 1.0);
  ASSERT_TRUE(doc["cache"].is_object());
  EXPECT_GT(doc["cache"]["capacity"].as_number(), 0.0);
  EXPECT_TRUE(doc["coalesce"].is_object());
  ASSERT_TRUE(doc["tiers"].is_object());
  EXPECT_FALSE(doc["tiers"].as_object().empty());
  ASSERT_TRUE(doc["log"].is_object());
  EXPECT_TRUE(doc["log"]["records"].is_number());
}

TEST(NetServer, ConnzSchema) {
  Loopback lb;
  auto c = lb.client();  // one live binary connection
  ASSERT_TRUE(c->ping().ok());

  const auto body = http_get("127.0.0.1", lb.server->port(), "/connz");
  ASSERT_TRUE(body.ok()) << body.error().message;
  const auto parsed = Json::parse(body.value());
  ASSERT_TRUE(parsed.has_value()) << body.value();
  const Json& doc = *parsed;

  ASSERT_TRUE(doc["connections"].is_array());
  EXPECT_GE(doc["active"].as_number(), 2.0);  // the client + this scrape
  EXPECT_FALSE(doc["draining"].as_bool());
  bool saw_binary = false, saw_http = false;
  for (const Json& e : doc["connections"].as_array()) {
    EXPECT_TRUE(e["id"].is_string());
    EXPECT_NE(e["peer"].as_string().find("127.0.0.1"), std::string::npos);
    EXPECT_GE(e["age_s"].as_number(), 0.0);
    const std::string& proto = e["protocol"].as_string();
    saw_binary = saw_binary || proto == "swv1";
    saw_http = saw_http || proto == "http";
    EXPECT_TRUE(e["frames_rx"].is_number());
    EXPECT_TRUE(e["bytes_tx"].is_number());
  }
  EXPECT_TRUE(saw_binary) << body.value();
  EXPECT_TRUE(saw_http) << body.value();  // the /connz scrape sees itself
}

TEST(NetServer, VarzServesTelemetryHistory) {
  service::ServiceOptions opt;
  opt.serve.telemetry_cadence_s = 0.05;  // fast ticks so the test is quick
  opt.serve.telemetry_retention_s = 10.0;
  Loopback lb(opt);
  ASSERT_TRUE(lb.client()->search(search_request()).ok());
  // Wait for at least two sampler ticks past the baseline seed.
  for (int i = 0; i < 100 && lb.svc->timeseries()->size() < 2; ++i)
    std::this_thread::sleep_for(milliseconds(20));
  ASSERT_GE(lb.svc->timeseries()->size(), 2u);

  const auto body = http_get("127.0.0.1", lb.server->port(), "/varz");
  ASSERT_TRUE(body.ok()) << body.error().message;
  const auto parsed = Json::parse(body.value());
  ASSERT_TRUE(parsed.has_value()) << body.value();
  const Json& doc = *parsed;
  EXPECT_NEAR(doc["cadence_s"].as_number(), 0.05, 1e-9);
  EXPECT_GT(doc["capacity"].as_number(), 0.0);
  ASSERT_TRUE(doc["points"].is_array());
  ASSERT_GE(doc["points"].as_array().size(), 2u);
  const Json& p = doc["points"].as_array().back();
  EXPECT_TRUE(p["t_s"].is_number());
  EXPECT_GT(p["dt_s"].as_number(), 0.0);
  EXPECT_TRUE(p["qps"].is_number());
  EXPECT_TRUE(p["tiers"].is_array());
  EXPECT_TRUE(p["length_bins"].is_array());

  // series= narrows the payload; window= bounds it; both validated.
  const auto narrow = http_get("127.0.0.1", lb.server->port(),
                               "/varz?series=qps,cache&window=60");
  ASSERT_TRUE(narrow.ok());
  const auto ndoc = Json::parse(narrow.value());
  ASSERT_TRUE(ndoc.has_value()) << narrow.value();
  const Json& np = (*ndoc)["points"].as_array().back();
  EXPECT_TRUE(np["qps"].is_number());
  EXPECT_TRUE(np["cache_hit_rate"].is_number());
  EXPECT_TRUE(np["pmu"].is_null());
  EXPECT_TRUE(np["length_bins"].is_null());

  std::string head;
  const auto bad = http_get("127.0.0.1", lb.server->port(),
                            "/varz?series=bogus", 10.0, &head);
  ASSERT_TRUE(bad.ok());
  EXPECT_NE(head.find("400"), std::string::npos) << head;
  EXPECT_NE(bad.value().find("unknown series: bogus"), std::string::npos);
}

TEST(NetServer, VarzUnavailableWhenTelemetryDisabled) {
  service::ServiceOptions opt;
  opt.serve.telemetry_cadence_s = 0;  // history, /varz, and SLO all off
  Loopback lb(opt);
  EXPECT_EQ(lb.svc->timeseries(), nullptr);
  EXPECT_EQ(lb.svc->slo(), nullptr);
  std::string head;
  const auto r =
      http_get("127.0.0.1", lb.server->port(), "/varz", 10.0, &head);
  ASSERT_TRUE(r.ok());
  EXPECT_NE(head.find("503"), std::string::npos) << head;
}

TEST(NetServer, StatuszCarriesSloAndTelemetryKnobs) {
  service::ServiceOptions opt;
  opt.serve.telemetry_cadence_s = 0.05;
  opt.serve.tracez_capacity = 7;
  opt.obs.slo.latency_target_s = 10.0;  // generous: stays ok
  Loopback lb(opt);
  ASSERT_TRUE(lb.client()->search(search_request()).ok());

  const auto body = http_get("127.0.0.1", lb.server->port(), "/statusz");
  ASSERT_TRUE(body.ok()) << body.error().message;
  const auto parsed = Json::parse(body.value());
  ASSERT_TRUE(parsed.has_value()) << body.value();
  const Json& doc = *parsed;
  EXPECT_EQ(doc["options"]["serve"]["tracez_capacity"].as_number(), 7.0);
  EXPECT_NEAR(doc["options"]["serve"]["telemetry_cadence_s"].as_number(),
              0.05, 1e-9);
  ASSERT_TRUE(doc["telemetry"].is_object());
  EXPECT_TRUE(doc["telemetry"]["samples"].is_number());
  ASSERT_TRUE(doc["slo"].is_object()) << body.value();
  EXPECT_EQ(doc["slo"]["state"].as_string(), "ok");
  EXPECT_TRUE(doc["slo"]["latency"].is_object());
  EXPECT_TRUE(doc["slo"]["availability"].is_object());

  // The Prometheus scrape carries the same alert state as gauges.
  const auto prom = http_get("127.0.0.1", lb.server->port(), "/metrics");
  ASSERT_TRUE(prom.ok());
  EXPECT_NE(prom.value().find("swve_slo_state 0"), std::string::npos);
  EXPECT_NE(prom.value().find("swve_slo_burn_rate{objective=\"latency\""),
            std::string::npos);
}

TEST(NetServer, TracezCapacityKnobIsValidated) {
  service::ServiceOptions opt;
  opt.serve.tracez_capacity = 0;
  EXPECT_FALSE(opt.try_validate().ok());
  opt.serve.tracez_capacity = 32;
  opt.serve.telemetry_cadence_s = 1.0;
  opt.serve.telemetry_retention_s = 0.5;  // shorter than one tick
  EXPECT_FALSE(opt.try_validate().ok());
  opt.serve.telemetry_retention_s = 600;
  opt.obs.slo.latency_objective = 1.0;  // budget would be zero
  EXPECT_FALSE(opt.try_validate().ok());
  opt.obs.slo.latency_objective = 0.99;
  EXPECT_TRUE(opt.try_validate().ok());
}

TEST(NetServer, PingAndBinaryMetrics) {
  Loopback lb;
  auto c = lb.client();
  EXPECT_TRUE(c->ping().ok());
  const auto prom = c->metrics(false);
  ASSERT_TRUE(prom.ok());
  EXPECT_NE(prom.response->find("swve_build_info"), std::string::npos);
  const auto json = c->metrics(true);
  ASSERT_TRUE(json.ok());
  EXPECT_TRUE(Json::parse(*json.response).has_value());
}

}  // namespace
}  // namespace swve::net
