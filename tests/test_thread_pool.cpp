#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "parallel/thread_pool.hpp"

namespace swve::parallel {
namespace {

TEST(BlockRange, CoversRangeExactlyOnce) {
  for (size_t n : {0u, 1u, 7u, 64u, 1000u}) {
    for (unsigned workers : {1u, 2u, 3u, 8u, 13u}) {
      std::vector<int> seen(n, 0);
      size_t prev_end = 0;
      for (unsigned w = 0; w < workers; ++w) {
        auto [b, e] = block_range(n, w, workers);
        EXPECT_EQ(b, prev_end);
        prev_end = e;
        for (size_t i = b; i < e; ++i) ++seen[i];
      }
      EXPECT_EQ(prev_end, n);
      for (size_t i = 0; i < n; ++i) EXPECT_EQ(seen[i], 1);
    }
  }
}

TEST(BlockRange, BalancedWithinOne) {
  for (unsigned workers : {2u, 3u, 7u}) {
    size_t n = 100;
    size_t mn = n, mx = 0;
    for (unsigned w = 0; w < workers; ++w) {
      auto [b, e] = block_range(n, w, workers);
      mn = std::min(mn, e - b);
      mx = std::max(mx, e - b);
    }
    EXPECT_LE(mx - mn, 1u);
  }
}

TEST(ThreadPool, DefaultsToHardwareConcurrency) {
  ThreadPool pool;
  EXPECT_GE(pool.size(), 1u);
}

TEST(ThreadPool, ParallelForVisitsEveryIndexOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> counts(1000);
  pool.parallel_for(1000, [&](size_t b, size_t e, unsigned) {
    for (size_t i = b; i < e; ++i) counts[i].fetch_add(1);
  });
  for (auto& c : counts) EXPECT_EQ(c.load(), 1);
}

TEST(ThreadPool, ParallelForWorkerIdsInRange) {
  ThreadPool pool(3);
  std::atomic<bool> ok{true};
  pool.parallel_for(100, [&](size_t, size_t, unsigned id) {
    if (id >= 3) ok = false;
  });
  EXPECT_TRUE(ok);
}

TEST(ThreadPool, ParallelForEmptyRange) {
  ThreadPool pool(2);
  bool called = false;
  pool.parallel_for(0, [&](size_t, size_t, unsigned) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPool, ParallelChunksRunsEveryChunkOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> counts(57);
  pool.parallel_chunks(57, [&](size_t c, unsigned) { counts[c].fetch_add(1); });
  for (auto& c : counts) EXPECT_EQ(c.load(), 1);
}

TEST(ThreadPool, SequentialReuse) {
  ThreadPool pool(2);
  std::atomic<uint64_t> sum{0};
  for (int round = 0; round < 20; ++round) {
    pool.parallel_for(100, [&](size_t b, size_t e, unsigned) {
      for (size_t i = b; i < e; ++i) sum.fetch_add(i);
    });
  }
  EXPECT_EQ(sum.load(), 20ull * (99 * 100 / 2));
}

TEST(ThreadPool, SingleWorkerPool) {
  ThreadPool pool(1);
  std::vector<int> order;
  pool.parallel_for(10, [&](size_t b, size_t e, unsigned) {
    for (size_t i = b; i < e; ++i) order.push_back(static_cast<int>(i));
  });
  std::vector<int> expect(10);
  std::iota(expect.begin(), expect.end(), 0);
  EXPECT_EQ(order, expect);  // one worker => strictly in order
}

TEST(ThreadPool, StressManySmallJobs) {
  ThreadPool pool(4);
  std::atomic<int> total{0};
  for (int round = 0; round < 200; ++round)
    pool.parallel_chunks(8, [&](size_t, unsigned) { total.fetch_add(1); });
  EXPECT_EQ(total.load(), 1600);
}

}  // namespace
}  // namespace swve::parallel
