#include <gtest/gtest.h>

#include <random>

#include "core/scalar_ref.hpp"
#include "core/traceback.hpp"
#include "seq/synthetic.hpp"

namespace swve::core {
namespace {

using seq::Alphabet;
using seq::Sequence;

AlignConfig dna_fixed(int match, int mismatch, int open, int ext,
                      GapModel gm = GapModel::Affine) {
  AlignConfig cfg;
  cfg.scheme = ScoreScheme::Fixed;
  cfg.match = match;
  cfg.mismatch = mismatch;
  cfg.gap_model = gm;
  cfg.gap_open = open;
  cfg.gap_extend = ext;
  return cfg;
}

Sequence dna(const char* s) { return Sequence("d", s, Alphabet::dna()); }
Sequence prot(const char* s) { return Sequence("p", s, Alphabet::protein()); }

TEST(ScalarRef, IdenticalProteinsScoreDiagonalSum) {
  AlignConfig cfg;  // BLOSUM62 affine 11/1
  cfg.traceback = true;
  Sequence q = prot("ARND");
  Alignment a = ref_align(q, q, cfg);
  EXPECT_EQ(a.score, 4 + 5 + 6 + 6);
  EXPECT_EQ(a.end_query, 3);
  EXPECT_EQ(a.end_ref, 3);
  EXPECT_EQ(a.begin_query, 0);
  EXPECT_EQ(a.begin_ref, 0);
  EXPECT_EQ(a.cigar.to_string(), "4M");
}

TEST(ScalarRef, MismatchInsideLocalAlignment) {
  AlignConfig cfg = dna_fixed(2, -1, 3, 1);
  Alignment a = ref_align(dna("AAAA"), dna("AATA"), cfg);
  // Full-length alignment with one mismatch: 2+2-1+2 = 5 beats any subset.
  EXPECT_EQ(a.score, 5);
}

TEST(ScalarRef, SingleDeletionAffine) {
  AlignConfig cfg = dna_fixed(5, -4, 3, 1);
  cfg.traceback = true;
  Alignment a = ref_align(dna("AATTT"), dna("AAGTTT"), cfg);
  EXPECT_EQ(a.score, 25 - 3);  // 5 matches minus one gap open
  EXPECT_EQ(a.cigar.to_string(), "2M1D3M");
  EXPECT_EQ(a.begin_query, 0);
  EXPECT_EQ(a.begin_ref, 0);
  EXPECT_EQ(a.end_query, 4);
  EXPECT_EQ(a.end_ref, 5);
  EXPECT_EQ(replay_score(dna("AATTT"), dna("AAGTTT"), cfg, a), a.score);
}

TEST(ScalarRef, SingleInsertionAffine) {
  AlignConfig cfg = dna_fixed(5, -4, 3, 1);
  cfg.traceback = true;
  Alignment a = ref_align(dna("AAGTTT"), dna("AATTT"), cfg);
  EXPECT_EQ(a.score, 22);
  EXPECT_EQ(a.cigar.to_string(), "2M1I3M");
}

TEST(ScalarRef, LongGapAffineCosting) {
  AlignConfig cfg = dna_fixed(5, -4, 3, 1);
  cfg.traceback = true;
  Alignment a = ref_align(dna("AATTT"), dna("AAGGGTTT"), cfg);
  EXPECT_EQ(a.score, 25 - (3 + 2 * 1));  // open + 2 extends
  EXPECT_EQ(a.cigar.to_string(), "2M3D3M");
}

TEST(ScalarRef, LongGapLinearCosting) {
  AlignConfig cfg = dna_fixed(5, -4, 0, 2, GapModel::Linear);
  cfg.traceback = true;
  Alignment a = ref_align(dna("AATTT"), dna("AAGGGTTT"), cfg);
  EXPECT_EQ(a.score, 25 - 3 * 2);  // k * extend
  EXPECT_EQ(a.cigar.to_string(), "2M3D3M");
}

TEST(ScalarRef, AllMismatchScoresZero) {
  AlignConfig cfg = dna_fixed(2, -3, 3, 1);
  cfg.traceback = true;
  Alignment a = ref_align(dna("AAAA"), dna("TTTT"), cfg);
  EXPECT_EQ(a.score, 0);
  EXPECT_EQ(a.end_query, -1);
  EXPECT_EQ(a.end_ref, -1);
  EXPECT_TRUE(a.cigar.empty());
}

TEST(ScalarRef, EmptyInputs) {
  AlignConfig cfg;
  Sequence e = prot("");
  Sequence q = prot("ARND");
  EXPECT_EQ(ref_align(e, q, cfg).score, 0);
  EXPECT_EQ(ref_align(q, e, cfg).score, 0);
  EXPECT_EQ(ref_align(e, e, cfg).score, 0);
}

TEST(ScalarRef, ScoreIsSymmetricUnderSwap) {
  std::mt19937_64 rng(21);
  AlignConfig cfg;
  for (int it = 0; it < 30; ++it) {
    auto q = seq::generate_sequence(rng(), 1 + rng() % 80);
    auto r = seq::generate_sequence(rng(), 1 + rng() % 80);
    EXPECT_EQ(ref_align(q, r, cfg).score, ref_align(r, q, cfg).score);
  }
}

TEST(ScalarRef, ExtendingReferenceNeverLowersScore) {
  std::mt19937_64 rng(22);
  AlignConfig cfg;
  auto q = seq::generate_sequence(rng(), 60);
  auto r = seq::generate_sequence(rng(), 120);
  int prev = 0;
  for (size_t len = 10; len <= 120; len += 10) {
    int s = ref_align(q, r.subsequence(0, len), cfg).score;
    EXPECT_GE(s, prev);
    prev = s;
  }
}

TEST(ScalarRef, MatrixMaxEqualsScore) {
  std::mt19937_64 rng(23);
  AlignConfig cfg;
  for (int it = 0; it < 20; ++it) {
    auto q = seq::generate_sequence(rng(), 1 + rng() % 50);
    auto r = seq::generate_sequence(rng(), 1 + rng() % 50);
    Alignment a = ref_align(q, r, cfg);
    auto H = ref_matrix(q, r, cfg);
    int mx = 0;
    for (int h : H) mx = std::max(mx, h);
    EXPECT_EQ(mx, a.score);
    if (a.score > 0) {
      EXPECT_EQ(H[static_cast<size_t>(a.end_query) * r.length() +
                  static_cast<size_t>(a.end_ref)],
                a.score);
    }
  }
}

TEST(ScalarRef, EndCellIsLexicographicallySmallest) {
  std::mt19937_64 rng(24);
  AlignConfig cfg;
  for (int it = 0; it < 20; ++it) {
    auto q = seq::generate_sequence(rng(), 1 + rng() % 40);
    auto r = seq::generate_sequence(rng(), 1 + rng() % 40);
    Alignment a = ref_align(q, r, cfg);
    if (a.score == 0) continue;
    auto H = ref_matrix(q, r, cfg);
    for (int i = 0; i < static_cast<int>(q.length()); ++i)
      for (int j = 0; j < static_cast<int>(r.length()); ++j) {
        if (H[static_cast<size_t>(i) * r.length() + static_cast<size_t>(j)] ==
            a.score) {
          // No max cell may precede the reported one.
          EXPECT_TRUE(i > a.end_query || (i == a.end_query && j >= a.end_ref));
          return;  // first max cell found is the reported one
        }
      }
  }
}

TEST(ScalarRef, TracebackReplayMatchesScore) {
  std::mt19937_64 rng(25);
  for (int it = 0; it < 60; ++it) {
    AlignConfig cfg;
    cfg.traceback = true;
    cfg.gap_model = (it & 1) ? GapModel::Linear : GapModel::Affine;
    cfg.gap_open = 5 + static_cast<int>(rng() % 10);
    cfg.gap_extend = 1 + static_cast<int>(rng() % 4);
    auto q = seq::generate_sequence(rng(), 1 + rng() % 100);
    auto r = seq::generate_sequence(rng(), 1 + rng() % 100);
    Alignment a = ref_align(q, r, cfg);
    if (a.score > 0) {
      EXPECT_EQ(replay_score(q, r, cfg, a), a.score);
      EXPECT_EQ(a.cigar.query_consumed(),
                static_cast<uint64_t>(a.end_query - a.begin_query + 1));
      EXPECT_EQ(a.cigar.ref_consumed(),
                static_cast<uint64_t>(a.end_ref - a.begin_ref + 1));
    }
  }
}

TEST(ScalarRef, HomologousPairScoresHigherThanRandom) {
  auto q = seq::generate_sequence(77, 200);
  auto hom = seq::mutate(q, 5, 0.15);
  auto rnd = seq::generate_sequence(78, 200);
  AlignConfig cfg;
  EXPECT_GT(ref_align(q, hom, cfg).score, 2 * ref_align(q, rnd, cfg).score);
}

TEST(ScalarRef, TracebackCellCapThrows) {
  AlignConfig cfg;
  cfg.traceback = true;
  cfg.max_traceback_cells = 100;
  auto q = seq::generate_sequence(1, 50);
  auto r = seq::generate_sequence(2, 50);
  EXPECT_THROW(ref_align(q, r, cfg), std::length_error);
}

TEST(ScalarRef, ConfigValidation) {
  AlignConfig cfg;
  cfg.gap_open = -1;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = AlignConfig{};
  cfg.gap_open = 1;
  cfg.gap_extend = 2;  // affine requires open >= extend
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = AlignConfig{};
  cfg.scheme = ScoreScheme::Matrix;
  cfg.matrix = nullptr;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

TEST(ScalarRef, WildcardsAlignViaMatrix) {
  AlignConfig cfg;  // BLOSUM62: X vs X = -1 -> all-X sequences score 0
  Alignment a = ref_align(prot("XXXX"), prot("XXXX"), cfg);
  EXPECT_EQ(a.score, 0);
}

}  // namespace
}  // namespace swve::core
