// Span-scoped hardware-counter attribution and the black-box recorder
// (ISSUE 4 tentpole): PmuSession degradation paths and delta math, the
// in-flight request table, the SLO watchdog, the flight recorder (manual
// dump and SIGTERM death test), sampler stop races, and cpufreq-sysfs
// hardening.
//
// Nothing here requires working hardware counters — CI and most VMs run
// with perf_event denied or absent, which is exactly the degraded path
// these tests pin down. The concurrency tests are TSan CI targets.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/flight_recorder.hpp"
#include "obs/inflight.hpp"
#include "obs/pmu.hpp"
#include "obs/sampler.hpp"
#include "obs/trace.hpp"
#include "obs/watchdog.hpp"
#include "perf/freq_monitor.hpp"
#include "perf/metrics.hpp"
#include "seq/synthetic.hpp"
#include "service/align_service.hpp"

namespace swve::obs {
namespace {

/// Forces a PmuSession availability state for one test, restoring the
/// real probe on scope exit.
struct SimulatedPmu {
  explicit SimulatedPmu(const char* mode) {
    PmuSession::instance().simulate_for_test(mode);
  }
  ~SimulatedPmu() { PmuSession::instance().simulate_for_test(nullptr); }
};

uint64_t json_u64(const std::string& json, const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  const size_t at = json.find(needle);
  if (at == std::string::npos) return ~uint64_t{0};
  return std::strtoull(json.c_str() + at + needle.size(), nullptr, 10);
}

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

// ---------------------------------------------------------------- delta math

PmuReading hw_reading(uint64_t ns, uint64_t te, uint64_t tr, uint64_t cycles,
                      uint64_t instructions) {
  PmuReading r;
  r.hw = true;
  r.ns = ns;
  r.time_enabled = te;
  r.time_running = tr;
  r.cycles = cycles;
  r.instructions = instructions;
  r.stall_frontend = cycles / 10;
  r.stall_backend = cycles / 4;
  r.llc_misses = 100;
  r.branch_misses = 50;
  return r;
}

TEST(PmuDelta, UnmultiplexedCountsPassThrough) {
  PmuReading a = hw_reading(1000, 500, 500, 1'000'000, 2'000'000);
  PmuReading b = hw_reading(2000, 1500, 1500, 3'000'000, 6'000'000);
  PmuDelta d = PmuSession::delta(a, b);
  EXPECT_TRUE(d.hw);
  EXPECT_EQ(d.wall_ns, 1000u);
  EXPECT_DOUBLE_EQ(d.scale, 1.0);
  EXPECT_EQ(d.cycles, 2'000'000u);
  EXPECT_EQ(d.instructions, 4'000'000u);
  EXPECT_DOUBLE_EQ(d.ipc(), 2.0);
  EXPECT_DOUBLE_EQ(d.effective_ghz(), 2000.0);  // 2e6 cycles / 1e3 ns
}

TEST(PmuDelta, MultiplexScalingCorrectsCounts) {
  // Group on the PMU for half its enabled time: counts scale by 2, the
  // ratios (which the group keeps consistent) are unchanged.
  PmuReading a = hw_reading(0, 0, 0, 0, 0);
  PmuReading b = hw_reading(1000, 1000, 500, 1'000'000, 2'000'000);
  PmuDelta d = PmuSession::delta(a, b);
  EXPECT_DOUBLE_EQ(d.scale, 2.0);
  EXPECT_EQ(d.cycles, 2'000'000u);
  EXPECT_EQ(d.instructions, 4'000'000u);
  EXPECT_DOUBLE_EQ(d.ipc(), 2.0);
  EXPECT_DOUBLE_EQ(d.backend_stall_fraction(), 0.25);
  EXPECT_DOUBLE_EQ(d.frontend_stall_fraction(), 0.1);
}

TEST(PmuDelta, SoftwareFallbackKeepsWallClockOnly) {
  PmuReading a;
  a.ns = 100;
  PmuReading b;
  b.ns = 350;
  PmuDelta d = PmuSession::delta(a, b);
  EXPECT_FALSE(d.hw);
  EXPECT_EQ(d.wall_ns, 250u);
  EXPECT_EQ(d.cycles, 0u);
  EXPECT_DOUBLE_EQ(d.ipc(), 0.0);
  EXPECT_DOUBLE_EQ(d.effective_ghz(), 0.0);
}

// ----------------------------------------------------------------- PmuSession

TEST(PmuSession, SimulatedEpermDegradesToSoftwareClock) {
  SimulatedPmu sim("eperm");
  PmuSession& pmu = PmuSession::instance();
  EXPECT_FALSE(pmu.available());
  EXPECT_EQ(pmu.state(), PmuSession::State::Eperm);
  EXPECT_STREQ(pmu.unavailable_reason(), "eperm");
  PmuReading r = pmu.read();
  EXPECT_FALSE(r.hw);
  EXPECT_GT(r.ns, 0u);  // the wall clock always works
}

TEST(PmuSession, SimulatedOffReportsDisabled) {
  SimulatedPmu sim("off");
  EXPECT_EQ(PmuSession::instance().state(), PmuSession::State::Disabled);
  EXPECT_STREQ(PmuSession::instance().unavailable_reason(), "disabled");
}

TEST(PmuSession, DegradedSpansStillAggregateWallTime) {
  // PMU denied: kernel spans must still land in the attribution cells with
  // wall time (samples > 0, cycles == 0) so the fallback stays observable.
  SimulatedPmu sim("eperm");
  TraceSink sink;
  perf::MetricsRegistry reg;
  TraceContext ctx{&sink, 1, &PmuSession::instance(), &reg};
  {
    Span span(ctx, "chunk.test");
    span.set_kernel(perf::KernelVariant::Diagonal);
    span.set_isa(simd::Isa::Avx2);
    span.set_width_bits(16);
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  }
  perf::PmuSample total = reg.snapshot().pmu_total();
  EXPECT_EQ(total.samples, 1u);
  EXPECT_GT(total.wall_ns, 0u);
  EXPECT_EQ(total.cycles, 0u);
}

TEST(PmuSession, PmuOnlyContextIsActiveWithoutSink) {
  SimulatedPmu sim("eperm");
  TraceContext ctx{nullptr, 0, &PmuSession::instance(), nullptr};
  EXPECT_TRUE(ctx.active());
  Span span(ctx, "no-sink");  // must not crash recording nowhere
  span.set_kernel(perf::KernelVariant::Batch32);
}

// ------------------------------------------------------- service degradation

seq::SequenceDatabase pmu_test_db() {
  seq::SyntheticConfig cfg;
  cfg.seed = 99;
  cfg.target_residues = 20'000;
  cfg.min_length = 20;
  cfg.max_length = 200;
  return seq::SequenceDatabase::synthetic(cfg);
}

TEST(AlignServicePmu, DegradedAttributionIsBitIdentical) {
  SimulatedPmu sim("eperm");
  seq::SequenceDatabase db = pmu_test_db();
  seq::Sequence query = seq::generate_sequence(7, 120);

  auto run = [&](bool attribution) {
    service::ServiceOptions opt;
    opt.pool_threads = 2;
    opt.pmu_attribution = attribution;
    service::AlignService svc(db, opt);
    service::SearchRequest rq;
    rq.query = query;
    return svc.submit_search(std::move(rq)).get();
  };
  service::SearchResponse with = run(true);
  service::SearchResponse without = run(false);

  ASSERT_EQ(with.result.hits.size(), without.result.hits.size());
  for (size_t i = 0; i < with.result.hits.size(); ++i) {
    EXPECT_EQ(with.result.hits[i].seq_index, without.result.hits[i].seq_index);
    EXPECT_EQ(with.result.hits[i].score, without.result.hits[i].score);
  }
}

TEST(AlignServicePmu, UnavailableGaugeReflectsDegradation) {
  SimulatedPmu sim("eperm");
  seq::SequenceDatabase db = pmu_test_db();
  service::ServiceOptions opt;
  opt.pool_threads = 1;
  service::AlignService svc(db, opt);
  service::SearchRequest rq;
  rq.query = seq::generate_sequence(8, 100);
  svc.submit_search(std::move(rq)).get();

  perf::MetricsSnapshot s = svc.metrics();
  EXPECT_EQ(s.pmu_unavailable, 1u);
  EXPECT_GT(s.pmu_total().samples, 0u);  // wall-only aggregation still on

  service::ServiceOptions off = opt;
  off.pmu_attribution = false;
  service::AlignService svc_off(db, off);
  EXPECT_EQ(svc_off.metrics().pmu_unavailable, 0u);
}

// -------------------------------------------------------------- InFlightTable

TEST(InFlightTable, GuardOccupiesAndReleasesSlot) {
  InFlightTable table(2);
  EXPECT_EQ(table.active(), 0u);
  {
    InFlightTable::Guard g(table, 1, 42, Scenario::Search, 777);
    EXPECT_EQ(table.active(), 1u);
    InFlightTable::Entry rows[4];
    ASSERT_EQ(table.snapshot(rows, 4), 1u);
    EXPECT_EQ(rows[0].slot, 1u);
    EXPECT_EQ(rows[0].id, 42u);
    EXPECT_EQ(rows[0].scenario, static_cast<uint32_t>(Scenario::Search));
    EXPECT_EQ(rows[0].deadline_ns, 777u);
    EXPECT_GT(rows[0].start_ns, 0u);
  }
  EXPECT_EQ(table.active(), 0u);
}

TEST(InFlightTable, ZeroIdStillReadsAsOccupied) {
  InFlightTable table(1);
  InFlightTable::Guard g(table, 0, 0, Scenario::Pairwise, 0);
  InFlightTable::Entry row;
  ASSERT_EQ(table.snapshot(&row, 1), 1u);
  EXPECT_EQ(row.id, 1u);  // id 0 means "free"; the table remaps it
}

TEST(InFlightTable, ConcurrentGuardsAndSnapshotsAreRaceFree) {
  // TSan target: executors churn their slots while a reader snapshots.
  InFlightTable table(4);
  std::atomic<bool> stop{false};
  std::thread reader([&] {
    InFlightTable::Entry rows[4];
    while (!stop.load(std::memory_order_relaxed)) {
      const size_t n = table.snapshot(rows, 4);
      ASSERT_LE(n, 4u);
      for (size_t i = 0; i < n; ++i) {
        ASSERT_NE(rows[i].id, 0u);
        ASSERT_LT(rows[i].slot, 4u);
      }
    }
  });
  std::vector<std::thread> workers;
  for (unsigned w = 0; w < 4; ++w) {
    workers.emplace_back([&, w] {
      for (uint64_t i = 1; i <= 20'000; ++i)
        InFlightTable::Guard g(table, w, i, Scenario::Batch, 0);
    });
  }
  for (auto& t : workers) t.join();
  stop.store(true, std::memory_order_relaxed);
  reader.join();
  EXPECT_EQ(table.active(), 0u);
}

// ------------------------------------------------------------------ watchdog

TEST(Watchdog, DetectsSlowOccupancyOnceAndRedetectsNewRequest) {
  InFlightTable table(2);
  WatchdogOptions wo;
  wo.slo_s = 1e-9;    // everything running is "slow"
  wo.period_s = 60;   // the scan thread stays out of the way
  Watchdog dog(table, wo, nullptr, nullptr, [] { return size_t{3}; });

  {
    InFlightTable::Guard g(table, 0, 11, Scenario::Search, 0);
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    dog.scan_once();
    dog.scan_once();  // same occupancy: deduplicated
    EXPECT_EQ(dog.detected(), 1u);
  }
  {
    InFlightTable::Guard g(table, 0, 12, Scenario::Batch, 0);
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    dog.scan_once();  // same slot, new request id: a new record
  }
  EXPECT_EQ(dog.detected(), 2u);

  std::vector<SlowRequestRecord> records = dog.records();
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].trace_id, 11u);
  EXPECT_EQ(records[0].scenario, static_cast<uint32_t>(Scenario::Search));
  EXPECT_EQ(records[0].queue_depth, 3u);
  EXPECT_GT(records[0].running_s, 0.0);
  EXPECT_EQ(records[1].trace_id, 12u);

  std::string json = dog.json();
  EXPECT_NE(json.find("\"trace_id\":11"), std::string::npos);
  EXPECT_NE(json.find("\"scenario\":\"batch\""), std::string::npos);
}

TEST(Watchdog, ServiceDetectsStalledEngine) {
  // A request stalled (deterministically, via the test hook) past a 10 ms
  // SLO must produce exactly one slow-request record while still running.
  TraceSink sink;
  service::ServiceOptions opt;
  opt.pool_threads = 1;
  opt.trace_sink = &sink;
  opt.slow_request_slo_s = 0.01;
  opt.watchdog_period_s = 0.002;
  opt.before_execute_hook = [] {
    std::this_thread::sleep_for(std::chrono::milliseconds(80));
  };
  service::AlignService svc(opt);

  service::AlignRequest rq;
  rq.query = seq::generate_sequence(1, 60);
  rq.reference = seq::generate_sequence(2, 90);
  svc.submit(std::move(rq)).get();

  ASSERT_NE(svc.watchdog(), nullptr);
  EXPECT_EQ(svc.slow_requests(), 1u);
  EXPECT_EQ(svc.metrics().slow_requests, 1u);
  std::vector<SlowRequestRecord> records = svc.watchdog()->records();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].scenario, static_cast<uint32_t>(Scenario::Pairwise));
  EXPECT_DOUBLE_EQ(records[0].slo_s, 0.01);
  EXPECT_GE(records[0].running_s, 0.01);
  EXPECT_NE(records[0].to_json().find("\"trace_id\""), std::string::npos);
}

// ------------------------------------------------------------ flight recorder

TEST(FlightRecorder, DumpNowRoundTripsThroughJson) {
  const std::string path = testing::TempDir() + "swve_flight_manual.json";
  std::remove(path.c_str());

  TraceSink sink;
  TraceContext ctx{&sink, 5};
  {
    Span span(ctx, "chunk.dump");
    span.set_isa(simd::Isa::Avx2);
    span.add_cells(123);
  }
  perf::MetricsRegistry reg;
  reg.on_submitted();
  reg.on_completed(perf::MetricsRegistry::Scenario::Search, 0.1, 1000);
  InFlightTable table(1);
  InFlightTable::Guard guard(table, 0, 42, Scenario::Search, 0);

  FlightRecorder rec;
  FlightRecorderOptions fo;
  fo.path = path;
  fo.sink = &sink;
  fo.registry = &reg;
  fo.inflight = &table;
  fo.handle_fatal = false;  // no signal dispositions touched in this test
  fo.handle_term = false;
  ASSERT_TRUE(rec.install(fo));

  FlightRecorder second;
  EXPECT_FALSE(second.install(fo));  // handlers are process-global

  ASSERT_TRUE(rec.dump_now("test"));
  rec.uninstall();
  EXPECT_FALSE(rec.dump_now("after-uninstall"));

  std::string dump = read_file(path);
  ASSERT_FALSE(dump.empty());
  EXPECT_NE(dump.find("\"reason\":\"test\""), std::string::npos);
  EXPECT_EQ(json_u64(dump, "submitted"), 1u);
  EXPECT_EQ(json_u64(dump, "completed"), 1u);
  EXPECT_EQ(json_u64(dump, "recorded"), 1u);
  EXPECT_NE(dump.find("\"id\":42"), std::string::npos);
  EXPECT_NE(dump.find("\"scenario\":\"search\""), std::string::npos);
  EXPECT_NE(dump.find("\"name\":\"chunk.dump\""), std::string::npos);
  EXPECT_NE(dump.find("traceEvents"), std::string::npos);
  EXPECT_EQ(std::count(dump.begin(), dump.end(), '{'),
            std::count(dump.begin(), dump.end(), '}'));
  EXPECT_EQ(std::count(dump.begin(), dump.end(), '['),
            std::count(dump.begin(), dump.end(), ']'));
  std::remove(path.c_str());
}

#if defined(__unix__)
// The death-test child: record a span, occupy an in-flight slot, install
// the recorder, and SIGTERM ourselves — the handler must dump and
// _exit(143).
[[noreturn]] void sigterm_with_recorder(const std::string& path) {
  TraceSink sink;
  TraceContext ctx{&sink, 9};
  {
    Span span(ctx, "chunk.term");
    span.add_cells(7);
  }
  InFlightTable table(1);
  InFlightTable::Guard guard(table, 0, 77, Scenario::Batch, 0);
  FlightRecorder rec;
  FlightRecorderOptions fo;
  fo.path = path;
  fo.sink = &sink;
  fo.inflight = &table;
  fo.handle_fatal = false;
  fo.handle_term = true;
  if (!rec.install(fo)) _exit(99);
  raise(SIGTERM);
  _exit(98);  // unreachable: the handler _exit(128+15)s
}

TEST(FlightRecorderDeathTest, SigTermDumpsAndExits143) {
  const std::string path = testing::TempDir() + "swve_flight_sigterm.json";
  std::remove(path.c_str());

  EXPECT_EXIT(sigterm_with_recorder(path), testing::ExitedWithCode(143),
              "flight recorder dump written");

  std::string dump = read_file(path);
  ASSERT_FALSE(dump.empty());
  EXPECT_NE(dump.find("\"reason\":\"SIGTERM\""), std::string::npos);
  EXPECT_EQ(json_u64(dump, "signal"), 15u);
  EXPECT_NE(dump.find("\"id\":77"), std::string::npos);
  EXPECT_NE(dump.find("\"scenario\":\"batch\""), std::string::npos);
  EXPECT_NE(dump.find("\"name\":\"chunk.term\""), std::string::npos);
  std::remove(path.c_str());
}
#endif

// ------------------------------------------------------------- sampler races

TEST(Sampler, ConcurrentStopIsIdempotentAndRaceFree) {
  // TSan target: stop() from several threads while the sample thread runs.
  for (int round = 0; round < 8; ++round) {
    SamplerOptions so;
    so.period_s = 0.001;
    so.freq_probe_ms = 0.1;
    Sampler sampler(so, [] { return perf::MetricsSnapshot{}; });
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    std::vector<std::thread> stoppers;
    for (int t = 0; t < 3; ++t)
      stoppers.emplace_back([&] { sampler.stop(); });
    for (auto& t : stoppers) t.join();
  }
}

// ------------------------------------------------------------------- cpufreq

TEST(Cpufreq, OutOfRangeAndMissingNodesReadZero) {
  EXPECT_EQ(perf::cpufreq_khz(-1), 0u);
  EXPECT_EQ(perf::cpufreq_khz(4096), 0u);
  EXPECT_EQ(perf::cpufreq_khz(100'000), 0u);  // never builds a bogus path
}

TEST(Cpufreq, SummarySkipsUnreadableCpus) {
  perf::CpufreqSummary s = perf::cpufreq_summary(8);
  EXPECT_LE(s.cpus_read, s.cpus_scanned);
  if (s.cpus_read > 0) {
    EXPECT_GE(s.mean_khz, static_cast<double>(s.min_khz));
    EXPECT_LE(s.mean_khz, static_cast<double>(s.max_khz));
    EXPECT_GT(s.min_khz, 0u);
  } else {
    // No cpufreq here (VM/container): all-zero summary, no crash.
    EXPECT_EQ(s.mean_khz, 0.0);
  }
  perf::CpufreqSummary none = perf::cpufreq_summary(0);
  EXPECT_EQ(none.cpus_scanned, 0);
  EXPECT_EQ(none.cpus_read, 0);
}

}  // namespace
}  // namespace swve::obs
