#include <gtest/gtest.h>

#include <random>

#include "align/sharded_search.hpp"
#include "core/batch32.hpp"
#include "core/dispatch.hpp"
#include "simd/cpu.hpp"
#include "tune/evaluator.hpp"
#include "tune/flag_space.hpp"
#include "tune/ga.hpp"

namespace swve::tune {
namespace {

TEST(FlagSpace, DefaultSpaceIsLarge) {
  FlagSpace space = FlagSpace::gcc_default();
  EXPECT_GE(space.size(), 20u);
  EXPECT_GT(space.search_space_size(), 1e9);
}

TEST(FlagSpace, BaselineIsPlainO3) {
  FlagSpace space = FlagSpace::gcc_default();
  Individual base = space.baseline_individual();
  EXPECT_TRUE(space.to_arguments(base).empty());
  EXPECT_EQ(space.to_string(base), "(plain -O3)");
}

TEST(FlagSpace, RandomIndividualsAreValid) {
  FlagSpace space = FlagSpace::gcc_default();
  std::mt19937_64 rng(1);
  for (int i = 0; i < 100; ++i) {
    Individual ind = space.random_individual(rng);
    EXPECT_TRUE(space.valid(ind));
    EXPECT_NO_THROW(space.to_arguments(ind));
  }
}

TEST(FlagSpace, InvalidIndividualsRejected) {
  FlagSpace space = FlagSpace::gcc_default();
  Individual short_ind(space.size() - 1, 0);
  EXPECT_FALSE(space.valid(short_ind));
  Individual bad = space.baseline_individual();
  bad[0] = 200;
  EXPECT_FALSE(space.valid(bad));
  EXPECT_THROW(space.to_arguments(bad), std::invalid_argument);
}

TEST(FlagSpace, ArgumentsComeFromChosenValues) {
  FlagSpace space = FlagSpace::gcc_default();
  Individual ind = space.baseline_individual();
  ind[0] = 1;  // -funroll-loops
  auto args = space.to_arguments(ind);
  ASSERT_EQ(args.size(), 1u);
  EXPECT_EQ(args[0], "-funroll-loops");
}

TEST(FlagSpace, RuntimeSpaceExtendsDefaultWithoutTouchingCompilerArgs) {
  FlagSpace base = FlagSpace::gcc_default();
  FlagSpace space = FlagSpace::gcc_with_runtime();
  EXPECT_EQ(space.size(), base.size() + 3);
  EXPECT_TRUE(space.has_runtime());
  EXPECT_FALSE(base.has_runtime());

  // The runtime flags sit at the end; picking them must not change the
  // compiler command line, only runtime_settings().
  Individual ind = space.baseline_individual();
  EXPECT_TRUE(space.runtime_settings(ind).empty());
  ind[space.size() - 3] = 3;  // ilp=4
  ind[space.size() - 2] = 1;  // prefetch=0
  ind[space.size() - 1] = 2;  // shards=2
  EXPECT_TRUE(space.to_arguments(ind).empty());
  auto settings = space.runtime_settings(ind);
  ASSERT_EQ(settings.size(), 3u);
  EXPECT_EQ(settings[0], "ilp=4");
  EXPECT_EQ(settings[1], "prefetch=0");
  EXPECT_EQ(settings[2], "shards=2");
  EXPECT_EQ(space.to_string(ind),
            "[runtime]ilp=4 [runtime]prefetch=0 [runtime]shards=2");
}

TEST(FlagSpace, ApplyRuntimeSettingsTakesEffectAndResets) {
  const uint32_t saved = core::batch_prefetch_distance();
  apply_runtime_settings({"ilp=4", "prefetch=8", "shards=2"});
  EXPECT_EQ(core::batch_prefetch_distance(), 8u);
  const simd::Isa isa = simd::resolve_isa(simd::Isa::Auto);
  EXPECT_EQ(core::resolved_ilp(isa), 4);
  EXPECT_EQ(align::shard_count_hint(), 2);

  // Empty list restores the defaults (Auto depth, default distance,
  // topology-auto shard count).
  apply_runtime_settings({});
  EXPECT_EQ(core::batch_prefetch_distance(), core::kDefaultBatchPrefetchCols);
  EXPECT_EQ(align::shard_count_hint(), 0);
  const int k = core::resolved_ilp(isa);
  EXPECT_TRUE(k == 1 || k == 2 || k == 4);

  EXPECT_THROW(apply_runtime_settings({"turbo=9"}), std::invalid_argument);
  core::set_batch_prefetch_distance(saved);
}

TEST(SimulatedEvaluator, DeterministicPerSeedAndIndividual) {
  FlagSpace space = FlagSpace::gcc_default();
  SimulatedEvaluator e1(space, 42, 256);
  SimulatedEvaluator e2(space, 42, 256);
  std::mt19937_64 rng(2);
  for (int i = 0; i < 20; ++i) {
    Individual ind = space.random_individual(rng);
    EXPECT_DOUBLE_EQ(e1.evaluate(ind), e2.evaluate(ind));
  }
}

TEST(SimulatedEvaluator, ArchSeedChangesSurface) {
  FlagSpace space = FlagSpace::gcc_default();
  SimulatedEvaluator a(space, 1, 256), b(space, 2, 256);
  std::mt19937_64 rng(3);
  Individual ind = space.random_individual(rng);
  EXPECT_NE(a.evaluate(ind), b.evaluate(ind));
}

TEST(SimulatedEvaluator, QuerySizeShapesGains) {
  FlagSpace space = FlagSpace::gcc_default();
  // The achievable improvement should differ between query sizes (the
  // paper's observation that tuning is query-size dependent).
  SimulatedEvaluator small(space, 7, 64), large(space, 7, 4096);
  double gain_small = small.approx_optimum() / small.baseline() - 1.0;
  double gain_large = large.approx_optimum() / large.baseline() - 1.0;
  EXPECT_GT(gain_small, 0.0);
  EXPECT_GT(gain_large, 0.0);
  EXPECT_NE(gain_small, gain_large);
}

TEST(Ga, ImprovesOverBaseline) {
  FlagSpace space = FlagSpace::gcc_default();
  SimulatedEvaluator eval(space, 11, 512);
  GaParams p;
  p.seed = 5;
  p.population = 20;
  p.generations = 10;
  GaResult res = run_ga(space, eval, p);
  EXPECT_GE(res.best_fitness, res.baseline_fitness);
  EXPECT_GT(res.improvement(), 0.0);
  EXPECT_TRUE(space.valid(res.best));
}

TEST(Ga, GenerationBestIsMonotoneWithElitism) {
  FlagSpace space = FlagSpace::gcc_default();
  SimulatedEvaluator eval(space, 12, 512);
  GaParams p;
  p.seed = 6;
  GaResult res = run_ga(space, eval, p);
  ASSERT_EQ(res.generation_best.size(), static_cast<size_t>(p.generations));
  for (size_t g = 1; g < res.generation_best.size(); ++g)
    EXPECT_GE(res.generation_best[g], res.generation_best[g - 1]);
}

TEST(Ga, DeterministicPerSeed) {
  FlagSpace space = FlagSpace::gcc_default();
  SimulatedEvaluator eval(space, 13, 128);
  GaParams p;
  p.seed = 7;
  GaResult a = run_ga(space, eval, p);
  GaResult b = run_ga(space, eval, p);
  EXPECT_EQ(a.best, b.best);
  EXPECT_DOUBLE_EQ(a.best_fitness, b.best_fitness);
}

TEST(Ga, FindsMostOfTheCoordinateAscentOptimum) {
  FlagSpace space = FlagSpace::gcc_default();
  SimulatedEvaluator eval(space, 14, 1024);
  GaParams p;
  p.seed = 8;
  p.population = 32;
  p.generations = 25;
  GaResult res = run_ga(space, eval, p);
  double ga_gain = res.best_fitness / res.baseline_fitness;
  double opt_gain = eval.approx_optimum() / eval.baseline();
  EXPECT_GT(ga_gain, 1.0 + 0.5 * (opt_gain - 1.0));  // >= half the gain
}

TEST(Ga, BadParamsThrow) {
  FlagSpace space = FlagSpace::gcc_default();
  SimulatedEvaluator eval(space, 1, 64);
  GaParams p;
  p.population = 1;
  EXPECT_THROW(run_ga(space, eval, p), std::invalid_argument);
}

TEST(GccEvaluator, ProbeAndEvaluateIfAvailable) {
  FlagSpace space = FlagSpace::gcc_default();
  GccEvaluator::Options opt;
  opt.work_dir = "/tmp/swve_tune_test";
  opt.query_size = 64;
  opt.db_size = 4096;
  opt.repeats = 1;
  GccEvaluator eval(space, opt);
  if (!eval.available()) GTEST_SKIP() << "gcc+dlopen not usable here";
  double base = eval.evaluate(space.baseline_individual());
  EXPECT_GT(base, 0.0);  // compiled, loaded, ran, returned GCUPS
}

}  // namespace
}  // namespace swve::tune
