#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "seq/synthetic.hpp"

namespace swve::seq {
namespace {

TEST(Synthetic, DeterministicFromSeed) {
  SyntheticConfig cfg;
  cfg.seed = 9;
  cfg.target_residues = 50'000;
  auto a = generate_database(cfg);
  auto b = generate_database(cfg);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
}

TEST(Synthetic, DifferentSeedsDiffer) {
  SyntheticConfig cfg;
  cfg.target_residues = 20'000;
  cfg.seed = 1;
  auto a = generate_database(cfg);
  cfg.seed = 2;
  auto b = generate_database(cfg);
  bool any_diff = a.size() != b.size();
  for (size_t i = 0; !any_diff && i < a.size(); ++i) any_diff = !(a[i] == b[i]);
  EXPECT_TRUE(any_diff);
}

TEST(Synthetic, RespectsLengthBounds) {
  SyntheticConfig cfg;
  cfg.target_residues = 100'000;
  cfg.min_length = 60;
  cfg.max_length = 500;
  for (const auto& s : generate_database(cfg)) {
    EXPECT_GE(s.length(), 60u);
    EXPECT_LE(s.length(), 500u);
  }
}

TEST(Synthetic, ReachesTargetResidues) {
  SyntheticConfig cfg;
  cfg.target_residues = 30'000;
  uint64_t total = 0;
  for (const auto& s : generate_database(cfg)) total += s.length();
  EXPECT_GE(total, cfg.target_residues);
  EXPECT_LT(total, cfg.target_residues + cfg.max_length);
}

TEST(Synthetic, BadBoundsThrow) {
  SyntheticConfig cfg;
  cfg.min_length = 100;
  cfg.max_length = 50;
  EXPECT_THROW(generate_database(cfg), std::invalid_argument);
}

TEST(Synthetic, CompositionTracksBackground) {
  // Residue frequencies of a large sample should be close to the
  // Robinson-Robinson background (within a few percent absolute).
  SyntheticConfig cfg;
  cfg.target_residues = 400'000;
  cfg.planted_fraction = 0;  // pure background
  auto db = generate_database(cfg);
  std::vector<uint64_t> counts(24, 0);
  uint64_t total = 0;
  for (const auto& s : db)
    for (uint8_t c : s.codes()) {
      ++counts[c];
      ++total;
    }
  const auto& bg = protein_background();
  for (int c = 0; c < 20; ++c) {
    double observed = static_cast<double>(counts[c]) / static_cast<double>(total);
    EXPECT_NEAR(observed, bg[static_cast<size_t>(c)], 0.01) << "residue code " << c;
  }
  EXPECT_EQ(counts[23], 0u);  // '*' never generated
}

TEST(Synthetic, BackgroundSumsToOne) {
  double sum = 0;
  for (double p : protein_background()) sum += p;
  EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(Synthetic, GenerateSequenceExactLength) {
  auto s = generate_sequence(3, 137);
  EXPECT_EQ(s.length(), 137u);
  auto d = generate_sequence(3, 64, AlphabetKind::Dna);
  EXPECT_EQ(d.length(), 64u);
  for (uint8_t c : d.codes()) EXPECT_LT(c, 4);  // uniform ACGT only
}

TEST(Synthetic, MutatePreservesLengthAndRate) {
  auto s = generate_sequence(5, 2000);
  auto m0 = mutate(s, 7, 0.0);
  EXPECT_EQ(m0, s);
  auto m = mutate(s, 7, 0.3);
  ASSERT_EQ(m.length(), s.length());
  size_t diff = 0;
  for (size_t i = 0; i < s.length(); ++i)
    if (s.codes()[i] != m.codes()[i]) ++diff;
  double rate = static_cast<double>(diff) / static_cast<double>(s.length());
  // 0.3 mutation attempts, some re-draw the same residue.
  EXPECT_GT(rate, 0.15);
  EXPECT_LT(rate, 0.35);
}

TEST(Synthetic, PickQueriesSpansLengths) {
  SyntheticConfig cfg;
  cfg.target_residues = 200'000;
  auto db = generate_database(cfg);
  auto qs = pick_queries(db, 10);
  ASSERT_EQ(qs.size(), 10u);
  // First pick is the shortest db entry, last is the longest.
  size_t mn = SIZE_MAX, mx = 0;
  for (const auto& s : db) {
    mn = std::min(mn, s.length());
    mx = std::max(mx, s.length());
  }
  EXPECT_EQ(qs.front().length(), mn);
  EXPECT_EQ(qs.back().length(), mx);
  for (size_t i = 1; i < qs.size(); ++i)
    EXPECT_GE(qs[i].length(), qs[i - 1].length());
}

TEST(Synthetic, PickQueriesEdgeCases) {
  EXPECT_TRUE(pick_queries({}, 5).empty());
  SyntheticConfig cfg;
  cfg.target_residues = 1000;
  auto db = generate_database(cfg);
  EXPECT_TRUE(pick_queries(db, 0).empty());
  EXPECT_EQ(pick_queries(db, 1).size(), 1u);
}

TEST(Synthetic, QueryLadderLogSpacing) {
  auto qs = make_query_ladder(1, 10, 64, 2048);
  ASSERT_EQ(qs.size(), 10u);
  EXPECT_EQ(qs.front().length(), 64u);
  EXPECT_EQ(qs.back().length(), 2048u);
  // Log-spaced: consecutive ratios roughly constant.
  double ratio = std::pow(2048.0 / 64.0, 1.0 / 9.0);
  for (size_t i = 1; i < qs.size(); ++i) {
    double r = static_cast<double>(qs[i].length()) /
               static_cast<double>(qs[i - 1].length());
    EXPECT_NEAR(r, ratio, 0.2 * ratio);
  }
}

TEST(Synthetic, QueryLadderBadArgsThrow) {
  EXPECT_THROW(make_query_ladder(1, 0, 64, 128), std::invalid_argument);
  EXPECT_THROW(make_query_ladder(1, 3, 128, 64), std::invalid_argument);
}

}  // namespace
}  // namespace swve::seq
