// Telemetry history store + burn-rate SLO engine.
//
// The store is fed hand-built MetricsSnapshots so every delta in a point
// can be checked against arithmetic done here; the SLO tests drive the
// engine through the store exactly as the sampler hook does in
// production (push, then evaluate at the same timestamp).
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "obs/slo.hpp"
#include "obs/timeseries.hpp"
#include "perf/metrics.hpp"

namespace swve::obs {
namespace {

using perf::LatencyHistogram;
using perf::MetricsSnapshot;

/// A snapshot whose counters are all simple functions of `scale`, so two
/// snapshots at different scales produce known deltas.
MetricsSnapshot scaled_snapshot(uint64_t scale) {
  MetricsSnapshot s;
  s.submitted = 110 * scale;
  s.completed = 100 * scale;
  s.rejected_queue_full = 4 * scale;
  s.deadline_expired = 3 * scale;
  s.invalid_request = 2 * scale;
  s.aborted = 1 * scale;
  s.cells = 2'000'000'000ull * scale;
  s.kernel_seconds = 1.0 * static_cast<double>(scale);
  s.result_cache_hits = 30 * scale;
  s.result_cache_misses = 10 * scale;
  s.log_dropped_overflow = 5 * scale;
  s.tier_requests[1][0] = 100 * scale;  // standard tier, pairwise
  LatencyHistogram h;
  for (uint64_t i = 0; i < 100 * scale; ++i) h.record(100e-6);
  s.tier_latency[1] = h.snapshot();
  s.query_length_bins[8] = 90 * scale;  // [256, 512) residues
  s.query_length_bins[5] = 10 * scale;
  s.pmu[1][0][0].samples = 10 * scale;
  s.pmu[1][0][0].wall_ns = 1'000'000 * scale;
  s.pmu[1][0][0].cycles = 3'000'000 * scale;
  s.pmu[1][0][0].instructions = 6'000'000 * scale;
  s.pmu[1][0][0].stall_backend = 300'000 * scale;
  return s;
}

TEST(TimeSeries, FirstPushOnlySeedsTheBaseline) {
  TimeSeriesStore store({1.0, 16});
  store.push(scaled_snapshot(1), 10.0);
  EXPECT_EQ(store.size(), 0u);
  TimeSeriesPoint p;
  EXPECT_FALSE(store.latest(&p));
  store.push(scaled_snapshot(2), 12.0);
  EXPECT_EQ(store.size(), 1u);
  EXPECT_TRUE(store.latest(&p));
  EXPECT_DOUBLE_EQ(p.t_s, 12.0);
  EXPECT_DOUBLE_EQ(p.dt_s, 2.0);
}

TEST(TimeSeries, DeltasMatchHandComputedSnapshots) {
  TimeSeriesStore store({1.0, 16});
  store.push(scaled_snapshot(1), 0.0);
  store.push(scaled_snapshot(3), 2.0, /*queue_depth=*/7);

  TimeSeriesPoint p;
  ASSERT_TRUE(store.latest(&p));
  // scale 1 -> 3 over dt = 2 s: completed 100 -> 300 is 100/s.
  EXPECT_EQ(p.completed_delta, 200u);
  EXPECT_EQ(p.submitted_delta, 220u);
  EXPECT_DOUBLE_EQ(p.qps, 100.0);
  // errors = rejected + deadline + invalid + aborted = 10 per scale.
  EXPECT_EQ(p.error_delta, 20u);
  EXPECT_DOUBLE_EQ(p.error_qps, 10.0);
  // cache: hits 30 -> 90 (+60), total 40 -> 120 (+80).
  EXPECT_DOUBLE_EQ(p.cache_hit_rate, 0.75);
  // gcups: +4e9 cells over +2 kernel-seconds.
  EXPECT_DOUBLE_EQ(p.gcups, 2.0);
  EXPECT_EQ(p.queue_depth, 7u);
  EXPECT_EQ(p.log_drops, 10u);
  // tier 1 (standard): 200 more requests over 2 s; its 100us window
  // latency survives into the merged histogram.
  EXPECT_DOUBLE_EQ(p.tier_qps[1], 100.0);
  EXPECT_EQ(p.latency.count, 200u);
  EXPECT_GT(p.tier_p99_s[1], 64e-6);
  EXPECT_LE(p.tier_p99_s[1], 128e-6);
  // query lengths: bin 8 gained 180, bin 5 gained 20 -> bin 8 dominates.
  EXPECT_EQ(p.length_bins[8], 180u);
  EXPECT_EQ(p.length_bins[5], 20u);
  EXPECT_EQ(p.dominant_length_bin, 8);
  // PMU cell delta: +4M instructions over +2M cycles -> IPC 2.
  ASSERT_EQ(p.pmu.size(), 1u);
  EXPECT_EQ(p.pmu[0].isa, 1u);
  EXPECT_EQ(p.pmu[0].spans, 20u);
  EXPECT_DOUBLE_EQ(p.pmu[0].ipc, 2.0);
  EXPECT_DOUBLE_EQ(p.pmu[0].backend_stall_fraction, 0.1);
  EXPECT_DOUBLE_EQ(p.pmu[0].effective_ghz, 3.0);
}

TEST(TimeSeries, RingEvictsOldestAtCapacity) {
  TimeSeriesStore store({1.0, 3});
  for (uint64_t i = 1; i <= 6; ++i)
    store.push(scaled_snapshot(i), static_cast<double>(i));
  EXPECT_EQ(store.size(), 3u);  // 5 points made, capacity 3
  const std::vector<TimeSeriesPoint> pts = store.points();
  ASSERT_EQ(pts.size(), 3u);
  EXPECT_DOUBLE_EQ(pts.front().t_s, 4.0);
  EXPECT_DOUBLE_EQ(pts.back().t_s, 6.0);
}

TEST(TimeSeries, WindowQueryFiltersOldPoints) {
  TimeSeriesStore store({1.0, 64});
  for (uint64_t i = 1; i <= 10; ++i)
    store.push(scaled_snapshot(i), static_cast<double>(i));
  EXPECT_EQ(store.points().size(), 9u);
  // Window 3 s back from the newest point (t = 10): t in [7, 10].
  EXPECT_EQ(store.points(3.0).size(), 4u);
  EXPECT_DOUBLE_EQ(store.points(3.0).front().t_s, 7.0);
}

TEST(TimeSeries, NonAdvancingClockReseedsInsteadOfDividingByZero) {
  TimeSeriesStore store({1.0, 16});
  store.push(scaled_snapshot(1), 5.0);
  store.push(scaled_snapshot(2), 5.0);  // same timestamp: reseed only
  EXPECT_EQ(store.size(), 0u);
  store.push(scaled_snapshot(3), 6.0);
  TimeSeriesPoint p;
  ASSERT_TRUE(store.latest(&p));
  // The baseline is the scale-2 snapshot, not scale-1.
  EXPECT_EQ(p.completed_delta, 100u);
}

TEST(TimeSeries, CounterResetClampsToZero) {
  TimeSeriesStore store({1.0, 16});
  store.push(scaled_snapshot(5), 0.0);
  store.push(scaled_snapshot(1), 1.0);  // counters went backwards
  TimeSeriesPoint p;
  ASSERT_TRUE(store.latest(&p));
  EXPECT_EQ(p.completed_delta, 0u);
  EXPECT_DOUBLE_EQ(p.qps, 0.0);
  EXPECT_DOUBLE_EQ(p.gcups, 0.0);
}

TEST(TimeSeries, SeriesNamesValidateAndSelect) {
  EXPECT_TRUE(TimeSeriesStore::is_series_name("qps"));
  EXPECT_TRUE(TimeSeriesStore::is_series_name("pmu"));
  EXPECT_TRUE(TimeSeriesStore::is_series_name("lengths"));
  EXPECT_FALSE(TimeSeriesStore::is_series_name("bogus"));
  EXPECT_FALSE(TimeSeriesStore::is_series_name(""));

  TimeSeriesStore store({1.0, 16});
  store.push(scaled_snapshot(1), 0.0);
  store.push(scaled_snapshot(2), 1.0);
  const std::string all = store.json();
  EXPECT_NE(all.find("\"qps\""), std::string::npos);
  EXPECT_NE(all.find("\"pmu\""), std::string::npos);
  EXPECT_NE(all.find("\"length_bins\""), std::string::npos);
  const std::string only_qps = store.json("qps");
  EXPECT_NE(only_qps.find("\"qps\""), std::string::npos);
  EXPECT_EQ(only_qps.find("\"pmu\""), std::string::npos);
  EXPECT_EQ(only_qps.find("\"cache_hit_rate\""), std::string::npos);
  const std::string two = store.json("qps, cache");
  EXPECT_NE(two.find("\"qps\""), std::string::npos);
  EXPECT_NE(two.find("\"cache_hit_rate\""), std::string::npos);
}

// TSan target: one pusher (the sampler role) racing readers (/varz
// scrapes and the SLO engine's points()); the store's mutex must make
// this clean.
TEST(TimeSeries, ConcurrentPushAndReadIsClean) {
  TimeSeriesStore store({1.0, 32});
  std::atomic<bool> stop{false};
  std::thread pusher([&] {
    for (uint64_t i = 1; i <= 2000; ++i)
      store.push(scaled_snapshot(i), static_cast<double>(i));
    stop.store(true, std::memory_order_release);
  });
  uint64_t reads = 0;
  while (!stop.load(std::memory_order_acquire)) {
    TimeSeriesPoint p;
    store.latest(&p);
    reads += store.points(8.0).size();
    if ((reads & 63) == 0) (void)store.json("qps", 4.0);
  }
  pusher.join();
  EXPECT_EQ(store.size(), 32u);
}

// ---------------------------------------------------------------------------
// SLO burn rates

/// Feed `store` one second of traffic per tick: `good` completions and
/// `bad` errors, each latency `lat_s`.
void feed(TimeSeriesStore& store, MetricsSnapshot& cum, double& t,
          uint64_t good, uint64_t bad, double lat_s = 100e-6,
          uint64_t lat_count = 0) {
  cum.completed += good;
  cum.aborted += bad;
  LatencyHistogram h;
  // Rebuild the cumulative tier histogram: carry the old buckets and add
  // this tick's samples.
  LatencyHistogram::Snapshot add;
  for (uint64_t i = 0; i < (lat_count ? lat_count : good); ++i)
    h.record(lat_s);
  add = h.snapshot();
  cum.tier_latency[1] =
      LatencyHistogram::Snapshot::merge(cum.tier_latency[1], add);
  t += 1.0;
  store.push(cum, t);
}

TEST(Slo, AvailabilityBurnMatchesHandMath) {
  TimeSeriesStore store({1.0, 600});
  SloOptions opt;
  opt.latency_target_s = 0;  // availability only
  opt.availability_objective = 0.999;
  opt.enter_evals = 1;
  opt.exit_evals = 1;
  SloEngine eng(opt, &store);

  MetricsSnapshot cum;
  double t = 0;
  store.push(cum, t);  // baseline
  // 10% errors against a 0.1% budget: burn = 100.
  for (int i = 0; i < 5; ++i) feed(store, cum, t, 90, 10);
  const SloStatus st = eng.evaluate(t);
  EXPECT_NEAR(st.availability_fast_burn, 100.0, 1e-6);
  EXPECT_NEAR(st.availability_slow_burn, 100.0, 1e-6);
  EXPECT_EQ(st.instant, AlertState::Firing);
  EXPECT_EQ(st.state, AlertState::Firing);  // enter_evals = 1
  EXPECT_DOUBLE_EQ(st.latency_fast_burn, 0.0);
}

TEST(Slo, LatencyBurnCountsHistogramTail) {
  TimeSeriesStore store({1.0, 600});
  SloOptions opt;
  opt.latency_target_s = 1e-3;  // 1 ms
  opt.latency_objective = 0.99;
  opt.availability_objective = 0;  // latency only
  opt.enter_evals = 1;
  SloEngine eng(opt, &store);

  MetricsSnapshot cum;
  double t = 0;
  store.push(cum, t);
  // Per tick: 90 requests at 100 us (fast), 10 at 5 ms (violations).
  for (int i = 0; i < 3; ++i) {
    feed(store, cum, t, 90, 0, 100e-6, 90);
    // Second push in the same tick would reseed; fold the slow samples
    // into the next tick instead:
    LatencyHistogram slow;
    for (int j = 0; j < 10; ++j) slow.record(5e-3);
    cum.tier_latency[1] = LatencyHistogram::Snapshot::merge(
        cum.tier_latency[1], slow.snapshot());
    cum.completed += 10;
  }
  store.push(cum, t + 0.5);  // flush the last tick's slow tail
  // Bad fraction ~0.1 against a 0.01 budget: burn ~10.
  const SloStatus st = eng.evaluate(t + 0.5);
  EXPECT_GT(st.latency_fast_burn, 5.0);
  EXPECT_LT(st.latency_fast_burn, 15.0);
  EXPECT_EQ(st.instant, AlertState::Warning);  // 6 <= burn < 14.4
  EXPECT_DOUBLE_EQ(st.availability_fast_burn, 0.0);
}

TEST(Slo, MultiWindowRequiresBothWindowsBurning) {
  // A burst that already ended: the fast window still sees only clean
  // traffic by the time it slides past, but the slow window remembers the
  // errors. min(fast, slow) must stay below threshold -> no alert.
  TimeSeriesStore store({1.0, 600});
  SloOptions opt;
  opt.latency_target_s = 0;
  opt.availability_objective = 0.999;
  opt.fast_window_s = 5;
  opt.slow_window_s = 60;
  opt.enter_evals = 1;
  SloEngine eng(opt, &store);

  MetricsSnapshot cum;
  double t = 0;
  store.push(cum, t);
  for (int i = 0; i < 3; ++i) feed(store, cum, t, 50, 50);  // the burst
  for (int i = 0; i < 10; ++i) feed(store, cum, t, 100, 0);  // recovery
  const SloStatus st = eng.evaluate(t);
  EXPECT_DOUBLE_EQ(st.availability_fast_burn, 0.0);  // fast window clean
  EXPECT_GT(st.availability_slow_burn, 14.4);        // slow still burning
  EXPECT_EQ(st.instant, AlertState::Ok);
}

TEST(Slo, HysteresisEscalatesAfterConsecutiveEvals) {
  TimeSeriesStore store({1.0, 600});
  SloOptions opt;
  opt.latency_target_s = 0;
  opt.availability_objective = 0.999;
  opt.enter_evals = 2;
  opt.exit_evals = 3;
  SloEngine eng(opt, &store);

  MetricsSnapshot cum;
  double t = 0;
  store.push(cum, t);
  feed(store, cum, t, 0, 100);  // 100% errors: burn 1000, instant firing
  SloStatus st = eng.evaluate(t);
  EXPECT_EQ(st.instant, AlertState::Firing);
  EXPECT_EQ(st.state, AlertState::Ok);  // 1 of 2 evals
  EXPECT_EQ(st.transitions, 0u);

  feed(store, cum, t, 0, 100);
  st = eng.evaluate(t);
  EXPECT_EQ(st.state, AlertState::Firing);  // 2nd consecutive: escalate
  EXPECT_EQ(st.transitions, 1u);
  EXPECT_DOUBLE_EQ(st.since_s, t);
}

TEST(Slo, HysteresisDeEscalatesAfterExitEvals) {
  TimeSeriesStore store({1.0, 600});
  SloOptions opt;
  opt.latency_target_s = 0;
  opt.availability_objective = 0.999;
  opt.fast_window_s = 2;  // short windows so recovery clears the burn
  opt.slow_window_s = 2;
  opt.enter_evals = 1;
  opt.exit_evals = 3;
  SloEngine eng(opt, &store);

  MetricsSnapshot cum;
  double t = 0;
  store.push(cum, t);
  feed(store, cum, t, 0, 100);
  SloStatus st = eng.evaluate(t);
  ASSERT_EQ(st.state, AlertState::Firing);

  // Slide the errors fully out of the 2 s windows, then evaluate clean
  // ticks: instant drops to Ok, but the filtered state holds for
  // exit_evals - 1 more evaluations.
  for (int i = 0; i < 3; ++i) feed(store, cum, t, 100, 0);
  for (int i = 0; i < 2; ++i) {
    feed(store, cum, t, 100, 0);
    st = eng.evaluate(t);
    EXPECT_EQ(st.instant, AlertState::Ok);
    EXPECT_EQ(st.state, AlertState::Firing) << "eval " << i;
  }
  feed(store, cum, t, 100, 0);
  st = eng.evaluate(t);
  EXPECT_EQ(st.state, AlertState::Ok);  // 3rd consecutive clean eval
  EXPECT_EQ(st.transitions, 2u);
}

TEST(Slo, FlappingBurnDoesNotFlapTheAlert) {
  TimeSeriesStore store({1.0, 600});
  SloOptions opt;
  opt.latency_target_s = 0;
  opt.availability_objective = 0.999;
  opt.fast_window_s = 0.5;  // narrower than the tick spacing: each
  opt.slow_window_s = 0.5;  // evaluation sees only its own tick
  opt.enter_evals = 2;
  opt.exit_evals = 2;
  SloEngine eng(opt, &store);

  MetricsSnapshot cum;
  double t = 0;
  store.push(cum, t);
  // Alternate bad/clean seconds: neither severity ever gets 2 consecutive
  // evaluations, so the filtered state never leaves Ok.
  for (int i = 0; i < 8; ++i) {
    feed(store, cum, t, i % 2 ? 100 : 0, i % 2 ? 0 : 100);
    const SloStatus st = eng.evaluate(t);
    EXPECT_EQ(st.state, AlertState::Ok) << "tick " << i;
  }
  EXPECT_EQ(eng.status().transitions, 0u);
}

TEST(Slo, JsonCarriesStateAndBurns) {
  TimeSeriesStore store({1.0, 16});
  SloOptions opt;
  opt.latency_target_s = 0.25;
  SloEngine eng(opt, &store);
  eng.evaluate(1.0);
  const std::string j = eng.json();
  EXPECT_NE(j.find("\"state\":\"ok\""), std::string::npos);
  EXPECT_NE(j.find("\"target_ms\":250"), std::string::npos);
  EXPECT_NE(j.find("\"evaluations\":1"), std::string::npos);
}

}  // namespace
}  // namespace swve::obs
