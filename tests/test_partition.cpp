#include <gtest/gtest.h>

#include "parallel/partition.hpp"
#include "seq/synthetic.hpp"

namespace swve::parallel {
namespace {

seq::SequenceDatabase make_db(uint64_t residues) {
  seq::SyntheticConfig cfg;
  cfg.seed = 5;
  cfg.target_residues = residues;
  return seq::SequenceDatabase::synthetic(cfg);
}

TEST(Partition, CoversDatabaseContiguously) {
  auto db = make_db(100'000);
  for (unsigned parts : {1u, 2u, 3u, 8u}) {
    auto ranges = partition_by_residues(db, parts);
    ASSERT_EQ(ranges.size(), parts);
    size_t prev = 0;
    for (auto [b, e] : ranges) {
      EXPECT_EQ(b, prev);
      EXPECT_LE(b, e);
      prev = e;
    }
    EXPECT_EQ(prev, db.size());
  }
}

TEST(Partition, ResidueBalanceWithinOneSequence) {
  auto db = make_db(500'000);
  const unsigned parts = 4;
  auto ranges = partition_by_residues(db, parts);
  const uint64_t ideal = db.total_residues() / parts;
  for (auto [b, e] : ranges) {
    uint64_t sum = 0;
    for (size_t i = b; i < e; ++i) sum += db[i].length();
    // Each part within ideal +- max sequence length.
    EXPECT_NEAR(static_cast<double>(sum), static_cast<double>(ideal),
                static_cast<double>(db.max_length()) + 1);
  }
}

TEST(Partition, EmptyDatabase) {
  seq::SequenceDatabase db;
  auto ranges = partition_by_residues(db, 4);
  for (auto [b, e] : ranges) EXPECT_EQ(b, e);
}

TEST(Partition, MorePartsThanSequences) {
  seq::SyntheticConfig cfg;
  cfg.seed = 6;
  cfg.target_residues = 300;
  cfg.min_length = 100;
  cfg.max_length = 200;
  seq::SequenceDatabase db = seq::SequenceDatabase::synthetic(cfg);
  ASSERT_LE(db.size(), 4u);
  auto ranges = partition_by_residues(db, 16);
  size_t covered = 0;
  for (auto [b, e] : ranges) covered += e - b;
  EXPECT_EQ(covered, db.size());
}

TEST(Partition, ZeroParts) {
  auto db = make_db(1000);
  EXPECT_TRUE(partition_by_residues(db, 0).empty());
}

TEST(Database, StatsAndByLength) {
  auto db = make_db(50'000);
  uint64_t total = 0;
  size_t mx = 0;
  for (size_t i = 0; i < db.size(); ++i) {
    total += db[i].length();
    mx = std::max(mx, db[i].length());
  }
  EXPECT_EQ(db.total_residues(), total);
  EXPECT_EQ(db.max_length(), mx);
  const auto& order = db.by_length();
  ASSERT_EQ(order.size(), db.size());
  for (size_t k = 1; k < order.size(); ++k)
    EXPECT_LE(db[order[k - 1]].length(), db[order[k]].length());
}

}  // namespace
}  // namespace swve::parallel
