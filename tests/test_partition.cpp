#include <gtest/gtest.h>

#include "parallel/partition.hpp"
#include "seq/synthetic.hpp"

namespace swve::parallel {
namespace {

seq::SequenceDatabase make_db(uint64_t residues) {
  seq::SyntheticConfig cfg;
  cfg.seed = 5;
  cfg.target_residues = residues;
  return seq::SequenceDatabase::synthetic(cfg);
}

TEST(Partition, CoversDatabaseContiguously) {
  auto db = make_db(100'000);
  for (unsigned parts : {1u, 2u, 3u, 8u}) {
    auto ranges = partition_by_residues(db, parts);
    ASSERT_EQ(ranges.size(), parts);
    size_t prev = 0;
    for (auto [b, e] : ranges) {
      EXPECT_EQ(b, prev);
      EXPECT_LE(b, e);
      prev = e;
    }
    EXPECT_EQ(prev, db.size());
  }
}

TEST(Partition, ResidueBalanceWithinOneSequence) {
  auto db = make_db(500'000);
  const unsigned parts = 4;
  auto ranges = partition_by_residues(db, parts);
  const uint64_t ideal = db.total_residues() / parts;
  for (auto [b, e] : ranges) {
    uint64_t sum = 0;
    for (size_t i = b; i < e; ++i) sum += db[i].length();
    // Each part within ideal +- max sequence length.
    EXPECT_NEAR(static_cast<double>(sum), static_cast<double>(ideal),
                static_cast<double>(db.max_length()) + 1);
  }
}

// A sequence far above the per-part residue share must not starve the parts
// after it: with fixed cumulative targets, a 100k outlier at the front
// consumed several parts' grid points at once and everything behind it
// landed on the last part (one thread running ~all the remaining work).
TEST(Partition, MegaSequenceDoesNotStarveLaterParts) {
  std::vector<seq::Sequence> seqs;
  seqs.push_back(seq::generate_sequence(1, 100'000));
  for (uint64_t s = 0; s < 64; ++s)
    seqs.push_back(seq::generate_sequence(s + 2, 200));
  seq::SequenceDatabase db(std::move(seqs));

  const unsigned parts = 8;
  auto ranges = partition_by_residues(db, parts);
  ASSERT_EQ(ranges.size(), parts);

  // Contiguous full cover, as always.
  size_t prev = 0;
  for (auto [b, e] : ranges) {
    EXPECT_EQ(b, prev);
    prev = e;
  }
  EXPECT_EQ(prev, db.size());

  // The outlier fills part 0 alone; the 64 x 200-residue tail must spread
  // over the remaining 7 parts instead of piling onto the last one.
  EXPECT_EQ(ranges[0], (std::pair<size_t, size_t>{0, 1}));
  const uint64_t tail_ideal = (64 * 200) / (parts - 1);
  for (unsigned p = 1; p < parts; ++p) {
    EXPECT_GT(ranges[p].second, ranges[p].first) << "part " << p << " empty";
    uint64_t sum = 0;
    for (size_t i = ranges[p].first; i < ranges[p].second; ++i)
      sum += db[i].length();
    EXPECT_NEAR(static_cast<double>(sum), static_cast<double>(tail_ideal),
                201.0)
        << "part " << p;
  }
}

TEST(Partition, EmptyDatabase) {
  seq::SequenceDatabase db;
  auto ranges = partition_by_residues(db, 4);
  for (auto [b, e] : ranges) EXPECT_EQ(b, e);
}

TEST(Partition, MorePartsThanSequences) {
  seq::SyntheticConfig cfg;
  cfg.seed = 6;
  cfg.target_residues = 300;
  cfg.min_length = 100;
  cfg.max_length = 200;
  seq::SequenceDatabase db = seq::SequenceDatabase::synthetic(cfg);
  ASSERT_LE(db.size(), 4u);
  auto ranges = partition_by_residues(db, 16);
  size_t covered = 0;
  for (auto [b, e] : ranges) covered += e - b;
  EXPECT_EQ(covered, db.size());
}

TEST(Partition, ZeroParts) {
  auto db = make_db(1000);
  EXPECT_TRUE(partition_by_residues(db, 0).empty());
}

TEST(Database, StatsAndByLength) {
  auto db = make_db(50'000);
  uint64_t total = 0;
  size_t mx = 0;
  for (size_t i = 0; i < db.size(); ++i) {
    total += db[i].length();
    mx = std::max(mx, db[i].length());
  }
  EXPECT_EQ(db.total_residues(), total);
  EXPECT_EQ(db.max_length(), mx);
  const auto& order = db.by_length();
  ASSERT_EQ(order.size(), db.size());
  for (size_t k = 1; k < order.size(); ++k)
    EXPECT_LE(db[order[k - 1]].length(), db[order[k]].length());
}

}  // namespace
}  // namespace swve::parallel
