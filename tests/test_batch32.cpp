#include <gtest/gtest.h>

#include <random>

#include "core/batch32.hpp"
#include "core/scalar_ref.hpp"
#include "seq/synthetic.hpp"
#include "simd/cpu.hpp"

namespace swve::core {
namespace {

seq::SequenceDatabase small_db(uint64_t seed, uint64_t residues, uint32_t min_len = 5,
                               uint32_t max_len = 300) {
  seq::SyntheticConfig cfg;
  cfg.seed = seed;
  cfg.target_residues = residues;
  cfg.min_length = min_len;
  cfg.max_length = max_len;
  return seq::SequenceDatabase::synthetic(cfg);
}

TEST(Batch32Db, RejectsBadLaneCounts) {
  auto db = small_db(1, 1000);
  EXPECT_THROW(Batch32Db(db, 16), std::invalid_argument);
  EXPECT_THROW(Batch32Db(db, 48), std::invalid_argument);
}

TEST(Batch32Db, PacksEverySequenceExactlyOnce) {
  auto db = small_db(2, 30'000);
  for (int lanes : {32, 64}) {
    Batch32Db bdb(db, lanes);
    std::vector<int> seen(db.size(), 0);
    for (size_t b = 0; b < bdb.batch_count(); ++b) {
      auto batch = bdb.batch(b);
      EXPECT_LE(batch.count, static_cast<uint32_t>(lanes));
      for (uint32_t k = 0; k < batch.count; ++k) ++seen[batch.seq_index[k]];
    }
    for (size_t s = 0; s < db.size(); ++s) EXPECT_EQ(seen[s], 1) << s;
  }
}

TEST(Batch32Db, TransposedColumnsHoldTheRightResidues) {
  auto db = small_db(3, 8'000);
  Batch32Db bdb(db, 32);
  for (size_t b = 0; b < bdb.batch_count(); ++b) {
    auto batch = bdb.batch(b);
    for (uint32_t k = 0; k < batch.count; ++k) {
      const seq::Sequence& s = db[batch.seq_index[k]];
      EXPECT_EQ(batch.seq_len[k], s.length());
      for (uint32_t j = 0; j < batch.max_len; ++j) {
        uint8_t got = batch.columns[static_cast<size_t>(j) * 32 + k];
        if (j < s.length())
          EXPECT_EQ(got, s.codes()[j]);
        else
          EXPECT_EQ(got, kBatchPadCode);
      }
      // Padding lanes beyond count:
      for (uint32_t k2 = batch.count; k2 < 32; ++k2)
        EXPECT_EQ(batch.columns[k2], kBatchPadCode);
    }
  }
}

TEST(Batch32Db, LengthSortedBatchesBoundPadding) {
  auto db = small_db(4, 60'000, 10, 500);
  Batch32Db bdb(db, 32);
  // Sorting by length keeps padding modest even with a wide distribution.
  EXPECT_LT(bdb.padding_overhead(), 1.0);
  for (size_t b = 0; b < bdb.batch_count(); ++b) {
    auto batch = bdb.batch(b);
    uint32_t mx = 0;
    for (uint32_t k = 0; k < batch.count; ++k) mx = std::max(mx, batch.seq_len[k]);
    EXPECT_EQ(batch.max_len, mx);
  }
}

class BatchScoreTest : public ::testing::TestWithParam<int> {};

TEST_P(BatchScoreTest, ScoresMatchGoldenForWholeDatabase) {
  const int lanes = GetParam();
  auto db = small_db(5, 25'000);
  Batch32Db bdb(db, lanes);
  Workspace ws;
  AlignConfig cfg;
  auto q = seq::generate_sequence(50, 100);
  auto scores = batch_scores(q, bdb, db, cfg, ws);
  ASSERT_EQ(scores.size(), db.size());
  for (size_t s = 0; s < db.size(); ++s)
    EXPECT_EQ(scores[s], ref_align(q, db[s], cfg).score) << "seq " << s;
}

TEST_P(BatchScoreTest, SaturatedLanesAreRescoredExactly) {
  const int lanes = GetParam();
  // Build a db containing a near-copy of the query: its 8-bit lane must
  // saturate and the rescoring ladder must recover the exact score.
  auto q = seq::generate_sequence(60, 500);
  std::vector<seq::Sequence> seqs;
  for (int i = 0; i < 40; ++i)
    seqs.push_back(seq::generate_sequence(61 + static_cast<uint64_t>(i), 80));
  seqs.push_back(seq::mutate(q, 62, 0.03));
  seq::SequenceDatabase db(std::move(seqs));
  Batch32Db bdb(db, lanes);
  Workspace ws;
  AlignConfig cfg;
  BatchSearchStats stats;
  auto scores = batch_scores(q, bdb, db, cfg, ws, &stats);
  EXPECT_GE(stats.rescored, 1u);
  for (size_t s = 0; s < db.size(); ++s)
    EXPECT_EQ(scores[s], ref_align(q, db[s], cfg).score) << "seq " << s;
}

TEST_P(BatchScoreTest, FixedSchemeAndLinearGaps) {
  const int lanes = GetParam();
  auto db = small_db(7, 12'000);
  Batch32Db bdb(db, lanes);
  Workspace ws;
  AlignConfig cfg;
  cfg.scheme = ScoreScheme::Fixed;
  cfg.match = 3;
  cfg.mismatch = -2;
  cfg.gap_model = GapModel::Linear;
  cfg.gap_extend = 2;
  auto q = seq::generate_sequence(70, 60);
  auto scores = batch_scores(q, bdb, db, cfg, ws);
  for (size_t s = 0; s < db.size(); ++s)
    EXPECT_EQ(scores[s], ref_align(q, db[s], cfg).score) << "seq " << s;
}

INSTANTIATE_TEST_SUITE_P(Lanes, BatchScoreTest, ::testing::Values(32, 64),
                         [](const auto& info) {
                           return "lanes" + std::to_string(info.param);
                         });

// A length-skewed database: mostly short sequences with a few huge outliers
// scattered through it, the worst case for db-order packing.
seq::SequenceDatabase skewed_db(uint64_t seed, int n_short, int n_long,
                                uint32_t long_len) {
  std::mt19937_64 rng(seed);
  std::vector<seq::Sequence> seqs;
  for (int i = 0; i < n_short; ++i)
    seqs.push_back(seq::generate_sequence(rng(), 30 + static_cast<uint32_t>(rng() % 70)));
  for (int i = 0; i < n_long; ++i) {
    auto pos = seqs.begin() + static_cast<std::ptrdiff_t>(rng() % (seqs.size() + 1));
    seqs.insert(pos, seq::generate_sequence(rng(), long_len));
  }
  return seq::SequenceDatabase(std::move(seqs));
}

TEST(Batch32Db, EveryPolicyPacksEverySequenceExactlyOnce) {
  auto db = skewed_db(11, 150, 2, 2000);
  for (PackingPolicy policy : {PackingPolicy::DbOrder, PackingPolicy::LengthSorted,
                               PackingPolicy::LengthBinned}) {
    Batch32Db bdb(db, 32, policy);
    EXPECT_EQ(bdb.policy(), policy);
    std::vector<int> seen(db.size(), 0);
    uint64_t real = 0, padded = 0;
    for (size_t b = 0; b < bdb.batch_count(); ++b) {
      auto batch = bdb.batch(b);
      uint64_t batch_real = 0;
      for (uint32_t k = 0; k < batch.count; ++k) {
        ++seen[batch.seq_index[k]];
        batch_real += batch.seq_len[k];
      }
      EXPECT_EQ(batch.real_residues, batch_real);
      real += batch.real_residues;
      padded += static_cast<uint64_t>(batch.max_len) * 32;
    }
    for (size_t s = 0; s < db.size(); ++s)
      EXPECT_EQ(seen[s], 1) << packing_policy_name(policy) << " seq " << s;
    EXPECT_EQ(bdb.real_residues(), db.total_residues());
    EXPECT_EQ(real, db.total_residues());
    EXPECT_EQ(bdb.padded_residues(), padded);
  }
}

TEST(Batch32Db, LengthAwarePoliciesBeatDbOrderOnSkewedDb) {
  auto db = skewed_db(12, 300, 3, 3000);
  Batch32Db naive(db, 32, PackingPolicy::DbOrder);
  Batch32Db sorted(db, 32, PackingPolicy::LengthSorted);
  Batch32Db binned(db, 32, PackingPolicy::LengthBinned);
  // Length-sorted packing is padding-optimal; binning approximates it while
  // keeping db order inside each bin. Both must clearly beat naive order,
  // where every batch holding an outlier pads 31 lanes to its length.
  // (Even optimal packing pays for the outliers' own batch — a batch of 3
  // long lanes still pads the other 29 — so assert the relative ordering
  // and a clear margin over naive, not an absolute figure.)
  EXPECT_GT(sorted.packing_efficiency(), 2 * naive.packing_efficiency());
  EXPECT_GT(binned.packing_efficiency(), 2 * naive.packing_efficiency());
  EXPECT_GE(sorted.packing_efficiency(), binned.packing_efficiency());
  EXPECT_LT(naive.packing_efficiency(), 0.5);
}

TEST_P(BatchScoreTest, ScoresIdenticalAcrossPackingPolicies) {
  const int lanes = GetParam();
  auto db = skewed_db(13, 120, 2, 1500);
  Workspace ws;
  AlignConfig cfg;
  auto q = seq::generate_sequence(80, 120);
  std::vector<int> ref_scores;
  for (PackingPolicy policy : {PackingPolicy::DbOrder, PackingPolicy::LengthSorted,
                               PackingPolicy::LengthBinned}) {
    Batch32Db bdb(db, lanes, policy);
    auto scores = batch_scores(q, bdb, db, cfg, ws);
    ASSERT_EQ(scores.size(), db.size());
    if (ref_scores.empty()) {
      ref_scores = scores;
      for (size_t s = 0; s < db.size(); ++s)
        ASSERT_EQ(scores[s], ref_align(q, db[s], cfg).score) << "seq " << s;
    } else {
      EXPECT_EQ(scores, ref_scores) << packing_policy_name(policy);
    }
  }
}

TEST(BatchScores, RescoreLadderClimbsTo16AndThen32Bits) {
  // Fixed match=30 makes saturation cheap to provoke: an identical pair of
  // length L scores 30*L, so L=400 (12000) needs the 16-bit rung and
  // L=1200 (36000) exceeds int16 and needs the 32-bit rung. Both must come
  // back exact, alongside short sequences that never left the 8-bit kernel.
  auto q = seq::generate_sequence(90, 1200);
  std::vector<uint8_t> prefix(q.codes().begin(), q.codes().begin() + 400);
  std::vector<seq::Sequence> seqs;
  for (int i = 0; i < 40; ++i)
    seqs.push_back(seq::generate_sequence(91 + static_cast<uint64_t>(i), 60));
  seqs.emplace_back("w16", prefix, seq::Alphabet::protein());    // index 40
  seqs.push_back(seq::mutate(q, 92, 0.0));                       // index 41
  seq::SequenceDatabase db(std::move(seqs));
  AlignConfig cfg;
  cfg.scheme = ScoreScheme::Fixed;
  cfg.match = 30;
  cfg.mismatch = -3;
  Workspace ws;
  for (int lanes : {32, 64}) {
    Batch32Db bdb(db, lanes);
    BatchSearchStats stats;
    auto scores = batch_scores(q, bdb, db, cfg, ws, &stats);
    EXPECT_GE(stats.rescored, 2u) << lanes;      // both planted sequences
    EXPECT_GT(stats.rescored_cells, 0u);
    EXPECT_EQ(scores[40], 30 * 400) << lanes;    // exact prefix match
    EXPECT_EQ(scores[41], 30 * 1200) << lanes;   // exact full-length match
    EXPECT_GT(scores[41], 32767) << "must have used the 32-bit rung";
    for (size_t s = 0; s < db.size(); ++s)
      EXPECT_EQ(scores[s], ref_align(q, db[s], cfg).score) << lanes << "/" << s;
  }
}

TEST(BatchScores, StatsAccountUsefulVersusPaddedCells) {
  auto db = skewed_db(14, 100, 2, 1000);
  Workspace ws;
  AlignConfig cfg;
  auto q = seq::generate_sequence(81, 100);
  for (PackingPolicy policy : {PackingPolicy::DbOrder, PackingPolicy::LengthSorted}) {
    Batch32Db bdb(db, 32, policy);
    BatchSearchStats stats;
    batch_scores(q, bdb, db, cfg, ws, &stats);
    EXPECT_EQ(stats.useful_cells8, db.total_residues() * q.length());
    EXPECT_EQ(stats.cells8, bdb.padded_residues() * q.length());
    EXPECT_NEAR(stats.packing_efficiency(), bdb.packing_efficiency(), 1e-12);
  }
}

TEST(BatchScores, EmptyQueryScoresAllZero) {
  auto db = small_db(8, 5'000);
  Batch32Db bdb(db, 32);
  Workspace ws;
  AlignConfig cfg;
  seq::Sequence e("e", "", seq::Alphabet::protein());
  auto scores = batch_scores(e, bdb, db, cfg, ws);
  for (int s : scores) EXPECT_EQ(s, 0);
}

TEST(BatchScores, TracebackRequestRejected) {
  auto db = small_db(9, 5'000);
  Batch32Db bdb(db, 32);
  Workspace ws;
  AlignConfig cfg;
  cfg.traceback = true;
  auto q = seq::generate_sequence(71, 50);
  EXPECT_THROW(batch_scores(q, bdb, db, cfg, ws), std::invalid_argument);
}

TEST(BatchKernel, ScalarEngineMatchesSimdEngines) {
  auto db = small_db(10, 10'000);
  AlignConfig cfg;
  auto q = seq::generate_sequence(72, 90);
  Workspace ws;
  for (int lanes : {32, 64}) {
    Batch32Db bdb(db, lanes);
    for (size_t b = 0; b < bdb.batch_count(); ++b) {
      auto batch = bdb.batch(b);
      Batch8Result ref =
          batch32_u8_scalar(q, batch.columns, batch.max_len, lanes, cfg, ws);
      Batch8Result got =
          batch32_align_u8(q, batch, lanes, cfg, ws, simd::resolve_isa(simd::Isa::Auto));
      for (int k = 0; k < lanes; ++k)
        EXPECT_EQ(got.max_score[k], ref.max_score[k]) << "batch " << b << " lane " << k;
      EXPECT_EQ(got.saturated_mask, ref.saturated_mask);
    }
  }
}

}  // namespace
}  // namespace swve::core
