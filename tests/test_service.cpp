// AlignService: the async request/future front door (ISSUE 1 tentpole).
//
// Covers: future completion order, deadline expiry (queued and mid-run),
// queue-full backpressure, bit-identical results vs the direct drivers for
// several thread counts and both search modes, per-request config
// validation failing the future, the delivery override hook, and the
// metrics snapshot.
#include <gtest/gtest.h>

#include <chrono>
#include <future>
#include <vector>

#include "align/batch_server.hpp"
#include "align/db_search.hpp"
#include "core/dispatch.hpp"
#include "seq/synthetic.hpp"
#include "service/align_service.hpp"

namespace swve::service {
namespace {

using Code = core::ConfigError::Code;
using std::chrono::milliseconds;

seq::SequenceDatabase make_db(uint64_t residues, uint64_t seed = 15) {
  seq::SyntheticConfig cfg;
  cfg.seed = seed;
  cfg.target_residues = residues;
  cfg.min_length = 20;
  cfg.max_length = 400;
  return seq::SequenceDatabase::synthetic(cfg);
}

AlignRequest pairwise_request(uint64_t seed, int qlen = 80, int rlen = 120) {
  AlignRequest rq;
  rq.query = seq::generate_sequence(seed, qlen);
  rq.reference = seq::generate_sequence(seed + 1, rlen);
  return rq;
}

template <typename Future>
Code failure_code(Future& fut) {
  try {
    fut.get();
  } catch (const ServiceError& e) {
    return e.code();
  }
  return Code::Ok;
}

TEST(AlignService, PairwiseMatchesAligner) {
  ServiceOptions opt;
  opt.pool_threads = 2;
  AlignService svc(opt);

  AlignRequest rq = pairwise_request(71);
  rq.options.traceback = true;
  seq::Sequence q = rq.query, r = rq.reference;

  AlignResponse resp = svc.submit(std::move(rq)).get();

  align::AlignConfig cfg;
  cfg.traceback = true;
  align::Aligner direct(cfg);
  core::Alignment want = direct.align(q, r);
  EXPECT_EQ(resp.alignment.score, want.score);
  EXPECT_EQ(resp.alignment.end_query, want.end_query);
  EXPECT_EQ(resp.alignment.end_ref, want.end_ref);
  EXPECT_EQ(resp.alignment.cigar, want.cigar);
  EXPECT_EQ(resp.trace.scenario, Scenario::Pairwise);
  EXPECT_GT(resp.trace.cells, 0u);
  EXPECT_GE(resp.trace.queue_wait_s, 0.0);
}

TEST(AlignService, FifoCompletionOrderWithOneExecutor) {
  ServiceOptions opt;
  opt.pool_threads = 1;
  opt.executors = 1;  // strict FIFO
  opt.start_paused = true;
  AlignService svc(opt);

  std::vector<std::future<AlignResponse>> futs;
  for (int i = 0; i < 8; ++i)
    futs.push_back(svc.submit(pairwise_request(100 + i)));
  svc.resume();

  uint64_t prev = 0;
  for (size_t i = 0; i < futs.size(); ++i) {
    AlignResponse r = futs[i].get();
    if (i > 0) EXPECT_EQ(r.trace.exec_sequence, prev + 1) << i;
    prev = r.trace.exec_sequence;
  }
}

TEST(AlignService, QueueFullRejectionWhilePaused) {
  ServiceOptions opt;
  opt.queue_capacity = 3;
  opt.start_paused = true;
  AlignService svc(opt);

  std::vector<std::future<AlignResponse>> ok;
  for (int i = 0; i < 3; ++i) ok.push_back(svc.submit(pairwise_request(10 + i)));
  EXPECT_EQ(svc.queue_depth(), 3u);

  auto rejected = svc.submit(pairwise_request(50));
  EXPECT_EQ(failure_code(rejected), Code::QueueFull);

  svc.resume();
  for (auto& f : ok) EXPECT_NO_THROW(f.get());

  perf::MetricsSnapshot m = svc.metrics();
  EXPECT_EQ(m.rejected_queue_full, 1u);
  EXPECT_EQ(m.submitted, 3u);
  EXPECT_EQ(m.completed, 3u);
}

TEST(AlignService, DeadlineExpiresInQueue) {
  ServiceOptions opt;
  opt.start_paused = true;
  AlignService svc(opt);

  AlignRequest rq = pairwise_request(7);
  rq.options.deadline = milliseconds(1);
  auto fut = svc.submit(std::move(rq));
  std::this_thread::sleep_for(milliseconds(20));
  svc.resume();

  EXPECT_EQ(failure_code(fut), Code::DeadlineExceeded);
  EXPECT_EQ(svc.metrics().deadline_expired, 1u);
}

TEST(AlignService, DeadlineExpiresMidSearch) {
  auto db = make_db(400'000);
  ServiceOptions opt;
  opt.pool_threads = 1;
  AlignService svc(db, opt);

  SearchRequest rq;
  rq.query = seq::generate_sequence(90, 200);
  // Long enough to enter execution, far too short to scan 400k residues:
  // the engine notices between sequences and reports truncation.
  rq.options.deadline = milliseconds(1);
  auto fut = svc.submit_search(std::move(rq));
  EXPECT_EQ(failure_code(fut), Code::DeadlineExceeded);
  EXPECT_EQ(svc.metrics().deadline_expired, 1u);
  EXPECT_EQ(svc.metrics().completed, 0u);
}

TEST(AlignService, SearchMatchesDatabaseSearchForEveryThreadCount) {
  auto db = make_db(120'000);
  auto q = seq::generate_sequence(90, 150);

  for (unsigned threads : {1u, 2u, 3u}) {
    for (align::SearchMode mode :
         {align::SearchMode::Diagonal, align::SearchMode::Batch}) {
      parallel::ThreadPool pool(threads);
      align::DatabaseSearch direct(db, align::AlignConfig{}, mode);
      align::SearchResult want = direct.search(q, 10, &pool);

      ServiceOptions opt;
      opt.pool_threads = threads;
      AlignService svc(db, opt);
      SearchRequest rq;
      rq.query = q;
      rq.mode = mode;
      rq.options.top_k = 10;
      SearchResponse got = svc.submit_search(std::move(rq)).get();

      ASSERT_EQ(got.result.hits.size(), want.hits.size())
          << threads << " threads, mode " << static_cast<int>(mode);
      for (size_t k = 0; k < want.hits.size(); ++k) {
        EXPECT_EQ(got.result.hits[k].seq_index, want.hits[k].seq_index) << k;
        EXPECT_EQ(got.result.hits[k].score, want.hits[k].score) << k;
        EXPECT_EQ(got.result.hits[k].end_query, want.hits[k].end_query) << k;
        EXPECT_EQ(got.result.hits[k].end_ref, want.hits[k].end_ref) << k;
      }
      EXPECT_FALSE(got.result.truncated);
      EXPECT_EQ(got.trace.scenario, Scenario::Search);
    }
  }
}

TEST(AlignService, BatchMatchesBatchServerForEveryThreadCount) {
  auto db = make_db(100'000);
  std::vector<seq::Sequence> queries = seq::make_query_ladder(33, 6, 60, 300);

  for (unsigned threads : {1u, 3u}) {
    parallel::ThreadPool pool(threads);
    align::BatchServer direct(db, align::AlignConfig{});
    auto want = direct.run(queries, 5, &pool);

    ServiceOptions opt;
    opt.pool_threads = threads;
    AlignService svc(db, opt);
    BatchRequest rq;
    rq.queries = queries;
    rq.options.top_k = 5;
    BatchResponse got = svc.submit_batch(std::move(rq)).get();

    ASSERT_EQ(got.results.size(), want.size());
    for (size_t qi = 0; qi < want.size(); ++qi) {
      ASSERT_EQ(got.results[qi].result.hits.size(),
                want[qi].result.hits.size())
          << qi;
      for (size_t k = 0; k < want[qi].result.hits.size(); ++k) {
        EXPECT_EQ(got.results[qi].result.hits[k].seq_index,
                  want[qi].result.hits[k].seq_index);
        EXPECT_EQ(got.results[qi].result.hits[k].score,
                  want[qi].result.hits[k].score);
      }
    }
    EXPECT_EQ(got.trace.scenario, Scenario::Batch);
  }
}

TEST(AlignService, BadConfigFailsFutureNotThrow) {
  AlignService svc;
  AlignRequest rq = pairwise_request(3);
  core::AlignConfig bad;
  bad.gap_open = 1;
  bad.gap_extend = 5;  // affine open < extend
  rq.options.config = bad;
  std::future<AlignResponse> fut;
  EXPECT_NO_THROW(fut = svc.submit(std::move(rq)));
  EXPECT_EQ(failure_code(fut), Code::OpenLessThanExtend);
  EXPECT_EQ(svc.metrics().invalid_request, 1u);
}

TEST(AlignService, SearchWithoutDatabaseFails) {
  AlignService svc;
  SearchRequest rq;
  rq.query = seq::generate_sequence(4, 50);
  auto fut = svc.submit_search(std::move(rq));
  EXPECT_EQ(failure_code(fut), Code::NoDatabase);
}

TEST(AlignService, ShutdownFailsQueuedRequests) {
  std::future<AlignResponse> fut;
  {
    ServiceOptions opt;
    opt.start_paused = true;
    AlignService svc(opt);
    fut = svc.submit(pairwise_request(8));
  }  // destructor: queued request aborted
  EXPECT_EQ(failure_code(fut), Code::ShuttingDown);
}

TEST(AlignService, MetricsSnapshotAndDump) {
  auto db = make_db(60'000);
  ServiceOptions opt;
  opt.pool_threads = 2;
  AlignService svc(db, opt);

  for (int i = 0; i < 4; ++i) svc.submit(pairwise_request(200 + i)).get();
  SearchRequest srq;
  srq.query = seq::generate_sequence(90, 100);
  svc.submit_search(std::move(srq)).get();

  perf::MetricsSnapshot m = svc.metrics();
  EXPECT_EQ(m.submitted, 5u);
  EXPECT_EQ(m.completed, 5u);
  EXPECT_EQ(m.pairwise, 4u);
  EXPECT_EQ(m.search, 1u);
  EXPECT_GT(m.cells, 0u);
  EXPECT_GT(m.aggregate_gcups(), 0.0);
  EXPECT_EQ(m.queue_wait.count, 5u);
  EXPECT_EQ(m.kernel_time.count, 5u);
  std::string dump = m.to_string();
  EXPECT_NE(dump.find("completed 5"), std::string::npos) << dump;
  EXPECT_NE(dump.find("GCUPS"), std::string::npos) << dump;
}

TEST(AlignService, DeliveryOverridePinsTracePath) {
  const simd::Isa isa = simd::resolve_isa(simd::Isa::Auto);
  core::set_delivery_override(isa, core::ScoreDelivery::Fill);
  EXPECT_EQ(core::resolved_delivery(isa), core::ScoreDelivery::Fill);

  AlignService svc;
  AlignRequest rq = pairwise_request(91);
  seq::Sequence q = rq.query, r = rq.reference;
  AlignResponse resp = svc.submit(std::move(rq)).get();
  EXPECT_EQ(resp.trace.delivery, core::ScoreDelivery::Fill);

  // Pinning must not change results: Fill and Gather are different roads to
  // the same scores.
  align::AlignConfig cfg;
  cfg.delivery = core::ScoreDelivery::Gather;
  align::Aligner gather(cfg);
  EXPECT_EQ(resp.alignment.score, gather.align(q, r).score);

  core::set_delivery_override(isa, core::ScoreDelivery::Auto);  // clear pin
}

TEST(AlignConfigTryValidate, ReturnsMachineReadableCodes) {
  core::AlignConfig ok;
  EXPECT_TRUE(ok.try_validate().ok());

  core::AlignConfig bad = ok;
  bad.matrix = nullptr;
  EXPECT_EQ(bad.try_validate().error().code, Code::MissingMatrix);

  bad = ok;
  bad.gap_extend = -1;
  EXPECT_EQ(bad.try_validate().error().code, Code::NegativeGapPenalty);

  bad = ok;
  bad.scheme = core::ScoreScheme::Fixed;
  bad.match = -5;
  bad.mismatch = 0;
  EXPECT_EQ(bad.try_validate().error().code, Code::MatchLessThanMismatch);
  EXPECT_STREQ(core::ConfigError::code_name(Code::QueueFull), "queue_full");
}

TEST(AlignService, TraceSinkCapturesRequestSpans) {
  auto db = make_db(60'000);
  obs::TraceSink sink;
  ServiceOptions opt;
  opt.pool_threads = 2;
  opt.trace_sink = &sink;
  AlignService svc(db, opt);

  AlignResponse presp = svc.submit(pairwise_request(300)).get();
  SearchRequest srq;
  srq.query = seq::generate_sequence(90, 120);
  SearchResponse sresp = svc.submit_search(std::move(srq)).get();
  srq.query = seq::generate_sequence(91, 120);
  srq.mode = align::SearchMode::Batch;
  SearchResponse bresp = svc.submit_search(std::move(srq)).get();

  EXPECT_NE(presp.trace.trace_id, sresp.trace.trace_id);
  EXPECT_GT(presp.trace.trace_id, 0u);

  auto events = sink.snapshot_events();
  auto count = [&](const char* name, uint64_t trace_id) {
    size_t n = 0;
    for (const auto& e : events)
      if (std::string(e.name) == name && e.trace_id == trace_id) ++n;
    return n;
  };
  // Every request recorded exactly one queue-wait and one dispatch span.
  EXPECT_EQ(count("queue_wait", presp.trace.trace_id), 1u);
  EXPECT_EQ(count("dispatch.pairwise", presp.trace.trace_id), 1u);
  EXPECT_EQ(count("chunk.pairwise", presp.trace.trace_id), 1u);
  EXPECT_EQ(count("dispatch.search", sresp.trace.trace_id), 1u);
  EXPECT_GE(count("chunk.search_diagonal", sresp.trace.trace_id), 1u);
  EXPECT_GE(count("chunk.search_batch", bresp.trace.trace_id), 1u);

  // Chunk spans carry kernel annotations: ISA and DP cells.
  uint64_t chunk_cells = 0;
  for (const auto& e : events) {
    if (std::string(e.name) != "chunk.search_diagonal" ||
        e.trace_id != sresp.trace.trace_id)
      continue;
    chunk_cells += e.cells;
    EXPECT_NE(e.isa, simd::Isa::Auto);
    EXPECT_EQ(e.trunc, obs::TruncCause::None);
  }
  EXPECT_EQ(chunk_cells, sresp.result.stats.cells);

  // The exported Chrome trace is loadable JSON with those spans.
  std::string json = sink.chrome_trace_json();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"chunk.search_diagonal\""), std::string::npos);
  EXPECT_NE(json.find("\"isa\""), std::string::npos);
  EXPECT_NE(json.find("\"cells\""), std::string::npos);
}

TEST(AlignService, TraceMarksDeadlineTruncation) {
  auto db = make_db(400'000);
  obs::TraceSink sink;
  ServiceOptions opt;
  opt.pool_threads = 1;
  opt.trace_sink = &sink;
  AlignService svc(db, opt);

  SearchRequest rq;
  rq.query = seq::generate_sequence(90, 200);
  // Generous enough to reliably enter execution, far too short to scan 400k
  // residues on one thread: truncation happens mid-engine.
  rq.options.deadline = milliseconds(5);
  auto fut = svc.submit_search(std::move(rq));
  EXPECT_EQ(failure_code(fut), Code::DeadlineExceeded);

  bool saw_deadline_trunc = false;
  for (const auto& e : sink.snapshot_events())
    if (e.trunc == obs::TruncCause::Deadline) saw_deadline_trunc = true;
  EXPECT_TRUE(saw_deadline_trunc);
}

TEST(AlignService, DumpMetricsFormats) {
  auto db = make_db(60'000);
  ServiceOptions opt;
  opt.pool_threads = 2;
  AlignService svc(db, opt);
  svc.submit(pairwise_request(310)).get();
  SearchRequest srq;
  srq.query = seq::generate_sequence(92, 100);
  svc.submit_search(std::move(srq)).get();

  std::string text = svc.dump_metrics(obs::MetricsFormat::Text);
  EXPECT_NE(text.find("swve service metrics"), std::string::npos);
  EXPECT_NE(text.find("window(60s)"), std::string::npos);
  EXPECT_NE(text.find("pool:"), std::string::npos);
  EXPECT_NE(text.find("target "), std::string::npos);

  std::string prom = svc.dump_metrics(obs::MetricsFormat::Prometheus);
  EXPECT_NE(prom.find("swve_requests_completed_total{scenario=\"pairwise\"} 1"),
            std::string::npos)
      << prom;
  EXPECT_NE(prom.find("swve_gcups_window{window_s=\"60\"}"), std::string::npos);
  EXPECT_NE(prom.find("swve_kernel_target_requests_total{isa="),
            std::string::npos);
  EXPECT_NE(prom.find("swve_queue_wait_seconds_bucket{le=\"+Inf\"} 2"),
            std::string::npos);

  std::string json = svc.dump_metrics(obs::MetricsFormat::Json);
  EXPECT_NE(json.find("\"requests\""), std::string::npos);
  EXPECT_NE(json.find("\"window\""), std::string::npos);
  EXPECT_NE(json.find("\"targets\""), std::string::npos);

  // Pool utilization accounting: the search fanned out over the pool.
  perf::MetricsSnapshot m = svc.metrics();
  EXPECT_EQ(m.pool_threads, 2u);
  EXPECT_GT(m.pool_jobs, 0u);
  EXPECT_GT(m.window_cells, 0u);
  EXPECT_GT(m.window_gcups(), 0.0);
  for (int i = 0; i < perf::MetricsSnapshot::kIsas; ++i) {
    // The pairwise and search requests were attributed to exactly one
    // diagonal-target ISA each (they resolve to the same ISA here).
    if (m.target_requests[i][0] > 0)
      EXPECT_GT(m.target_cells[i][0], 0u);
  }
}

TEST(AlignService, SamplerCollectsTimeSeries) {
  ServiceOptions opt;
  opt.sampler_period_s = 0.02;
  opt.sampler_freq_probe_ms = 1.0;
  AlignService svc(opt);
  svc.submit(pairwise_request(320)).get();
  std::this_thread::sleep_for(milliseconds(120));

  ASSERT_NE(svc.sampler(), nullptr);
  std::vector<obs::Sample> samples = svc.samples();
  ASSERT_GE(samples.size(), 2u);
  for (size_t i = 1; i < samples.size(); ++i)
    EXPECT_GE(samples[i].t_s, samples[i - 1].t_s);  // chronological
  EXPECT_GT(samples.back().ghz, 0.1);
  EXPECT_GE(samples.back().completed, 1u);
  std::string json = svc.sampler()->json();
  EXPECT_NE(json.find("\"samples\""), std::string::npos);
  EXPECT_NE(json.find("\"ghz\""), std::string::npos);
}

TEST(AlignService, TopdownSamplingAttachesBreakdown) {
  ServiceOptions opt;
  opt.topdown_every_n = 1;  // every request
  AlignService svc(opt);
  AlignResponse resp = svc.submit(pairwise_request(330, 200, 300)).get();
  ASSERT_TRUE(resp.trace.topdown.has_value());
  const perf::TopDownResult& td = *resp.trace.topdown;
  EXPECT_FALSE(td.source.empty());
  EXPECT_GE(td.retiring, 0.0);
  EXPECT_LE(td.retiring + td.frontend_bound + td.bad_speculation +
                td.backend_bound,
            1.0 + 1e-6);

  // Disabled sampling attaches nothing.
  AlignService plain;
  EXPECT_FALSE(
      plain.submit(pairwise_request(331)).get().trace.topdown.has_value());
}

TEST(AlignService, BlockingOverflowEventuallyAccepts) {
  ServiceOptions opt;
  opt.queue_capacity = 1;
  opt.overflow = ServiceOptions::Overflow::Block;
  AlignService svc(opt);

  // With Block, every submit succeeds (the submitter stalls instead of
  // being rejected); all futures must complete.
  std::vector<std::future<AlignResponse>> futs;
  for (int i = 0; i < 6; ++i) futs.push_back(svc.submit(pairwise_request(i)));
  for (auto& f : futs) EXPECT_NO_THROW(f.get());
  EXPECT_EQ(svc.metrics().rejected_queue_full, 0u);
  EXPECT_EQ(svc.metrics().completed, 6u);
}

}  // namespace
}  // namespace swve::service
