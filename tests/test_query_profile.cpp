#include <gtest/gtest.h>

#include "matrix/query_profile.hpp"
#include "seq/synthetic.hpp"

namespace swve::matrix {
namespace {

using seq::Alphabet;
using seq::kMatrixStride;

TEST(StripedProfile, EntriesMatchMatrix) {
  auto q = seq::generate_sequence(1, 53);
  const ScoreMatrix& m = ScoreMatrix::blosum62();
  const int lanes = 16;
  StripedProfile<int16_t> prof(q, m, lanes, int16_t{-30000}, 0);
  const int seg = prof.seg_len();
  EXPECT_EQ(seg, (53 + lanes - 1) / lanes);
  for (int c = 0; c < kMatrixStride; ++c) {
    const int16_t* row = prof.row(static_cast<uint8_t>(c));
    for (int v = 0; v < seg; ++v)
      for (int k = 0; k < lanes; ++k) {
        int i = k * seg + v;
        int16_t expect =
            i < 53 ? static_cast<int16_t>(
                         m.score(q.codes()[static_cast<size_t>(i)],
                                 static_cast<uint8_t>(c)))
                   : int16_t{-30000};
        EXPECT_EQ(row[v * lanes + k], expect) << "c=" << c << " v=" << v << " k=" << k;
      }
  }
}

TEST(StripedProfile, BiasedUnsigned) {
  auto q = seq::generate_sequence(2, 20);
  const ScoreMatrix& m = ScoreMatrix::blosum62();
  StripedProfile<uint8_t> prof(q, m, 32, uint8_t{0}, m.bias());
  const uint8_t* row = prof.row(0);  // db letter 'A'
  for (int v = 0; v < prof.seg_len(); ++v)
    for (int k = 0; k < 32; ++k) {
      int i = k * prof.seg_len() + v;
      if (i < 20)
        EXPECT_EQ(row[v * 32 + k],
                  m.score(q.codes()[static_cast<size_t>(i)], 0) + m.bias());
    }
}

TEST(StripedProfile, EmptyQueryKeepsNonEmptyRows) {
  seq::Sequence q("e", "", Alphabet::protein());
  StripedProfile<int16_t> prof(q, ScoreMatrix::blosum62(), 16, int16_t{-1}, 0);
  EXPECT_GE(prof.seg_len(), 1);
  EXPECT_EQ(prof.query_length(), 0);
}

TEST(StripedProfile, BadLanesThrow) {
  seq::Sequence q("q", "AR", Alphabet::protein());
  EXPECT_THROW(StripedProfile<int16_t>(q, ScoreMatrix::blosum62(), 0, int16_t{0}, 0),
               std::invalid_argument);
}

TEST(SequentialProfile, EntriesMatchMatrixWithPadding) {
  auto q = seq::generate_sequence(3, 37);
  const ScoreMatrix& m = ScoreMatrix::pam250();
  SequentialProfile<int32_t> prof(q, m, 8, int32_t{-99}, 0);
  for (int c = 0; c < kMatrixStride; ++c) {
    const int32_t* row = prof.row(static_cast<uint8_t>(c));
    for (int i = 0; i < 37; ++i)
      EXPECT_EQ(row[i],
                m.score(q.codes()[static_cast<size_t>(i)], static_cast<uint8_t>(c)));
    for (int i = 37; i < 37 + 8; ++i) EXPECT_EQ(row[i], -99);
  }
}

TEST(SequentialProfile, NegativePaddingThrows) {
  seq::Sequence q("q", "AR", Alphabet::protein());
  EXPECT_THROW(
      SequentialProfile<int16_t>(q, ScoreMatrix::blosum62(), -1, int16_t{0}, 0),
      std::invalid_argument);
}

}  // namespace
}  // namespace swve::matrix
