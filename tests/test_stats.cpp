#include <gtest/gtest.h>

#include <cmath>

#include "align/db_search.hpp"
#include "align/stats.hpp"
#include "seq/synthetic.hpp"

namespace swve::align {
namespace {

std::span<const double> protein_bg20() {
  // First 20 entries (real amino acids) of the Robinson-Robinson background,
  // renormalized.
  static const std::vector<double> bg = [] {
    auto v = seq::protein_background();
    v.resize(20);
    double s = 0;
    for (double x : v) s += x;
    for (double& x : v) x /= s;
    return v;
  }();
  return bg;
}

TEST(Stats, UngappedLambdaMatchesPublishedBlosum62) {
  KarlinParams p = karlin_ungapped(matrix::ScoreMatrix::blosum62(), protein_bg20());
  // Published ungapped lambda for BLOSUM62 with standard composition: 0.318.
  EXPECT_NEAR(p.lambda, 0.318, 0.02);
  EXPECT_GT(p.H, 0.2);
  EXPECT_LT(p.H, 0.6);
  EXPECT_FALSE(p.gapped);
}

TEST(Stats, UngappedLambdaOrdersWithMatrixStringency) {
  // Stricter matrices (higher-identity targets) have larger lambda.
  double l45 = karlin_ungapped(matrix::ScoreMatrix::blosum45(), protein_bg20()).lambda;
  double l62 = karlin_ungapped(matrix::ScoreMatrix::blosum62(), protein_bg20()).lambda;
  double l90 = karlin_ungapped(matrix::ScoreMatrix::blosum90(), protein_bg20()).lambda;
  EXPECT_LT(l45, l62);
  EXPECT_LT(l62, l90);
}

TEST(Stats, UngappedRejectsPositiveExpectedScore) {
  matrix::ScoreMatrix all_match =
      matrix::ScoreMatrix::match_mismatch(2, 1, seq::Alphabet::dna());
  std::vector<double> bg(4, 0.25);
  EXPECT_THROW(karlin_ungapped(all_match, bg), std::invalid_argument);
}

TEST(Stats, PublishedGappedTable) {
  auto p = published_gapped("blosum62", 11, 1);
  ASSERT_TRUE(p.has_value());
  EXPECT_NEAR(p->lambda, 0.267, 1e-9);
  EXPECT_NEAR(p->K, 0.041, 1e-9);
  EXPECT_TRUE(p->gapped);
  EXPECT_FALSE(published_gapped("blosum62", 99, 9).has_value());
  EXPECT_FALSE(published_gapped("nosuch", 11, 1).has_value());
}

TEST(Stats, EvalueAndBitscoreMath) {
  KarlinParams p;
  p.lambda = 0.267;
  p.K = 0.041;
  // E halves-ish per +2.6 score; sanity ranges for a typical search.
  double e_low = evalue(p, 300, 200, 1'000'000);
  double e_high = evalue(p, 40, 200, 1'000'000);
  EXPECT_LT(e_low, 1e-20);
  EXPECT_GT(e_high, 1.0);
  EXPECT_GT(bitscore(p, 100), bitscore(p, 50));
  EXPECT_NEAR(bitscore(p, 100), (0.267 * 100 - std::log(0.041)) / std::log(2.0),
              1e-12);
  // E-value is monotone in all arguments.
  EXPECT_LT(evalue(p, 100, 200, 1000), evalue(p, 100, 200, 2000));
  EXPECT_LT(evalue(p, 101, 200, 1000), evalue(p, 100, 200, 1000));
}

TEST(Stats, CalibrationIsDeterministicAndPlausible) {
  core::AlignConfig cfg;  // BLOSUM62 11/1
  KarlinParams a = calibrate_gapped(cfg, 120, 150, 7);
  KarlinParams b = calibrate_gapped(cfg, 120, 150, 7);
  EXPECT_DOUBLE_EQ(a.lambda, b.lambda);
  EXPECT_DOUBLE_EQ(a.K, b.K);
  // Gapped lambda must sit below the ungapped bound and in a sane window
  // around the published 0.267.
  EXPECT_GT(a.lambda, 0.10);
  EXPECT_LT(a.lambda, 0.45);
  EXPECT_GT(a.K, 0.0);
}

TEST(Stats, CalibratedEvaluesSeparateHomologsFromNoise) {
  seq::SyntheticConfig sc;
  sc.seed = 81;
  sc.target_residues = 60'000;
  sc.planted_fraction = 0;
  auto db = seq::SequenceDatabase::synthetic(sc);
  auto query = seq::mutate(db[5], 82, 0.2);  // homolog of entry 5

  core::AlignConfig cfg;
  KarlinParams p = calibrate_gapped(cfg, 120, 150, 11);
  DatabaseSearch search(db, cfg);
  auto res = search.search(query, 5);
  ASSERT_GE(res.hits.size(), 2u);
  ASSERT_EQ(res.hits[0].seq_index, 5u);
  double e_hom = evalue(p, res.hits[0].score, query.length(), db.total_residues());
  double e_noise = evalue(p, res.hits[1].score, query.length(), db.total_residues());
  EXPECT_LT(e_hom, 1e-6);   // real homolog: essentially impossible by chance
  EXPECT_GT(e_noise, 1e-4); // next best is plausible noise
  EXPECT_LT(e_hom, e_noise / 100);
}

TEST(Stats, CalibrationSupportsFixedSchemeAndBands) {
  core::AlignConfig cfg;
  cfg.scheme = core::ScoreScheme::Fixed;
  cfg.match = 2;
  cfg.mismatch = -3;
  cfg.gap_open = 5;
  cfg.gap_extend = 2;
  KarlinParams p = calibrate_gapped(cfg, 100, 120, 3);
  EXPECT_GT(p.lambda, 0.0);
  cfg.band = 20;
  KarlinParams pb = calibrate_gapped(cfg, 100, 120, 3);
  EXPECT_GT(pb.lambda, 0.0);
  EXPECT_THROW(calibrate_gapped(cfg, 5, 120, 3), std::invalid_argument);
}

}  // namespace
}  // namespace swve::align
