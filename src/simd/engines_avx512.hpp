// AVX-512 engines (512-bit). Include only from translation units compiled
// with -mavx512f -mavx512bw -mavx512vl (-mavx512vbmi for batch32). Same
// engine concept as engines_emu.hpp; comparisons use hardware mask registers
// so to_bits() is free, and narrowing uses vpmovus* so no pack-order fixups
// are needed.
#pragma once

#include <immintrin.h>

#include <cstdint>

namespace swve::simd {

namespace detail_avx512 {

/// The 32x32 biased byte table staged into registers for vpermi2b lookups:
/// 8 segments of 4 rows (128 B = one register pair). Built once per
/// alignment; lives in zmm registers across the hot loop.
struct ShuffleTable {
  __m512i seg[16];  // seg[2s], seg[2s+1] = rows 4s..4s+3
};

inline ShuffleTable load_shuffle_table(const uint8_t* mat8) {
  ShuffleTable t;
  for (int k = 0; k < 16; ++k) t.seg[k] = _mm512_loadu_si512(mat8 + 64 * k);
  return t;
}

/// Per byte lane: mat8[q*32 + r], q and r in [0, 32). Eight vpermi2b
/// lookups (one per 4-row segment) merged by the segment id q >> 2.
/// Requires AVX-512-VBMI (this TU is compiled with it; runtime gating is
/// the dispatcher's responsibility).
inline __m512i lookup_q_r(const ShuffleTable& t, __m512i vq, __m512i vr) {
  // idx7 = (q & 3) << 5 | r. Since q & 3 <= 3, the epi16 shift cannot
  // bleed across byte lanes.
  const __m512i idx = _mm512_or_si512(
      _mm512_slli_epi16(_mm512_and_si512(vq, _mm512_set1_epi8(3)), 5), vr);
  const __m512i seg = _mm512_srli_epi16(
      _mm512_and_si512(vq, _mm512_set1_epi8(static_cast<char>(0xFC))), 2);
  __m512i res = _mm512_permutex2var_epi8(t.seg[0], idx, t.seg[1]);
  for (int s = 1; s < 8; ++s) {
    const __m512i cand =
        _mm512_permutex2var_epi8(t.seg[2 * s], idx, t.seg[2 * s + 1]);
    res = _mm512_mask_mov_epi8(
        res, _mm512_cmpeq_epi8_mask(seg, _mm512_set1_epi8(static_cast<char>(s))),
        cand);
  }
  return res;
}

}  // namespace detail_avx512

struct Avx512U8 {
  using elem = uint8_t;
  using vec = __m512i;
  using mask = __mmask64;
  static constexpr int lanes = 64;
  static constexpr bool is_signed = false;
  static constexpr int64_t cap = 255;
  static constexpr bool has_shuffle_scores = true;
  using shuffle_tab = detail_avx512::ShuffleTable;
  static shuffle_tab load_shuffle_table(const uint8_t* mat8) {
    return detail_avx512::load_shuffle_table(mat8);
  }
  static vec shuffle_scores(const shuffle_tab& t, const elem* qenc,
                            const elem* dbr_rev) {
    return detail_avx512::lookup_q_r(t, _mm512_loadu_si512(qenc),
                                     _mm512_loadu_si512(dbr_rev));
  }

  static vec zero() { return _mm512_setzero_si512(); }
  static vec set1(int64_t x) { return _mm512_set1_epi8(static_cast<char>(x)); }
  static vec iota() {
    alignas(64) static constexpr uint8_t k[64] = {
        0,  1,  2,  3,  4,  5,  6,  7,  8,  9,  10, 11, 12, 13, 14, 15,
        16, 17, 18, 19, 20, 21, 22, 23, 24, 25, 26, 27, 28, 29, 30, 31,
        32, 33, 34, 35, 36, 37, 38, 39, 40, 41, 42, 43, 44, 45, 46, 47,
        48, 49, 50, 51, 52, 53, 54, 55, 56, 57, 58, 59, 60, 61, 62, 63};
    return _mm512_load_si512(k);
  }
  static vec loadu(const elem* p) { return _mm512_loadu_si512(p); }
  static void storeu(elem* p, vec a) { _mm512_storeu_si512(p, a); }
  static vec add_score(vec h, vec sb, vec bias) {
    return _mm512_subs_epu8(_mm512_adds_epu8(h, sb), bias);
  }
  static vec sub_floor(vec x, vec p) { return _mm512_subs_epu8(x, p); }
  static vec max(vec a, vec b) { return _mm512_max_epu8(a, b); }
  static mask cmpeq(vec a, vec b) { return _mm512_cmpeq_epu8_mask(a, b); }
  static mask cmpgt(vec a, vec b) { return _mm512_cmpgt_epu8_mask(a, b); }
  static vec blend(mask m, vec a, vec b) { return _mm512_mask_blend_epi8(m, a, b); }
  static vec or_(vec a, vec b) { return _mm512_or_si512(a, b); }
  static bool any(mask m) { return m != 0; }
  static uint64_t to_bits(mask m) { return static_cast<uint64_t>(m); }

  static vec gather_scores(const int32_t* qmul, const int32_t* dbr, const int32_t* mat,
                           int bias) {
    const __m512i vb = _mm512_set1_epi32(bias);
    __m512i out = _mm512_setzero_si512();
    for (int t = 0; t < 4; ++t) {
      __m512i idx = _mm512_add_epi32(_mm512_loadu_si512(qmul + 16 * t),
                                     _mm512_loadu_si512(dbr + 16 * t));
      __m512i g = _mm512_add_epi32(_mm512_i32gather_epi32(idx, mat, 4), vb);
      __m128i nb = _mm512_cvtusepi32_epi8(g);  // vpmovusdb: saturating narrow
      switch (t) {
        case 0: out = _mm512_inserti32x4(out, nb, 0); break;
        case 1: out = _mm512_inserti32x4(out, nb, 1); break;
        case 2: out = _mm512_inserti32x4(out, nb, 2); break;
        case 3: out = _mm512_inserti32x4(out, nb, 3); break;
      }
    }
    return out;
  }

  static void store_dir_u8(uint8_t* p, vec a) { storeu(p, a); }

  static void store_bestd(int32_t* bd, mask m, int d) {
    const __m512i vd = _mm512_set1_epi32(d);
    for (int g = 0; g < 4; ++g)
      _mm512_mask_storeu_epi32(bd + 16 * g,
                               static_cast<__mmask16>(m >> (16 * g)), vd);
  }

  static elem reduce_max(vec a) {
    __m256i x = _mm256_max_epu8(_mm512_castsi512_si256(a), _mm512_extracti64x4_epi64(a, 1));
    __m128i y = _mm_max_epu8(_mm256_castsi256_si128(x), _mm256_extracti128_si256(x, 1));
    y = _mm_max_epu8(y, _mm_srli_si128(y, 8));
    y = _mm_max_epu8(y, _mm_srli_si128(y, 4));
    y = _mm_max_epu8(y, _mm_srli_si128(y, 2));
    y = _mm_max_epu8(y, _mm_srli_si128(y, 1));
    return static_cast<elem>(_mm_cvtsi128_si32(y) & 0xFF);
  }
};

struct Avx512U16 {
  using elem = uint16_t;
  using vec = __m512i;
  using mask = __mmask32;
  static constexpr int lanes = 32;
  static constexpr bool is_signed = false;
  static constexpr int64_t cap = 65535;
  static constexpr bool has_shuffle_scores = true;
  using shuffle_tab = detail_avx512::ShuffleTable;
  static shuffle_tab load_shuffle_table(const uint8_t* mat8) {
    return detail_avx512::load_shuffle_table(mat8);
  }
  static vec shuffle_scores(const shuffle_tab& t, const elem* qenc,
                            const elem* dbr_rev) {
    // Narrow the u16 codes to bytes (< 32), run the byte lookup, widen.
    const __m256i q8 = _mm512_cvtepi16_epi8(_mm512_loadu_si512(qenc));
    const __m256i r8 = _mm512_cvtepi16_epi8(_mm512_loadu_si512(dbr_rev));
    const __m512i res8 = detail_avx512::lookup_q_r(
        t, _mm512_castsi256_si512(q8), _mm512_castsi256_si512(r8));
    return _mm512_cvtepu8_epi16(_mm512_castsi512_si256(res8));
  }

  static vec zero() { return _mm512_setzero_si512(); }
  static vec set1(int64_t x) { return _mm512_set1_epi16(static_cast<short>(x)); }
  static vec iota() {
    alignas(64) static constexpr uint16_t k[32] = {
        0,  1,  2,  3,  4,  5,  6,  7,  8,  9,  10, 11, 12, 13, 14, 15,
        16, 17, 18, 19, 20, 21, 22, 23, 24, 25, 26, 27, 28, 29, 30, 31};
    return _mm512_load_si512(k);
  }
  static vec loadu(const elem* p) { return _mm512_loadu_si512(p); }
  static void storeu(elem* p, vec a) { _mm512_storeu_si512(p, a); }
  static vec add_score(vec h, vec sb, vec bias) {
    return _mm512_subs_epu16(_mm512_adds_epu16(h, sb), bias);
  }
  static vec sub_floor(vec x, vec p) { return _mm512_subs_epu16(x, p); }
  static vec max(vec a, vec b) { return _mm512_max_epu16(a, b); }
  static mask cmpeq(vec a, vec b) { return _mm512_cmpeq_epu16_mask(a, b); }
  static mask cmpgt(vec a, vec b) { return _mm512_cmpgt_epu16_mask(a, b); }
  static vec blend(mask m, vec a, vec b) { return _mm512_mask_blend_epi16(m, a, b); }
  static vec or_(vec a, vec b) { return _mm512_or_si512(a, b); }
  static bool any(mask m) { return m != 0; }
  static uint64_t to_bits(mask m) { return static_cast<uint64_t>(m); }

  static vec gather_scores(const int32_t* qmul, const int32_t* dbr, const int32_t* mat,
                           int bias) {
    const __m512i vb = _mm512_set1_epi32(bias);
    __m512i idx0 =
        _mm512_add_epi32(_mm512_loadu_si512(qmul), _mm512_loadu_si512(dbr));
    __m512i idx1 =
        _mm512_add_epi32(_mm512_loadu_si512(qmul + 16), _mm512_loadu_si512(dbr + 16));
    __m512i g0 = _mm512_add_epi32(_mm512_i32gather_epi32(idx0, mat, 4), vb);
    __m512i g1 = _mm512_add_epi32(_mm512_i32gather_epi32(idx1, mat, 4), vb);
    __m256i n0 = _mm512_cvtusepi32_epi16(g0);  // vpmovusdw
    __m256i n1 = _mm512_cvtusepi32_epi16(g1);
    return _mm512_inserti64x4(_mm512_castsi256_si512(n0), n1, 1);
  }

  static void store_dir_u8(uint8_t* p, vec a) {
    __m256i b = _mm512_cvtepi16_epi8(a);  // vpmovwb (truncating; dirs are small)
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(p), b);
  }

  static void store_bestd(int32_t* bd, mask m, int d) {
    const __m512i vd = _mm512_set1_epi32(d);
    _mm512_mask_storeu_epi32(bd, static_cast<__mmask16>(m), vd);
    _mm512_mask_storeu_epi32(bd + 16, static_cast<__mmask16>(m >> 16), vd);
  }

  static elem reduce_max(vec a) {
    __m256i x =
        _mm256_max_epu16(_mm512_castsi512_si256(a), _mm512_extracti64x4_epi64(a, 1));
    __m128i y = _mm_max_epu16(_mm256_castsi256_si128(x), _mm256_extracti128_si256(x, 1));
    y = _mm_max_epu16(y, _mm_srli_si128(y, 8));
    y = _mm_max_epu16(y, _mm_srli_si128(y, 4));
    y = _mm_max_epu16(y, _mm_srli_si128(y, 2));
    return static_cast<elem>(_mm_cvtsi128_si32(y) & 0xFFFF);
  }
};

struct Avx512I32 {
  using elem = int32_t;
  using vec = __m512i;
  using mask = __mmask16;
  static constexpr int lanes = 16;
  static constexpr bool is_signed = true;
  static constexpr int64_t cap = INT32_MAX;
  static constexpr bool has_shuffle_scores = false;

  static vec zero() { return _mm512_setzero_si512(); }
  static vec set1(int64_t x) { return _mm512_set1_epi32(static_cast<int>(x)); }
  static vec iota() {
    return _mm512_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15);
  }
  static vec loadu(const elem* p) { return _mm512_loadu_si512(p); }
  static void storeu(elem* p, vec a) { _mm512_storeu_si512(p, a); }
  static vec add_score(vec h, vec s, vec /*bias = 0*/) {
    return _mm512_max_epi32(_mm512_add_epi32(h, s), _mm512_setzero_si512());
  }
  static vec sub_floor(vec x, vec p) {
    return _mm512_max_epi32(_mm512_sub_epi32(x, p), _mm512_setzero_si512());
  }
  static vec max(vec a, vec b) { return _mm512_max_epi32(a, b); }
  static mask cmpeq(vec a, vec b) { return _mm512_cmpeq_epi32_mask(a, b); }
  static mask cmpgt(vec a, vec b) { return _mm512_cmpgt_epi32_mask(a, b); }
  static vec blend(mask m, vec a, vec b) { return _mm512_mask_blend_epi32(m, a, b); }
  static vec or_(vec a, vec b) { return _mm512_or_si512(a, b); }
  static bool any(mask m) { return m != 0; }
  static uint64_t to_bits(mask m) { return static_cast<uint64_t>(m); }

  static vec gather_scores(const int32_t* qmul, const int32_t* dbr, const int32_t* mat,
                           int bias) {
    __m512i idx = _mm512_add_epi32(_mm512_loadu_si512(qmul), _mm512_loadu_si512(dbr));
    return _mm512_add_epi32(_mm512_i32gather_epi32(idx, mat, 4), _mm512_set1_epi32(bias));
  }

  static void store_dir_u8(uint8_t* p, vec a) {
    __m128i b = _mm512_cvtepi32_epi8(a);  // vpmovdb
    _mm_storeu_si128(reinterpret_cast<__m128i*>(p), b);
  }

  static void store_bestd(int32_t* bd, mask m, int d) {
    _mm512_mask_storeu_epi32(bd, m, _mm512_set1_epi32(d));
  }

  static elem reduce_max(vec a) { return _mm512_reduce_max_epi32(a); }
};

}  // namespace swve::simd
