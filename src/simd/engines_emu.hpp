// Portable emulated vector engine.
//
// Implements the same engine concept as the AVX2/AVX-512 engines with plain
// scalar loops over a fixed-size array, so the diagonal kernel template can
// run (and be differentially tested) on any CPU. GCC auto-vectorizes most of
// these loops, which makes this the library's honest "scalar" baseline ISA.
//
// Engine concept (shared by engines_emu/engines_avx2/engines_avx512):
//   elem                 lane element type (uint8_t / uint16_t / int32_t)
//   vec, mask            vector and comparison-mask types
//   lanes                lane count
//   is_signed            true for the 32-bit engine (no bias, no saturation)
//   cap                  saturation ceiling of the element domain
//   zero/set1/loadu/storeu
//   add_score(h,s,bias)  max(0, h + (s - bias)), saturating at `cap`
//   sub_floor(x,p)       max(0, x - p)
//   max/cmpeq/cmpgt/blend/or_
//   any/to_bits          mask query; bit k of to_bits = lane k
//   gather_scores        substitution-matrix lookup, biased into elem domain
//   store_dir_u8         truncating per-lane byte store (traceback flags)
#pragma once

#include <array>
#include <cstdint>
#include <cstring>
#include <limits>

namespace swve::simd {

template <class T, int N>
struct EmuEngine {
  static_assert(N >= 1 && N <= 64, "mask fits in uint64_t");
  using elem = T;
  struct vec {
    std::array<T, N> v;
  };
  using mask = uint64_t;
  static constexpr int lanes = N;
  static constexpr bool is_signed = std::numeric_limits<T>::is_signed;
  static constexpr int64_t cap = std::numeric_limits<T>::max();
  static constexpr bool has_shuffle_scores = false;

  static vec zero() {
    vec r;
    r.v.fill(T{0});
    return r;
  }
  static vec set1(int64_t x) {
    vec r;
    r.v.fill(static_cast<T>(x));
    return r;
  }
  static vec iota() {  // lane indices 0..N-1 (tail masking)
    vec r;
    for (int k = 0; k < N; ++k) r.v[k] = static_cast<T>(k);
    return r;
  }
  static vec loadu(const elem* p) {
    vec r;
    std::memcpy(r.v.data(), p, sizeof(T) * N);
    return r;
  }
  static void storeu(elem* p, vec a) { std::memcpy(p, a.v.data(), sizeof(T) * N); }

  static vec add_score(vec h, vec sb, vec bias) {
    vec r;
    for (int k = 0; k < N; ++k) {
      int64_t t = static_cast<int64_t>(h.v[k]) + static_cast<int64_t>(sb.v[k]);
      if (!is_signed && t > cap) t = cap;  // saturating add (the overflow signal)
      t -= static_cast<int64_t>(bias.v[k]);
      if (t < 0) t = 0;  // the local-alignment zero floor
      r.v[k] = static_cast<T>(t);
    }
    return r;
  }
  static vec sub_floor(vec x, vec p) {
    vec r;
    for (int k = 0; k < N; ++k) {
      int64_t t = static_cast<int64_t>(x.v[k]) - static_cast<int64_t>(p.v[k]);
      r.v[k] = static_cast<T>(t < 0 ? 0 : t);
    }
    return r;
  }
  static vec max(vec a, vec b) {
    vec r;
    for (int k = 0; k < N; ++k) r.v[k] = a.v[k] > b.v[k] ? a.v[k] : b.v[k];
    return r;
  }
  static mask cmpeq(vec a, vec b) {
    mask m = 0;
    for (int k = 0; k < N; ++k)
      if (a.v[k] == b.v[k]) m |= (uint64_t{1} << k);
    return m;
  }
  static mask cmpgt(vec a, vec b) {
    mask m = 0;
    for (int k = 0; k < N; ++k)
      if (a.v[k] > b.v[k]) m |= (uint64_t{1} << k);
    return m;
  }
  static vec blend(mask m, vec a, vec b) {  // m ? b : a
    vec r;
    for (int k = 0; k < N; ++k) r.v[k] = (m >> k) & 1 ? b.v[k] : a.v[k];
    return r;
  }
  static vec or_(vec a, vec b) {
    vec r;
    for (int k = 0; k < N; ++k)
      r.v[k] = static_cast<T>(static_cast<uint64_t>(a.v[k]) | static_cast<uint64_t>(b.v[k]));
    return r;
  }
  static bool any(mask m) { return m != 0; }
  static uint64_t to_bits(mask m) { return m; }

  /// Biased substitution-score lookup: mat[qmul[k] + dbr[k]] + bias,
  /// clamped into the (unsigned) element domain. `bias` is 0 for the signed
  /// engine, where plain scores are returned.
  static vec gather_scores(const int32_t* qmul, const int32_t* dbr, const int32_t* mat,
                           int bias) {
    vec r;
    for (int k = 0; k < N; ++k) {
      int64_t s = static_cast<int64_t>(mat[qmul[k] + dbr[k]]) + bias;
      if (!is_signed) {
        if (s < 0) s = 0;
        if (s > cap) s = cap;
      }
      r.v[k] = static_cast<T>(s);
    }
    return r;
  }

  static void store_dir_u8(uint8_t* p, vec a) {
    for (int k = 0; k < N; ++k) p[k] = static_cast<uint8_t>(a.v[k]);
  }

  /// bd[k] = d for every set mask lane (deferred-max bookkeeping).
  static void store_bestd(int32_t* bd, mask m, int d) {
    for (int k = 0; k < N; ++k)
      if ((m >> k) & 1) bd[k] = d;
  }

  static elem reduce_max(vec a) {
    elem m = a.v[0];
    for (int k = 1; k < N; ++k)
      if (a.v[k] > m) m = a.v[k];
    return m;
  }
};

// Lane counts are half their AVX2 equivalents: wide enough to exercise the
// ragged-segment logic of the kernel, narrow enough that GCC reliably
// auto-vectorizes the loops for the portable build.
using EmuU8 = EmuEngine<uint8_t, 16>;
using EmuU16 = EmuEngine<uint16_t, 8>;
using EmuI32 = EmuEngine<int32_t, 4>;

}  // namespace swve::simd
