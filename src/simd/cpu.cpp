#include "simd/cpu.hpp"

#include <algorithm>
#include <cctype>
#include <stdexcept>
#include <thread>

namespace swve::simd {

static CpuFeatures detect() noexcept {
  CpuFeatures f;
#if defined(__x86_64__) || defined(__i386__)
  __builtin_cpu_init();
  f.sse41 = __builtin_cpu_supports("sse4.1");
  f.avx2 = __builtin_cpu_supports("avx2");
  f.avx512bw_vl = __builtin_cpu_supports("avx512f") &&
                  __builtin_cpu_supports("avx512bw") &&
                  __builtin_cpu_supports("avx512vl");
  f.avx512vbmi = f.avx512bw_vl && __builtin_cpu_supports("avx512vbmi");
#endif
  f.hardware_threads = std::max(1u, std::thread::hardware_concurrency());
  return f;
}

const CpuFeatures& cpu_features() noexcept {
  static const CpuFeatures f = detect();
  return f;
}

bool isa_available(Isa isa) noexcept {
  const CpuFeatures& f = cpu_features();
  switch (isa) {
    case Isa::Scalar:
      return true;
    case Isa::Sse41:
#if defined(SWVE_HAVE_SSE41_BUILD)
      return f.sse41;
#else
      return false;
#endif
    case Isa::Avx2:
#if defined(SWVE_HAVE_AVX2_BUILD)
      return f.avx2;
#else
      return false;
#endif
    case Isa::Avx512:
#if defined(SWVE_HAVE_AVX512_BUILD)
      return f.avx512bw_vl;
#else
      return false;
#endif
    case Isa::Auto:
      return true;
  }
  return false;
}

Isa resolve_isa(Isa requested) noexcept {
  if (requested == Isa::Auto) {
    if (isa_available(Isa::Avx512)) return Isa::Avx512;
    if (isa_available(Isa::Avx2)) return Isa::Avx2;
    if (isa_available(Isa::Sse41)) return Isa::Sse41;
    return Isa::Scalar;
  }
  return isa_available(requested) ? requested : Isa::Scalar;
}

const char* isa_name(Isa isa) noexcept {
  switch (isa) {
    case Isa::Auto: return "auto";
    case Isa::Scalar: return "scalar";
    case Isa::Sse41: return "sse41";
    case Isa::Avx2: return "avx2";
    case Isa::Avx512: return "avx512";
  }
  return "?";
}

Isa isa_from_string(const std::string& s) {
  std::string t;
  t.reserve(s.size());
  for (char c : s) t.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  if (t == "auto") return Isa::Auto;
  if (t == "scalar") return Isa::Scalar;
  if (t == "sse41" || t == "sse4.1" || t == "sse") return Isa::Sse41;
  if (t == "avx2") return Isa::Avx2;
  if (t == "avx512") return Isa::Avx512;
  throw std::invalid_argument("unknown ISA name: " + s);
}

}  // namespace swve::simd
