// AVX2 engines (256-bit). Include only from translation units compiled with
// -mavx2 -mbmi2. Same engine concept as engines_emu.hpp.
//
// The 8/16-bit engines work in the *unsigned biased* domain: substitution
// scores are gathered as int32, biased non-negative, and saturate-packed
// down (Fig 4 of the paper — there is no 8-bit gather, so the 8-bit path is
// fed by the 32-bit gather + two pack stages, which is what restores 8-bit
// performance to parity with 16-bit).
#pragma once

#include <immintrin.h>

#include <cstdint>

namespace swve::simd {

namespace detail_avx2 {

// packus_epi32/packus_epi16 interleave 128-bit lanes; these permutes restore
// element order after packing (see engine gather_scores).
inline __m256i fix_pack16(__m256i x) {  // after packus_epi32(g0,g1)
  return _mm256_permute4x64_epi64(x, 0xD8);
}
inline __m256i fix_pack8(__m256i x) {  // after packus_epi16(packus_epi32 pair)
  const __m256i idx = _mm256_setr_epi32(0, 4, 1, 5, 2, 6, 3, 7);
  return _mm256_permutevar8x32_epi32(x, idx);
}

}  // namespace detail_avx2

struct Avx2U8 {
  using elem = uint8_t;
  using vec = __m256i;
  using mask = __m256i;  // byte-lane 0xFF/0x00
  static constexpr int lanes = 32;
  static constexpr bool is_signed = false;
  static constexpr int64_t cap = 255;
  static constexpr bool has_shuffle_scores = false;

  static vec zero() { return _mm256_setzero_si256(); }
  static vec set1(int64_t x) { return _mm256_set1_epi8(static_cast<char>(x)); }
  static vec iota() {
    return _mm256_setr_epi8(0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16,
                            17, 18, 19, 20, 21, 22, 23, 24, 25, 26, 27, 28, 29, 30, 31);
  }
  static vec loadu(const elem* p) {
    return _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p));
  }
  static void storeu(elem* p, vec a) {
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(p), a);
  }
  static vec add_score(vec h, vec sb, vec bias) {
    return _mm256_subs_epu8(_mm256_adds_epu8(h, sb), bias);
  }
  static vec sub_floor(vec x, vec p) { return _mm256_subs_epu8(x, p); }
  static vec max(vec a, vec b) { return _mm256_max_epu8(a, b); }
  static mask cmpeq(vec a, vec b) { return _mm256_cmpeq_epi8(a, b); }
  static mask cmpgt(vec a, vec b) {  // unsigned >: flip sign bit, signed compare
    const __m256i f = _mm256_set1_epi8(static_cast<char>(0x80));
    return _mm256_cmpgt_epi8(_mm256_xor_si256(a, f), _mm256_xor_si256(b, f));
  }
  static vec blend(mask m, vec a, vec b) { return _mm256_blendv_epi8(a, b, m); }
  static vec or_(vec a, vec b) { return _mm256_or_si256(a, b); }
  static bool any(mask m) { return !_mm256_testz_si256(m, m); }
  static uint64_t to_bits(mask m) {
    return static_cast<uint32_t>(_mm256_movemask_epi8(m));
  }

  static vec gather_scores(const int32_t* qmul, const int32_t* dbr, const int32_t* mat,
                           int bias) {
    const __m256i vb = _mm256_set1_epi32(bias);
    __m256i g[4];
    for (int t = 0; t < 4; ++t) {
      __m256i idx = _mm256_add_epi32(
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(qmul + 8 * t)),
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dbr + 8 * t)));
      g[t] = _mm256_add_epi32(_mm256_i32gather_epi32(mat, idx, 4), vb);
    }
    __m256i a = _mm256_packus_epi32(g[0], g[1]);
    __m256i b = _mm256_packus_epi32(g[2], g[3]);
    return detail_avx2::fix_pack8(_mm256_packus_epi16(a, b));
  }

  static void store_dir_u8(uint8_t* p, vec a) { storeu(p, a); }

  static void store_bestd(int32_t* bd, mask m, int d) {
    const __m256i vd = _mm256_set1_epi32(d);
    const __m128i mlo = _mm256_castsi256_si128(m);
    const __m128i mhi = _mm256_extracti128_si256(m, 1);
    const __m128i groups[4] = {mlo, _mm_srli_si128(mlo, 8), mhi,
                               _mm_srli_si128(mhi, 8)};
    for (int g = 0; g < 4; ++g) {
      const __m256i mg = _mm256_cvtepi8_epi32(groups[g]);
      __m256i* p = reinterpret_cast<__m256i*>(bd + 8 * g);
      _mm256_storeu_si256(p, _mm256_blendv_epi8(_mm256_loadu_si256(p), vd, mg));
    }
  }

  static elem reduce_max(vec a) {
    __m128i x = _mm_max_epu8(_mm256_castsi256_si128(a), _mm256_extracti128_si256(a, 1));
    x = _mm_max_epu8(x, _mm_srli_si128(x, 8));
    x = _mm_max_epu8(x, _mm_srli_si128(x, 4));
    x = _mm_max_epu8(x, _mm_srli_si128(x, 2));
    x = _mm_max_epu8(x, _mm_srli_si128(x, 1));
    return static_cast<elem>(_mm_cvtsi128_si32(x) & 0xFF);
  }
};

struct Avx2U16 {
  using elem = uint16_t;
  using vec = __m256i;
  using mask = __m256i;  // word-lane 0xFFFF/0x0000
  static constexpr int lanes = 16;
  static constexpr bool is_signed = false;
  static constexpr int64_t cap = 65535;
  static constexpr bool has_shuffle_scores = false;

  static vec zero() { return _mm256_setzero_si256(); }
  static vec set1(int64_t x) { return _mm256_set1_epi16(static_cast<short>(x)); }
  static vec iota() {
    return _mm256_setr_epi16(0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15);
  }
  static vec loadu(const elem* p) {
    return _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p));
  }
  static void storeu(elem* p, vec a) {
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(p), a);
  }
  static vec add_score(vec h, vec sb, vec bias) {
    return _mm256_subs_epu16(_mm256_adds_epu16(h, sb), bias);
  }
  static vec sub_floor(vec x, vec p) { return _mm256_subs_epu16(x, p); }
  static vec max(vec a, vec b) { return _mm256_max_epu16(a, b); }
  static mask cmpeq(vec a, vec b) { return _mm256_cmpeq_epi16(a, b); }
  static mask cmpgt(vec a, vec b) {
    const __m256i f = _mm256_set1_epi16(static_cast<short>(0x8000));
    return _mm256_cmpgt_epi16(_mm256_xor_si256(a, f), _mm256_xor_si256(b, f));
  }
  static vec blend(mask m, vec a, vec b) { return _mm256_blendv_epi8(a, b, m); }
  static vec or_(vec a, vec b) { return _mm256_or_si256(a, b); }
  static bool any(mask m) { return !_mm256_testz_si256(m, m); }
  static uint64_t to_bits(mask m) {  // one bit per 16-bit lane
    return _pext_u32(static_cast<uint32_t>(_mm256_movemask_epi8(m)), 0xAAAAAAAAu);
  }

  static vec gather_scores(const int32_t* qmul, const int32_t* dbr, const int32_t* mat,
                           int bias) {
    const __m256i vb = _mm256_set1_epi32(bias);
    __m256i idx0 = _mm256_add_epi32(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(qmul)),
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dbr)));
    __m256i idx1 = _mm256_add_epi32(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(qmul + 8)),
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dbr + 8)));
    __m256i g0 = _mm256_add_epi32(_mm256_i32gather_epi32(mat, idx0, 4), vb);
    __m256i g1 = _mm256_add_epi32(_mm256_i32gather_epi32(mat, idx1, 4), vb);
    return detail_avx2::fix_pack16(_mm256_packus_epi32(g0, g1));
  }

  static void store_dir_u8(uint8_t* p, vec a) {
    __m256i packed = _mm256_packus_epi16(a, _mm256_setzero_si256());
    packed = _mm256_permute4x64_epi64(packed, 0x08);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(p), _mm256_castsi256_si128(packed));
  }

  static void store_bestd(int32_t* bd, mask m, int d) {
    const __m256i vd = _mm256_set1_epi32(d);
    const __m256i m0 = _mm256_cvtepi16_epi32(_mm256_castsi256_si128(m));
    const __m256i m1 = _mm256_cvtepi16_epi32(_mm256_extracti128_si256(m, 1));
    __m256i* p0 = reinterpret_cast<__m256i*>(bd);
    __m256i* p1 = reinterpret_cast<__m256i*>(bd + 8);
    _mm256_storeu_si256(p0, _mm256_blendv_epi8(_mm256_loadu_si256(p0), vd, m0));
    _mm256_storeu_si256(p1, _mm256_blendv_epi8(_mm256_loadu_si256(p1), vd, m1));
  }

  static elem reduce_max(vec a) {
    __m128i x = _mm_max_epu16(_mm256_castsi256_si128(a), _mm256_extracti128_si256(a, 1));
    x = _mm_max_epu16(x, _mm_srli_si128(x, 8));
    x = _mm_max_epu16(x, _mm_srli_si128(x, 4));
    x = _mm_max_epu16(x, _mm_srli_si128(x, 2));
    return static_cast<elem>(_mm_cvtsi128_si32(x) & 0xFFFF);
  }
};

struct Avx2I32 {
  using elem = int32_t;
  using vec = __m256i;
  using mask = __m256i;  // dword-lane all-ones/zero
  static constexpr int lanes = 8;
  static constexpr bool is_signed = true;
  static constexpr int64_t cap = INT32_MAX;
  static constexpr bool has_shuffle_scores = false;

  static vec zero() { return _mm256_setzero_si256(); }
  static vec set1(int64_t x) { return _mm256_set1_epi32(static_cast<int>(x)); }
  static vec iota() { return _mm256_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7); }
  static vec loadu(const elem* p) {
    return _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p));
  }
  static void storeu(elem* p, vec a) {
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(p), a);
  }
  static vec add_score(vec h, vec s, vec /*bias = 0*/) {
    return _mm256_max_epi32(_mm256_add_epi32(h, s), _mm256_setzero_si256());
  }
  static vec sub_floor(vec x, vec p) {
    return _mm256_max_epi32(_mm256_sub_epi32(x, p), _mm256_setzero_si256());
  }
  static vec max(vec a, vec b) { return _mm256_max_epi32(a, b); }
  static mask cmpeq(vec a, vec b) { return _mm256_cmpeq_epi32(a, b); }
  static mask cmpgt(vec a, vec b) { return _mm256_cmpgt_epi32(a, b); }
  static vec blend(mask m, vec a, vec b) { return _mm256_blendv_epi8(a, b, m); }
  static vec or_(vec a, vec b) { return _mm256_or_si256(a, b); }
  static bool any(mask m) { return !_mm256_testz_si256(m, m); }
  static uint64_t to_bits(mask m) {
    return static_cast<uint32_t>(_mm256_movemask_ps(_mm256_castsi256_ps(m)));
  }

  static vec gather_scores(const int32_t* qmul, const int32_t* dbr, const int32_t* mat,
                           int bias) {
    __m256i idx = _mm256_add_epi32(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(qmul)),
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dbr)));
    __m256i g = _mm256_i32gather_epi32(mat, idx, 4);
    return _mm256_add_epi32(g, _mm256_set1_epi32(bias));
  }

  static void store_dir_u8(uint8_t* p, vec a) {
    // dword lane -> byte: grab byte 0 of each dword within each 128-bit lane,
    // then merge the two lanes' dwords.
    const __m256i shuf = _mm256_setr_epi8(0, 4, 8, 12, -1, -1, -1, -1, -1, -1, -1, -1, -1,
                                          -1, -1, -1, 0, 4, 8, 12, -1, -1, -1, -1, -1, -1,
                                          -1, -1, -1, -1, -1, -1);
    __m256i t = _mm256_shuffle_epi8(a, shuf);
    const __m256i idx = _mm256_setr_epi32(0, 4, 1, 1, 1, 1, 1, 1);
    t = _mm256_permutevar8x32_epi32(t, idx);
    _mm_storel_epi64(reinterpret_cast<__m128i*>(p), _mm256_castsi256_si128(t));
  }

  static void store_bestd(int32_t* bd, mask m, int d) {
    __m256i* p = reinterpret_cast<__m256i*>(bd);
    _mm256_storeu_si256(
        p, _mm256_blendv_epi8(_mm256_loadu_si256(p), _mm256_set1_epi32(d), m));
  }

  static elem reduce_max(vec a) {
    __m128i x = _mm_max_epi32(_mm256_castsi256_si128(a), _mm256_extracti128_si256(a, 1));
    x = _mm_max_epi32(x, _mm_srli_si128(x, 8));
    x = _mm_max_epi32(x, _mm_srli_si128(x, 4));
    return _mm_cvtsi128_si32(x);
  }
};

}  // namespace swve::simd
