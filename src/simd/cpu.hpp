// Runtime CPU feature detection and ISA selection.
//
// Kernels for each ISA are compiled in their own translation units with the
// matching -m flags; this module decides, once, which of those units may be
// executed on the running machine.
#pragma once

#include <string>

namespace swve::simd {

/// Instruction-set families the library has kernels for.
enum class Isa {
  Auto,    ///< pick the widest ISA the CPU supports (and the build includes)
  Scalar,  ///< portable emulated-vector kernels, runs everywhere
  Sse41,   ///< 128-bit kernels (requires SSE4.1; the portability tier)
  Avx2,    ///< 256-bit kernels (requires AVX2)
  Avx512,  ///< 512-bit kernels (requires AVX-512 F/BW/VL)
};

/// CPU capabilities relevant to the kernel dispatch, detected once.
struct CpuFeatures {
  bool sse41 = false;
  bool avx2 = false;
  bool avx512bw_vl = false;  ///< AVX-512 F+BW+VL: 8/16-bit ops and masking
  bool avx512vbmi = false;   ///< full-width byte permute (vpermb) for batch32
  unsigned hardware_threads = 1;
};

/// Features of the CPU this process is running on (cached after first call).
const CpuFeatures& cpu_features() noexcept;

/// Resolve Isa::Auto to the best concrete ISA available at runtime *and*
/// compiled into this build. Concrete ISAs are returned unchanged if
/// supported; an unsupported concrete request falls back to Scalar.
Isa resolve_isa(Isa requested) noexcept;

/// True if `isa` can execute on this CPU with this build.
bool isa_available(Isa isa) noexcept;

/// Human-readable name ("scalar", "avx2", "avx512").
const char* isa_name(Isa isa) noexcept;

/// Parse "scalar" / "avx2" / "avx512" / "auto" (case-insensitive).
Isa isa_from_string(const std::string& s);

}  // namespace swve::simd
