// SSE4.1 engines (128-bit) — the portability tier of the paper's analysis:
// pre-AVX x86-64 (and any cloud vCPU with AVX masked off) still gets
// vectorized kernels. Include only from translation units compiled with
// -msse4.1. Same engine concept as engines_emu.hpp.
//
// SSE has no gather instruction; gather_scores stages through a small
// on-stack array (the Auto score-delivery calibration normally picks Fill
// on this tier anyway, which bypasses gather_scores entirely).
#pragma once

#include <smmintrin.h>
#include <tmmintrin.h>

#include <cstdint>
#include <cstring>

namespace swve::simd {

struct Sse41U8 {
  using elem = uint8_t;
  using vec = __m128i;
  using mask = __m128i;  // byte-lane 0xFF/0x00
  static constexpr int lanes = 16;
  static constexpr bool is_signed = false;
  static constexpr int64_t cap = 255;
  static constexpr bool has_shuffle_scores = false;

  static vec zero() { return _mm_setzero_si128(); }
  static vec set1(int64_t x) { return _mm_set1_epi8(static_cast<char>(x)); }
  static vec iota() {
    return _mm_setr_epi8(0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15);
  }
  static vec loadu(const elem* p) {
    return _mm_loadu_si128(reinterpret_cast<const __m128i*>(p));
  }
  static void storeu(elem* p, vec a) {
    _mm_storeu_si128(reinterpret_cast<__m128i*>(p), a);
  }
  static vec add_score(vec h, vec sb, vec bias) {
    return _mm_subs_epu8(_mm_adds_epu8(h, sb), bias);
  }
  static vec sub_floor(vec x, vec p) { return _mm_subs_epu8(x, p); }
  static vec max(vec a, vec b) { return _mm_max_epu8(a, b); }
  static mask cmpeq(vec a, vec b) { return _mm_cmpeq_epi8(a, b); }
  static mask cmpgt(vec a, vec b) {
    const __m128i f = _mm_set1_epi8(static_cast<char>(0x80));
    return _mm_cmpgt_epi8(_mm_xor_si128(a, f), _mm_xor_si128(b, f));
  }
  static vec blend(mask m, vec a, vec b) { return _mm_blendv_epi8(a, b, m); }
  static vec or_(vec a, vec b) { return _mm_or_si128(a, b); }
  static bool any(mask m) { return !_mm_testz_si128(m, m); }
  static uint64_t to_bits(mask m) {
    return static_cast<uint32_t>(_mm_movemask_epi8(m));
  }

  static vec gather_scores(const int32_t* qmul, const int32_t* dbr, const int32_t* mat,
                           int bias) {
    alignas(16) uint8_t s[16];
    for (int k = 0; k < 16; ++k) {
      int v = mat[qmul[k] + dbr[k]] + bias;
      s[k] = static_cast<uint8_t>(v < 0 ? 0 : (v > 255 ? 255 : v));
    }
    return _mm_load_si128(reinterpret_cast<const __m128i*>(s));
  }

  static void store_dir_u8(uint8_t* p, vec a) { storeu(p, a); }

  static void store_bestd(int32_t* bd, mask m, int d) {
    // Unrolled by hand: _mm_srli_si128 needs a literal immediate, and a
    // counted loop only provides one after full unrolling — which sanitizer
    // instrumentation can defeat.
    const __m128i vd = _mm_set1_epi32(d);
    const auto group = [&](int32_t* p, __m128i mg) {
      __m128i* q = reinterpret_cast<__m128i*>(p);
      _mm_storeu_si128(q, _mm_blendv_epi8(_mm_loadu_si128(q), vd,
                                          _mm_cvtepi8_epi32(mg)));
    };
    group(bd + 0, m);
    group(bd + 4, _mm_srli_si128(m, 4));
    group(bd + 8, _mm_srli_si128(m, 8));
    group(bd + 12, _mm_srli_si128(m, 12));
  }

  static elem reduce_max(vec a) {
    __m128i x = _mm_max_epu8(a, _mm_srli_si128(a, 8));
    x = _mm_max_epu8(x, _mm_srli_si128(x, 4));
    x = _mm_max_epu8(x, _mm_srli_si128(x, 2));
    x = _mm_max_epu8(x, _mm_srli_si128(x, 1));
    return static_cast<elem>(_mm_cvtsi128_si32(x) & 0xFF);
  }
};

struct Sse41U16 {
  using elem = uint16_t;
  using vec = __m128i;
  using mask = __m128i;
  static constexpr int lanes = 8;
  static constexpr bool is_signed = false;
  static constexpr int64_t cap = 65535;
  static constexpr bool has_shuffle_scores = false;

  static vec zero() { return _mm_setzero_si128(); }
  static vec set1(int64_t x) { return _mm_set1_epi16(static_cast<short>(x)); }
  static vec iota() { return _mm_setr_epi16(0, 1, 2, 3, 4, 5, 6, 7); }
  static vec loadu(const elem* p) {
    return _mm_loadu_si128(reinterpret_cast<const __m128i*>(p));
  }
  static void storeu(elem* p, vec a) {
    _mm_storeu_si128(reinterpret_cast<__m128i*>(p), a);
  }
  static vec add_score(vec h, vec sb, vec bias) {
    return _mm_subs_epu16(_mm_adds_epu16(h, sb), bias);
  }
  static vec sub_floor(vec x, vec p) { return _mm_subs_epu16(x, p); }
  static vec max(vec a, vec b) { return _mm_max_epu16(a, b); }
  static mask cmpeq(vec a, vec b) { return _mm_cmpeq_epi16(a, b); }
  static mask cmpgt(vec a, vec b) {
    const __m128i f = _mm_set1_epi16(static_cast<short>(0x8000));
    return _mm_cmpgt_epi16(_mm_xor_si128(a, f), _mm_xor_si128(b, f));
  }
  static vec blend(mask m, vec a, vec b) { return _mm_blendv_epi8(a, b, m); }
  static vec or_(vec a, vec b) { return _mm_or_si128(a, b); }
  static bool any(mask m) { return !_mm_testz_si128(m, m); }
  static uint64_t to_bits(mask m) {
    // one bit per word lane: pack word masks to bytes first
    return static_cast<uint32_t>(
               _mm_movemask_epi8(_mm_packs_epi16(m, _mm_setzero_si128()))) &
           0xFF;
  }

  static vec gather_scores(const int32_t* qmul, const int32_t* dbr, const int32_t* mat,
                           int bias) {
    alignas(16) uint16_t s[8];
    for (int k = 0; k < 8; ++k) {
      int v = mat[qmul[k] + dbr[k]] + bias;
      s[k] = static_cast<uint16_t>(v < 0 ? 0 : (v > 65535 ? 65535 : v));
    }
    return _mm_load_si128(reinterpret_cast<const __m128i*>(s));
  }

  static void store_dir_u8(uint8_t* p, vec a) {
    _mm_storel_epi64(reinterpret_cast<__m128i*>(p),
                     _mm_packus_epi16(a, _mm_setzero_si128()));
  }

  static void store_bestd(int32_t* bd, mask m, int d) {
    const __m128i vd = _mm_set1_epi32(d);
    const __m128i m0 = _mm_cvtepi16_epi32(m);
    const __m128i m1 = _mm_cvtepi16_epi32(_mm_srli_si128(m, 8));
    __m128i* p0 = reinterpret_cast<__m128i*>(bd);
    __m128i* p1 = reinterpret_cast<__m128i*>(bd + 4);
    _mm_storeu_si128(p0, _mm_blendv_epi8(_mm_loadu_si128(p0), vd, m0));
    _mm_storeu_si128(p1, _mm_blendv_epi8(_mm_loadu_si128(p1), vd, m1));
  }

  static elem reduce_max(vec a) {
    __m128i x = _mm_max_epu16(a, _mm_srli_si128(a, 8));
    x = _mm_max_epu16(x, _mm_srli_si128(x, 4));
    x = _mm_max_epu16(x, _mm_srli_si128(x, 2));
    return static_cast<elem>(_mm_cvtsi128_si32(x) & 0xFFFF);
  }
};

struct Sse41I32 {
  using elem = int32_t;
  using vec = __m128i;
  using mask = __m128i;
  static constexpr int lanes = 4;
  static constexpr bool is_signed = true;
  static constexpr int64_t cap = INT32_MAX;
  static constexpr bool has_shuffle_scores = false;

  static vec zero() { return _mm_setzero_si128(); }
  static vec set1(int64_t x) { return _mm_set1_epi32(static_cast<int>(x)); }
  static vec iota() { return _mm_setr_epi32(0, 1, 2, 3); }
  static vec loadu(const elem* p) {
    return _mm_loadu_si128(reinterpret_cast<const __m128i*>(p));
  }
  static void storeu(elem* p, vec a) {
    _mm_storeu_si128(reinterpret_cast<__m128i*>(p), a);
  }
  static vec add_score(vec h, vec s, vec /*bias = 0*/) {
    return _mm_max_epi32(_mm_add_epi32(h, s), _mm_setzero_si128());
  }
  static vec sub_floor(vec x, vec p) {
    return _mm_max_epi32(_mm_sub_epi32(x, p), _mm_setzero_si128());
  }
  static vec max(vec a, vec b) { return _mm_max_epi32(a, b); }
  static mask cmpeq(vec a, vec b) { return _mm_cmpeq_epi32(a, b); }
  static mask cmpgt(vec a, vec b) { return _mm_cmpgt_epi32(a, b); }
  static vec blend(mask m, vec a, vec b) { return _mm_blendv_epi8(a, b, m); }
  static vec or_(vec a, vec b) { return _mm_or_si128(a, b); }
  static bool any(mask m) { return !_mm_testz_si128(m, m); }
  static uint64_t to_bits(mask m) {
    return static_cast<uint32_t>(_mm_movemask_ps(_mm_castsi128_ps(m)));
  }

  static vec gather_scores(const int32_t* qmul, const int32_t* dbr, const int32_t* mat,
                           int bias) {
    return _mm_add_epi32(
        _mm_setr_epi32(mat[qmul[0] + dbr[0]], mat[qmul[1] + dbr[1]],
                       mat[qmul[2] + dbr[2]], mat[qmul[3] + dbr[3]]),
        _mm_set1_epi32(bias));
  }

  static void store_dir_u8(uint8_t* p, vec a) {
    const __m128i shuf =
        _mm_setr_epi8(0, 4, 8, 12, -1, -1, -1, -1, -1, -1, -1, -1, -1, -1, -1, -1);
    const __m128i t = _mm_shuffle_epi8(a, shuf);
    uint32_t v = static_cast<uint32_t>(_mm_cvtsi128_si32(t));
    std::memcpy(p, &v, 4);
  }

  static void store_bestd(int32_t* bd, mask m, int d) {
    __m128i* p = reinterpret_cast<__m128i*>(bd);
    _mm_storeu_si128(p,
                     _mm_blendv_epi8(_mm_loadu_si128(p), _mm_set1_epi32(d), m));
  }

  static elem reduce_max(vec a) {
    __m128i x = _mm_max_epi32(a, _mm_srli_si128(a, 8));
    x = _mm_max_epi32(x, _mm_srli_si128(x, 4));
    return _mm_cvtsi128_si32(x);
  }
};

}  // namespace swve::simd
