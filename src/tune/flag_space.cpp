#include "tune/flag_space.hpp"

#include <stdexcept>

namespace swve::tune {

FlagSpace FlagSpace::gcc_default() {
  // Choice 0 is always "leave at -O3 default" so the baseline individual is
  // plain -O3, matching the paper's compilation setup.
  std::vector<Flag> f = {
      {"unroll-loops", {"", "-funroll-loops", "-fno-unroll-loops"}},
      {"unroll-all-loops", {"", "-funroll-all-loops"}},
      {"peel-loops", {"", "-fpeel-loops", "-fno-peel-loops"}},
      {"tree-vectorize", {"", "-fno-tree-vectorize"}},
      {"vect-cost-model",
       {"", "-fvect-cost-model=unlimited", "-fvect-cost-model=cheap",
        "-fvect-cost-model=very-cheap"}},
      {"tree-slp-vectorize", {"", "-fno-tree-slp-vectorize"}},
      {"schedule-insns", {"", "-fschedule-insns", "-fno-schedule-insns"}},
      {"schedule-insns2", {"", "-fno-schedule-insns2"}},
      {"sched-pressure", {"", "-fsched-pressure"}},
      {"modulo-sched", {"", "-fmodulo-sched"}},
      {"gcse-after-reload", {"", "-fgcse-after-reload", "-fno-gcse-after-reload"}},
      {"ipa-cp-clone", {"", "-fno-ipa-cp-clone"}},
      {"split-loops", {"", "-fsplit-loops"}},
      {"loop-interchange", {"", "-floop-interchange"}},
      {"tree-loop-distribution", {"", "-ftree-loop-distribution"}},
      {"prefetch-loop-arrays", {"", "-fprefetch-loop-arrays"}},
      {"omit-frame-pointer", {"", "-fomit-frame-pointer"}},
      {"align-functions", {"", "-falign-functions=32", "-falign-functions=64"}},
      {"align-loops", {"", "-falign-loops=16", "-falign-loops=32"}},
      {"max-unroll-times",
       {"", "--param=max-unroll-times=2", "--param=max-unroll-times=4",
        "--param=max-unroll-times=8", "--param=max-unroll-times=16"}},
      {"max-unrolled-insns",
       {"", "--param=max-unrolled-insns=128", "--param=max-unrolled-insns=400",
        "--param=max-unrolled-insns=1200"}},
      {"max-peeled-insns",
       {"", "--param=max-peeled-insns=100", "--param=max-peeled-insns=400"}},
      {"inline-unit-growth",
       {"", "--param=inline-unit-growth=20", "--param=inline-unit-growth=80"}},
      {"max-inline-insns-auto",
       {"", "--param=max-inline-insns-auto=30", "--param=max-inline-insns-auto=120"}},
      {"simultaneous-prefetches",
       {"", "--param=simultaneous-prefetches=2", "--param=simultaneous-prefetches=8"}},
      {"l1-cache-line-size", {"", "--param=l1-cache-line-size=64"}},
      {"avoid-fma", {"", "-ffp-contract=off"}},
  };
  return FlagSpace(std::move(f));
}

double FlagSpace::search_space_size() const {
  double s = 1;
  for (const Flag& f : flags_) s *= static_cast<double>(f.values.size());
  return s;
}

Individual FlagSpace::random_individual(std::mt19937_64& rng) const {
  Individual ind(flags_.size());
  for (size_t i = 0; i < flags_.size(); ++i)
    ind[i] = static_cast<uint8_t>(rng() % flags_[i].values.size());
  return ind;
}

Individual FlagSpace::baseline_individual() const {
  return Individual(flags_.size(), 0);
}

bool FlagSpace::valid(const Individual& ind) const {
  if (ind.size() != flags_.size()) return false;
  for (size_t i = 0; i < flags_.size(); ++i)
    if (ind[i] >= flags_[i].values.size()) return false;
  return true;
}

std::vector<std::string> FlagSpace::to_arguments(const Individual& ind) const {
  if (!valid(ind)) throw std::invalid_argument("FlagSpace: invalid individual");
  std::vector<std::string> args;
  for (size_t i = 0; i < flags_.size(); ++i) {
    const std::string& v = flags_[i].values[ind[i]];
    if (!v.empty()) args.push_back(v);
  }
  return args;
}

std::string FlagSpace::to_string(const Individual& ind) const {
  std::string s;
  for (const std::string& a : to_arguments(ind)) {
    if (!s.empty()) s += ' ';
    s += a;
  }
  return s.empty() ? "(plain -O3)" : s;
}

}  // namespace swve::tune
