#include "tune/flag_space.hpp"

#include <cstdlib>
#include <stdexcept>

#include "align/sharded_search.hpp"
#include "core/batch32.hpp"
#include "core/dispatch.hpp"
#include "simd/cpu.hpp"

namespace swve::tune {

FlagSpace FlagSpace::gcc_default() {
  // Choice 0 is always "leave at -O3 default" so the baseline individual is
  // plain -O3, matching the paper's compilation setup.
  std::vector<Flag> f = {
      {"unroll-loops", {"", "-funroll-loops", "-fno-unroll-loops"}},
      {"unroll-all-loops", {"", "-funroll-all-loops"}},
      {"peel-loops", {"", "-fpeel-loops", "-fno-peel-loops"}},
      {"tree-vectorize", {"", "-fno-tree-vectorize"}},
      {"vect-cost-model",
       {"", "-fvect-cost-model=unlimited", "-fvect-cost-model=cheap",
        "-fvect-cost-model=very-cheap"}},
      {"tree-slp-vectorize", {"", "-fno-tree-slp-vectorize"}},
      {"schedule-insns", {"", "-fschedule-insns", "-fno-schedule-insns"}},
      {"schedule-insns2", {"", "-fno-schedule-insns2"}},
      {"sched-pressure", {"", "-fsched-pressure"}},
      {"modulo-sched", {"", "-fmodulo-sched"}},
      {"gcse-after-reload", {"", "-fgcse-after-reload", "-fno-gcse-after-reload"}},
      {"ipa-cp-clone", {"", "-fno-ipa-cp-clone"}},
      {"split-loops", {"", "-fsplit-loops"}},
      {"loop-interchange", {"", "-floop-interchange"}},
      {"tree-loop-distribution", {"", "-ftree-loop-distribution"}},
      {"prefetch-loop-arrays", {"", "-fprefetch-loop-arrays"}},
      {"omit-frame-pointer", {"", "-fomit-frame-pointer"}},
      {"align-functions", {"", "-falign-functions=32", "-falign-functions=64"}},
      {"align-loops", {"", "-falign-loops=16", "-falign-loops=32"}},
      {"max-unroll-times",
       {"", "--param=max-unroll-times=2", "--param=max-unroll-times=4",
        "--param=max-unroll-times=8", "--param=max-unroll-times=16"}},
      {"max-unrolled-insns",
       {"", "--param=max-unrolled-insns=128", "--param=max-unrolled-insns=400",
        "--param=max-unrolled-insns=1200"}},
      {"max-peeled-insns",
       {"", "--param=max-peeled-insns=100", "--param=max-peeled-insns=400"}},
      {"inline-unit-growth",
       {"", "--param=inline-unit-growth=20", "--param=inline-unit-growth=80"}},
      {"max-inline-insns-auto",
       {"", "--param=max-inline-insns-auto=30", "--param=max-inline-insns-auto=120"}},
      {"simultaneous-prefetches",
       {"", "--param=simultaneous-prefetches=2", "--param=simultaneous-prefetches=8"}},
      {"l1-cache-line-size", {"", "--param=l1-cache-line-size=64"}},
      {"avoid-fma", {"", "-ffp-contract=off"}},
  };
  return FlagSpace(std::move(f));
}

FlagSpace FlagSpace::gcc_with_runtime() {
  FlagSpace space = gcc_default();
  // Choice 0 stays "leave as is" so the baseline individual keeps the
  // process defaults (Auto interleave, default prefetch distance).
  space.flags_.push_back(
      {"batch-ilp", {"", "ilp=1", "ilp=2", "ilp=4"}, /*runtime=*/true});
  space.flags_.push_back({"batch-prefetch",
                          {"", "prefetch=0", "prefetch=2", "prefetch=4",
                           "prefetch=8"},
                          /*runtime=*/true});
  // Database shard count for sharded batch search ("" = auto: topology
  // node count). Results are bit-identical across choices — the GA only
  // sees the throughput difference.
  space.flags_.push_back(
      {"search-shards", {"", "shards=1", "shards=2", "shards=4"},
       /*runtime=*/true});
  return space;
}

double FlagSpace::search_space_size() const {
  double s = 1;
  for (const Flag& f : flags_) s *= static_cast<double>(f.values.size());
  return s;
}

Individual FlagSpace::random_individual(std::mt19937_64& rng) const {
  Individual ind(flags_.size());
  for (size_t i = 0; i < flags_.size(); ++i)
    ind[i] = static_cast<uint8_t>(rng() % flags_[i].values.size());
  return ind;
}

Individual FlagSpace::baseline_individual() const {
  return Individual(flags_.size(), 0);
}

bool FlagSpace::valid(const Individual& ind) const {
  if (ind.size() != flags_.size()) return false;
  for (size_t i = 0; i < flags_.size(); ++i)
    if (ind[i] >= flags_[i].values.size()) return false;
  return true;
}

std::vector<std::string> FlagSpace::to_arguments(const Individual& ind) const {
  if (!valid(ind)) throw std::invalid_argument("FlagSpace: invalid individual");
  std::vector<std::string> args;
  for (size_t i = 0; i < flags_.size(); ++i) {
    if (flags_[i].runtime) continue;
    const std::string& v = flags_[i].values[ind[i]];
    if (!v.empty()) args.push_back(v);
  }
  return args;
}

std::vector<std::string> FlagSpace::runtime_settings(const Individual& ind) const {
  if (!valid(ind)) throw std::invalid_argument("FlagSpace: invalid individual");
  std::vector<std::string> settings;
  for (size_t i = 0; i < flags_.size(); ++i) {
    if (!flags_[i].runtime) continue;
    const std::string& v = flags_[i].values[ind[i]];
    if (!v.empty()) settings.push_back(v);
  }
  return settings;
}

bool FlagSpace::has_runtime() const noexcept {
  for (const Flag& f : flags_)
    if (f.runtime) return true;
  return false;
}

std::string FlagSpace::to_string(const Individual& ind) const {
  std::string s;
  for (const std::string& a : to_arguments(ind)) {
    if (!s.empty()) s += ' ';
    s += a;
  }
  for (const std::string& a : runtime_settings(ind)) {
    if (!s.empty()) s += ' ';
    s += "[runtime]";
    s += a;
  }
  return s.empty() ? "(plain -O3)" : s;
}

void apply_runtime_settings(const std::vector<std::string>& settings) {
  const simd::Isa isas[] = {simd::Isa::Scalar, simd::Isa::Sse41,
                            simd::Isa::Avx2, simd::Isa::Avx512};
  // Reset to defaults first so an individual that leaves a knob at choice 0
  // doesn't inherit the previous individual's setting.
  for (simd::Isa isa : isas)
    core::set_ilp_override(isa, core::IlpPolicy::auto_policy());
  core::set_batch_prefetch_distance(core::kDefaultBatchPrefetchCols);
  align::set_shard_count_hint(0);
  for (const std::string& s : settings) {
    if (s.rfind("ilp=", 0) == 0) {
      const int k = std::atoi(s.c_str() + 4);
      for (simd::Isa isa : isas)
        core::set_ilp_override(isa, core::IlpPolicy::fixed(k));
    } else if (s.rfind("prefetch=", 0) == 0) {
      core::set_batch_prefetch_distance(
          static_cast<uint32_t>(std::atoi(s.c_str() + 9)));
    } else if (s.rfind("shards=", 0) == 0) {
      align::set_shard_count_hint(std::atoi(s.c_str() + 7));
    } else {
      throw std::invalid_argument("apply_runtime_settings: unknown key " + s);
    }
  }
}

}  // namespace swve::tune
