#include "tune/ga.hpp"

#include <algorithm>
#include <numeric>
#include <random>
#include <stdexcept>

namespace swve::tune {

GaResult run_ga(const FlagSpace& space, Evaluator& eval, const GaParams& p) {
  if (p.population < 2 || p.generations < 1 || p.tournament < 1)
    throw std::invalid_argument("run_ga: bad parameters");
  std::mt19937_64 rng(p.seed);
  std::uniform_real_distribution<double> u(0.0, 1.0);

  struct Scored {
    Individual ind;
    double fitness;
  };
  auto score = [&](Individual ind) {
    double f = eval.evaluate(ind);
    return Scored{std::move(ind), f};
  };

  GaResult out;
  out.baseline_fitness = eval.evaluate(space.baseline_individual());
  ++out.evaluations;

  std::vector<Scored> pop;
  pop.reserve(static_cast<size_t>(p.population));
  if (p.include_baseline) {
    pop.push_back(score(space.baseline_individual()));
    ++out.evaluations;
  }
  while (pop.size() < static_cast<size_t>(p.population)) {
    pop.push_back(score(space.random_individual(rng)));
    ++out.evaluations;
  }

  auto by_fitness = [](const Scored& a, const Scored& b) {
    return a.fitness > b.fitness;
  };
  std::sort(pop.begin(), pop.end(), by_fitness);

  auto tournament_pick = [&]() -> const Scored& {
    size_t best = rng() % pop.size();
    for (int t = 1; t < p.tournament; ++t) {
      size_t c = rng() % pop.size();
      if (pop[c].fitness > pop[best].fitness) best = c;
    }
    return pop[best];
  };

  for (int g = 0; g < p.generations; ++g) {
    std::vector<Scored> next;
    next.reserve(pop.size());
    // Elitism: the best individuals survive unchanged.
    for (int e = 0; e < p.elites && e < static_cast<int>(pop.size()); ++e)
      next.push_back(pop[static_cast<size_t>(e)]);

    while (next.size() < pop.size()) {
      Individual child = tournament_pick().ind;
      if (u(rng) < p.crossover_rate) {
        const Individual& other = tournament_pick().ind;
        for (size_t i = 0; i < child.size(); ++i)
          if (rng() & 1) child[i] = other[i];
      }
      for (size_t i = 0; i < child.size(); ++i)
        if (u(rng) < p.mutation_rate)
          child[i] = static_cast<uint8_t>(rng() % space.flag(i).values.size());
      next.push_back(score(std::move(child)));
      ++out.evaluations;
    }
    pop = std::move(next);
    std::sort(pop.begin(), pop.end(), by_fitness);
    out.generation_best.push_back(pop.front().fitness);
  }

  out.best = pop.front().ind;
  out.best_fitness = pop.front().fitness;
  return out;
}

}  // namespace swve::tune
