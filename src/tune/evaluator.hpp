// Fitness evaluators for the GA tuner.
//
// Two implementations (DESIGN.md §4, substitution 4):
//   * SimulatedEvaluator — a seeded response surface over the flag space
//     (per-flag effects + pairwise interactions + query-size dependence),
//     deterministic and instant; the default for tests and benches. Its
//     structure reproduces the paper's findings: ~10% mean improvement,
//     up to ~50% for favorable (architecture, query-size) combinations,
//     and gains that vary with query size.
//   * GccEvaluator — the real thing: compiles a self-contained SW kernel
//     with the individual's flags into a shared object, dlopens it, and
//     times it on a synthetic workload. Fitness is measured GCUPS.
#pragma once

#include <cstdint>
#include <string>

#include "tune/flag_space.hpp"

namespace swve::tune {

class Evaluator {
 public:
  virtual ~Evaluator() = default;
  /// Higher is better. Must be deterministic per individual for the
  /// simulated surface; the GCC evaluator is as stable as the machine.
  virtual double evaluate(const Individual& ind) = 0;
  virtual std::string name() const = 0;
};

/// Deterministic synthetic response surface.
class SimulatedEvaluator final : public Evaluator {
 public:
  /// `query_size` shapes which flags matter (the paper found tuning gains
  /// to be strongly query-size dependent); `arch_seed` plays the role of
  /// the microarchitecture.
  SimulatedEvaluator(const FlagSpace& space, uint64_t arch_seed, int query_size);

  double evaluate(const Individual& ind) override;
  std::string name() const override { return "simulated"; }

  /// Fitness of plain -O3 (the normalization baseline).
  double baseline() const { return baseline_; }
  /// Best fitness over the whole space found by exhaustive per-flag ascent
  /// (upper-bound estimate used by tests).
  double approx_optimum() const { return approx_opt_; }

 private:
  const FlagSpace* space_;
  std::vector<std::vector<double>> main_effects_;   // [flag][choice]
  struct Interaction {
    uint32_t f1, c1, f2, c2;
    double effect;
  };
  std::vector<Interaction> interactions_;
  double base_gcups_;
  double baseline_ = 0;
  double approx_opt_ = 0;
};

/// Real evaluator: gcc + dlopen + timing. Construction probes the
/// environment; available() reports whether it can run here.
class GccEvaluator final : public Evaluator {
 public:
  struct Options {
    std::string gcc = "gcc";
    std::string work_dir = "/tmp/swve_tune";
    int query_size = 256;
    int db_size = 1 << 15;      ///< reference residues per timing run
    int repeats = 3;            ///< best-of timing repetitions
  };
  explicit GccEvaluator(const FlagSpace& space);
  GccEvaluator(const FlagSpace& space, Options opt);

  bool available() const { return available_; }
  double evaluate(const Individual& ind) override;
  std::string name() const override { return "gcc"; }

 private:
  Options opt_;
  bool available_ = false;
  const FlagSpace* space_ = nullptr;
  std::string kernel_src_path_;
  int counter_ = 0;
};

}  // namespace swve::tune
