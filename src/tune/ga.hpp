// Evolutionary search over the compiler flag space (§III-E).
//
// Matches the paper's description: random initial population; each
// hyperparameter evolves within its allowable set of values; every new
// population is evaluated and the best retained. Standard machinery:
// tournament selection, uniform crossover, per-gene mutation, elitism.
// The search is stochastic ("not guaranteed to find the best solution"),
// but fully reproducible from the seed.
#pragma once

#include <cstdint>
#include <vector>

#include "tune/evaluator.hpp"
#include "tune/flag_space.hpp"

namespace swve::tune {

struct GaParams {
  uint64_t seed = 1;
  int population = 24;
  int generations = 12;
  int tournament = 3;
  double crossover_rate = 0.9;
  double mutation_rate = 0.08;  ///< per gene
  int elites = 2;
  bool include_baseline = true;  ///< seed plain -O3 into generation 0
};

struct GaResult {
  Individual best;
  double best_fitness = 0;
  double baseline_fitness = 0;
  /// best-of-population trace, one entry per generation (monotone with
  /// elitism) — Fig 10's "improvement after tuning" numerator.
  std::vector<double> generation_best;
  uint64_t evaluations = 0;

  double improvement() const {
    return baseline_fitness > 0 ? best_fitness / baseline_fitness - 1.0 : 0.0;
  }
};

GaResult run_ga(const FlagSpace& space, Evaluator& eval, const GaParams& params);

}  // namespace swve::tune
