// GCC compiler-hyperparameter search space (§III-E of the paper).
//
// Each hyperparameter is a named flag with a finite set of settings: on/off
// -f flags, valued --param options, and a few enumerated options. An
// Individual is one choice per flag; the GA evolves populations of
// Individuals.
#pragma once

#include <cstdint>
#include <random>
#include <string>
#include <vector>

namespace swve::tune {

struct Flag {
  std::string name;                  ///< for reports
  std::vector<std::string> values;   ///< command-line text per setting
  /// Runtime hyperparameter instead of a compiler flag: values are
  /// "key=value" settings applied to the live process (see
  /// apply_runtime_settings), never passed to the compiler.
  bool runtime = false;
};

/// One choice index per flag of the space.
using Individual = std::vector<uint8_t>;

class FlagSpace {
 public:
  /// The default space: ~25 GCC flags/params that affect the SW kernel
  /// (unrolling, vectorization cost model, scheduling, inlining limits...).
  static FlagSpace gcc_default();

  /// gcc_default() plus runtime hyperparameters of the batch kernel —
  /// interleave depth ("ilp=K") and software-prefetch distance
  /// ("prefetch=D") — so fig10 co-tunes them with the compiler flags. The
  /// runtime flags contribute nothing to to_arguments(); evaluators apply
  /// them with apply_runtime_settings() before timing.
  static FlagSpace gcc_with_runtime();

  explicit FlagSpace(std::vector<Flag> flags) : flags_(std::move(flags)) {}

  size_t size() const noexcept { return flags_.size(); }
  const Flag& flag(size_t i) const noexcept { return flags_[i]; }

  /// Number of distinct individuals (capped at 2^63).
  double search_space_size() const;

  Individual random_individual(std::mt19937_64& rng) const;
  Individual baseline_individual() const;  ///< choice 0 everywhere (plain -O3)
  bool valid(const Individual& ind) const;

  /// Command-line arguments for an individual (empty strings and runtime
  /// flags skipped — those never reach the compiler).
  std::vector<std::string> to_arguments(const Individual& ind) const;
  std::string to_string(const Individual& ind) const;

  /// The individual's non-empty runtime "key=value" settings.
  std::vector<std::string> runtime_settings(const Individual& ind) const;
  /// Whether the space contains any runtime hyperparameter at all.
  bool has_runtime() const noexcept;

 private:
  std::vector<Flag> flags_;
};

/// Apply runtime settings to this process: "ilp=K" pins the batch-kernel
/// interleave depth (every ISA), "prefetch=D" sets the software-prefetch
/// distance in columns. Unknown keys throw. An empty list resets both to
/// their defaults (Auto interleave, default prefetch distance).
void apply_runtime_settings(const std::vector<std::string>& settings);

}  // namespace swve::tune
