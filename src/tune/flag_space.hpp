// GCC compiler-hyperparameter search space (§III-E of the paper).
//
// Each hyperparameter is a named flag with a finite set of settings: on/off
// -f flags, valued --param options, and a few enumerated options. An
// Individual is one choice per flag; the GA evolves populations of
// Individuals.
#pragma once

#include <cstdint>
#include <random>
#include <string>
#include <vector>

namespace swve::tune {

struct Flag {
  std::string name;                  ///< for reports
  std::vector<std::string> values;   ///< command-line text per setting
};

/// One choice index per flag of the space.
using Individual = std::vector<uint8_t>;

class FlagSpace {
 public:
  /// The default space: ~25 GCC flags/params that affect the SW kernel
  /// (unrolling, vectorization cost model, scheduling, inlining limits...).
  static FlagSpace gcc_default();

  explicit FlagSpace(std::vector<Flag> flags) : flags_(std::move(flags)) {}

  size_t size() const noexcept { return flags_.size(); }
  const Flag& flag(size_t i) const noexcept { return flags_[i]; }

  /// Number of distinct individuals (capped at 2^63).
  double search_space_size() const;

  Individual random_individual(std::mt19937_64& rng) const;
  Individual baseline_individual() const;  ///< choice 0 everywhere (plain -O3)
  bool valid(const Individual& ind) const;

  /// Command-line arguments for an individual (empty strings skipped).
  std::vector<std::string> to_arguments(const Individual& ind) const;
  std::string to_string(const Individual& ind) const;

 private:
  std::vector<Flag> flags_;
};

}  // namespace swve::tune
