#include "tune/evaluator.hpp"

#include <dlfcn.h>
#include <sys/stat.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <memory>
#include <mutex>
#include <random>
#include <stdexcept>
#include <vector>

#include "align/exec_context.hpp"
#include "align/sharded_search.hpp"
#include "core/batch32.hpp"
#include "core/dispatch.hpp"
#include "perf/timer.hpp"
#include "seq/synthetic.hpp"
#include "simd/cpu.hpp"

namespace swve::tune {

// ---------------------------- simulated ---------------------------------

SimulatedEvaluator::SimulatedEvaluator(const FlagSpace& space, uint64_t arch_seed,
                                       int query_size)
    : space_(&space) {
  std::mt19937_64 rng(arch_seed * 0x9E3779B97F4A7C15ull + 12345);
  // Calibrated to the paper's Fig 10: most flags are neutral on a given
  // (architecture, query size); the active minority contributes small
  // log-scale effects, so the tuned optimum lands ~10% above -O3 on
  // average with favorable combinations reaching tens of percent.
  std::normal_distribution<double> effect(0.0, 0.006);
  std::uniform_real_distribution<double> u01(0.0, 1.0);
  // Query size shapes which flags matter: the effect magnitude of each flag
  // is modulated by a flag-specific size response (some flags help small
  // queries, some large — as observed in the paper).
  const double lq = std::log2(std::max(2, query_size));
  base_gcups_ = 8.0;

  main_effects_.resize(space.size());
  for (size_t f = 0; f < space.size(); ++f) {
    const double size_phase = std::uniform_real_distribution<double>(0, 6.28)(rng);
    const double s = std::abs(std::sin(lq * 0.7 + size_phase));
    const double size_gain = 0.1 + 1.6 * s * s * s;  // sharp query-size tuning
    const bool active = u01(rng) < 0.35;
    main_effects_[f].resize(space.flag(f).values.size(), 0.0);
    for (size_t c = 1; c < space.flag(f).values.size(); ++c)
      main_effects_[f][c] = active ? effect(rng) * size_gain : 0.0;
  }
  // Sparse pairwise interactions, slightly larger than main effects.
  std::uniform_int_distribution<size_t> pick_flag(0, space.size() - 1);
  const size_t n_inter = space.size();
  for (size_t k = 0; k < n_inter; ++k) {
    size_t f1 = pick_flag(rng), f2 = pick_flag(rng);
    if (f1 == f2) continue;
    Interaction it;
    it.f1 = static_cast<uint32_t>(f1);
    it.f2 = static_cast<uint32_t>(f2);
    it.c1 = static_cast<uint32_t>(
        1 + rng() % std::max<size_t>(1, space_->flag(f1).values.size() - 1));
    it.c2 = static_cast<uint32_t>(
        1 + rng() % std::max<size_t>(1, space_->flag(f2).values.size() - 1));
    it.effect = effect(rng) * 2.0;
    interactions_.push_back(it);
  }

  baseline_ = evaluate(space.baseline_individual());
  // Greedy coordinate ascent gives a cheap optimum estimate.
  Individual best = space.baseline_individual();
  for (int round = 0; round < 3; ++round) {
    for (size_t f = 0; f < space.size(); ++f) {
      double best_fit = evaluate(best);
      uint8_t best_c = best[f];
      for (size_t c = 0; c < space.flag(f).values.size(); ++c) {
        best[f] = static_cast<uint8_t>(c);
        double fit = evaluate(best);
        if (fit > best_fit) {
          best_fit = fit;
          best_c = static_cast<uint8_t>(c);
        }
      }
      best[f] = best_c;
    }
  }
  approx_opt_ = evaluate(best);
}

double SimulatedEvaluator::evaluate(const Individual& ind) {
  if (!space_->valid(ind))
    throw std::invalid_argument("SimulatedEvaluator: invalid individual");
  double log_gain = 0;
  for (size_t f = 0; f < ind.size(); ++f) log_gain += main_effects_[f][ind[f]];
  for (const Interaction& it : interactions_)
    if (ind[it.f1] == it.c1 && ind[it.f2] == it.c2) log_gain += it.effect;
  return base_gcups_ * std::exp(log_gain);
}

// ------------------------------ gcc -------------------------------------

namespace {

// Self-contained scalar Smith-Waterman kernel compiled by the evaluator.
// Plain auto-vectorizable C so the chosen flags actually matter.
constexpr const char* kKernelSource = R"SRC(
#include <stdint.h>
extern "C" int swve_tuned_kernel(const uint8_t* q, int m, const uint8_t* r,
                                 int n, const int32_t* mat, int open, int ext) {
  static int32_t hrow[16384];
  static int32_t erow[16384];
  if (m > 16383 || m <= 0 || n <= 0) return -1;
  for (int i = 0; i <= m; ++i) { hrow[i] = 0; erow[i] = 0; }
  int best = 0;
  for (int j = 0; j < n; ++j) {
    int hdiag = 0, f = 0;
    const int32_t* srow = mat + (int32_t)r[j] * 32;
    for (int i = 0; i < m; ++i) {
      int hup = hrow[i + 1];
      int e = erow[i + 1] - ext;
      int eo = hup - open;
      if (eo > e) e = eo;
      if (e < 0) e = 0;
      int fo = hrow[i] - open;
      int fx = f - ext;
      f = fo > fx ? fo : fx;
      if (f < 0) f = 0;
      int h = hdiag + srow[q[i]];
      if (h < e) h = e;
      if (h < f) h = f;
      if (h < 0) h = 0;
      if (h > best) best = h;
      hdiag = hup;
      hrow[i + 1] = h;
      erow[i + 1] = e;
    }
  }
  return best;
}
)SRC";

using KernelFn = int (*)(const uint8_t*, int, const uint8_t*, int, const int32_t*,
                         int, int);

/// GCUPS of one in-process batch-kernel pass under the currently applied
/// runtime settings (interleave depth, prefetch distance) — the term of the
/// fitness the runtime hyperparameters move. Fixed synthetic workload.
double time_batch_pass() {
  struct Fixture {
    seq::SequenceDatabase db;
    core::Batch32Db bdb;
    std::vector<core::BatchCols> cols;
    seq::Sequence q;
    Fixture()
        : db([] {
            seq::SyntheticConfig cfg;
            cfg.seed = 33;
            cfg.target_residues = 60'000;
            cfg.min_length = 100;
            cfg.max_length = 400;
            return seq::SequenceDatabase::synthetic(cfg);
          }()),
          bdb(db, 32),
          q(seq::generate_sequence(34, 128)) {
      cols.resize(bdb.batch_count());
      for (size_t b = 0; b < bdb.batch_count(); ++b)
        cols[b] = core::BatchCols{bdb.batch(b).columns, bdb.batch(b).max_len};
    }
  };
  static Fixture fx;
  static thread_local core::Workspace ws;
  core::AlignConfig cfg;
  const simd::Isa isa = simd::resolve_isa(cfg.isa);
  const int k = core::resolved_ilp(isa);
  const uint64_t cells = fx.bdb.padded_residues() * fx.q.length();

  // A "shards=N" genome routes the pass through ShardedSearch (numa off —
  // the term being tuned is the shard/merge shape, not placement), so the
  // GA feels the shard count the same way the serving path would. Instances
  // are cached per shard count: pool spin-up is construction cost, not
  // per-individual cost.
  const int hint = align::shard_count_hint();
  if (hint > 1) {
    static std::mutex mu;
    static std::map<int, std::unique_ptr<align::ShardedSearch>> cache;
    align::ShardedSearch* sharded = nullptr;
    {
      std::lock_guard<std::mutex> lk(mu);
      auto it = cache.find(hint);
      if (it == cache.end()) {
        align::ShardOptions sopt;
        sopt.shards = 0;  // resolve via the hint; auto clamps to batches
        auto made = align::ShardedSearch::create(fx.db, fx.bdb, sopt);
        it = cache.emplace(hint, made ? std::move(*made) : nullptr).first;
      }
      sharded = it->second.get();
    }
    if (sharded != nullptr) {
      const seq::SeqView qv{fx.q.data(), fx.q.length()};
      align::ExecContext ctx;
      sharded->search(cfg, qv, 8, ctx);  // warm-up
      double best = 0;
      for (int rep = 0; rep < 2; ++rep) {
        perf::Stopwatch sw;
        sharded->search(cfg, qv, 8, ctx);
        best = std::max(best,
                        static_cast<double>(cells) / sw.seconds() / 1e9);
      }
      return best;
    }
  }

  std::vector<core::Batch8Result> out(fx.cols.size());
  auto pass = [&] {
    core::batch32_align_u8_group(fx.q, fx.cols.data(),
                                 static_cast<int>(fx.cols.size()), 32, cfg, ws,
                                 isa, k, out.data());
  };
  pass();  // warm-up
  double best = 0;
  for (int rep = 0; rep < 2; ++rep) {
    perf::Stopwatch sw;
    pass();
    best = std::max(best, static_cast<double>(cells) / sw.seconds() / 1e9);
  }
  return best;
}

}  // namespace

GccEvaluator::GccEvaluator(const FlagSpace& space)
    : GccEvaluator(space, Options()) {}

GccEvaluator::GccEvaluator(const FlagSpace& space, Options opt)
    : opt_(std::move(opt)), space_(&space) {
  ::mkdir(opt_.work_dir.c_str(), 0755);
  kernel_src_path_ = opt_.work_dir + "/kernel.cpp";
  std::ofstream src(kernel_src_path_);
  if (!src) return;
  src << kKernelSource;
  src.close();
  // Probe: can we compile and dlopen at all?
  const std::string so = opt_.work_dir + "/probe.so";
  const std::string cmd = opt_.gcc + " -O2 -shared -fPIC -o " + so + " " +
                          kernel_src_path_ + " 2>/dev/null";
  if (std::system(cmd.c_str()) != 0) return;
  void* h = dlopen(so.c_str(), RTLD_NOW | RTLD_LOCAL);
  if (!h) return;
  available_ = dlsym(h, "swve_tuned_kernel") != nullptr;
  dlclose(h);
}

double GccEvaluator::evaluate(const Individual& ind) {
  if (!available_) throw std::runtime_error("GccEvaluator: unavailable here");
  // Runtime hyperparameters (batch interleave depth, prefetch distance) are
  // applied to the live process and scored with a real batch-kernel pass;
  // the fitness is compiled-kernel GCUPS + batch-kernel GCUPS, so one
  // genome co-tunes compiler flags and runtime knobs. Measured whenever the
  // space carries runtime flags (choice 0 included) to keep individuals
  // comparable against the baseline.
  double batch_gcups = 0;
  if (space_->has_runtime()) {
    apply_runtime_settings(space_->runtime_settings(ind));
    batch_gcups = time_batch_pass();
    apply_runtime_settings({});  // restore process defaults
  }
  const std::string so =
      opt_.work_dir + "/tuned_" + std::to_string(counter_++) + ".so";
  std::string cmd = opt_.gcc + " -O3 -march=native -shared -fPIC";
  for (const std::string& a : space_->to_arguments(ind)) cmd += " " + a;
  cmd += " -o " + so + " " + kernel_src_path_ + " 2>/dev/null";
  if (std::system(cmd.c_str()) != 0) return 0.0;  // invalid flag combos lose

  void* h = dlopen(so.c_str(), RTLD_NOW | RTLD_LOCAL);
  std::remove(so.c_str());
  if (!h) return 0.0;
  auto fn = reinterpret_cast<KernelFn>(dlsym(h, "swve_tuned_kernel"));
  if (!fn) {
    dlclose(h);
    return 0.0;
  }

  // Deterministic workload.
  std::mt19937_64 rng(4242);
  std::vector<uint8_t> q(static_cast<size_t>(opt_.query_size));
  std::vector<uint8_t> r(static_cast<size_t>(opt_.db_size));
  for (auto& c : q) c = static_cast<uint8_t>(rng() % 24);
  for (auto& c : r) c = static_cast<uint8_t>(rng() % 24);
  std::vector<int32_t> mat(32 * 32);
  for (int a = 0; a < 32; ++a)
    for (int b = 0; b < 32; ++b)
      mat[static_cast<size_t>(a) * 32 + b] = a == b ? 5 : -2;

  double best_gcups = 0;
  int sink = 0;
  for (int rep = 0; rep < opt_.repeats; ++rep) {
    perf::Stopwatch sw;
    sink += fn(q.data(), static_cast<int>(q.size()), r.data(),
               static_cast<int>(r.size()), mat.data(), 11, 1);
    asm volatile("" ::"r"(sink));
    double secs = sw.seconds();
    double gcups = static_cast<double>(q.size()) * static_cast<double>(r.size()) /
                   secs / 1e9;
    best_gcups = std::max(best_gcups, gcups);
  }
  (void)sink;
  dlclose(h);
  return best_gcups + batch_gcups;
}

}  // namespace swve::tune
