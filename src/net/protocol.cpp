#include "net/protocol.hpp"

#include <chrono>
#include <cstring>

#include "core/db_format.hpp"
#include "net/json.hpp"

namespace swve::net {

namespace {

using service::AlignRequest;
using service::AlignResponse;
using service::BatchRequest;
using service::BatchResponse;
using service::RequestOptions;
using service::RequestTrace;
using service::SearchRequest;
using service::SearchResponse;

// --------------------------------------------------------- wire primitives

void put_u8(std::string& out, uint8_t v) { out += static_cast<char>(v); }

void put_u32(std::string& out, uint32_t v) {
  for (int i = 0; i < 4; ++i) out += static_cast<char>((v >> (8 * i)) & 0xFF);
}

void put_u64(std::string& out, uint64_t v) {
  for (int i = 0; i < 8; ++i) out += static_cast<char>((v >> (8 * i)) & 0xFF);
}

void put_i32(std::string& out, int32_t v) {
  put_u32(out, static_cast<uint32_t>(v));
}

void put_f64(std::string& out, double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof bits);
  put_u64(out, bits);
}

void put_bytes(std::string& out, const void* data, size_t n) {
  out.append(static_cast<const char*>(data), n);
}

/// Bounds-checked little-endian reader; every accessor reports failure
/// instead of reading past the payload (the fuzz tests drive this hard).
struct Reader {
  const uint8_t* p;
  const uint8_t* end;
  explicit Reader(std::string_view s)
      : p(reinterpret_cast<const uint8_t*>(s.data())), end(p + s.size()) {}

  size_t remaining() const { return static_cast<size_t>(end - p); }

  bool u8(uint8_t& v) {
    if (remaining() < 1) return false;
    v = *p++;
    return true;
  }
  bool u32(uint32_t& v) {
    if (remaining() < 4) return false;
    v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<uint32_t>(*p++) << (8 * i);
    return true;
  }
  bool u64(uint64_t& v) {
    if (remaining() < 8) return false;
    v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<uint64_t>(*p++) << (8 * i);
    return true;
  }
  bool i32(int32_t& v) {
    uint32_t u;
    if (!u32(u)) return false;
    v = static_cast<int32_t>(u);
    return true;
  }
  bool f64(double& v) {
    uint64_t bits;
    if (!u64(bits)) return false;
    std::memcpy(&v, &bits, sizeof v);
    return true;
  }
  bool bytes(const uint8_t*& out, size_t n) {
    if (remaining() < n) return false;
    out = p;
    p += n;
    return true;
  }
  bool done() const { return p == end; }
};

// ------------------------------------------------------- config + options

void encode_config(std::string& out, const std::optional<core::AlignConfig>& c) {
  if (!c) {
    put_u8(out, 0);
    return;
  }
  put_u8(out, 1);
  put_u8(out, static_cast<uint8_t>(c->scheme));
  put_u8(out, static_cast<uint8_t>(c->delivery));
  put_u8(out, static_cast<uint8_t>(c->gap_model));
  put_u8(out, static_cast<uint8_t>(c->width));
  put_u8(out, static_cast<uint8_t>(c->isa));
  put_u8(out, c->traceback ? 1 : 0);
  put_i32(out, c->match);
  put_i32(out, c->mismatch);
  put_i32(out, c->gap_open);
  put_i32(out, c->gap_extend);
  put_i32(out, c->band);
  put_u64(out, c->max_traceback_cells);
  const std::string name =
      c->scheme == core::ScoreScheme::Matrix && c->matrix != nullptr
          ? c->matrix->name()
          : std::string();
  put_u8(out, static_cast<uint8_t>(name.size() < 255 ? name.size() : 255));
  put_bytes(out, name.data(), name.size() < 255 ? name.size() : 255);
}

bool decode_config(Reader& r, std::optional<core::AlignConfig>& out) {
  uint8_t has = 0;
  if (!r.u8(has)) return false;
  if (has == 0) {
    out.reset();
    return true;
  }
  if (has != 1) return false;
  core::AlignConfig c;
  uint8_t scheme, delivery, gap_model, width, isa, traceback, name_len;
  if (!r.u8(scheme) || !r.u8(delivery) || !r.u8(gap_model) || !r.u8(width) ||
      !r.u8(isa) || !r.u8(traceback))
    return false;
  if (scheme > 1 || delivery > 3 || gap_model > 1 || width > 3 || isa > 4)
    return false;
  c.scheme = static_cast<core::ScoreScheme>(scheme);
  c.delivery = static_cast<core::ScoreDelivery>(delivery);
  c.gap_model = static_cast<core::GapModel>(gap_model);
  c.width = static_cast<core::Width>(width);
  c.isa = static_cast<simd::Isa>(isa);
  c.traceback = traceback != 0;
  if (!r.i32(c.match) || !r.i32(c.mismatch) || !r.i32(c.gap_open) ||
      !r.i32(c.gap_extend) || !r.i32(c.band) || !r.u64(c.max_traceback_cells))
    return false;
  if (!r.u8(name_len)) return false;
  const uint8_t* name_bytes = nullptr;
  if (!r.bytes(name_bytes, name_len)) return false;
  if (c.scheme == core::ScoreScheme::Matrix) {
    const std::string name(reinterpret_cast<const char*>(name_bytes), name_len);
    // Unknown name -> null matrix; validation turns that into InvalidConfig
    // (MissingMatrix) rather than a protocol error.
    c.matrix = matrix::ScoreMatrix::find(name);
  }
  out = c;
  return true;
}

void encode_options(std::string& out, const RequestOptions& o) {
  put_u8(out, o.top_k ? 1 : 0);
  put_u64(out, o.top_k ? static_cast<uint64_t>(*o.top_k) : 0);
  put_u8(out, o.traceback ? 1 : 0);
  put_u8(out, o.traceback && *o.traceback ? 1 : 0);
  const uint64_t deadline_ns =
      o.deadline
          ? static_cast<uint64_t>(
                std::chrono::duration_cast<std::chrono::nanoseconds>(*o.deadline)
                    .count())
          : 0;
  put_u64(out, deadline_ns);
  encode_config(out, o.config);
}

bool decode_options(Reader& r, RequestOptions& o) {
  uint8_t has_top_k, has_traceback, traceback;
  uint64_t top_k, deadline_ns;
  if (!r.u8(has_top_k) || !r.u64(top_k) || !r.u8(has_traceback) ||
      !r.u8(traceback) || !r.u64(deadline_ns))
    return false;
  if (has_top_k) o.top_k = static_cast<size_t>(top_k);
  if (has_traceback) o.traceback = traceback != 0;
  if (deadline_ns != 0)
    o.deadline = std::chrono::nanoseconds(deadline_ns);
  return decode_config(r, o.config);
}

// -------------------------------------------------------------- sequences

void encode_sequence(std::string& out, const seq::Sequence& s) {
  put_u8(out, static_cast<uint8_t>(s.alphabet().kind()));
  put_u32(out, static_cast<uint32_t>(s.id().size()));
  put_bytes(out, s.id().data(), s.id().size());
  put_u32(out, static_cast<uint32_t>(s.length()));
  put_bytes(out, s.data(), s.length());
}

bool decode_sequence(Reader& r, seq::Sequence& out) {
  uint8_t kind;
  uint32_t id_len, n;
  if (!r.u8(kind) || kind > 1) return false;
  const seq::Alphabet& alphabet =
      seq::Alphabet::get(static_cast<seq::AlphabetKind>(kind));
  if (!r.u32(id_len) || id_len > (1u << 20)) return false;
  const uint8_t* id_bytes = nullptr;
  if (!r.bytes(id_bytes, id_len)) return false;
  if (!r.u32(n)) return false;
  const uint8_t* codes = nullptr;
  if (!r.bytes(codes, n)) return false;
  std::vector<uint8_t> vec(codes, codes + n);
  // Out-of-alphabet codes become the wildcard — the same normalization the
  // string constructor applies, so hostile bytes cannot index past a
  // matrix row.
  const uint8_t limit = static_cast<uint8_t>(alphabet.size());
  for (uint8_t& c : vec)
    if (c >= limit) c = alphabet.wildcard();
  out = seq::Sequence(std::string(reinterpret_cast<const char*>(id_bytes),
                                  id_len),
                      std::move(vec), alphabet);
  return true;
}

// --------------------------------------------------------- trace + results

void encode_trace(std::string& out, const RequestTrace& t) {
  put_u8(out, static_cast<uint8_t>(t.scenario));
  put_f64(out, t.queue_wait_s);
  put_f64(out, t.kernel_s);
  put_u64(out, t.cells);
  put_u8(out, static_cast<uint8_t>(t.isa));
  put_u8(out, static_cast<uint8_t>(t.delivery));
  put_u8(out, static_cast<uint8_t>(t.width_used));
  put_u64(out, t.saturation_retries);
}

bool decode_trace(Reader& r, RequestTrace& t) {
  uint8_t scenario, isa, delivery, width;
  if (!r.u8(scenario) || scenario > 2) return false;
  t.scenario = static_cast<service::Scenario>(scenario);
  if (!r.f64(t.queue_wait_s) || !r.f64(t.kernel_s) || !r.u64(t.cells))
    return false;
  if (!r.u8(isa) || isa > 4 || !r.u8(delivery) || delivery > 3 ||
      !r.u8(width) || width > 3)
    return false;
  t.isa = static_cast<simd::Isa>(isa);
  t.delivery = static_cast<core::ScoreDelivery>(delivery);
  t.width_used = static_cast<core::Width>(width);
  return r.u64(t.saturation_retries);
}

void encode_alignment(std::string& out, const core::Alignment& a) {
  put_i32(out, a.score);
  put_i32(out, a.end_query);
  put_i32(out, a.end_ref);
  put_i32(out, a.begin_query);
  put_i32(out, a.begin_ref);
  put_u8(out, static_cast<uint8_t>(a.width_used));
  put_u8(out, static_cast<uint8_t>(a.isa_used));
  put_u8(out, static_cast<uint8_t>((a.saturated_8 ? 1 : 0) |
                                   (a.saturated_16 ? 2 : 0) |
                                   (a.saturated ? 4 : 0)));
  put_u64(out, a.stats.cells);
  put_u64(out, a.stats.vector_cells);
  put_u64(out, a.stats.scalar_cells);
  put_u64(out, a.stats.diagonals);
  put_u32(out, static_cast<uint32_t>(a.cigar.size()));
  for (size_t i = 0; i < a.cigar.size(); ++i)
    put_u32(out, a.cigar.len(i) << 2 |
                     static_cast<uint32_t>(a.cigar.op(i)));
}

bool decode_alignment(Reader& r, core::Alignment& a) {
  uint8_t width, isa, sat;
  uint32_t cigar_n;
  if (!r.i32(a.score) || !r.i32(a.end_query) || !r.i32(a.end_ref) ||
      !r.i32(a.begin_query) || !r.i32(a.begin_ref))
    return false;
  if (!r.u8(width) || width > 3 || !r.u8(isa) || isa > 4 || !r.u8(sat))
    return false;
  a.width_used = static_cast<core::Width>(width);
  a.isa_used = static_cast<simd::Isa>(isa);
  a.saturated_8 = (sat & 1) != 0;
  a.saturated_16 = (sat & 2) != 0;
  a.saturated = (sat & 4) != 0;
  if (!r.u64(a.stats.cells) || !r.u64(a.stats.vector_cells) ||
      !r.u64(a.stats.scalar_cells) || !r.u64(a.stats.diagonals))
    return false;
  if (!r.u32(cigar_n) || cigar_n > r.remaining() / 4) return false;
  a.cigar.clear();
  for (uint32_t i = 0; i < cigar_n; ++i) {
    uint32_t packed;
    if (!r.u32(packed) || (packed & 3u) > 2) return false;
    a.cigar.push(static_cast<core::CigarOp>(packed & 3u), packed >> 2);
  }
  return true;
}

void encode_search_result(std::string& out, const align::SearchResult& res) {
  put_u8(out, res.truncated ? 1 : 0);
  put_u64(out, res.query_length);
  put_u64(out, res.db_residues);
  put_f64(out, res.seconds);
  put_u64(out, res.stats.cells);
  put_u64(out, res.stats.vector_cells);
  put_u64(out, res.stats.scalar_cells);
  put_u64(out, res.stats.diagonals);
  put_u64(out, res.batch_stats.cells8);
  put_u64(out, res.batch_stats.useful_cells8);
  put_u64(out, res.batch_stats.rescored);
  put_u64(out, res.batch_stats.rescored_cells);
  put_u32(out, static_cast<uint32_t>(res.hits.size()));
  for (const align::Hit& h : res.hits) {
    put_u32(out, h.seq_index);
    put_i32(out, h.score);
    put_i32(out, h.end_query);
    put_i32(out, h.end_ref);
  }
}

bool decode_search_result(Reader& r, align::SearchResult& res) {
  uint8_t truncated;
  uint32_t nhits;
  if (!r.u8(truncated)) return false;
  res.truncated = truncated != 0;
  if (!r.u64(res.query_length) || !r.u64(res.db_residues) ||
      !r.f64(res.seconds) || !r.u64(res.stats.cells) ||
      !r.u64(res.stats.vector_cells) || !r.u64(res.stats.scalar_cells) ||
      !r.u64(res.stats.diagonals) || !r.u64(res.batch_stats.cells8) ||
      !r.u64(res.batch_stats.useful_cells8) ||
      !r.u64(res.batch_stats.rescored) ||
      !r.u64(res.batch_stats.rescored_cells))
    return false;
  if (!r.u32(nhits) || nhits > r.remaining() / 16) return false;
  res.hits.resize(nhits);
  for (align::Hit& h : res.hits) {
    if (!r.u32(h.seq_index) || !r.i32(h.score) || !r.i32(h.end_query) ||
        !r.i32(h.end_ref))
      return false;
  }
  return true;
}

// -------------------------------------------------------------- JSON mode

std::optional<core::AlignConfig> config_from_json(const Json& j) {
  if (!j.is_object()) return std::nullopt;
  core::AlignConfig c;
  if (const Json& v = j["scheme"]; v.is_string())
    c.scheme = v.as_string() == "fixed" ? core::ScoreScheme::Fixed
                                        : core::ScoreScheme::Matrix;
  if (const Json& v = j["matrix"]; v.is_string())
    c.matrix = matrix::ScoreMatrix::find(v.as_string());
  if (const Json& v = j["match"]; v.is_number())
    c.match = static_cast<int>(v.as_number());
  if (const Json& v = j["mismatch"]; v.is_number())
    c.mismatch = static_cast<int>(v.as_number());
  if (const Json& v = j["gap_model"]; v.is_string())
    c.gap_model = v.as_string() == "linear" ? core::GapModel::Linear
                                            : core::GapModel::Affine;
  if (const Json& v = j["gap_open"]; v.is_number())
    c.gap_open = static_cast<int>(v.as_number());
  if (const Json& v = j["gap_extend"]; v.is_number())
    c.gap_extend = static_cast<int>(v.as_number());
  if (const Json& v = j["band"]; v.is_number())
    c.band = static_cast<int>(v.as_number());
  if (const Json& v = j["width"]; v.is_string()) {
    const std::string& w = v.as_string();
    c.width = w == "8"    ? core::Width::W8
              : w == "16" ? core::Width::W16
              : w == "32" ? core::Width::W32
                          : core::Width::Adaptive;
  }
  if (const Json& v = j["isa"]; v.is_string())
    c.isa = simd::isa_from_string(v.as_string());
  if (const Json& v = j["delivery"]; v.is_string()) {
    const std::string& d = v.as_string();
    c.delivery = d == "gather"    ? core::ScoreDelivery::Gather
                 : d == "fill"    ? core::ScoreDelivery::Fill
                 : d == "shuffle" ? core::ScoreDelivery::Shuffle
                                  : core::ScoreDelivery::Auto;
  }
  if (const Json& v = j["traceback"]; v.is_bool())
    c.traceback = v.as_bool();
  return c;
}

const seq::Alphabet& alphabet_from_json(const Json& j) {
  return j["alphabet"].as_string() == "dna" ? seq::Alphabet::dna()
                                            : seq::Alphabet::protein();
}

RequestOptions options_from_json(const Json& j) {
  RequestOptions o;
  if (const Json& v = j["top_k"]; v.is_number())
    o.top_k = static_cast<size_t>(v.as_number());
  if (const Json& v = j["traceback"]; v.is_bool()) o.traceback = v.as_bool();
  if (const Json& v = j["deadline_ms"]; v.is_number())
    o.deadline = std::chrono::milliseconds(
        static_cast<int64_t>(v.as_number()));
  if (const Json& v = j["config"]; v.is_object())
    o.config = config_from_json(v);
  return o;
}

void trace_to_json(JsonObject& o, const RequestTrace& t) {
  JsonObject tr;
  tr["scenario"] = t.scenario == service::Scenario::Pairwise ? "pairwise"
                   : t.scenario == service::Scenario::Search ? "search"
                                                             : "batch";
  tr["queue_wait_s"] = t.queue_wait_s;
  tr["kernel_s"] = t.kernel_s;
  tr["cells"] = static_cast<double>(t.cells);
  tr["gcups"] = t.gcups();
  tr["isa"] = simd::isa_name(t.isa);
  tr["saturation_retries"] = static_cast<double>(t.saturation_retries);
  o["trace"] = Json(std::move(tr));
}

Json hits_to_json(const std::vector<align::Hit>& hits) {
  JsonArray arr;
  arr.reserve(hits.size());
  for (const align::Hit& h : hits) {
    JsonObject o;
    o["seq_index"] = static_cast<double>(h.seq_index);
    o["score"] = h.score;
    o["end_query"] = h.end_query;
    o["end_ref"] = h.end_ref;
    arr.push_back(Json(std::move(o)));
  }
  return Json(std::move(arr));
}

}  // namespace

// ---------------------------------------------------------------- framing

void encode_header(std::string& out, const FrameHeader& h) {
  put_u32(out, kMagic);
  put_u8(out, static_cast<uint8_t>(h.type));
  put_u8(out, h.flags);
  put_u8(out, h.tier);
  put_u8(out, h.status);
  put_u64(out, h.request_id);
  put_u32(out, h.payload_len);
}

std::optional<FrameHeader> decode_header(const uint8_t* bytes) {
  Reader r(std::string_view(reinterpret_cast<const char*>(bytes), kHeaderSize));
  uint32_t magic;
  uint8_t type;
  FrameHeader h;
  if (!r.u32(magic) || magic != kMagic) return std::nullopt;
  if (!r.u8(type) || !r.u8(h.flags) || !r.u8(h.tier) || !r.u8(h.status) ||
      !r.u64(h.request_id) || !r.u32(h.payload_len))
    return std::nullopt;
  h.type = static_cast<MsgType>(type);
  return h;
}

std::string encode_frame(const FrameHeader& h, std::string_view payload) {
  std::string out;
  out.reserve(kHeaderSize + payload.size());
  FrameHeader hh = h;
  hh.payload_len = static_cast<uint32_t>(payload.size());
  encode_header(out, hh);
  out.append(payload);
  return out;
}

bool known_request_type(uint8_t type) noexcept {
  return type >= static_cast<uint8_t>(MsgType::AlignRequest) &&
         type <= static_cast<uint8_t>(MsgType::MetricsRequest);
}

// ----------------------------------------------------------- wire tracing

void encode_trace_context(std::string& out, const WireTraceContext& ctx) {
  put_u64(out, ctx.trace_id);
  put_u8(out, ctx.sampled ? 1 : 0);
}

std::optional<WireTraceContext> decode_trace_context(
    std::string_view& payload) {
  if (payload.size() < kTraceContextSize) return std::nullopt;
  Reader r(payload.substr(0, kTraceContextSize));
  WireTraceContext ctx;
  uint8_t sampled = 0;
  if (!r.u64(ctx.trace_id) || !r.u8(sampled)) return std::nullopt;
  if (ctx.trace_id == 0) return std::nullopt;
  ctx.sampled = sampled != 0;
  payload.remove_prefix(kTraceContextSize);
  return ctx;
}

void encode_server_timing(std::string& out, const ServerTiming& t) {
  put_u64(out, t.trace_id);
  put_u32(out, t.queue_us);
  put_u32(out, t.exec_us);
  put_u32(out, t.serialize_us);
  put_u8(out, t.source);
}

std::optional<ServerTiming> decode_server_timing(std::string_view& payload) {
  if (payload.size() < kServerTimingSize) return std::nullopt;
  Reader r(payload.substr(payload.size() - kServerTimingSize));
  ServerTiming t;
  if (!r.u64(t.trace_id) || !r.u32(t.queue_us) || !r.u32(t.exec_us) ||
      !r.u32(t.serialize_us) || !r.u8(t.source))
    return std::nullopt;
  payload.remove_suffix(kServerTimingSize);
  return t;
}

// --------------------------------------------------------------- requests

void encode_align_request(std::string& out, const AlignRequest& rq) {
  encode_options(out, rq.options);
  encode_sequence(out, rq.query);
  encode_sequence(out, rq.reference);
}

void encode_search_request(std::string& out, const SearchRequest& rq) {
  encode_options(out, rq.options);
  put_u8(out, rq.mode == align::SearchMode::Batch ? 1 : 0);
  encode_sequence(out, rq.query);
}

void encode_batch_request(std::string& out, const BatchRequest& rq) {
  encode_options(out, rq.options);
  put_u32(out, static_cast<uint32_t>(rq.queries.size()));
  for (const seq::Sequence& q : rq.queries) encode_sequence(out, q);
}

std::optional<AlignRequest> decode_align_request(std::string_view payload) {
  Reader r(payload);
  AlignRequest rq;
  if (!decode_options(r, rq.options) || !decode_sequence(r, rq.query) ||
      !decode_sequence(r, rq.reference) || !r.done())
    return std::nullopt;
  return rq;
}

std::optional<SearchRequest> decode_search_request(std::string_view payload) {
  Reader r(payload);
  SearchRequest rq;
  uint8_t mode;
  if (!decode_options(r, rq.options) || !r.u8(mode) || mode > 1 ||
      !decode_sequence(r, rq.query) || !r.done())
    return std::nullopt;
  rq.mode = mode == 1 ? align::SearchMode::Batch : align::SearchMode::Diagonal;
  return rq;
}

std::optional<BatchRequest> decode_batch_request(std::string_view payload) {
  Reader r(payload);
  BatchRequest rq;
  uint32_t n;
  if (!decode_options(r, rq.options) || !r.u32(n)) return std::nullopt;
  // 10 bytes is the minimum wire size of one sequence; cheap pre-check so a
  // hostile count cannot force a huge reserve.
  if (n > r.remaining() / 10) return std::nullopt;
  rq.queries.resize(n);
  for (seq::Sequence& q : rq.queries)
    if (!decode_sequence(r, q)) return std::nullopt;
  if (!r.done()) return std::nullopt;
  return rq;
}

std::optional<AlignRequest> decode_align_request_json(std::string_view payload) {
  const auto doc = Json::parse(payload);
  if (!doc || !doc->is_object()) return std::nullopt;
  const Json& j = *doc;
  const Json& query = j["query"];
  const Json& ref = j["ref"].is_string() ? j["ref"] : j["reference"];
  if (!query.is_string() || !ref.is_string()) return std::nullopt;
  const seq::Alphabet& alphabet = alphabet_from_json(j);
  AlignRequest rq;
  rq.query = seq::Sequence("query", query.as_string(), alphabet);
  rq.reference = seq::Sequence("ref", ref.as_string(), alphabet);
  rq.options = options_from_json(j);
  return rq;
}

std::optional<SearchRequest> decode_search_request_json(
    std::string_view payload) {
  const auto doc = Json::parse(payload);
  if (!doc || !doc->is_object()) return std::nullopt;
  const Json& j = *doc;
  const Json& query = j["query"];
  if (!query.is_string()) return std::nullopt;
  SearchRequest rq;
  rq.query = seq::Sequence("query", query.as_string(), alphabet_from_json(j));
  rq.mode = j["mode"].as_string() == "batch" ? align::SearchMode::Batch
                                             : align::SearchMode::Diagonal;
  rq.options = options_from_json(j);
  return rq;
}

std::optional<BatchRequest> decode_batch_request_json(
    std::string_view payload) {
  const auto doc = Json::parse(payload);
  if (!doc || !doc->is_object()) return std::nullopt;
  const Json& j = *doc;
  const Json& queries = j["queries"];
  if (!queries.is_array()) return std::nullopt;
  const seq::Alphabet& alphabet = alphabet_from_json(j);
  BatchRequest rq;
  rq.queries.reserve(queries.as_array().size());
  size_t i = 0;
  for (const Json& q : queries.as_array()) {
    if (!q.is_string()) return std::nullopt;
    rq.queries.emplace_back("q" + std::to_string(i++), q.as_string(),
                            alphabet);
  }
  rq.options = options_from_json(j);
  return rq;
}

// -------------------------------------------------------------- responses

void encode_align_response(std::string& out, const AlignResponse& r) {
  encode_alignment(out, r.alignment);
  encode_trace(out, r.trace);
}

void encode_search_response(std::string& out, const SearchResponse& r) {
  encode_search_result(out, r.result);
  encode_trace(out, r.trace);
}

void encode_batch_response(std::string& out, const BatchResponse& r) {
  put_u32(out, static_cast<uint32_t>(r.results.size()));
  for (const align::BatchQueryResult& q : r.results) {
    encode_search_result(out, q.result);
    put_u64(out, q.batch_stats.cells8);
    put_u64(out, q.batch_stats.useful_cells8);
    put_u64(out, q.batch_stats.rescored);
    put_u64(out, q.batch_stats.rescored_cells);
  }
  encode_trace(out, r.trace);
}

std::optional<AlignResponse> decode_align_response(std::string_view payload) {
  Reader r(payload);
  AlignResponse out;
  if (!decode_alignment(r, out.alignment) || !decode_trace(r, out.trace) ||
      !r.done())
    return std::nullopt;
  return out;
}

std::optional<SearchResponse> decode_search_response(std::string_view payload) {
  Reader r(payload);
  SearchResponse out;
  if (!decode_search_result(r, out.result) || !decode_trace(r, out.trace) ||
      !r.done())
    return std::nullopt;
  return out;
}

std::optional<BatchResponse> decode_batch_response(std::string_view payload) {
  Reader r(payload);
  BatchResponse out;
  uint32_t n;
  if (!r.u32(n) || n > r.remaining() / 60) return std::nullopt;
  out.results.resize(n);
  for (align::BatchQueryResult& q : out.results) {
    if (!decode_search_result(r, q.result) || !r.u64(q.batch_stats.cells8) ||
        !r.u64(q.batch_stats.useful_cells8) ||
        !r.u64(q.batch_stats.rescored) ||
        !r.u64(q.batch_stats.rescored_cells))
      return std::nullopt;
  }
  if (!decode_trace(r, out.trace) || !r.done()) return std::nullopt;
  return out;
}

std::string align_response_json(const AlignResponse& r) {
  JsonObject o;
  o["status"] = "ok";
  o["score"] = r.alignment.score;
  o["end_query"] = r.alignment.end_query;
  o["end_ref"] = r.alignment.end_ref;
  if (!r.alignment.cigar.empty()) {
    o["begin_query"] = r.alignment.begin_query;
    o["begin_ref"] = r.alignment.begin_ref;
    o["cigar"] = r.alignment.cigar.to_string();
  }
  o["width_used"] = core::Width::W8 == r.alignment.width_used    ? 8
                    : core::Width::W16 == r.alignment.width_used ? 16
                    : core::Width::W32 == r.alignment.width_used ? 32
                                                                 : 0;
  o["isa_used"] = simd::isa_name(r.alignment.isa_used);
  trace_to_json(o, r.trace);
  return Json(std::move(o)).dump();
}

std::string search_response_json(const SearchResponse& r) {
  JsonObject o;
  o["status"] = "ok";
  o["hits"] = hits_to_json(r.result.hits);
  o["truncated"] = r.result.truncated;
  o["query_length"] = static_cast<double>(r.result.query_length);
  o["db_residues"] = static_cast<double>(r.result.db_residues);
  trace_to_json(o, r.trace);
  return Json(std::move(o)).dump();
}

std::string batch_response_json(const BatchResponse& r) {
  JsonObject o;
  o["status"] = "ok";
  JsonArray results;
  results.reserve(r.results.size());
  for (const align::BatchQueryResult& q : r.results) {
    JsonObject e;
    e["hits"] = hits_to_json(q.result.hits);
    e["truncated"] = q.result.truncated;
    results.push_back(Json(std::move(e)));
  }
  o["results"] = Json(std::move(results));
  trace_to_json(o, r.trace);
  return Json(std::move(o)).dump();
}

std::string error_payload(service::ServiceStatus status,
                          std::string_view message, bool json) {
  if (!json) return std::string(message);
  JsonObject o;
  o["status"] = service::status_name(status);
  o["message"] = std::string(message);
  return Json(std::move(o)).dump();
}

// ------------------------------------------------------------- cache keys

namespace {

/// Incremental FNV-1a 64.
struct Fnv {
  uint64_t h = 0xcbf29ce484222325ull;
  void bytes(const void* data, size_t n) {
    const auto* p = static_cast<const uint8_t*>(data);
    for (size_t i = 0; i < n; ++i) {
      h ^= p[i];
      h *= 0x100000001b3ull;
    }
  }
  void str(std::string_view s) {
    const uint64_t n = s.size();
    bytes(&n, sizeof n);  // length-prefixed: "ab"+"c" != "a"+"bc"
    bytes(s.data(), s.size());
  }
  void u64(uint64_t v) { bytes(&v, sizeof v); }
  void u8(uint8_t v) { bytes(&v, sizeof v); }
};

/// Length-prefixed string append, mirroring Fnv::str so the identity bytes
/// are unambiguous under concatenation.
void identity_str(std::string& out, std::string_view s) {
  put_u64(out, s.size());
  put_bytes(out, s.data(), s.size());
}

void identity_config(std::string& out,
                     const std::optional<core::AlignConfig>& c) {
  if (!c) {
    put_u8(out, 0);
    return;
  }
  put_u8(out, 1);
  put_u8(out, static_cast<uint8_t>(c->scheme));
  put_u8(out, static_cast<uint8_t>(c->delivery));
  put_u8(out, static_cast<uint8_t>(c->gap_model));
  put_u8(out, static_cast<uint8_t>(c->width));
  put_u8(out, static_cast<uint8_t>(c->isa));
  put_u8(out, c->traceback ? 1 : 0);
  put_u64(out, static_cast<uint64_t>(c->match));
  put_u64(out, static_cast<uint64_t>(c->mismatch));
  put_u64(out, static_cast<uint64_t>(c->gap_open));
  put_u64(out, static_cast<uint64_t>(c->gap_extend));
  put_u64(out, static_cast<uint64_t>(c->band));
  put_u64(out, c->max_traceback_cells);
  identity_str(out,
               c->scheme == core::ScoreScheme::Matrix && c->matrix != nullptr
                   ? c->matrix->name()
                   : std::string_view());
}

/// Result-affecting options only — deadline and tier shape scheduling, not
/// the response bytes, so they are excluded by design.
void identity_options(std::string& out, const RequestOptions& o) {
  put_u8(out, o.top_k ? 1 : 0);
  put_u64(out, o.top_k ? static_cast<uint64_t>(*o.top_k) : 0);
  put_u8(out, o.traceback ? 1 : 0);
  put_u8(out, o.traceback && *o.traceback ? 1 : 0);
  identity_config(out, o.config);
}

void identity_sequence(std::string& out, const seq::Sequence& s) {
  put_u8(out, static_cast<uint8_t>(s.alphabet().kind()));
  identity_str(out, std::string_view(reinterpret_cast<const char*>(s.data()),
                                     s.length()));
}

}  // namespace

std::string cache_identity(const AlignRequest& rq, uint64_t db_epoch) {
  std::string out;
  out.reserve(64 + rq.query.length() + rq.reference.length());
  put_u8(out, static_cast<uint8_t>(MsgType::AlignRequest));
  put_u64(out, db_epoch);
  identity_options(out, rq.options);
  identity_sequence(out, rq.query);
  identity_sequence(out, rq.reference);
  return out;
}

std::string cache_identity(const SearchRequest& rq, uint64_t db_epoch) {
  std::string out;
  out.reserve(64 + rq.query.length());
  put_u8(out, static_cast<uint8_t>(MsgType::SearchRequest));
  put_u64(out, db_epoch);
  identity_options(out, rq.options);
  put_u8(out, rq.mode == align::SearchMode::Batch ? 1 : 0);
  identity_sequence(out, rq.query);
  return out;
}

std::string cache_identity(const BatchRequest& rq, uint64_t db_epoch) {
  std::string out;
  put_u8(out, static_cast<uint8_t>(MsgType::BatchRequest));
  put_u64(out, db_epoch);
  identity_options(out, rq.options);
  put_u64(out, rq.queries.size());
  for (const seq::Sequence& q : rq.queries) identity_sequence(out, q);
  return out;
}

uint64_t cache_key(std::string_view identity) noexcept {
  Fnv f;
  f.bytes(identity.data(), identity.size());
  return f.h;
}

uint64_t cache_key(const AlignRequest& rq, uint64_t db_epoch) {
  return cache_key(cache_identity(rq, db_epoch));
}

uint64_t cache_key(const SearchRequest& rq, uint64_t db_epoch) {
  return cache_key(cache_identity(rq, db_epoch));
}

uint64_t cache_key(const BatchRequest& rq, uint64_t db_epoch) {
  return cache_key(cache_identity(rq, db_epoch));
}

uint64_t database_epoch(const seq::SequenceDatabase& db) {
  // Delegates to the artifact layer's fingerprint so a server started from
  // a .swdb file (which stores the fingerprint in its header) and one
  // started from the same FASTA agree on the epoch — and therefore on
  // every wire cache key.
  return core::database_fingerprint(db);
}

}  // namespace swve::net
