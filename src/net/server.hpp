// The network front door: a single-threaded epoll TCP server speaking
// protocol v1 (net/protocol.hpp) over an AlignService.
//
// Architecture — one event-loop thread, zero locks on the hot path except
// the completion queue:
//
//   client ──frame──▶ epoll loop ──decode──▶ result cache ──hit──▶ reply
//                        │                        │miss
//                        │                   singleflight ──joined──▶ wait
//                        │                        │started
//                        │              AlignService::submit_async
//                        │                        │ (executor thread)
//                        ▼                        ▼
//                   wake eventfd ◀── completion queue ◀── serialize
//
// Executor threads never touch sockets: a completion serializes the
// response, pushes it onto a mutex-guarded queue, and writes the wake
// eventfd; the loop drains the queue, inserts Ok responses into the LRU,
// and fans the bytes out to every singleflight waiter. Requests with the
// JSON debug flag bypass the cache and singleflight (their payloads are
// not byte-stable) and are answered directly.
//
// The same port also answers plain HTTP GETs ("/metrics", "/healthz") —
// the first bytes of a connection pick the protocol — so a Prometheus
// scrape needs no sidecar.
//
// Graceful drain: shutdown() (or a SIGTERM routed through
// obs::FlightRecorderOptions::notify_fd = term_fd()) stops accepting,
// fails new requests with ShuttingDown, lets in-flight executions finish
// and flush for up to ServeOptions::drain_timeout_s, then closes.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/error.hpp"
#include "net/coalesce.hpp"
#include "net/protocol.hpp"
#include "service/align_service.hpp"

namespace swve::net {

class Server {
 public:
  /// Bind + listen per `service.options().serve` and start the event-loop
  /// thread. The service (and its database) must outlive the server.
  /// Fails (never throws) on socket/bind/listen errors.
  static core::ErrorOr<std::unique_ptr<Server>> start(
      service::AlignService& service);

  /// Drains and joins (bounded by drain_timeout_s).
  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// The bound port (resolves ephemeral port 0 to the real one).
  uint16_t port() const noexcept { return port_; }
  /// Database identity stamped into every cache key.
  uint64_t db_epoch() const noexcept { return db_epoch_; }

  /// Begin a graceful drain (idempotent, non-blocking): stop accepting,
  /// reject new work with ShuttingDown, finish in-flight requests.
  void shutdown();
  /// Block until the event loop has exited.
  void join();
  bool running() const noexcept {
    return loop_done_.load(std::memory_order_acquire) == false;
  }

  /// Eventfd that triggers the same drain as shutdown() when written —
  /// hand this to obs::FlightRecorderOptions::notify_fd (with
  /// exit_on_term = false there) so SIGTERM drains instead of _exit()ing.
  int term_fd() const noexcept { return term_fd_; }

  /// Service metrics with the server-side gauges (active connections,
  /// result-cache entries) filled in — what /metrics serves.
  perf::MetricsSnapshot metrics() const;

 private:
  struct Connection {
    int fd = -1;
    uint64_t id = 0;
    std::string in;      ///< unparsed received bytes
    std::string out;     ///< unsent response bytes
    size_t out_off = 0;  ///< sent prefix of `out`
    bool http = false;   ///< first bytes chose HTTP, not protocol v1
    bool close_after_write = false;
    // Per-connection introspection (served by /connz; loop-thread only).
    std::string peer;       ///< "a.b.c.d:port" at accept time
    uint64_t frames_rx = 0;
    uint64_t frames_tx = 0;
    uint64_t bytes_rx = 0;
    uint64_t bytes_tx = 0;
    uint8_t last_tier = 1;  ///< tier byte of the most recent request frame
    size_t inflight = 0;    ///< requests submitted/joined, not yet answered
    double opened_s = 0;    ///< steady-clock seconds at accept
  };

  /// A serialized response ready for delivery, produced on an executor
  /// thread (or inline for rejections) and consumed by the event loop.
  struct Completion {
    bool flight = false;    ///< deliver via singleflight waiters
    bool cacheable = false; ///< binary payload; publish Ok into the LRU
    uint64_t key = 0;       ///< cache key (0 for JSON-mode requests)
    std::string identity;   ///< canonical request bytes (empty for JSON mode)
    uint64_t conn_id = 0;   ///< direct delivery: the one addressee
    uint64_t request_id = 0;
    uint8_t req_flags = 0;  ///< request flags to echo (json bit)
    uint8_t req_tier = 1;   ///< request tier byte to echo
    // Wire tracing: the request's trace context plus the server-side
    // timing breakdown, filled in the completion callback and appended as
    // a ServerTiming trailer at send time (never stored in the cache).
    bool traced = false;
    bool sampled = false;
    uint64_t trace_id = 0;
    uint32_t queue_us = 0;
    uint32_t exec_us = 0;
    uint32_t serialize_us = 0;
    CachedResponse response;
  };

  /// The completion queue, shared (via shared_ptr) between the event loop
  /// and the executor-side completion callbacks. Callbacks hold the sink,
  /// NOT the Server: a completion that outlives the server — a request
  /// still executing when the drain deadline passes and ~Server runs, or
  /// ~AlignService flushing leftover tasks — lands on a closed sink
  /// (wake_fd < 0) and is dropped, instead of touching freed memory.
  struct CompletionSink {
    std::mutex mu;
    std::vector<Completion> items;  ///< guarded by mu
    int wake_fd = -1;               ///< guarded by mu; -1 once closed
  };

  Server(service::AlignService& service, uint64_t db_epoch);

  void loop();
  void accept_connections();
  void handle_readable(uint64_t conn_id);
  void process_buffer(uint64_t conn_id);
  void process_frame(Connection& c, const FrameHeader& h,
                     std::string_view payload);
  void process_http(Connection& c);
  void drain_completions();
  void deliver(const Completion& done);
  void publish(uint64_t key, const Completion& done);
  /// `trailer` (a ServerTiming block for traced waiters) is sent after the
  /// payload and included in payload_len, but never cached with it.
  void send_frame(Connection& c, const FrameHeader& h,
                  std::string_view payload, std::string_view trailer = {});
  void send_error(Connection& c, const FrameHeader& req,
                  service::ServiceStatus status, std::string_view message);
  void flush(Connection& c);
  void close_connection(uint64_t conn_id);
  /// Push onto the sink and wake its event loop; drops the completion if
  /// the sink is already closed. Static on purpose — runs on executor
  /// threads, possibly after the Server is gone.
  static void push_completion(const std::shared_ptr<CompletionSink>& sink,
                              Completion done);
  Connection* find_connection(uint64_t conn_id);

  /// Decode result -> cache lookup -> singleflight join -> submit; one
  /// shape for all three scenarios (instantiated in the .cpp only).
  /// `trace` is the request's stripped WireTraceContext (trace_id 0 when
  /// the frame was untraced); `t_rx_ns` is the sink-clock frame receipt
  /// time for the server.frame span.
  template <typename Request>
  void handle_request(Connection& c, const FrameHeader& h,
                      std::optional<Request> decoded,
                      const WireTraceContext& trace, uint64_t t_rx_ns);
  /// `flight` = deliver through the singleflight waiter list; `identity` =
  /// canonical request bytes for cache publication (empty for JSON mode).
  template <typename Request>
  void submit_request(Connection& c, const FrameHeader& h, Request rq,
                      bool flight, std::string identity,
                      const WireTraceContext& trace, uint64_t t_rx_ns);

  // Introspection endpoint bodies (loop thread; see docs/serving.md).
  std::string render_statusz() const;
  std::string render_tracez() const;
  std::string render_connz() const;

  /// One finished traced+sampled request, kept in a bounded ring for
  /// /tracez; its span tree is pulled from the trace sink at scrape time.
  struct TracezEntry {
    uint64_t trace_id = 0;
    MsgType type = MsgType::ErrorResponse;
    uint8_t tier = 1;
    uint8_t status = 0;
    uint32_t queue_us = 0;
    uint32_t exec_us = 0;
    uint8_t source = 0;  ///< 0 = executed, 1 = cache hit, 2 = coalesced
  };
  void record_tracez(const TracezEntry& entry);

  service::AlignService& service_;
  service::ServeOptions opts_;
  obs::TraceSink* trace_sink_ = nullptr;  ///< = service obs.trace_sink
  uint64_t db_epoch_ = 0;
  uint16_t port_ = 0;
  double started_s_ = 0;  ///< steady-clock seconds at construction

  int listen_fd_ = -1;
  int epoll_fd_ = -1;
  int wake_fd_ = -1;  ///< completion queue signal
  int term_fd_ = -1;  ///< drain signal (shutdown() / flight recorder)

  std::unordered_map<uint64_t, Connection> conns_;
  uint64_t next_conn_id_ = 16;  ///< ids below are epoll sentinels

  ResultCache cache_;
  Singleflight flights_;
  size_t outstanding_ = 0;  ///< submitted executions not yet delivered

  std::deque<TracezEntry> tracez_;  ///< newest at the back; loop thread only
                                    ///< (bounded by opts_.tracez_capacity)

  std::shared_ptr<CompletionSink> sink_ = std::make_shared<CompletionSink>();

  bool draining_ = false;
  double drain_deadline_s_ = 0;  ///< steady-clock seconds; 0 = unset

  // Gauges mirrored out of loop-thread state so metrics() is callable from
  // any thread.
  std::atomic<size_t> active_connections_{0};
  std::atomic<size_t> cache_entries_{0};

  std::thread thread_;
  std::atomic<bool> loop_done_{false};
};

}  // namespace swve::net
