// Protocol v1 of the swve serving front door.
//
// Length-prefixed binary frames over TCP, little-endian throughout:
//
//   offset  size  field
//        0     4  magic "SWV1" (0x31565753 as a LE u32)
//        4     1  message type (MsgType)
//        5     1  flags (FrameFlags bit set)
//        6     1  QoS tier (requests; echoed on responses)
//        7     1  status byte (responses; 0 on requests) = ServiceStatus
//        8     8  request id (client-chosen; echoed verbatim)
//       16     4  payload length in bytes
//       20     …  payload
//
// Binary payloads carry alphabet-encoded residue codes — the same bytes
// the kernels consume — so a response decoded off the wire is bit-identical
// to an in-process AlignService call. With kFlagJson set, the payload is a
// single JSON document instead (human-typed requests over `nc`, readable
// responses); JSON mode trades speed for debuggability, nothing else.
//
// Cache/coalescing provenance travels in response FLAGS (kFlagFromCache,
// kFlagCoalesced), never in the payload, so a cached response's payload
// bytes stay identical to the first execution's.
//
// The header is a wire contract: fields are append-only and the struct is
// packed/unpacked explicitly byte-by-byte (no memcpy of structs), so the
// layout cannot drift with compiler padding.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/error.hpp"
#include "service/align_service.hpp"
#include "service/request.hpp"
#include "service/status.hpp"

namespace swve::net {

inline constexpr uint32_t kMagic = 0x31565753u;  // "SWV1" little-endian
inline constexpr size_t kHeaderSize = 20;

enum class MsgType : uint8_t {
  AlignRequest = 1,
  SearchRequest = 2,
  BatchRequest = 3,
  Ping = 4,
  MetricsRequest = 5,
  AlignResponse = 129,
  SearchResponse = 130,
  BatchResponse = 131,
  Pong = 132,
  MetricsResponse = 133,
  ErrorResponse = 255,
};

// Frame flag bits.
inline constexpr uint8_t kFlagJson = 1u << 0;       ///< payload is JSON
inline constexpr uint8_t kFlagNoCache = 1u << 1;    ///< bypass result cache
inline constexpr uint8_t kFlagFromCache = 1u << 2;  ///< served from the LRU
inline constexpr uint8_t kFlagCoalesced = 1u << 3;  ///< joined an in-flight twin
/// Request: the payload begins with a kTraceContextSize-byte trace context
/// the server adopts for its spans. Binary response: echoed to signal a
/// trailing kServerTimingSize-byte ServerTiming block after the payload.
inline constexpr uint8_t kFlagTraced = 1u << 4;

struct FrameHeader {
  MsgType type = MsgType::Ping;
  uint8_t flags = 0;
  uint8_t tier = 1;   ///< service::QosTier byte
  uint8_t status = 0; ///< service::ServiceStatus byte
  uint64_t request_id = 0;
  uint32_t payload_len = 0;
};

/// Serialize the 20-byte header into `out` (appended).
void encode_header(std::string& out, const FrameHeader& h);

/// Parse a header from exactly kHeaderSize bytes. Fails (nullopt) on a bad
/// magic — the caller should answer BadVersion and drop the connection.
std::optional<FrameHeader> decode_header(const uint8_t* bytes);

/// One complete outgoing frame: header + payload.
std::string encode_frame(const FrameHeader& h, std::string_view payload);

/// True for type bytes this implementation understands (request side).
bool known_request_type(uint8_t type) noexcept;

// ------------------------------------------------------------- wire tracing

/// Client-chosen trace context carried as a payload prefix when
/// kFlagTraced is set on a request frame. The server strips it before the
/// payload decoders run, so traced and untraced payload bytes (and hence
/// results and cache identities) are identical.
struct WireTraceContext {
  uint64_t trace_id = 0;  ///< threads client and server spans (0 = invalid)
  bool sampled = false;   ///< request publication to /tracez
};

inline constexpr size_t kTraceContextSize = 9;  // u64 trace_id + u8 sampled

/// Append the 9-byte context to `out` (prefix position — call before the
/// request payload encoder).
void encode_trace_context(std::string& out, const WireTraceContext& ctx);

/// Strip a trace context off the front of `payload` (advancing it) and
/// return it; nullopt (payload untouched) when fewer than
/// kTraceContextSize bytes remain or trace_id is 0.
std::optional<WireTraceContext> decode_trace_context(
    std::string_view& payload);

/// Server-side timing breakdown appended after a traced binary response
/// payload (kFlagTraced echoed on the response frame signals presence).
/// The trailer travels outside the cached payload bytes, so cached and
/// executed responses stay bit-identical; `source` carries provenance.
struct ServerTiming {
  uint64_t trace_id = 0;     ///< echo of the request's trace id
  uint32_t queue_us = 0;     ///< submission -> executor pickup
  uint32_t exec_us = 0;      ///< kernel wall time
  uint32_t serialize_us = 0; ///< response payload encode time
  uint8_t source = 0;        ///< 0 = executed, 1 = cache hit, 2 = coalesced
};

inline constexpr size_t kServerTimingSize = 21;

/// Append the 21-byte timing trailer to `out`.
void encode_server_timing(std::string& out, const ServerTiming& t);

/// Strip a timing trailer off the back of `payload` (shrinking it) and
/// return it; nullopt (payload untouched) when fewer than
/// kServerTimingSize bytes remain.
std::optional<ServerTiming> decode_server_timing(std::string_view& payload);

// ------------------------------------------------------------------ requests

/// Binary request payload codecs. Encoders append to `out`; decoders return
/// nullopt on malformed payloads (short reads, bad enum bytes, length
/// overflow) — the server answers BadFrame.
void encode_align_request(std::string& out, const service::AlignRequest& rq);
void encode_search_request(std::string& out, const service::SearchRequest& rq);
void encode_batch_request(std::string& out, const service::BatchRequest& rq);
std::optional<service::AlignRequest> decode_align_request(
    std::string_view payload);
std::optional<service::SearchRequest> decode_search_request(
    std::string_view payload);
std::optional<service::BatchRequest> decode_batch_request(
    std::string_view payload);

/// JSON debug-mode request parsing (one document per frame; see
/// docs/serving.md for the schema). The MsgType comes from the frame
/// header, same as binary mode.
std::optional<service::AlignRequest> decode_align_request_json(
    std::string_view payload);
std::optional<service::SearchRequest> decode_search_request_json(
    std::string_view payload);
std::optional<service::BatchRequest> decode_batch_request_json(
    std::string_view payload);

// ----------------------------------------------------------------- responses

/// Response payload codecs, binary and JSON. Encoders are deterministic:
/// the same response struct always serializes to the same bytes (the
/// result-cache contract).
void encode_align_response(std::string& out, const service::AlignResponse& r);
void encode_search_response(std::string& out, const service::SearchResponse& r);
void encode_batch_response(std::string& out, const service::BatchResponse& r);
std::optional<service::AlignResponse> decode_align_response(
    std::string_view payload);
std::optional<service::SearchResponse> decode_search_response(
    std::string_view payload);
std::optional<service::BatchResponse> decode_batch_response(
    std::string_view payload);

std::string align_response_json(const service::AlignResponse& r);
std::string search_response_json(const service::SearchResponse& r);
std::string batch_response_json(const service::BatchResponse& r);

/// Error payload: binary = UTF-8 message bytes; JSON mode = a document
/// {"status": "...", "message": "..."}.
std::string error_payload(service::ServiceStatus status,
                          std::string_view message, bool json);

// ---------------------------------------------------------------- cache keys

/// Canonical identity bytes of a request for the result cache and
/// singleflight: scenario + query/reference residue codes + alphabet +
/// effective config + top-k/traceback — everything that determines the
/// response bytes — plus the server's db_epoch. Deadline, QoS tier, and
/// trace id are deliberately excluded: they shape scheduling and
/// observability, not results — a traced request must hit the same cache
/// entry as its untraced twin.
///
/// The cache and singleflight index on cache_key(identity) — a 64-bit
/// FNV-1a of these bytes — but always verify the full identity on lookup:
/// FNV is not collision-resistant, and an attacker-constructed colliding
/// request must not be served (or coalesced onto) another client's result.
std::string cache_identity(const service::AlignRequest& rq, uint64_t db_epoch);
std::string cache_identity(const service::SearchRequest& rq, uint64_t db_epoch);
std::string cache_identity(const service::BatchRequest& rq, uint64_t db_epoch);

/// The 64-bit index of an identity (FNV-1a over its bytes).
uint64_t cache_key(std::string_view identity) noexcept;

/// Convenience: cache_key(cache_identity(rq, db_epoch)).
uint64_t cache_key(const service::AlignRequest& rq, uint64_t db_epoch);
uint64_t cache_key(const service::SearchRequest& rq, uint64_t db_epoch);
uint64_t cache_key(const service::BatchRequest& rq, uint64_t db_epoch);

/// FNV-1a 64 over every sequence in the database — the db_epoch a server
/// stamps into its cache keys so a different database never shares entries.
uint64_t database_epoch(const seq::SequenceDatabase& db);

}  // namespace swve::net
