// Blocking protocol v1 client — the counterpart of net::Server used by the
// swve_client tool, the end-to-end tests, and the serving benchmarks.
//
// One connection, one outstanding request at a time (callers wanting
// pipelining open more clients — connections are cheap, the server is
// epoll-based). Requests are sent in binary mode, so a decoded response is
// bit-identical to an in-process AlignService call; JSON debug mode is
// reachable through roundtrip_raw() for tests and `nc`-style exploration.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <variant>

#include "core/error.hpp"
#include "net/protocol.hpp"
#include "service/request.hpp"
#include "service/status.hpp"

namespace swve::net {

/// Largest response payload the client will accept. Responses are not
/// bounded by the server's serve.max_frame_bytes (that limit is inbound
/// only), but a length prefix beyond this is treated as a transport error
/// rather than allocated on faith — a hostile server should not be able to
/// drive the client to a multi-GiB allocation with a 20-byte header.
inline constexpr uint32_t kMaxResponseBytes = 64u << 20;

/// Outcome of one RPC as observed on the wire: the status byte, the error
/// message (when not Ok), the response frame flags (cache/coalescing
/// provenance), and the decoded response.
template <typename R>
struct RpcResult {
  service::ServiceStatus status = service::ServiceStatus::Internal;
  std::string error;  ///< message when !ok() (server- or transport-side)
  uint8_t flags = 0;  ///< response flags (kFlagFromCache / kFlagCoalesced)
  std::optional<R> response;
  /// Server-side timing breakdown; present only when the request was sent
  /// traced (enable_tracing) and the server echoed kFlagTraced. The
  /// trailer is stripped before decoding, so `response` stays bit-identical
  /// to an untraced call's.
  std::optional<ServerTiming> timing;

  bool ok() const noexcept { return status == service::ServiceStatus::Ok; }
  bool from_cache() const noexcept { return (flags & kFlagFromCache) != 0; }
  bool coalesced() const noexcept { return (flags & kFlagCoalesced) != 0; }
};

class Client {
 public:
  /// Connect to host:port (IPv4 dotted quad) with send/recv timeouts.
  static core::ErrorOr<std::unique_ptr<Client>> connect(
      const std::string& host, uint16_t port, double timeout_s = 10.0);

  ~Client();
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// The three scenarios. `extra_flags` is OR-ed into the request frame
  /// (e.g. kFlagNoCache to bypass the server's result cache); the QoS tier
  /// byte comes from rq.options.tier.
  RpcResult<service::AlignResponse> align(const service::AlignRequest& rq,
                                          uint8_t extra_flags = 0);
  RpcResult<service::SearchResponse> search(const service::SearchRequest& rq,
                                            uint8_t extra_flags = 0);
  RpcResult<service::BatchResponse> batch(const service::BatchRequest& rq,
                                          uint8_t extra_flags = 0);

  /// Wire tracing: when enabled, every align/search/batch request carries
  /// a WireTraceContext (kFlagTraced) and the matching RpcResult::timing
  /// is filled from the response trailer. The trace id is client-chosen:
  /// set_trace_id(id) pins the next request's id (propagating an upstream
  /// trace); 0 (the default) derives one from the request sequence.
  void enable_tracing(bool on, bool sampled = true) noexcept {
    trace_ = on;
    trace_sampled_ = sampled;
  }
  void set_trace_id(uint64_t id) noexcept { trace_id_ = id; }

  /// Round-trip liveness probe (Ping -> Pong).
  RpcResult<std::monostate> ping();

  /// The server's metrics rendition: Prometheus text, or the JSON exporter
  /// with json = true.
  RpcResult<std::string> metrics(bool json = false);

  /// Protocol-test escape hatch: send raw bytes verbatim, then read one
  /// response frame. nullopt on transport failure or an undecodable
  /// response header.
  std::optional<std::pair<FrameHeader, std::string>> roundtrip_raw(
      std::string_view bytes);

  /// Send raw bytes without reading a response (half-frame tests).
  bool send_raw(std::string_view bytes);
  /// Read one frame off the socket (pairs with send_raw).
  std::optional<std::pair<FrameHeader, std::string>> read_frame();

 private:
  explicit Client(int fd) : fd_(fd) {}

  template <typename Request>
  auto call(MsgType type, const Request& rq, uint8_t extra_flags);

  bool send_all(const char* data, size_t len);
  bool read_exact(char* data, size_t len);

  int fd_ = -1;
  uint64_t next_id_ = 1;
  bool trace_ = false;
  bool trace_sampled_ = true;
  uint64_t trace_id_ = 0;  ///< 0 = derive from the request sequence
};

/// One-shot HTTP request against the server's scrape endpoints
/// ("/metrics", "/healthz", "/statusz", "/tracez", "/connz"); returns the
/// response body (status line checked for 200/503 is the caller's business
/// — the full head is returned when `head` is non-null). `method` is "GET"
/// for every real caller; tests pass "POST" etc. to probe the 405 path.
core::ErrorOr<std::string> http_get(const std::string& host, uint16_t port,
                                    const std::string& path,
                                    double timeout_s = 10.0,
                                    std::string* head = nullptr,
                                    const std::string& method = "GET");

}  // namespace swve::net
