#include "net/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <utility>

namespace swve::net {

namespace {

const std::string kEmptyString;
const JsonArray kEmptyArray;
const JsonObject kEmptyObject;
const Json kNullJson;

constexpr int kMaxDepth = 32;
constexpr size_t kMaxInput = 64u << 20;

struct Parser {
  const char* p;
  const char* end;

  void skip_ws() {
    while (p < end && (*p == ' ' || *p == '\t' || *p == '\n' || *p == '\r'))
      ++p;
  }

  bool consume(char c) {
    if (p < end && *p == c) {
      ++p;
      return true;
    }
    return false;
  }

  bool literal(const char* s) {
    const char* q = p;
    while (*s != '\0') {
      if (q >= end || *q != *s) return false;
      ++q;
      ++s;
    }
    p = q;
    return true;
  }

  std::optional<std::string> parse_string() {
    if (!consume('"')) return std::nullopt;
    std::string out;
    while (p < end) {
      const char c = *p++;
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) return std::nullopt;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (p >= end) return std::nullopt;
      const char e = *p++;
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (end - p < 4) return std::nullopt;
          unsigned v = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = *p++;
            v <<= 4;
            if (h >= '0' && h <= '9') v |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') v |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') v |= static_cast<unsigned>(h - 'A' + 10);
            else return std::nullopt;
          }
          // UTF-8 encode the BMP code point; surrogates pass through as
          // replacement-free raw bytes (debug mode, not a data plane).
          if (v < 0x80) {
            out += static_cast<char>(v);
          } else if (v < 0x800) {
            out += static_cast<char>(0xC0 | (v >> 6));
            out += static_cast<char>(0x80 | (v & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (v >> 12));
            out += static_cast<char>(0x80 | ((v >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (v & 0x3F));
          }
          break;
        }
        default: return std::nullopt;
      }
    }
    return std::nullopt;  // unterminated
  }

  std::optional<Json> parse_value(int depth) {
    if (depth > kMaxDepth) return std::nullopt;
    skip_ws();
    if (p >= end) return std::nullopt;
    switch (*p) {
      case 'n': return literal("null") ? std::optional<Json>(Json()) : std::nullopt;
      case 't': return literal("true") ? std::optional<Json>(Json(true)) : std::nullopt;
      case 'f': return literal("false") ? std::optional<Json>(Json(false)) : std::nullopt;
      case '"': {
        auto s = parse_string();
        if (!s) return std::nullopt;
        return Json(std::move(*s));
      }
      case '[': {
        ++p;
        JsonArray arr;
        skip_ws();
        if (consume(']')) return Json(std::move(arr));
        for (;;) {
          auto v = parse_value(depth + 1);
          if (!v) return std::nullopt;
          arr.push_back(std::move(*v));
          skip_ws();
          if (consume(']')) return Json(std::move(arr));
          if (!consume(',')) return std::nullopt;
        }
      }
      case '{': {
        ++p;
        JsonObject obj;
        skip_ws();
        if (consume('}')) return Json(std::move(obj));
        for (;;) {
          skip_ws();
          auto key = parse_string();
          if (!key) return std::nullopt;
          skip_ws();
          if (!consume(':')) return std::nullopt;
          auto v = parse_value(depth + 1);
          if (!v) return std::nullopt;
          obj[std::move(*key)] = std::move(*v);
          skip_ws();
          if (consume('}')) return Json(std::move(obj));
          if (!consume(',')) return std::nullopt;
        }
      }
      default: {
        // Number: strtod on a bounded copy so we control what it consumes.
        const char* start = p;
        if (*p == '-') ++p;
        while (p < end && (std::isdigit(static_cast<unsigned char>(*p)) ||
                           *p == '.' || *p == 'e' || *p == 'E' || *p == '+' ||
                           *p == '-'))
          ++p;
        if (p == start) return std::nullopt;
        std::string num(start, static_cast<size_t>(p - start));
        char* parsed_end = nullptr;
        const double d = std::strtod(num.c_str(), &parsed_end);
        if (parsed_end != num.c_str() + num.size() || !std::isfinite(d))
          return std::nullopt;
        return Json(d);
      }
    }
  }
};

}  // namespace

Json::Json(std::string s)
    : type_(Type::String),
      str_(std::make_shared<const std::string>(std::move(s))) {}
Json::Json(JsonArray a)
    : type_(Type::Array), arr_(std::make_shared<const JsonArray>(std::move(a))) {}
Json::Json(JsonObject o)
    : type_(Type::Object),
      obj_(std::make_shared<const JsonObject>(std::move(o))) {}

const std::string& Json::as_string() const noexcept {
  return str_ ? *str_ : kEmptyString;
}
const JsonArray& Json::as_array() const noexcept {
  return arr_ ? *arr_ : kEmptyArray;
}
const JsonObject& Json::as_object() const noexcept {
  return obj_ ? *obj_ : kEmptyObject;
}

const Json& Json::operator[](const std::string& key) const noexcept {
  if (!is_object()) return kNullJson;
  const auto it = obj_->find(key);
  return it != obj_->end() ? it->second : kNullJson;
}

void json_escape(std::string& out, std::string_view s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void Json::dump_to(std::string& out) const {
  switch (type_) {
    case Type::Null: out += "null"; return;
    case Type::Bool: out += bool_ ? "true" : "false"; return;
    case Type::Number: {
      char buf[32];
      // The int64 cast is UB for values outside its range (a huge cells
      // counter, a client-echoed 1e300), so bound-check before probing
      // integer-ness; out-of-range and NaN take the %g path.
      if (num_ >= -9.2e18 && num_ <= 9.2e18 &&
          num_ == static_cast<double>(static_cast<int64_t>(num_)))
        std::snprintf(buf, sizeof buf, "%lld",
                      static_cast<long long>(num_));
      else
        std::snprintf(buf, sizeof buf, "%.17g", num_);
      out += buf;
      return;
    }
    case Type::String: json_escape(out, as_string()); return;
    case Type::Array: {
      out += '[';
      bool first = true;
      for (const Json& v : as_array()) {
        if (!first) out += ',';
        first = false;
        v.dump_to(out);
      }
      out += ']';
      return;
    }
    case Type::Object: {
      out += '{';
      bool first = true;
      for (const auto& [k, v] : as_object()) {
        if (!first) out += ',';
        first = false;
        json_escape(out, k);
        out += ':';
        v.dump_to(out);
      }
      out += '}';
      return;
    }
  }
}

std::string Json::dump() const {
  std::string out;
  dump_to(out);
  return out;
}

std::optional<Json> Json::parse(std::string_view text) {
  if (text.size() > kMaxInput) return std::nullopt;
  Parser parser{text.data(), text.data() + text.size()};
  auto v = parser.parse_value(0);
  if (!v) return std::nullopt;
  parser.skip_ws();
  if (parser.p != parser.end) return std::nullopt;  // trailing garbage
  return v;
}

}  // namespace swve::net
