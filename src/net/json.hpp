// Minimal JSON for the protocol's debug mode (net/protocol.hpp).
//
// One value type, a strict recursive-descent parser, and an escaping
// writer — just enough to accept hand-typed requests over `nc` and emit
// readable responses. Numbers are doubles (JSON has no integer type);
// depth and size are bounded so a hostile payload cannot recurse or
// allocate unboundedly. This is intentionally not a general JSON library:
// no comments, no trailing commas, no \u surrogate pairs (kept verbatim).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace swve::net {

class Json;
using JsonArray = std::vector<Json>;
using JsonObject = std::map<std::string, Json>;  // sorted: stable output

class Json {
 public:
  enum class Type : uint8_t { Null, Bool, Number, String, Array, Object };

  Json() = default;
  Json(std::nullptr_t) {}  // NOLINT
  Json(bool b) : type_(Type::Bool), bool_(b) {}  // NOLINT
  Json(double d) : type_(Type::Number), num_(d) {}  // NOLINT
  Json(int i) : Json(static_cast<double>(i)) {}  // NOLINT
  Json(uint64_t u) : Json(static_cast<double>(u)) {}  // NOLINT
  Json(std::string s);  // NOLINT
  Json(const char* s) : Json(std::string(s)) {}  // NOLINT
  Json(JsonArray a);  // NOLINT
  Json(JsonObject o);  // NOLINT

  Type type() const noexcept { return type_; }
  bool is_null() const noexcept { return type_ == Type::Null; }
  bool is_bool() const noexcept { return type_ == Type::Bool; }
  bool is_number() const noexcept { return type_ == Type::Number; }
  bool is_string() const noexcept { return type_ == Type::String; }
  bool is_array() const noexcept { return type_ == Type::Array; }
  bool is_object() const noexcept { return type_ == Type::Object; }

  bool as_bool(bool fallback = false) const noexcept {
    return is_bool() ? bool_ : fallback;
  }
  double as_number(double fallback = 0) const noexcept {
    return is_number() ? num_ : fallback;
  }
  const std::string& as_string() const noexcept;
  const JsonArray& as_array() const noexcept;
  const JsonObject& as_object() const noexcept;

  /// Object member lookup; null Json for missing keys / non-objects.
  const Json& operator[](const std::string& key) const noexcept;

  /// Serialize (compact, keys in map order, doubles via %.17g with integral
  /// values printed without a fraction).
  std::string dump() const;
  void dump_to(std::string& out) const;

  /// Strict parse of a complete JSON document (trailing garbage is an
  /// error). nullopt on any syntax error, depth > 32, or input > 64 MiB.
  static std::optional<Json> parse(std::string_view text);

 private:
  Type type_ = Type::Null;
  bool bool_ = false;
  double num_ = 0;
  // Indirect so Json stays movable/copyable with an incomplete element type.
  std::shared_ptr<const std::string> str_;
  std::shared_ptr<const JsonArray> arr_;
  std::shared_ptr<const JsonObject> obj_;
};

/// Append `s` JSON-escaped (quotes included) to `out`.
void json_escape(std::string& out, std::string_view s);

}  // namespace swve::net
