#include "net/coalesce.hpp"

#include <utility>

namespace swve::net {

const CachedResponse* ResultCache::get(uint64_t key) {
  const auto it = map_.find(key);
  if (it == map_.end()) return nullptr;
  lru_.splice(lru_.begin(), lru_, it->second);  // refresh recency
  return &it->second->response;
}

size_t ResultCache::put(uint64_t key, CachedResponse response) {
  if (capacity_ == 0) return 0;
  if (const auto it = map_.find(key); it != map_.end()) {
    it->second->response = std::move(response);
    lru_.splice(lru_.begin(), lru_, it->second);
    return 0;
  }
  size_t evicted = 0;
  if (map_.size() >= capacity_) {
    map_.erase(lru_.back().key);
    lru_.pop_back();
    evicted = 1;
  }
  lru_.push_front(Entry{key, std::move(response)});
  map_[key] = lru_.begin();
  return evicted;
}

bool Singleflight::join(uint64_t key, FlightWaiter waiter) {
  auto [it, started] = flights_.try_emplace(key);
  waiter.initiator = started;
  it->second.push_back(waiter);
  return started;
}

std::vector<FlightWaiter> Singleflight::complete(uint64_t key) {
  const auto it = flights_.find(key);
  if (it == flights_.end()) return {};
  std::vector<FlightWaiter> waiters = std::move(it->second);
  flights_.erase(it);
  return waiters;
}

void Singleflight::drop_connection(uint64_t conn_id) {
  for (auto& [key, waiters] : flights_) {
    std::erase_if(waiters,
                  [conn_id](const FlightWaiter& w) { return w.conn_id == conn_id; });
  }
}

}  // namespace swve::net
