#include "net/coalesce.hpp"

#include <utility>

namespace swve::net {

const CachedResponse* ResultCache::get(uint64_t key,
                                       std::string_view identity) {
  const auto it = map_.find(key);
  if (it == map_.end()) return nullptr;
  if (it->second->identity != identity) return nullptr;  // hash collision
  lru_.splice(lru_.begin(), lru_, it->second);  // refresh recency
  return &it->second->response;
}

size_t ResultCache::put(uint64_t key, std::string identity,
                        CachedResponse response) {
  if (capacity_ == 0) return 0;
  if (const auto it = map_.find(key); it != map_.end()) {
    it->second->identity = std::move(identity);
    it->second->response = std::move(response);
    lru_.splice(lru_.begin(), lru_, it->second);
    return 0;
  }
  size_t evicted = 0;
  if (map_.size() >= capacity_) {
    map_.erase(lru_.back().key);
    lru_.pop_back();
    evicted = 1;
  }
  lru_.push_front(Entry{key, std::move(identity), std::move(response)});
  map_[key] = lru_.begin();
  return evicted;
}

Singleflight::Join Singleflight::join(uint64_t key, std::string_view identity,
                                      FlightWaiter waiter) {
  auto [it, started] = flights_.try_emplace(key);
  if (started) {
    it->second.identity = identity;
  } else if (it->second.identity != identity) {
    return Join::Mismatch;  // colliding key, different request
  }
  waiter.initiator = started;
  it->second.waiters.push_back(waiter);
  return started ? Join::Started : Join::Joined;
}

std::vector<FlightWaiter> Singleflight::complete(uint64_t key) {
  const auto it = flights_.find(key);
  if (it == flights_.end()) return {};
  std::vector<FlightWaiter> waiters = std::move(it->second.waiters);
  flights_.erase(it);
  return waiters;
}

void Singleflight::drop_connection(uint64_t conn_id) {
  for (auto& [key, flight] : flights_) {
    std::erase_if(flight.waiters, [conn_id](const FlightWaiter& w) {
      return w.conn_id == conn_id;
    });
  }
}

}  // namespace swve::net
