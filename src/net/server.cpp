#include "net/server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <utility>

#include "obs/exporters.hpp"

namespace swve::net {
namespace {

using Code = core::ConfigError::Code;
using service::ServiceStatus;

// epoll user-data sentinels; connection ids start at 16.
constexpr uint64_t kListenId = 1;
constexpr uint64_t kWakeId = 2;
constexpr uint64_t kTermId = 3;

constexpr int kMaxEvents = 64;
constexpr size_t kReadChunk = 64 * 1024;

double steady_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

core::ConfigError sys_error(const char* what) {
  return core::ConfigError{
      Code::Internal,
      std::string("net: ") + what + " failed: " + std::strerror(errno)};
}

/// Drain an eventfd so level-triggered epoll stops reporting it readable.
void drain_eventfd(int fd) {
  uint64_t n = 0;
  while (::read(fd, &n, sizeof n) == static_cast<ssize_t>(sizeof n)) {
  }
}

void close_fd(int& fd) {
  if (fd >= 0) {
    ::close(fd);
    fd = -1;
  }
}

/// Scenario-specific glue the request template dispatches on: the response
/// codecs and the response MsgType.
template <typename Request>
struct WireTraits;

template <>
struct WireTraits<service::AlignRequest> {
  using Response = service::AlignResponse;
  static constexpr MsgType kResponse = MsgType::AlignResponse;
  static void encode(std::string& out, const Response& r) {
    encode_align_response(out, r);
  }
  static std::string json(const Response& r) { return align_response_json(r); }
};

template <>
struct WireTraits<service::SearchRequest> {
  using Response = service::SearchResponse;
  static constexpr MsgType kResponse = MsgType::SearchResponse;
  static void encode(std::string& out, const Response& r) {
    encode_search_response(out, r);
  }
  static std::string json(const Response& r) { return search_response_json(r); }
};

template <>
struct WireTraits<service::BatchRequest> {
  using Response = service::BatchResponse;
  static constexpr MsgType kResponse = MsgType::BatchResponse;
  static void encode(std::string& out, const Response& r) {
    encode_batch_response(out, r);
  }
  static std::string json(const Response& r) { return batch_response_json(r); }
};

/// Minimal HTTP response; the server always closes after writing one.
std::string http_response(int code, const char* reason,
                          const char* content_type, std::string_view body) {
  std::string out = "HTTP/1.1 " + std::to_string(code) + " " + reason +
                    "\r\nContent-Type: " + content_type +
                    "\r\nContent-Length: " + std::to_string(body.size()) +
                    "\r\nConnection: close\r\n\r\n";
  out.append(body);
  return out;
}

}  // namespace

core::ErrorOr<std::unique_ptr<Server>> Server::start(
    service::AlignService& service) {
  if (auto st = service.options().try_validate(); !st) return st.error();
  // The event loop is the submitter: with Overflow::Block a full queue
  // would park the loop thread on the queue's condition variable, stalling
  // every connection, /healthz, and the SIGTERM drain path. Serving
  // requires Reject semantics (clients see QueueFull and retry).
  if (service.options().queue.overflow ==
      service::QueueOptions::Overflow::Block)
    return core::ConfigError{
        Code::Unsupported,
        "net: serving requires queue.overflow = Reject; Overflow::Block "
        "would stall the event loop when the submission queue fills"};
  const service::ServeOptions& opts = service.options().serve;

  const uint64_t epoch =
      service.database() ? database_epoch(*service.database()) : 0;
  std::unique_ptr<Server> s(new Server(service, epoch));

  s->listen_fd_ =
      ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (s->listen_fd_ < 0) return sys_error("socket");
  const int one = 1;
  ::setsockopt(s->listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(opts.port);
  if (::inet_pton(AF_INET, opts.bind.c_str(), &addr.sin_addr) != 1)
    return core::ConfigError{
        Code::Unsupported,
        "net: serve.bind is not an IPv4 address: " + opts.bind};
  if (::bind(s->listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof addr) != 0)
    return sys_error("bind");
  if (::listen(s->listen_fd_, opts.backlog) != 0) return sys_error("listen");

  sockaddr_in bound{};
  socklen_t blen = sizeof bound;
  if (::getsockname(s->listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                    &blen) != 0)
    return sys_error("getsockname");
  s->port_ = ntohs(bound.sin_port);

  s->epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (s->epoll_fd_ < 0) return sys_error("epoll_create1");
  s->wake_fd_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  s->term_fd_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  if (s->wake_fd_ < 0 || s->term_fd_ < 0) return sys_error("eventfd");
  s->sink_->wake_fd = s->wake_fd_;  // no completions can exist yet

  const auto add = [&s](int fd, uint64_t id) {
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.u64 = id;
    return ::epoll_ctl(s->epoll_fd_, EPOLL_CTL_ADD, fd, &ev);
  };
  if (add(s->listen_fd_, kListenId) != 0 || add(s->wake_fd_, kWakeId) != 0 ||
      add(s->term_fd_, kTermId) != 0)
    return sys_error("epoll_ctl");

  s->thread_ = std::thread([srv = s.get()] { srv->loop(); });
  return s;
}

Server::Server(service::AlignService& service, uint64_t db_epoch)
    : service_(service),
      opts_(service.options().serve),
      db_epoch_(db_epoch),
      cache_(opts_.result_cache_capacity) {}

Server::~Server() {
  shutdown();
  join();
  {
    // Close the sink BEFORE closing wake_fd_: executions still running
    // past the drain deadline (and ~AlignService flushing leftovers later)
    // hold the sink via shared_ptr and must see it closed rather than
    // write a dead fd or touch this object.
    std::lock_guard<std::mutex> lock(sink_->mu);
    sink_->wake_fd = -1;
    sink_->items.clear();
  }
  close_fd(epoll_fd_);
  close_fd(listen_fd_);
  close_fd(wake_fd_);
  close_fd(term_fd_);
}

void Server::shutdown() {
  if (term_fd_ >= 0) {
    const uint64_t one = 1;
    [[maybe_unused]] ssize_t n = ::write(term_fd_, &one, sizeof one);
  }
}

void Server::join() {
  if (thread_.joinable()) thread_.join();
}

perf::MetricsSnapshot Server::metrics() const {
  perf::MetricsSnapshot snap = service_.metrics();
  snap.server_active_connections =
      active_connections_.load(std::memory_order_relaxed);
  snap.result_cache_entries = cache_entries_.load(std::memory_order_relaxed);
  return snap;
}

// ------------------------------------------------------------------ the loop

void Server::loop() {
  epoll_event events[kMaxEvents];
  while (true) {
    // Drain-exit: every submitted execution delivered and every response
    // byte flushed, or the drain budget is spent.
    if (draining_) {
      bool flushed = outstanding_ == 0;
      if (flushed)
        for (const auto& [id, c] : conns_)
          if (c.out.size() > c.out_off) {
            flushed = false;
            break;
          }
      if (flushed || steady_s() >= drain_deadline_s_) break;
    }

    int timeout_ms = -1;
    if (draining_) {
      const double left = drain_deadline_s_ - steady_s();
      timeout_ms = left > 0 ? static_cast<int>(left * 1000) + 1 : 0;
    }
    const int n = ::epoll_wait(epoll_fd_, events, kMaxEvents, timeout_ms);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;  // epoll fd gone; nothing sane left to do
    }

    for (int i = 0; i < n; ++i) {
      const uint64_t id = events[i].data.u64;
      if (id == kListenId) {
        accept_connections();
      } else if (id == kWakeId) {
        drain_eventfd(wake_fd_);
        drain_completions();
      } else if (id == kTermId) {
        drain_eventfd(term_fd_);
        if (!draining_) {
          draining_ = true;
          drain_deadline_s_ = steady_s() + opts_.drain_timeout_s;
          // Close the listener outright (not just EPOLL_CTL_DEL): an open
          // listening socket still completes handshakes into the backlog,
          // so new clients would connect and hang instead of being refused.
          ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, listen_fd_, nullptr);
          close_fd(listen_fd_);
        }
      } else {
        Connection* c = find_connection(id);
        if (c == nullptr) continue;  // closed earlier in this batch
        if ((events[i].events & (EPOLLHUP | EPOLLERR)) != 0) {
          close_connection(id);
          continue;
        }
        if ((events[i].events & EPOLLIN) != 0) handle_readable(id);
        c = find_connection(id);  // may have closed while reading
        if (c != nullptr && (events[i].events & EPOLLOUT) != 0) flush(*c);
      }
    }
  }

  // Loop exit (drain complete, drain timeout, or epoll failure): drop
  // whatever is left.
  for (auto& [id, c] : conns_) close_fd(c.fd);
  conns_.clear();
  active_connections_.store(0, std::memory_order_relaxed);
  loop_done_.store(true, std::memory_order_release);
}

void Server::accept_connections() {
  while (true) {
    const int fd = ::accept4(listen_fd_, nullptr, nullptr,
                             SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) return;  // EAGAIN or transient error; epoll will re-arm
    if (conns_.size() >= opts_.max_connections || draining_) {
      ::close(fd);
      continue;
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    const uint64_t id = next_conn_id_++;
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.u64 = id;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
      ::close(fd);
      continue;
    }
    Connection c;
    c.fd = fd;
    c.id = id;
    conns_.emplace(id, std::move(c));
    active_connections_.store(conns_.size(), std::memory_order_relaxed);
    service_.registry()->on_connection_accepted();
  }
}

void Server::handle_readable(uint64_t conn_id) {
  Connection* c = find_connection(conn_id);
  if (c == nullptr) return;
  char buf[kReadChunk];
  while (true) {
    const ssize_t n = ::read(c->fd, buf, sizeof buf);
    if (n > 0) {
      c->in.append(buf, static_cast<size_t>(n));
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    if (n < 0 && errno == EINTR) continue;
    close_connection(conn_id);  // EOF or hard error
    return;
  }
  process_buffer(conn_id);
}

void Server::process_buffer(uint64_t conn_id) {
  // Sending a response can close the connection (hard send error), which
  // invalidates any Connection reference — so each iteration re-resolves
  // the id and copies the frame out of the buffer before acting on it.
  while (true) {
    Connection* c = find_connection(conn_id);
    if (c == nullptr) return;

    // Protocol selection on the connection's first bytes: protocol v1
    // frames start with the "SWV1" magic, an HTTP scrape with "GET ".
    if (!c->http && c->in.size() >= 4 && c->in.compare(0, 4, "GET ") == 0)
      c->http = true;
    if (c->http) {
      process_http(*c);
      return;
    }

    if (c->in.size() < kHeaderSize) return;
    const auto h =
        decode_header(reinterpret_cast<const uint8_t*>(c->in.data()));
    if (!h) {
      service_.registry()->on_protocol_error();
      c->in.clear();
      c->close_after_write = true;  // cannot resync a corrupt stream
      send_error(*c, FrameHeader{}, ServiceStatus::BadVersion,
                 "bad magic; expected protocol v1 (SWV1)");
      return;
    }
    if (h->payload_len > opts_.max_frame_bytes) {
      service_.registry()->on_protocol_error();
      const std::string msg =
          "payload length " + std::to_string(h->payload_len) +
          " exceeds serve.max_frame_bytes " +
          std::to_string(opts_.max_frame_bytes);
      c->in.clear();
      c->close_after_write = true;  // would have to read it to skip it
      send_error(*c, *h, ServiceStatus::FrameTooLarge, msg);
      return;
    }
    if (c->in.size() < kHeaderSize + h->payload_len) return;  // partial

    const std::string payload =
        c->in.substr(kHeaderSize, h->payload_len);
    c->in.erase(0, kHeaderSize + h->payload_len);
    service_.registry()->on_frame_rx(kHeaderSize + payload.size());
    process_frame(*c, *h, payload);
  }
}

void Server::process_frame(Connection& c, const FrameHeader& h,
                           std::string_view payload) {
  if (!known_request_type(static_cast<uint8_t>(h.type))) {
    service_.registry()->on_protocol_error();
    send_error(c, h, ServiceStatus::UnknownType,
               "unknown message type " +
                   std::to_string(static_cast<unsigned>(h.type)));
    return;
  }

  const bool json = (h.flags & kFlagJson) != 0;
  switch (h.type) {
    case MsgType::Ping: {
      FrameHeader r;
      r.type = MsgType::Pong;
      r.flags = h.flags & kFlagJson;
      r.tier = h.tier;
      r.request_id = h.request_id;
      send_frame(c, r, json ? "{}" : "");
      return;
    }
    case MsgType::MetricsRequest: {
      const std::string body = obs::render_metrics(
          metrics(),
          json ? obs::MetricsFormat::Json : obs::MetricsFormat::Prometheus);
      FrameHeader r;
      r.type = MsgType::MetricsResponse;
      r.flags = h.flags & kFlagJson;
      r.tier = h.tier;
      r.request_id = h.request_id;
      send_frame(c, r, body);
      return;
    }
    case MsgType::AlignRequest:
      handle_request(c, h,
                     json ? decode_align_request_json(payload)
                          : decode_align_request(payload));
      return;
    case MsgType::SearchRequest:
      handle_request(c, h,
                     json ? decode_search_request_json(payload)
                          : decode_search_request(payload));
      return;
    case MsgType::BatchRequest:
      handle_request(c, h,
                     json ? decode_batch_request_json(payload)
                          : decode_batch_request(payload));
      return;
    default:
      return;  // unreachable; known_request_type gated above
  }
}

template <typename Request>
void Server::handle_request(Connection& c, const FrameHeader& h,
                            std::optional<Request> decoded) {
  if (!decoded) {
    service_.registry()->on_protocol_error();
    send_error(c, h, ServiceStatus::BadFrame, "undecodable request payload");
    return;
  }
  if (draining_) {
    send_error(c, h, ServiceStatus::ShuttingDown, "server is draining");
    return;
  }
  decoded->options.tier = service::qos_tier_from_wire(h.tier);

  const bool json = (h.flags & kFlagJson) != 0;
  if (json) {
    // JSON debug mode bypasses the cache and singleflight: its payloads
    // are a different (non-canonical) serialization of the same result.
    submit_request(c, h, std::move(*decoded), /*flight=*/false,
                   /*identity=*/std::string());
    return;
  }

  std::string identity = cache_identity(*decoded, db_epoch_);
  const uint64_t key = cache_key(identity);
  if (cache_.capacity() > 0 && (h.flags & kFlagNoCache) == 0) {
    if (const CachedResponse* hit = cache_.get(key, identity)) {
      service_.registry()->on_result_cache_hit();
      FrameHeader r;
      r.type = hit->type;
      r.flags = kFlagFromCache;
      r.tier = h.tier;
      r.status = hit->status;
      r.request_id = h.request_id;
      send_frame(c, r, hit->payload);
      return;
    }
    service_.registry()->on_result_cache_miss();
  }
  bool flight = false;
  if (opts_.singleflight) {
    switch (flights_.join(key, identity,
                          FlightWaiter{c.id, h.request_id, /*json=*/false,
                                       /*initiator=*/false})) {
      case Singleflight::Join::Joined:
        service_.registry()->on_coalesced();
        return;  // the in-flight twin's completion answers this waiter too
      case Singleflight::Join::Started:
        flight = true;
        break;
      case Singleflight::Join::Mismatch:
        // Key collision with a different in-flight request: execute
        // independently and deliver directly; never share its response.
        break;
    }
  }
  submit_request(c, h, std::move(*decoded), flight, std::move(identity));
}

template <typename Request>
void Server::submit_request(const Connection& c, const FrameHeader& h,
                            Request rq, bool flight, std::string identity) {
  using Traits = WireTraits<Request>;
  const bool json = (h.flags & kFlagJson) != 0;
  Completion done;
  done.flight = flight;
  done.cacheable = !json;
  done.key = json ? 0 : cache_key(identity);
  done.identity = std::move(identity);
  done.conn_id = c.id;
  done.request_id = h.request_id;
  done.req_flags = h.flags;
  done.req_tier = h.tier;
  ++outstanding_;

  // The completion runs on an executor thread (or inline for immediate
  // rejections): serialize there, deliver on the loop thread. The callback
  // captures the completion sink, never `this` — it may fire after the
  // drain deadline has passed and the Server is destroyed.
  service_.submit_async(
      std::move(rq),
      [sink = sink_,
       done](core::ErrorOr<typename Traits::Response> out) mutable {
        const bool as_json = (done.req_flags & kFlagJson) != 0;
        done.response.tier = done.req_tier;
        if (out.ok()) {
          done.response.type = Traits::kResponse;
          done.response.status = service::wire_status(ServiceStatus::Ok);
          if (as_json)
            done.response.payload = Traits::json(out.value());
          else
            Traits::encode(done.response.payload, out.value());
        } else {
          const ServiceStatus st = service::to_status(out.error().code);
          done.response.type = MsgType::ErrorResponse;
          done.response.status = service::wire_status(st);
          done.response.payload =
              error_payload(st, out.error().message, as_json);
        }
        push_completion(sink, std::move(done));
      });
}

void Server::push_completion(const std::shared_ptr<CompletionSink>& sink,
                             Completion done) {
  // The write stays under the lock so ~Server cannot close the eventfd
  // between the open-check and the write.
  std::lock_guard<std::mutex> lock(sink->mu);
  if (sink->wake_fd < 0) return;  // server gone; drop the late completion
  sink->items.push_back(std::move(done));
  const uint64_t one = 1;
  [[maybe_unused]] ssize_t n = ::write(sink->wake_fd, &one, sizeof one);
}

void Server::drain_completions() {
  std::vector<Completion> batch;
  {
    std::lock_guard<std::mutex> lock(sink_->mu);
    batch.swap(sink_->items);
  }
  for (const Completion& done : batch) {
    deliver(done);
    --outstanding_;
  }
}

void Server::deliver(const Completion& done) {
  const bool ok = done.response.status == service::wire_status(ServiceStatus::Ok);
  if (done.cacheable && ok) publish(done.key, done);

  if (!done.flight) {
    // Direct delivery (JSON mode, or singleflight disabled).
    if (Connection* c = find_connection(done.conn_id)) {
      FrameHeader r;
      r.type = done.response.type;
      r.flags = done.req_flags & kFlagJson;
      r.tier = done.response.tier;
      r.status = done.response.status;
      r.request_id = done.request_id;
      send_frame(*c, r, done.response.payload);
    }
    return;
  }

  // Flight delivery: fan the one serialized response out to every waiter.
  // Joiners are flagged kFlagCoalesced; the payload bytes are identical.
  const std::vector<FlightWaiter> waiters = flights_.complete(done.key);
  for (const FlightWaiter& w : waiters) {
    Connection* c = find_connection(w.conn_id);
    if (c == nullptr) continue;  // waiter disconnected mid-flight
    FrameHeader r;
    r.type = done.response.type;
    r.flags = w.initiator ? 0 : kFlagCoalesced;
    r.tier = done.response.tier;
    r.status = done.response.status;
    r.request_id = w.request_id;
    send_frame(*c, r, done.response.payload);
  }
}

void Server::publish(uint64_t key, const Completion& done) {
  if (cache_.capacity() == 0) return;
  const size_t evicted = cache_.put(key, done.identity, done.response);
  for (size_t i = 0; i < evicted; ++i)
    service_.registry()->on_result_cache_eviction();
  cache_entries_.store(cache_.entries(), std::memory_order_relaxed);
}

// --------------------------------------------------------------------- HTTP

void Server::process_http(Connection& c) {
  const size_t end = c.in.find("\r\n\r\n");
  if (end == std::string::npos) {
    if (c.in.size() > 8192) close_connection(c.id);  // absurd request line
    return;
  }
  const std::string_view head(c.in.data(), end);
  const size_t path_begin = 4;  // past "GET "
  const size_t path_end = head.find(' ', path_begin);
  const std::string_view target =
      path_end == std::string_view::npos
          ? head.substr(path_begin)
          : head.substr(path_begin, path_end - path_begin);
  std::string_view path = target;
  std::string_view query;
  if (const size_t q = target.find('?'); q != std::string_view::npos) {
    path = target.substr(0, q);
    query = target.substr(q + 1);
  }

  std::string reply;
  if (path == "/metrics" && opts_.http_metrics) {
    service_.registry()->on_http_scrape();
    const bool json = query.find("format=json") != std::string_view::npos;
    const std::string body = obs::render_metrics(
        metrics(),
        json ? obs::MetricsFormat::Json : obs::MetricsFormat::Prometheus);
    reply = http_response(200, "OK",
                          json ? "application/json"
                               : "text/plain; version=0.0.4",
                          body);
  } else if (path == "/healthz") {
    reply = draining_ ? http_response(503, "Service Unavailable",
                                      "text/plain", "draining\n")
                      : http_response(200, "OK", "text/plain", "ok\n");
  } else {
    reply = http_response(404, "Not Found", "text/plain", "not found\n");
  }
  c.in.erase(0, end + 4);
  c.out.append(reply);
  c.close_after_write = true;
  flush(c);
}

// ------------------------------------------------------------------ plumbing

void Server::send_frame(Connection& c, const FrameHeader& h,
                        std::string_view payload) {
  FrameHeader out = h;
  out.payload_len = static_cast<uint32_t>(payload.size());
  encode_header(c.out, out);
  c.out.append(payload);
  service_.registry()->on_frame_tx(kHeaderSize + payload.size());
  flush(c);
}

void Server::send_error(Connection& c, const FrameHeader& req,
                        ServiceStatus status, std::string_view message) {
  const bool json = (req.flags & kFlagJson) != 0;
  FrameHeader r;
  r.type = MsgType::ErrorResponse;
  r.flags = req.flags & kFlagJson;
  r.tier = req.tier;
  r.status = service::wire_status(status);
  r.request_id = req.request_id;
  send_frame(c, r, error_payload(status, message, json));
}

void Server::flush(Connection& c) {
  while (c.out_off < c.out.size()) {
    const ssize_t n = ::send(c.fd, c.out.data() + c.out_off,
                             c.out.size() - c.out_off, MSG_NOSIGNAL);
    if (n > 0) {
      c.out_off += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      epoll_event ev{};
      ev.events = EPOLLIN | EPOLLOUT;
      ev.data.u64 = c.id;
      ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, c.fd, &ev);
      return;
    }
    if (n < 0 && errno == EINTR) continue;
    close_connection(c.id);  // peer gone
    return;
  }
  // Fully flushed: compact and drop EPOLLOUT interest.
  c.out.clear();
  c.out_off = 0;
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.u64 = c.id;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, c.fd, &ev);
  if (c.close_after_write) close_connection(c.id);
}

void Server::close_connection(uint64_t conn_id) {
  const auto it = conns_.find(conn_id);
  if (it == conns_.end()) return;
  flights_.drop_connection(conn_id);
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, it->second.fd, nullptr);
  close_fd(it->second.fd);
  conns_.erase(it);
  active_connections_.store(conns_.size(), std::memory_order_relaxed);
}

Server::Connection* Server::find_connection(uint64_t conn_id) {
  const auto it = conns_.find(conn_id);
  return it == conns_.end() ? nullptr : &it->second;
}

}  // namespace swve::net
