#include "net/server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <utility>

#include "core/mapped_db.hpp"
#include "net/json.hpp"
#include "obs/exporters.hpp"
#include "obs/log.hpp"
#include "perf/timer.hpp"

namespace swve::net {
namespace {

using Code = core::ConfigError::Code;
using service::ServiceStatus;

// epoll user-data sentinels; connection ids start at 16.
constexpr uint64_t kListenId = 1;
constexpr uint64_t kWakeId = 2;
constexpr uint64_t kTermId = 3;

constexpr int kMaxEvents = 64;
constexpr size_t kReadChunk = 64 * 1024;

double steady_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

core::ConfigError sys_error(const char* what) {
  return core::ConfigError{
      Code::Internal,
      std::string("net: ") + what + " failed: " + std::strerror(errno)};
}

/// Drain an eventfd so level-triggered epoll stops reporting it readable.
void drain_eventfd(int fd) {
  uint64_t n = 0;
  while (::read(fd, &n, sizeof n) == static_cast<ssize_t>(sizeof n)) {
  }
}

void close_fd(int& fd) {
  if (fd >= 0) {
    ::close(fd);
    fd = -1;
  }
}

/// Scenario-specific glue the request template dispatches on: the response
/// codecs and the response MsgType.
template <typename Request>
struct WireTraits;

template <>
struct WireTraits<service::AlignRequest> {
  using Response = service::AlignResponse;
  static constexpr MsgType kResponse = MsgType::AlignResponse;
  static void encode(std::string& out, const Response& r) {
    encode_align_response(out, r);
  }
  static std::string json(const Response& r) { return align_response_json(r); }
};

template <>
struct WireTraits<service::SearchRequest> {
  using Response = service::SearchResponse;
  static constexpr MsgType kResponse = MsgType::SearchResponse;
  static void encode(std::string& out, const Response& r) {
    encode_search_response(out, r);
  }
  static std::string json(const Response& r) { return search_response_json(r); }
};

template <>
struct WireTraits<service::BatchRequest> {
  using Response = service::BatchResponse;
  static constexpr MsgType kResponse = MsgType::BatchResponse;
  static void encode(std::string& out, const Response& r) {
    encode_batch_response(out, r);
  }
  static std::string json(const Response& r) { return batch_response_json(r); }
};

/// Minimal HTTP response; the server always closes after writing one.
/// `extra_headers` (e.g. "Allow: GET\r\n") is inserted verbatim.
std::string http_response(int code, const char* reason,
                          const char* content_type, std::string_view body,
                          std::string_view extra_headers = {}) {
  std::string out = "HTTP/1.1 " + std::to_string(code) + " " + reason +
                    "\r\nContent-Type: " + content_type +
                    "\r\nContent-Length: " + std::to_string(body.size()) +
                    "\r\n";
  out.append(extra_headers);
  out += "Connection: close\r\n\r\n";
  out.append(body);
  return out;
}

/// HTTP request-line method if the buffer starts with one we recognize
/// (the token + the mandatory space), else nullptr. Used for protocol
/// sniffing: any HTTP method selects the HTTP path, so a POST gets a
/// clean 405 instead of falling into binary protocol-error handling.
const char* sniff_http_method(std::string_view in) {
  static constexpr const char* kMethods[] = {
      "GET ", "POST ", "HEAD ", "PUT ", "DELETE ", "OPTIONS ", "PATCH "};
  for (const char* m : kMethods) {
    const size_t n = std::strlen(m);
    if (in.size() >= n && in.compare(0, n, m) == 0) return m;
    // An incomplete prefix of a method keeps the decision pending.
    if (in.size() < n && std::memcmp(in.data(), m, in.size()) == 0)
      return nullptr;
  }
  return nullptr;
}
}  // namespace

core::ErrorOr<std::unique_ptr<Server>> Server::start(
    service::AlignService& service) {
  if (auto st = service.options().try_validate(); !st) return st.error();
  // The event loop is the submitter: with Overflow::Block a full queue
  // would park the loop thread on the queue's condition variable, stalling
  // every connection, /healthz, and the SIGTERM drain path. Serving
  // requires Reject semantics (clients see QueueFull and retry).
  if (service.options().queue.overflow ==
      service::QueueOptions::Overflow::Block)
    return core::ConfigError{
        Code::Unsupported,
        "net: serving requires queue.overflow = Reject; Overflow::Block "
        "would stall the event loop when the submission queue fills"};
  const service::ServeOptions& opts = service.options().serve;

  // Prefer the epoch the service already knows (an artifact stores its
  // fingerprint in the header — free); only a legacy FASTA/synthetic
  // startup pays the O(database) hash here.
  uint64_t epoch = service.db_epoch();
  if (epoch == 0 && service.database() != nullptr)
    epoch = database_epoch(*service.database());
  std::unique_ptr<Server> s(new Server(service, epoch));

  s->listen_fd_ =
      ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (s->listen_fd_ < 0) return sys_error("socket");
  const int one = 1;
  ::setsockopt(s->listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(opts.port);
  if (::inet_pton(AF_INET, opts.bind.c_str(), &addr.sin_addr) != 1)
    return core::ConfigError{
        Code::Unsupported,
        "net: serve.bind is not an IPv4 address: " + opts.bind};
  if (::bind(s->listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof addr) != 0)
    return sys_error("bind");
  if (::listen(s->listen_fd_, opts.backlog) != 0) return sys_error("listen");

  sockaddr_in bound{};
  socklen_t blen = sizeof bound;
  if (::getsockname(s->listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                    &blen) != 0)
    return sys_error("getsockname");
  s->port_ = ntohs(bound.sin_port);

  s->epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (s->epoll_fd_ < 0) return sys_error("epoll_create1");
  s->wake_fd_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  s->term_fd_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  if (s->wake_fd_ < 0 || s->term_fd_ < 0) return sys_error("eventfd");
  s->sink_->wake_fd = s->wake_fd_;  // no completions can exist yet

  const auto add = [&s](int fd, uint64_t id) {
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.u64 = id;
    return ::epoll_ctl(s->epoll_fd_, EPOLL_CTL_ADD, fd, &ev);
  };
  if (add(s->listen_fd_, kListenId) != 0 || add(s->wake_fd_, kWakeId) != 0 ||
      add(s->term_fd_, kTermId) != 0)
    return sys_error("epoll_ctl");

  s->thread_ = std::thread([srv = s.get()] { srv->loop(); });
  return s;
}

Server::Server(service::AlignService& service, uint64_t db_epoch)
    : service_(service),
      opts_(service.options().serve),
      trace_sink_(service.options().obs.trace_sink),
      db_epoch_(db_epoch),
      started_s_(steady_s()),
      cache_(opts_.result_cache_capacity) {}

Server::~Server() {
  shutdown();
  join();
  {
    // Close the sink BEFORE closing wake_fd_: executions still running
    // past the drain deadline (and ~AlignService flushing leftovers later)
    // hold the sink via shared_ptr and must see it closed rather than
    // write a dead fd or touch this object.
    std::lock_guard<std::mutex> lock(sink_->mu);
    sink_->wake_fd = -1;
    sink_->items.clear();
  }
  close_fd(epoll_fd_);
  close_fd(listen_fd_);
  close_fd(wake_fd_);
  close_fd(term_fd_);
}

void Server::shutdown() {
  if (term_fd_ >= 0) {
    const uint64_t one = 1;
    [[maybe_unused]] ssize_t n = ::write(term_fd_, &one, sizeof one);
  }
}

void Server::join() {
  if (thread_.joinable()) thread_.join();
}

perf::MetricsSnapshot Server::metrics() const {
  perf::MetricsSnapshot snap = service_.metrics();
  snap.server_active_connections =
      active_connections_.load(std::memory_order_relaxed);
  snap.result_cache_entries = cache_entries_.load(std::memory_order_relaxed);
  return snap;
}

// ------------------------------------------------------------------ the loop

void Server::loop() {
  epoll_event events[kMaxEvents];
  while (true) {
    // Drain-exit: every submitted execution delivered and every response
    // byte flushed, or the drain budget is spent.
    if (draining_) {
      bool flushed = outstanding_ == 0;
      if (flushed)
        for (const auto& [id, c] : conns_)
          if (c.out.size() > c.out_off) {
            flushed = false;
            break;
          }
      if (flushed || steady_s() >= drain_deadline_s_) break;
    }

    int timeout_ms = -1;
    if (draining_) {
      const double left = drain_deadline_s_ - steady_s();
      timeout_ms = left > 0 ? static_cast<int>(left * 1000) + 1 : 0;
    }
    const int n = ::epoll_wait(epoll_fd_, events, kMaxEvents, timeout_ms);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;  // epoll fd gone; nothing sane left to do
    }

    for (int i = 0; i < n; ++i) {
      const uint64_t id = events[i].data.u64;
      if (id == kListenId) {
        accept_connections();
      } else if (id == kWakeId) {
        drain_eventfd(wake_fd_);
        drain_completions();
      } else if (id == kTermId) {
        drain_eventfd(term_fd_);
        if (!draining_) {
          draining_ = true;
          drain_deadline_s_ = steady_s() + opts_.drain_timeout_s;
          obs::log_info("server.drain",
                        {{"outstanding", static_cast<uint64_t>(outstanding_)},
                         {"connections", static_cast<uint64_t>(conns_.size())},
                         {"timeout_s", opts_.drain_timeout_s}});
          // Close the listener outright (not just EPOLL_CTL_DEL): an open
          // listening socket still completes handshakes into the backlog,
          // so new clients would connect and hang instead of being refused.
          ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, listen_fd_, nullptr);
          close_fd(listen_fd_);
        }
      } else {
        Connection* c = find_connection(id);
        if (c == nullptr) continue;  // closed earlier in this batch
        if ((events[i].events & (EPOLLHUP | EPOLLERR)) != 0) {
          close_connection(id);
          continue;
        }
        if ((events[i].events & EPOLLIN) != 0) handle_readable(id);
        c = find_connection(id);  // may have closed while reading
        if (c != nullptr && (events[i].events & EPOLLOUT) != 0) flush(*c);
      }
    }
  }

  // Loop exit (drain complete, drain timeout, or epoll failure): drop
  // whatever is left.
  for (auto& [id, c] : conns_) close_fd(c.fd);
  conns_.clear();
  active_connections_.store(0, std::memory_order_relaxed);
  loop_done_.store(true, std::memory_order_release);
}

void Server::accept_connections() {
  while (true) {
    sockaddr_in peer{};
    socklen_t plen = sizeof peer;
    const int fd = ::accept4(listen_fd_, reinterpret_cast<sockaddr*>(&peer),
                             &plen, SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) return;  // EAGAIN or transient error; epoll will re-arm
    if (conns_.size() >= opts_.max_connections || draining_) {
      ::close(fd);
      continue;
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    const uint64_t id = next_conn_id_++;
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.u64 = id;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
      ::close(fd);
      continue;
    }
    Connection c;
    c.fd = fd;
    c.id = id;
    char ip[INET_ADDRSTRLEN] = "?";
    ::inet_ntop(AF_INET, &peer.sin_addr, ip, sizeof ip);
    c.peer = std::string(ip) + ":" + std::to_string(ntohs(peer.sin_port));
    c.opened_s = steady_s();
    obs::log_info("server.accept", {{"conn", id}, {"peer", c.peer}});
    conns_.emplace(id, std::move(c));
    active_connections_.store(conns_.size(), std::memory_order_relaxed);
    service_.registry()->on_connection_accepted();
  }
}

void Server::handle_readable(uint64_t conn_id) {
  Connection* c = find_connection(conn_id);
  if (c == nullptr) return;
  char buf[kReadChunk];
  while (true) {
    const ssize_t n = ::read(c->fd, buf, sizeof buf);
    if (n > 0) {
      c->in.append(buf, static_cast<size_t>(n));
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    if (n < 0 && errno == EINTR) continue;
    close_connection(conn_id);  // EOF or hard error
    return;
  }
  process_buffer(conn_id);
}

void Server::process_buffer(uint64_t conn_id) {
  // Sending a response can close the connection (hard send error), which
  // invalidates any Connection reference — so each iteration re-resolves
  // the id and copies the frame out of the buffer before acting on it.
  while (true) {
    Connection* c = find_connection(conn_id);
    if (c == nullptr) return;

    // Protocol selection on the connection's first bytes: protocol v1
    // frames start with the "SWV1" magic, an HTTP request with a method
    // token. Any recognized method — not just GET — routes to the HTTP
    // path, so a POST gets a clean 405 rather than a binary BadVersion.
    // A short buffer that is still a method prefix simply waits: the
    // binary branch below needs kHeaderSize bytes before it decides.
    if (!c->http && sniff_http_method(c->in) != nullptr) c->http = true;
    if (c->http) {
      process_http(*c);
      return;
    }

    if (c->in.size() < kHeaderSize) return;
    const auto h =
        decode_header(reinterpret_cast<const uint8_t*>(c->in.data()));
    if (!h) {
      service_.registry()->on_protocol_error();
      obs::log_warn("server.protocol_error",
                    {{"conn", c->id}, {"reason", "bad_magic"}});
      c->in.clear();
      c->close_after_write = true;  // cannot resync a corrupt stream
      send_error(*c, FrameHeader{}, ServiceStatus::BadVersion,
                 "bad magic; expected protocol v1 (SWV1)");
      return;
    }
    if (h->payload_len > opts_.max_frame_bytes) {
      service_.registry()->on_protocol_error();
      obs::log_warn("server.protocol_error",
                    {{"conn", c->id},
                     {"reason", "frame_too_large"},
                     {"payload_len", h->payload_len}});
      const std::string msg =
          "payload length " + std::to_string(h->payload_len) +
          " exceeds serve.max_frame_bytes " +
          std::to_string(opts_.max_frame_bytes);
      c->in.clear();
      c->close_after_write = true;  // would have to read it to skip it
      send_error(*c, *h, ServiceStatus::FrameTooLarge, msg);
      return;
    }
    if (c->in.size() < kHeaderSize + h->payload_len) return;  // partial

    const std::string payload =
        c->in.substr(kHeaderSize, h->payload_len);
    c->in.erase(0, kHeaderSize + h->payload_len);
    service_.registry()->on_frame_rx(kHeaderSize + payload.size());
    c->frames_rx += 1;
    c->bytes_rx += kHeaderSize + payload.size();
    process_frame(*c, *h, payload);
  }
}

void Server::process_frame(Connection& c, const FrameHeader& h,
                           std::string_view payload) {
  if (!known_request_type(static_cast<uint8_t>(h.type))) {
    service_.registry()->on_protocol_error();
    obs::log_warn("server.protocol_error",
                  {{"conn", c.id},
                   {"reason", "unknown_type"},
                   {"type", static_cast<unsigned>(h.type)}});
    send_error(c, h, ServiceStatus::UnknownType,
               "unknown message type " +
                   std::to_string(static_cast<unsigned>(h.type)));
    return;
  }
  c.last_tier = h.tier;

  // Frame receipt time on the sink clock: the start of the server.frame
  // span recorded for traced requests.
  const uint64_t t_rx_ns = trace_sink_ ? trace_sink_->now_ns() : 0;
  WireTraceContext trace;
  if ((h.flags & kFlagTraced) != 0) {
    auto ctx = decode_trace_context(payload);  // strips the 9-byte prefix
    if (!ctx) {
      service_.registry()->on_protocol_error();
      obs::log_warn("server.protocol_error",
                    {{"conn", c.id}, {"reason", "bad_trace_context"}});
      send_error(c, h, ServiceStatus::BadFrame,
                 "traced flag without a valid trace context");
      return;
    }
    trace = *ctx;
  }

  const bool json = (h.flags & kFlagJson) != 0;
  switch (h.type) {
    case MsgType::Ping: {
      FrameHeader r;
      r.type = MsgType::Pong;
      r.flags = h.flags & kFlagJson;
      r.tier = h.tier;
      r.request_id = h.request_id;
      send_frame(c, r, json ? "{}" : "");
      return;
    }
    case MsgType::MetricsRequest: {
      const std::string body = obs::render_metrics(
          metrics(),
          json ? obs::MetricsFormat::Json : obs::MetricsFormat::Prometheus);
      FrameHeader r;
      r.type = MsgType::MetricsResponse;
      r.flags = h.flags & kFlagJson;
      r.tier = h.tier;
      r.request_id = h.request_id;
      send_frame(c, r, body);
      return;
    }
    case MsgType::AlignRequest:
      handle_request(c, h,
                     json ? decode_align_request_json(payload)
                          : decode_align_request(payload),
                     trace, t_rx_ns);
      return;
    case MsgType::SearchRequest:
      handle_request(c, h,
                     json ? decode_search_request_json(payload)
                          : decode_search_request(payload),
                     trace, t_rx_ns);
      return;
    case MsgType::BatchRequest:
      handle_request(c, h,
                     json ? decode_batch_request_json(payload)
                          : decode_batch_request(payload),
                     trace, t_rx_ns);
      return;
    default:
      return;  // unreachable; known_request_type gated above
  }
}

template <typename Request>
void Server::handle_request(Connection& c, const FrameHeader& h,
                            std::optional<Request> decoded,
                            const WireTraceContext& trace, uint64_t t_rx_ns) {
  if (!decoded) {
    service_.registry()->on_protocol_error();
    obs::log_warn("server.protocol_error",
                  {{"conn", c.id}, {"reason", "bad_payload"}});
    send_error(c, h, ServiceStatus::BadFrame, "undecodable request payload");
    return;
  }
  if (draining_) {
    send_error(c, h, ServiceStatus::ShuttingDown, "server is draining");
    return;
  }
  decoded->options.tier = service::qos_tier_from_wire(h.tier);
  // The propagated trace id becomes the service-side span id: one id
  // threads client -> frame -> queue_wait -> dispatch -> kernel spans.
  decoded->options.trace_id = trace.trace_id;
  const bool traced = trace.trace_id != 0;

  const bool json = (h.flags & kFlagJson) != 0;
  if (json) {
    // JSON debug mode bypasses the cache and singleflight: its payloads
    // are a different (non-canonical) serialization of the same result.
    submit_request(c, h, std::move(*decoded), /*flight=*/false,
                   /*identity=*/std::string(), trace, t_rx_ns);
    return;
  }

  std::string identity = cache_identity(*decoded, db_epoch_);
  const uint64_t key = cache_key(identity);
  if (cache_.capacity() > 0 && (h.flags & kFlagNoCache) == 0) {
    if (const CachedResponse* hit = cache_.get(key, identity)) {
      service_.registry()->on_result_cache_hit();
      FrameHeader r;
      r.type = hit->type;
      r.flags = kFlagFromCache;
      r.tier = h.tier;
      r.status = hit->status;
      r.request_id = h.request_id;
      std::string trailer;
      if (traced) {
        // A cache hit never executed: the timing breakdown is all zeros,
        // provenance says "served from cache".
        r.flags |= kFlagTraced;
        encode_server_timing(
            trailer, ServerTiming{trace.trace_id, 0, 0, 0, /*source=*/1});
        if (trace_sink_)
          trace_sink_->record_span("server.frame", trace.trace_id, t_rx_ns,
                                   trace_sink_->now_ns());
        if (trace.sampled)
          record_tracez(TracezEntry{trace.trace_id, hit->type, h.tier,
                                    hit->status, 0, 0, /*source=*/1});
      }
      send_frame(c, r, hit->payload, trailer);
      return;
    }
    service_.registry()->on_result_cache_miss();
  }
  bool flight = false;
  if (opts_.singleflight) {
    switch (flights_.join(key, identity,
                          FlightWaiter{c.id, h.request_id, /*json=*/false,
                                       /*initiator=*/false, traced,
                                       trace.sampled, trace.trace_id})) {
      case Singleflight::Join::Joined:
        service_.registry()->on_coalesced();
        ++c.inflight;
        // The joiner's own server-side work ends here (receipt -> join);
        // the execution spans live under the INITIATOR's trace id. Its
        // timing trailer arrives with the shared completion.
        if (traced && trace_sink_)
          trace_sink_->record_span("server.frame", trace.trace_id, t_rx_ns,
                                   trace_sink_->now_ns());
        return;  // the in-flight twin's completion answers this waiter too
      case Singleflight::Join::Started:
        flight = true;
        break;
      case Singleflight::Join::Mismatch:
        // Key collision with a different in-flight request: execute
        // independently and deliver directly; never share its response.
        break;
    }
  }
  submit_request(c, h, std::move(*decoded), flight, std::move(identity),
                 trace, t_rx_ns);
}

template <typename Request>
void Server::submit_request(Connection& c, const FrameHeader& h, Request rq,
                            bool flight, std::string identity,
                            const WireTraceContext& trace, uint64_t t_rx_ns) {
  using Traits = WireTraits<Request>;
  const bool json = (h.flags & kFlagJson) != 0;
  Completion done;
  done.flight = flight;
  done.cacheable = !json;
  done.key = json ? 0 : cache_key(identity);
  done.identity = std::move(identity);
  done.conn_id = c.id;
  done.request_id = h.request_id;
  done.req_flags = h.flags;
  done.req_tier = h.tier;
  done.traced = trace.trace_id != 0;
  done.sampled = trace.sampled;
  done.trace_id = trace.trace_id;
  ++outstanding_;
  ++c.inflight;
  if (done.traced && trace_sink_)
    trace_sink_->record_span("server.frame", trace.trace_id, t_rx_ns,
                             trace_sink_->now_ns());

  // The completion runs on an executor thread (or inline for immediate
  // rejections): serialize there, deliver on the loop thread. The callback
  // captures the completion sink, never `this` — it may fire after the
  // drain deadline has passed and the Server is destroyed.
  service_.submit_async(
      std::move(rq),
      [sink = sink_,
       done](core::ErrorOr<typename Traits::Response> out) mutable {
        const bool as_json = (done.req_flags & kFlagJson) != 0;
        done.response.tier = done.req_tier;
        const auto to_us = [](double s) {
          return s <= 0 ? 0u
                        : static_cast<uint32_t>(std::min(s * 1e6, 4.0e9));
        };
        if (out.ok()) {
          done.response.type = Traits::kResponse;
          done.response.status = service::wire_status(ServiceStatus::Ok);
          done.queue_us = to_us(out.value().trace.queue_wait_s);
          done.exec_us = to_us(out.value().trace.kernel_s);
          perf::Stopwatch sw;
          if (as_json)
            done.response.payload = Traits::json(out.value());
          else
            Traits::encode(done.response.payload, out.value());
          done.serialize_us = to_us(sw.seconds());
        } else {
          const ServiceStatus st = service::to_status(out.error().code);
          done.response.type = MsgType::ErrorResponse;
          done.response.status = service::wire_status(st);
          done.response.payload =
              error_payload(st, out.error().message, as_json);
        }
        push_completion(sink, std::move(done));
      });
}

void Server::push_completion(const std::shared_ptr<CompletionSink>& sink,
                             Completion done) {
  // The write stays under the lock so ~Server cannot close the eventfd
  // between the open-check and the write.
  std::lock_guard<std::mutex> lock(sink->mu);
  if (sink->wake_fd < 0) return;  // server gone; drop the late completion
  sink->items.push_back(std::move(done));
  const uint64_t one = 1;
  [[maybe_unused]] ssize_t n = ::write(sink->wake_fd, &one, sizeof one);
}

void Server::drain_completions() {
  std::vector<Completion> batch;
  {
    std::lock_guard<std::mutex> lock(sink_->mu);
    batch.swap(sink_->items);
  }
  for (const Completion& done : batch) {
    deliver(done);
    --outstanding_;
  }
}

void Server::deliver(const Completion& done) {
  const bool ok = done.response.status == service::wire_status(ServiceStatus::Ok);
  if (done.cacheable && ok) publish(done.key, done);
  const bool json = (done.req_flags & kFlagJson) != 0;

  if (!done.flight) {
    // Direct delivery (JSON mode, singleflight disabled, or a key-collision
    // Mismatch executed outside the flight).
    if (Connection* c = find_connection(done.conn_id)) {
      if (c->inflight > 0) --c->inflight;
      FrameHeader r;
      r.type = done.response.type;
      r.flags = done.req_flags & kFlagJson;
      r.tier = done.response.tier;
      r.status = done.response.status;
      r.request_id = done.request_id;
      std::string trailer;
      if (done.traced && !json) {
        r.flags |= kFlagTraced;
        encode_server_timing(trailer,
                             ServerTiming{done.trace_id, done.queue_us,
                                          done.exec_us, done.serialize_us,
                                          /*source=*/0});
      }
      if (done.traced && done.sampled)
        record_tracez(TracezEntry{done.trace_id, done.response.type,
                                  done.response.tier, done.response.status,
                                  done.queue_us, done.exec_us, /*source=*/0});
      send_frame(*c, r, done.response.payload, trailer);
    }
    return;
  }

  // Flight delivery: fan the one serialized response out to every waiter.
  // Joiners are flagged kFlagCoalesced; the payload bytes are identical.
  // Traced waiters each get their own trailer — the initiator's timing
  // breakdown with the waiter's own trace id echoed, and provenance 2
  // ("coalesced") for joiners, whose execution spans live under the
  // initiator's trace id.
  const std::vector<FlightWaiter> waiters = flights_.complete(done.key);
  for (const FlightWaiter& w : waiters) {
    Connection* c = find_connection(w.conn_id);
    if (c == nullptr) continue;  // waiter disconnected mid-flight
    if (c->inflight > 0) --c->inflight;
    FrameHeader r;
    r.type = done.response.type;
    r.flags = w.initiator ? 0 : kFlagCoalesced;
    r.tier = done.response.tier;
    r.status = done.response.status;
    r.request_id = w.request_id;
    std::string trailer;
    if (w.traced) {
      r.flags |= kFlagTraced;
      encode_server_timing(
          trailer, ServerTiming{w.trace_id, done.queue_us, done.exec_us,
                                done.serialize_us,
                                static_cast<uint8_t>(w.initiator ? 0 : 2)});
    }
    if (w.traced && w.sampled)
      record_tracez(TracezEntry{w.trace_id, done.response.type,
                                done.response.tier, done.response.status,
                                done.queue_us, done.exec_us,
                                static_cast<uint8_t>(w.initiator ? 0 : 2)});
    send_frame(*c, r, done.response.payload, trailer);
  }
}

void Server::publish(uint64_t key, const Completion& done) {
  if (cache_.capacity() == 0) return;
  const size_t evicted = cache_.put(key, done.identity, done.response);
  for (size_t i = 0; i < evicted; ++i)
    service_.registry()->on_result_cache_eviction();
  cache_entries_.store(cache_.entries(), std::memory_order_relaxed);
}

// --------------------------------------------------------------------- HTTP

/// /varz?series=qps,cache&window=60 — pulls the two recognized parameters
/// out of the query string and validates every comma-separated series
/// token. Returns false (with the offending token in `bad`) on an unknown
/// name, so the caller can answer 400 instead of silently serving nothing.
static bool parse_varz_query(std::string_view query, std::string* series,
                             double* window_s, std::string* bad) {
  size_t pos = 0;
  while (pos < query.size()) {
    size_t amp = query.find('&', pos);
    if (amp == std::string_view::npos) amp = query.size();
    const std::string_view kv = query.substr(pos, amp - pos);
    const size_t eq = kv.find('=');
    const std::string_view key =
        kv.substr(0, eq == std::string_view::npos ? kv.size() : eq);
    const std::string_view val =
        eq == std::string_view::npos ? std::string_view{} : kv.substr(eq + 1);
    if (key == "series") {
      *series = std::string(val);
    } else if (key == "window") {
      *window_s = std::strtod(std::string(val).c_str(), nullptr);
      if (*window_s < 0) *window_s = 0;
    }
    pos = amp + 1;
  }
  const std::string_view s = *series;
  size_t p = 0;
  while (p < s.size()) {
    size_t comma = s.find(',', p);
    if (comma == std::string_view::npos) comma = s.size();
    std::string_view tok = s.substr(p, comma - p);
    while (!tok.empty() && tok.front() == ' ') tok.remove_prefix(1);
    while (!tok.empty() && tok.back() == ' ') tok.remove_suffix(1);
    if (!tok.empty() && !obs::TimeSeriesStore::is_series_name(tok)) {
      *bad = std::string(tok);
      return false;
    }
    p = comma + 1;
  }
  return true;
}

void Server::process_http(Connection& c) {
  const size_t end = c.in.find("\r\n\r\n");
  if (end == std::string::npos) {
    if (c.in.size() > 8192) close_connection(c.id);  // absurd request line
    return;
  }
  const std::string_view head(c.in.data(), end);
  const char* method = sniff_http_method(head);
  if (method == nullptr) {  // cannot happen via sniffing, but be explicit
    close_connection(c.id);
    return;
  }
  if (std::string_view(method) != "GET ") {
    // The endpoints are all read-only; anything else is a clean 405, not a
    // fall-through into binary protocol-error handling.
    c.in.erase(0, end + 4);
    c.out.append(http_response(405, "Method Not Allowed", "text/plain",
                               "method not allowed\n", "Allow: GET\r\n"));
    c.close_after_write = true;
    flush(c);
    return;
  }
  const size_t path_begin = std::strlen(method);
  const size_t path_end = head.find(' ', path_begin);
  const std::string_view target =
      path_end == std::string_view::npos
          ? head.substr(path_begin)
          : head.substr(path_begin, path_end - path_begin);
  std::string_view path = target;
  std::string_view query;
  if (const size_t q = target.find('?'); q != std::string_view::npos) {
    path = target.substr(0, q);
    query = target.substr(q + 1);
  }

  std::string reply;
  if (path == "/metrics" && opts_.http_metrics) {
    service_.registry()->on_http_scrape();
    const bool json = query.find("format=json") != std::string_view::npos;
    obs::SloStatus slo_status;
    const bool have_slo = service_.slo() != nullptr;
    if (have_slo) slo_status = service_.slo()->status();
    const std::string body = obs::render_metrics(
        metrics(),
        json ? obs::MetricsFormat::Json : obs::MetricsFormat::Prometheus,
        have_slo ? &slo_status : nullptr);
    reply = http_response(200, "OK",
                          json ? "application/json"
                               : "text/plain; version=0.0.4",
                          body);
  } else if (path == "/healthz") {
    reply = draining_ ? http_response(503, "Service Unavailable",
                                      "text/plain", "draining\n")
                      : http_response(200, "OK", "text/plain", "ok\n");
  } else if (path == "/statusz" && opts_.http_metrics) {
    reply = http_response(200, "OK", "application/json", render_statusz());
  } else if (path == "/varz" && opts_.http_metrics) {
    if (const obs::TimeSeriesStore* ts = service_.timeseries()) {
      std::string series, bad;
      double window_s = 0;
      if (parse_varz_query(query, &series, &window_s, &bad)) {
        reply = http_response(200, "OK", "application/json",
                              ts->json(series, window_s));
      } else {
        reply = http_response(400, "Bad Request", "text/plain",
                              "unknown series: " + bad + "\n");
      }
    } else {
      reply = http_response(
          503, "Service Unavailable", "text/plain",
          "telemetry history disabled (serve.telemetry_cadence_s = 0)\n");
    }
  } else if (path == "/tracez" && opts_.http_metrics) {
    reply = http_response(200, "OK", "application/json", render_tracez());
  } else if (path == "/connz" && opts_.http_metrics) {
    reply = http_response(200, "OK", "application/json", render_connz());
  } else {
    reply = http_response(404, "Not Found", "text/plain", "not found\n");
  }
  c.in.erase(0, end + 4);
  c.out.append(reply);
  c.close_after_write = true;
  flush(c);
}

// u64 identities (db epoch, trace ids) must survive the JSON round trip
// bit-exactly; net::Json numbers are doubles, so they travel as decimal
// strings.
static std::string u64_string(uint64_t v) { return std::to_string(v); }

std::string Server::render_statusz() const {
  const obs::BuildInfo build = obs::build_info();
  const perf::MetricsSnapshot snap = metrics();
  const service::ServiceOptions& sopt = service_.options();
  JsonObject out;
  out["build"] = JsonObject{{"version", build.version},
                            {"compiler", build.compiler},
                            {"isas", build.isas}};
  out["uptime_s"] = steady_s() - started_s_;
  out["db_epoch"] = u64_string(db_epoch_);
  out["db"] = JsonObject{
      {"source", core::db_source_name(
                     static_cast<core::DbSource>(snap.db_source))},
      {"map_bytes", snap.db_map_bytes},
      {"resident_bytes", snap.db_resident_bytes},
      {"load_ms", snap.db_load_seconds * 1e3},
      {"epoch", u64_string(db_epoch_)}};
  if (snap.shard_count > 0) {
    JsonArray shards;
    for (uint32_t i = 0; i < snap.shard_count &&
                         i < static_cast<uint32_t>(
                                 perf::MetricsSnapshot::kMaxShards);
         ++i) {
      const perf::MetricsSnapshot::ShardSample& sh = snap.shards[i];
      shards.push_back(JsonObject{
          {"shard", static_cast<uint64_t>(i)},
          {"node", static_cast<double>(sh.node)},
          {"threads", static_cast<uint64_t>(sh.threads)},
          {"bound", sh.bound != 0},
          {"sequences", sh.sequences},
          {"searches", sh.searches},
          {"cells", sh.cells},
          {"busy_s", sh.busy_seconds},
          {"gcups", sh.gcups()},
          {"queue_depth", sh.queue_depth},
          {"llc_misses", sh.llc_misses}});
    }
    out["shards"] = std::move(shards);
  }
  out["port"] = static_cast<double>(port_);
  out["draining"] = draining_;
  out["options"] = JsonObject{
      {"serve",
       JsonObject{{"bind", opts_.bind},
                  {"max_connections", static_cast<uint64_t>(opts_.max_connections)},
                  {"max_frame_bytes", static_cast<uint64_t>(opts_.max_frame_bytes)},
                  {"result_cache_capacity",
                   static_cast<uint64_t>(opts_.result_cache_capacity)},
                  {"singleflight", opts_.singleflight},
                  {"http_metrics", opts_.http_metrics},
                  {"drain_timeout_s", opts_.drain_timeout_s},
                  {"tracez_capacity",
                   static_cast<uint64_t>(opts_.tracez_capacity)},
                  {"telemetry_cadence_s", opts_.telemetry_cadence_s},
                  {"telemetry_retention_s", opts_.telemetry_retention_s}}},
      {"queue", JsonObject{{"executors", static_cast<uint64_t>(sopt.queue.executors)},
                           {"capacity", static_cast<uint64_t>(sopt.queue.capacity)}}},
      {"cache",
       JsonObject{{"query_cache_capacity",
                   static_cast<uint64_t>(sopt.cache.query_cache_capacity)}}}};
  out["requests"] = JsonObject{{"submitted", snap.submitted},
                               {"completed", snap.completed},
                               {"rejected_queue_full", snap.rejected_queue_full},
                               {"deadline_expired", snap.deadline_expired},
                               {"invalid", snap.invalid_request}};
  out["cache"] = JsonObject{{"hits", snap.result_cache_hits},
                            {"misses", snap.result_cache_misses},
                            {"evictions", snap.result_cache_evictions},
                            {"entries", snap.result_cache_entries},
                            {"capacity",
                             static_cast<uint64_t>(cache_.capacity())}};
  out["coalesce"] = JsonObject{{"joined", snap.coalesced},
                               {"inflight",
                                static_cast<uint64_t>(flights_.inflight())}};
  JsonObject tiers;
  for (int t = 0; t < perf::MetricsSnapshot::kQosTiers; ++t) {
    uint64_t total = 0;
    for (int s = 0; s < perf::MetricsSnapshot::kScenarios; ++s)
      total += snap.tier_requests[static_cast<size_t>(t)][static_cast<size_t>(s)];
    tiers[perf::qos_tier_label(t)] =
        JsonObject{{"requests", total},
                   {"p50_s", snap.tier_latency[static_cast<size_t>(t)].p50_s},
                   {"p99_s", snap.tier_latency[static_cast<size_t>(t)].p99_s}};
  }
  out["tiers"] = std::move(tiers);
  out["log"] = JsonObject{{"records", snap.log_records},
                          {"dropped_overflow", snap.log_dropped_overflow},
                          {"dropped_threads", snap.log_dropped_threads},
                          {"suppressed", snap.log_suppressed}};
  if (const obs::TimeSeriesStore* ts = service_.timeseries())
    out["telemetry"] =
        JsonObject{{"samples", static_cast<uint64_t>(ts->size())},
                   {"cadence_s", opts_.telemetry_cadence_s},
                   {"retention_s", opts_.telemetry_retention_s}};
  if (const obs::SloEngine* slo = service_.slo())
    if (auto s = Json::parse(slo->json())) out["slo"] = *s;
  return Json(std::move(out)).dump();
}

std::string Server::render_tracez() const {
  JsonObject out;
  // Newest-first: the request you just made is the first entry you read.
  JsonArray entries;
  const std::vector<obs::TraceEvent> events =
      trace_sink_ ? trace_sink_->snapshot_events()
                  : std::vector<obs::TraceEvent>{};
  for (auto it = tracez_.rbegin(); it != tracez_.rend(); ++it) {
    JsonObject e;
    e["trace_id"] = u64_string(it->trace_id);
    e["type"] = static_cast<double>(static_cast<uint8_t>(it->type));
    e["tier"] = perf::qos_tier_label(it->tier);
    e["status"] = static_cast<double>(it->status);
    e["queue_us"] = static_cast<uint64_t>(it->queue_us);
    e["exec_us"] = static_cast<uint64_t>(it->exec_us);
    e["source"] = it->source == 0   ? "executed"
                  : it->source == 1 ? "cache"
                                    : "coalesced";
    JsonArray spans;
    for (const obs::TraceEvent& ev : events) {
      if (ev.trace_id != it->trace_id || ev.name == nullptr) continue;
      spans.push_back(JsonObject{{"name", ev.name},
                                 {"ts_ns", u64_string(ev.ts_ns)},
                                 {"dur_ns", u64_string(ev.dur_ns)}});
    }
    e["spans"] = std::move(spans);
    entries.push_back(std::move(e));
  }
  out["entries"] = std::move(entries);
  out["capacity"] = static_cast<uint64_t>(opts_.tracez_capacity);
  // SLO breaches ride along: the watchdog's records are the "slow" half of
  // the story /tracez tells (sampled half above).
  if (const obs::Watchdog* wd = service_.watchdog()) {
    if (auto slow = Json::parse(wd->json())) out["slow"] = *slow;
    out["slow_detected"] = wd->detected();
  }
  return Json(std::move(out)).dump();
}

std::string Server::render_connz() const {
  const double now_s = steady_s();
  JsonArray conns;
  for (const auto& [id, c] : conns_) {
    conns.push_back(JsonObject{
        {"id", u64_string(id)},
        {"peer", c.peer},
        {"protocol", c.http ? "http" : "swv1"},
        {"tier", perf::qos_tier_label(c.last_tier)},
        {"frames_rx", c.frames_rx},
        {"frames_tx", c.frames_tx},
        {"bytes_rx", c.bytes_rx},
        {"bytes_tx", c.bytes_tx},
        {"inflight", static_cast<uint64_t>(c.inflight)},
        {"age_s", now_s - c.opened_s}});
  }
  JsonObject out;
  out["connections"] = std::move(conns);
  out["active"] = static_cast<uint64_t>(conns_.size());
  out["draining"] = draining_;
  return Json(std::move(out)).dump();
}

// ------------------------------------------------------------------ plumbing

void Server::send_frame(Connection& c, const FrameHeader& h,
                        std::string_view payload, std::string_view trailer) {
  FrameHeader out = h;
  out.payload_len = static_cast<uint32_t>(payload.size() + trailer.size());
  encode_header(c.out, out);
  c.out.append(payload);
  c.out.append(trailer);
  const size_t wire = kHeaderSize + payload.size() + trailer.size();
  service_.registry()->on_frame_tx(wire);
  c.frames_tx += 1;
  c.bytes_tx += wire;
  flush(c);
}

void Server::record_tracez(const TracezEntry& entry) {
  tracez_.push_back(entry);
  while (tracez_.size() > opts_.tracez_capacity) tracez_.pop_front();
}

void Server::send_error(Connection& c, const FrameHeader& req,
                        ServiceStatus status, std::string_view message) {
  const bool json = (req.flags & kFlagJson) != 0;
  FrameHeader r;
  r.type = MsgType::ErrorResponse;
  r.flags = req.flags & kFlagJson;
  r.tier = req.tier;
  r.status = service::wire_status(status);
  r.request_id = req.request_id;
  send_frame(c, r, error_payload(status, message, json));
}

void Server::flush(Connection& c) {
  while (c.out_off < c.out.size()) {
    const ssize_t n = ::send(c.fd, c.out.data() + c.out_off,
                             c.out.size() - c.out_off, MSG_NOSIGNAL);
    if (n > 0) {
      c.out_off += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      epoll_event ev{};
      ev.events = EPOLLIN | EPOLLOUT;
      ev.data.u64 = c.id;
      ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, c.fd, &ev);
      return;
    }
    if (n < 0 && errno == EINTR) continue;
    close_connection(c.id);  // peer gone
    return;
  }
  // Fully flushed: compact and drop EPOLLOUT interest.
  c.out.clear();
  c.out_off = 0;
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.u64 = c.id;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, c.fd, &ev);
  if (c.close_after_write) close_connection(c.id);
}

void Server::close_connection(uint64_t conn_id) {
  const auto it = conns_.find(conn_id);
  if (it == conns_.end()) return;
  obs::log_info("server.close", {{"conn", conn_id},
                                 {"frames_rx", it->second.frames_rx},
                                 {"bytes_rx", it->second.bytes_rx},
                                 {"bytes_tx", it->second.bytes_tx}});
  flights_.drop_connection(conn_id);
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, it->second.fd, nullptr);
  close_fd(it->second.fd);
  conns_.erase(it);
  active_connections_.store(conns_.size(), std::memory_order_relaxed);
}

Server::Connection* Server::find_connection(uint64_t conn_id) {
  const auto it = conns_.find(conn_id);
  return it == conns_.end() ? nullptr : &it->second;
}

}  // namespace swve::net
