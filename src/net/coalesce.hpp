// Request deduplication above AlignService: an LRU of serialized response
// payloads (hits for repeated requests after the first completes) and a
// singleflight table (joins for identical requests while the first is
// still in flight). Both index on net::cache_key — the 64-bit hash of the
// canonical net::cache_identity bytes (scenario, residue codes, effective
// config, top-k, db epoch) — and verify the full identity on every lookup,
// so "identical" means identical response bytes, never merely similar
// requests and never a hash collision (FNV collisions are constructible;
// without the check a crafted request could be served another client's
// cached result or coalesced onto their execution).
//
// The classes are event-loop-local by design (the epoll server is single
// threaded), so neither locks. ResultCache mirrors the mutex-free core of
// align::QueryStateCache's LRU (std::list + unordered_map of iterators).
#pragma once

#include <cstdint>
#include <list>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "net/protocol.hpp"

namespace swve::net {

/// One serialized response, ready to send to any waiter: the payload bytes
/// plus everything needed to stamp a per-waiter frame header.
struct CachedResponse {
  MsgType type = MsgType::ErrorResponse;
  uint8_t status = 0;  ///< ServiceStatus wire byte
  uint8_t tier = 1;    ///< tier of the execution that produced it
  std::string payload;
};

/// LRU of serialized responses keyed by cache_key. Only Ok responses are
/// inserted (callers enforce it) — errors are often transient (queue full,
/// deadline) and must not be replayed.
class ResultCache {
 public:
  explicit ResultCache(size_t capacity) : capacity_(capacity) {}

  /// Look up and refresh LRU position; null when absent (or capacity 0).
  /// `identity` must match the stored entry's identity bytes exactly — a
  /// key collision between distinct requests reads as a miss.
  const CachedResponse* get(uint64_t key, std::string_view identity);

  /// Insert (or refresh) an entry, evicting the least-recent at capacity.
  /// A colliding entry under the same key is replaced outright.
  /// Returns the number of evictions performed (0 or 1).
  size_t put(uint64_t key, std::string identity, CachedResponse response);

  size_t entries() const noexcept { return map_.size(); }
  size_t capacity() const noexcept { return capacity_; }

 private:
  struct Entry {
    uint64_t key;
    std::string identity;  ///< canonical request bytes (net::cache_identity)
    CachedResponse response;
  };
  size_t capacity_;
  std::list<Entry> lru_;  ///< front = most recent
  std::unordered_map<uint64_t, std::list<Entry>::iterator> map_;
};

/// One client waiting on an in-flight execution: enough to address its
/// response frame. `initiator` is the request that started the execution;
/// joiners get kFlagCoalesced.
struct FlightWaiter {
  uint64_t conn_id = 0;
  uint64_t request_id = 0;
  bool json = false;
  bool initiator = false;
  bool traced = false;     ///< request carried a WireTraceContext
  bool sampled = false;    ///< its sampled bit (publication to /tracez)
  uint64_t trace_id = 0;   ///< echoed in this waiter's timing trailer
};

/// In-flight executions by cache key. The first submitter for a key starts
/// a flight and reaches the service; identical requests arriving before it
/// completes join the waiter list instead of executing again.
class Singleflight {
 public:
  enum class Join {
    Started,   ///< this call opened the flight; caller must submit
    Joined,    ///< identical request already in flight; waiter enqueued
    Mismatch,  ///< key collision with a DIFFERENT in-flight request —
               ///< caller must execute independently, outside the flight
  };

  /// Join or start the flight for `key`. `identity` must match the
  /// in-flight request's identity bytes for a Joined result.
  Join join(uint64_t key, std::string_view identity, FlightWaiter waiter);

  /// Complete a flight, returning its waiters (empty if unknown — e.g. the
  /// flight was taken over by drain).
  std::vector<FlightWaiter> complete(uint64_t key);

  /// Drop one connection's waiters from every flight (connection closed
  /// before its response). Flights stay live — the execution is shared.
  void drop_connection(uint64_t conn_id);

  size_t inflight() const noexcept { return flights_.size(); }

 private:
  struct Flight {
    std::string identity;  ///< canonical request bytes (net::cache_identity)
    std::vector<FlightWaiter> waiters;
  };
  std::unordered_map<uint64_t, Flight> flights_;
};

}  // namespace swve::net
