#include "net/client.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cmath>
#include <cstring>

namespace swve::net {
namespace {

using Code = core::ConfigError::Code;
using service::ServiceStatus;

core::ConfigError sys_error(const char* what) {
  return core::ConfigError{
      Code::Internal,
      std::string("net: ") + what + " failed: " + std::strerror(errno)};
}

/// A connected blocking IPv4 socket with send/recv timeouts, or -1.
int dial(const std::string& host, uint16_t port, double timeout_s,
         core::ConfigError* err) {
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    *err = sys_error("socket");
    return -1;
  }
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(timeout_s);
  tv.tv_usec = static_cast<suseconds_t>(
      (timeout_s - std::floor(timeout_s)) * 1e6);
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof tv);
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    *err = core::ConfigError{Code::Unsupported,
                             "net: not an IPv4 address: " + host};
    return -1;
  }
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) !=
      0) {
    *err = sys_error("connect");
    ::close(fd);
    return -1;
  }
  return fd;
}

/// Per-scenario wire glue, mirror of the server-side traits.
template <typename Request>
struct WireTraits;

template <>
struct WireTraits<service::AlignRequest> {
  using Response = service::AlignResponse;
  static constexpr MsgType kResponse = MsgType::AlignResponse;
  static void encode(std::string& out, const service::AlignRequest& rq) {
    encode_align_request(out, rq);
  }
  static std::optional<Response> decode(std::string_view payload) {
    return decode_align_response(payload);
  }
};

template <>
struct WireTraits<service::SearchRequest> {
  using Response = service::SearchResponse;
  static constexpr MsgType kResponse = MsgType::SearchResponse;
  static void encode(std::string& out, const service::SearchRequest& rq) {
    encode_search_request(out, rq);
  }
  static std::optional<Response> decode(std::string_view payload) {
    return decode_search_response(payload);
  }
};

template <>
struct WireTraits<service::BatchRequest> {
  using Response = service::BatchResponse;
  static constexpr MsgType kResponse = MsgType::BatchResponse;
  static void encode(std::string& out, const service::BatchRequest& rq) {
    encode_batch_request(out, rq);
  }
  static std::optional<Response> decode(std::string_view payload) {
    return decode_batch_response(payload);
  }
};

}  // namespace

core::ErrorOr<std::unique_ptr<Client>> Client::connect(const std::string& host,
                                                       uint16_t port,
                                                       double timeout_s) {
  core::ConfigError err;
  const int fd = dial(host, port, timeout_s, &err);
  if (fd < 0) return err;
  return std::unique_ptr<Client>(new Client(fd));
}

Client::~Client() {
  if (fd_ >= 0) ::close(fd_);
}

bool Client::send_all(const char* data, size_t len) {
  size_t off = 0;
  while (off < len) {
    const ssize_t n = ::send(fd_, data + off, len - off, MSG_NOSIGNAL);
    if (n > 0) {
      off += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return false;  // timeout or hard error
  }
  return true;
}

bool Client::read_exact(char* data, size_t len) {
  size_t off = 0;
  while (off < len) {
    const ssize_t n = ::read(fd_, data + off, len - off);
    if (n > 0) {
      off += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return false;  // EOF, timeout, or hard error
  }
  return true;
}

bool Client::send_raw(std::string_view bytes) {
  return send_all(bytes.data(), bytes.size());
}

std::optional<std::pair<FrameHeader, std::string>> Client::read_frame() {
  uint8_t head[kHeaderSize];
  if (!read_exact(reinterpret_cast<char*>(head), kHeaderSize))
    return std::nullopt;
  const auto h = decode_header(head);
  if (!h) return std::nullopt;
  // The length prefix is untrusted until the bytes actually arrive: a
  // malicious or corrupt server must not be able to force a 4 GiB
  // allocation with a 20-byte header.
  if (h->payload_len > kMaxResponseBytes) return std::nullopt;
  std::string payload(h->payload_len, '\0');
  if (h->payload_len > 0 && !read_exact(payload.data(), payload.size()))
    return std::nullopt;
  return std::make_pair(*h, std::move(payload));
}

std::optional<std::pair<FrameHeader, std::string>> Client::roundtrip_raw(
    std::string_view bytes) {
  if (!send_raw(bytes)) return std::nullopt;
  return read_frame();
}

template <typename Request>
auto Client::call(MsgType type, const Request& rq, uint8_t extra_flags) {
  using Traits = WireTraits<Request>;
  RpcResult<typename Traits::Response> out;

  FrameHeader h;
  h.type = type;
  h.flags = extra_flags & static_cast<uint8_t>(~kFlagJson);  // binary only
  h.tier = static_cast<uint8_t>(rq.options.tier);
  h.request_id = next_id_++;
  std::string payload;
  if (trace_) {
    // The trace context travels as a payload prefix, stripped server-side
    // before the request decoder sees the bytes.
    h.flags |= kFlagTraced;
    WireTraceContext ctx;
    ctx.trace_id = trace_id_ != 0 ? trace_id_ : h.request_id;
    ctx.sampled = trace_sampled_;
    encode_trace_context(payload, ctx);
  }
  Traits::encode(payload, rq);
  const std::string frame = encode_frame(h, payload);
  if (!send_all(frame.data(), frame.size())) {
    out.error = "net: send failed (connection lost or timeout)";
    return out;
  }

  const auto reply = read_frame();
  if (!reply) {
    out.error = "net: no response (connection lost or timeout)";
    return out;
  }
  const FrameHeader& rh = reply->first;
  out.flags = rh.flags;
  std::string_view reply_payload = reply->second;
  if ((rh.flags & kFlagTraced) != 0) {
    // Strip the ServerTiming trailer before the decoder: the remaining
    // payload bytes are bit-identical to an untraced response's.
    out.timing = decode_server_timing(reply_payload);
    if (!out.timing) {
      out.status = ServiceStatus::BadFrame;
      out.error = "net: traced response without a valid timing trailer";
      return out;
    }
  }
  if (rh.request_id != h.request_id) {
    out.error = "net: response id mismatch";
    return out;
  }
  out.status = service::status_from_wire(rh.status);
  if (rh.type == MsgType::ErrorResponse || !out.ok()) {
    out.error = reply_payload;  // binary error payload = message bytes
    return out;
  }
  if (rh.type != Traits::kResponse) {
    out.status = ServiceStatus::Internal;
    out.error = "net: unexpected response type";
    return out;
  }
  auto decoded = Traits::decode(reply_payload);
  if (!decoded) {
    out.status = ServiceStatus::BadFrame;
    out.error = "net: undecodable response payload";
    return out;
  }
  out.response = std::move(*decoded);
  return out;
}

RpcResult<service::AlignResponse> Client::align(
    const service::AlignRequest& rq, uint8_t extra_flags) {
  return call(MsgType::AlignRequest, rq, extra_flags);
}

RpcResult<service::SearchResponse> Client::search(
    const service::SearchRequest& rq, uint8_t extra_flags) {
  return call(MsgType::SearchRequest, rq, extra_flags);
}

RpcResult<service::BatchResponse> Client::batch(
    const service::BatchRequest& rq, uint8_t extra_flags) {
  return call(MsgType::BatchRequest, rq, extra_flags);
}

RpcResult<std::monostate> Client::ping() {
  RpcResult<std::monostate> out;
  FrameHeader h;
  h.type = MsgType::Ping;
  h.request_id = next_id_++;
  const std::string frame = encode_frame(h, "");
  if (!send_all(frame.data(), frame.size())) {
    out.error = "net: send failed";
    return out;
  }
  const auto reply = read_frame();
  if (!reply || reply->first.type != MsgType::Pong) {
    out.error = "net: no pong";
    return out;
  }
  out.status = ServiceStatus::Ok;
  out.response = std::monostate{};
  return out;
}

RpcResult<std::string> Client::metrics(bool json) {
  RpcResult<std::string> out;
  FrameHeader h;
  h.type = MsgType::MetricsRequest;
  h.flags = json ? kFlagJson : 0;
  h.request_id = next_id_++;
  const std::string frame = encode_frame(h, "");
  if (!send_all(frame.data(), frame.size())) {
    out.error = "net: send failed";
    return out;
  }
  const auto reply = read_frame();
  if (!reply || reply->first.type != MsgType::MetricsResponse) {
    out.error = "net: no metrics response";
    return out;
  }
  out.status = ServiceStatus::Ok;
  out.response = std::move(reply->second);
  return out;
}

core::ErrorOr<std::string> http_get(const std::string& host, uint16_t port,
                                    const std::string& path, double timeout_s,
                                    std::string* head,
                                    const std::string& method) {
  core::ConfigError err;
  const int fd = dial(host, port, timeout_s, &err);
  if (fd < 0) return err;

  const std::string request =
      method + " " + path + " HTTP/1.1\r\nHost: " + host + "\r\n\r\n";
  size_t off = 0;
  while (off < request.size()) {
    const ssize_t n = ::send(fd, request.data() + off, request.size() - off,
                             MSG_NOSIGNAL);
    if (n > 0) {
      off += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    ::close(fd);
    return sys_error("send");
  }

  // The server closes after responding; read to EOF.
  std::string reply;
  char buf[16 * 1024];
  while (true) {
    const ssize_t n = ::read(fd, buf, sizeof buf);
    if (n > 0) {
      reply.append(buf, static_cast<size_t>(n));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    break;
  }
  ::close(fd);

  const size_t body = reply.find("\r\n\r\n");
  if (body == std::string::npos)
    return core::ConfigError{Code::Internal, "net: malformed HTTP response"};
  if (head != nullptr) head->assign(reply, 0, body);
  return reply.substr(body + 4);
}

}  // namespace swve::net
