// Classic anti-diagonal ("wavefront", Wozniak 1997) baseline, as in
// parasail's sw_diag family. Same traversal as the paper's kernel but
// WITHOUT its optimizations, which makes it the natural ablation reference:
//   * substitution scores are fetched by a scalar per-cell loop into a
//     per-diagonal staging buffer (no reorganized-matrix gather, Fig 4);
//   * the maximum is reduced horizontally on every diagonal (no deferred
//     per-row maximum, §III-D);
//   * 16-bit only (no 8/16 adaptive width).
// Reports score only (end cell untracked, like score-only wavefronts).
#pragma once

#include <memory>
#include <vector>

#include "baseline/baseline_common.hpp"
#include "matrix/score_matrix.hpp"

namespace swve::baseline {

class DiagBasicAligner {
 public:
  DiagBasicAligner(seq::SeqView q, const core::AlignConfig& cfg);

  /// 16-bit wavefront kernel. Requires AVX2 (throws otherwise).
  BaselineResult align16(seq::SeqView r, core::Workspace& ws) const;

  /// 16-bit, exact 32-bit scalar fallback on saturation / without AVX2.
  core::Alignment align(seq::SeqView r, core::Workspace& ws) const;

 private:
  std::vector<uint8_t> query_;
  // Constructed before cfg_ (sanitize() fills it during cfg_ init).
  std::unique_ptr<matrix::ScoreMatrix> owned_matrix_;
  core::AlignConfig cfg_;
};

#if defined(SWVE_HAVE_AVX2_BUILD)
BaselineResult diag_basic16_avx2(const uint8_t* q, int m, seq::SeqView r,
                                 const core::AlignConfig& cfg, core::Workspace& ws);
#endif

}  // namespace swve::baseline
