// Shared result type for the Parasail-style baseline kernels (Fig 14).
#pragma once

#include <cstdint>

#include "core/params.hpp"
#include "core/result.hpp"
#include "core/workspace.hpp"
#include "seq/sequence.hpp"

namespace swve::baseline {

/// Raw result of one baseline kernel run. The baselines are score-oriented
/// (like parasail's sw_* functions): they report the score and the end
/// column; end_query is not tracked (-1).
struct BaselineResult {
  int score = 0;
  int end_ref = -1;
  bool saturated = false;
  /// Striped only: lazy-F correction-loop inner iterations. This is the
  /// data-dependent ("speculation + correction") work the paper contrasts
  /// with the deterministic diagonal kernel.
  uint64_t lazy_f_iterations = 0;
  core::KernelStats stats;
};

/// Large-magnitude negative sentinel for signed 16-bit baseline arithmetic;
/// far enough from INT16_MIN that saturating decay cannot wrap.
inline constexpr int16_t kNeg16 = -30000;

}  // namespace swve::baseline
