// Internal helpers shared by the baseline aligner wrappers.
#pragma once

#include <memory>

#include "core/params.hpp"
#include "matrix/score_matrix.hpp"

namespace swve::baseline::detail {

/// Baselines are score-oriented and matrix-driven (like parasail): disable
/// traceback, model Linear as affine with open == extend, and rewrite a
/// Fixed score scheme into an equivalent match/mismatch matrix (the padded
/// 24-dim table covers every alphabet's code range).
inline core::AlignConfig sanitize(const core::AlignConfig& cfg,
                                  std::unique_ptr<matrix::ScoreMatrix>& owned) {
  core::AlignConfig c = cfg;
  c.traceback = false;
  c.validate();
  if (c.gap_model == core::GapModel::Linear) {
    c.gap_model = core::GapModel::Affine;
    c.gap_open = c.gap_extend;
  }
  if (c.scheme == core::ScoreScheme::Fixed) {
    owned = std::make_unique<matrix::ScoreMatrix>(matrix::ScoreMatrix::match_mismatch(
        c.match, c.mismatch, seq::Alphabet::protein()));
    c.scheme = core::ScoreScheme::Matrix;
    c.matrix = owned.get();
  }
  return c;
}

}  // namespace swve::baseline::detail
