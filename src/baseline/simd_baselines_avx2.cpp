// AVX2 implementations of the Parasail-style baselines (compiled with
// -mavx2). See striped.hpp / scan.hpp / diag_basic.hpp for the algorithms.
#include <immintrin.h>

#include <algorithm>
#include <cstring>

#include "baseline/diag_basic.hpp"
#include "baseline/scan.hpp"
#include "baseline/striped.hpp"

namespace swve::baseline {

namespace {

// ---- cross-lane element shifts (toward higher indices) ------------------

inline __m256i lane_carry(__m256i v) {  // [0, v_low]: feeds alignr shifts
  return _mm256_permute2x128_si256(v, v, 0x08);
}
inline __m256i shl_1x8(__m256i v) {  // one byte
  return _mm256_alignr_epi8(v, lane_carry(v), 15);
}
inline __m256i shl_1x16(__m256i v) {  // one epi16 element
  return _mm256_alignr_epi8(v, lane_carry(v), 14);
}
inline __m256i shl_2x16(__m256i v) {
  return _mm256_alignr_epi8(v, lane_carry(v), 12);
}
inline __m256i shl_4x16(__m256i v) {
  return _mm256_alignr_epi8(v, lane_carry(v), 8);
}
inline __m256i shl_8x16(__m256i v) { return lane_carry(v); }

inline bool any_gt_epi16(__m256i a, __m256i b) {
  const __m256i m = _mm256_cmpgt_epi16(a, b);
  return !_mm256_testz_si256(m, m);
}
inline bool any_gt_epu8(__m256i a, __m256i b) {
  const __m256i f = _mm256_set1_epi8(static_cast<char>(0x80));
  const __m256i m =
      _mm256_cmpgt_epi8(_mm256_xor_si256(a, f), _mm256_xor_si256(b, f));
  return !_mm256_testz_si256(m, m);
}

inline int hmax_epi16(__m256i v) {
  __m128i x = _mm_max_epi16(_mm256_castsi256_si128(v), _mm256_extracti128_si256(v, 1));
  x = _mm_max_epi16(x, _mm_srli_si128(x, 8));
  x = _mm_max_epi16(x, _mm_srli_si128(x, 4));
  x = _mm_max_epi16(x, _mm_srli_si128(x, 2));
  return static_cast<int16_t>(_mm_cvtsi128_si32(x));
}
inline int hmax_epu8(__m256i v) {
  __m128i x = _mm_max_epu8(_mm256_castsi256_si128(v), _mm256_extracti128_si256(v, 1));
  x = _mm_max_epu8(x, _mm_srli_si128(x, 8));
  x = _mm_max_epu8(x, _mm_srli_si128(x, 4));
  x = _mm_max_epu8(x, _mm_srli_si128(x, 2));
  x = _mm_max_epu8(x, _mm_srli_si128(x, 1));
  return _mm_cvtsi128_si32(x) & 0xFF;
}

}  // namespace

// ======================= striped, 16-bit signed ==========================

BaselineResult striped16_avx2(const matrix::StripedProfile<int16_t>& prof,
                              seq::SeqView r, int gap_open, int gap_extend,
                              core::Workspace& ws) {
  constexpr int L = 16;
  const int seg_len = prof.seg_len();
  const int n = static_cast<int>(r.length);
  BaselineResult out;
  if (prof.query_length() == 0 || n == 0) return out;

  const size_t bytes = static_cast<size_t>(seg_len) * sizeof(__m256i);
  auto* pvHLoad = static_cast<__m256i*>(ws.baseline[0].ensure_zeroed(bytes));
  auto* pvHStore = static_cast<__m256i*>(ws.baseline[1].ensure_zeroed(bytes));
  auto* pvE = static_cast<__m256i*>(ws.baseline[2].ensure_zeroed(bytes));

  const __m256i vZero = _mm256_setzero_si256();
  const __m256i vGapO = _mm256_set1_epi16(static_cast<short>(gap_open));
  const __m256i vGapE = _mm256_set1_epi16(static_cast<short>(gap_extend));
  __m256i vMax = vZero;
  __m256i vMaxSeen = vZero;
  int best_seen = 0;
  int end_ref = -1;
  uint64_t lazy_iters = 0;

  for (int j = 0; j < n; ++j) {
    const auto* vP = reinterpret_cast<const __m256i*>(prof.row(r[static_cast<size_t>(j)]));
    // H(i-1, j-1) for stripe 0 comes from the last stripe of the previous
    // column, shifted by one query position.
    __m256i vH = shl_1x16(pvHLoad[seg_len - 1]);
    __m256i vF = _mm256_set1_epi16(kNeg16);

    for (int s = 0; s < seg_len; ++s) {
      vH = _mm256_adds_epi16(vH, _mm256_loadu_si256(vP + s));
      const __m256i vE = pvE[s];
      vH = _mm256_max_epi16(vH, vE);
      vH = _mm256_max_epi16(vH, vF);
      vH = _mm256_max_epi16(vH, vZero);
      vMax = _mm256_max_epi16(vMax, vH);
      pvHStore[s] = vH;
      const __m256i vHo = _mm256_subs_epi16(vH, vGapO);
      pvE[s] = _mm256_max_epi16(_mm256_subs_epi16(vE, vGapE), vHo);
      vF = _mm256_max_epi16(_mm256_subs_epi16(vF, vGapE), vHo);
      vH = pvHLoad[s];
    }

    // Lazy-F: the speculative main pass ignored F chains that cross lane
    // boundaries. Each correction pass shifts F one lane and replays the
    // column, folding in both gap-extension (F-e) and gap-open (H-o)
    // candidates — the open fold is required for chains that re-open from a
    // high H in an earlier lane. A pass that raises nothing ends the loop;
    // a chain crosses at most L-1 lane boundaries, so L passes always
    // suffice. The pass count is data dependent (the paper's determinism
    // point about striped).
    bool settled = false;
    __m256i vFLast = vF;  // carry at the end of the previous pass
    for (int k = 0; k < L && !settled; ++k) {
      vF = shl_1x16(vF);
      vF = _mm256_insert_epi16(vF, kNeg16, 0);
      bool raised = false;
      for (int s = 0; s < seg_len; ++s) {
        ++lazy_iters;
        __m256i vH2 = pvHStore[s];
        if (any_gt_epi16(vF, vH2)) {
          vH2 = _mm256_max_epi16(vH2, vF);
          pvHStore[s] = vH2;
          vMax = _mm256_max_epi16(vMax, vH2);
          raised = true;
        }
        const __m256i vHo = _mm256_subs_epi16(vH2, vGapO);
        pvE[s] = _mm256_max_epi16(pvE[s], vHo);  // keep E exact after repair
        vF = _mm256_max_epi16(_mm256_subs_epi16(vF, vGapE), vHo);
        // Fast exit: nothing raised this pass AND the carry is dominated by
        // the stored-H open chain. Domination makes the rest of this pass a
        // pure function of stored H (a stationary carry), so no later pass
        // can deliver anything new either. A bare "nothing raised" test is
        // NOT sufficient: a live through-carry (vF > H-o somewhere) can
        // cross several quiet lanes before it finally raises a cell.
        if (!raised && !any_gt_epi16(vF, vHo)) {
          settled = true;
          break;
        }
      }
      // Fixpoint: nothing raised and the end-of-pass carry did not grow in
      // any lane, so every future delivery is a subset of past ones. (A dead
      // carry, <= 0 everywhere, is a special case: it can't beat H >= 0.)
      if (!raised &&
          (!any_gt_epi16(vF, vFLast) || !any_gt_epi16(vF, vZero)))
        settled = true;
      vFLast = vF;
    }

    // The horizontal reduce only runs on columns where some lane improved.
    if (any_gt_epi16(vMax, vMaxSeen)) {
      vMaxSeen = vMax;
      int cur = hmax_epi16(vMax);
      if (cur > best_seen) {
        best_seen = cur;
        end_ref = j;
      }
    }
    std::swap(pvHLoad, pvHStore);
  }

  const int best = hmax_epi16(vMax);
  out.score = best;
  out.end_ref = best > 0 ? end_ref : -1;
  out.saturated = best >= INT16_MAX;
  out.lazy_f_iterations = lazy_iters;
  out.stats.cells = static_cast<uint64_t>(prof.query_length()) * static_cast<uint64_t>(n);
  out.stats.vector_cells = static_cast<uint64_t>(seg_len) * L * static_cast<uint64_t>(n);
  return out;
}

// ======================= striped, 8-bit unsigned biased ==================

BaselineResult striped8_avx2(const matrix::StripedProfile<uint8_t>& prof,
                             seq::SeqView r, int gap_open, int gap_extend,
                             int max_subst, core::Workspace& ws) {
  constexpr int L = 32;
  const int seg_len = prof.seg_len();
  const int n = static_cast<int>(r.length);
  BaselineResult out;
  if (prof.query_length() == 0 || n == 0) return out;

  const size_t bytes = static_cast<size_t>(seg_len) * sizeof(__m256i);
  auto* pvHLoad = static_cast<__m256i*>(ws.baseline[0].ensure_zeroed(bytes));
  auto* pvHStore = static_cast<__m256i*>(ws.baseline[1].ensure_zeroed(bytes));
  auto* pvE = static_cast<__m256i*>(ws.baseline[2].ensure_zeroed(bytes));

  const int bias = prof.bias();
  auto clamp_u8 = [](int v) { return v < 0 ? 0 : (v > 255 ? 255 : v); };
  const __m256i vBias = _mm256_set1_epi8(static_cast<char>(bias));
  const __m256i vGapO = _mm256_set1_epi8(static_cast<char>(clamp_u8(gap_open)));
  const __m256i vGapE = _mm256_set1_epi8(static_cast<char>(clamp_u8(gap_extend)));
  __m256i vMax = _mm256_setzero_si256();
  __m256i vMaxSeen = _mm256_setzero_si256();
  int best_seen = 0;
  int end_ref = -1;
  uint64_t lazy_iters = 0;

  for (int j = 0; j < n; ++j) {
    const auto* vP = reinterpret_cast<const __m256i*>(prof.row(r[static_cast<size_t>(j)]));
    __m256i vH = shl_1x8(pvHLoad[seg_len - 1]);
    __m256i vF = _mm256_setzero_si256();  // clamped domain: "-inf" == 0

    for (int s = 0; s < seg_len; ++s) {
      vH = _mm256_subs_epu8(_mm256_adds_epu8(vH, _mm256_loadu_si256(vP + s)), vBias);
      const __m256i vE = pvE[s];
      vH = _mm256_max_epu8(vH, vE);
      vH = _mm256_max_epu8(vH, vF);
      vMax = _mm256_max_epu8(vMax, vH);
      pvHStore[s] = vH;
      const __m256i vHo = _mm256_subs_epu8(vH, vGapO);
      pvE[s] = _mm256_max_epu8(_mm256_subs_epu8(vE, vGapE), vHo);
      vF = _mm256_max_epu8(_mm256_subs_epu8(vF, vGapE), vHo);
      vH = pvHLoad[s];
    }

    // Same corrected lazy-F as the 16-bit kernel (see comment there).
    bool settled = false;
    __m256i vFLast = vF;
    for (int k = 0; k < L && !settled; ++k) {
      vF = shl_1x8(vF);  // shifts in 0 == clamped-domain -inf
      bool raised = false;
      for (int s = 0; s < seg_len; ++s) {
        ++lazy_iters;
        __m256i vH2 = pvHStore[s];
        if (any_gt_epu8(vF, vH2)) {
          vH2 = _mm256_max_epu8(vH2, vF);
          pvHStore[s] = vH2;
          vMax = _mm256_max_epu8(vMax, vH2);
          raised = true;
        }
        const __m256i vHo = _mm256_subs_epu8(vH2, vGapO);
        pvE[s] = _mm256_max_epu8(pvE[s], vHo);
        vF = _mm256_max_epu8(_mm256_subs_epu8(vF, vGapE), vHo);
        // See the 16-bit kernel for why domination is required here.
        if (!raised && !any_gt_epu8(vF, vHo)) {
          settled = true;
          break;
        }
      }
      if (!raised && (!any_gt_epu8(vF, vFLast) ||
                      !any_gt_epu8(vF, _mm256_setzero_si256())))
        settled = true;
      vFLast = vF;
    }

    if (any_gt_epu8(vMax, vMaxSeen)) {
      vMaxSeen = vMax;
      int cur = hmax_epu8(vMax);
      if (cur > best_seen) {
        best_seen = cur;
        end_ref = j;
      }
    }
    std::swap(pvHLoad, pvHStore);
  }

  const int best = hmax_epu8(vMax);
  out.score = best;
  out.end_ref = best > 0 ? end_ref : -1;
  out.saturated = best >= 255 - bias - max_subst;
  out.lazy_f_iterations = lazy_iters;
  out.stats.cells = static_cast<uint64_t>(prof.query_length()) * static_cast<uint64_t>(n);
  out.stats.vector_cells = static_cast<uint64_t>(seg_len) * L * static_cast<uint64_t>(n);
  return out;
}

// ======================= scan, 16-bit signed =============================

BaselineResult scan16_avx2(const matrix::SequentialProfile<int16_t>& prof,
                           seq::SeqView r, int gap_open, int gap_extend,
                           core::Workspace& ws) {
  constexpr int L = 16;
  const int m = prof.query_length();
  const int n = static_cast<int>(r.length);
  BaselineResult out;
  if (m == 0 || n == 0) return out;

  const int mr = (m + L - 1) / L * L;  // rounded row count (profile is padded)
  const size_t elems = static_cast<size_t>(mr) + 2 * core::kPad;
  auto* H = static_cast<int16_t*>(ws.baseline[0].ensure_zeroed(elems * 2)) + core::kPad;
  auto* E = static_cast<int16_t*>(ws.baseline[1].ensure(elems * 2)) + core::kPad;
  auto* T = static_cast<int16_t*>(ws.baseline[2].ensure_zeroed(elems * 2)) + core::kPad;
  for (int i = -core::kPad; i < mr + core::kPad; ++i) E[i] = kNeg16;

  const int o = gap_open, e = gap_extend;
  const int C = o + 1;  // sentinel offset: shifted-in zeros act as -inf
  const __m256i vZero = _mm256_setzero_si256();
  const __m256i vO = _mm256_set1_epi16(static_cast<short>(o));
  const __m256i vGe = _mm256_set1_epi16(static_cast<short>(e));
  alignas(32) int16_t rampA[L], rampT[L];
  for (int t = 0; t < L; ++t) {
    rampA[t] = static_cast<int16_t>((t + 1) * e + C);
    rampT[t] = static_cast<int16_t>(t * e + C);
    // carry decay ramp reuses t*e without C (see below)
  }
  const __m256i vRampA = _mm256_load_si256(reinterpret_cast<const __m256i*>(rampA));
  const __m256i vRampTC = _mm256_load_si256(reinterpret_cast<const __m256i*>(rampT));
  alignas(32) int16_t rampE[L];
  for (int t = 0; t < L; ++t) rampE[t] = static_cast<int16_t>(t * e);
  const __m256i vRampE = _mm256_load_si256(reinterpret_cast<const __m256i*>(rampE));

  __m256i vMax = vZero;
  __m256i vMaxSeen = vZero;
  int best_seen = 0;
  int end_ref = -1;

  for (int j = 0; j < n; ++j) {
    const int16_t* prow = prof.row(r[static_cast<size_t>(j)]);

    // Pass 1: E(i,j) and the F-free candidate T(i).
    for (int i = 0; i < mr; i += L) {
      const __m256i vHs =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(H + i - 1));
      const __m256i vS = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(prow + i));
      const __m256i vDiag = _mm256_adds_epi16(vHs, vS);
      const __m256i vE = _mm256_max_epi16(
          _mm256_subs_epi16(_mm256_loadu_si256(reinterpret_cast<const __m256i*>(H + i)), vO),
          _mm256_subs_epi16(_mm256_loadu_si256(reinterpret_cast<const __m256i*>(E + i)), vGe));
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(E + i), vE);
      __m256i vT = _mm256_max_epi16(_mm256_max_epi16(vDiag, vE), vZero);
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(T + i), vT);
    }

    // Pass 2: F by decayed max-prefix-scan over U = T - open, then H.
    int carry = kNeg16;  // F at the block base
    for (int i = 0; i < mr; i += L) {
      const __m256i vT = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(T + i));
      const __m256i vV = _mm256_sub_epi16(vT, vO);
      __m256i vP = _mm256_adds_epi16(vV, vRampA);  // A' = V + (t+1)e + C >= 1
      vP = shl_1x16(vP);                           // exclusive; injects 0 == -inf
      vP = _mm256_max_epi16(vP, shl_1x16(vP));
      vP = _mm256_max_epi16(vP, shl_2x16(vP));
      vP = _mm256_max_epi16(vP, shl_4x16(vP));
      vP = _mm256_max_epi16(vP, shl_8x16(vP));
      const __m256i vM = _mm256_sub_epi16(vP, vRampTC);  // in-block F
      const __m256i vFc =
          _mm256_subs_epi16(_mm256_set1_epi16(static_cast<short>(carry)), vRampE);
      const __m256i vF = _mm256_max_epi16(vM, vFc);
      const __m256i vH = _mm256_max_epi16(vT, vF);
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(H + i), vH);
      vMax = _mm256_max_epi16(vMax, vH);
      const int f_last = static_cast<int16_t>(_mm256_extract_epi16(vF, 15));
      const int v_last = static_cast<int16_t>(_mm256_extract_epi16(vV, 15));
      carry = std::max(f_last - e, v_last);
      carry = std::max<int>(carry, kNeg16);
    }

    if (any_gt_epi16(vMax, vMaxSeen)) {
      vMaxSeen = vMax;
      int cur = hmax_epi16(vMax);
      if (cur > best_seen) {
        best_seen = cur;
        end_ref = j;
      }
    }
  }

  const int best = hmax_epi16(vMax);
  out.score = best;
  out.end_ref = best > 0 ? end_ref : -1;
  out.saturated = best >= INT16_MAX - (L * e + C) - 64;
  out.stats.cells = static_cast<uint64_t>(m) * static_cast<uint64_t>(n);
  out.stats.vector_cells = static_cast<uint64_t>(mr) * static_cast<uint64_t>(n);
  return out;
}

// ======================= classic wavefront (diag), 16-bit ================

BaselineResult diag_basic16_avx2(const uint8_t* q, int m, seq::SeqView r,
                                 const core::AlignConfig& cfg, core::Workspace& ws) {
  constexpr int L = 16;
  const int n = static_cast<int>(r.length);
  BaselineResult out;
  if (m == 0 || n == 0) return out;

  const bool affine = cfg.gap_model == core::GapModel::Affine;
  const int o = affine ? cfg.gap_open : cfg.gap_extend;
  const int e = cfg.gap_extend;

  const size_t elems = static_cast<size_t>(m) + 2 * core::kPad;
  int16_t* B[6];
  for (int t = 0; t < 3; ++t)
    B[t] = static_cast<int16_t*>(ws.h[t].ensure_zeroed(elems * 2)) + core::kPad;
  B[3] = static_cast<int16_t*>(ws.e[0].ensure_zeroed(elems * 2)) + core::kPad;
  B[4] = static_cast<int16_t*>(ws.e[1].ensure_zeroed(elems * 2)) + core::kPad;
  auto* sbuf = static_cast<int16_t*>(ws.baseline[3].ensure(elems * 2)) + core::kPad;
  int16_t *Hc = B[0], *Hp = B[1], *Hp2 = B[2], *Ec = B[3], *Ep = B[4];
  int16_t* Fp = static_cast<int16_t*>(ws.f[0].ensure_zeroed(elems * 2)) + core::kPad;
  int16_t* Fc = static_cast<int16_t*>(ws.f[1].ensure_zeroed(elems * 2)) + core::kPad;

  const int32_t* mat = cfg.scheme == core::ScoreScheme::Matrix
                           ? cfg.matrix->data32()
                           : nullptr;
  const __m256i vZero = _mm256_setzero_si256();
  const __m256i vO = _mm256_set1_epi16(static_cast<short>(o));
  const __m256i vGe = _mm256_set1_epi16(static_cast<short>(e));

  int best = 0;
  for (int d = 0; d < m + n - 1; ++d) {
    const int lo = d - n + 1 < 0 ? 0 : d - n + 1;
    const int hi = d < m - 1 ? d : m - 1;

    // No gather, no reversed reference: fetch every cell's substitution
    // score with a scalar loop into a staging buffer (the classic approach
    // the paper's Fig 4 reorganization replaces).
    if (mat) {
      for (int i = lo; i <= hi; ++i)
        sbuf[i] = static_cast<int16_t>(
            mat[static_cast<int32_t>(q[i]) * seq::kMatrixStride + r[d - i]]);
    } else {
      for (int i = lo; i <= hi; ++i)
        sbuf[i] = static_cast<int16_t>(q[i] == r[d - i] ? cfg.match : cfg.mismatch);
    }

    __m256i vDiagMax = vZero;
    int i = lo;
    for (; i + L <= hi + 1; i += L) {
      const __m256i vS = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(sbuf + i));
      const __m256i vHd =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(Hp2 + i - 1));
      __m256i vH = _mm256_adds_epi16(vHd, vS);
      __m256i vE, vF;
      if (affine) {
        vE = _mm256_max_epi16(
            _mm256_subs_epi16(
                _mm256_loadu_si256(reinterpret_cast<const __m256i*>(Hp + i - 1)), vO),
            _mm256_subs_epi16(
                _mm256_loadu_si256(reinterpret_cast<const __m256i*>(Ep + i - 1)), vGe));
        vF = _mm256_max_epi16(
            _mm256_subs_epi16(
                _mm256_loadu_si256(reinterpret_cast<const __m256i*>(Hp + i)), vO),
            _mm256_subs_epi16(
                _mm256_loadu_si256(reinterpret_cast<const __m256i*>(Fp + i)), vGe));
      } else {
        vE = _mm256_subs_epi16(
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(Hp + i - 1)), vGe);
        vF = _mm256_subs_epi16(
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(Hp + i)), vGe);
      }
      vH = _mm256_max_epi16(vH, vE);
      vH = _mm256_max_epi16(vH, vF);
      vH = _mm256_max_epi16(vH, vZero);
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(Hc + i), vH);
      if (affine) {
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(Ec + i), vE);
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(Fc + i), vF);
      }
      vDiagMax = _mm256_max_epi16(vDiagMax, vH);
    }
    for (; i <= hi; ++i) {  // scalar tail
      int hd = Hp2[i - 1] + sbuf[i];
      int ev, fv;
      if (affine) {
        ev = std::max(Hp[i - 1] - o, std::max<int>(Ep[i - 1] - e, kNeg16));
        fv = std::max(Hp[i] - o, std::max<int>(Fp[i] - e, kNeg16));
      } else {
        ev = std::max<int>(Hp[i - 1] - e, kNeg16);
        fv = std::max<int>(Hp[i] - e, kNeg16);
      }
      int h = std::max({0, hd, ev, fv});
      Hc[i] = static_cast<int16_t>(h);
      if (affine) {
        Ec[i] = static_cast<int16_t>(std::max<int>(ev, kNeg16));
        Fc[i] = static_cast<int16_t>(std::max<int>(fv, kNeg16));
      }
      if (h > best) best = h;
    }

    // Per-diagonal horizontal reduction — exactly the cost the paper's
    // deferred-maximum scheme (§III-D) eliminates.
    best = std::max(best, hmax_epi16(vDiagMax));

    int16_t* t = Hp2;
    Hp2 = Hp;
    Hp = Hc;
    Hc = t;
    if (affine) {
      std::swap(Ec, Ep);
      std::swap(Fc, Fp);
    }
  }

  out.score = best;
  out.end_ref = -1;
  out.saturated = best >= INT16_MAX;
  out.stats.cells = static_cast<uint64_t>(m) * static_cast<uint64_t>(n);
  out.stats.diagonals = static_cast<uint64_t>(m + n - 1);
  return out;
}

}  // namespace swve::baseline
