#include "baseline/striped.hpp"

#include <stdexcept>

#include "baseline/baseline_util.hpp"
#include "core/scalar_ref.hpp"
#include "simd/cpu.hpp"

namespace swve::baseline {

StripedAligner::StripedAligner(seq::SeqView q, const core::AlignConfig& cfg)
    : query_(q.data, q.data + q.length), cfg_(detail::sanitize(cfg, owned_matrix_)) {
  const matrix::ScoreMatrix& m = *cfg_.matrix;
  const seq::SeqView qv(query_.data(), query_.size());
  prof8_ = std::make_unique<matrix::StripedProfile<uint8_t>>(
      qv, m, 32, uint8_t{0}, m.bias());
  prof16_ = std::make_unique<matrix::StripedProfile<int16_t>>(qv, m, 16, kNeg16, 0);
}

BaselineResult StripedAligner::align8(seq::SeqView r, core::Workspace& ws) const {
#if defined(SWVE_HAVE_AVX2_BUILD)
  if (simd::cpu_features().avx2)
    return striped8_avx2(*prof8_, r, cfg_.gap_open, cfg_.gap_extend,
                         cfg_.max_subst_score(), ws);
#endif
  (void)r;
  (void)ws;
  throw std::runtime_error("StripedAligner::align8 requires AVX2");
}

BaselineResult StripedAligner::align16(seq::SeqView r, core::Workspace& ws) const {
#if defined(SWVE_HAVE_AVX2_BUILD)
  if (simd::cpu_features().avx2)
    return striped16_avx2(*prof16_, r, cfg_.gap_open, cfg_.gap_extend, ws);
#endif
  (void)r;
  (void)ws;
  throw std::runtime_error("StripedAligner::align16 requires AVX2");
}

core::Alignment StripedAligner::align(seq::SeqView r, core::Workspace& ws) const {
  core::Alignment a;
  a.isa_used = simd::Isa::Avx2;
#if defined(SWVE_HAVE_AVX2_BUILD)
  if (simd::cpu_features().avx2) {
    BaselineResult r8 = align8(r, ws);
    if (!r8.saturated) {
      a.score = r8.score;
      a.end_ref = r8.end_ref;
      a.width_used = core::Width::W8;
      a.stats = r8.stats;
      return a;
    }
    a.saturated_8 = true;
    BaselineResult r16 = align16(r, ws);
    if (!r16.saturated) {
      a.score = r16.score;
      a.end_ref = r16.end_ref;
      a.width_used = core::Width::W16;
      a.stats = r16.stats;
      return a;
    }
    a.saturated_16 = true;
  }
#endif
  const seq::SeqView qv(query_.data(), query_.size());
  core::Alignment exact = core::ref_align(qv, r, cfg_);
  exact.saturated_8 = a.saturated_8;
  exact.saturated_16 = a.saturated_16;
  return exact;
}

}  // namespace swve::baseline
