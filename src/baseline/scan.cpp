#include "baseline/scan.hpp"

#include <stdexcept>

#include "baseline/baseline_util.hpp"
#include "core/scalar_ref.hpp"
#include "simd/cpu.hpp"

namespace swve::baseline {

ScanAligner::ScanAligner(seq::SeqView q, const core::AlignConfig& cfg)
    : query_(q.data, q.data + q.length), cfg_(detail::sanitize(cfg, owned_matrix_)) {
  const seq::SeqView qv(query_.data(), query_.size());
  prof16_ = std::make_unique<matrix::SequentialProfile<int16_t>>(
      qv, *cfg_.matrix, 32, kNeg16, 0);
}

BaselineResult ScanAligner::align16(seq::SeqView r, core::Workspace& ws) const {
#if defined(SWVE_HAVE_AVX2_BUILD)
  if (simd::cpu_features().avx2)
    return scan16_avx2(*prof16_, r, cfg_.gap_open, cfg_.gap_extend, ws);
#endif
  (void)r;
  (void)ws;
  throw std::runtime_error("ScanAligner::align16 requires AVX2");
}

core::Alignment ScanAligner::align(seq::SeqView r, core::Workspace& ws) const {
#if defined(SWVE_HAVE_AVX2_BUILD)
  if (simd::cpu_features().avx2) {
    BaselineResult r16 = align16(r, ws);
    if (!r16.saturated) {
      core::Alignment a;
      a.isa_used = simd::Isa::Avx2;
      a.width_used = core::Width::W16;
      a.score = r16.score;
      a.end_ref = r16.end_ref;
      a.stats = r16.stats;
      return a;
    }
  }
#endif
  (void)ws;
  const seq::SeqView qv(query_.data(), query_.size());
  core::Alignment exact = core::ref_align(qv, r, cfg_);
  exact.saturated_16 = true;
  return exact;
}

}  // namespace swve::baseline
