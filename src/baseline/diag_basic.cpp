#include "baseline/diag_basic.hpp"

#include <stdexcept>

#include "baseline/baseline_util.hpp"
#include "core/scalar_ref.hpp"
#include "simd/cpu.hpp"

namespace swve::baseline {

DiagBasicAligner::DiagBasicAligner(seq::SeqView q, const core::AlignConfig& cfg)
    : query_(q.data, q.data + q.length), cfg_(detail::sanitize(cfg, owned_matrix_)) {}

BaselineResult DiagBasicAligner::align16(seq::SeqView r, core::Workspace& ws) const {
#if defined(SWVE_HAVE_AVX2_BUILD)
  if (simd::cpu_features().avx2)
    return diag_basic16_avx2(query_.data(), static_cast<int>(query_.size()), r, cfg_,
                             ws);
#endif
  (void)r;
  (void)ws;
  throw std::runtime_error("DiagBasicAligner::align16 requires AVX2");
}

core::Alignment DiagBasicAligner::align(seq::SeqView r, core::Workspace& ws) const {
#if defined(SWVE_HAVE_AVX2_BUILD)
  if (simd::cpu_features().avx2) {
    BaselineResult r16 = align16(r, ws);
    if (!r16.saturated) {
      core::Alignment a;
      a.isa_used = simd::Isa::Avx2;
      a.width_used = core::Width::W16;
      a.score = r16.score;
      a.stats = r16.stats;
      return a;
    }
  }
#endif
  (void)ws;
  const seq::SeqView qv(query_.data(), query_.size());
  core::Alignment exact = core::ref_align(qv, r, cfg_);
  exact.saturated_16 = true;
  return exact;
}

}  // namespace swve::baseline
