// Striped Smith-Waterman baseline (Farrar 2007), as in parasail's
// sw_striped family: striped query profile, column-wise sweep, speculative
// F computation repaired by the lazy-F correction loop. The correction loop
// makes the running time data dependent — the instability the paper
// contrasts with its deterministic diagonal kernel (§IV-H).
//
// Implemented widths: 8-bit unsigned biased and 16-bit signed saturating
// (AVX2). `align()` runs the 8->16 ladder and falls back to the exact
// 32-bit scalar model if 16-bit saturates. Like parasail, the kernel
// reports score and end_ref only.
#pragma once

#include <memory>

#include "baseline/baseline_common.hpp"
#include "matrix/query_profile.hpp"

namespace swve::baseline {

class StripedAligner {
 public:
  /// Builds the striped profiles once; reuse across many references.
  /// Requires gap_open >= 1 (profile padding correctness; see DESIGN.md).
  StripedAligner(seq::SeqView q, const core::AlignConfig& cfg);

  /// 8-bit unsigned kernel. Requires AVX2 (throws otherwise).
  BaselineResult align8(seq::SeqView r, core::Workspace& ws) const;
  /// 16-bit signed kernel. Requires AVX2 (throws otherwise).
  BaselineResult align16(seq::SeqView r, core::Workspace& ws) const;

  /// Adaptive: 8-bit, then 16-bit on saturation, then exact 32-bit scalar.
  /// On machines without AVX2 this is the exact scalar model throughout.
  core::Alignment align(seq::SeqView r, core::Workspace& ws) const;

  int query_length() const noexcept { return static_cast<int>(query_.size()); }

 private:
  std::vector<uint8_t> query_;  // owned copy (profile outlives caller views)
  // owned_matrix_ must be declared (and thus constructed) before cfg_:
  // sanitize() materializes a Fixed-scheme matrix into it while cfg_ is
  // being initialized.
  std::unique_ptr<matrix::ScoreMatrix> owned_matrix_;
  core::AlignConfig cfg_;
  std::unique_ptr<matrix::StripedProfile<uint8_t>> prof8_;
  std::unique_ptr<matrix::StripedProfile<int16_t>> prof16_;
};

#if defined(SWVE_HAVE_AVX2_BUILD)
// AVX2 kernels (defined in simd_baselines_avx2.cpp).
BaselineResult striped8_avx2(const matrix::StripedProfile<uint8_t>& prof,
                             seq::SeqView r, int gap_open, int gap_extend,
                             int max_subst, core::Workspace& ws);
BaselineResult striped16_avx2(const matrix::StripedProfile<int16_t>& prof,
                              seq::SeqView r, int gap_open, int gap_extend,
                              core::Workspace& ws);
#endif

}  // namespace swve::baseline
