// Prefix-scan Smith-Waterman baseline (Rognes 2011 / Daily 2016 "scan"
// family). Two fully vectorized passes per database column:
//   pass 1: E and the F-free candidate T(i) = max(0, H(i-1,j-1)+s, E(i,j))
//           for every query row (no vertical dependency);
//   pass 2: F via a weighted max prefix scan — with gap_open >= gap_extend,
//           F(i) = max(T(i-1)-open, F(i-1)-ext) is a decayed running max of
//           T-open, computed with a Hillis-Steele in-register scan plus a
//           scalar carry between 16-lane blocks; then H = max(T, F).
// 16-bit signed arithmetic; saturation falls back to the exact 32-bit
// scalar model in align().
#pragma once

#include <memory>

#include "baseline/baseline_common.hpp"
#include "matrix/query_profile.hpp"

namespace swve::baseline {

class ScanAligner {
 public:
  ScanAligner(seq::SeqView q, const core::AlignConfig& cfg);

  /// 16-bit scan kernel. Requires AVX2 (throws otherwise).
  BaselineResult align16(seq::SeqView r, core::Workspace& ws) const;

  /// 16-bit, exact 32-bit scalar fallback on saturation / without AVX2.
  core::Alignment align(seq::SeqView r, core::Workspace& ws) const;

  int query_length() const noexcept { return static_cast<int>(query_.size()); }

 private:
  std::vector<uint8_t> query_;
  // Constructed before cfg_ (sanitize() fills it during cfg_ init).
  std::unique_ptr<matrix::ScoreMatrix> owned_matrix_;
  core::AlignConfig cfg_;
  std::unique_ptr<matrix::SequentialProfile<int16_t>> prof16_;
};

#if defined(SWVE_HAVE_AVX2_BUILD)
BaselineResult scan16_avx2(const matrix::SequentialProfile<int16_t>& prof,
                           seq::SeqView r, int gap_open, int gap_extend,
                           core::Workspace& ws);
#endif

}  // namespace swve::baseline
