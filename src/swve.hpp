// swve — Smith-Waterman with Vector Extensions.
//
// Umbrella header for the public API:
//   swve::service::AlignService async request/future front door over all
//                               three scenarios, with metrics
//   swve::net::Server/Client    protocol v1 TCP serving layer over the
//                               service (singleflight, result cache, QoS)
//   swve::align::Aligner        pairwise alignment (scenario 3 friendly)
//   swve::align::DatabaseSearch single query vs database (scenario 1)
//   swve::align::BatchServer    many queries vs database (scenario 2)
//   swve::seq::*                alphabets, sequences, FASTA, synthetic data
//   swve::matrix::ScoreMatrix   BLOSUM/PAM tables, 32-column padded layout
//   swve::baseline::*           Parasail-style diag/scan/striped kernels
//   swve::tune::*               GA compiler-hyperparameter tuner
//   swve::perf::*               GCUPS, frequency monitor, top-down analysis
//   swve::obs::*                tracing, metric exporters, live sampler
#pragma once

#include "align/aligner.hpp"
#include "align/batch_server.hpp"
#include "align/db_search.hpp"
#include "align/format.hpp"
#include "align/global.hpp"
#include "align/sharded_search.hpp"
#include "align/stats.hpp"
#include "baseline/diag_basic.hpp"
#include "baseline/scan.hpp"
#include "baseline/striped.hpp"
#include "core/batch32.hpp"
#include "core/db_format.hpp"
#include "core/mapped_db.hpp"
#include "core/scalar_ref.hpp"
#include "core/traceback.hpp"
#include "matrix/query_profile.hpp"
#include "matrix/score_matrix.hpp"
#include "net/client.hpp"
#include "net/protocol.hpp"
#include "net/server.hpp"
#include "obs/exporters.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/inflight.hpp"
#include "obs/log.hpp"
#include "obs/pmu.hpp"
#include "obs/sampler.hpp"
#include "obs/trace.hpp"
#include "obs/watchdog.hpp"
#include "parallel/partition.hpp"
#include "parallel/thread_pool.hpp"
#include "parallel/topology.hpp"
#include "perf/freq_monitor.hpp"
#include "perf/gcups.hpp"
#include "perf/metrics.hpp"
#include "perf/table.hpp"
#include "perf/timer.hpp"
#include "perf/topdown.hpp"
#include "seq/database.hpp"
#include "seq/fasta.hpp"
#include "seq/synthetic.hpp"
#include "service/align_service.hpp"
#include "simd/cpu.hpp"
#include "tune/evaluator.hpp"
#include "tune/ga.hpp"
