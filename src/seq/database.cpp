#include "seq/database.hpp"

#include <algorithm>
#include <numeric>

#include "seq/fasta.hpp"

namespace swve::seq {

SequenceDatabase::SequenceDatabase(std::vector<Sequence> seqs) : seqs_(std::move(seqs)) {
  for (const Sequence& s : seqs_) {
    total_residues_ += s.length();
    max_length_ = std::max(max_length_, s.length());
  }
  by_length_.resize(seqs_.size());
  std::iota(by_length_.begin(), by_length_.end(), 0u);
  std::stable_sort(by_length_.begin(), by_length_.end(), [&](uint32_t a, uint32_t b) {
    return seqs_[a].length() < seqs_[b].length();
  });
}

SequenceDatabase::SequenceDatabase(std::vector<Sequence> seqs,
                                   uint64_t total_residues, size_t max_length,
                                   std::vector<uint32_t> by_length)
    : seqs_(std::move(seqs)),
      by_length_(std::move(by_length)),
      total_residues_(total_residues),
      max_length_(max_length) {}

SequenceDatabase SequenceDatabase::from_fasta_file(const std::string& path,
                                                   const Alphabet& alphabet) {
  return SequenceDatabase(read_fasta_file(path, alphabet));
}

SequenceDatabase SequenceDatabase::synthetic(const SyntheticConfig& cfg) {
  return SequenceDatabase(generate_database(cfg));
}

}  // namespace swve::seq
