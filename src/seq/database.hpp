// Sequence database container used by the search drivers.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "seq/sequence.hpp"
#include "seq/synthetic.hpp"

namespace swve::seq {

/// An immutable collection of target sequences plus the aggregate statistics
/// the benchmarks and the partitioner need (total residues for GCUPS math,
/// max length for workspace pre-sizing).
class SequenceDatabase {
 public:
  SequenceDatabase() = default;
  explicit SequenceDatabase(std::vector<Sequence> seqs);

  /// Adopt sequences whose aggregate statistics and length ordering are
  /// already known (the mmap'd-artifact path: totals come from the header
  /// and the order from the length-index section, so construction does no
  /// residue-proportional work). `by_length` must be a permutation of
  /// [0, seqs.size()) in ascending length order; it is trusted, not checked.
  SequenceDatabase(std::vector<Sequence> seqs, uint64_t total_residues,
                   size_t max_length, std::vector<uint32_t> by_length);

  static SequenceDatabase from_fasta_file(const std::string& path,
                                          const Alphabet& alphabet);
  static SequenceDatabase synthetic(const SyntheticConfig& cfg);

  size_t size() const noexcept { return seqs_.size(); }
  bool empty() const noexcept { return seqs_.empty(); }
  const Sequence& operator[](size_t i) const noexcept { return seqs_[i]; }
  const std::vector<Sequence>& sequences() const noexcept { return seqs_; }

  uint64_t total_residues() const noexcept { return total_residues_; }
  size_t max_length() const noexcept { return max_length_; }

  /// Indices of sequences ordered by ascending length (batch32 packing and
  /// deterministic scheduling both want this).
  const std::vector<uint32_t>& by_length() const noexcept { return by_length_; }

 private:
  std::vector<Sequence> seqs_;
  std::vector<uint32_t> by_length_;
  uint64_t total_residues_ = 0;
  size_t max_length_ = 0;
};

}  // namespace swve::seq
