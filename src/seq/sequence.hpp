// Encoded biological sequences.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "seq/alphabet.hpp"

namespace swve::seq {

/// A named, alphabet-encoded sequence. Residues are stored as small integer
/// codes (see Alphabet); kernels consume `codes()` directly.
class Sequence {
 public:
  Sequence() = default;
  /// Encode `residues` with `alphabet`; unknown characters become wildcard.
  Sequence(std::string id, std::string_view residues, const Alphabet& alphabet);
  /// Adopt pre-encoded codes (must be < alphabet.size()).
  Sequence(std::string id, std::vector<uint8_t> codes, const Alphabet& alphabet);

  /// Non-owning view over externally-owned codes (an mmap'd database
  /// artifact): nothing is copied and the storage must outlive the
  /// Sequence. Codes are trusted to be < alphabet.size() — the artifact
  /// loader vouches for them via section checksums.
  static Sequence view_of(std::string id, const uint8_t* codes, size_t n,
                          const Alphabet& alphabet);

  const std::string& id() const noexcept { return id_; }
  size_t length() const noexcept { return ext_ ? ext_len_ : codes_.size(); }
  bool empty() const noexcept { return length() == 0; }
  std::span<const uint8_t> codes() const noexcept { return {data(), length()}; }
  const uint8_t* data() const noexcept {
    return ext_ ? ext_ : codes_.data();
  }
  const Alphabet& alphabet() const noexcept { return *alphabet_; }
  /// False for view_of() sequences (residues live in someone else's map).
  bool owns_storage() const noexcept { return ext_ == nullptr; }

  /// Decode back to a residue string.
  std::string to_string() const;

  /// Encoded subsequence [pos, pos+len), clamped to the sequence end.
  Sequence subsequence(size_t pos, size_t len) const;

  bool operator==(const Sequence& o) const noexcept;

 private:
  std::string id_;
  std::vector<uint8_t> codes_;
  const uint8_t* ext_ = nullptr;  // set only for view_of() sequences
  size_t ext_len_ = 0;
  const Alphabet* alphabet_ = &Alphabet::protein();
};

/// Lightweight non-owning view used by the alignment API.
struct SeqView {
  const uint8_t* data = nullptr;
  size_t length = 0;

  SeqView() = default;
  SeqView(const uint8_t* d, size_t n) : data(d), length(n) {}
  SeqView(const Sequence& s) : data(s.data()), length(s.length()) {}  // NOLINT
  SeqView(std::span<const uint8_t> s) : data(s.data()), length(s.size()) {}  // NOLINT

  bool empty() const noexcept { return length == 0; }
  uint8_t operator[](size_t i) const noexcept { return data[i]; }
};

}  // namespace swve::seq
