// Minimal, tolerant FASTA reader/writer.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "seq/sequence.hpp"

namespace swve::seq {

/// Parse FASTA records from a stream. Header is the text after '>' up to the
/// first whitespace; residue lines may wrap; blank lines are skipped; unknown
/// residues map to the alphabet wildcard. Throws std::runtime_error on
/// residues before any header.
std::vector<Sequence> read_fasta(std::istream& in, const Alphabet& alphabet);

/// Parse a FASTA file from disk. Throws std::runtime_error if unreadable.
std::vector<Sequence> read_fasta_file(const std::string& path, const Alphabet& alphabet);

/// Write records wrapped at `width` residues per line.
void write_fasta(std::ostream& out, const std::vector<Sequence>& seqs, int width = 60);

void write_fasta_file(const std::string& path, const std::vector<Sequence>& seqs,
                      int width = 60);

}  // namespace swve::seq
