// Synthetic UniProtKB/Swiss-Prot substitute.
//
// The paper benchmarks against Swiss-Prot with 10 randomly chosen query
// proteins spanning a range of lengths; it notes that "execution is
// deterministic with respect to query size and only behaviors related to
// size need to be measured." This generator therefore reproduces the two
// statistics Smith-Waterman performance depends on — the sequence-length
// distribution and the residue background frequencies — deterministically
// from a seed (see DESIGN.md §4, substitution 1):
//   * lengths: log-normal, median ~= 320 aa, clamped, like Swiss-Prot;
//   * residues: Robinson & Robinson (1991) amino-acid background
//     frequencies (protein) or uniform ACGT (DNA);
//   * optionally, planted local similarities so alignments have non-trivial
//     optima and 8-bit saturation behaviour matches real searches.
#pragma once

#include <cstdint>
#include <vector>

#include "seq/sequence.hpp"

namespace swve::seq {

struct SyntheticConfig {
  uint64_t seed = 42;
  AlphabetKind kind = AlphabetKind::Protein;
  /// Stop generating when this many residues have been emitted.
  uint64_t target_residues = 2'000'000;
  /// Log-normal length distribution (of Swiss-Prot shape by default).
  double log_mean = 5.77;   // exp(5.77) ~= 320 aa median
  double log_sigma = 0.70;
  uint32_t min_length = 40;
  uint32_t max_length = 5000;
  /// Fraction of sequences that receive a planted homologous segment copied
  /// (with mutations) from a shared pool, so database searches have real
  /// high-scoring hits rather than pure noise.
  double planted_fraction = 0.10;
  double planted_mutation_rate = 0.15;
};

/// Generate a deterministic synthetic database.
std::vector<Sequence> generate_database(const SyntheticConfig& cfg);

/// Generate one random sequence of exactly `length` residues.
Sequence generate_sequence(uint64_t seed, uint32_t length,
                           AlphabetKind kind = AlphabetKind::Protein);

/// Pick `count` queries from `db` spread across its length distribution
/// (evenly spaced length percentiles), mirroring the paper's "10 proteins
/// with a range of lengths". Deterministic.
std::vector<Sequence> pick_queries(const std::vector<Sequence>& db, int count);

/// The paper's query set: `count` queries with lengths spread
/// logarithmically across [min_len, max_len], generated directly.
std::vector<Sequence> make_query_ladder(uint64_t seed, int count, uint32_t min_len,
                                        uint32_t max_len,
                                        AlphabetKind kind = AlphabetKind::Protein);

/// Mutate a copy of `src`: point substitutions with `rate`, preserving
/// length. Used for planting homologies and by tests.
Sequence mutate(const Sequence& src, uint64_t seed, double rate);

/// Robinson & Robinson amino-acid background frequencies in the 24-letter
/// code order (B, Z, X, * get tiny pseudo-frequencies). Sums to 1.
const std::vector<double>& protein_background();

}  // namespace swve::seq
