#include "seq/sequence.hpp"

#include <algorithm>
#include <stdexcept>

namespace swve::seq {

Sequence::Sequence(std::string id, std::string_view residues, const Alphabet& alphabet)
    : id_(std::move(id)), alphabet_(&alphabet) {
  codes_.reserve(residues.size());
  for (char c : residues) codes_.push_back(alphabet.encode(c));
}

Sequence::Sequence(std::string id, std::vector<uint8_t> codes, const Alphabet& alphabet)
    : id_(std::move(id)), codes_(std::move(codes)), alphabet_(&alphabet) {
  for (uint8_t c : codes_)
    if (c >= alphabet.size())
      throw std::invalid_argument("sequence code out of alphabet range");
}

Sequence Sequence::view_of(std::string id, const uint8_t* codes, size_t n,
                           const Alphabet& alphabet) {
  Sequence s;
  s.id_ = std::move(id);
  s.ext_ = codes;
  s.ext_len_ = n;
  s.alphabet_ = &alphabet;
  return s;
}

bool Sequence::operator==(const Sequence& o) const noexcept {
  if (alphabet_ != o.alphabet_ || length() != o.length()) return false;
  return std::equal(data(), data() + length(), o.data());
}

std::string Sequence::to_string() const {
  return decode_string(*alphabet_, data(), length());
}

Sequence Sequence::subsequence(size_t pos, size_t len) const {
  const size_t n = length();
  pos = std::min(pos, n);
  len = std::min(len, n - pos);
  std::vector<uint8_t> sub(data() + pos, data() + pos + len);
  return Sequence(id_ + ":" + std::to_string(pos) + "+" + std::to_string(len),
                  std::move(sub), *alphabet_);
}

}  // namespace swve::seq
