#include "seq/sequence.hpp"

#include <algorithm>
#include <stdexcept>

namespace swve::seq {

Sequence::Sequence(std::string id, std::string_view residues, const Alphabet& alphabet)
    : id_(std::move(id)), alphabet_(&alphabet) {
  codes_.reserve(residues.size());
  for (char c : residues) codes_.push_back(alphabet.encode(c));
}

Sequence::Sequence(std::string id, std::vector<uint8_t> codes, const Alphabet& alphabet)
    : id_(std::move(id)), codes_(std::move(codes)), alphabet_(&alphabet) {
  for (uint8_t c : codes_)
    if (c >= alphabet.size())
      throw std::invalid_argument("sequence code out of alphabet range");
}

std::string Sequence::to_string() const {
  return decode_string(*alphabet_, codes_.data(), codes_.size());
}

Sequence Sequence::subsequence(size_t pos, size_t len) const {
  pos = std::min(pos, codes_.size());
  len = std::min(len, codes_.size() - pos);
  std::vector<uint8_t> sub(codes_.begin() + static_cast<ptrdiff_t>(pos),
                           codes_.begin() + static_cast<ptrdiff_t>(pos + len));
  return Sequence(id_ + ":" + std::to_string(pos) + "+" + std::to_string(len),
                  std::move(sub), *alphabet_);
}

}  // namespace swve::seq
