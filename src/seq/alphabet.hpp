// Residue alphabets and character <-> code mapping.
//
// Protein uses the standard 24-letter ordering (20 amino acids + B, Z, X, *)
// shared by the BLOSUM/PAM tables. Per the paper (Fig 4), every substitution
// matrix row is padded to 32 columns so that a row is exactly one 256-bit
// load and `32*q + r` indexes the flat matrix for the gather unit; codes for
// characters that are not residues map to the alphabet's wildcard.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <string_view>

namespace swve::seq {

/// Row stride (and padded column count) of every score matrix. 32 codes fit
/// one AVX2 byte register and make `32*q + r` a shift+add.
inline constexpr int kMatrixStride = 32;

enum class AlphabetKind : uint8_t { Protein, Dna };

/// Immutable mapping between residue characters and small integer codes.
class Alphabet {
 public:
  static const Alphabet& protein() noexcept;
  static const Alphabet& dna() noexcept;
  static const Alphabet& get(AlphabetKind kind) noexcept;

  AlphabetKind kind() const noexcept { return kind_; }
  /// Number of real letters (24 for protein, 16 for DNA/IUPAC).
  int size() const noexcept { return size_; }
  /// Code every unrecognized character maps to (X for protein, N for DNA).
  uint8_t wildcard() const noexcept { return wildcard_; }
  /// The letters in code order.
  std::string_view letters() const noexcept { return letters_; }

  /// Character -> code. Case-insensitive; unknown characters -> wildcard().
  uint8_t encode(char c) const noexcept {
    return to_code_[static_cast<unsigned char>(c)];
  }
  /// Code -> canonical (uppercase) character. Out-of-range -> '?'.
  char decode(uint8_t code) const noexcept {
    return code < size_ ? letters_[code] : '?';
  }

  Alphabet(const Alphabet&) = delete;
  Alphabet& operator=(const Alphabet&) = delete;

 private:
  Alphabet(AlphabetKind kind, std::string_view letters, char wildcard_char);

  AlphabetKind kind_;
  int size_;
  uint8_t wildcard_;
  std::string letters_;
  std::array<uint8_t, 256> to_code_{};
};

/// Encode a whole string; unknown characters become the wildcard.
std::string decode_string(const Alphabet& a, const uint8_t* codes, size_t n);

}  // namespace swve::seq
