#include "seq/alphabet.hpp"

#include <cctype>

namespace swve::seq {

namespace {
// Standard NCBI/Parasail residue order; matrices in src/matrix use the same.
constexpr std::string_view kProteinLetters = "ARNDCQEGHILKMFPSTWYVBZX*";
// Nucleotides + IUPAC ambiguity codes, N as wildcard.
constexpr std::string_view kDnaLetters = "ACGTUSWRYKMBVHDN";
}  // namespace

Alphabet::Alphabet(AlphabetKind kind, std::string_view letters, char wildcard_char)
    : kind_(kind), size_(static_cast<int>(letters.size())), letters_(letters) {
  wildcard_ = 0;
  for (int i = 0; i < size_; ++i)
    if (letters_[static_cast<size_t>(i)] == wildcard_char)
      wildcard_ = static_cast<uint8_t>(i);
  to_code_.fill(wildcard_);
  for (int i = 0; i < size_; ++i) {
    auto c = static_cast<unsigned char>(letters_[static_cast<size_t>(i)]);
    to_code_[c] = static_cast<uint8_t>(i);
    to_code_[static_cast<unsigned char>(std::tolower(c))] = static_cast<uint8_t>(i);
  }
}

const Alphabet& Alphabet::protein() noexcept {
  static const Alphabet a(AlphabetKind::Protein, kProteinLetters, 'X');
  return a;
}

const Alphabet& Alphabet::dna() noexcept {
  static const Alphabet a(AlphabetKind::Dna, kDnaLetters, 'N');
  return a;
}

const Alphabet& Alphabet::get(AlphabetKind kind) noexcept {
  return kind == AlphabetKind::Protein ? protein() : dna();
}

std::string decode_string(const Alphabet& a, const uint8_t* codes, size_t n) {
  std::string s(n, '?');
  for (size_t i = 0; i < n; ++i) s[i] = a.decode(codes[i]);
  return s;
}

}  // namespace swve::seq
