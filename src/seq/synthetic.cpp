#include "seq/synthetic.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <random>
#include <stdexcept>

namespace swve::seq {

namespace {

// Robinson & Robinson (1991) amino-acid frequencies, reordered to the
// library's "ARNDCQEGHILKMFPSTWYV" code order.
constexpr double kRR20[20] = {
    0.07805,  // A
    0.05129,  // R
    0.04487,  // N
    0.05364,  // D
    0.01925,  // C
    0.04264,  // Q
    0.06295,  // E
    0.07377,  // G
    0.02199,  // H
    0.05142,  // I
    0.09019,  // L
    0.05744,  // K
    0.02243,  // M
    0.03856,  // F
    0.05203,  // P
    0.07120,  // S
    0.05841,  // T
    0.01330,  // W
    0.03216,  // Y
    0.06441,  // V
};

std::discrete_distribution<int> residue_distribution(AlphabetKind kind) {
  if (kind == AlphabetKind::Protein) {
    const auto& bg = protein_background();
    return std::discrete_distribution<int>(bg.begin(), bg.end());
  }
  // DNA: uniform over A, C, G, T (codes 0..3 of the DNA alphabet).
  std::vector<double> w(static_cast<size_t>(Alphabet::dna().size()), 0.0);
  for (int i = 0; i < 4; ++i) w[static_cast<size_t>(i)] = 0.25;
  return std::discrete_distribution<int>(w.begin(), w.end());
}

std::vector<uint8_t> random_codes(std::mt19937_64& rng, uint32_t length,
                                  std::discrete_distribution<int>& dist) {
  std::vector<uint8_t> codes(length);
  for (auto& c : codes) c = static_cast<uint8_t>(dist(rng));
  return codes;
}

}  // namespace

const std::vector<double>& protein_background() {
  static const std::vector<double> bg = [] {
    std::vector<double> v(kRR20, kRR20 + 20);
    // B, Z, X, * : rare pseudo-frequencies so wildcards occur but dominate
    // nothing (Swiss-Prot has a small rate of ambiguity codes).
    v.push_back(2e-4);  // B
    v.push_back(2e-4);  // Z
    v.push_back(4e-4);  // X
    v.push_back(0.0);   // * never generated
    double sum = std::accumulate(v.begin(), v.end(), 0.0);
    for (double& x : v) x /= sum;
    return v;
  }();
  return bg;
}

Sequence generate_sequence(uint64_t seed, uint32_t length, AlphabetKind kind) {
  std::mt19937_64 rng(seed);
  auto dist = residue_distribution(kind);
  return Sequence("synth/" + std::to_string(seed) + "/" + std::to_string(length),
                  random_codes(rng, length, dist), Alphabet::get(kind));
}

Sequence mutate(const Sequence& src, uint64_t seed, double rate) {
  std::mt19937_64 rng(seed);
  auto dist = residue_distribution(src.alphabet().kind());
  std::uniform_real_distribution<double> u(0.0, 1.0);
  std::vector<uint8_t> codes(src.codes().begin(), src.codes().end());
  for (auto& c : codes)
    if (u(rng) < rate) c = static_cast<uint8_t>(dist(rng));
  return Sequence(src.id() + "/mut", std::move(codes), src.alphabet());
}

std::vector<Sequence> generate_database(const SyntheticConfig& cfg) {
  if (cfg.min_length == 0 || cfg.max_length < cfg.min_length)
    throw std::invalid_argument("SyntheticConfig: bad length bounds");
  std::mt19937_64 rng(cfg.seed);
  auto res_dist = residue_distribution(cfg.kind);
  std::lognormal_distribution<double> len_dist(cfg.log_mean, cfg.log_sigma);
  std::uniform_real_distribution<double> u(0.0, 1.0);
  const Alphabet& alpha = Alphabet::get(cfg.kind);

  // Shared pool of "domain" segments used to plant homologies.
  std::vector<std::vector<uint8_t>> domains;
  for (int i = 0; i < 16; ++i) domains.push_back(random_codes(rng, 120, res_dist));

  std::vector<Sequence> db;
  uint64_t emitted = 0;
  size_t index = 0;
  while (emitted < cfg.target_residues) {
    auto len = static_cast<uint32_t>(std::llround(len_dist(rng)));
    len = std::clamp(len, cfg.min_length, cfg.max_length);
    std::vector<uint8_t> codes = random_codes(rng, len, res_dist);
    if (u(rng) < cfg.planted_fraction && len > 140) {
      const auto& dom = domains[static_cast<size_t>(rng() % domains.size())];
      size_t pos = rng() % (len - dom.size());
      for (size_t k = 0; k < dom.size(); ++k) {
        codes[pos + k] = u(rng) < cfg.planted_mutation_rate
                             ? static_cast<uint8_t>(res_dist(rng))
                             : dom[k];
      }
    }
    db.emplace_back("sp|SYN" + std::to_string(index++), std::move(codes), alpha);
    emitted += len;
  }
  return db;
}

std::vector<Sequence> pick_queries(const std::vector<Sequence>& db, int count) {
  if (db.empty() || count <= 0) return {};
  std::vector<size_t> order(db.size());
  std::iota(order.begin(), order.end(), size_t{0});
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return db[a].length() < db[b].length();
  });
  std::vector<Sequence> queries;
  queries.reserve(static_cast<size_t>(count));
  for (int k = 0; k < count; ++k) {
    // Evenly spaced percentiles, inclusive of both tails.
    size_t pos = count == 1 ? order.size() / 2
                            : (static_cast<size_t>(k) * (order.size() - 1)) /
                                  static_cast<size_t>(count - 1);
    queries.push_back(db[order[pos]]);
  }
  return queries;
}

std::vector<Sequence> make_query_ladder(uint64_t seed, int count, uint32_t min_len,
                                        uint32_t max_len, AlphabetKind kind) {
  if (count <= 0 || min_len == 0 || max_len < min_len)
    throw std::invalid_argument("make_query_ladder: bad arguments");
  std::vector<Sequence> out;
  out.reserve(static_cast<size_t>(count));
  const double lo = std::log(static_cast<double>(min_len));
  const double hi = std::log(static_cast<double>(max_len));
  for (int k = 0; k < count; ++k) {
    double t = count == 1 ? 0.5 : static_cast<double>(k) / (count - 1);
    auto len = static_cast<uint32_t>(std::llround(std::exp(lo + t * (hi - lo))));
    out.push_back(generate_sequence(seed + static_cast<uint64_t>(k) * 7919u, len, kind));
  }
  return out;
}

}  // namespace swve::seq
