#include "seq/fasta.hpp"

#include <cctype>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace swve::seq {

std::vector<Sequence> read_fasta(std::istream& in, const Alphabet& alphabet) {
  std::vector<Sequence> out;
  std::string line, id, residues;
  bool have_record = false;

  auto flush = [&] {
    if (have_record) out.emplace_back(id, residues, alphabet);
    id.clear();
    residues.clear();
  };

  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    if (line[0] == '>') {
      flush();
      have_record = true;
      size_t end = line.find_first_of(" \t", 1);
      id = line.substr(1, end == std::string::npos ? std::string::npos : end - 1);
    } else if (line[0] == ';') {
      continue;  // old-style comment
    } else {
      if (!have_record) throw std::runtime_error("FASTA: residues before first header");
      for (char c : line)
        if (!std::isspace(static_cast<unsigned char>(c))) residues.push_back(c);
    }
  }
  flush();
  return out;
}

std::vector<Sequence> read_fasta_file(const std::string& path, const Alphabet& alphabet) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("FASTA: cannot open " + path);
  return read_fasta(in, alphabet);
}

void write_fasta(std::ostream& out, const std::vector<Sequence>& seqs, int width) {
  if (width <= 0) width = 60;
  for (const Sequence& s : seqs) {
    out << '>' << s.id() << '\n';
    std::string txt = s.to_string();
    for (size_t pos = 0; pos < txt.size(); pos += static_cast<size_t>(width))
      out << txt.substr(pos, static_cast<size_t>(width)) << '\n';
    if (txt.empty()) out << '\n';
  }
}

void write_fasta_file(const std::string& path, const std::vector<Sequence>& seqs,
                      int width) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("FASTA: cannot open " + path + " for writing");
  write_fasta(out, seqs, width);
}

}  // namespace swve::seq
