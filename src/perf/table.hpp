// Fixed-width table printer: every bench prints the rows/series the paper's
// figures report through this, so bench output is uniform and parseable.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace swve::perf {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  Table& row(std::vector<std::string> cells);
  /// Convenience: format doubles with `precision` decimals.
  static std::string num(double v, int precision = 2);
  static std::string integer(uint64_t v);
  static std::string percent(double frac, int precision = 1);

  void print(std::ostream& os) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// "== title ==" section banner used between figure panels.
void print_banner(std::ostream& os, const std::string& title);

}  // namespace swve::perf
