#include "perf/table.hpp"

#include <algorithm>
#include <cstdint>
#include <iomanip>
#include <ostream>
#include <sstream>

namespace swve::perf {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

Table& Table::row(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
  return *this;
}

std::string Table::num(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string Table::integer(uint64_t v) { return std::to_string(v); }

std::string Table::percent(double frac, int precision) {
  return num(frac * 100.0, precision) + "%";
}

void Table::print(std::ostream& os) const {
  std::vector<size_t> w(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) w[c] = headers_[c].size();
  for (const auto& r : rows_)
    for (size_t c = 0; c < r.size(); ++c) w[c] = std::max(w[c], r[c].size());

  auto line = [&](const std::vector<std::string>& cells) {
    for (size_t c = 0; c < cells.size(); ++c)
      os << (c ? "  " : "") << std::setw(static_cast<int>(w[c])) << cells[c];
    os << '\n';
  };
  line(headers_);
  std::string rule;
  for (size_t c = 0; c < headers_.size(); ++c)
    rule += std::string(w[c], '-') + (c + 1 < headers_.size() ? "  " : "");
  os << rule << '\n';
  for (const auto& r : rows_) line(r);
}

void print_banner(std::ostream& os, const std::string& title) {
  os << "\n== " << title << " ==\n";
}

}  // namespace swve::perf
