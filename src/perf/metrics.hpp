// Service observability: lock-free counters and latency/GCUPS histograms.
//
// A MetricsRegistry is owned by service::AlignService and updated from its
// executor threads with relaxed atomics — recording a sample is a handful
// of fetch_adds, cheap enough to sit on the per-request path. snapshot()
// gives a consistent-enough point-in-time copy for dashboards/CLI dumps
// (counters are read individually; exactness across counters is not
// required for monitoring).
//
// Machine-readable renderings of a MetricsSnapshot (Prometheus text
// exposition, JSON) live in obs/exporters.hpp.
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>

#include "simd/cpu.hpp"

namespace swve::perf {

/// Lock-free log2-scale latency histogram. Bucket 0 holds samples < 1 us;
/// bucket i (i >= 1) holds samples in [2^(i-1), 2^i) microseconds; the last
/// bucket absorbs everything beyond ~35 minutes. Percentiles interpolate
/// log-linearly inside the hit bucket (clamped to the observed max), so a
/// reported p99 is an estimate within the bucket rather than the raw
/// power-of-two upper bound.
class LatencyHistogram {
 public:
  static constexpr int kBuckets = 32;

  void record(double seconds) noexcept;

  /// Upper bound of bucket i, in seconds (bucket 0 ends at 1 us). The
  /// Prometheus exporter uses these as its `le` boundaries.
  static double bucket_upper_seconds(int i) noexcept {
    return static_cast<double>(uint64_t{1} << i) * 1e-6;
  }

  struct Snapshot {
    uint64_t count = 0;
    double mean_s = 0;
    double max_s = 0;
    double p50_s = 0;
    double p90_s = 0;
    double p99_s = 0;
    std::array<uint64_t, kBuckets> buckets{};
  };
  Snapshot snapshot() const noexcept;

 private:
  std::array<std::atomic<uint64_t>, kBuckets> buckets_{};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_us_{0};
  std::atomic<uint64_t> max_us_{0};
};

/// Human-friendly duration ("248us", "3.20ms", "1.500s"). Values that would
/// round up to a whole next unit are promoted ("999.7us" prints "1.00ms",
/// never "1000us").
std::string format_seconds(double s);

/// Kernel family that actually served a request (the dispatch target,
/// together with the resolved ISA).
enum class KernelVariant : int { Diagonal = 0, Batch32 = 1 };
const char* kernel_variant_name(KernelVariant v) noexcept;

/// Point-in-time copy of a MetricsRegistry.
struct MetricsSnapshot {
  static constexpr int kIsas = 5;            ///< simd::Isa enum size
  static constexpr int kKernelVariants = 2;  ///< KernelVariant enum size
  static constexpr int kWindowSeconds = 60;  ///< sliding-window span

  // Request lifecycle counters.
  uint64_t submitted = 0;           ///< accepted into the queue
  uint64_t completed = 0;           ///< future fulfilled with a result
  uint64_t rejected_queue_full = 0; ///< backpressure rejections at submit
  uint64_t deadline_expired = 0;    ///< expired in queue or mid-run
  uint64_t invalid_request = 0;     ///< failed validation (bad config/empty)
  uint64_t aborted = 0;             ///< failed at shutdown before running

  // Completed requests by scenario.
  uint64_t pairwise = 0;
  uint64_t search = 0;
  uint64_t batch = 0;

  // Aggregate kernel work (completed requests only).
  uint64_t cells = 0;               ///< DP cells computed
  double kernel_seconds = 0;        ///< summed kernel (execution) time

  // Which dispatch target served each completed request: completions and
  // cells by [resolved ISA][kernel variant].
  std::array<std::array<uint64_t, kKernelVariants>, kIsas> target_requests{};
  std::array<std::array<uint64_t, kKernelVariants>, kIsas> target_cells{};

  // Batch32-kernel packing (batch-path completions only): 8-bit kernel
  // cells as padded (max_len * lanes * m) vs landing on real residues.
  uint64_t batch_cells8 = 0;
  uint64_t batch_useful_cells8 = 0;

  // Query-state cache (filled by the owner from align::QueryStateCache;
  // zero when no cache is attached).
  uint64_t query_cache_hits = 0;
  uint64_t query_cache_misses = 0;
  uint64_t query_cache_evictions = 0;
  uint64_t workspace_reuses = 0;
  uint64_t workspace_creates = 0;
  uint64_t query_cache_entries = 0;

  // Sliding window: kernel work recorded in the last kWindowSeconds.
  uint64_t window_cells = 0;
  double window_kernel_seconds = 0;

  // Thread-pool utilization (filled by the owner of the pool; zero when no
  // pool is attached).
  unsigned pool_threads = 0;
  uint64_t pool_jobs = 0;
  double pool_busy_seconds = 0;

  double uptime_seconds = 0;        ///< registry lifetime at snapshot time

  /// Aggregate throughput over every completed request.
  double aggregate_gcups() const noexcept {
    return kernel_seconds > 0
               ? static_cast<double>(cells) / kernel_seconds / 1e9
               : 0.0;
  }

  /// Throughput over kernel work completed in the last kWindowSeconds —
  /// the live-dashboard gauge next to the lifetime aggregate.
  double window_gcups() const noexcept {
    return window_kernel_seconds > 0
               ? static_cast<double>(window_cells) / window_kernel_seconds / 1e9
               : 0.0;
  }

  /// Useful fraction of the batch kernel's DP work, in (0, 1]; 0 before the
  /// first batch-path request. 1 - this is the padding overhead the packing
  /// policy left on the table.
  double batch_packing_efficiency() const noexcept {
    return batch_cells8 > 0 ? static_cast<double>(batch_useful_cells8) /
                                  static_cast<double>(batch_cells8)
                            : 0.0;
  }

  /// Prepared-query LRU hit rate, in [0, 1]; 0 before the first lookup.
  double query_cache_hit_rate() const noexcept {
    const uint64_t total = query_cache_hits + query_cache_misses;
    return total > 0 ? static_cast<double>(query_cache_hits) /
                           static_cast<double>(total)
                     : 0.0;
  }

  /// Busy fraction of the pool over the registry's lifetime [0, 1].
  double pool_utilization() const noexcept {
    return pool_threads > 0 && uptime_seconds > 0
               ? pool_busy_seconds /
                     (static_cast<double>(pool_threads) * uptime_seconds)
               : 0.0;
  }

  LatencyHistogram::Snapshot queue_wait;
  LatencyHistogram::Snapshot kernel_time;

  /// Human-readable multi-line dump (the `swve --metrics` text format).
  std::string to_string() const;
};

/// Atomic counters + histograms; one per AlignService. All members are
/// individually thread-safe; see MetricsSnapshot for the read side.
class MetricsRegistry {
 public:
  enum class Scenario : int { Pairwise = 0, Search = 1, Batch = 2 };

  MetricsRegistry() : start_(Clock::now()) {}

  void on_submitted() noexcept { submitted_.fetch_add(1, kRelaxed); }
  void on_rejected_queue_full() noexcept {
    rejected_queue_full_.fetch_add(1, kRelaxed);
  }
  void on_deadline_expired() noexcept {
    deadline_expired_.fetch_add(1, kRelaxed);
  }
  void on_invalid_request() noexcept { invalid_request_.fetch_add(1, kRelaxed); }
  void on_aborted() noexcept { aborted_.fetch_add(1, kRelaxed); }

  void on_queue_wait(double seconds) noexcept { queue_wait_.record(seconds); }

  void on_completed(Scenario s, double kernel_seconds,
                    uint64_t cells) noexcept {
    completed_.fetch_add(1, kRelaxed);
    by_scenario_[static_cast<int>(s)].fetch_add(1, kRelaxed);
    cells_.fetch_add(cells, kRelaxed);
    const auto ns = static_cast<uint64_t>(kernel_seconds * 1e9);
    kernel_ns_.fetch_add(ns, kRelaxed);
    kernel_time_.record(kernel_seconds);
    window_record(cells, ns);
  }

  /// Record the batch kernel's padded vs useful 8-bit cell counts for one
  /// completed batch-path request (see core::BatchSearchStats).
  void on_batch_packing(uint64_t cells8, uint64_t useful_cells8) noexcept {
    batch_cells8_.fetch_add(cells8, kRelaxed);
    batch_useful_cells8_.fetch_add(useful_cells8, kRelaxed);
  }

  /// Attribute a completed request to the dispatch target that served it
  /// (resolved ISA + kernel family). Pass the ISA the kernel reported, not
  /// the requested one.
  void on_kernel_completed(simd::Isa isa, KernelVariant variant,
                           uint64_t cells) noexcept {
    const auto i = static_cast<size_t>(isa);
    const auto k = static_cast<size_t>(variant);
    if (i >= static_cast<size_t>(MetricsSnapshot::kIsas) ||
        k >= static_cast<size_t>(MetricsSnapshot::kKernelVariants))
      return;
    target_requests_[i][k].fetch_add(1, kRelaxed);
    target_cells_[i][k].fetch_add(cells, kRelaxed);
  }

  MetricsSnapshot snapshot() const noexcept;

 private:
  using Clock = std::chrono::steady_clock;
  static constexpr auto kRelaxed = std::memory_order_relaxed;
  // One-second buckets; > kWindowSeconds of them so an expired bucket is
  // reused before it could be confused with a live one.
  static constexpr int kWindowBuckets = 64;
  static constexpr uint64_t kNoEpoch = ~uint64_t{0};

  struct WindowBucket {
    std::atomic<uint64_t> epoch_s{kNoEpoch};  ///< second the bucket covers
    std::atomic<uint64_t> cells{0};
    std::atomic<uint64_t> kernel_ns{0};
  };

  uint64_t elapsed_s() const noexcept {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::seconds>(Clock::now() - start_)
            .count());
  }

  void window_record(uint64_t cells, uint64_t ns) noexcept {
    const uint64_t now_s = elapsed_s();
    WindowBucket& b = window_[now_s % kWindowBuckets];
    uint64_t e = b.epoch_s.load(kRelaxed);
    if (e != now_s &&
        b.epoch_s.compare_exchange_strong(e, now_s, kRelaxed, kRelaxed)) {
      // This thread rolled the bucket over; reset it. A concurrent recorder
      // that raced between the CAS and these stores can lose its sample —
      // a once-per-second monitoring-grade race, not a data race.
      b.cells.store(0, kRelaxed);
      b.kernel_ns.store(0, kRelaxed);
    }
    b.cells.fetch_add(cells, kRelaxed);
    b.kernel_ns.fetch_add(ns, kRelaxed);
  }

  std::atomic<uint64_t> submitted_{0};
  std::atomic<uint64_t> completed_{0};
  std::atomic<uint64_t> rejected_queue_full_{0};
  std::atomic<uint64_t> deadline_expired_{0};
  std::atomic<uint64_t> invalid_request_{0};
  std::atomic<uint64_t> aborted_{0};
  std::array<std::atomic<uint64_t>, 3> by_scenario_{};
  std::atomic<uint64_t> cells_{0};
  std::atomic<uint64_t> kernel_ns_{0};
  std::atomic<uint64_t> batch_cells8_{0};
  std::atomic<uint64_t> batch_useful_cells8_{0};
  std::array<std::array<std::atomic<uint64_t>, MetricsSnapshot::kKernelVariants>,
             MetricsSnapshot::kIsas>
      target_requests_{};
  std::array<std::array<std::atomic<uint64_t>, MetricsSnapshot::kKernelVariants>,
             MetricsSnapshot::kIsas>
      target_cells_{};
  std::array<WindowBucket, kWindowBuckets> window_{};
  LatencyHistogram queue_wait_;
  LatencyHistogram kernel_time_;
  Clock::time_point start_;
};

}  // namespace swve::perf
