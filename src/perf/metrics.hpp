// Service observability: lock-free counters and latency/GCUPS histograms.
//
// A MetricsRegistry is owned by service::AlignService and updated from its
// executor threads with relaxed atomics — recording a sample is a handful
// of fetch_adds, cheap enough to sit on the per-request path. snapshot()
// gives a consistent-enough point-in-time copy for dashboards/CLI dumps
// (counters are read individually; exactness across counters is not
// required for monitoring).
//
// Machine-readable renderings of a MetricsSnapshot (Prometheus text
// exposition, JSON) live in obs/exporters.hpp.
#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <chrono>
#include <cstdint>
#include <string>

#include "simd/cpu.hpp"

namespace swve::perf {

/// Lock-free log2-scale latency histogram. Bucket 0 holds samples < 1 us;
/// bucket i (i >= 1) holds samples in [2^(i-1), 2^i) microseconds; the last
/// bucket absorbs everything beyond ~35 minutes. Percentiles interpolate
/// log-linearly inside the hit bucket (clamped to the observed max), so a
/// reported p99 is an estimate within the bucket rather than the raw
/// power-of-two upper bound.
class LatencyHistogram {
 public:
  static constexpr int kBuckets = 32;

  void record(double seconds) noexcept;

  /// Upper bound of bucket i, in seconds (bucket 0 ends at 1 us). The
  /// Prometheus exporter uses these as its `le` boundaries.
  static double bucket_upper_seconds(int i) noexcept {
    return static_cast<double>(uint64_t{1} << i) * 1e-6;
  }

  struct Snapshot {
    uint64_t count = 0;
    double mean_s = 0;
    double max_s = 0;
    double p50_s = 0;
    double p90_s = 0;
    double p99_s = 0;
    std::array<uint64_t, kBuckets> buckets{};

    /// Samples recorded at or above `seconds` — the bucket tail from the
    /// first bucket whose upper bound exceeds the threshold. Used by the
    /// SLO engine to count latency-objective violations without storing
    /// raw samples; the answer is exact at bucket boundaries and
    /// conservative (over-counting) inside a bucket.
    uint64_t count_over(double seconds) const noexcept;

    /// Window delta `now - prev` of two snapshots of the *same* histogram
    /// (prev taken earlier). Buckets/count/mean describe only the samples
    /// recorded between the two snapshots; percentiles are recomputed from
    /// the delta buckets. A non-monotone pair (counter reset, or snapshots
    /// of different histograms) clamps per-bucket to zero rather than
    /// underflowing. `max_s` is inherited from `now` — the per-window max
    /// is not tracked, so it is an upper bound, not a window statistic.
    static Snapshot subtract(const Snapshot& now, const Snapshot& prev) noexcept;

    /// Sum of two disjoint snapshots (e.g. folding tiers together):
    /// buckets and counts add, mean is count-weighted, max is the larger,
    /// percentiles are recomputed from the merged buckets.
    static Snapshot merge(const Snapshot& a, const Snapshot& b) noexcept;
  };
  Snapshot snapshot() const noexcept;

 private:
  std::array<std::atomic<uint64_t>, kBuckets> buckets_{};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_us_{0};
  std::atomic<uint64_t> max_us_{0};
};

/// Human-friendly duration ("248us", "3.20ms", "1.500s"). Values that would
/// round up to a whole next unit are promoted ("999.7us" prints "1.00ms",
/// never "1000us").
std::string format_seconds(double s);

// Shared delta math for everything that turns two counter snapshots into a
// window statistic (obs::TimeSeriesStore, `swve_client metrics --watch`).
// Monotone counters can still appear to step backwards across a process
// restart; both helpers clamp to zero instead of producing a negative rate.

/// Counter delta `now - prev`, clamped at zero.
constexpr uint64_t counter_delta(uint64_t now, uint64_t prev) noexcept {
  return now >= prev ? now - prev : 0;
}

/// Per-second rate of a counter over a window of `dt_s` seconds.
constexpr double delta_rate(uint64_t now, uint64_t prev, double dt_s) noexcept {
  return dt_s > 0 ? static_cast<double>(counter_delta(now, prev)) / dt_s : 0.0;
}

/// Ratio of two counter deltas (e.g. window cache-hit rate =
/// delta(hits) / (delta(hits) + delta(misses))); 0 when the denominator
/// delta is empty.
constexpr double delta_ratio(uint64_t num_now, uint64_t num_prev,
                             uint64_t den_now, uint64_t den_prev) noexcept {
  const uint64_t den = counter_delta(den_now, den_prev);
  return den > 0 ? static_cast<double>(counter_delta(num_now, num_prev)) /
                       static_cast<double>(den)
                 : 0.0;
}

/// Kernel family that actually served a request (the dispatch target,
/// together with the resolved ISA). The batch kernel attributes separately
/// per interleave depth so per-K IPC / stall deltas stay legible.
enum class KernelVariant : int {
  Diagonal = 0,
  Batch32 = 1,    ///< batch kernel, one batch in flight (K = 1)
  Batch32x2 = 2,  ///< fused batch kernel, K = 2
  Batch32x4 = 3,  ///< fused batch kernel, K = 4
};
const char* kernel_variant_name(KernelVariant v) noexcept;

/// Batch-kernel variant for a concrete interleave depth.
constexpr KernelVariant batch_kernel_variant(int k) noexcept {
  return k >= 4   ? KernelVariant::Batch32x4
         : k >= 2 ? KernelVariant::Batch32x2
                  : KernelVariant::Batch32;
}

/// Aggregated hardware-counter deltas for one ISA×kernel×width attribution
/// cell (filled by obs::PmuSession via span-scoped start/stop reads). All
/// fields are totals over `samples` spans; the derived ratios reproduce the
/// paper's per-kernel microarchitecture analysis from a live service.
struct PmuSample {
  uint64_t samples = 0;         ///< spans aggregated into this cell
  uint64_t wall_ns = 0;         ///< summed span wall time
  uint64_t cycles = 0;
  uint64_t instructions = 0;
  uint64_t stall_frontend = 0;  ///< frontend-stalled cycles
  uint64_t stall_backend = 0;   ///< backend-stalled cycles
  uint64_t llc_misses = 0;
  uint64_t branch_misses = 0;

  double ipc() const noexcept {
    return cycles > 0 ? static_cast<double>(instructions) /
                            static_cast<double>(cycles)
                      : 0.0;
  }
  double frontend_stall_fraction() const noexcept {
    return cycles > 0 ? static_cast<double>(stall_frontend) /
                            static_cast<double>(cycles)
                      : 0.0;
  }
  double backend_stall_fraction() const noexcept {
    return cycles > 0 ? static_cast<double>(stall_backend) /
                            static_cast<double>(cycles)
                      : 0.0;
  }
  /// Cycles per wall ns == effective GHz while this cell's spans ran; an
  /// AVX-512 cell clocking well below its AVX2 neighbour is the license
  /// throttling the paper recalibrates for.
  double effective_ghz() const noexcept {
    return wall_ns > 0
               ? static_cast<double>(cycles) / static_cast<double>(wall_ns)
               : 0.0;
  }
};

/// Wire-order QoS tier labels (mirrors service::QosTier without a
/// dependency on the service layer — perf sits below it).
constexpr const char* qos_tier_label(int tier) noexcept {
  return tier == 0   ? "interactive"
         : tier == 1 ? "standard"
         : tier == 2 ? "bulk"
                     : "unknown";
}

/// Point-in-time copy of a MetricsRegistry.
struct MetricsSnapshot {
  static constexpr int kIsas = 5;            ///< simd::Isa enum size
  static constexpr int kKernelVariants = 4;  ///< KernelVariant enum size
  static constexpr int kWidths = 4;          ///< DP width: unknown/8/16/32
  static constexpr int kWindowSeconds = 60;  ///< sliding-window span

  /// Index of a DP width in the pmu attribution array.
  static int width_index(uint16_t bits) noexcept {
    switch (bits) {
      case 8: return 1;
      case 16: return 2;
      case 32: return 3;
      default: return 0;
    }
  }
  /// Inverse of width_index (0 = width unknown/mixed).
  static uint16_t width_bits_at(int idx) noexcept {
    static constexpr uint16_t kBits[kWidths] = {0, 8, 16, 32};
    return idx >= 0 && idx < kWidths ? kBits[idx] : 0;
  }

  // Live-workload characterization: query lengths bucketed into the same
  // geometric regimes the packing policies bin by (core/batch32.cpp,
  // LengthBinned): bin b holds lengths [2^b, 2^(b+1)); the last bin
  // saturates. This is the per-length-bin feed the online tuner keys its
  // (ISA × kernel × length-bin) cells on.
  static constexpr int kLengthBins = 16;  ///< last bin: >= 32768 residues

  /// Bin index for a query of `len` residues (0 maps to bin 0).
  static int length_bin_of(uint64_t len) noexcept {
    if (len == 0) return 0;
    const int b = std::bit_width(len) - 1;
    return b < kLengthBins ? b : kLengthBins - 1;
  }
  /// Inclusive lower bound of bin b (1, 2, 4, ... — bin 0 also holds 0).
  static uint64_t length_bin_lower(int b) noexcept {
    return b > 0 ? uint64_t{1} << b : 0;
  }

  // Request lifecycle counters.
  uint64_t submitted = 0;           ///< accepted into the queue
  uint64_t completed = 0;           ///< future fulfilled with a result
  uint64_t rejected_queue_full = 0; ///< backpressure rejections at submit
  uint64_t deadline_expired = 0;    ///< expired in queue or mid-run
  uint64_t invalid_request = 0;     ///< failed validation (bad config/empty)
  uint64_t aborted = 0;             ///< failed at shutdown before running

  // Completed requests by scenario.
  uint64_t pairwise = 0;
  uint64_t search = 0;
  uint64_t batch = 0;

  // Aggregate kernel work (completed requests only).
  uint64_t cells = 0;               ///< DP cells computed
  double kernel_seconds = 0;        ///< summed kernel (execution) time

  // Which dispatch target served each completed request: completions and
  // cells by [resolved ISA][kernel variant].
  std::array<std::array<uint64_t, kKernelVariants>, kIsas> target_requests{};
  std::array<std::array<uint64_t, kKernelVariants>, kIsas> target_cells{};

  // Batch32-kernel packing (batch-path completions only): 8-bit kernel
  // cells as padded (max_len * lanes * m) vs landing on real residues.
  uint64_t batch_cells8 = 0;
  uint64_t batch_useful_cells8 = 0;

  // Query-state cache (filled by the owner from align::QueryStateCache;
  // zero when no cache is attached).
  uint64_t query_cache_hits = 0;
  uint64_t query_cache_misses = 0;
  uint64_t query_cache_evictions = 0;
  uint64_t workspace_reuses = 0;
  uint64_t workspace_creates = 0;
  uint64_t query_cache_entries = 0;

  // Database provenance (filled by the owner — service::AlignService; all
  // zero for a database-less or legacy in-process-packed service).
  uint64_t db_source = 0;          ///< core::DbSource: 0 built, 1 mmap, 2 shm
  uint64_t db_map_bytes = 0;       ///< artifact mapping size; 0 when built
  uint64_t db_resident_bytes = 0;  ///< gauge: mapped bytes resident in RAM
  double db_load_seconds = 0;      ///< startup: map/pack -> search-ready
  uint64_t db_epoch = 0;           ///< content fingerprint; 0 when unknown

  // Serving front door (filled by net::Server; zero without one). The
  // result cache sits above the query-state cache and holds serialized
  // responses keyed by (scenario, request bytes, config, db epoch).
  uint64_t result_cache_hits = 0;
  uint64_t result_cache_misses = 0;
  uint64_t result_cache_evictions = 0;
  uint64_t result_cache_entries = 0;   ///< gauge, filled at snapshot time
  uint64_t coalesced = 0;              ///< requests joined onto an in-flight twin
  uint64_t server_connections = 0;     ///< accepted over the server lifetime
  uint64_t server_active_connections = 0;  ///< gauge, filled at snapshot time
  uint64_t server_frames_rx = 0;
  uint64_t server_frames_tx = 0;
  uint64_t server_bytes_rx = 0;
  uint64_t server_bytes_tx = 0;
  uint64_t server_protocol_errors = 0;  ///< bad frame/version/type/too-large
  uint64_t server_http_scrapes = 0;     ///< GET /metrics answered

  // Per-QoS-tier accounting (first step toward per-tenant metrics):
  // completions by [tier][scenario] and an end-to-end (queue + execution)
  // latency histogram per tier.
  static constexpr int kQosTiers = 3;   ///< service::QosTier enum size
  static constexpr int kScenarios = 3;  ///< pairwise / search / batch
  std::array<std::array<uint64_t, kScenarios>, kQosTiers> tier_requests{};
  std::array<LatencyHistogram::Snapshot, kQosTiers> tier_latency{};

  // Submitted queries by length regime (see length_bin_of); batch requests
  // contribute one count per member query.
  std::array<uint64_t, kLengthBins> query_length_bins{};

  // Structured-log accounting (filled by the owner from obs::Logger; zero
  // when no logger is installed).
  uint64_t log_records = 0;           ///< lines written to the sinks
  uint64_t log_dropped_overflow = 0;  ///< ring full at the call site
  uint64_t log_dropped_threads = 0;   ///< producing threads beyond capacity
  uint64_t log_suppressed = 0;        ///< per-site rate limit

  // Sliding window: kernel work recorded in the last kWindowSeconds.
  uint64_t window_cells = 0;
  double window_kernel_seconds = 0;

  // Thread-pool utilization (filled by the owner of the pool; zero when no
  // pool is attached).
  unsigned pool_threads = 0;
  uint64_t pool_jobs = 0;
  double pool_busy_seconds = 0;

  // Span-scoped hardware-counter attribution by [ISA][kernel][width index]
  // (see width_index). Cells stay zero on PMU-denied hosts.
  std::array<std::array<std::array<PmuSample, kWidths>, kKernelVariants>,
             kIsas>
      pmu{};
  /// 1 when the owner wanted PMU attribution but perf_event was denied or
  /// absent (EPERM/ENOENT/disabled) — the software-clock fallback is live.
  /// 0 when counters work or attribution was never requested.
  uint64_t pmu_unavailable = 0;

  /// Requests the watchdog flagged as exceeding the latency SLO.
  uint64_t slow_requests = 0;

  // Sharded-search attribution (filled by the owner from
  // align::ShardedSearch::shard_stats; shard_count == 0 when batch search
  // runs on the unsharded flat pool).
  static constexpr int kMaxShards = 16;
  struct ShardSample {
    uint64_t searches = 0;
    uint64_t batches = 0;       ///< batch-kernel batches scanned
    uint64_t cells = 0;         ///< DP cells (8-bit + rescore)
    uint64_t useful_cells = 0;
    double busy_seconds = 0;    ///< summed worker wall time in the shard
    uint64_t llc_misses = 0;    ///< PMU deltas over shard scans; 0 = no PMU
    uint64_t cycles = 0;
    uint64_t queue_depth = 0;   ///< gauge: jobs pending on the shard's pool
    uint64_t sequences = 0;     ///< database sequences the shard owns
    int32_t node = -1;          ///< pinned NUMA node; -1 unpinned
    uint32_t threads = 0;
    uint8_t bound = 0;          ///< mbind of the shard's columns succeeded

    double gcups() const noexcept {
      return busy_seconds > 0
                 ? static_cast<double>(cells) / busy_seconds / 1e9
                 : 0.0;
    }
  };
  uint32_t shard_count = 0;  ///< live shards, clamped to kMaxShards
  std::array<ShardSample, kMaxShards> shards{};

  // TraceSink accounting (filled by the owner from obs::TraceSink; zero
  // when no sink is attached).
  uint64_t trace_recorded = 0;          ///< events ever recorded
  uint64_t trace_dropped_wrap = 0;      ///< overwritten by ring wrap
  uint64_t trace_dropped_torn = 0;      ///< skipped by racing exports
  uint64_t trace_dropped_overflow = 0;  ///< threads beyond ring capacity

  double uptime_seconds = 0;        ///< registry lifetime at snapshot time

  /// Aggregate throughput over every completed request.
  double aggregate_gcups() const noexcept {
    return kernel_seconds > 0
               ? static_cast<double>(cells) / kernel_seconds / 1e9
               : 0.0;
  }

  /// Throughput over kernel work completed in the last kWindowSeconds —
  /// the live-dashboard gauge next to the lifetime aggregate.
  double window_gcups() const noexcept {
    return window_kernel_seconds > 0
               ? static_cast<double>(window_cells) / window_kernel_seconds / 1e9
               : 0.0;
  }

  /// Useful fraction of the batch kernel's DP work, in (0, 1]; 0 before the
  /// first batch-path request. 1 - this is the padding overhead the packing
  /// policy left on the table.
  double batch_packing_efficiency() const noexcept {
    return batch_cells8 > 0 ? static_cast<double>(batch_useful_cells8) /
                                  static_cast<double>(batch_cells8)
                            : 0.0;
  }

  /// Serialized-response LRU hit rate, in [0, 1]; 0 before the first lookup.
  double result_cache_hit_rate() const noexcept {
    const uint64_t total = result_cache_hits + result_cache_misses;
    return total > 0 ? static_cast<double>(result_cache_hits) /
                           static_cast<double>(total)
                     : 0.0;
  }

  /// Fraction of frame-carried requests answered without a fresh service
  /// execution (result-cache hit or singleflight join), in [0, 1].
  double dedup_ratio() const noexcept {
    const uint64_t saved = result_cache_hits + coalesced;
    const uint64_t total = saved + result_cache_misses;
    return total > 0
               ? static_cast<double>(saved) / static_cast<double>(total)
               : 0.0;
  }

  /// Prepared-query LRU hit rate, in [0, 1]; 0 before the first lookup.
  double query_cache_hit_rate() const noexcept {
    const uint64_t total = query_cache_hits + query_cache_misses;
    return total > 0 ? static_cast<double>(query_cache_hits) /
                           static_cast<double>(total)
                     : 0.0;
  }

  /// Busy fraction of the pool over the registry's lifetime [0, 1].
  double pool_utilization() const noexcept {
    return pool_threads > 0 && uptime_seconds > 0
               ? pool_busy_seconds /
                     (static_cast<double>(pool_threads) * uptime_seconds)
               : 0.0;
  }

  /// Sum of every PMU attribution cell (all ISAs, kernels, widths).
  PmuSample pmu_total() const noexcept {
    PmuSample t;
    for (const auto& ik : pmu)
      for (const auto& kw : ik)
        for (const PmuSample& c : kw) {
          t.samples += c.samples;
          t.wall_ns += c.wall_ns;
          t.cycles += c.cycles;
          t.instructions += c.instructions;
          t.stall_frontend += c.stall_frontend;
          t.stall_backend += c.stall_backend;
          t.llc_misses += c.llc_misses;
          t.branch_misses += c.branch_misses;
        }
    return t;
  }

  /// AVX-512 effective GHz divided by the fastest non-AVX-512 cell's GHz —
  /// < 1 flags license throttling (paper §IV-E). 0 until both sides have
  /// samples.
  double avx512_frequency_ratio() const noexcept {
    double avx512_ghz = 0, other_ghz = 0;
    uint64_t a_cycles = 0, a_ns = 0;
    for (int i = 0; i < kIsas; ++i)
      for (int k = 0; k < kKernelVariants; ++k)
        for (int w = 0; w < kWidths; ++w) {
          const PmuSample& c = pmu[i][k][w];
          if (c.cycles == 0) continue;
          if (static_cast<simd::Isa>(i) == simd::Isa::Avx512) {
            a_cycles += c.cycles;
            a_ns += c.wall_ns;
          } else if (c.effective_ghz() > other_ghz) {
            other_ghz = c.effective_ghz();
          }
        }
    if (a_ns > 0)
      avx512_ghz = static_cast<double>(a_cycles) / static_cast<double>(a_ns);
    return (avx512_ghz > 0 && other_ghz > 0) ? avx512_ghz / other_ghz : 0.0;
  }

  LatencyHistogram::Snapshot queue_wait;
  LatencyHistogram::Snapshot kernel_time;

  /// Human-readable multi-line dump (the `swve --metrics` text format).
  std::string to_string() const;
};

/// Atomic counters + histograms; one per AlignService. All members are
/// individually thread-safe; see MetricsSnapshot for the read side.
class MetricsRegistry {
 public:
  enum class Scenario : int { Pairwise = 0, Search = 1, Batch = 2 };

  MetricsRegistry() : start_(Clock::now()) {}

  void on_submitted() noexcept { submitted_.fetch_add(1, kRelaxed); }
  void on_rejected_queue_full() noexcept {
    rejected_queue_full_.fetch_add(1, kRelaxed);
  }
  void on_deadline_expired() noexcept {
    deadline_expired_.fetch_add(1, kRelaxed);
  }
  void on_invalid_request() noexcept { invalid_request_.fetch_add(1, kRelaxed); }
  void on_aborted() noexcept { aborted_.fetch_add(1, kRelaxed); }

  void on_queue_wait(double seconds) noexcept { queue_wait_.record(seconds); }

  void on_completed(Scenario s, double kernel_seconds,
                    uint64_t cells) noexcept {
    completed_.fetch_add(1, kRelaxed);
    by_scenario_[static_cast<int>(s)].fetch_add(1, kRelaxed);
    cells_.fetch_add(cells, kRelaxed);
    const auto ns = static_cast<uint64_t>(kernel_seconds * 1e9);
    kernel_ns_.fetch_add(ns, kRelaxed);
    kernel_time_.record(kernel_seconds);
    window_record(cells, ns);
  }

  /// Record the batch kernel's padded vs useful 8-bit cell counts for one
  /// completed batch-path request (see core::BatchSearchStats).
  void on_batch_packing(uint64_t cells8, uint64_t useful_cells8) noexcept {
    batch_cells8_.fetch_add(cells8, kRelaxed);
    batch_useful_cells8_.fetch_add(useful_cells8, kRelaxed);
  }

  /// Fold one span's hardware-counter deltas into the ISA×kernel×width
  /// attribution cell. `d.samples` should be 1 for a single span. Relaxed
  /// fetch_adds — cheap enough for chunk-granularity recording.
  void on_pmu_sample(simd::Isa isa, KernelVariant variant, uint16_t width_bits,
                     const PmuSample& d) noexcept {
    const auto i = static_cast<size_t>(isa);
    const auto k = static_cast<size_t>(variant);
    if (i >= static_cast<size_t>(MetricsSnapshot::kIsas) ||
        k >= static_cast<size_t>(MetricsSnapshot::kKernelVariants))
      return;
    PmuCell& c = pmu_[i][k][MetricsSnapshot::width_index(width_bits)];
    c.samples.fetch_add(d.samples, kRelaxed);
    c.wall_ns.fetch_add(d.wall_ns, kRelaxed);
    c.cycles.fetch_add(d.cycles, kRelaxed);
    c.instructions.fetch_add(d.instructions, kRelaxed);
    c.stall_frontend.fetch_add(d.stall_frontend, kRelaxed);
    c.stall_backend.fetch_add(d.stall_backend, kRelaxed);
    c.llc_misses.fetch_add(d.llc_misses, kRelaxed);
    c.branch_misses.fetch_add(d.branch_misses, kRelaxed);
  }

  /// The watchdog flagged a request as exceeding the latency SLO.
  void on_slow_request() noexcept { slow_requests_.fetch_add(1, kRelaxed); }

  // Serving front-door events (recorded by net::Server).
  void on_result_cache_hit() noexcept {
    result_cache_hits_.fetch_add(1, kRelaxed);
  }
  void on_result_cache_miss() noexcept {
    result_cache_misses_.fetch_add(1, kRelaxed);
  }
  void on_result_cache_eviction() noexcept {
    result_cache_evictions_.fetch_add(1, kRelaxed);
  }
  void on_coalesced() noexcept { coalesced_.fetch_add(1, kRelaxed); }
  void on_connection_accepted() noexcept {
    server_connections_.fetch_add(1, kRelaxed);
  }
  void on_frame_rx(uint64_t bytes) noexcept {
    server_frames_rx_.fetch_add(1, kRelaxed);
    server_bytes_rx_.fetch_add(bytes, kRelaxed);
  }
  void on_frame_tx(uint64_t bytes) noexcept {
    server_frames_tx_.fetch_add(1, kRelaxed);
    server_bytes_tx_.fetch_add(bytes, kRelaxed);
  }
  void on_protocol_error() noexcept {
    server_protocol_errors_.fetch_add(1, kRelaxed);
  }
  void on_http_scrape() noexcept {
    server_http_scrapes_.fetch_add(1, kRelaxed);
  }

  /// One completed request attributed to its QoS tier: scenario count plus
  /// end-to-end (queue wait + execution) latency. Out-of-range indices are
  /// dropped, mirroring on_kernel_completed.
  void on_tier_completed(unsigned tier, Scenario s, double total_s) noexcept {
    const auto t = static_cast<size_t>(tier);
    const auto sc = static_cast<size_t>(s);
    if (t >= static_cast<size_t>(MetricsSnapshot::kQosTiers) ||
        sc >= static_cast<size_t>(MetricsSnapshot::kScenarios))
      return;
    tier_requests_[t][sc].fetch_add(1, kRelaxed);
    tier_latency_[t].record(total_s);
  }

  /// Bucket one accepted query's length into its workload regime.
  void on_query_length(uint64_t residues) noexcept {
    query_length_bins_[MetricsSnapshot::length_bin_of(residues)].fetch_add(
        1, kRelaxed);
  }

  /// Attribute a completed request to the dispatch target that served it
  /// (resolved ISA + kernel family). Pass the ISA the kernel reported, not
  /// the requested one.
  void on_kernel_completed(simd::Isa isa, KernelVariant variant,
                           uint64_t cells) noexcept {
    const auto i = static_cast<size_t>(isa);
    const auto k = static_cast<size_t>(variant);
    if (i >= static_cast<size_t>(MetricsSnapshot::kIsas) ||
        k >= static_cast<size_t>(MetricsSnapshot::kKernelVariants))
      return;
    target_requests_[i][k].fetch_add(1, kRelaxed);
    target_cells_[i][k].fetch_add(cells, kRelaxed);
  }

  MetricsSnapshot snapshot() const noexcept;

 private:
  using Clock = std::chrono::steady_clock;
  static constexpr auto kRelaxed = std::memory_order_relaxed;
  // One-second buckets; > kWindowSeconds of them so an expired bucket is
  // reused before it could be confused with a live one.
  static constexpr int kWindowBuckets = 64;
  static constexpr uint64_t kNoEpoch = ~uint64_t{0};

  struct WindowBucket {
    std::atomic<uint64_t> epoch_s{kNoEpoch};  ///< second the bucket covers
    std::atomic<uint64_t> cells{0};
    std::atomic<uint64_t> kernel_ns{0};
  };

  struct PmuCell {
    std::atomic<uint64_t> samples{0};
    std::atomic<uint64_t> wall_ns{0};
    std::atomic<uint64_t> cycles{0};
    std::atomic<uint64_t> instructions{0};
    std::atomic<uint64_t> stall_frontend{0};
    std::atomic<uint64_t> stall_backend{0};
    std::atomic<uint64_t> llc_misses{0};
    std::atomic<uint64_t> branch_misses{0};
  };

  uint64_t elapsed_s() const noexcept {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::seconds>(Clock::now() - start_)
            .count());
  }

  void window_record(uint64_t cells, uint64_t ns) noexcept {
    const uint64_t now_s = elapsed_s();
    WindowBucket& b = window_[now_s % kWindowBuckets];
    uint64_t e = b.epoch_s.load(kRelaxed);
    if (e != now_s &&
        b.epoch_s.compare_exchange_strong(e, now_s, kRelaxed, kRelaxed)) {
      // This thread rolled the bucket over; reset it. A concurrent recorder
      // that raced between the CAS and these stores can lose its sample —
      // a once-per-second monitoring-grade race, not a data race.
      b.cells.store(0, kRelaxed);
      b.kernel_ns.store(0, kRelaxed);
    }
    b.cells.fetch_add(cells, kRelaxed);
    b.kernel_ns.fetch_add(ns, kRelaxed);
  }

  std::atomic<uint64_t> submitted_{0};
  std::atomic<uint64_t> completed_{0};
  std::atomic<uint64_t> rejected_queue_full_{0};
  std::atomic<uint64_t> deadline_expired_{0};
  std::atomic<uint64_t> invalid_request_{0};
  std::atomic<uint64_t> aborted_{0};
  std::array<std::atomic<uint64_t>, 3> by_scenario_{};
  std::atomic<uint64_t> cells_{0};
  std::atomic<uint64_t> kernel_ns_{0};
  std::atomic<uint64_t> batch_cells8_{0};
  std::atomic<uint64_t> batch_useful_cells8_{0};
  std::array<std::array<std::atomic<uint64_t>, MetricsSnapshot::kKernelVariants>,
             MetricsSnapshot::kIsas>
      target_requests_{};
  std::array<std::array<std::atomic<uint64_t>, MetricsSnapshot::kKernelVariants>,
             MetricsSnapshot::kIsas>
      target_cells_{};
  std::array<std::array<std::array<PmuCell, MetricsSnapshot::kWidths>,
                        MetricsSnapshot::kKernelVariants>,
             MetricsSnapshot::kIsas>
      pmu_{};
  std::atomic<uint64_t> slow_requests_{0};
  std::atomic<uint64_t> result_cache_hits_{0};
  std::atomic<uint64_t> result_cache_misses_{0};
  std::atomic<uint64_t> result_cache_evictions_{0};
  std::atomic<uint64_t> coalesced_{0};
  std::atomic<uint64_t> server_connections_{0};
  std::atomic<uint64_t> server_frames_rx_{0};
  std::atomic<uint64_t> server_frames_tx_{0};
  std::atomic<uint64_t> server_bytes_rx_{0};
  std::atomic<uint64_t> server_bytes_tx_{0};
  std::atomic<uint64_t> server_protocol_errors_{0};
  std::atomic<uint64_t> server_http_scrapes_{0};
  std::array<std::array<std::atomic<uint64_t>, MetricsSnapshot::kScenarios>,
             MetricsSnapshot::kQosTiers>
      tier_requests_{};
  std::array<std::atomic<uint64_t>, MetricsSnapshot::kLengthBins>
      query_length_bins_{};
  std::array<LatencyHistogram, MetricsSnapshot::kQosTiers> tier_latency_;
  std::array<WindowBucket, kWindowBuckets> window_{};
  LatencyHistogram queue_wait_;
  LatencyHistogram kernel_time_;
  Clock::time_point start_;
};

}  // namespace swve::perf
