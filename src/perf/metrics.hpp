// Service observability: lock-free counters and latency/GCUPS histograms.
//
// A MetricsRegistry is owned by service::AlignService and updated from its
// executor threads with relaxed atomics — recording a sample is a handful
// of fetch_adds, cheap enough to sit on the per-request path. snapshot()
// gives a consistent-enough point-in-time copy for dashboards/CLI dumps
// (counters are read individually; exactness across counters is not
// required for monitoring).
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <string>

namespace swve::perf {

/// Lock-free log2-scale latency histogram. Bucket 0 holds samples < 1 us;
/// bucket i (i >= 1) holds samples in [2^(i-1), 2^i) microseconds; the last
/// bucket absorbs everything beyond ~35 minutes.
class LatencyHistogram {
 public:
  static constexpr int kBuckets = 32;

  void record(double seconds) noexcept;

  struct Snapshot {
    uint64_t count = 0;
    double mean_s = 0;
    double max_s = 0;
    double p50_s = 0;
    double p90_s = 0;
    double p99_s = 0;
    std::array<uint64_t, kBuckets> buckets{};
  };
  Snapshot snapshot() const noexcept;

 private:
  std::array<std::atomic<uint64_t>, kBuckets> buckets_{};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_us_{0};
  std::atomic<uint64_t> max_us_{0};
};

/// Point-in-time copy of a MetricsRegistry.
struct MetricsSnapshot {
  // Request lifecycle counters.
  uint64_t submitted = 0;           ///< accepted into the queue
  uint64_t completed = 0;           ///< future fulfilled with a result
  uint64_t rejected_queue_full = 0; ///< backpressure rejections at submit
  uint64_t deadline_expired = 0;    ///< expired in queue or mid-run
  uint64_t invalid_request = 0;     ///< failed validation (bad config/empty)
  uint64_t aborted = 0;             ///< failed at shutdown before running

  // Completed requests by scenario.
  uint64_t pairwise = 0;
  uint64_t search = 0;
  uint64_t batch = 0;

  // Aggregate kernel work (completed requests only).
  uint64_t cells = 0;               ///< DP cells computed
  double kernel_seconds = 0;        ///< summed kernel (execution) time

  LatencyHistogram::Snapshot queue_wait;
  LatencyHistogram::Snapshot kernel_time;

  /// Aggregate throughput over every completed request.
  double aggregate_gcups() const noexcept {
    return kernel_seconds > 0
               ? static_cast<double>(cells) / kernel_seconds / 1e9
               : 0.0;
  }

  /// Human-readable multi-line dump (the `swve --metrics` format).
  std::string to_string() const;
};

/// Atomic counters + histograms; one per AlignService. All members are
/// individually thread-safe; see MetricsSnapshot for the read side.
class MetricsRegistry {
 public:
  enum class Scenario : int { Pairwise = 0, Search = 1, Batch = 2 };

  void on_submitted() noexcept { submitted_.fetch_add(1, kRelaxed); }
  void on_rejected_queue_full() noexcept {
    rejected_queue_full_.fetch_add(1, kRelaxed);
  }
  void on_deadline_expired() noexcept {
    deadline_expired_.fetch_add(1, kRelaxed);
  }
  void on_invalid_request() noexcept { invalid_request_.fetch_add(1, kRelaxed); }
  void on_aborted() noexcept { aborted_.fetch_add(1, kRelaxed); }

  void on_queue_wait(double seconds) noexcept { queue_wait_.record(seconds); }

  void on_completed(Scenario s, double kernel_seconds,
                    uint64_t cells) noexcept {
    completed_.fetch_add(1, kRelaxed);
    by_scenario_[static_cast<int>(s)].fetch_add(1, kRelaxed);
    cells_.fetch_add(cells, kRelaxed);
    kernel_ns_.fetch_add(static_cast<uint64_t>(kernel_seconds * 1e9), kRelaxed);
    kernel_time_.record(kernel_seconds);
  }

  MetricsSnapshot snapshot() const noexcept;

 private:
  static constexpr auto kRelaxed = std::memory_order_relaxed;

  std::atomic<uint64_t> submitted_{0};
  std::atomic<uint64_t> completed_{0};
  std::atomic<uint64_t> rejected_queue_full_{0};
  std::atomic<uint64_t> deadline_expired_{0};
  std::atomic<uint64_t> invalid_request_{0};
  std::atomic<uint64_t> aborted_{0};
  std::array<std::atomic<uint64_t>, 3> by_scenario_{};
  std::atomic<uint64_t> cells_{0};
  std::atomic<uint64_t> kernel_ns_{0};
  LatencyHistogram queue_wait_;
  LatencyHistogram kernel_time_;
};

}  // namespace swve::perf
