#include "perf/topdown.hpp"

#include <algorithm>
#include <cstring>
#include <vector>

#if defined(__linux__)
#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/syscall.h>
#include <unistd.h>
#endif

#include "perf/freq_monitor.hpp"
#include "perf/timer.hpp"

namespace swve::perf {

#if defined(__linux__)

namespace {

struct Counter {
  int fd = -1;
  explicit Counter(uint32_t type, uint64_t config) {
    perf_event_attr attr{};
    attr.size = sizeof(attr);
    attr.type = type;
    attr.config = config;
    attr.disabled = 1;
    attr.exclude_kernel = 1;
    attr.exclude_hv = 1;
    fd = static_cast<int>(syscall(SYS_perf_event_open, &attr, 0, -1, -1, 0));
  }
  ~Counter() {
    if (fd >= 0) close(fd);
  }
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;
  bool ok() const { return fd >= 0; }
  void start() const {
    if (fd >= 0) {
      ioctl(fd, PERF_EVENT_IOC_RESET, 0);
      ioctl(fd, PERF_EVENT_IOC_ENABLE, 0);
    }
  }
  uint64_t stop() const {
    if (fd < 0) return 0;
    ioctl(fd, PERF_EVENT_IOC_DISABLE, 0);
    uint64_t v = 0;
    if (read(fd, &v, sizeof(v)) != sizeof(v)) v = 0;
    return v;
  }
};

}  // namespace

bool perf_counters_available() {
  Counter c(PERF_TYPE_HARDWARE, PERF_COUNT_HW_CPU_CYCLES);
  if (!c.ok()) return false;
  c.start();
  volatile uint64_t x = 0;
  for (int i = 0; i < 10000; ++i) x = x + 1;
  return c.stop() > 0;
}

static bool topdown_hw(const std::function<void()>& workload, TopDownResult& out) {
  Counter cycles(PERF_TYPE_HARDWARE, PERF_COUNT_HW_CPU_CYCLES);
  Counter instrs(PERF_TYPE_HARDWARE, PERF_COUNT_HW_INSTRUCTIONS);
  Counter stall_be(PERF_TYPE_HARDWARE, PERF_COUNT_HW_STALLED_CYCLES_BACKEND);
  Counter stall_fe(PERF_TYPE_HARDWARE, PERF_COUNT_HW_STALLED_CYCLES_FRONTEND);
  Counter cache_miss(PERF_TYPE_HARDWARE, PERF_COUNT_HW_CACHE_MISSES);
  Counter branch_miss(PERF_TYPE_HARDWARE, PERF_COUNT_HW_BRANCH_MISSES);
  if (!cycles.ok() || !instrs.ok()) return false;

  cycles.start();
  instrs.start();
  stall_be.start();
  stall_fe.start();
  cache_miss.start();
  branch_miss.start();
  workload();
  const uint64_t bm = branch_miss.stop();
  const uint64_t cm = cache_miss.stop();
  const uint64_t sf = stall_fe.stop();
  const uint64_t sb = stall_be.stop();
  const uint64_t in = instrs.stop();
  const uint64_t cy = cycles.stop();
  if (cy == 0 || in == 0) return false;

  constexpr double kIssueWidth = 4.0;  // slots per cycle, Intel big cores
  const double slots = kIssueWidth * static_cast<double>(cy);
  out.cycles = cy;
  out.instructions = in;
  out.ipc = static_cast<double>(in) / static_cast<double>(cy);
  out.retiring = std::min(1.0, static_cast<double>(in) / slots);
  out.frontend_bound = sf ? std::min(1.0 - out.retiring,
                                     kIssueWidth * static_cast<double>(sf) / slots)
                          : 0.0;
  // ~20 wasted slots per mispredicted branch (flush depth), capped.
  out.bad_speculation =
      std::min(0.3, 20.0 * static_cast<double>(bm) / slots);
  out.backend_bound = std::max(
      0.0, 1.0 - out.retiring - out.frontend_bound - out.bad_speculation);
  // Memory share of backend: ~50 cycles per LLC miss as stall proxy.
  double mem_cycles = 50.0 * static_cast<double>(cm);
  double backend_cycles =
      sb ? static_cast<double>(sb) : out.backend_bound * static_cast<double>(cy);
  double mem_frac =
      backend_cycles > 0 ? std::min(1.0, mem_cycles / backend_cycles) : 0.0;
  out.memory_bound = out.backend_bound * mem_frac;
  out.core_bound = out.backend_bound - out.memory_bound;
  out.hardware_counters = true;
  out.source = "perf_event";
  return true;
}

#else
bool perf_counters_available() { return false; }
static bool topdown_hw(const std::function<void()>&, TopDownResult&) { return false; }
#endif

double streaming_bandwidth_gbps() {
  static const double bw = [] {
    constexpr size_t kBytes = size_t{64} << 20;
    std::vector<uint64_t> buf(kBytes / 8, 1);
    // Warm touch, then time a read-accumulate sweep.
    uint64_t acc = 0;
    for (uint64_t v : buf) acc += v;
    Stopwatch sw;
    constexpr int kReps = 4;
    for (int r = 0; r < kReps; ++r)
      for (uint64_t v : buf) acc += v;
    double secs = sw.seconds();
    // Keep `acc` alive.
    if (acc == 0xdeadbeef) secs += 1e-12;
    return static_cast<double>(kBytes) * kReps / secs / 1e9;
  }();
  return bw;
}

// Analytical fallback (DESIGN.md §4, substitution 3): the caller supplies
// the workload's retired-instruction and memory-traffic estimates; cycles
// come from the frequency monitor and wall clock; memory-bound slots are
// the fraction of time the traffic would take at measured streaming
// bandwidth; the remaining non-retiring slots are core bound. Front-end
// and bad-speculation are ~0 for these branch-free kernels.
static void topdown_model(const std::function<void()>& workload,
                          const ModelInputs& model, TopDownResult& out) {
  const double ghz = model.ghz > 0 ? model.ghz : measure_frequency(30).ghz;
  Stopwatch sw;
  workload();
  const double secs = sw.seconds();
  constexpr double kIssueWidth = 4.0;
  const double cycles = std::max(1.0, ghz * 1e9 * secs);
  const double slots = kIssueWidth * cycles;
  out.cycles = static_cast<uint64_t>(cycles);
  out.instructions = model.instructions;
  out.ipc = static_cast<double>(model.instructions) / cycles;
  out.retiring = std::min(1.0, static_cast<double>(model.instructions) / slots);
  out.frontend_bound = 0;
  out.bad_speculation = 0;
  out.backend_bound = std::max(0.0, 1.0 - out.retiring);
  double mem_frac;
  if (model.memory_fraction >= 0) {
    mem_frac = std::min(1.0, model.memory_fraction);
  } else {
    const double bw = streaming_bandwidth_gbps();
    const double mem_secs =
        bw > 0 ? static_cast<double>(model.mem_bytes) / (bw * 1e9) : 0.0;
    mem_frac = secs > 0 ? std::min(1.0, mem_secs / secs) : 0.0;
  }
  out.memory_bound = std::min(out.backend_bound, mem_frac);
  out.core_bound = out.backend_bound - out.memory_bound;
  out.hardware_counters = false;
  out.source = "model";
}

TopDownResult topdown_analyze(const std::function<void()>& workload) {
  return topdown_analyze(workload, ModelInputs{});
}

TopDownResult topdown_analyze(const std::function<void()>& workload,
                              const ModelInputs& model) {
  TopDownResult out;
  if (topdown_hw(workload, out)) return out;
  topdown_model(workload, model, out);
  return out;
}

}  // namespace swve::perf
