// Top-down pipeline-slot analysis — the VTune substitute for Fig 12.
//
// The paper uses Intel VTune to classify pipeline slots into retiring /
// front-end bound / bad speculation / back-end bound, and splits back-end
// into memory-bound vs core-bound. This module reproduces that breakdown:
//   * when the kernel permits, hardware counters are read through
//     perf_event_open (cycles, instructions, backend/frontend stall cycles,
//     cache misses);
//   * otherwise (common in containers) an analytical model derives the
//     same categories from measured IPC against the machine's issue width
//     and a cache-miss proxy measured by timing a strided-load probe.
// DESIGN.md §4 (substitution 3) documents why the *relative* claims of
// Fig 12 — submatrix => core bound; 8-18% memory bound; hyperthreading
// raises slot efficiency — survive this substitution.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

namespace swve::perf {

struct TopDownResult {
  // Fractions of pipeline slots; sum ~= 1 when measured.
  double retiring = 0;
  double frontend_bound = 0;
  double bad_speculation = 0;
  double backend_bound = 0;
  // Split of backend_bound:
  double memory_bound = 0;
  double core_bound = 0;

  double ipc = 0;
  uint64_t instructions = 0;
  uint64_t cycles = 0;
  bool hardware_counters = false;  ///< false => analytical model
  std::string source;              ///< "perf_event" or "model"
};

/// Run `workload` once and produce the slot breakdown.
TopDownResult topdown_analyze(const std::function<void()>& workload);

/// Caller-supplied estimates for the analytical model (used when hardware
/// counters are unavailable): how many instructions the workload retires
/// and how many bytes of DP state it moves. Kernel benches compute these
/// from per-cell op counts; see bench/fig12_microarch.
struct ModelInputs {
  uint64_t instructions = 0;
  uint64_t mem_bytes = 0;
  /// Effective core frequency (GHz) under the workload's concurrency level;
  /// 0 = measure on an idle machine before the workload runs (wrong when
  /// sibling threads will drop the frequency — pass the loaded value).
  double ghz = 0;
  /// Optional empirical memory share: fraction of runtime attributable to
  /// the memory hierarchy, measured by the caller (e.g. streaming vs
  /// hot-cache run of the same kernel). < 0 = use the bandwidth bound.
  double memory_fraction = -1;
};

/// Like topdown_analyze but falls back to the documented analytical model
/// with the supplied estimates instead of returning an empty breakdown.
TopDownResult topdown_analyze(const std::function<void()>& workload,
                              const ModelInputs& model);

/// Measured streaming bandwidth of this machine (GB/s), cached after the
/// first call; the model's memory-bound denominator.
double streaming_bandwidth_gbps();

/// True if perf_event counters are usable in this environment.
bool perf_counters_available();

}  // namespace swve::perf
