// CPU-frequency microbenchmark (§IV-E of the paper).
//
// The paper found that per-core throughput degrades with thread count not
// because of memory contention but because the operating frequency drops in
// multi-core operation, and recalibrated its scaling figures accordingly.
// This monitor estimates effective frequency by timing a dependent-add spin
// kernel whose retired-ops-per-cycle is 1 by construction (a serial integer
// dependency chain), optionally while other threads run the same kernel.
#pragma once

#include <cstdint>
#include <vector>

namespace swve::perf {

struct FreqSample {
  double ghz = 0;       ///< effective frequency of the measured thread
  double tsc_ghz = 0;   ///< invariant-TSC rate observed (0 if no rdtsc)
};

/// Measure effective frequency on the calling thread for ~`millis` ms.
FreqSample measure_frequency(double millis = 50);

struct FreqScalingReport {
  /// One entry per tested concurrency level (1..max_threads).
  std::vector<int> threads;
  std::vector<double> ghz_mean;  ///< mean effective GHz across busy threads
  std::vector<double> ghz_min;
};

/// Run the spin kernel on 1..max_threads concurrent threads and record the
/// effective per-thread frequency at each level — the recalibration input
/// for Fig 11.
FreqScalingReport frequency_scaling(int max_threads, double millis_per_level = 60);

/// Serial dependent-add chain: returns the number of adds executed; the
/// value accumulates so the optimizer cannot elide the chain.
uint64_t spin_chain(uint64_t iters, uint64_t* sink);

}  // namespace swve::perf
