// CPU-frequency microbenchmark (§IV-E of the paper).
//
// The paper found that per-core throughput degrades with thread count not
// because of memory contention but because the operating frequency drops in
// multi-core operation, and recalibrated its scaling figures accordingly.
// This monitor estimates effective frequency by timing a dependent-add spin
// kernel whose retired-ops-per-cycle is 1 by construction (a serial integer
// dependency chain), optionally while other threads run the same kernel.
#pragma once

#include <cstdint>
#include <vector>

namespace swve::perf {

struct FreqSample {
  double ghz = 0;       ///< effective frequency of the measured thread
  double tsc_ghz = 0;   ///< invariant-TSC rate observed (0 if no rdtsc)
};

/// Measure effective frequency on the calling thread for ~`millis` ms.
FreqSample measure_frequency(double millis = 50);

struct FreqScalingReport {
  /// One entry per tested concurrency level (1..max_threads).
  std::vector<int> threads;
  std::vector<double> ghz_mean;  ///< mean effective GHz across busy threads
  std::vector<double> ghz_min;
};

/// Run the spin kernel on 1..max_threads concurrent threads and record the
/// effective per-thread frequency at each level — the recalibration input
/// for Fig 11.
FreqScalingReport frequency_scaling(int max_threads, double millis_per_level = 60);

/// Serial dependent-add chain: returns the number of adds executed; the
/// value accumulates so the optimizer cannot elide the chain.
uint64_t spin_chain(uint64_t iters, uint64_t* sink);

/// The kernel's own view of cpu N's current clock, read from
/// /sys/devices/system/cpu/cpuN/cpufreq/scaling_cur_freq. Returns 0 — and
/// never throws or aborts — when the node is missing: offline CPUs,
/// heterogeneous parts with partial cpufreq coverage, VMs and containers
/// without the sysfs tree at all.
uint64_t cpufreq_khz(int cpu) noexcept;

/// Scan of cpus [0, max_cpus): min/max/mean of the nodes that answered.
/// CPUs without a readable cpufreq node are skipped, not errors — a
/// summary with cpus_read == 0 means "no cpufreq here", which callers
/// (obs::Sampler) report as a 0 gauge rather than dying.
struct CpufreqSummary {
  int cpus_scanned = 0;  ///< how many CPU indices were probed
  int cpus_read = 0;     ///< how many had a readable scaling_cur_freq
  uint64_t min_khz = 0;
  uint64_t max_khz = 0;
  double mean_khz = 0;
};
CpufreqSummary cpufreq_summary(int max_cpus) noexcept;

}  // namespace swve::perf
