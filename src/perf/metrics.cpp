#include "perf/metrics.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdio>

namespace swve::perf {

namespace {

constexpr auto kRelaxed = std::memory_order_relaxed;

// Bucket index for a microsecond sample: 0 for <1us, else 1+floor(log2(us)),
// clamped to the last bucket.
int bucket_of(uint64_t us) noexcept {
  if (us == 0) return 0;
  int b = std::bit_width(us);  // us in [2^(b-1), 2^b)
  return std::min(b, LatencyHistogram::kBuckets - 1);
}

// Percentile estimate over a bucket array: find the bucket the rank lands
// in, then interpolate log-linearly inside it (bucket 0, [0, 1us),
// interpolates linearly). The raw upper bound could overstate by up to 2x;
// the interpolated value is clamped to `max_s` so a lone sample never
// reports above it. Shared by live snapshots and by the recomputation in
// Snapshot::subtract / Snapshot::merge.
double bucket_percentile(
    const std::array<uint64_t, LatencyHistogram::kBuckets>& buckets,
    uint64_t count, double max_s, double q) noexcept {
  if (count == 0) return 0.0;
  const uint64_t rank = std::max<uint64_t>(
      1, static_cast<uint64_t>(q * static_cast<double>(count) + 0.5));
  uint64_t cum = 0;
  for (int i = 0; i < LatencyHistogram::kBuckets; ++i) {
    const uint64_t n = buckets[i];
    if (n > 0 && cum + n >= rank) {
      const double frac =
          static_cast<double>(rank - cum) / static_cast<double>(n);
      const double value =
          i == 0 ? frac * 1e-6
                 : LatencyHistogram::bucket_upper_seconds(i - 1) *
                       std::exp2(frac);
      return std::min(value, max_s);
    }
    cum += n;
  }
  return max_s;
}

void recompute_percentiles(LatencyHistogram::Snapshot& s) noexcept {
  s.p50_s = bucket_percentile(s.buckets, s.count, s.max_s, 0.50);
  s.p90_s = bucket_percentile(s.buckets, s.count, s.max_s, 0.90);
  s.p99_s = bucket_percentile(s.buckets, s.count, s.max_s, 0.99);
}

std::string format_hist(const char* name, const LatencyHistogram::Snapshot& h) {
  std::string out = name;
  out += ": n=" + std::to_string(h.count);
  if (h.count > 0) {
    out += " mean=" + format_seconds(h.mean_s);
    out += " p50=" + format_seconds(h.p50_s);
    out += " p90=" + format_seconds(h.p90_s);
    out += " p99=" + format_seconds(h.p99_s);
    out += " max=" + format_seconds(h.max_s);
  }
  out += "\n";
  return out;
}

}  // namespace

std::string format_seconds(double s) {
  char buf[32];
  // Promote at the rounding seam of each unit: "%.0f" of 999.5us would
  // print "1000us" and "%.2f" of 999.995ms would print "1000.00ms".
  if (s < 0.9995e-3)
    std::snprintf(buf, sizeof buf, "%.0fus", s * 1e6);
  else if (s < 0.999995)
    std::snprintf(buf, sizeof buf, "%.2fms", s * 1e3);
  else
    std::snprintf(buf, sizeof buf, "%.3fs", s);
  return buf;
}

const char* kernel_variant_name(KernelVariant v) noexcept {
  switch (v) {
    case KernelVariant::Diagonal: return "diagonal";
    case KernelVariant::Batch32: return "batch32";
    case KernelVariant::Batch32x2: return "batch32x2";
    case KernelVariant::Batch32x4: return "batch32x4";
  }
  return "?";
}

void LatencyHistogram::record(double seconds) noexcept {
  if (seconds < 0) seconds = 0;
  const uint64_t us = static_cast<uint64_t>(seconds * 1e6);
  buckets_[bucket_of(us)].fetch_add(1, kRelaxed);
  count_.fetch_add(1, kRelaxed);
  sum_us_.fetch_add(us, kRelaxed);
  uint64_t prev = max_us_.load(kRelaxed);
  while (us > prev && !max_us_.compare_exchange_weak(prev, us, kRelaxed)) {
  }
}

LatencyHistogram::Snapshot LatencyHistogram::snapshot() const noexcept {
  Snapshot s;
  for (int i = 0; i < kBuckets; ++i) s.buckets[i] = buckets_[i].load(kRelaxed);
  s.count = count_.load(kRelaxed);
  s.max_s = static_cast<double>(max_us_.load(kRelaxed)) * 1e-6;
  if (s.count == 0) return s;
  s.mean_s = static_cast<double>(sum_us_.load(kRelaxed)) * 1e-6 /
             static_cast<double>(s.count);
  recompute_percentiles(s);
  return s;
}

uint64_t LatencyHistogram::Snapshot::count_over(double seconds) const noexcept {
  uint64_t over = 0;
  for (int i = 0; i < kBuckets; ++i)
    if (bucket_upper_seconds(i) > seconds) over += buckets[i];
  return over;
}

LatencyHistogram::Snapshot LatencyHistogram::Snapshot::subtract(
    const Snapshot& now, const Snapshot& prev) noexcept {
  Snapshot d;
  for (int i = 0; i < kBuckets; ++i) {
    d.buckets[i] =
        now.buckets[i] >= prev.buckets[i] ? now.buckets[i] - prev.buckets[i]
                                          : 0;
    d.count += d.buckets[i];
  }
  if (d.count == 0) return d;  // empty window: all stats stay zero
  // Recover the interval's sample sum from the two means; clamp at zero so
  // a count reset cannot manufacture a negative mean.
  const double sum_now = now.mean_s * static_cast<double>(now.count);
  const double sum_prev = prev.mean_s * static_cast<double>(prev.count);
  d.mean_s = std::max(0.0, sum_now - sum_prev) / static_cast<double>(d.count);
  d.max_s = now.max_s;  // lifetime max: an upper bound for the window
  recompute_percentiles(d);
  return d;
}

LatencyHistogram::Snapshot LatencyHistogram::Snapshot::merge(
    const Snapshot& a, const Snapshot& b) noexcept {
  Snapshot m;
  for (int i = 0; i < kBuckets; ++i) {
    m.buckets[i] = a.buckets[i] + b.buckets[i];
    m.count += m.buckets[i];
  }
  if (m.count == 0) return m;
  m.mean_s = (a.mean_s * static_cast<double>(a.count) +
              b.mean_s * static_cast<double>(b.count)) /
             static_cast<double>(m.count);
  m.max_s = std::max(a.max_s, b.max_s);
  recompute_percentiles(m);
  return m;
}

MetricsSnapshot MetricsRegistry::snapshot() const noexcept {
  MetricsSnapshot s;
  s.submitted = submitted_.load(kRelaxed);
  s.completed = completed_.load(kRelaxed);
  s.rejected_queue_full = rejected_queue_full_.load(kRelaxed);
  s.deadline_expired = deadline_expired_.load(kRelaxed);
  s.invalid_request = invalid_request_.load(kRelaxed);
  s.aborted = aborted_.load(kRelaxed);
  s.pairwise = by_scenario_[0].load(kRelaxed);
  s.search = by_scenario_[1].load(kRelaxed);
  s.batch = by_scenario_[2].load(kRelaxed);
  s.cells = cells_.load(kRelaxed);
  s.kernel_seconds = static_cast<double>(kernel_ns_.load(kRelaxed)) * 1e-9;
  s.batch_cells8 = batch_cells8_.load(kRelaxed);
  s.batch_useful_cells8 = batch_useful_cells8_.load(kRelaxed);
  for (int i = 0; i < MetricsSnapshot::kIsas; ++i) {
    for (int k = 0; k < MetricsSnapshot::kKernelVariants; ++k) {
      s.target_requests[i][k] = target_requests_[i][k].load(kRelaxed);
      s.target_cells[i][k] = target_cells_[i][k].load(kRelaxed);
      for (int w = 0; w < MetricsSnapshot::kWidths; ++w) {
        const PmuCell& c = pmu_[i][k][w];
        PmuSample& o = s.pmu[i][k][w];
        o.samples = c.samples.load(kRelaxed);
        o.wall_ns = c.wall_ns.load(kRelaxed);
        o.cycles = c.cycles.load(kRelaxed);
        o.instructions = c.instructions.load(kRelaxed);
        o.stall_frontend = c.stall_frontend.load(kRelaxed);
        o.stall_backend = c.stall_backend.load(kRelaxed);
        o.llc_misses = c.llc_misses.load(kRelaxed);
        o.branch_misses = c.branch_misses.load(kRelaxed);
      }
    }
  }
  s.slow_requests = slow_requests_.load(kRelaxed);
  s.result_cache_hits = result_cache_hits_.load(kRelaxed);
  s.result_cache_misses = result_cache_misses_.load(kRelaxed);
  s.result_cache_evictions = result_cache_evictions_.load(kRelaxed);
  s.coalesced = coalesced_.load(kRelaxed);
  s.server_connections = server_connections_.load(kRelaxed);
  s.server_frames_rx = server_frames_rx_.load(kRelaxed);
  s.server_frames_tx = server_frames_tx_.load(kRelaxed);
  s.server_bytes_rx = server_bytes_rx_.load(kRelaxed);
  s.server_bytes_tx = server_bytes_tx_.load(kRelaxed);
  s.server_protocol_errors = server_protocol_errors_.load(kRelaxed);
  s.server_http_scrapes = server_http_scrapes_.load(kRelaxed);
  for (int t = 0; t < MetricsSnapshot::kQosTiers; ++t) {
    for (int sc = 0; sc < MetricsSnapshot::kScenarios; ++sc)
      s.tier_requests[t][sc] = tier_requests_[t][sc].load(kRelaxed);
    s.tier_latency[t] = tier_latency_[t].snapshot();
  }
  for (int b = 0; b < MetricsSnapshot::kLengthBins; ++b)
    s.query_length_bins[b] = query_length_bins_[b].load(kRelaxed);
  const uint64_t now_s = elapsed_s();
  uint64_t wcells = 0, wns = 0;
  for (const WindowBucket& b : window_) {
    const uint64_t e = b.epoch_s.load(kRelaxed);
    if (e != kNoEpoch && e <= now_s &&
        now_s - e < static_cast<uint64_t>(MetricsSnapshot::kWindowSeconds)) {
      wcells += b.cells.load(kRelaxed);
      wns += b.kernel_ns.load(kRelaxed);
    }
  }
  s.window_cells = wcells;
  s.window_kernel_seconds = static_cast<double>(wns) * 1e-9;
  s.uptime_seconds =
      std::chrono::duration<double>(Clock::now() - start_).count();
  s.queue_wait = queue_wait_.snapshot();
  s.kernel_time = kernel_time_.snapshot();
  return s;
}

std::string MetricsSnapshot::to_string() const {
  std::string out;
  out += "== swve service metrics ==\n";
  out += "requests: submitted " + std::to_string(submitted) + ", completed " +
         std::to_string(completed) + ", rejected(queue-full) " +
         std::to_string(rejected_queue_full) + ", deadline-expired " +
         std::to_string(deadline_expired) + ", invalid " +
         std::to_string(invalid_request) + ", aborted " +
         std::to_string(aborted) + "\n";
  out += "scenarios: pairwise " + std::to_string(pairwise) + ", search " +
         std::to_string(search) + ", batch " + std::to_string(batch) + "\n";
  char line[160];
  std::snprintf(line, sizeof line,
                "kernel: %llu cells in %.3f s, aggregate %.2f GCUPS\n",
                static_cast<unsigned long long>(cells), kernel_seconds,
                aggregate_gcups());
  out += line;
  std::snprintf(line, sizeof line,
                "window(%ds): %llu cells in %.3f s, %.2f GCUPS\n",
                kWindowSeconds, static_cast<unsigned long long>(window_cells),
                window_kernel_seconds, window_gcups());
  out += line;
  for (int i = 0; i < kIsas; ++i) {
    for (int k = 0; k < kKernelVariants; ++k) {
      if (target_requests[i][k] == 0) continue;
      std::snprintf(line, sizeof line, "target %s/%s: %llu requests, %llu cells\n",
                    simd::isa_name(static_cast<simd::Isa>(i)),
                    kernel_variant_name(static_cast<KernelVariant>(k)),
                    static_cast<unsigned long long>(target_requests[i][k]),
                    static_cast<unsigned long long>(target_cells[i][k]));
      out += line;
    }
  }
  if (pmu_unavailable) {
    out += "pmu: unavailable (software-clock fallback)\n";
  }
  for (int i = 0; i < kIsas; ++i) {
    for (int k = 0; k < kKernelVariants; ++k) {
      for (int w = 0; w < kWidths; ++w) {
        const PmuSample& c = pmu[i][k][w];
        if (c.samples == 0 || c.cycles == 0) continue;
        std::snprintf(line, sizeof line,
                      "pmu %s/%s/w%u: %llu spans, ipc %.2f, stalls fe %.1f%% "
                      "be %.1f%%, %.2f GHz\n",
                      simd::isa_name(static_cast<simd::Isa>(i)),
                      kernel_variant_name(static_cast<KernelVariant>(k)),
                      width_bits_at(w),
                      static_cast<unsigned long long>(c.samples), c.ipc(),
                      100.0 * c.frontend_stall_fraction(),
                      100.0 * c.backend_stall_fraction(), c.effective_ghz());
        out += line;
      }
    }
  }
  if (const double ratio = avx512_frequency_ratio(); ratio > 0) {
    std::snprintf(line, sizeof line,
                  "pmu avx512 frequency ratio: %.2f%s\n", ratio,
                  ratio < 0.9 ? " (license throttling suspected)" : "");
    out += line;
  }
  if (slow_requests > 0) {
    out += "slow requests (SLO breaches): " + std::to_string(slow_requests) +
           "\n";
  }
  if (trace_recorded > 0) {
    std::snprintf(line, sizeof line,
                  "trace: %llu events recorded, dropped wrap %llu, torn %llu, "
                  "overflow %llu\n",
                  static_cast<unsigned long long>(trace_recorded),
                  static_cast<unsigned long long>(trace_dropped_wrap),
                  static_cast<unsigned long long>(trace_dropped_torn),
                  static_cast<unsigned long long>(trace_dropped_overflow));
    out += line;
  }
  if (batch_cells8 > 0) {
    std::snprintf(line, sizeof line,
                  "batch packing: %llu cells8, %llu useful, efficiency %.1f%%\n",
                  static_cast<unsigned long long>(batch_cells8),
                  static_cast<unsigned long long>(batch_useful_cells8),
                  100.0 * batch_packing_efficiency());
    out += line;
  }
  if (query_cache_hits + query_cache_misses + workspace_creates > 0) {
    std::snprintf(line, sizeof line,
                  "query-cache: %llu hits, %llu misses (%.1f%% hit), "
                  "%llu evictions, %llu entries, ws reuse %llu/%llu\n",
                  static_cast<unsigned long long>(query_cache_hits),
                  static_cast<unsigned long long>(query_cache_misses),
                  100.0 * query_cache_hit_rate(),
                  static_cast<unsigned long long>(query_cache_evictions),
                  static_cast<unsigned long long>(query_cache_entries),
                  static_cast<unsigned long long>(workspace_reuses),
                  static_cast<unsigned long long>(workspace_reuses +
                                                  workspace_creates));
    out += line;
  }
  if (pool_threads > 0) {
    std::snprintf(line, sizeof line,
                  "pool: %u threads, %llu jobs, busy %.3f s, utilization %.1f%%\n",
                  pool_threads, static_cast<unsigned long long>(pool_jobs),
                  pool_busy_seconds, 100.0 * pool_utilization());
    out += line;
  }
  if (server_connections > 0 || server_frames_rx > 0) {
    std::snprintf(line, sizeof line,
                  "server: %llu conns (%llu active), frames rx/tx %llu/%llu, "
                  "bytes rx/tx %llu/%llu, protocol errors %llu, scrapes %llu\n",
                  static_cast<unsigned long long>(server_connections),
                  static_cast<unsigned long long>(server_active_connections),
                  static_cast<unsigned long long>(server_frames_rx),
                  static_cast<unsigned long long>(server_frames_tx),
                  static_cast<unsigned long long>(server_bytes_rx),
                  static_cast<unsigned long long>(server_bytes_tx),
                  static_cast<unsigned long long>(server_protocol_errors),
                  static_cast<unsigned long long>(server_http_scrapes));
    out += line;
  }
  for (int t = 0; t < kQosTiers; ++t) {
    uint64_t total = 0;
    for (int sc = 0; sc < kScenarios; ++sc) total += tier_requests[t][sc];
    if (total == 0) continue;
    std::snprintf(line, sizeof line,
                  "tier %s: %llu requests (pairwise %llu, search %llu, "
                  "batch %llu), p50 %s, p99 %s\n",
                  qos_tier_label(t), static_cast<unsigned long long>(total),
                  static_cast<unsigned long long>(tier_requests[t][0]),
                  static_cast<unsigned long long>(tier_requests[t][1]),
                  static_cast<unsigned long long>(tier_requests[t][2]),
                  format_seconds(tier_latency[t].p50_s).c_str(),
                  format_seconds(tier_latency[t].p99_s).c_str());
    out += line;
  }
  {
    uint64_t qtotal = 0;
    for (int b = 0; b < kLengthBins; ++b) qtotal += query_length_bins[b];
    if (qtotal > 0) {
      out += "query lengths:";
      for (int b = 0; b < kLengthBins; ++b) {
        if (query_length_bins[b] == 0) continue;
        std::snprintf(line, sizeof line, " [>=%llu]=%llu",
                      static_cast<unsigned long long>(length_bin_lower(b)),
                      static_cast<unsigned long long>(query_length_bins[b]));
        out += line;
      }
      out += "\n";
    }
  }
  if (log_records + log_dropped_overflow + log_dropped_threads +
          log_suppressed >
      0) {
    std::snprintf(line, sizeof line,
                  "log: %llu records, dropped overflow %llu, threads %llu, "
                  "rate-limited %llu\n",
                  static_cast<unsigned long long>(log_records),
                  static_cast<unsigned long long>(log_dropped_overflow),
                  static_cast<unsigned long long>(log_dropped_threads),
                  static_cast<unsigned long long>(log_suppressed));
    out += line;
  }
  if (result_cache_hits + result_cache_misses + coalesced > 0) {
    std::snprintf(line, sizeof line,
                  "result-cache: %llu hits, %llu misses (%.1f%% hit), "
                  "%llu evictions, %llu entries; coalesced %llu "
                  "(dedup %.1f%%)\n",
                  static_cast<unsigned long long>(result_cache_hits),
                  static_cast<unsigned long long>(result_cache_misses),
                  100.0 * result_cache_hit_rate(),
                  static_cast<unsigned long long>(result_cache_evictions),
                  static_cast<unsigned long long>(result_cache_entries),
                  static_cast<unsigned long long>(coalesced),
                  100.0 * dedup_ratio());
    out += line;
  }
  out += format_hist("queue-wait", queue_wait);
  out += format_hist("kernel-time", kernel_time);
  return out;
}

}  // namespace swve::perf
