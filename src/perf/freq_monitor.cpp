#include "perf/freq_monitor.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <thread>

#if defined(__x86_64__)
#include <x86intrin.h>
#endif

namespace swve::perf {

uint64_t spin_chain(uint64_t iters, uint64_t* sink) {
  // 8 dependent adds per loop iteration; each add is 1 cycle on every
  // x86-64 core of the last two decades, so adds/second ~= core frequency.
  // The asm barrier keeps the compiler from collapsing the chain into a
  // closed form.
  uint64_t a = *sink | 1;
  for (uint64_t k = 0; k < iters; ++k) {
    a += 1;
    a += (a >> 63);  // keep the chain serial; value stays small-ish
    a += 1;
    a += (a >> 63);
    a += 1;
    a += (a >> 63);
    a += 1;
    a += (a >> 63);
    asm volatile("" : "+r"(a));
  }
  *sink = a;
  return iters * 8;
}

FreqSample measure_frequency(double millis) {
  using clock = std::chrono::steady_clock;
  FreqSample s;
  uint64_t sink = 1;
  // Calibrate iteration count to the requested duration.
  uint64_t iters = 1 << 20;
  for (;;) {
    auto t0 = clock::now();
#if defined(__x86_64__)
    uint64_t c0 = __rdtsc();
#endif
    uint64_t adds = spin_chain(iters, &sink);
#if defined(__x86_64__)
    uint64_t c1 = __rdtsc();
#endif
    double dt = std::chrono::duration<double>(clock::now() - t0).count();
    if (dt * 1e3 >= millis || iters >= (uint64_t{1} << 34)) {
      s.ghz = static_cast<double>(adds) / dt / 1e9;
#if defined(__x86_64__)
      s.tsc_ghz = static_cast<double>(c1 - c0) / dt / 1e9;
#endif
      return s;
    }
    iters *= 2;
  }
}

FreqScalingReport frequency_scaling(int max_threads, double millis_per_level) {
  FreqScalingReport rep;
  for (int t = 1; t <= max_threads; ++t) {
    std::atomic<bool> go{false}, stop{false};
    std::vector<double> ghz(static_cast<size_t>(t), 0.0);
    std::vector<std::thread> threads;
    for (int w = 0; w < t; ++w) {
      threads.emplace_back([&, w] {
        while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
        // Everyone measures simultaneously; keep spinning until all done so
        // the load level stays constant during every measurement.
        ghz[static_cast<size_t>(w)] = measure_frequency(millis_per_level).ghz;
        uint64_t sink = 1;
        while (!stop.load(std::memory_order_acquire)) spin_chain(1 << 18, &sink);
      });
    }
    go.store(true, std::memory_order_release);
    std::this_thread::sleep_for(
        std::chrono::milliseconds(static_cast<int>(millis_per_level * 1.5)));
    stop.store(true, std::memory_order_release);
    for (auto& th : threads) th.join();

    double sum = 0, mn = 1e30;
    for (double g : ghz) {
      sum += g;
      if (g < mn) mn = g;
    }
    rep.threads.push_back(t);
    rep.ghz_mean.push_back(sum / t);
    rep.ghz_min.push_back(mn);
  }
  return rep;
}

uint64_t cpufreq_khz(int cpu) noexcept {
  if (cpu < 0 || cpu > 4095) return 0;
  char path[96];
  std::snprintf(path, sizeof path,
                "/sys/devices/system/cpu/cpu%d/cpufreq/scaling_cur_freq", cpu);
  // fopen + fscanf only: a missing node (offline CPU, heterogeneous part
  // with partial cpufreq coverage, container without the sysfs tree) is a
  // plain nullptr/short-read, never an exception or abort.
  std::FILE* f = std::fopen(path, "re");
  if (f == nullptr) return 0;
  unsigned long long khz = 0;
  const int got = std::fscanf(f, "%llu", &khz);
  std::fclose(f);
  return got == 1 ? static_cast<uint64_t>(khz) : 0;
}

CpufreqSummary cpufreq_summary(int max_cpus) noexcept {
  CpufreqSummary s;
  if (max_cpus <= 0) return s;
  if (max_cpus > 4096) max_cpus = 4096;
  double sum = 0;
  for (int c = 0; c < max_cpus; ++c) {
    ++s.cpus_scanned;
    const uint64_t khz = cpufreq_khz(c);
    if (khz == 0) continue;  // offline / no node: skip, don't fail the scan
    if (s.cpus_read == 0 || khz < s.min_khz) s.min_khz = khz;
    if (khz > s.max_khz) s.max_khz = khz;
    sum += static_cast<double>(khz);
    ++s.cpus_read;
  }
  if (s.cpus_read > 0) sum /= s.cpus_read;
  s.mean_khz = sum;
  return s;
}

}  // namespace swve::perf
