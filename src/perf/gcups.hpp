// GCUPS (giga cell updates per second) accounting — the unit every figure
// of the paper reports.
#pragma once

#include <cstdint>

namespace swve::perf {

/// cells / seconds, in units of 1e9 cell updates per second.
inline double gcups(uint64_t cells, double seconds) {
  return seconds > 0 ? static_cast<double>(cells) / seconds / 1e9 : 0.0;
}

/// DP matrix cells for a query of length m against total_residues of target.
inline uint64_t alignment_cells(uint64_t m, uint64_t total_residues) {
  return m * total_residues;
}

}  // namespace swve::perf
