#include "core/batch32.hpp"

#include <algorithm>
#include <atomic>
#include <bit>
#include <stdexcept>

#include "core/batch32_kernel.hpp"
#include "core/dispatch.hpp"

namespace swve::core {

const char* packing_policy_name(PackingPolicy p) noexcept {
  switch (p) {
    case PackingPolicy::DbOrder: return "db-order";
    case PackingPolicy::LengthSorted: return "length-sorted";
    case PackingPolicy::LengthBinned: return "length-binned";
  }
  return "?";
}

namespace {

/// Sequence order the batches are cut from, per policy.
std::vector<uint32_t> packing_order(const seq::SequenceDatabase& db,
                                    PackingPolicy policy) {
  switch (policy) {
    case PackingPolicy::LengthSorted:
      return db.by_length();  // ascending length: minimal padding
    case PackingPolicy::DbOrder: {
      std::vector<uint32_t> order(db.size());
      for (size_t s = 0; s < db.size(); ++s)
        order[s] = static_cast<uint32_t>(s);
      return order;
    }
    case PackingPolicy::LengthBinned: {
      // Geometric bins: bin b holds lengths in [2^b, 2^(b+1)), so every
      // batch mixes lengths within at most 2x. A counting pass sizes the
      // bins, then a stable scatter preserves database order inside each.
      auto bin_of = [](size_t len) {
        return len == 0 ? 0 : static_cast<int>(std::bit_width(len)) - 1;
      };
      int max_bin = 0;
      for (size_t s = 0; s < db.size(); ++s)
        max_bin = std::max(max_bin, bin_of(db[s].length()));
      std::vector<size_t> bin_start(static_cast<size_t>(max_bin) + 2, 0);
      for (size_t s = 0; s < db.size(); ++s)
        ++bin_start[static_cast<size_t>(bin_of(db[s].length())) + 1];
      for (size_t b = 1; b < bin_start.size(); ++b)
        bin_start[b] += bin_start[b - 1];
      std::vector<uint32_t> order(db.size());
      for (size_t s = 0; s < db.size(); ++s)
        order[bin_start[static_cast<size_t>(bin_of(db[s].length()))]++] =
            static_cast<uint32_t>(s);
      return order;
    }
  }
  return db.by_length();
}

}  // namespace

Batch32Db::Batch32Db(const seq::SequenceDatabase& db, int lanes,
                     PackingPolicy policy)
    : lanes_(lanes), policy_(policy) {
  if (lanes != 32 && lanes != 64)
    throw std::invalid_argument("Batch32Db: lanes must be 32 or 64");
  total_seqs_ = db.size();
  const std::vector<uint32_t> order = packing_order(db, policy);

  for (size_t start = 0; start < order.size(); start += static_cast<size_t>(lanes)) {
    const size_t count = std::min(static_cast<size_t>(lanes), order.size() - start);
    uint32_t max_len = 0;
    for (size_t k = 0; k < count; ++k)
      max_len = std::max(max_len,
                         static_cast<uint32_t>(db[order[start + k]].length()));
    if (max_len == 0) continue;  // batch of empty sequences: nothing to score

    BatchRecord meta;
    meta.column_offset = columns_.size();
    meta.index_offset = seq_index_.size();
    meta.max_len = max_len;
    meta.count = static_cast<uint32_t>(count);
    meta.real_residues = 0;

    for (size_t k = 0; k < count; ++k) {
      seq_index_.push_back(order[start + k]);
      seq_len_.push_back(static_cast<uint32_t>(db[order[start + k]].length()));
    }

    // Transpose: column j holds residue j of every lane (pad past the end).
    const size_t base = columns_.size();
    columns_.resize(base + static_cast<size_t>(max_len) * static_cast<size_t>(lanes),
                    kBatchPadCode);
    for (size_t k = 0; k < count; ++k) {
      const seq::Sequence& s = db[order[start + k]];
      const uint8_t* codes = s.data();
      for (size_t j = 0; j < s.length(); ++j)
        columns_[base + j * static_cast<size_t>(lanes) + k] = codes[j];
      meta.real_residues += s.length();
    }
    real_residues_ += meta.real_residues;
    padded_residues_ +=
        static_cast<uint64_t>(max_len) * static_cast<uint64_t>(lanes);
    batches_.push_back(meta);
  }

  columns_p_ = columns_.data();
  seq_index_p_ = seq_index_.data();
  seq_len_p_ = seq_len_.data();
  batches_p_ = batches_.data();
  batch_count_ = batches_.size();
  column_bytes_ = columns_.size();
  index_entries_ = seq_index_.size();
}

Batch32Db::Batch32Db(const PackedView& view)
    : lanes_(view.lanes),
      policy_(view.policy),
      view_(true),
      total_seqs_(view.total_seqs),
      real_residues_(view.real_residues),
      padded_residues_(view.padded_residues),
      columns_p_(view.columns),
      seq_index_p_(view.seq_index),
      seq_len_p_(view.seq_len),
      batches_p_(view.batches),
      batch_count_(view.batch_count) {
  if (lanes_ != 32 && lanes_ != 64)
    throw std::invalid_argument("Batch32Db: lanes must be 32 or 64");
  for (size_t b = 0; b < batch_count_; ++b) {
    const BatchRecord& r = batches_p_[b];
    column_bytes_ =
        std::max(column_bytes_,
                 static_cast<size_t>(r.column_offset) +
                     static_cast<size_t>(r.max_len) * static_cast<size_t>(lanes_));
    index_entries_ = std::max(
        index_entries_, static_cast<size_t>(r.index_offset) + r.count);
  }
}

Batch32Db::Batch Batch32Db::batch(size_t b) const noexcept {
  const BatchRecord& meta = batches_p_[b];
  return Batch{columns_p_ + meta.column_offset, meta.max_len, meta.count,
               seq_index_p_ + meta.index_offset,
               seq_len_p_ + meta.index_offset, meta.real_residues};
}

std::span<const uint8_t> Batch32Db::column_bytes() const noexcept {
  return {columns_p_, column_bytes_};
}
std::span<const uint8_t> Batch32Db::column_range(
    size_t first_batch, size_t end_batch) const noexcept {
  if (first_batch >= end_batch || end_batch > batch_count_) return {};
  const size_t begin = batches_p_[first_batch].column_offset;
  const size_t end = end_batch < batch_count_
                         ? static_cast<size_t>(batches_p_[end_batch].column_offset)
                         : column_bytes_;
  if (begin >= end || end > column_bytes_) return {};
  return {columns_p_ + begin, end - begin};
}
std::span<const uint32_t> Batch32Db::seq_index_data() const noexcept {
  return {seq_index_p_, index_entries_};
}
std::span<const uint32_t> Batch32Db::seq_len_data() const noexcept {
  return {seq_len_p_, index_entries_};
}
std::span<const BatchRecord> Batch32Db::batch_records() const noexcept {
  return {batches_p_, batch_count_};
}

double Batch32Db::packing_efficiency() const noexcept {
  return padded_residues_ == 0
             ? 0.0
             : static_cast<double>(real_residues_) /
                   static_cast<double>(padded_residues_);
}

double Batch32Db::padding_overhead() const noexcept {
  return real_residues_ == 0
             ? 0.0
             : static_cast<double>(padded_residues_) /
                       static_cast<double>(real_residues_) -
                   1.0;
}

namespace {
// Columns ahead of the walk front to prefetch; shared by every batch kernel.
std::atomic<uint32_t> g_batch_prefetch_cols{kDefaultBatchPrefetchCols};
}  // namespace

uint32_t batch_prefetch_distance() noexcept {
  return g_batch_prefetch_cols.load(std::memory_order_relaxed);
}

void set_batch_prefetch_distance(uint32_t cols) noexcept {
  g_batch_prefetch_cols.store(std::min<uint32_t>(cols, 64),
                              std::memory_order_relaxed);
}

Batch8Result batch32_u8_scalar(seq::SeqView q, const uint8_t* columns, uint32_t cols,
                               int lanes, const AlignConfig& cfg, Workspace& ws) {
  if (lanes == 64) return batch32_kernel<EmuBatchEngine<64>>(q, columns, cols, cfg, ws);
  return batch32_kernel<EmuBatchEngine<32>>(q, columns, cols, cfg, ws);
}

void batch32_u8_scalar_ilp(seq::SeqView q, const BatchCols* batches, int k,
                           int lanes, const AlignConfig& cfg, Workspace& ws,
                           Batch8Result* out) {
  if (lanes == 64) {
    if (k == 4)
      batch32_kernel_ilp<EmuBatchEngine<64>, 4>(q, batches, cfg, ws, out);
    else
      batch32_kernel_ilp<EmuBatchEngine<64>, 2>(q, batches, cfg, ws, out);
  } else {
    if (k == 4)
      batch32_kernel_ilp<EmuBatchEngine<32>, 4>(q, batches, cfg, ws, out);
    else
      batch32_kernel_ilp<EmuBatchEngine<32>, 2>(q, batches, cfg, ws, out);
  }
}

Batch8Result batch32_align_u8(seq::SeqView q, const Batch32Db::Batch& batch, int lanes,
                              const AlignConfig& cfg, Workspace& ws, simd::Isa isa) {
  cfg.validate();
#if defined(SWVE_HAVE_AVX512_BUILD)
  if (lanes == 64 && isa == simd::Isa::Avx512 && simd::cpu_features().avx512vbmi)
    return batch32_u8_avx512(q, batch.columns, batch.max_len, cfg, ws);
#endif
#if defined(SWVE_HAVE_AVX2_BUILD)
  if (lanes == 32 && (isa == simd::Isa::Avx2 || isa == simd::Isa::Avx512) &&
      simd::cpu_features().avx2)
    return batch32_u8_avx2(q, batch.columns, batch.max_len, cfg, ws);
#endif
  return batch32_u8_scalar(q, batch.columns, batch.max_len, lanes, cfg, ws);
}

void batch32_align_u8_group(seq::SeqView q, const BatchCols* batches, int count,
                            int lanes, const AlignConfig& cfg, Workspace& ws,
                            simd::Isa isa, int k_interleave, Batch8Result* out) {
  cfg.validate();
  k_interleave = std::clamp(k_interleave, 1, kMaxBatchInterleave);
#if defined(SWVE_HAVE_AVX512_BUILD)
  const bool use_avx512 =
      lanes == 64 && isa == simd::Isa::Avx512 && simd::cpu_features().avx512vbmi;
#else
  const bool use_avx512 = false;
#endif
#if defined(SWVE_HAVE_AVX2_BUILD)
  const bool use_avx2 = lanes == 32 &&
                        (isa == simd::Isa::Avx2 || isa == simd::Isa::Avx512) &&
                        simd::cpu_features().avx2;
#else
  const bool use_avx2 = false;
#endif
  (void)use_avx512;
  (void)use_avx2;

  int done = 0;
  while (done < count) {
    // Largest supported sub-group (4, 2, or 1) that fits what's left.
    int k = std::min(k_interleave, count - done);
    k = k >= 4 ? 4 : (k >= 2 ? 2 : 1);
    const BatchCols* grp = batches + done;
    Batch8Result* o = out + done;
    if (k == 1) {
#if defined(SWVE_HAVE_AVX512_BUILD)
      if (use_avx512)
        o[0] = batch32_u8_avx512(q, grp[0].columns, grp[0].ncols, cfg, ws);
      else
#endif
#if defined(SWVE_HAVE_AVX2_BUILD)
      if (use_avx2)
        o[0] = batch32_u8_avx2(q, grp[0].columns, grp[0].ncols, cfg, ws);
      else
#endif
        o[0] = batch32_u8_scalar(q, grp[0].columns, grp[0].ncols, lanes, cfg, ws);
    } else {
#if defined(SWVE_HAVE_AVX512_BUILD)
      if (use_avx512)
        batch32_u8_avx512_ilp(q, grp, k, cfg, ws, o);
      else
#endif
#if defined(SWVE_HAVE_AVX2_BUILD)
      if (use_avx2)
        batch32_u8_avx2_ilp(q, grp, k, cfg, ws, o);
      else
#endif
        batch32_u8_scalar_ilp(q, grp, k, lanes, cfg, ws, o);
    }
    done += k;
  }
}

/// Lanes per batch for a resolved ISA (must match the Batch32Db packing).
static int batch_lanes_for(simd::Isa isa) {
  if (isa == simd::Isa::Avx512 && simd::cpu_features().avx512vbmi) return 64;
  return 32;
}

std::vector<int> batch_scores(seq::SeqView q, const Batch32Db& bdb,
                              const seq::SequenceDatabase& db, const AlignConfig& cfg,
                              Workspace& ws, BatchSearchStats* stats,
                              const PreparedQuery* prep) {
  cfg.validate();
  if (cfg.traceback)
    throw std::invalid_argument("batch_scores: traceback is not supported; "
                                "re-align candidates with Aligner instead");
  if (cfg.band >= 0)
    throw std::invalid_argument("batch_scores: banding is not supported by the "
                                "inter-sequence kernel");
  const simd::Isa isa = simd::resolve_isa(cfg.isa);
  const int lanes = bdb.lanes();
  if (lanes != batch_lanes_for(isa) && lanes != 32)
    throw std::invalid_argument("batch_scores: database packed for a different ISA");

  std::vector<int> scores(db.size(), 0);
  BatchSearchStats local{};

  // Wider re-score config: same scoring, diagonal kernel, adaptive from 16.
  AlignConfig wide = cfg;
  wide.width = Width::W16;
  wide.isa = isa;

  // Feed batches to the kernel in groups of the resolved interleave depth:
  // the fused kernel keeps `group` independent dependency chains in flight.
  const int k_ilp = resolved_ilp(isa);
  for (size_t b = 0; b < bdb.batch_count();) {
    const int group = static_cast<int>(std::min<size_t>(
        static_cast<size_t>(k_ilp), bdb.batch_count() - b));
    Batch32Db::Batch batch[kMaxBatchInterleave];
    BatchCols cols[kMaxBatchInterleave];
    Batch8Result r8[kMaxBatchInterleave];
    for (int g = 0; g < group; ++g) {
      batch[g] = bdb.batch(b + static_cast<size_t>(g));
      cols[g] = BatchCols{batch[g].columns, batch[g].max_len};
    }
    batch32_align_u8_group(q, cols, group, lanes, cfg, ws, isa, k_ilp, r8);
    for (int g = 0; g < group; ++g) {
      local.cells8 += static_cast<uint64_t>(batch[g].max_len) * q.length *
                      static_cast<uint64_t>(lanes);
      local.useful_cells8 += batch[g].real_residues * q.length;
      for (uint32_t k = 0; k < batch[g].count; ++k) {
        const uint32_t seq_idx = batch[g].seq_index[k];
        if (r8[g].saturated_mask & (uint64_t{1} << k)) {
          // Exact re-score at 16 bits, escalating to 32 if needed.
          const seq::Sequence& s = db[seq_idx];
          Alignment a = diag_align(q, s, wide, ws, prep);
          if (a.saturated) {
            AlignConfig wide32 = wide;
            wide32.width = Width::W32;
            a = diag_align(q, s, wide32, ws, prep);
          }
          scores[seq_idx] = a.score;
          local.rescored++;
          local.rescored_cells += a.stats.cells;
        } else {
          scores[seq_idx] = r8[g].max_score[k];
        }
      }
    }
    b += static_cast<size_t>(group);
  }
  if (stats) *stats = local;
  return scores;
}

}  // namespace swve::core
