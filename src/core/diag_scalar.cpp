// Portable instantiations of the diagonal kernel (emulated engines).
#include "core/diag_kernel.hpp"
#include "core/dispatch.hpp"
#include "simd/engines_emu.hpp"

namespace swve::core {

DiagOutput diag_scalar(const DiagRequest& rq, Width width) {
  switch (width) {
    case Width::W8:
      return diag_run<simd::EmuU8>(rq);
    case Width::W16:
      return diag_run<simd::EmuU16>(rq);
    default:
      return diag_run<simd::EmuI32>(rq);
  }
}

}  // namespace swve::core
