// Reusable per-thread scratch memory for the alignment kernels.
//
// "SW as a subroutine" (scenario 3) calls align() millions of times on small
// sequences; every kernel therefore takes a Workspace& and allocates nothing
// once the workspace has warmed up to the largest (m, n) seen.
#pragma once

#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <new>
#include <utility>
#include <vector>

namespace swve::core {

/// Elements of padding kept on each side of the diagonal DP buffers so that
/// unaligned vector loads at index i-1 and ragged-edge reads stay in bounds.
/// Sized for the widest engine (64 lanes of AVX-512 u8).
inline constexpr int kPad = 64;

/// Deepest batch-kernel interleave: how many independent batches the fused
/// batch32 column loop can keep in flight (and how many H/F column banks a
/// Workspace carries). Must cover every K accepted by core::IlpPolicy.
inline constexpr int kMaxBatchInterleave = 4;

/// 64-byte-aligned, grow-only byte buffer.
class AlignedBuf {
 public:
  AlignedBuf() = default;
  AlignedBuf(const AlignedBuf&) = delete;
  AlignedBuf& operator=(const AlignedBuf&) = delete;
  AlignedBuf(AlignedBuf&& o) noexcept { *this = std::move(o); }
  AlignedBuf& operator=(AlignedBuf&& o) noexcept {
    if (this != &o) {
      release();
      ptr_ = std::exchange(o.ptr_, nullptr);
      size_ = std::exchange(o.size_, 0);
    }
    return *this;
  }
  ~AlignedBuf() { release(); }

  /// Ensure at least `bytes` capacity; contents are NOT preserved on growth.
  void* ensure(size_t bytes) {
    if (bytes > size_) {
      release();
      size_t rounded = (bytes + 63) & ~size_t{63};
      ptr_ = std::aligned_alloc(64, rounded);
      if (!ptr_) throw std::bad_alloc();
      size_ = rounded;
    }
    return ptr_;
  }
  /// ensure() + memset 0.
  void* ensure_zeroed(size_t bytes) {
    void* p = ensure(bytes);
    std::memset(p, 0, bytes);
    return p;
  }
  void* data() noexcept { return ptr_; }
  size_t capacity() const noexcept { return size_; }

 private:
  void release() noexcept {
    std::free(ptr_);
    ptr_ = nullptr;
    size_ = 0;
  }
  void* ptr_ = nullptr;
  size_t size_ = 0;
};

/// Scratch buffers for one in-flight alignment. Not thread-safe: use one
/// Workspace per thread.
struct Workspace {
  // Diagonal-linearized DP state (Fig 2): three H diagonals, two E, two F,
  // each (m + 2*kPad) elements of the kernel's element width.
  AlignedBuf h[3];
  AlignedBuf e[2];
  AlignedBuf f[2];

  // Deferred-maximum tracking (§III-D): per-query-row running maximum and
  // the anti-diagonal index at which it was last improved.
  AlignedBuf rowmax;        // m elements (kernel width)
  AlignedBuf best_diag;     // m int32

  // Gather feed (Fig 4): 32*q[i] and the reversed reference, both int32 so
  // index arithmetic is one vector add.
  AlignedBuf qmul32;        // m + kPad int32
  AlignedBuf dbrev32;       // n + kPad int32
  // Fill-delivery staging: one diagonal of substitution scores.
  AlignedBuf diag_scores;   // (m + 2*kPad) elements

  // Fixed-score compare feed: encoded residues widened to the kernel width.
  AlignedBuf qenc;          // (m + kPad) elements
  AlignedBuf dbrev_enc;     // (n + kPad) elements

  // Traceback: per-cell direction bytes in diagonal-major order plus the
  // per-diagonal offsets into that buffer.
  AlignedBuf tb_dirs;       // m*n bytes (guarded by max_traceback_cells)
  AlignedBuf tb_offsets;    // (m+n) uint64

  // Batch32 kernel (Fig 5): per-query-row H and F vectors, one vector of
  // `lanes` bytes per row. One bank per in-flight batch of the interleaved
  // kernel; the K=1 kernel uses bank 0.
  AlignedBuf batch_h[kMaxBatchInterleave];  // m * lanes bytes each
  AlignedBuf batch_f[kMaxBatchInterleave];  // m * lanes bytes each

  // Baseline kernels (striped / scan / diag-basic): column state and
  // per-diagonal score scratch.
  AlignedBuf baseline[4];
};

}  // namespace swve::core
