// Alignment configuration shared by every kernel.
#pragma once

#include <cstdint>
#include <stdexcept>

#include "core/error.hpp"
#include "matrix/score_matrix.hpp"
#include "simd/cpu.hpp"

namespace swve::core {

/// Gap penalty model (Fig 7). A gap of length k costs
/// open + (k-1)*extend under Affine and k*extend under Linear
/// (penalties are non-negative; scores subtract them).
enum class GapModel : uint8_t { Affine, Linear };

/// Integer width of the DP arithmetic (contribution iii of the paper).
/// Adaptive runs 8-bit first and transparently re-runs saturated
/// alignments at 16 and then 32 bits.
enum class Width : uint8_t { W8, W16, W32, Adaptive };

/// Score source (Fig 9): a full substitution matrix reached through the
/// gather unit, or a constant match/mismatch score reached through compares.
enum class ScoreScheme : uint8_t { Matrix, Fixed };

/// How Matrix-scheme scores reach the diagonal kernel:
///   Gather — vpgatherdd from the 32-column matrix (Fig 4). The paper's
///            primary path; "not exceptionally fast" (§IV-C) and
///            catastrophically slow on Downfall-mitigated parts.
///   Fill   — per-diagonal scalar staging of the scores into a linear
///            buffer, then vector consumption.
///   Shuffle— in-register lookups of the biased byte table with vpermi2b
///            (AVX-512-VBMI only; the Fig 4/5 "extract scores with
///            shuffling" path). Silently degrades to Fill elsewhere.
///   Auto   — one-time runtime micro-calibration picks the fastest
///            available path on this machine (the paper's §IV-I
///            autotuning direction).
enum class ScoreDelivery : uint8_t { Auto, Gather, Fill, Shuffle };

struct AlignConfig {
  ScoreScheme scheme = ScoreScheme::Matrix;
  ScoreDelivery delivery = ScoreDelivery::Auto;
  const matrix::ScoreMatrix* matrix = &matrix::ScoreMatrix::blosum62();
  int match = 2;       ///< Fixed scheme only
  int mismatch = -3;   ///< Fixed scheme only

  GapModel gap_model = GapModel::Affine;
  int gap_open = 11;   ///< penalty of the first gap residue (Affine)
  int gap_extend = 1;  ///< penalty of each further gap residue

  /// Banded alignment: only cells with |i - j| <= band are computed
  /// (out-of-band cells contribute 0, i.e. alignments cannot leave the
  /// band). < 0 disables the band (full DP). The diagonal traversal makes
  /// banding free — the band just tightens each anti-diagonal's row range.
  int band = -1;

  Width width = Width::Adaptive;
  simd::Isa isa = simd::Isa::Auto;

  bool traceback = false;
  /// Refuse traceback if m*n exceeds this many cells (1 byte per cell).
  uint64_t max_traceback_cells = uint64_t{1} << 31;

  /// Largest substitution score under this config (saturation bound).
  int max_subst_score() const noexcept {
    return scheme == ScoreScheme::Matrix ? matrix->max_score()
                                         : (match > mismatch ? match : mismatch);
  }
  /// Smallest substitution score (bias bound).
  int min_subst_score() const noexcept {
    return scheme == ScoreScheme::Matrix ? matrix->min_score()
                                         : (match < mismatch ? match : mismatch);
  }
  /// Bias that makes every substitution score non-negative.
  int bias() const noexcept {
    int mn = min_subst_score();
    return mn < 0 ? -mn : 0;
  }

  /// Non-throwing validation: returns the first problem found as a
  /// machine-readable ConfigError. The async service uses this so a bad
  /// request fails its future instead of throwing on a worker thread.
  ErrorOr<void> try_validate() const {
    using Code = ConfigError::Code;
    if (scheme == ScoreScheme::Matrix && matrix == nullptr)
      return ConfigError{Code::MissingMatrix,
                         "AlignConfig: Matrix scheme needs a matrix"};
    if (gap_open < 0 || gap_extend < 0)
      return ConfigError{Code::NegativeGapPenalty,
                         "AlignConfig: gap penalties must be >= 0"};
    if (gap_model == GapModel::Affine && gap_open < gap_extend)
      return ConfigError{Code::OpenLessThanExtend,
                         "AlignConfig: affine gap_open must be >= gap_extend"};
    if (scheme == ScoreScheme::Fixed && match < mismatch)
      return ConfigError{Code::MatchLessThanMismatch,
                         "AlignConfig: match < mismatch"};
    return {};
  }

  /// Throwing validation (synchronous API). Prefer try_validate() on
  /// threads that must not unwind.
  void validate() const {
    if (auto st = try_validate(); !st)
      throw std::invalid_argument(st.error().message);
  }
};

}  // namespace swve::core
