// AVX-512 instantiations of the diagonal kernel
// (compiled with -mavx512f -mavx512bw -mavx512vl).
#include "core/diag_kernel.hpp"
#include "core/dispatch.hpp"
#include "simd/engines_avx512.hpp"

namespace swve::core {

DiagOutput diag_avx512(const DiagRequest& rq, Width width) {
  switch (width) {
    case Width::W8:
      return diag_run<simd::Avx512U8>(rq);
    case Width::W16:
      return diag_run<simd::Avx512U16>(rq);
    default:
      return diag_run<simd::Avx512I32>(rq);
  }
}

}  // namespace swve::core
