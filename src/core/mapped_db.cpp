#include "core/mapped_db.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <thread>
#include <vector>

#include "seq/alphabet.hpp"

namespace swve::core {

const char* db_source_name(DbSource s) noexcept {
  switch (s) {
    case DbSource::Built: return "built";
    case DbSource::Mmap: return "mmap";
    case DbSource::Shm: return "shm";
  }
  return "?";
}

namespace {

using Clock = std::chrono::steady_clock;

ConfigError bad(std::string msg) {
  return ConfigError{ConfigError::Code::InvalidArtifact, std::move(msg)};
}

struct Mapping {
  const uint8_t* base = nullptr;
  size_t size = 0;
};

ErrorOr<Mapping> map_file_ro(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0)
    return bad("'" + path + "': cannot open: " + std::strerror(errno));
  struct stat st {};
  if (::fstat(fd, &st) != 0) {
    const int e = errno;
    ::close(fd);
    return bad("'" + path + "': fstat failed: " + std::strerror(e));
  }
  const auto size = static_cast<size_t>(st.st_size);
  if (size < sizeof(SwdbHeader)) {
    ::close(fd);
    return bad("'" + path + "': shorter than the SWDB header (truncated?)");
  }
  void* p = ::mmap(nullptr, size, PROT_READ, MAP_SHARED, fd, 0);
  ::close(fd);
  if (p == MAP_FAILED)
    return bad("'" + path + "': mmap failed: " + std::strerror(errno));
  return Mapping{static_cast<const uint8_t*>(p), size};
}

/// Every pointer a MappedDb needs, resolved and bounds-checked against one
/// image. Validation cost is O(sequence count + batch count) — metadata
/// only; the residue and column payloads are checksummed only under
/// verify_all (O(file), touches every page, defeats lazy faulting).
struct ParsedImage {
  SwdbHeader header;
  const uint32_t* seq_lens = nullptr;
  const uint64_t* seq_offsets = nullptr;   // seq_count + 1 entries
  const uint8_t* seq_codes = nullptr;
  const uint64_t* id_offsets = nullptr;    // seq_count + 1 entries
  const char* id_bytes = nullptr;
  const uint32_t* length_index = nullptr;
  const BatchRecord* batch_records = nullptr;
  const uint32_t* batch_seq_index = nullptr;
  const uint32_t* batch_seq_lens = nullptr;
  uint64_t batch_index_entries = 0;
  const uint8_t* batch_columns = nullptr;
  uint64_t batch_columns_bytes = 0;
};

ErrorOr<ParsedImage> parse_image(const uint8_t* base, size_t size,
                                 bool verify_all, const std::string& what) {
  ParsedImage img;
  if (size < sizeof(SwdbHeader))
    return bad(what + ": truncated header");
  std::memcpy(&img.header, base, sizeof(SwdbHeader));
  const SwdbHeader& h = img.header;

  if (h.magic != kSwdbMagic)
    return bad(what + ": bad magic (not a swve db artifact)");
  if (h.endian_tag != kSwdbEndianTag)
    return bad(what + ": endianness mismatch (artifact written on an "
                      "opposite-endian machine)");
  if (h.version != kSwdbVersion)
    return bad(what + ": unsupported format version " +
               std::to_string(h.version) + " (this reader understands v" +
               std::to_string(kSwdbVersion) + ")");
  if (h.flags != 0)
    return bad(what + ": unknown header flags (written by a newer tool?)");
  if (h.section_count < kSwdbSectionCount ||
      h.header_bytes !=
          sizeof(SwdbHeader) + h.section_count * sizeof(SwdbSection) ||
      h.header_bytes > size)
    return bad(what + ": section table out of bounds");
  if (h.file_bytes != size)
    return bad(what + ": file size mismatch (header says " +
               std::to_string(h.file_bytes) + " bytes, mapped " +
               std::to_string(size) + " — truncated?)");
  if (h.lanes != 32 && h.lanes != 64)
    return bad(what + ": invalid lane count " + std::to_string(h.lanes));
  if (h.packing > static_cast<uint8_t>(PackingPolicy::LengthBinned))
    return bad(what + ": unknown packing policy");
  if (h.alphabet > static_cast<uint8_t>(seq::AlphabetKind::Dna))
    return bad(what + ": unknown alphabet id");
  // Counts can't exceed the file size (every sequence/batch costs metadata
  // bytes); rejecting here also keeps the size math below overflow-free.
  if (h.seq_count > size || h.batch_count > size || h.seq_count == 0)
    return bad(what + ": implausible sequence/batch counts");

  {
    SwdbHeader hz = h;
    hz.header_checksum = 0;
    uint64_t hcs = fnv1a_64(&hz, sizeof hz);
    hcs = fnv1a_64(base + sizeof(SwdbHeader),
                   h.header_bytes - sizeof(SwdbHeader), hcs);
    if (hcs != h.header_checksum)
      return bad(what + ": header/section-table checksum mismatch");
  }

  std::vector<SwdbSection> secs(h.section_count);
  std::memcpy(secs.data(), base + sizeof(SwdbHeader),
              h.section_count * sizeof(SwdbSection));
  auto find = [&](SwdbSectionId id) -> const SwdbSection* {
    for (const SwdbSection& s : secs)
      if (s.id == static_cast<uint32_t>(id)) return &s;
    return nullptr;
  };
  for (const SwdbSection& s : secs) {
    if (s.offset % kSwdbAlign != 0 || s.offset > size ||
        s.bytes > size - s.offset)
      return bad(what + ": section " + std::to_string(s.id) +
                 " out of bounds");
  }

  // Resolve the required sections with exact size expectations.
  const uint64_t n = h.seq_count;
  struct Want {
    SwdbSectionId id;
    uint64_t bytes;      // expected payload size; UINT64_MAX = any
    const char* name;
  };
  const Want wants[] = {
      {SwdbSectionId::SeqLengths, n * 4, "SeqLengths"},
      {SwdbSectionId::SeqOffsets, (n + 1) * 8, "SeqOffsets"},
      {SwdbSectionId::SeqCodes, h.total_residues, "SeqCodes"},
      {SwdbSectionId::IdOffsets, (n + 1) * 8, "IdOffsets"},
      {SwdbSectionId::IdBytes, UINT64_MAX, "IdBytes"},
      {SwdbSectionId::LengthIndex, n * 4, "LengthIndex"},
      {SwdbSectionId::BatchRecords, h.batch_count * sizeof(BatchRecord),
       "BatchRecords"},
      {SwdbSectionId::BatchSeqIndex, UINT64_MAX, "BatchSeqIndex"},
      {SwdbSectionId::BatchSeqLens, UINT64_MAX, "BatchSeqLens"},
      {SwdbSectionId::BatchColumns, UINT64_MAX, "BatchColumns"},
  };
  const SwdbSection* found[kSwdbSectionCount] = {};
  for (size_t i = 0; i < kSwdbSectionCount; ++i) {
    const SwdbSection* s = find(wants[i].id);
    if (s == nullptr)
      return bad(what + ": missing section " + std::string(wants[i].name));
    if (wants[i].bytes != UINT64_MAX && s->bytes != wants[i].bytes)
      return bad(what + ": section " + std::string(wants[i].name) +
                 " size mismatch");
    // Metadata sections are always checksummed; the two big payloads only
    // under verify_all (they are protected by file_bytes + the metadata
    // that addresses into them, and a full checksum walk would fault in
    // the whole artifact).
    const bool big = wants[i].id == SwdbSectionId::SeqCodes ||
                     wants[i].id == SwdbSectionId::BatchColumns;
    if ((!big || verify_all) &&
        fnv1a_64(base + s->offset, s->bytes) != s->checksum)
      return bad(what + ": section " + std::string(wants[i].name) +
                 " checksum mismatch");
    found[i] = s;
  }
  auto ptr = [&](size_t i) { return base + found[i]->offset; };

  img.seq_lens = reinterpret_cast<const uint32_t*>(ptr(0));
  img.seq_offsets = reinterpret_cast<const uint64_t*>(ptr(1));
  img.seq_codes = ptr(2);
  img.id_offsets = reinterpret_cast<const uint64_t*>(ptr(3));
  img.id_bytes = reinterpret_cast<const char*>(ptr(4));
  img.length_index = reinterpret_cast<const uint32_t*>(ptr(5));
  img.batch_records = reinterpret_cast<const BatchRecord*>(ptr(6));
  img.batch_seq_index = reinterpret_cast<const uint32_t*>(ptr(7));
  img.batch_seq_lens = reinterpret_cast<const uint32_t*>(ptr(8));
  img.batch_columns = ptr(9);
  img.batch_columns_bytes = found[9]->bytes;
  if (found[7]->bytes != found[8]->bytes || found[7]->bytes % 4 != 0)
    return bad(what + ": batch index/length sections disagree");
  img.batch_index_entries = found[7]->bytes / 4;

  // Cross-field consistency: offsets monotone and in bounds, lengths agree.
  if (img.seq_offsets[0] != 0 || img.seq_offsets[n] != h.total_residues ||
      img.id_offsets[0] != 0 || img.id_offsets[n] != found[4]->bytes)
    return bad(what + ": sequence/id offset tables corrupt");
  for (uint64_t i = 0; i < n; ++i) {
    if (img.seq_offsets[i + 1] < img.seq_offsets[i] ||
        img.seq_offsets[i + 1] - img.seq_offsets[i] != img.seq_lens[i] ||
        img.seq_lens[i] > h.max_length ||
        img.id_offsets[i + 1] < img.id_offsets[i] ||
        img.length_index[i] >= n)
      return bad(what + ": sequence metadata corrupt at index " +
                 std::to_string(i));
  }
  for (uint64_t b = 0; b < h.batch_count; ++b) {
    const BatchRecord& r = img.batch_records[b];
    if (r.count == 0 || r.count > h.lanes || r.max_len == 0 ||
        r.index_offset > img.batch_index_entries ||
        r.count > img.batch_index_entries - r.index_offset ||
        r.column_offset > img.batch_columns_bytes ||
        static_cast<uint64_t>(r.max_len) * h.lanes >
            img.batch_columns_bytes - r.column_offset)
      return bad(what + ": batch record corrupt at index " +
                 std::to_string(b));
  }
  for (uint64_t i = 0; i < img.batch_index_entries; ++i)
    if (img.batch_seq_index[i] >= n)
      return bad(what + ": batch seq_index out of range");

  if (verify_all) {
    const int alpha_size =
        seq::Alphabet::get(static_cast<seq::AlphabetKind>(h.alphabet)).size();
    for (uint64_t i = 0; i < h.total_residues; ++i)
      if (img.seq_codes[i] >= alpha_size)
        return bad(what + ": residue code out of alphabet range");
  }
  return img;
}

void apply_madvise(const uint8_t* base, size_t size,
                   MappedDbOptions::Madvise mode) noexcept {
  using M = MappedDbOptions::Madvise;
  if (mode == M::Off || base == nullptr || size == 0) return;
  void* p = const_cast<uint8_t*>(base);
  // Advisory only: failure changes performance, not correctness.
  if (mode == M::Sequential || mode == M::SequentialWillNeed)
    (void)::madvise(p, size, MADV_SEQUENTIAL);
  if (mode == M::WillNeed || mode == M::SequentialWillNeed)
    (void)::madvise(p, size, MADV_WILLNEED);
}

bool shm_disabled_by_env() noexcept {
  const char* v = std::getenv("SWVE_SHM");
  if (v == nullptr) return false;
  return std::strcmp(v, "off") == 0 || std::strcmp(v, "0") == 0 ||
         std::strcmp(v, "false") == 0 || std::strcmp(v, "no") == 0;
}

/// Attach to an existing shm object: wait (bounded) for the creator to
/// ftruncate it to full size and release-store the magic.
bool shm_attach(int fd, size_t expected_size, double timeout_s,
                const uint8_t** out_base) {
  const auto deadline =
      Clock::now() + std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double>(timeout_s));
  for (;;) {
    struct stat st {};
    if (::fstat(fd, &st) != 0) {
      ::close(fd);
      return false;
    }
    if (static_cast<size_t>(st.st_size) >= expected_size) break;
    if (Clock::now() >= deadline) {
      ::close(fd);
      return false;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  void* p = ::mmap(nullptr, expected_size, PROT_READ, MAP_SHARED, fd, 0);
  ::close(fd);
  if (p == MAP_FAILED) return false;
  const auto* base = static_cast<const uint8_t*>(p);
  for (;;) {
    const uint32_t magic = __atomic_load_n(
        reinterpret_cast<const uint32_t*>(base), __ATOMIC_ACQUIRE);
    if (magic == kSwdbMagic) break;
    if (Clock::now() >= deadline) {
      ::munmap(p, expected_size);
      return false;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  *out_base = base;
  return true;
}

/// Attach-or-create. `file_base` is the validated file image to seed a
/// freshly created object from. Returns false for graceful fallback.
bool try_shm(const std::string& name, const uint8_t* file_base,
             size_t file_size, double timeout_s, const uint8_t** out_base) {
  int fd = ::shm_open(name.c_str(), O_RDONLY, 0);
  if (fd >= 0) return shm_attach(fd, file_size, timeout_s, out_base);
  if (errno != ENOENT) return false;

  fd = ::shm_open(name.c_str(), O_RDWR | O_CREAT | O_EXCL, 0600);
  if (fd < 0) {
    // Lost the creation race — attach to the winner's object.
    fd = ::shm_open(name.c_str(), O_RDONLY, 0);
    return fd >= 0 && shm_attach(fd, file_size, timeout_s, out_base);
  }
  if (::ftruncate(fd, static_cast<off_t>(file_size)) != 0) {
    ::close(fd);
    ::shm_unlink(name.c_str());
    return false;
  }
  void* p =
      ::mmap(nullptr, file_size, PROT_READ | PROT_WRITE, MAP_SHARED, fd, 0);
  ::close(fd);
  if (p == MAP_FAILED) {
    ::shm_unlink(name.c_str());
    return false;
  }
  auto* dst = static_cast<uint8_t*>(p);
  // Readiness protocol: everything but the magic first, then the magic
  // with a release store — an attacher that acquires the magic is
  // guaranteed to see the full image.
  std::memcpy(dst + sizeof(uint32_t), file_base + sizeof(uint32_t),
              file_size - sizeof(uint32_t));
  __atomic_store_n(reinterpret_cast<uint32_t*>(dst), kSwdbMagic,
                   __ATOMIC_RELEASE);
  (void)::mprotect(p, file_size, PROT_READ);
  *out_base = dst;
  return true;
}

}  // namespace

std::string MappedDb::shm_object_name(const SwdbHeader& h) {
  // Content fingerprint plus packing parameters: same FASTA packed with
  // different lanes/policy yields distinct objects, never a false attach.
  char buf[64];
  std::snprintf(buf, sizeof buf, "/swve.db.v%u.%016llx.l%up%u", kSwdbVersion,
                static_cast<unsigned long long>(h.db_epoch),
                static_cast<unsigned>(h.lanes),
                static_cast<unsigned>(h.packing));
  return buf;
}

bool MappedDb::shm_unlink_object(const SwdbHeader& h) noexcept {
  return ::shm_unlink(shm_object_name(h).c_str()) == 0;
}

ErrorOr<std::unique_ptr<MappedDb>> MappedDb::open(const std::string& path,
                                                  const MappedDbOptions& opts) {
  const auto t0 = Clock::now();

  auto fm = map_file_ro(path);
  if (!fm) return fm.error();
  const uint8_t* fbase = fm->base;
  const size_t fsize = fm->size;

  // The FILE image is always validated first: corrupt artifacts come back
  // as typed errors no matter the residency mode.
  auto parsed = parse_image(fbase, fsize, opts.verify_all, "'" + path + "'");
  if (!parsed) {
    ::munmap(const_cast<uint8_t*>(fbase), fsize);
    return parsed.error();
  }

  std::unique_ptr<MappedDb> m(new MappedDb());
  m->path_ = path;
  m->base_ = fbase;
  m->size_ = fsize;
  m->source_ = DbSource::Mmap;

  if (opts.residency == MappedDbOptions::Residency::SharedMemory &&
      !shm_disabled_by_env()) {
    const std::string name = shm_object_name(parsed->header);
    const uint8_t* sbase = nullptr;
    if (try_shm(name, fbase, fsize, opts.shm_ready_timeout_s, &sbase)) {
      auto sparsed = parse_image(sbase, fsize, /*verify_all=*/false,
                                 "shm '" + name + "'");
      if (sparsed && sparsed->header.db_epoch == parsed->header.db_epoch) {
        ::munmap(const_cast<uint8_t*>(fbase), fsize);
        m->base_ = sbase;
        m->source_ = DbSource::Shm;
        m->shm_name_ = name;
        parsed = std::move(sparsed);
      } else {
        // Name collision with foreign content, or a corrupt resident copy:
        // fall back to the (already validated) file map.
        ::munmap(const_cast<uint8_t*>(sbase), fsize);
      }
    }
  }

  apply_madvise(m->base_, m->size_, opts.madvise);

  const ParsedImage& img = *parsed;
  const SwdbHeader& h = img.header;
  m->header_ = h;
  const seq::Alphabet& alpha =
      seq::Alphabet::get(static_cast<seq::AlphabetKind>(h.alphabet));
  std::vector<seq::Sequence> seqs;
  seqs.reserve(h.seq_count);
  for (uint64_t i = 0; i < h.seq_count; ++i) {
    std::string id(img.id_bytes + img.id_offsets[i],
                   img.id_offsets[i + 1] - img.id_offsets[i]);
    seqs.push_back(seq::Sequence::view_of(
        std::move(id), img.seq_codes + img.seq_offsets[i], img.seq_lens[i],
        alpha));
  }
  std::vector<uint32_t> by_length(img.length_index,
                                  img.length_index + h.seq_count);
  m->db_ = seq::SequenceDatabase(std::move(seqs), h.total_residues,
                                 h.max_length, std::move(by_length));

  PackedView pv;
  pv.lanes = h.lanes;
  pv.policy = static_cast<PackingPolicy>(h.packing);
  pv.total_seqs = h.seq_count;
  pv.real_residues = h.real_residues;
  pv.padded_residues = h.padded_residues;
  pv.columns = img.batch_columns;
  pv.seq_index = img.batch_seq_index;
  pv.seq_len = img.batch_seq_lens;
  pv.batches = img.batch_records;
  pv.batch_count = h.batch_count;
  m->bdb_ = std::make_unique<Batch32Db>(pv);

  m->load_seconds_ =
      std::chrono::duration<double>(Clock::now() - t0).count();
  return m;
}

MappedDb::~MappedDb() {
  // The shm object itself is deliberately left linked: outliving its
  // creator so later processes attach warm is the point. Cleanup is
  // explicit via shm_unlink_object.
  if (base_ != nullptr)
    ::munmap(const_cast<uint8_t*>(base_), size_);
}

void MappedDb::advise_batch_columns(size_t first_batch, size_t end_batch,
                                    MappedDbOptions::Madvise mode) const noexcept {
  if (bdb_ == nullptr) return;
  const auto range = bdb_->column_range(first_batch, end_batch);
  if (range.empty()) return;
  // Columns are 64-byte (not page) aligned inside the artifact; madvise
  // wants whole pages, so round outward — over-advising a boundary page
  // shared with a neighbour shard is harmless.
  const long page_l = sysconf(_SC_PAGESIZE);
  const uintptr_t page = page_l > 0 ? static_cast<uintptr_t>(page_l) : 4096;
  uintptr_t begin = reinterpret_cast<uintptr_t>(range.data());
  uintptr_t end = begin + range.size();
  begin &= ~(page - 1);
  end = (end + page - 1) & ~(page - 1);
  apply_madvise(reinterpret_cast<const uint8_t*>(begin), end - begin, mode);
}

size_t MappedDb::resident_bytes() const noexcept {
  if (base_ == nullptr || size_ == 0) return 0;
  const long page = ::sysconf(_SC_PAGESIZE);
  if (page <= 0) return 0;
  const size_t npages = (size_ + static_cast<size_t>(page) - 1) /
                        static_cast<size_t>(page);
  std::vector<unsigned char> vec;
  try {
    vec.resize(npages);
  } catch (...) {
    return 0;
  }
  if (::mincore(const_cast<uint8_t*>(base_), size_, vec.data()) != 0)
    return 0;
  size_t resident = 0;
  for (unsigned char v : vec)
    if ((v & 1u) != 0) ++resident;
  return std::min(resident * static_cast<size_t>(page), size_);
}

}  // namespace swve::core
