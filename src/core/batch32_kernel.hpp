// Template body of the inter-sequence batch kernel family (see batch32.hpp).
// Instantiated per batch engine: emulated (any CPU), AVX2 (32 lanes,
// double-pshufb row lookup), AVX-512-VBMI (64 lanes, vpermb row lookup).
//
// Two shapes share one column-update body:
//   batch32_kernel<BE>        — one batch, the classic Fig 5 loop.
//   batch32_kernel_ilp<BE, K> — K independent batches fused into a single
//     column loop. Each row iteration round-robins the H/E/F recurrences of
//     all K batches, so the core always has K independent dependency chains
//     in flight instead of stalling on the single chain's adds/max latency
//     (the batch kernel is backend-bound at K=1 — see docs/performance.md).
//     Column blocks of every in-flight batch are software-prefetched
//     `batch_prefetch_distance()` columns ahead.
//
// Interleaving never changes results: lanes of different batches share no
// state, and each batch's own recurrence is evaluated in exactly the K=1
// order, so batch32_kernel_ilp is bit-identical to K calls of
// batch32_kernel (asserted across ISAs by tests/test_batch_ilp.cpp).
//
// Batch engine concept:
//   vec, lanes
//   zero/set1/load/store        — byte vectors
//   adds/subs/max               — unsigned saturating (epu8 semantics)
//   select_eq(a, b, t, f)       — per lane: a == b ? t : f
//   lookup32(row32, idx)        — per lane: row32[idx], idx in [0, 32)
//   prefetch(p)                 — hint a future column block into cache
#pragma once

#include <array>
#include <cstdint>
#include <cstring>

#include "core/batch32.hpp"
#include "core/params.hpp"
#include "core/workspace.hpp"

namespace swve::core {

/// Per-call constants of the batch kernel, hoisted out of the column loops
/// so the single-batch walker and the fused K-batch loop share one setup.
template <class BE>
struct BatchKernelSetup {
  using vec = typename BE::vec;
  vec vzero, vbias, vopen, vext, vmatch, vmis;
  const uint8_t* rows = nullptr;  // biased matrix rows (Matrix scheme)
  bool affine = false;
  bool use_matrix = false;
  int m = 0;
  int sat_limit = 0;

  BatchKernelSetup(seq::SeqView q, const AlignConfig& cfg) {
    m = static_cast<int>(q.length);
    affine = cfg.gap_model == GapModel::Affine;
    use_matrix = cfg.scheme == ScoreScheme::Matrix;
    const int bias = cfg.bias();
    sat_limit = 255 - bias - cfg.max_subst_score();
    auto clamp_u8 = [](int v) { return v < 0 ? 0 : (v > 255 ? 255 : v); };
    vzero = BE::zero();
    vbias = BE::set1(bias);
    vopen = BE::set1(clamp_u8(affine ? cfg.gap_open : cfg.gap_extend));
    vext = BE::set1(clamp_u8(cfg.gap_extend));
    vmatch = BE::set1(clamp_u8(cfg.match + bias));
    vmis = BE::set1(clamp_u8(cfg.mismatch + bias));
    rows = use_matrix ? cfg.matrix->rows_biased_u8() : nullptr;
  }
};

namespace detail {

/// One (row, batch) recurrence step: exactly the K=1 loop body, so any
/// interleaving of calls across batches stays bit-identical per batch.
/// `s` is the substitution score vector for (q[i], column symbol).
template <class BE>
inline void batch32_row_step(const BatchKernelSetup<BE>& kc,
                             typename BE::vec s, uint8_t* hrow, uint8_t* frow,
                             typename BE::vec& e, typename BE::vec& hdiag,
                             typename BE::vec& vmax) {
  using vec = typename BE::vec;
  const vec hp = BE::load(hrow);  // H(i, j-1)
  vec f;
  if (kc.affine)
    f = BE::max(BE::subs(hp, kc.vopen), BE::subs(BE::load(frow), kc.vext));
  else
    f = BE::subs(hp, kc.vext);
  const vec hs = BE::subs(BE::adds(hdiag, s), kc.vbias);
  const vec h = BE::max(hs, BE::max(e, f));
  e = kc.affine ? BE::max(BE::subs(h, kc.vopen), BE::subs(e, kc.vext))
                : BE::subs(h, kc.vext);
  hdiag = hp;
  BE::store(hrow, h);
  if (kc.affine) BE::store(frow, f);
  vmax = BE::max(vmax, h);
}

/// Substitution scores for row i against a column's symbol vector.
template <class BE>
inline typename BE::vec batch32_row_scores(const BatchKernelSetup<BE>& kc,
                                           seq::SeqView q, int i,
                                           typename BE::vec sym) {
  if (kc.use_matrix)
    return BE::lookup32(kc.rows + static_cast<size_t>(q[static_cast<size_t>(i)]) *
                                      seq::kMatrixStride,
                        sym);
  return BE::select_eq(BE::set1(q[static_cast<size_t>(i)]), sym, kc.vmatch,
                       kc.vmis);
}

/// Walk columns [j_begin, j_end) of a single batch, continuing from the
/// H/F state already in hcol/fcol (E and the diagonal reset per column, so
/// column state is exactly those arrays plus the running maximum).
template <class BE>
inline void batch32_walk_cols(const BatchKernelSetup<BE>& kc, seq::SeqView q,
                              const uint8_t* columns, uint32_t j_begin,
                              uint32_t j_end, uint8_t* hcol, uint8_t* fcol,
                              typename BE::vec& vmax, uint32_t prefetch_dist) {
  using vec = typename BE::vec;
  constexpr int B = BE::lanes;
  for (uint32_t j = j_begin; j < j_end; ++j) {
    if (prefetch_dist != 0 && j + prefetch_dist < j_end)
      BE::prefetch(columns + static_cast<size_t>(j + prefetch_dist) * B);
    const vec sym = BE::load(columns + static_cast<size_t>(j) * B);
    vec e = kc.vzero;      // E(i, j), vertical gaps, carried down the column
    vec hdiag = kc.vzero;  // H(i-1, j-1)
    for (int i = 0; i < kc.m; ++i)
      batch32_row_step<BE>(kc, batch32_row_scores<BE>(kc, q, i, sym),
                           hcol + static_cast<size_t>(i) * B,
                           fcol + static_cast<size_t>(i) * B, e, hdiag, vmax);
  }
}

/// Per-lane saturation check against the unbiased 8-bit headroom bound.
template <class BE>
inline void batch32_store_result(const BatchKernelSetup<BE>& kc,
                                 typename BE::vec vmax, Batch8Result& out) {
  BE::store(out.max_score, vmax);
  out.saturated_mask = 0;
  for (int k = 0; k < BE::lanes; ++k)
    if (out.max_score[k] >= kc.sat_limit)
      out.saturated_mask |= uint64_t{1} << k;
}

}  // namespace detail

template <class BE>
Batch8Result batch32_kernel(seq::SeqView q, const uint8_t* columns, uint32_t ncols,
                            const AlignConfig& cfg, Workspace& ws) {
  using vec = typename BE::vec;
  constexpr int B = BE::lanes;
  const int m = static_cast<int>(q.length);

  Batch8Result out{};
  std::memset(out.max_score, 0, sizeof(out.max_score));
  out.saturated_mask = 0;
  if (m == 0 || ncols == 0) return out;

  const BatchKernelSetup<BE> kc(q, cfg);
  auto* hcol = static_cast<uint8_t*>(
      ws.batch_h[0].ensure_zeroed(static_cast<size_t>(m) * B));
  uint8_t* fcol = nullptr;
  if (kc.affine)
    fcol = static_cast<uint8_t*>(
        ws.batch_f[0].ensure_zeroed(static_cast<size_t>(m) * B));

  vec vmax = kc.vzero;
  detail::batch32_walk_cols<BE>(kc, q, columns, 0, ncols, hcol, fcol, vmax,
                                batch_prefetch_distance());
  detail::batch32_store_result<BE>(kc, vmax, out);
  return out;
}

/// K independent batches through one fused column loop. Results land in
/// out[0..K): bit-identical to K separate batch32_kernel calls.
///
/// Columns [0, min ncols) run fused — every row iteration issues the
/// recurrence of all K batches, K independent dependency chains — and each
/// batch's ragged tail past the common minimum finishes with the
/// single-batch walker on its own H/F bank (E/diagonal reset per column, so
/// the hand-off is seamless).
template <class BE, int K>
void batch32_kernel_ilp(seq::SeqView q, const BatchCols* batches,
                        const AlignConfig& cfg, Workspace& ws,
                        Batch8Result* out) {
  static_assert(K >= 1 && K <= kMaxBatchInterleave, "unsupported interleave");
  using vec = typename BE::vec;
  constexpr int B = BE::lanes;
  const int m = static_cast<int>(q.length);

  for (int b = 0; b < K; ++b) {
    std::memset(out[b].max_score, 0, sizeof(out[b].max_score));
    out[b].saturated_mask = 0;
  }
  if (m == 0) return;

  const BatchKernelSetup<BE> kc(q, cfg);
  const uint32_t prefetch_dist = batch_prefetch_distance();

  uint8_t* hcol[K];
  uint8_t* fcol[K];
  vec vmax[K];
  uint32_t fused_cols = batches[0].ncols;
  for (int b = 0; b < K; ++b) {
    hcol[b] = static_cast<uint8_t*>(
        ws.batch_h[b].ensure_zeroed(static_cast<size_t>(m) * B));
    fcol[b] = nullptr;
    if (kc.affine)
      fcol[b] = static_cast<uint8_t*>(
          ws.batch_f[b].ensure_zeroed(static_cast<size_t>(m) * B));
    vmax[b] = kc.vzero;
    if (batches[b].ncols < fused_cols) fused_cols = batches[b].ncols;
  }

  for (uint32_t j = 0; j < fused_cols; ++j) {
    vec sym[K];
    vec e[K];
    vec hdiag[K];
    for (int b = 0; b < K; ++b) {
      if (prefetch_dist != 0 && j + prefetch_dist < batches[b].ncols)
        BE::prefetch(batches[b].columns +
                     static_cast<size_t>(j + prefetch_dist) * B);
      sym[b] = BE::load(batches[b].columns + static_cast<size_t>(j) * B);
      e[b] = kc.vzero;
      hdiag[b] = kc.vzero;
    }
    for (int i = 0; i < kc.m; ++i) {
      const size_t row = static_cast<size_t>(i) * B;
      if (kc.use_matrix) {
        // One row pointer serves all K lookups: the query residue is shared.
        const uint8_t* rowp =
            kc.rows +
            static_cast<size_t>(q[static_cast<size_t>(i)]) * seq::kMatrixStride;
        for (int b = 0; b < K; ++b)
          detail::batch32_row_step<BE>(kc, BE::lookup32(rowp, sym[b]),
                                       hcol[b] + row, fcol[b] + row, e[b],
                                       hdiag[b], vmax[b]);
      } else {
        const vec qv = BE::set1(q[static_cast<size_t>(i)]);
        for (int b = 0; b < K; ++b)
          detail::batch32_row_step<BE>(
              kc, BE::select_eq(qv, sym[b], kc.vmatch, kc.vmis), hcol[b] + row,
              fcol[b] + row, e[b], hdiag[b], vmax[b]);
      }
    }
  }

  // Ragged tails: finish each batch past the common column count alone.
  for (int b = 0; b < K; ++b) {
    if (batches[b].ncols > fused_cols)
      detail::batch32_walk_cols<BE>(kc, q, batches[b].columns, fused_cols,
                                    batches[b].ncols, hcol[b], fcol[b], vmax[b],
                                    prefetch_dist);
    detail::batch32_store_result<BE>(kc, vmax[b], out[b]);
  }
}

/// Portable batch engine.
template <int B>
struct EmuBatchEngine {
  struct vec {
    std::array<uint8_t, B> v;
  };
  static constexpr int lanes = B;
  static vec zero() {
    vec r;
    r.v.fill(0);
    return r;
  }
  static vec set1(int x) {
    vec r;
    r.v.fill(static_cast<uint8_t>(x));
    return r;
  }
  static vec load(const uint8_t* p) {
    vec r;
    std::memcpy(r.v.data(), p, B);
    return r;
  }
  static void store(uint8_t* p, vec a) { std::memcpy(p, a.v.data(), B); }
  static vec adds(vec a, vec b) {
    vec r;
    for (int k = 0; k < B; ++k) {
      int t = a.v[k] + b.v[k];
      r.v[k] = static_cast<uint8_t>(t > 255 ? 255 : t);
    }
    return r;
  }
  static vec subs(vec a, vec b) {
    vec r;
    for (int k = 0; k < B; ++k) {
      int t = a.v[k] - b.v[k];
      r.v[k] = static_cast<uint8_t>(t < 0 ? 0 : t);
    }
    return r;
  }
  static vec max(vec a, vec b) {
    vec r;
    for (int k = 0; k < B; ++k) r.v[k] = a.v[k] > b.v[k] ? a.v[k] : b.v[k];
    return r;
  }
  static vec select_eq(vec a, vec b, vec t, vec f) {
    vec r;
    for (int k = 0; k < B; ++k) r.v[k] = a.v[k] == b.v[k] ? t.v[k] : f.v[k];
    return r;
  }
  static vec lookup32(const uint8_t* row32, vec idx) {
    vec r;
    for (int k = 0; k < B; ++k) r.v[k] = row32[idx.v[k] & 31];
    return r;
  }
  static void prefetch(const void* p) {
#if defined(__GNUC__) || defined(__clang__)
    __builtin_prefetch(p);
#else
    (void)p;
#endif
  }
};

}  // namespace swve::core
