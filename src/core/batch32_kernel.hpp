// Template body of the inter-sequence batch kernel (see batch32.hpp).
// Instantiated per batch engine: emulated (any CPU), AVX2 (32 lanes,
// double-pshufb row lookup), AVX-512-VBMI (64 lanes, vpermb row lookup).
//
// Batch engine concept:
//   vec, lanes
//   zero/set1/load/store        — byte vectors
//   adds/subs/max               — unsigned saturating (epu8 semantics)
//   select_eq(a, b, t, f)       — per lane: a == b ? t : f
//   lookup32(row32, idx)        — per lane: row32[idx], idx in [0, 32)
#pragma once

#include <array>
#include <cstdint>
#include <cstring>

#include "core/batch32.hpp"
#include "core/params.hpp"
#include "core/workspace.hpp"

namespace swve::core {

template <class BE>
Batch8Result batch32_kernel(seq::SeqView q, const uint8_t* columns, uint32_t ncols,
                            const AlignConfig& cfg, Workspace& ws) {
  using vec = typename BE::vec;
  constexpr int B = BE::lanes;
  const int m = static_cast<int>(q.length);

  Batch8Result out{};
  std::memset(out.max_score, 0, sizeof(out.max_score));
  out.saturated_mask = 0;
  if (m == 0 || ncols == 0) return out;

  const bool affine = cfg.gap_model == GapModel::Affine;
  const bool use_matrix = cfg.scheme == ScoreScheme::Matrix;
  const int bias = cfg.bias();
  const int smax = cfg.max_subst_score();
  const int sat_limit = 255 - bias - smax;
  auto clamp_u8 = [](int v) { return v < 0 ? 0 : (v > 255 ? 255 : v); };
  const int open = clamp_u8(affine ? cfg.gap_open : cfg.gap_extend);
  const int ext = clamp_u8(cfg.gap_extend);

  auto* hcol = static_cast<uint8_t*>(
      ws.batch_h.ensure_zeroed(static_cast<size_t>(m) * B));
  uint8_t* fcol = nullptr;
  if (affine)
    fcol = static_cast<uint8_t*>(
        ws.batch_f.ensure_zeroed(static_cast<size_t>(m) * B));

  const uint8_t* rows = use_matrix ? cfg.matrix->rows_biased_u8() : nullptr;
  const vec vzero = BE::zero();
  const vec vbias = BE::set1(bias);
  const vec vopen = BE::set1(open);
  const vec vext = BE::set1(ext);
  const vec vmatch = BE::set1(clamp_u8(cfg.match + bias));
  const vec vmis = BE::set1(clamp_u8(cfg.mismatch + bias));
  vec vmax = vzero;

  for (uint32_t j = 0; j < ncols; ++j) {
    const vec sym = BE::load(columns + static_cast<size_t>(j) * B);
    vec e = vzero;      // E(i, j), vertical gaps, carried down the column
    vec hdiag = vzero;  // H(i-1, j-1)
    for (int i = 0; i < m; ++i) {
      vec s;
      if (use_matrix)
        s = BE::lookup32(rows + static_cast<size_t>(q[static_cast<size_t>(i)]) *
                                    seq::kMatrixStride,
                         sym);
      else
        s = BE::select_eq(BE::set1(q[static_cast<size_t>(i)]), sym, vmatch, vmis);

      const vec hp = BE::load(hcol + static_cast<size_t>(i) * B);  // H(i, j-1)
      vec f;
      if (affine)
        f = BE::max(BE::subs(hp, vopen),
                    BE::subs(BE::load(fcol + static_cast<size_t>(i) * B), vext));
      else
        f = BE::subs(hp, vext);
      const vec hs = BE::subs(BE::adds(hdiag, s), vbias);
      const vec h = BE::max(hs, BE::max(e, f));
      e = affine ? BE::max(BE::subs(h, vopen), BE::subs(e, vext))
                 : BE::subs(h, vext);
      hdiag = hp;
      BE::store(hcol + static_cast<size_t>(i) * B, h);
      if (affine) BE::store(fcol + static_cast<size_t>(i) * B, f);
      vmax = BE::max(vmax, h);
    }
  }

  BE::store(out.max_score, vmax);
  for (int k = 0; k < B; ++k)
    if (out.max_score[k] >= sat_limit)
      out.saturated_mask |= uint64_t{1} << k;
  return out;
}

/// Portable batch engine.
template <int B>
struct EmuBatchEngine {
  struct vec {
    std::array<uint8_t, B> v;
  };
  static constexpr int lanes = B;
  static vec zero() {
    vec r;
    r.v.fill(0);
    return r;
  }
  static vec set1(int x) {
    vec r;
    r.v.fill(static_cast<uint8_t>(x));
    return r;
  }
  static vec load(const uint8_t* p) {
    vec r;
    std::memcpy(r.v.data(), p, B);
    return r;
  }
  static void store(uint8_t* p, vec a) { std::memcpy(p, a.v.data(), B); }
  static vec adds(vec a, vec b) {
    vec r;
    for (int k = 0; k < B; ++k) {
      int t = a.v[k] + b.v[k];
      r.v[k] = static_cast<uint8_t>(t > 255 ? 255 : t);
    }
    return r;
  }
  static vec subs(vec a, vec b) {
    vec r;
    for (int k = 0; k < B; ++k) {
      int t = a.v[k] - b.v[k];
      r.v[k] = static_cast<uint8_t>(t < 0 ? 0 : t);
    }
    return r;
  }
  static vec max(vec a, vec b) {
    vec r;
    for (int k = 0; k < B; ++k) r.v[k] = a.v[k] > b.v[k] ? a.v[k] : b.v[k];
    return r;
  }
  static vec select_eq(vec a, vec b, vec t, vec f) {
    vec r;
    for (int k = 0; k < B; ++k) r.v[k] = a.v[k] == b.v[k] ? t.v[k] : f.v[k];
    return r;
  }
  static vec lookup32(const uint8_t* row32, vec idx) {
    vec r;
    for (int k = 0; k < B; ++k) r.v[k] = row32[idx.v[k] & 31];
    return r;
  }
};

}  // namespace swve::core
