// Non-throwing error propagation for configuration and request validation.
//
// The async service executes requests on worker threads, where a thrown
// std::invalid_argument would either kill the thread or need ad-hoc
// try/catch at every call site. Instead, validation has a non-throwing
// variant (`AlignConfig::try_validate()`) returning an ErrorOr<void> —
// a C++20-compatible stand-in for std::expected<T, ConfigError> — so a bad
// request can fail its future with a machine-readable code.
#pragma once

#include <string>
#include <utility>
#include <variant>

namespace swve::core {

/// Machine-readable failure description for configuration and service
/// request validation.
struct ConfigError {
  enum class Code {
    Ok = 0,
    MissingMatrix,        ///< Matrix scheme with a null matrix pointer
    NegativeGapPenalty,   ///< gap_open or gap_extend < 0
    OpenLessThanExtend,   ///< affine gap_open < gap_extend
    MatchLessThanMismatch,///< Fixed scheme with match < mismatch
    EmptyRequest,         ///< request carries no sequences / queries
    NoDatabase,           ///< search/batch submitted to a db-less service
    QueueFull,            ///< submission queue at capacity (backpressure)
    DeadlineExceeded,     ///< request deadline passed (queued or mid-run)
    ShuttingDown,         ///< service is stopping; request not accepted
    Unsupported,          ///< valid config, unsupported combination
    Internal,             ///< unexpected failure (see message)
    InvalidArtifact,      ///< on-disk swve db artifact rejected (corrupt,
                          ///< truncated, wrong version/endianness, ...)
  };

  Code code = Code::Internal;
  std::string message;

  /// Short stable identifier for logs/metrics ("queue_full", ...).
  static const char* code_name(Code c) noexcept {
    switch (c) {
      case Code::Ok: return "ok";
      case Code::MissingMatrix: return "missing_matrix";
      case Code::NegativeGapPenalty: return "negative_gap_penalty";
      case Code::OpenLessThanExtend: return "open_less_than_extend";
      case Code::MatchLessThanMismatch: return "match_less_than_mismatch";
      case Code::EmptyRequest: return "empty_request";
      case Code::NoDatabase: return "no_database";
      case Code::QueueFull: return "queue_full";
      case Code::DeadlineExceeded: return "deadline_exceeded";
      case Code::ShuttingDown: return "shutting_down";
      case Code::Unsupported: return "unsupported";
      case Code::Internal: return "internal";
      case Code::InvalidArtifact: return "invalid_artifact";
    }
    return "unknown";
  }
};

/// std::expected<T, ConfigError>-style result type (C++20-compatible).
/// Either holds a T or a ConfigError; contextually convertible to bool.
template <typename T>
class ErrorOr {
 public:
  ErrorOr(T value) : v_(std::move(value)) {}           // NOLINT(implicit)
  ErrorOr(ConfigError err) : v_(std::move(err)) {}     // NOLINT(implicit)

  bool ok() const noexcept { return std::holds_alternative<T>(v_); }
  explicit operator bool() const noexcept { return ok(); }

  T& value() & { return std::get<T>(v_); }
  const T& value() const& { return std::get<T>(v_); }
  T&& value() && { return std::get<T>(std::move(v_)); }
  const ConfigError& error() const { return std::get<ConfigError>(v_); }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

 private:
  std::variant<T, ConfigError> v_;
};

/// ErrorOr<void>: success carries nothing; default-constructed == success.
template <>
class ErrorOr<void> {
 public:
  ErrorOr() = default;                                  // success
  ErrorOr(ConfigError err) : err_(std::move(err)), ok_(false) {}  // NOLINT

  bool ok() const noexcept { return ok_; }
  explicit operator bool() const noexcept { return ok_; }
  const ConfigError& error() const { return err_; }

 private:
  ConfigError err_;
  bool ok_ = true;
};

}  // namespace swve::core
