// Inter-sequence batch kernel (Fig 5 of the paper).
//
// The database is reorganized offline into batches of `lanes` transposed
// sequences: byte k of column j is residue j of the batch's k-th sequence,
// so one vector load yields "the same position of 32 different sequences"
// and every lane runs its own private DP matrix (vectorization method (b) of
// Fig 1 — no intra-matrix dependencies at all). Substitution scores come
// from an in-register 32-entry lookup of the query residue's matrix row:
// the row is exactly one 256-bit load (rows are padded to 32 bytes), and
// the lookup is vpermb under AVX-512-VBMI or a double-pshufb+blend under
// AVX2 ("extract scores with AVX shuffling instructions").
//
// The kernel is 8-bit and score-only: it is the high-throughput scoring
// front end of scenario 2 (batch of queries vs database). Lanes that
// saturate are re-scored exactly by the diagonal kernel's 16/32-bit ladder.
#pragma once

#include <cstdint>
#include <vector>

#include "core/params.hpp"
#include "core/workspace.hpp"
#include "seq/database.hpp"

namespace swve::core {

/// Database packed for the batch kernel. Sequences are length-sorted before
/// batching so per-batch padding (to the batch max length) stays small.
class Batch32Db {
 public:
  /// `lanes` is the kernel width in sequences: 32 (AVX2 / scalar) or 64
  /// (AVX-512 VBMI). The final ragged batch is padded with empty lanes.
  Batch32Db(const seq::SequenceDatabase& db, int lanes);

  struct Batch {
    const uint8_t* columns;  ///< max_len columns of `lanes` bytes each
    uint32_t max_len;        ///< longest sequence in the batch
    uint32_t count;          ///< valid lanes (rest are padding)
    const uint32_t* seq_index;  ///< count entries: original database indices
    const uint32_t* seq_len;    ///< count entries
  };

  int lanes() const noexcept { return lanes_; }
  size_t batch_count() const noexcept { return batches_.size(); }
  Batch batch(size_t b) const noexcept;
  size_t sequence_count() const noexcept { return total_seqs_; }
  /// Padding overhead: padded cells / real cells - 1.
  double padding_overhead() const noexcept;

 private:
  struct BatchMeta {
    size_t column_offset;  // into columns_, in bytes
    size_t index_offset;   // into seq_index_/seq_len_
    uint32_t max_len;
    uint32_t count;
  };
  int lanes_;
  size_t total_seqs_ = 0;
  uint64_t real_residues_ = 0;
  uint64_t padded_residues_ = 0;
  std::vector<uint8_t> columns_;
  std::vector<uint32_t> seq_index_;
  std::vector<uint32_t> seq_len_;
  std::vector<BatchMeta> batches_;
};

/// Pad residue code used for lanes past a sequence's end and for empty
/// lanes: the top padded matrix row/column, which scores the matrix minimum
/// against everything (and never equals a real query code in Fixed mode).
inline constexpr uint8_t kBatchPadCode = seq::kMatrixStride - 1;

/// Raw per-batch 8-bit result.
struct Batch8Result {
  uint8_t max_score[64];    ///< per-lane running maximum (unbiased H domain)
  uint64_t saturated_mask;  ///< lanes whose max hit the saturation bound
};

/// Run the 8-bit batch kernel for one query against one batch.
/// `isa` must be resolved; falls back internally if the ISA lacks the
/// required byte-shuffle support. Affine/Linear and Matrix/Fixed honored;
/// traceback is not supported (by design, see header comment).
Batch8Result batch32_align_u8(seq::SeqView q, const Batch32Db::Batch& batch, int lanes,
                              const AlignConfig& cfg, Workspace& ws, simd::Isa isa);

/// Score one query against the whole packed database: runs the 8-bit batch
/// kernel and transparently re-scores saturated lanes with the diagonal
/// kernel's 16/32-bit ladder. Returns scores indexed by original database
/// sequence index, plus statistics.
struct BatchSearchStats {
  uint64_t cells8 = 0;        ///< DP cells done by the 8-bit batch kernel
  uint64_t rescored = 0;      ///< sequences re-scored at 16/32 bits
  uint64_t rescored_cells = 0;
};
std::vector<int> batch_scores(seq::SeqView q, const Batch32Db& bdb,
                              const seq::SequenceDatabase& db, const AlignConfig& cfg,
                              Workspace& ws, BatchSearchStats* stats = nullptr);

// Per-ISA kernel entry points (internal; exposed for tests/benches).
Batch8Result batch32_u8_scalar(seq::SeqView q, const uint8_t* columns, uint32_t cols,
                               int lanes, const AlignConfig& cfg, Workspace& ws);
#if defined(SWVE_HAVE_AVX2_BUILD)
Batch8Result batch32_u8_avx2(seq::SeqView q, const uint8_t* columns, uint32_t cols,
                             const AlignConfig& cfg, Workspace& ws);  // 32 lanes
#endif
#if defined(SWVE_HAVE_AVX512_BUILD)
Batch8Result batch32_u8_avx512(seq::SeqView q, const uint8_t* columns, uint32_t cols,
                               const AlignConfig& cfg, Workspace& ws);  // 64 lanes
#endif

}  // namespace swve::core
