// Inter-sequence batch kernel (Fig 5 of the paper).
//
// The database is reorganized offline into batches of `lanes` transposed
// sequences: byte k of column j is residue j of the batch's k-th sequence,
// so one vector load yields "the same position of 32 different sequences"
// and every lane runs its own private DP matrix (vectorization method (b) of
// Fig 1 — no intra-matrix dependencies at all). Substitution scores come
// from an in-register 32-entry lookup of the query residue's matrix row:
// the row is exactly one 256-bit load (rows are padded to 32 bytes), and
// the lookup is vpermb under AVX-512-VBMI or a double-pshufb+blend under
// AVX2 ("extract scores with AVX shuffling instructions").
//
// The kernel is 8-bit and score-only: it is the high-throughput scoring
// front end of scenario 2 (batch of queries vs database). Lanes that
// saturate are re-scored exactly by the diagonal kernel's 16/32-bit ladder.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/params.hpp"
#include "core/workspace.hpp"
#include "seq/database.hpp"

namespace swve::core {

class PreparedQuery;  // core/prepared_query.hpp

/// How Batch32Db orders sequences across batches. Every policy keeps the
/// seq_index indirection, so scores always land at original database
/// indices and results are bit-identical across policies — only the DP work
/// spent on padding differs.
enum class PackingPolicy : uint8_t {
  /// Database order. Every batch pays max_len over a mixed-length group, so
  /// most of the 8-bit kernel's work can land on padding (the layout the
  /// batch kernel naively inherits from the input). Kept for comparison
  /// benchmarks and for callers that require packed order == input order.
  DbOrder,
  /// Ascending length order: for a fixed lane count this minimizes the sum
  /// of per-batch max_len, i.e. it is the padding-optimal packing (the
  /// SWAPHI / SSW approach). The default.
  LengthSorted,
  /// Geometric length bins (each bin spans lengths within 2x), database
  /// order preserved inside a bin. Padding within ~2x of optimal while
  /// keeping batch members close in database order — friendlier to callers
  /// that correlate nearby indices (rescore locality, sharding).
  LengthBinned,
};
const char* packing_policy_name(PackingPolicy p) noexcept;

/// One batch's placement inside the packed buffers. The layout is fixed and
/// padding-free (32 bytes) because this struct is also the on-disk batch
/// record of the swve db artifact (core/db_format.hpp): changing it means
/// bumping the format version.
struct BatchRecord {
  uint64_t column_offset;  ///< into the column stream, in bytes
  uint64_t index_offset;   ///< into seq_index/seq_len, in entries
  uint32_t max_len;
  uint32_t count;
  uint64_t real_residues;
};
static_assert(sizeof(BatchRecord) == 32, "BatchRecord is an on-disk layout");

/// Non-owning description of an already-packed database — the shape of the
/// batch sections inside an mmap'd swve db artifact. Every pointer must
/// outlive any Batch32Db view built on top of it.
struct PackedView {
  int lanes = 32;
  PackingPolicy policy = PackingPolicy::LengthSorted;
  size_t total_seqs = 0;
  uint64_t real_residues = 0;
  uint64_t padded_residues = 0;
  const uint8_t* columns = nullptr;    ///< concatenated transposed columns
  const uint32_t* seq_index = nullptr;
  const uint32_t* seq_len = nullptr;
  const BatchRecord* batches = nullptr;
  size_t batch_count = 0;
};

/// Database packed for the batch kernel. Sequences are length-sorted (or
/// binned, per PackingPolicy) before batching so per-batch padding (to the
/// batch max length) stays small.
class Batch32Db {
 public:
  /// `lanes` is the kernel width in sequences: 32 (AVX2 / scalar) or 64
  /// (AVX-512 VBMI). The final ragged batch is padded with empty lanes.
  Batch32Db(const seq::SequenceDatabase& db, int lanes,
            PackingPolicy policy = PackingPolicy::LengthSorted);

  /// View mode: serve batches straight out of externally-owned storage (an
  /// mmap'd artifact). No copies; search results are bit-identical to an
  /// owned Batch32Db packed with the same lanes/policy.
  explicit Batch32Db(const PackedView& view);

  struct Batch {
    const uint8_t* columns;  ///< max_len columns of `lanes` bytes each
    uint32_t max_len;        ///< longest sequence in the batch
    uint32_t count;          ///< valid lanes (rest are padding)
    const uint32_t* seq_index;  ///< count entries: original database indices
    const uint32_t* seq_len;    ///< count entries
    uint64_t real_residues;  ///< sum of seq_len (useful-cell accounting)
  };

  int lanes() const noexcept { return lanes_; }
  PackingPolicy policy() const noexcept { return policy_; }
  size_t batch_count() const noexcept { return batch_count_; }
  Batch batch(size_t b) const noexcept;
  size_t sequence_count() const noexcept { return total_seqs_; }
  /// False in view mode (storage belongs to the mapped artifact).
  bool owns_storage() const noexcept { return !view_; }
  /// Raw packed storage, exposed for the artifact writer. Valid in both
  /// owned and view modes.
  std::span<const uint8_t> column_bytes() const noexcept;
  /// Column bytes owned by batches [first_batch, end_batch) — the packing
  /// keeps column storage in batch order, so a contiguous batch range maps
  /// to one contiguous byte range. This is the unit of shard placement
  /// (mbind / madvise of exactly one shard's stream); empty span on an
  /// empty or out-of-range request.
  std::span<const uint8_t> column_range(size_t first_batch,
                                        size_t end_batch) const noexcept;
  std::span<const uint32_t> seq_index_data() const noexcept;
  std::span<const uint32_t> seq_len_data() const noexcept;
  std::span<const BatchRecord> batch_records() const noexcept;
  /// Residues of actual sequence data packed into the columns.
  uint64_t real_residues() const noexcept { return real_residues_; }
  /// Residues the kernel will actually walk: sum over batches of
  /// max_len * lanes (padding included).
  uint64_t padded_residues() const noexcept { return padded_residues_; }
  /// Packing efficiency: real residues / padded residues, in (0, 1].
  /// Multiplying by a query length turns it into useful cells / DP cells.
  double packing_efficiency() const noexcept;
  /// Padding overhead: padded cells / real cells - 1.
  double padding_overhead() const noexcept;

 private:
  int lanes_;
  PackingPolicy policy_;
  bool view_ = false;
  size_t total_seqs_ = 0;
  uint64_t real_residues_ = 0;
  uint64_t padded_residues_ = 0;
  // Owned storage (empty in view mode).
  std::vector<uint8_t> columns_;
  std::vector<uint32_t> seq_index_;
  std::vector<uint32_t> seq_len_;
  std::vector<BatchRecord> batches_;
  // Access always goes through these; the owned ctor points them at the
  // vectors above, the view ctor at the caller's storage.
  const uint8_t* columns_p_ = nullptr;
  const uint32_t* seq_index_p_ = nullptr;
  const uint32_t* seq_len_p_ = nullptr;
  const BatchRecord* batches_p_ = nullptr;
  size_t batch_count_ = 0;
  size_t column_bytes_ = 0;   // total bytes behind columns_p_
  size_t index_entries_ = 0;  // entries behind seq_index_p_/seq_len_p_
};

/// Pad residue code used for lanes past a sequence's end and for empty
/// lanes: the top padded matrix row/column, which scores the matrix minimum
/// against everything (and never equals a real query code in Fixed mode).
inline constexpr uint8_t kBatchPadCode = seq::kMatrixStride - 1;

/// Raw per-batch 8-bit result.
struct Batch8Result {
  uint8_t max_score[64];    ///< per-lane running maximum (unbiased H domain)
  uint64_t saturated_mask;  ///< lanes whose max hit the saturation bound
};

/// One batch's transposed column stream, as fed to the interleaved kernel
/// family (a Batch32Db::Batch minus the index metadata).
struct BatchCols {
  const uint8_t* columns = nullptr;  ///< ncols blocks of `lanes` bytes
  uint32_t ncols = 0;                ///< the batch's max_len
};

/// Software-prefetch distance of the batch kernels, in columns: while
/// walking column j the kernel prefetches column j+distance of every
/// in-flight batch. 0 disables prefetch. Thread-safe; tunable at runtime
/// (the GA tuner co-tunes it with interleave depth and compiler flags).
inline constexpr uint32_t kDefaultBatchPrefetchCols = 4;
uint32_t batch_prefetch_distance() noexcept;
/// Clamped to [0, 64]. Results are bit-identical for every distance.
void set_batch_prefetch_distance(uint32_t cols) noexcept;

/// Run the 8-bit batch kernel for one query against one batch.
/// `isa` must be resolved; falls back internally if the ISA lacks the
/// required byte-shuffle support. Affine/Linear and Matrix/Fixed honored;
/// traceback is not supported (by design, see header comment).
Batch8Result batch32_align_u8(seq::SeqView q, const Batch32Db::Batch& batch, int lanes,
                              const AlignConfig& cfg, Workspace& ws, simd::Isa isa);

/// Run the 8-bit kernel over `count` independent batches, interleaving up
/// to `k_interleave` of them (1, 2, or 4) per fused kernel pass — the
/// software-pipelined path that keeps several dependency chains in flight.
/// Ragged groups (count not divisible by k_interleave) decompose into the
/// largest supported sub-groups. out[i] receives batch i's result,
/// bit-identical to `count` batch32_align_u8 calls for every K and ISA.
void batch32_align_u8_group(seq::SeqView q, const BatchCols* batches, int count,
                            int lanes, const AlignConfig& cfg, Workspace& ws,
                            simd::Isa isa, int k_interleave, Batch8Result* out);

/// Score one query against the whole packed database: runs the 8-bit batch
/// kernel and transparently re-scores saturated lanes with the diagonal
/// kernel's 16/32-bit ladder. Returns scores indexed by original database
/// sequence index, plus statistics.
struct BatchSearchStats {
  uint64_t cells8 = 0;        ///< DP cells done by the 8-bit batch kernel
                              ///< (padding included: max_len * lanes * m)
  uint64_t useful_cells8 = 0; ///< cells8 that landed on real residues
  uint64_t rescored = 0;      ///< sequences re-scored at 16/32 bits
  uint64_t rescored_cells = 0;

  /// Useful fraction of the 8-bit kernel's work, in (0, 1]; 0 if none ran.
  double packing_efficiency() const noexcept {
    return cells8 > 0
               ? static_cast<double>(useful_cells8) / static_cast<double>(cells8)
               : 0.0;
  }

  BatchSearchStats& operator+=(const BatchSearchStats& o) noexcept {
    cells8 += o.cells8;
    useful_cells8 += o.useful_cells8;
    rescored += o.rescored;
    rescored_cells += o.rescored_cells;
    return *this;
  }
};
/// `prep`, when non-null, must be a PreparedQuery built from exactly `q`;
/// the 16/32-bit rescore ladder then skips rebuilding its query feeds.
std::vector<int> batch_scores(seq::SeqView q, const Batch32Db& bdb,
                              const seq::SequenceDatabase& db, const AlignConfig& cfg,
                              Workspace& ws, BatchSearchStats* stats = nullptr,
                              const PreparedQuery* prep = nullptr);

// Per-ISA kernel entry points (internal; exposed for tests/benches). The
// *_ilp variants run exactly `k` batches fused (k in {2, 4}).
Batch8Result batch32_u8_scalar(seq::SeqView q, const uint8_t* columns, uint32_t cols,
                               int lanes, const AlignConfig& cfg, Workspace& ws);
void batch32_u8_scalar_ilp(seq::SeqView q, const BatchCols* batches, int k,
                           int lanes, const AlignConfig& cfg, Workspace& ws,
                           Batch8Result* out);
#if defined(SWVE_HAVE_AVX2_BUILD)
Batch8Result batch32_u8_avx2(seq::SeqView q, const uint8_t* columns, uint32_t cols,
                             const AlignConfig& cfg, Workspace& ws);  // 32 lanes
void batch32_u8_avx2_ilp(seq::SeqView q, const BatchCols* batches, int k,
                         const AlignConfig& cfg, Workspace& ws, Batch8Result* out);
#endif
#if defined(SWVE_HAVE_AVX512_BUILD)
Batch8Result batch32_u8_avx512(seq::SeqView q, const uint8_t* columns, uint32_t cols,
                               const AlignConfig& cfg, Workspace& ws);  // 64 lanes
void batch32_u8_avx512_ilp(seq::SeqView q, const BatchCols* batches, int k,
                           const AlignConfig& cfg, Workspace& ws, Batch8Result* out);
#endif

}  // namespace swve::core
