#include "core/scalar_ref.hpp"

#include <algorithm>
#include <stdexcept>

#include "core/traceback.hpp"

namespace swve::core {

namespace {

inline int clamp0(int x) { return x < 0 ? 0 : x; }

struct Scorer {
  const AlignConfig* cfg;
  int operator()(uint8_t a, uint8_t b) const {
    return cfg->scheme == ScoreScheme::Matrix ? cfg->matrix->score(a, b)
                                              : (a == b ? cfg->match : cfg->mismatch);
  }
};

}  // namespace

Alignment ref_align(seq::SeqView q, seq::SeqView r, const AlignConfig& cfg) {
  cfg.validate();
  const int m = static_cast<int>(q.length);
  const int n = static_cast<int>(r.length);
  Alignment out;
  out.width_used = Width::W32;
  out.isa_used = simd::Isa::Scalar;
  if (m == 0 || n == 0) return out;

  const Scorer score{&cfg};
  const bool affine = cfg.gap_model == GapModel::Affine;
  const int open = affine ? cfg.gap_open : cfg.gap_extend;
  const int ext = cfg.gap_extend;

  const bool tb = cfg.traceback;
  std::vector<uint8_t> dirs;
  if (tb) {
    uint64_t cells = static_cast<uint64_t>(m) * static_cast<uint64_t>(n);
    if (cells > cfg.max_traceback_cells)
      throw std::length_error("ref_align: traceback matrix exceeds cell cap");
    dirs.assign(cells, 0);
  }

  // One row of H and E (E = vertical-gap matrix, consumes query residues);
  // F carries along the row.
  std::vector<int> hrow(static_cast<size_t>(n) + 1, 0);
  std::vector<int> erow(static_cast<size_t>(n) + 1, 0);

  const int band = cfg.band;
  int best = 0, bi = -1, bj = -1;
  for (int i = 0; i < m; ++i) {
    const int jb = band >= 0 ? std::max(0, i - band) : 0;
    const int je = band >= 0 ? std::min(n - 1, i + band) : n - 1;
    if (je < jb) continue;  // row entirely outside the band
    if (band >= 0 && i + band <= n - 1) {
      // The slot at the band's upper edge was last written by an older row;
      // out-of-band cells must read as 0 when the edge re-enters below.
      hrow[static_cast<size_t>(i + band) + 1] = 0;  // H(i-1, i+band) slot
      erow[static_cast<size_t>(i + band) + 1] = 0;
    }
    // H(i-1, jb-1): in band when jb > 0 (distance exactly `band`).
    int hdiag = jb > 0 ? hrow[static_cast<size_t>(jb)] : 0;
    // H(i, j-1) from this row; the (i, jb-1) neighbor is out of band/ref.
    int hleft = 0;
    int f = 0;
    for (int j = jb; j <= je; ++j) {
      const size_t jj = static_cast<size_t>(j);
      const int hup = hrow[jj + 1];  // H(i-1, j)
      int e, f_open, f_ext, e_open, e_ext;
      if (affine) {
        e_open = clamp0(hup - open);
        e_ext = clamp0(erow[jj + 1] - ext);
        e = std::max(e_open, e_ext);
        f_open = clamp0(hleft - open);
        f_ext = clamp0(f - ext);
        f = std::max(f_open, f_ext);
      } else {
        e_open = e_ext = e = clamp0(hup - ext);
        f_open = f_ext = f = clamp0(hleft - ext);
      }
      const int hs = clamp0(hdiag + score(q[static_cast<size_t>(i)], r[jj]));
      int h = std::max({0, hs, e, f});

      if (tb) {
        uint8_t flags;
        if (h == 0)
          flags = kTbStop;
        else if (h == hs)
          flags = kTbDiag;
        else if (h == e)
          flags = kTbE;
        else
          flags = kTbF;
        if (affine) {
          if (e != e_open) flags |= kTbEExt;  // prefer "open" on ties
          if (f != f_open) flags |= kTbFExt;
        }
        dirs[static_cast<size_t>(i) * static_cast<size_t>(n) + jj] = flags;
      }

      if (h > best) {
        best = h;
        bi = i;
        bj = j;
      }

      hdiag = hup;
      hleft = h;
      hrow[jj + 1] = h;
      erow[jj + 1] = e;
    }
  }

  out.score = best;
  out.end_query = bi;
  out.end_ref = bj;
  out.stats.cells = static_cast<uint64_t>(m) * static_cast<uint64_t>(n);
  out.stats.scalar_cells = out.stats.cells;

  if (tb && best > 0) {
    auto at = [&](int i, int j) {
      return dirs[static_cast<size_t>(i) * static_cast<size_t>(n) +
                  static_cast<size_t>(j)];
    };
    TracebackResult t = walk_traceback(at, bi, bj);
    out.begin_query = t.begin_query;
    out.begin_ref = t.begin_ref;
    out.cigar = std::move(t.cigar);
  }
  return out;
}

std::vector<int> ref_matrix(seq::SeqView q, seq::SeqView r, const AlignConfig& cfg) {
  cfg.validate();
  const int m = static_cast<int>(q.length);
  const int n = static_cast<int>(r.length);
  const Scorer score{&cfg};
  const bool affine = cfg.gap_model == GapModel::Affine;
  const int open = affine ? cfg.gap_open : cfg.gap_extend;
  const int ext = cfg.gap_extend;

  const int band = cfg.band;
  std::vector<int> H(static_cast<size_t>(m) * static_cast<size_t>(n), 0);
  std::vector<int> hrow(static_cast<size_t>(n) + 1, 0);
  std::vector<int> erow(static_cast<size_t>(n) + 1, 0);
  for (int i = 0; i < m; ++i) {
    const int jb = band >= 0 ? std::max(0, i - band) : 0;
    const int je = band >= 0 ? std::min(n - 1, i + band) : n - 1;
    if (je < jb) continue;
    if (band >= 0 && i + band <= n - 1) {
      hrow[static_cast<size_t>(i + band) + 1] = 0;
      erow[static_cast<size_t>(i + band) + 1] = 0;
    }
    int hdiag = jb > 0 ? hrow[static_cast<size_t>(jb)] : 0;
    int hleft = 0, f = 0;
    for (int j = jb; j <= je; ++j) {
      const size_t jj = static_cast<size_t>(j);
      const int hup = hrow[jj + 1];
      int e;
      if (affine) {
        e = std::max(clamp0(hup - open), clamp0(erow[jj + 1] - ext));
        f = std::max(clamp0(hleft - open), clamp0(f - ext));
      } else {
        e = clamp0(hup - ext);
        f = clamp0(hleft - ext);
      }
      int h = std::max({0, clamp0(hdiag + score(q[static_cast<size_t>(i)], r[jj])), e, f});
      H[static_cast<size_t>(i) * static_cast<size_t>(n) + jj] = h;
      hdiag = hup;
      hleft = h;
      hrow[jj + 1] = h;
      erow[jj + 1] = e;
    }
  }
  return H;
}

}  // namespace swve::core
