#include "core/traceback.hpp"

#include <stdexcept>

#include "core/params.hpp"
#include "seq/sequence.hpp"

namespace swve::core {

int replay_score(seq::SeqView q, seq::SeqView r, const AlignConfig& cfg,
                 const Alignment& aln) {
  if (aln.cigar.empty()) return 0;
  if (aln.begin_query < 0 || aln.begin_ref < 0)
    throw std::invalid_argument("replay_score: alignment has no begin cell");
  int64_t score = 0;
  size_t qi = static_cast<size_t>(aln.begin_query);
  size_t rj = static_cast<size_t>(aln.begin_ref);
  const Cigar& c = aln.cigar;
  for (size_t k = 0; k < c.size(); ++k) {
    uint32_t len = c.len(k);
    switch (c.op(k)) {
      case CigarOp::Match:
        for (uint32_t t = 0; t < len; ++t) {
          if (qi >= q.length || rj >= r.length)
            throw std::out_of_range("replay_score: CIGAR runs past sequence end");
          if (cfg.scheme == ScoreScheme::Matrix)
            score += cfg.matrix->score(q[qi], r[rj]);
          else
            score += q[qi] == r[rj] ? cfg.match : cfg.mismatch;
          ++qi;
          ++rj;
        }
        break;
      case CigarOp::Ins:
        score -= cfg.gap_model == GapModel::Affine
                     ? cfg.gap_open + static_cast<int64_t>(len - 1) * cfg.gap_extend
                     : static_cast<int64_t>(len) * cfg.gap_extend;
        qi += len;
        break;
      case CigarOp::Del:
        score -= cfg.gap_model == GapModel::Affine
                     ? cfg.gap_open + static_cast<int64_t>(len - 1) * cfg.gap_extend
                     : static_cast<int64_t>(len) * cfg.gap_extend;
        rj += len;
        break;
    }
  }
  if (qi != static_cast<size_t>(aln.end_query) + 1 ||
      rj != static_cast<size_t>(aln.end_ref) + 1)
    throw std::out_of_range("replay_score: CIGAR does not end at the end cell");
  return static_cast<int>(score);
}

}  // namespace swve::core
