// Runtime dispatch of the diagonal kernel family: ISA resolution, the
// 8 -> 16 -> 32 bit adaptive-width ladder (contribution iii), and the
// traceback walk over the kernel's diagonal-major direction flags.
#pragma once

#include "core/diag_kernel.hpp"
#include "core/params.hpp"
#include "core/result.hpp"
#include "core/workspace.hpp"
#include "seq/sequence.hpp"

namespace swve::core {

// Per-ISA entry points (defined in their own translation units compiled
// with the matching -m flags). `width` must be concrete (not Adaptive).
DiagOutput diag_scalar(const DiagRequest& rq, Width width);
#if defined(SWVE_HAVE_SSE41_BUILD)
DiagOutput diag_sse41(const DiagRequest& rq, Width width);
#endif
#if defined(SWVE_HAVE_AVX2_BUILD)
DiagOutput diag_avx2(const DiagRequest& rq, Width width);
#endif
#if defined(SWVE_HAVE_AVX512_BUILD)
DiagOutput diag_avx512(const DiagRequest& rq, Width width);
#endif

/// Run one kernel at a concrete ISA and width. `isa` must already be
/// resolved (not Auto) and available on this CPU.
DiagOutput run_diag_kernel(const DiagRequest& rq, simd::Isa isa, Width width);

/// The concrete ScoreDelivery that ScoreDelivery::Auto resolves to for a
/// resolved `isa`: the per-ISA override if one is pinned, else the cached
/// one-time micro-calibration result for this machine.
ScoreDelivery resolved_delivery(simd::Isa isa);

/// Pin what Auto resolves to for `isa` (tests and the service use this to
/// fix a delivery path deterministically instead of depending on hidden
/// calibration state). Passing ScoreDelivery::Auto clears the pin and
/// re-enables calibration. Thread-safe; takes effect for subsequent calls.
void set_delivery_override(simd::Isa isa, ScoreDelivery delivery);

/// Full alignment through the diagonal kernel family: resolves the ISA,
/// runs the adaptive width ladder, and (if requested) walks the traceback.
/// This is the paper's aligner; align::Aligner wraps it for public use.
/// `prep`, when non-null, must be a PreparedQuery built from exactly `q`;
/// the kernels then skip rebuilding the per-query feed arrays (bit-identical
/// results, less per-call setup — see core::PreparedQuery).
Alignment diag_align(seq::SeqView q, seq::SeqView r, const AlignConfig& cfg,
                     Workspace& ws, const PreparedQuery* prep = nullptr);

}  // namespace swve::core
