// Runtime dispatch of the diagonal kernel family: ISA resolution, the
// 8 -> 16 -> 32 bit adaptive-width ladder (contribution iii), and the
// traceback walk over the kernel's diagonal-major direction flags.
#pragma once

#include "core/diag_kernel.hpp"
#include "core/params.hpp"
#include "core/result.hpp"
#include "core/workspace.hpp"
#include "seq/sequence.hpp"

namespace swve::core {

// Per-ISA entry points (defined in their own translation units compiled
// with the matching -m flags). `width` must be concrete (not Adaptive).
DiagOutput diag_scalar(const DiagRequest& rq, Width width);
#if defined(SWVE_HAVE_SSE41_BUILD)
DiagOutput diag_sse41(const DiagRequest& rq, Width width);
#endif
#if defined(SWVE_HAVE_AVX2_BUILD)
DiagOutput diag_avx2(const DiagRequest& rq, Width width);
#endif
#if defined(SWVE_HAVE_AVX512_BUILD)
DiagOutput diag_avx512(const DiagRequest& rq, Width width);
#endif

/// Run one kernel at a concrete ISA and width. `isa` must already be
/// resolved (not Auto) and available on this CPU.
DiagOutput run_diag_kernel(const DiagRequest& rq, simd::Isa isa, Width width);

/// The concrete ScoreDelivery that ScoreDelivery::Auto resolves to for a
/// resolved `isa`: the per-ISA override if one is pinned, else the cached
/// one-time micro-calibration result for this machine.
ScoreDelivery resolved_delivery(simd::Isa isa);

/// Pin what Auto resolves to for `isa` (tests and the service use this to
/// fix a delivery path deterministically instead of depending on hidden
/// calibration state). Passing ScoreDelivery::Auto clears the pin and
/// re-enables calibration. Thread-safe; takes effect for subsequent calls.
void set_delivery_override(simd::Isa isa, ScoreDelivery delivery);

/// Interleave-depth policy of the batch kernel family: how many independent
/// batches the fused column loop keeps in flight (software pipelining). The
/// batch recurrence is one serial dependency chain per column, so a single
/// batch leaves vector ports idle; interleaving K batches gives the core K
/// chains to overlap. Results are bit-identical for every depth.
struct IlpPolicy {
  enum class Mode : uint8_t { Auto, Fixed };
  Mode mode = Mode::Auto;
  int k = 1;  ///< concrete depth when Fixed: 1, 2, or 4

  static constexpr IlpPolicy auto_policy() { return IlpPolicy{Mode::Auto, 1}; }
  static constexpr IlpPolicy fixed(int depth) {
    return IlpPolicy{Mode::Fixed, depth};
  }
};

/// The concrete interleave depth (1, 2, or 4) the batch path uses for a
/// resolved `isa`: the per-ISA override if one is pinned, else the cached
/// one-time calibration result (times K = 1/2/4 on a synthetic batch group
/// and keeps the fastest, mirroring resolved_delivery).
int resolved_ilp(simd::Isa isa);

/// Pin the interleave depth for `isa`. Fixed depths are normalized to the
/// supported set {1, 2, 4} (3 rounds down to 2). Passing an Auto policy
/// clears the pin and re-enables calibration. Thread-safe.
void set_ilp_override(simd::Isa isa, IlpPolicy policy);

/// Full alignment through the diagonal kernel family: resolves the ISA,
/// runs the adaptive width ladder, and (if requested) walks the traceback.
/// This is the paper's aligner; align::Aligner wraps it for public use.
/// `prep`, when non-null, must be a PreparedQuery built from exactly `q`;
/// the kernels then skip rebuilding the per-query feed arrays (bit-identical
/// results, less per-call setup — see core::PreparedQuery).
Alignment diag_align(seq::SeqView q, seq::SeqView r, const AlignConfig& cfg,
                     Workspace& ws, const PreparedQuery* prep = nullptr);

}  // namespace swve::core
