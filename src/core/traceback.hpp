// Traceback: per-cell direction flags and the walk that turns them into a
// CIGAR. The walk is shared between the golden scalar model (row-major flag
// storage) and the diagonal kernels (diagonal-major storage, Fig 2) via a
// flag accessor functor, so every kernel's flags are interpreted one way.
#pragma once

#include <cstdint>

#include "core/params.hpp"
#include "core/result.hpp"
#include "seq/sequence.hpp"

namespace swve::core {

// Direction flag layout (one byte per DP cell).
// Bits 0-1: source of H — and the walk priority on ties is exactly this
// numeric order (zero beats diag beats E beats F):
inline constexpr uint8_t kTbStop = 0;  ///< H == 0 (local alignment starts here)
inline constexpr uint8_t kTbDiag = 1;  ///< H from H(i-1,j-1) + s
inline constexpr uint8_t kTbE = 2;     ///< H from E (vertical gap, consumes query)
inline constexpr uint8_t kTbF = 3;     ///< H from F (horizontal gap, consumes ref)
inline constexpr uint8_t kTbSrcMask = 3;
// Bit 2: E chose gap-extension (came from E(i-1,j) - extend, not H - open).
inline constexpr uint8_t kTbEExt = 4;
// Bit 3: F chose gap-extension.
inline constexpr uint8_t kTbFExt = 8;

struct TracebackResult {
  int begin_query = -1;
  int begin_ref = -1;
  Cigar cigar;
};

/// Walk the flags back from end cell (ei, ej); `flag_at(i, j)` returns the
/// direction byte of cell (i, j). Requires score > 0 at the end cell.
template <class FlagAt>
TracebackResult walk_traceback(FlagAt&& flag_at, int ei, int ej) {
  TracebackResult out;
  Cigar rev;  // built end->begin, reversed at the end
  int i = ei, j = ej;
  out.begin_query = ei;
  out.begin_ref = ej;

  enum class State : uint8_t { H, E, F };
  State st = State::H;
  while (i >= 0 && j >= 0) {
    uint8_t flags = flag_at(i, j);
    if (st == State::H) {
      uint8_t src = flags & kTbSrcMask;
      if (src == kTbStop) break;
      if (src == kTbDiag) {
        rev.push(CigarOp::Match, 1);
        out.begin_query = i;
        out.begin_ref = j;
        --i;
        --j;
      } else {
        st = src == kTbE ? State::E : State::F;
      }
    } else if (st == State::E) {
      rev.push(CigarOp::Ins, 1);
      out.begin_query = i;
      if (!(flags & kTbEExt)) st = State::H;
      --i;
    } else {  // State::F
      rev.push(CigarOp::Del, 1);
      out.begin_ref = j;
      if (!(flags & kTbFExt)) st = State::H;
      --j;
    }
  }
  rev.reverse();
  out.cigar = std::move(rev);
  return out;
}

/// Recompute an alignment's score from its CIGAR and begin cell; used to
/// validate traceback output (the replayed score must equal the reported
/// score). Throws if the CIGAR walks out of bounds or misses the end cell.
int replay_score(seq::SeqView q, seq::SeqView r, const AlignConfig& cfg,
                 const Alignment& aln);

/// Flags for the diagonal-linearized layout: cell (i, j) lives at
/// offsets[i + j] + (i - lo(i+j)) where lo(d) is the diagonal's first row
/// (accounting for the reference length and an optional band).
struct DiagTracebackView {
  const uint8_t* dirs = nullptr;
  const uint64_t* offsets = nullptr;  // per-diagonal start into dirs
  int n = 0;                          // reference length
  int band = -1;                      // |i-j| band, < 0 = none

  uint8_t operator()(int i, int j) const noexcept {
    const int d = i + j;
    int lo = d - n + 1;
    if (lo < 0) lo = 0;
    if (band >= 0) {
      const int blo = (d - band + 1) >> 1;
      if (blo > lo) lo = blo;
    }
    return dirs[offsets[d] + static_cast<uint64_t>(i - lo)];
  }
};

}  // namespace swve::core
