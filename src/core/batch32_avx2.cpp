// AVX2 batch engine: 32 sequence lanes, matrix-row lookup via two pshufb
// halves + high-bit blend (compiled with -mavx2).
#include <immintrin.h>

#include "core/batch32_kernel.hpp"

namespace swve::core {

namespace {

struct BatchAvx2 {
  using vec = __m256i;
  static constexpr int lanes = 32;

  static vec zero() { return _mm256_setzero_si256(); }
  static vec set1(int x) { return _mm256_set1_epi8(static_cast<char>(x)); }
  static vec load(const uint8_t* p) {
    return _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p));
  }
  static void store(uint8_t* p, vec a) {
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(p), a);
  }
  static vec adds(vec a, vec b) { return _mm256_adds_epu8(a, b); }
  static vec subs(vec a, vec b) { return _mm256_subs_epu8(a, b); }
  static vec max(vec a, vec b) { return _mm256_max_epu8(a, b); }
  static vec select_eq(vec a, vec b, vec t, vec f) {
    return _mm256_blendv_epi8(f, t, _mm256_cmpeq_epi8(a, b));
  }
  static vec lookup32(const uint8_t* row32, vec idx) {
    // One 256-bit row load (rows are padded to exactly 32 bytes, Fig 4);
    // pshufb looks up 16-entry halves, the idx>15 mask selects the half.
    const __m128i lo128 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(row32));
    const __m128i hi128 =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(row32 + 16));
    const __m256i rowlo = _mm256_broadcastsi128_si256(lo128);
    const __m256i rowhi = _mm256_broadcastsi128_si256(hi128);
    const __m256i lo = _mm256_shuffle_epi8(rowlo, idx);
    const __m256i hi = _mm256_shuffle_epi8(rowhi, idx);
    const __m256i is_hi = _mm256_cmpgt_epi8(idx, _mm256_set1_epi8(15));
    return _mm256_blendv_epi8(lo, hi, is_hi);
  }
  static void prefetch(const void* p) {
    _mm_prefetch(static_cast<const char*>(p), _MM_HINT_T0);
  }
};

}  // namespace

Batch8Result batch32_u8_avx2(seq::SeqView q, const uint8_t* columns, uint32_t cols,
                             const AlignConfig& cfg, Workspace& ws) {
  return batch32_kernel<BatchAvx2>(q, columns, cols, cfg, ws);
}

void batch32_u8_avx2_ilp(seq::SeqView q, const BatchCols* batches, int k,
                         const AlignConfig& cfg, Workspace& ws, Batch8Result* out) {
  if (k == 4)
    batch32_kernel_ilp<BatchAvx2, 4>(q, batches, cfg, ws, out);
  else
    batch32_kernel_ilp<BatchAvx2, 2>(q, batches, cfg, ws, out);
}

}  // namespace swve::core
