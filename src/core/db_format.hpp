// The "swve db" on-disk artifact format (version 1).
//
// A swve db file is the Batch32Db packing made persistent: the database is
// encoded, length-ordered, and transposed into batch columns ONCE by
// tools/swve_db_build, and every server/bench process thereafter just mmaps
// the file (core/mapped_db.hpp) — startup cost is independent of database
// size, the page cache shares one physical copy across processes, and
// databases larger than RAM stream through the kernel.
//
// Layout (all integers little-endian, offsets absolute):
//
//   ┌──────────────────────────────┐ 0
//   │ SwdbHeader (128 B)           │  magic "SWDB", version, epoch, counts
//   ├──────────────────────────────┤ 128
//   │ SwdbSection[section_count]   │  id, offset, bytes, FNV-1a checksum
//   ├──────────────────────────────┤ 64-byte aligned
//   │ section payloads...          │  each aligned to kSwdbAlign
//   └──────────────────────────────┘ file_bytes
//
// Sections (ids are stable; new sections append new ids):
//   SeqLengths    uint32[seq_count]        per-sequence residue counts
//   SeqOffsets    uint64[seq_count + 1]    byte offsets into SeqCodes
//   SeqCodes      uint8[total_residues]    encoded residues, concatenated
//   IdOffsets     uint64[seq_count + 1]    byte offsets into IdBytes
//   IdBytes       char[]                   sequence ids, concatenated
//   LengthIndex   uint32[seq_count]        ascending-length permutation
//   BatchRecords  BatchRecord[batch_count] batch placement metadata
//   BatchSeqIndex uint32[]                 lane -> original database index
//   BatchSeqLens  uint32[]                 lane -> sequence length
//   BatchColumns  uint8[]                  transposed columns, 64-B aligned
//                                          for direct kernel consumption
//
// Versioning policy: the header layout, section ids, BatchRecord layout,
// and the fingerprint algorithm are all part of the format version. Any
// change to them bumps kSwdbVersion; readers reject versions they do not
// know (no silent reinterpretation). Adding a NEW section id is the only
// backward-compatible evolution (old readers must ignore unknown ids).
#pragma once

#include <cstdint>
#include <string>

#include "core/batch32.hpp"
#include "core/error.hpp"
#include "seq/database.hpp"

namespace swve::core {

/// "SWDB" read as a little-endian uint32_t.
inline constexpr uint32_t kSwdbMagic = 0x42445753u;
/// Written as 0x01020304 by the builder; a reader on an opposite-endian
/// machine sees 0x04030201 and rejects the file instead of mis-decoding.
inline constexpr uint32_t kSwdbEndianTag = 0x01020304u;
inline constexpr uint32_t kSwdbVersion = 1;
/// Alignment of every section payload (and in particular BatchColumns, so
/// the batch kernels can load columns with aligned vector loads).
inline constexpr uint32_t kSwdbAlign = 64;

enum class SwdbSectionId : uint32_t {
  SeqLengths = 1,
  SeqOffsets = 2,
  SeqCodes = 3,
  IdOffsets = 4,
  IdBytes = 5,
  LengthIndex = 6,
  BatchRecords = 7,
  BatchSeqIndex = 8,
  BatchSeqLens = 9,
  BatchColumns = 10,
};
inline constexpr uint32_t kSwdbSectionCount = 10;

/// Fixed 128-byte file header. Trivially copyable on purpose: it is read
/// with memcpy out of the map, never cast in place.
struct SwdbHeader {
  uint32_t magic = kSwdbMagic;
  uint32_t endian_tag = kSwdbEndianTag;
  uint32_t version = kSwdbVersion;
  uint32_t header_bytes = 0;    ///< header + section table, in bytes
  uint32_t section_count = 0;
  uint8_t alphabet = 0;         ///< seq::AlphabetKind
  uint8_t packing = 0;          ///< core::PackingPolicy
  uint8_t lanes = 0;            ///< batch kernel width: 32 or 64
  uint8_t flags = 0;            ///< reserved, must be 0 in v1
  uint64_t db_epoch = 0;        ///< database_fingerprint of the content
  uint64_t seq_count = 0;
  uint64_t total_residues = 0;
  uint64_t max_length = 0;
  uint64_t real_residues = 0;   ///< Batch32Db accounting
  uint64_t padded_residues = 0;
  uint64_t batch_count = 0;
  uint64_t file_bytes = 0;      ///< total file size; truncation detector
  uint64_t header_checksum = 0; ///< FNV-1a over header + section table with
                                ///< this field zeroed
  uint8_t reserved[32] = {};
};
static_assert(sizeof(SwdbHeader) == 128, "SwdbHeader is an on-disk layout");

/// 32-byte section-table entry.
struct SwdbSection {
  uint32_t id = 0;        ///< SwdbSectionId
  uint32_t reserved = 0;
  uint64_t offset = 0;    ///< absolute file offset, kSwdbAlign-aligned
  uint64_t bytes = 0;     ///< payload length
  uint64_t checksum = 0;  ///< FNV-1a 64 over the payload
};
static_assert(sizeof(SwdbSection) == 32, "SwdbSection is an on-disk layout");

/// FNV-1a 64 over a byte range, seedable for incremental use.
inline constexpr uint64_t kFnvOffsetBasis = 0xcbf29ce484222325ull;
inline constexpr uint64_t kFnvPrime = 0x100000001b3ull;
uint64_t fnv1a_64(const void* data, size_t n,
                  uint64_t seed = kFnvOffsetBasis) noexcept;

/// Canonical content fingerprint of a database: seq count, then per
/// sequence the alphabet kind and length-prefixed code bytes, FNV-1a
/// folded. This is THE db_epoch — net::database_epoch delegates here, so an
/// artifact's stored epoch equals what a FASTA-startup server would compute
/// and wire cache keys agree across both startup paths.
uint64_t database_fingerprint(const seq::SequenceDatabase& db);

/// Cheap sniff: does the file start with the SWDB magic? Lets callers that
/// accept both FASTA and artifacts (--db) route without parsing.
bool file_has_swdb_magic(const std::string& path) noexcept;

struct SwdbBuildStats {
  uint64_t file_bytes = 0;
  uint64_t batch_count = 0;
  uint64_t db_epoch = 0;
};

/// Serialize `db` plus its packing `bdb` to `path`. `bdb` must have been
/// built from exactly `db` (sequence_count is cross-checked); the database
/// must be non-empty and single-alphabet. Failures (I/O, inconsistent
/// inputs) come back as Code::InvalidArtifact.
ErrorOr<SwdbBuildStats> write_swdb(const seq::SequenceDatabase& db,
                                   const Batch32Db& bdb,
                                   const std::string& path);

}  // namespace swve::core
