#include "core/db_format.hpp"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <vector>

namespace swve::core {

uint64_t fnv1a_64(const void* data, size_t n, uint64_t seed) noexcept {
  const auto* p = static_cast<const uint8_t*>(data);
  uint64_t h = seed;
  for (size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= kFnvPrime;
  }
  return h;
}

uint64_t database_fingerprint(const seq::SequenceDatabase& db) {
  // Byte-for-byte the net::database_epoch algorithm (which delegates here):
  // u64 count, then per sequence u8 alphabet kind + length-prefixed codes.
  uint64_t h = kFnvOffsetBasis;
  const uint64_t count = db.size();
  h = fnv1a_64(&count, sizeof count, h);
  for (const seq::Sequence& s : db.sequences()) {
    const uint8_t kind = static_cast<uint8_t>(s.alphabet().kind());
    h = fnv1a_64(&kind, sizeof kind, h);
    const uint64_t n = s.length();
    h = fnv1a_64(&n, sizeof n, h);
    h = fnv1a_64(s.data(), s.length(), h);
  }
  return h;
}

bool file_has_swdb_magic(const std::string& path) noexcept {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  uint32_t magic = 0;
  const bool got = std::fread(&magic, sizeof magic, 1, f) == 1;
  std::fclose(f);
  return got && magic == kSwdbMagic;
}

namespace {

ConfigError artifact_error(std::string msg) {
  return ConfigError{ConfigError::Code::InvalidArtifact, std::move(msg)};
}

/// Streams section payloads to the file, tracking the running offset and
/// folding each payload into its section's FNV-1a checksum as it goes (the
/// big sections are written straight from the packed buffers, never staged).
struct SectionWriter {
  std::FILE* f = nullptr;
  uint64_t pos = 0;
  bool io_error = false;
  std::vector<SwdbSection> sections;

  void raw(const void* data, size_t n) {
    if (n != 0 && std::fwrite(data, 1, n, f) != n) io_error = true;
    pos += n;
  }
  void pad_to(uint64_t align) {
    static constexpr uint8_t zeros[kSwdbAlign] = {};
    while (pos % align != 0) {
      const size_t n =
          static_cast<size_t>(std::min<uint64_t>(align - pos % align, sizeof zeros));
      raw(zeros, n);
    }
  }
  /// emit() is handed a put(data, n) sink; everything put becomes the
  /// section's payload.
  template <typename Fn>
  void section(SwdbSectionId id, Fn&& emit) {
    pad_to(kSwdbAlign);
    SwdbSection s;
    s.id = static_cast<uint32_t>(id);
    s.offset = pos;
    uint64_t checksum = kFnvOffsetBasis;
    emit([&](const void* d, size_t n) {
      raw(d, n);
      checksum = fnv1a_64(d, n, checksum);
    });
    s.bytes = pos - s.offset;
    s.checksum = checksum;
    sections.push_back(s);
  }
};

}  // namespace

ErrorOr<SwdbBuildStats> write_swdb(const seq::SequenceDatabase& db,
                                   const Batch32Db& bdb,
                                   const std::string& path) {
  if (db.empty())
    return artifact_error("write_swdb: refusing to write an empty database");
  if (bdb.sequence_count() != db.size())
    return artifact_error("write_swdb: Batch32Db was not packed from this database");
  const seq::Alphabet* alphabet = &db[0].alphabet();
  for (const seq::Sequence& s : db.sequences())
    if (&s.alphabet() != alphabet)
      return artifact_error("write_swdb: mixed alphabets in one database");

  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr)
    return artifact_error("write_swdb: cannot open '" + path + "' for writing");

  constexpr uint32_t kHeaderBytes =
      sizeof(SwdbHeader) + kSwdbSectionCount * sizeof(SwdbSection);

  SectionWriter w;
  w.f = f;
  // Placeholder header + section table; rewritten once offsets are known.
  {
    static constexpr uint8_t zeros[kSwdbAlign] = {};
    for (uint32_t off = 0; off < kHeaderBytes; off += kSwdbAlign)
      w.raw(zeros, std::min<uint32_t>(kSwdbAlign, kHeaderBytes - off));
  }

  const size_t n = db.size();
  std::vector<uint32_t> lens(n);
  std::vector<uint64_t> seq_offsets(n + 1, 0);
  std::vector<uint64_t> id_offsets(n + 1, 0);
  for (size_t i = 0; i < n; ++i) {
    lens[i] = static_cast<uint32_t>(db[i].length());
    seq_offsets[i + 1] = seq_offsets[i] + db[i].length();
    id_offsets[i + 1] = id_offsets[i] + db[i].id().size();
  }

  w.section(SwdbSectionId::SeqLengths, [&](auto put) {
    put(lens.data(), lens.size() * sizeof(uint32_t));
  });
  w.section(SwdbSectionId::SeqOffsets, [&](auto put) {
    put(seq_offsets.data(), seq_offsets.size() * sizeof(uint64_t));
  });
  w.section(SwdbSectionId::SeqCodes, [&](auto put) {
    for (const seq::Sequence& s : db.sequences()) put(s.data(), s.length());
  });
  w.section(SwdbSectionId::IdOffsets, [&](auto put) {
    put(id_offsets.data(), id_offsets.size() * sizeof(uint64_t));
  });
  w.section(SwdbSectionId::IdBytes, [&](auto put) {
    for (const seq::Sequence& s : db.sequences())
      put(s.id().data(), s.id().size());
  });
  w.section(SwdbSectionId::LengthIndex, [&](auto put) {
    put(db.by_length().data(), db.by_length().size() * sizeof(uint32_t));
  });
  w.section(SwdbSectionId::BatchRecords, [&](auto put) {
    const auto recs = bdb.batch_records();
    put(recs.data(), recs.size_bytes());
  });
  w.section(SwdbSectionId::BatchSeqIndex, [&](auto put) {
    const auto idx = bdb.seq_index_data();
    put(idx.data(), idx.size_bytes());
  });
  w.section(SwdbSectionId::BatchSeqLens, [&](auto put) {
    const auto sl = bdb.seq_len_data();
    put(sl.data(), sl.size_bytes());
  });
  w.section(SwdbSectionId::BatchColumns, [&](auto put) {
    const auto cols = bdb.column_bytes();
    put(cols.data(), cols.size_bytes());
  });
  // Pad the tail so file_bytes is aligned too (tidy for shm copies).
  w.pad_to(kSwdbAlign);

  SwdbHeader h;
  h.header_bytes = kHeaderBytes;
  h.section_count = kSwdbSectionCount;
  h.alphabet = static_cast<uint8_t>(alphabet->kind());
  h.packing = static_cast<uint8_t>(bdb.policy());
  h.lanes = static_cast<uint8_t>(bdb.lanes());
  h.db_epoch = database_fingerprint(db);
  h.seq_count = n;
  h.total_residues = db.total_residues();
  h.max_length = db.max_length();
  h.real_residues = bdb.real_residues();
  h.padded_residues = bdb.padded_residues();
  h.batch_count = bdb.batch_count();
  h.file_bytes = w.pos;
  h.header_checksum = 0;
  uint64_t hcs = fnv1a_64(&h, sizeof h);
  hcs = fnv1a_64(w.sections.data(), w.sections.size() * sizeof(SwdbSection), hcs);
  h.header_checksum = hcs;

  bool ok = !w.io_error;
  ok = ok && std::fseek(f, 0, SEEK_SET) == 0;
  ok = ok && std::fwrite(&h, sizeof h, 1, f) == 1;
  ok = ok && std::fwrite(w.sections.data(), sizeof(SwdbSection),
                         w.sections.size(), f) == w.sections.size();
  ok = ok && std::fflush(f) == 0;
  const bool closed = std::fclose(f) == 0;
  if (!ok || !closed) {
    std::remove(path.c_str());
    return artifact_error("write_swdb: I/O error writing '" + path + "'");
  }

  SwdbBuildStats stats;
  stats.file_bytes = h.file_bytes;
  stats.batch_count = h.batch_count;
  stats.db_epoch = h.db_epoch;
  return stats;
}

}  // namespace swve::core
