// SSE4.1 instantiations of the diagonal kernel (compiled with -msse4.1).
#include "core/diag_kernel.hpp"
#include "core/dispatch.hpp"
#include "simd/engines_sse41.hpp"

namespace swve::core {

DiagOutput diag_sse41(const DiagRequest& rq, Width width) {
  switch (width) {
    case Width::W8:
      return diag_run<simd::Sse41U8>(rq);
    case Width::W16:
      return diag_run<simd::Sse41U16>(rq);
    default:
      return diag_run<simd::Sse41I32>(rq);
  }
}

}  // namespace swve::core
