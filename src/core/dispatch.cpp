#include "core/dispatch.hpp"

#include <atomic>
#include <chrono>
#include <mutex>
#include <stdexcept>
#include <vector>

#include "core/batch32.hpp"

namespace swve::core {

namespace {

// One-time per-ISA micro-calibration of Matrix-mode score delivery:
// gather throughput differs by an order of magnitude across
// microarchitectures (Downfall-mitigated parts make vpgatherdd glacial),
// so time both paths once on a small synthetic pair and cache the winner.
ScoreDelivery calibrate_delivery(simd::Isa isa) {
  constexpr int kLen = 384;
  std::vector<uint8_t> q(kLen), r(kLen);
  uint64_t x = 0x9E3779B97F4A7C15ull;
  auto rnd = [&] {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    return x;
  };
  for (auto& c : q) c = static_cast<uint8_t>(rnd() % 20);
  for (auto& c : r) c = static_cast<uint8_t>(rnd() % 20);

  Workspace ws;
  AlignConfig cfg;
  cfg.isa = isa;
  cfg.width = Width::W16;
  DiagRequest rq;
  rq.q = q.data();
  rq.m = kLen;
  rq.r = r.data();
  rq.n = kLen;
  rq.cfg = &cfg;
  rq.ws = &ws;

  auto time_mode = [&](ScoreDelivery d) {
    cfg.delivery = d;
    run_diag_kernel(rq, isa, Width::W16);  // warm-up
    auto t0 = std::chrono::steady_clock::now();
    for (int k = 0; k < 3; ++k) run_diag_kernel(rq, isa, Width::W16);
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
        .count();
  };
  ScoreDelivery best = ScoreDelivery::Gather;
  double best_t = time_mode(ScoreDelivery::Gather);
  if (double t = time_mode(ScoreDelivery::Fill); t < best_t) {
    best = ScoreDelivery::Fill;
    best_t = t;
  }
  if (isa == simd::Isa::Avx512 && simd::cpu_features().avx512vbmi) {
    if (double t = time_mode(ScoreDelivery::Shuffle); t < best_t)
      best = ScoreDelivery::Shuffle;
  }
  return best;
}

// One-time per-ISA calibration of the batch-kernel interleave depth: run
// the same four synthetic batches at K = 1/2/4 and keep the fastest. The
// win depends on how many idle ports the single-chain recurrence leaves,
// which varies by microarchitecture and ISA width — measure, don't guess.
int calibrate_ilp(simd::Isa isa) {
  const int lanes =
      (isa == simd::Isa::Avx512 && simd::cpu_features().avx512vbmi) ? 64 : 32;
  constexpr int kQLen = 256;
  constexpr uint32_t kCols = 256;
  constexpr int kGroup = 4;
  uint64_t x = 0xD1B54A32D192ED03ull;
  auto rnd = [&] {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    return x;
  };
  std::vector<uint8_t> q(kQLen);
  for (auto& c : q) c = static_cast<uint8_t>(rnd() % 20);
  std::vector<uint8_t> cols(static_cast<size_t>(kGroup) * kCols *
                            static_cast<size_t>(lanes));
  for (auto& c : cols) c = static_cast<uint8_t>(rnd() % 20);
  BatchCols batches[kGroup];
  for (int i = 0; i < kGroup; ++i)
    batches[i] = BatchCols{
        cols.data() + static_cast<size_t>(i) * kCols * static_cast<size_t>(lanes),
        kCols};

  Workspace ws;
  AlignConfig cfg;
  cfg.isa = isa;
  const seq::SeqView qv{q.data(), q.size()};
  Batch8Result out[kGroup];
  auto time_k = [&](int k) {
    batch32_align_u8_group(qv, batches, kGroup, lanes, cfg, ws, isa, k, out);
    auto t0 = std::chrono::steady_clock::now();
    for (int rep = 0; rep < 3; ++rep)
      batch32_align_u8_group(qv, batches, kGroup, lanes, cfg, ws, isa, k, out);
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
        .count();
  };
  int best = 1;
  double best_t = time_k(1);
  for (int k : {2, 4}) {
    if (double t = time_k(k); t < best_t) {
      best = k;
      best_t = t;
    }
  }
  return best;
}

int delivery_slot(simd::Isa isa) {
  return isa == simd::Isa::Avx512  ? 3
         : isa == simd::Isa::Avx2  ? 2
         : isa == simd::Isa::Sse41 ? 1
                                   : 0;
}

// Per-ISA pins (Auto == not pinned). Checked before the calibration cache
// so tests/services can force a path without re-running calibration.
std::atomic<ScoreDelivery> g_delivery_override[4] = {
    ScoreDelivery::Auto, ScoreDelivery::Auto, ScoreDelivery::Auto,
    ScoreDelivery::Auto};

// Per-ISA interleave pins: 0 == Auto (calibrate), else the pinned depth.
std::atomic<int> g_ilp_override[4] = {0, 0, 0, 0};

// Supported interleave depths are powers of two up to kMaxBatchInterleave.
int normalize_ilp_depth(int k) {
  if (k >= 4) return 4;
  if (k >= 2) return 2;
  return 1;
}

}  // namespace

ScoreDelivery resolved_delivery(simd::Isa isa) {
  const int idx = delivery_slot(isa);
  ScoreDelivery pinned = g_delivery_override[idx].load(std::memory_order_acquire);
  if (pinned != ScoreDelivery::Auto) return pinned;
  static std::once_flag once[4];
  static ScoreDelivery cache[4];
  std::call_once(once[idx], [&] { cache[idx] = calibrate_delivery(isa); });
  return cache[idx];
}

void set_delivery_override(simd::Isa isa, ScoreDelivery delivery) {
  g_delivery_override[delivery_slot(isa)].store(delivery,
                                                std::memory_order_release);
}

int resolved_ilp(simd::Isa isa) {
  const int idx = delivery_slot(isa);
  if (int pinned = g_ilp_override[idx].load(std::memory_order_acquire);
      pinned != 0)
    return pinned;
  static std::once_flag once[4];
  static int cache[4];
  std::call_once(once[idx], [&] { cache[idx] = calibrate_ilp(isa); });
  return cache[idx];
}

void set_ilp_override(simd::Isa isa, IlpPolicy policy) {
  const int value = policy.mode == IlpPolicy::Mode::Auto
                        ? 0
                        : normalize_ilp_depth(policy.k);
  g_ilp_override[delivery_slot(isa)].store(value, std::memory_order_release);
}

DiagOutput run_diag_kernel(const DiagRequest& rq, simd::Isa isa, Width width) {
  if (width == Width::Adaptive)
    throw std::invalid_argument("run_diag_kernel: width must be concrete");
  switch (isa) {
#if defined(SWVE_HAVE_SSE41_BUILD)
    case simd::Isa::Sse41:
      return diag_sse41(rq, width);
#endif
#if defined(SWVE_HAVE_AVX2_BUILD)
    case simd::Isa::Avx2:
      return diag_avx2(rq, width);
#endif
#if defined(SWVE_HAVE_AVX512_BUILD)
    case simd::Isa::Avx512:
      return diag_avx512(rq, width);
#endif
    case simd::Isa::Scalar:
      return diag_scalar(rq, width);
    default:
      throw std::invalid_argument("run_diag_kernel: unresolved or unbuilt ISA");
  }
}

Alignment diag_align(seq::SeqView q, seq::SeqView r, const AlignConfig& cfg,
                     Workspace& ws, const PreparedQuery* prep) {
  cfg.validate();
  const simd::Isa isa = simd::resolve_isa(cfg.isa);
  AlignConfig resolved = cfg;
  if (resolved.scheme == ScoreScheme::Matrix &&
      resolved.delivery == ScoreDelivery::Auto)
    resolved.delivery = resolved_delivery(isa);
  DiagRequest rq;
  rq.q = q.data;
  rq.m = static_cast<int>(q.length);
  rq.r = r.data;
  rq.n = static_cast<int>(r.length);
  rq.cfg = &resolved;
  rq.ws = &ws;
  rq.prep = prep;

  Width ladder[3];
  int steps = 0;
  if (cfg.width == Width::Adaptive) {
    ladder[steps++] = Width::W8;
    ladder[steps++] = Width::W16;
    ladder[steps++] = Width::W32;
  } else {
    ladder[steps++] = cfg.width;
  }

  Alignment a;
  a.isa_used = isa;
  DiagOutput o;
  for (int t = 0; t < steps; ++t) {
    o = run_diag_kernel(rq, isa, ladder[t]);
    a.width_used = ladder[t];
    a.stats += o.stats;
    if (!o.saturated) break;
    if (ladder[t] == Width::W8) a.saturated_8 = true;
    if (ladder[t] == Width::W16) a.saturated_16 = true;
  }
  a.score = o.score;
  a.end_query = o.end_query;
  a.end_ref = o.end_ref;
  a.saturated = o.saturated;

  if (cfg.traceback && o.score > 0 && !o.saturated) {
    DiagTracebackView view{static_cast<const uint8_t*>(ws.tb_dirs.data()),
                           static_cast<const uint64_t*>(ws.tb_offsets.data()),
                           rq.n, cfg.band};
    TracebackResult t = walk_traceback(view, o.end_query, o.end_ref);
    a.begin_query = t.begin_query;
    a.begin_ref = t.begin_ref;
    a.cigar = std::move(t.cigar);
  }
  return a;
}

}  // namespace swve::core
