// The paper's diagonal kernel, written once as a template over a SIMD
// engine and instantiated per ISA (scalar/AVX2/AVX-512) x width (8/16/32) x
// gap model x score mode x traceback.
//
// Shape of the computation (DESIGN.md §3):
//   * anti-diagonal wavefront d = i + j; DP buffers are indexed by the query
//     row i and triple/double buffered over d, so every dependency —
//     H(i,j-1), H(i-1,j), H(i-1,j-1), E(i-1,j), F(i,j-1) — is an unaligned
//     contiguous load at offset i or i-1 of the previous diagonals
//     (diagonal-based memory linearization, Fig 2);
//   * the reference is reversed once so the diagonal's substitution-matrix
//     indices 32*q[i] + r[d-i] are two forward contiguous loads and one
//     vector add (Fig 4); scores arrive either through vpgatherdd (Gather)
//     or a scalar-staged linear buffer (Fill) — chosen at runtime, because
//     gather throughput varies wildly across microarchitectures;
//   * full vectors cover the diagonal body; the ragged tail is ONE
//     zero-masked vector (the paper's Fig 3 zero-padding), with invalid
//     lanes blended to 0 — exactly the boundary value the next diagonals
//     expect; tiny diagonals run scalar ("standard CPU instructions");
//   * the maximum is deferred: a per-row running max plus the diagonal index
//     of its last strict improvement; one O(m) scalar pass at the end finds
//     the global best and end cell (§III-D). Strict-improvement updates give
//     the same (min i, then min j) tie-break as the golden scalar model;
//   * 8/16-bit engines run in the unsigned biased domain with saturating
//     arithmetic; if the observed maximum exceeds cap - bias - max_score the
//     result is flagged saturated and the dispatcher re-runs wider.
#pragma once

#include <bit>
#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <type_traits>
#include <utility>

#include "core/params.hpp"
#include "core/prepared_query.hpp"
#include "core/result.hpp"
#include "core/traceback.hpp"
#include "core/workspace.hpp"

namespace swve::core {

struct DiagRequest {
  const uint8_t* q = nullptr;
  int m = 0;
  const uint8_t* r = nullptr;
  int n = 0;
  const AlignConfig* cfg = nullptr;
  Workspace* ws = nullptr;
  /// Optional cached query feeds (must be built from exactly `q`/`m`);
  /// when set the kernel reads qmul32/qenc from here instead of rebuilding
  /// them into the workspace. Results are bit-identical either way.
  const PreparedQuery* prep = nullptr;
};

struct DiagOutput {
  int score = 0;
  int end_query = -1;
  int end_ref = -1;
  bool saturated = false;
  KernelStats stats;
  // With cfg->traceback, direction flags are left in ws->tb_dirs /
  // ws->tb_offsets (diagonal-major; see DiagTracebackView).
};

using DiagKernelFn = DiagOutput (*)(const DiagRequest&);

/// Compile-time score mode of one kernel instantiation.
enum class KMode : uint8_t { Gather, Fill, Shuffle, Fixed };

namespace detail {
inline int64_t clamp0_i64(int64_t x) { return x < 0 ? 0 : x; }
/// Diagonals at most this long run fully scalar (Fig 3's "for small
/// segments we revert to standard CPU instructions").
inline constexpr int kScalarDiagonal = 4;

/// Row range of anti-diagonal d for an m x n matrix with optional band
/// (|i - j| <= band). May be empty (lo > hi) under a band.
struct DiagRange {
  int lo, hi;
};
inline DiagRange diag_range(int d, int m, int n, int band) {
  int lo = d - n + 1 < 0 ? 0 : d - n + 1;
  int hi = d < m - 1 ? d : m - 1;
  if (band >= 0) {
    const int blo = (d - band + 1) >> 1;  // ceil((d-band)/2), >= 0 region
    const int bhi = (d + band) >> 1;      // floor((d+band)/2)
    if (blo > lo) lo = blo;
    if (bhi < hi) hi = bhi;
  }
  return {lo, hi};
}
}  // namespace detail

template <class E, GapModel GM, KMode SM, bool TB>
DiagOutput diag_align_impl(const DiagRequest& rq) {
  using elem = typename E::elem;
  using vec = typename E::vec;
  constexpr int V = E::lanes;
  constexpr int64_t kCap = E::cap;

  const int m = rq.m;
  const int n = rq.n;
  DiagOutput out;
  if (m == 0 || n == 0) return out;

  const AlignConfig& cfg = *rq.cfg;
  const uint8_t* q = rq.q;
  const uint8_t* r = rq.r;
  Workspace& ws = *rq.ws;

  const int bias = E::is_signed ? 0 : cfg.bias();
  const int smax = cfg.max_subst_score();
  const int64_t sat_limit = E::is_signed ? kCap : kCap - bias - smax;
  const int64_t open64 = GM == GapModel::Affine ? cfg.gap_open : cfg.gap_extend;
  const int64_t ext64 = cfg.gap_extend;
  const int64_t open_c = open64 > kCap ? kCap : open64;  // clamped into elem
  const int64_t ext_c = ext64 > kCap ? kCap : ext64;

  // ---- workspace ------------------------------------------------------
  const size_t stride = (static_cast<size_t>(m) + 2 * kPad) * sizeof(elem);
  elem* H[3];
  for (int t = 0; t < 3; ++t)
    H[t] = static_cast<elem*>(ws.h[t].ensure_zeroed(stride)) + kPad;
  elem *Ebuf[2] = {nullptr, nullptr}, *Fbuf[2] = {nullptr, nullptr};
  if constexpr (GM == GapModel::Affine) {
    for (int t = 0; t < 2; ++t) {
      Ebuf[t] = static_cast<elem*>(ws.e[t].ensure_zeroed(stride)) + kPad;
      Fbuf[t] = static_cast<elem*>(ws.f[t].ensure_zeroed(stride)) + kPad;
    }
  }
  // rowmax/bestd carry kPad slack so the masked tail vector may touch
  // (masked-out) lanes past m.
  elem* rowmax = static_cast<elem*>(
      ws.rowmax.ensure_zeroed((static_cast<size_t>(m) + kPad) * sizeof(elem)));
  auto* bestd = static_cast<int32_t*>(
      ws.best_diag.ensure((static_cast<size_t>(m) + kPad) * 4));
  for (int i = 0; i < m; ++i) bestd[i] = -1;

  const int32_t* mat32 = nullptr;
  const int32_t* qmul = nullptr;
  int32_t* dbrev = nullptr;
  const elem* qencE = nullptr;
  elem* dbrevE = nullptr;
  [[maybe_unused]] elem* sbuf = nullptr;
  // Cached query feeds, if the caller supplied matching ones. The per-call
  // build below produces exactly these bytes (padding included), so using
  // them is a pure skip of O(m) work.
  [[maybe_unused]] const PreparedQuery* prep =
      rq.prep != nullptr && rq.prep->query_length() == m ? rq.prep : nullptr;
  if constexpr (SM != KMode::Fixed) mat32 = cfg.matrix->data32();
  if constexpr (SM == KMode::Gather || SM == KMode::Fill) {
    if (prep != nullptr) {
      qmul = prep->qmul32();
    } else {
      // Pads are zeroed: masked-tail gathers then index row 0 / column 0,
      // which is always inside the table.
      int32_t* qm = static_cast<int32_t*>(
          ws.qmul32.ensure((static_cast<size_t>(m) + kPad) * 4));
      for (int i = 0; i < m; ++i)
        qm[i] = static_cast<int32_t>(q[i]) * seq::kMatrixStride;
      std::memset(qm + m, 0, kPad * 4);
      qmul = qm;
    }
    dbrev = static_cast<int32_t*>(
        ws.dbrev32.ensure((static_cast<size_t>(n) + kPad) * 4));
    for (int t = 0; t < n; ++t) dbrev[t] = r[n - 1 - t];
    std::memset(dbrev + n, 0, kPad * 4);
    if constexpr (SM == KMode::Fill)
      sbuf = static_cast<elem*>(ws.diag_scores.ensure_zeroed(stride)) + kPad;
  }
  if constexpr (SM == KMode::Fixed || SM == KMode::Shuffle) {
    if (prep != nullptr) {
      qencE = prep->template qenc<elem>();
    } else {
      // Encoded residues widened to the element type (compare feed for
      // Fixed, lookup indices for Shuffle). Pads zeroed: code 0 is a valid
      // index.
      elem* qe = static_cast<elem*>(
          ws.qenc.ensure_zeroed((static_cast<size_t>(m) + kPad) * sizeof(elem)));
      for (int i = 0; i < m; ++i) qe[i] = q[i];
      qencE = qe;
    }
    dbrevE = static_cast<elem*>(
        ws.dbrev_enc.ensure_zeroed((static_cast<size_t>(n) + kPad) * sizeof(elem)));
    for (int t = 0; t < n; ++t) dbrevE[t] = r[n - 1 - t];
  }
  // Shuffle delivery: stage the biased byte table into registers once.
  [[maybe_unused]] auto stab = [&] {
    if constexpr (SM == KMode::Shuffle)
      return E::load_shuffle_table(cfg.matrix->rows_biased_u8());
    else
      return 0;
  }();

  uint8_t* tbdirs = nullptr;
  uint64_t* tboff = nullptr;
  if constexpr (TB) {
    const uint64_t cells = static_cast<uint64_t>(m) * static_cast<uint64_t>(n);
    if (cells > cfg.max_traceback_cells)
      throw std::length_error("diag_align: traceback matrix exceeds cell cap");
    // +kPad slack: the masked tail stores a full vector of direction bytes.
    tbdirs = static_cast<uint8_t*>(ws.tb_dirs.ensure(cells + kPad));
    tboff = static_cast<uint64_t*>(
        ws.tb_offsets.ensure(static_cast<size_t>(m + n) * 8));
    uint64_t off = 0;
    for (int d = 0; d < m + n - 1; ++d) {
      tboff[d] = off;
      const auto [lo, hi] = detail::diag_range(d, m, n, cfg.band);
      if (hi >= lo) off += static_cast<uint64_t>(hi - lo + 1);
    }
  }

  // ---- constants ------------------------------------------------------
  const vec vzero = E::zero();
  const vec vbias = E::set1(bias);
  const vec vopen = E::set1(open_c);
  const vec vext = E::set1(ext_c);
  const vec viota = E::iota();
  [[maybe_unused]] vec vmatch_b{}, vmis_b{};
  if constexpr (SM == KMode::Fixed) {
    auto clamp_elem = [&](int64_t v) {
      if (!E::is_signed) {
        if (v < 0) v = 0;
        if (v > kCap) v = kCap;
      }
      return v;
    };
    vmatch_b = E::set1(clamp_elem(cfg.match + bias));
    vmis_b = E::set1(clamp_elem(cfg.mismatch + bias));
  }
  [[maybe_unused]] const vec v1 = E::set1(kTbDiag);
  [[maybe_unused]] const vec v2 = E::set1(kTbE);
  [[maybe_unused]] const vec v3 = E::set1(kTbF);
  [[maybe_unused]] const vec v4 = E::set1(kTbEExt);
  [[maybe_unused]] const vec v8 = E::set1(kTbFExt);

  elem* Hc = H[0];
  elem* Hp = H[1];
  elem* Hp2 = H[2];
  elem* Ec = Ebuf[0];
  elem* Ep = Ebuf[1];
  elem* Fc = Fbuf[0];
  elem* Fp = Fbuf[1];

  uint64_t vec_cells = 0, scalar_cells = 0;

  // One DP step for V lanes at base row i; `valid` < V marks the ragged
  // tail (Fig 3): lanes >= valid are computed but blended to zero before
  // every store, which is exactly the "never reached" boundary value.
  auto vector_step = [&](int i, int lo, int d, const int32_t* dbr,
                         const elem* dbrE, uint8_t* tbrow, int valid) {
    vec sb;
    if constexpr (SM == KMode::Gather)
      sb = E::gather_scores(qmul + i, dbr + i, mat32, bias);
    else if constexpr (SM == KMode::Fill)
      sb = E::loadu(sbuf + i);
    else if constexpr (SM == KMode::Shuffle)
      sb = E::shuffle_scores(stab, qencE + i, dbrE + i);
    else
      sb = E::blend(E::cmpeq(E::loadu(qencE + i), E::loadu(dbrE + i)), vmis_b,
                    vmatch_b);
    (void)lo;
    const vec hd = E::loadu(Hp2 + i - 1);
    const vec hs = E::add_score(hd, sb, vbias);
    vec e, f;
    [[maybe_unused]] vec e_open{}, f_open{};
    if constexpr (GM == GapModel::Affine) {
      e_open = E::sub_floor(E::loadu(Hp + i - 1), vopen);
      const vec e_ext = E::sub_floor(E::loadu(Ep + i - 1), vext);
      e = E::max(e_open, e_ext);
      f_open = E::sub_floor(E::loadu(Hp + i), vopen);
      const vec f_ext = E::sub_floor(E::loadu(Fp + i), vext);
      f = E::max(f_open, f_ext);
    } else {
      e = E::sub_floor(E::loadu(Hp + i - 1), vext);
      f = E::sub_floor(E::loadu(Hp + i), vext);
    }
    vec h = E::max(hs, E::max(e, f));

    if (valid < V) {
      const auto vm = E::cmpgt(E::set1(valid), viota);  // lane < valid
      h = E::blend(vm, vzero, h);
      e = E::blend(vm, vzero, e);
      f = E::blend(vm, vzero, f);
    }
    E::storeu(Hc + i, h);
    if constexpr (GM == GapModel::Affine) {
      E::storeu(Ec + i, e);
      E::storeu(Fc + i, f);
    }

    if constexpr (TB) {
      // Priority on ties: stop > diag > E > F — apply lowest first.
      vec dir = E::blend(E::cmpeq(h, f), vzero, v3);
      dir = E::blend(E::cmpeq(h, e), dir, v2);
      dir = E::blend(E::cmpeq(h, hs), dir, v1);
      dir = E::blend(E::cmpeq(h, vzero), dir, vzero);
      if constexpr (GM == GapModel::Affine) {
        // Gap runs prefer "open" on ties: extend bit only if != open term.
        dir = E::or_(dir, E::blend(E::cmpeq(e, e_open), v4, vzero));
        dir = E::or_(dir, E::blend(E::cmpeq(f, f_open), v8, vzero));
      }
      E::store_dir_u8(tbrow + i, dir);  // tail over-run lands in slack
    }

    // Deferred maximum (§III-D): per-row running max; the improving lanes
    // also record the diagonal index, fully vectorized (improvements are
    // frequent when gaps are cheap, so no scalar bit-loop here). Masked
    // tail lanes hold h == 0 and never improve (rowmax is zero-initialized
    // through its padding).
    const vec rm = E::loadu(rowmax + i);
    const auto imp = E::cmpgt(h, rm);
    if (E::any(imp)) {
      E::storeu(rowmax + i, E::max(rm, h));
      E::store_bestd(bestd + i, imp, d);
    }
  };

  // The identical recurrence, one cell, scalar (tiny diagonals).
  auto scalar_cell = [&](int i, int d, uint8_t* tbrow) {
    const int j = d - i;
    int64_t s;
    if constexpr (SM == KMode::Fixed)
      s = q[i] == r[j] ? cfg.match : cfg.mismatch;
    else
      s = mat32[static_cast<int32_t>(q[i]) * seq::kMatrixStride + r[j]];
    int64_t hs = static_cast<int64_t>(Hp2[i - 1]) + s + bias;
    if (!E::is_signed && hs > kCap) hs = kCap;  // mimic saturating add
    hs -= bias;
    if (hs < 0) hs = 0;
    int64_t e, f;
    [[maybe_unused]] int64_t e_open = 0, f_open = 0;
    if constexpr (GM == GapModel::Affine) {
      e_open = detail::clamp0_i64(static_cast<int64_t>(Hp[i - 1]) - open_c);
      const int64_t e_ext =
          detail::clamp0_i64(static_cast<int64_t>(Ep[i - 1]) - ext_c);
      e = e_open > e_ext ? e_open : e_ext;
      f_open = detail::clamp0_i64(static_cast<int64_t>(Hp[i]) - open_c);
      const int64_t f_ext =
          detail::clamp0_i64(static_cast<int64_t>(Fp[i]) - ext_c);
      f = f_open > f_ext ? f_open : f_ext;
    } else {
      e = detail::clamp0_i64(static_cast<int64_t>(Hp[i - 1]) - ext_c);
      f = detail::clamp0_i64(static_cast<int64_t>(Hp[i]) - ext_c);
    }
    int64_t h = hs;
    if (e > h) h = e;
    if (f > h) h = f;
    Hc[i] = static_cast<elem>(h);
    if constexpr (GM == GapModel::Affine) {
      Ec[i] = static_cast<elem>(e);
      Fc[i] = static_cast<elem>(f);
    }
    if constexpr (TB) {
      uint8_t flags;
      if (h == 0)
        flags = kTbStop;
      else if (h == hs)
        flags = kTbDiag;
      else if (h == e)
        flags = kTbE;
      else
        flags = kTbF;
      if constexpr (GM == GapModel::Affine) {
        if (e != e_open) flags |= kTbEExt;
        if (f != f_open) flags |= kTbFExt;
      }
      tbrow[i] = flags;
    }
    if (h > static_cast<int64_t>(rowmax[i])) {
      rowmax[i] = static_cast<elem>(h);
      bestd[i] = d;
    }
  };

  // ---- main anti-diagonal sweep ---------------------------------------
  for (int d = 0; d < m + n - 1; ++d) {
    const auto [lo, hi] = detail::diag_range(d, m, n, cfg.band);
    if (hi < lo) {  // empty banded diagonal: just rotate the buffers
      elem* te = Hp2;
      Hp2 = Hp;
      Hp = Hc;
      Hc = te;
      if constexpr (GM == GapModel::Affine) {
        std::swap(Ec, Ep);
        std::swap(Fc, Fp);
      }
      continue;
    }
    const int len = hi - lo + 1;
    [[maybe_unused]] const int32_t* dbr =
        dbrev != nullptr ? dbrev + (n - 1 - d) : nullptr;
    [[maybe_unused]] const elem* dbrE =
        dbrevE != nullptr ? dbrevE + (n - 1 - d) : nullptr;
    [[maybe_unused]] uint8_t* tbrow = nullptr;
    if constexpr (TB) tbrow = tbdirs + tboff[d] - lo;

    if (len <= detail::kScalarDiagonal) {
      for (int i = lo; i <= hi; ++i) scalar_cell(i, d, tbrow);
      scalar_cells += static_cast<uint64_t>(len);
    } else {
      if constexpr (SM == KMode::Fill) {
        const int32_t* dbri = dbr;
        for (int i = lo; i <= hi; ++i)
          sbuf[i] = static_cast<elem>(mat32[qmul[i] + dbri[i]] + bias);
      }
      int i = lo;
      for (; i + V <= hi + 1; i += V) {
        vector_step(i, lo, d, dbr, dbrE, tbrow, V);
        vec_cells += V;
      }
      if (i <= hi) {  // ragged tail: one zero-masked vector (Fig 3)
        vector_step(i, lo, d, dbr, dbrE, tbrow, hi - i + 1);
        scalar_cells += static_cast<uint64_t>(hi - i + 1);
      }
    }

    // Boundary sentinels: cells just outside this diagonal's range must
    // read as 0 from the next diagonals (out-of-ref columns for the full
    // DP, out-of-band cells under a band). Overwrites are provably either
    // dead slots or already zero; indices stay inside the kPad margins.
    Hc[lo - 1] = 0;
    Hc[hi + 1] = 0;
    if constexpr (GM == GapModel::Affine) {
      Ec[lo - 1] = 0;
      Ec[hi + 1] = 0;
      Fc[lo - 1] = 0;
      Fc[hi + 1] = 0;
    }

    elem* t = Hp2;
    Hp2 = Hp;
    Hp = Hc;
    Hc = t;
    if constexpr (GM == GapModel::Affine) {
      std::swap(Ec, Ep);
      std::swap(Fc, Fp);
    }
  }

  // ---- deferred global maximum (§III-D) --------------------------------
  int64_t best = 0;
  int bi = -1;
  for (int i = 0; i < m; ++i) {
    if (static_cast<int64_t>(rowmax[i]) > best) {
      best = rowmax[i];
      bi = i;
    }
  }
  out.score = static_cast<int>(best);
  if (bi >= 0) {
    out.end_query = bi;
    out.end_ref = bestd[bi] - bi;
  }
  out.saturated = !E::is_signed && best >= sat_limit;
  out.stats.cells = vec_cells + scalar_cells;
  out.stats.vector_cells = vec_cells;
  out.stats.scalar_cells = scalar_cells;
  out.stats.diagonals = static_cast<uint64_t>(m + n - 1);
  return out;
}

/// Runtime (gap model, score mode, traceback) -> template instantiation
/// switch; used by each ISA translation unit. cfg.delivery must already be
/// resolved (never Auto here; see core::diag_align).
template <class E>
DiagOutput diag_run(const DiagRequest& rq) {
  const AlignConfig& c = *rq.cfg;
  KMode mode;
  if (c.scheme == ScoreScheme::Fixed) {
    mode = KMode::Fixed;
  } else {
    switch (c.delivery) {
      case ScoreDelivery::Fill:
        mode = KMode::Fill;
        break;
      case ScoreDelivery::Shuffle:
        // Requires engine support AND runtime VBMI; degrade to Fill.
        mode = E::has_shuffle_scores && simd::cpu_features().avx512vbmi
                   ? KMode::Shuffle
                   : KMode::Fill;
        break;
      default:
        mode = KMode::Gather;
        break;
    }
  }
  const bool tb = c.traceback;
  auto with_mode = [&](auto gm_tag) -> DiagOutput {
    constexpr GapModel GMv = decltype(gm_tag)::value;
    switch (mode) {
      case KMode::Gather:
        return tb ? diag_align_impl<E, GMv, KMode::Gather, true>(rq)
                  : diag_align_impl<E, GMv, KMode::Gather, false>(rq);
      case KMode::Fill:
        return tb ? diag_align_impl<E, GMv, KMode::Fill, true>(rq)
                  : diag_align_impl<E, GMv, KMode::Fill, false>(rq);
      case KMode::Shuffle:
        if constexpr (E::has_shuffle_scores)
          return tb ? diag_align_impl<E, GMv, KMode::Shuffle, true>(rq)
                    : diag_align_impl<E, GMv, KMode::Shuffle, false>(rq);
        else
          return tb ? diag_align_impl<E, GMv, KMode::Fill, true>(rq)
                    : diag_align_impl<E, GMv, KMode::Fill, false>(rq);
      default:
        return tb ? diag_align_impl<E, GMv, KMode::Fixed, true>(rq)
                  : diag_align_impl<E, GMv, KMode::Fixed, false>(rq);
    }
  };
  if (c.gap_model == GapModel::Affine)
    return with_mode(std::integral_constant<GapModel, GapModel::Affine>{});
  return with_mode(std::integral_constant<GapModel, GapModel::Linear>{});
}

}  // namespace swve::core
