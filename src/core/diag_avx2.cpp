// AVX2 instantiations of the diagonal kernel (compiled with -mavx2 -mbmi2).
#include "core/diag_kernel.hpp"
#include "core/dispatch.hpp"
#include "simd/engines_avx2.hpp"

namespace swve::core {

DiagOutput diag_avx2(const DiagRequest& rq, Width width) {
  switch (width) {
    case Width::W8:
      return diag_run<simd::Avx2U8>(rq);
    case Width::W16:
      return diag_run<simd::Avx2U16>(rq);
    default:
      return diag_run<simd::Avx2I32>(rq);
  }
}

}  // namespace swve::core
