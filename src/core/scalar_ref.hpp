// Golden scalar Smith-Waterman (Gotoh affine gaps / linear gaps).
//
// Straightforward row-major dynamic programming in 32-bit arithmetic. This
// is the correctness oracle every vector kernel and baseline is
// differentially tested against, and the "standard CPU instructions" code
// path the paper falls back to for tiny inputs. Conventions (shared by all
// kernels):
//   * local alignment, H floor at 0; E/F clamped at 0 (provably score
//     preserving for local alignment);
//   * gap of length k costs open + (k-1)*extend (Affine) or k*extend
//     (Linear);
//   * best cell = lexicographically smallest (i, j) among maximal cells;
//   * traceback tie priority: stop > diagonal > E (query gap run) > F, and
//     gap runs prefer "open" over "extend" on equal score.
#pragma once

#include <vector>

#include "core/params.hpp"
#include "core/result.hpp"
#include "seq/sequence.hpp"

namespace swve::core {

/// Align `q` against `r` with the golden scalar DP. Honors cfg.traceback;
/// ignores cfg.width/cfg.isa (always exact 32-bit).
Alignment ref_align(seq::SeqView q, seq::SeqView r, const AlignConfig& cfg);

/// Full H matrix, row-major (m rows, n columns), for white-box tests.
std::vector<int> ref_matrix(seq::SeqView q, seq::SeqView r, const AlignConfig& cfg);

}  // namespace swve::core
