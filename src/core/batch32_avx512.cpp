// AVX-512-VBMI batch engine: 64 sequence lanes, matrix-row lookup via one
// vpermb (compiled with -mavx512bw -mavx512vbmi). Caller guarantees the CPU
// has VBMI (see batch32_align_u8).
#include <immintrin.h>

#include "core/batch32_kernel.hpp"

namespace swve::core {

namespace {

struct BatchAvx512 {
  using vec = __m512i;
  static constexpr int lanes = 64;

  static vec zero() { return _mm512_setzero_si512(); }
  static vec set1(int x) { return _mm512_set1_epi8(static_cast<char>(x)); }
  static vec load(const uint8_t* p) { return _mm512_loadu_si512(p); }
  static void store(uint8_t* p, vec a) { _mm512_storeu_si512(p, a); }
  static vec adds(vec a, vec b) { return _mm512_adds_epu8(a, b); }
  static vec subs(vec a, vec b) { return _mm512_subs_epu8(a, b); }
  static vec max(vec a, vec b) { return _mm512_max_epu8(a, b); }
  static vec select_eq(vec a, vec b, vec t, vec f) {
    return _mm512_mask_blend_epi8(_mm512_cmpeq_epu8_mask(a, b), f, t);
  }
  static vec lookup32(const uint8_t* row32, vec idx) {
    // The 32-byte row broadcast twice fills a zmm register; indices are in
    // [0, 32) so vpermb selects from the first copy.
    const __m512i table = _mm512_broadcast_i64x4(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(row32)));
    return _mm512_permutexvar_epi8(idx, table);
  }
  static void prefetch(const void* p) {
    _mm_prefetch(static_cast<const char*>(p), _MM_HINT_T0);
  }
};

}  // namespace

Batch8Result batch32_u8_avx512(seq::SeqView q, const uint8_t* columns, uint32_t cols,
                               const AlignConfig& cfg, Workspace& ws) {
  return batch32_kernel<BatchAvx512>(q, columns, cols, cfg, ws);
}

void batch32_u8_avx512_ilp(seq::SeqView q, const BatchCols* batches, int k,
                           const AlignConfig& cfg, Workspace& ws,
                           Batch8Result* out) {
  if (k == 4)
    batch32_kernel_ilp<BatchAvx512, 4>(q, batches, cfg, ws, out);
  else
    batch32_kernel_ilp<BatchAvx512, 2>(q, batches, cfg, ws, out);
}

}  // namespace swve::core
