// Read-only mmap / POSIX-shm loader for swve db artifacts.
//
// MappedDb::open maps a file written by tools/swve_db_build and serves both
// the SequenceDatabase (non-owning Sequence views into the mapped code
// bytes) and the Batch32Db (view mode over the mapped batch sections)
// without copying or re-packing anything. Startup work is proportional to
// sequence COUNT (building the view vectors), not to residues — the
// gigabytes of column data are faulted in lazily by the kernel, shared
// across processes via the page cache, and evictable, so databases larger
// than RAM stream.
//
// SharedMemory residency goes one step further: the first process copies
// the artifact into a POSIX shm object named after the db fingerprint
// (attach-by-name), later processes attach to the existing object, and the
// hot copy is explicitly resident instead of competing with file-backed
// page cache. Readiness is signalled by writing the header magic LAST with
// a release store; attachers spin (bounded) on an acquire load. Any shm
// failure — unsupported platform, permission, timeout on a half-written
// object, SWVE_SHM=off — degrades gracefully to plain file mmap.
#pragma once

#include <memory>
#include <string>

#include "core/batch32.hpp"
#include "core/db_format.hpp"
#include "core/error.hpp"
#include "seq/database.hpp"

namespace swve::core {

/// Where the served database bytes live. Built = packed in-process from
/// FASTA/synthetic input (the legacy path); Mmap = file-backed artifact
/// map; Shm = POSIX shared-memory resident copy of an artifact.
enum class DbSource : uint8_t { Built = 0, Mmap = 1, Shm = 2 };
const char* db_source_name(DbSource s) noexcept;

struct MappedDbOptions {
  enum class Residency : uint8_t {
    File,          ///< plain file-backed mmap (default)
    SharedMemory,  ///< shm attach-by-name, fallback to File
  };
  /// madvise() hints on the mapping. Off leaves kernel defaults;
  /// Sequential suits one-pass scans, WillNeed prefaults eagerly (pairs
  /// with the batch kernels' software prefetch distance).
  enum class Madvise : uint8_t { Off, Sequential, WillNeed, SequentialWillNeed };

  Residency residency = Residency::File;
  Madvise madvise = Madvise::Off;
  /// Also checksum the big payload sections (SeqCodes, BatchColumns) at
  /// open — O(file size), touches every page. Off by default because it
  /// defeats the O(1)-startup point; --verify and tests turn it on.
  bool verify_all = false;
  /// How long an attacher waits for a half-initialized shm object to
  /// become ready before falling back to file mmap.
  double shm_ready_timeout_s = 5.0;
};

/// An opened artifact. Immutable and internally synchronized-by-constness:
/// concurrent readers need no locking.
class MappedDb {
 public:
  static ErrorOr<std::unique_ptr<MappedDb>> open(
      const std::string& path, const MappedDbOptions& opts = MappedDbOptions{});

  ~MappedDb();
  MappedDb(const MappedDb&) = delete;
  MappedDb& operator=(const MappedDb&) = delete;

  const seq::SequenceDatabase& db() const noexcept { return db_; }
  const Batch32Db& batch_db() const noexcept { return *bdb_; }
  const SwdbHeader& header() const noexcept { return header_; }
  /// The artifact's stored db_epoch — equal by construction to
  /// net::database_epoch of the same content loaded from FASTA.
  uint64_t epoch() const noexcept { return header_.db_epoch; }
  DbSource source() const noexcept { return source_; }
  size_t mapped_bytes() const noexcept { return size_; }
  /// Wall time of open(): map + validate + view construction.
  double load_seconds() const noexcept { return load_seconds_; }
  /// Bytes of the mapping currently resident in RAM (mincore walk);
  /// 0 if the query fails. A residency gauge, not a hard guarantee.
  size_t resident_bytes() const noexcept;
  /// Shard slicing helper: madvise only the column bytes of batches
  /// [first_batch, end_batch) — a sharded server prefaults each shard's own
  /// stream from that shard's threads instead of faulting every page
  /// through whichever node mapped the file. Advisory; no-op on bad ranges.
  void advise_batch_columns(size_t first_batch, size_t end_batch,
                            MappedDbOptions::Madvise mode) const noexcept;
  const std::string& path() const noexcept { return path_; }
  /// Non-empty only when source() == Shm.
  const std::string& shm_name() const noexcept { return shm_name_; }

  /// Name a shm object for an artifact: fingerprint plus the packing
  /// parameters, so differently-packed artifacts of the same content never
  /// collide.
  static std::string shm_object_name(const SwdbHeader& h);
  /// Remove a leftover shm object (crashed creator, test cleanup).
  /// Returns true if one existed and was unlinked.
  static bool shm_unlink_object(const SwdbHeader& h) noexcept;

 private:
  MappedDb() = default;

  SwdbHeader header_;
  seq::SequenceDatabase db_;
  std::unique_ptr<Batch32Db> bdb_;
  std::string path_;
  std::string shm_name_;
  const uint8_t* base_ = nullptr;
  size_t size_ = 0;
  DbSource source_ = DbSource::Mmap;
  double load_seconds_ = 0.0;
};

}  // namespace swve::core
