// Alignment results: scores, end/begin cells, CIGAR, kernel statistics.
#pragma once

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "core/params.hpp"
#include "simd/cpu.hpp"

namespace swve::core {

/// CIGAR operations use SAM semantics relative to the query:
///   M consumes one query and one reference residue (match or mismatch);
///   I consumes one query residue  (gap in the reference, vertical/E move);
///   D consumes one reference residue (gap in the query, horizontal/F move).
enum class CigarOp : uint8_t { Match = 0, Ins = 1, Del = 2 };

class Cigar {
 public:
  /// BAM-style packing: length << 2 | op.
  void push(CigarOp op, uint32_t len) {
    if (len == 0) return;
    if (!packed_.empty() && (packed_.back() & 3u) == static_cast<uint32_t>(op)) {
      packed_.back() += len << 2;
      return;
    }
    packed_.push_back(len << 2 | static_cast<uint32_t>(op));
  }
  void clear() { packed_.clear(); }
  bool empty() const noexcept { return packed_.empty(); }
  size_t size() const noexcept { return packed_.size(); }
  CigarOp op(size_t i) const noexcept { return static_cast<CigarOp>(packed_[i] & 3u); }
  uint32_t len(size_t i) const noexcept { return packed_[i] >> 2; }
  void reverse() { std::reverse(packed_.begin(), packed_.end()); }

  uint64_t query_consumed() const noexcept {
    uint64_t n = 0;
    for (size_t i = 0; i < size(); ++i)
      if (op(i) != CigarOp::Del) n += len(i);
    return n;
  }
  uint64_t ref_consumed() const noexcept {
    uint64_t n = 0;
    for (size_t i = 0; i < size(); ++i)
      if (op(i) != CigarOp::Ins) n += len(i);
    return n;
  }

  std::string to_string() const {
    static constexpr char kOps[] = {'M', 'I', 'D'};
    std::string s;
    for (size_t i = 0; i < size(); ++i)
      s += std::to_string(len(i)) + kOps[static_cast<int>(op(i))];
    return s;
  }

  bool operator==(const Cigar&) const = default;

 private:
  std::vector<uint32_t> packed_;
};

/// Cell accounting for the Fig 3 vector/scalar split and GCUPS math.
struct KernelStats {
  uint64_t cells = 0;         ///< total DP cells computed
  uint64_t vector_cells = 0;  ///< computed in full-width vector ops
  uint64_t scalar_cells = 0;  ///< ragged-segment cells on the scalar path
  uint64_t diagonals = 0;     ///< anti-diagonals processed (diag kernels)

  KernelStats& operator+=(const KernelStats& o) {
    cells += o.cells;
    vector_cells += o.vector_cells;
    scalar_cells += o.scalar_cells;
    diagonals += o.diagonals;
    return *this;
  }
};

struct Alignment {
  int score = 0;
  /// End cell of the optimal local alignment (0-based residue indices;
  /// -1,-1 for an empty alignment). Ties break to the smallest query index,
  /// then the smallest reference index, across every kernel.
  int end_query = -1;
  int end_ref = -1;
  /// Begin cell; only filled when traceback is enabled.
  int begin_query = -1;
  int begin_ref = -1;
  Cigar cigar;  ///< empty unless traceback was requested

  Width width_used = Width::W32;
  simd::Isa isa_used = simd::Isa::Scalar;
  /// Adaptive-width bookkeeping: which narrower attempts saturated.
  bool saturated_8 = false;
  bool saturated_16 = false;
  /// True only if the FINAL attempt saturated (fixed narrow width on a
  /// too-high-scoring pair); the score is then a lower bound, not exact.
  bool saturated = false;

  KernelStats stats;
};

}  // namespace swve::core
