// Precomputed per-query feed arrays for the diagonal kernel family.
//
// Every diag_align call rebuilds two O(m) arrays into the workspace before
// the DP sweep: the gather-index feed qmul32 (32 * q[i], Fig 4) and the
// width-widened encoded query qenc (compare feed for Fixed scoring, lookup
// indices for Shuffle delivery). A database search streams thousands of
// targets against ONE query, and a service sees the same query on
// back-to-back requests — so this state can be built once and shared
// read-only across threads. A kernel handed a PreparedQuery skips the
// rebuild; results are bit-identical either way (the arrays hold exactly
// the bytes the in-workspace build would produce, padding included).
//
// The arrays depend only on the query residues — not on the matrix, gap
// model, or ISA — so one PreparedQuery serves every config. (Cache layers
// above may still key more conservatively; see align::QueryStateCache.)
#pragma once

#include <cstdint>
#include <cstring>
#include <vector>

#include "core/workspace.hpp"
#include "seq/alphabet.hpp"
#include "seq/sequence.hpp"

namespace swve::core {

class PreparedQuery {
 public:
  explicit PreparedQuery(seq::SeqView query) : m_(static_cast<int>(query.length)) {
    const size_t padded = query.length + static_cast<size_t>(kPad);
    qmul32_.assign(padded, 0);  // zeroed pads: masked-tail gathers hit row 0
    qenc8_.assign(padded, 0);   // zeroed pads: code 0 is a valid LUT index
    qenc16_.assign(padded, 0);
    qenc32_.assign(padded, 0);
    for (size_t i = 0; i < query.length; ++i) {
      const uint8_t c = query.data[i];
      qmul32_[i] = static_cast<int32_t>(c) * seq::kMatrixStride;
      qenc8_[i] = c;
      qenc16_[i] = c;
      qenc32_[i] = c;
    }
  }

  int query_length() const noexcept { return m_; }
  /// Gather/Fill feed: 32 * q[i], kPad zeroed entries past the end.
  const int32_t* qmul32() const noexcept { return qmul32_.data(); }

  /// Encoded query widened to the kernel element type (uint8_t / uint16_t /
  /// int32_t are the only elem types the engines instantiate).
  template <typename Elem>
  const Elem* qenc() const noexcept {
    if constexpr (sizeof(Elem) == 1)
      return reinterpret_cast<const Elem*>(qenc8_.data());
    else if constexpr (sizeof(Elem) == 2)
      return reinterpret_cast<const Elem*>(qenc16_.data());
    else
      return reinterpret_cast<const Elem*>(qenc32_.data());
  }

  /// Bytes held by this object (cache accounting).
  size_t memory_bytes() const noexcept {
    return qmul32_.size() * 4 + qenc8_.size() + qenc16_.size() * 2 +
           qenc32_.size() * 4;
  }

 private:
  int m_;
  std::vector<int32_t> qmul32_;
  std::vector<uint8_t> qenc8_;
  std::vector<uint16_t> qenc16_;
  std::vector<int32_t> qenc32_;
};

}  // namespace swve::core
