// Substitution matrices in the 32-column padded layout of the paper (Fig 4).
//
// Each row holds 32 int32 entries (24 real letters + padding), so:
//   * `32*q + r` indexes the flat array — one shift+add feeding vpgatherdd;
//   * one row is 32 bytes in the biased-byte copy — exactly one 256-bit
//     load, which is what the batch32 kernel's in-register shuffle LUT eats.
// Padding codes score the matrix minimum so they can never win an alignment.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "seq/alphabet.hpp"

namespace swve::matrix {

class ScoreMatrix {
 public:
  /// Build from a dim x dim score table in the alphabet's code order.
  ScoreMatrix(std::string name, const seq::Alphabet& alphabet,
              std::span<const int8_t> square, int dim);

  /// Constant match/mismatch matrix over a whole alphabet ("without
  /// substitution matrix" mode of Fig 9, and the usual DNA scoring).
  static ScoreMatrix match_mismatch(int match, int mismatch,
                                    const seq::Alphabet& alphabet);

  // --- the built-in NCBI tables ---------------------------------------
  static const ScoreMatrix& blosum45();
  static const ScoreMatrix& blosum50();
  static const ScoreMatrix& blosum62();
  static const ScoreMatrix& blosum80();
  static const ScoreMatrix& blosum90();
  static const ScoreMatrix& pam120();
  static const ScoreMatrix& pam250();
  /// IUPAC-ambiguity-aware nucleotide matrix over the 16-letter DNA
  /// alphabet, computed from base-set overlap:
  ///   score(X, Y) = round(5 * p - 4 * (1 - p)),  p = |X n Y| / (|X| * |Y|)
  /// giving the classic +5/-4 on unambiguous bases and EDNAFULL-style
  /// negatives on ambiguity codes (N vs N = -2). U is treated as T.
  static const ScoreMatrix& dna_iupac();
  /// Case-insensitive lookup ("blosum62", "pam250", "dna_iupac", ...);
  /// nullptr if unknown.
  static const ScoreMatrix* find(const std::string& name);
  /// Names of the built-in protein matrices (benches iterate these).
  static std::vector<std::string> builtin_names();

  const std::string& name() const noexcept { return name_; }
  const seq::Alphabet& alphabet() const noexcept { return *alphabet_; }
  int dim() const noexcept { return dim_; }

  int score(uint8_t a, uint8_t b) const noexcept {
    return data32_[static_cast<size_t>(a) * seq::kMatrixStride + b];
  }
  /// Flat 32x32 int32 table for the gather unit.
  const int32_t* data32() const noexcept { return data32_.data(); }

  int min_score() const noexcept { return min_; }
  int max_score() const noexcept { return max_; }
  /// Bias that makes every entry non-negative (unsigned-domain kernels).
  int bias() const noexcept { return min_ < 0 ? -min_ : 0; }

  /// 32x32 biased uint8 copy: entry = score + bias(). Row q is one 256-bit
  /// load; used by the batch32 shuffle LUT.
  const uint8_t* rows_biased_u8() const noexcept { return rows_u8_.data(); }

 private:
  std::string name_;
  const seq::Alphabet* alphabet_;
  int dim_;
  int min_ = 0, max_ = 0;
  std::vector<int32_t> data32_;  // 32*32
  std::vector<uint8_t> rows_u8_;  // 32*32
};

}  // namespace swve::matrix
