// Query profiles: per-query-residue score tables precomputed once per
// alignment (Rognes 2000 / Farrar 2007 technique, §III-C of the paper).
//
// A profile row for database letter c holds S[q[i], c] for every query
// position i, laid out to match how a kernel walks the query:
//   * StripedProfile  — Farrar's striped order (the striped baseline);
//   * SequentialProfile — plain query order (the scan baseline).
// Values may be biased into an unsigned domain for saturating kernels.
#pragma once

#include <cstdint>
#include <vector>

#include "matrix/score_matrix.hpp"
#include "seq/sequence.hpp"

namespace swve::matrix {

/// Striped layout: entry (v * lanes + k) of a row is the score for query
/// position i = k * segLen + v; positions >= query length get `pad_value`.
template <typename T>
class StripedProfile {
 public:
  StripedProfile(seq::SeqView query, const ScoreMatrix& m, int lanes, T pad_value,
                 int bias);

  int seg_len() const noexcept { return seg_len_; }
  int lanes() const noexcept { return lanes_; }
  int query_length() const noexcept { return query_length_; }
  int bias() const noexcept { return bias_; }

  /// Row for database letter `c`: seg_len()*lanes() entries.
  const T* row(uint8_t c) const noexcept {
    return data_.data() + static_cast<size_t>(c) * row_size_;
  }

 private:
  int lanes_;
  int seg_len_;
  int query_length_;
  int bias_;
  size_t row_size_;
  std::vector<T> data_;  // kMatrixStride rows
};

/// Sequential layout: entry i of a row is the (biased) score for query
/// position i; `padding` extra entries of `pad_value` follow each row so
/// vector loads may run past the end.
template <typename T>
class SequentialProfile {
 public:
  SequentialProfile(seq::SeqView query, const ScoreMatrix& m, int padding, T pad_value,
                    int bias);

  int query_length() const noexcept { return query_length_; }
  int bias() const noexcept { return bias_; }
  const T* row(uint8_t c) const noexcept {
    return data_.data() + static_cast<size_t>(c) * row_size_;
  }

 private:
  int query_length_;
  int bias_;
  size_t row_size_;
  std::vector<T> data_;
};

extern template class StripedProfile<uint8_t>;
extern template class StripedProfile<int16_t>;
extern template class StripedProfile<int32_t>;
extern template class SequentialProfile<uint8_t>;
extern template class SequentialProfile<int16_t>;
extern template class SequentialProfile<int32_t>;

}  // namespace swve::matrix
