#include "matrix/score_matrix.hpp"

#include <algorithm>
#include <cctype>
#include <stdexcept>

namespace swve::matrix {

using seq::kMatrixStride;

ScoreMatrix::ScoreMatrix(std::string name, const seq::Alphabet& alphabet,
                         std::span<const int8_t> square, int dim)
    : name_(std::move(name)), alphabet_(&alphabet), dim_(dim) {
  if (dim <= 0 || dim > kMatrixStride)
    throw std::invalid_argument("ScoreMatrix: dim must be in [1, 32]");
  if (square.size() != static_cast<size_t>(dim) * static_cast<size_t>(dim))
    throw std::invalid_argument("ScoreMatrix: table size != dim*dim");
  if (dim < alphabet.size())
    throw std::invalid_argument("ScoreMatrix: table smaller than alphabet");

  min_ = square[0];
  max_ = square[0];
  for (int8_t v : square) {
    min_ = std::min<int>(min_, v);
    max_ = std::max<int>(max_, v);
  }

  data32_.assign(static_cast<size_t>(kMatrixStride) * kMatrixStride, min_);
  for (int a = 0; a < dim; ++a)
    for (int b = 0; b < dim; ++b)
      data32_[static_cast<size_t>(a) * kMatrixStride + b] =
          square[static_cast<size_t>(a) * static_cast<size_t>(dim) +
                 static_cast<size_t>(b)];

  rows_u8_.assign(data32_.size(), 0);
  const int bias_v = bias();
  for (size_t i = 0; i < data32_.size(); ++i) {
    int v = data32_[i] + bias_v;
    rows_u8_[i] = static_cast<uint8_t>(std::clamp(v, 0, 255));
  }
}

ScoreMatrix ScoreMatrix::match_mismatch(int match, int mismatch,
                                        const seq::Alphabet& alphabet) {
  if (match < mismatch)
    throw std::invalid_argument("match_mismatch: match < mismatch");
  if (match > 127 || mismatch < -128)
    throw std::invalid_argument("match_mismatch: scores must fit int8");
  const int dim = alphabet.size();
  std::vector<int8_t> t(static_cast<size_t>(dim) * static_cast<size_t>(dim),
                        static_cast<int8_t>(mismatch));
  for (int a = 0; a < dim; ++a)
    t[static_cast<size_t>(a) * static_cast<size_t>(dim) + static_cast<size_t>(a)] =
        static_cast<int8_t>(match);
  return ScoreMatrix("match" + std::to_string(match) + "/mismatch" +
                         std::to_string(mismatch),
                     alphabet, t, dim);
}

const ScoreMatrix* ScoreMatrix::find(const std::string& name) {
  std::string t;
  for (char c : name) t.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  if (t == "blosum45") return &blosum45();
  if (t == "blosum50") return &blosum50();
  if (t == "blosum62") return &blosum62();
  if (t == "blosum80") return &blosum80();
  if (t == "blosum90") return &blosum90();
  if (t == "pam120") return &pam120();
  if (t == "pam250") return &pam250();
  if (t == "dna_iupac" || t == "dna") return &dna_iupac();
  return nullptr;
}

const ScoreMatrix& ScoreMatrix::dna_iupac() {
  static const ScoreMatrix m = [] {
    const seq::Alphabet& a = seq::Alphabet::dna();  // "ACGTUSWRYKMBVHDN"
    // Base sets as bitmasks over A=1, C=2, G=4, T=8 (U == T).
    auto base_set = [](char c) -> unsigned {
      switch (c) {
        case 'A': return 1;
        case 'C': return 2;
        case 'G': return 4;
        case 'T': case 'U': return 8;
        case 'S': return 2 | 4;          // strong: C/G
        case 'W': return 1 | 8;          // weak:   A/T
        case 'R': return 1 | 4;          // purine: A/G
        case 'Y': return 2 | 8;          // pyrimidine: C/T
        case 'K': return 4 | 8;          // keto:   G/T
        case 'M': return 1 | 2;          // amino:  A/C
        case 'B': return 2 | 4 | 8;      // not A
        case 'V': return 1 | 2 | 4;      // not T
        case 'H': return 1 | 2 | 8;      // not G
        case 'D': return 1 | 4 | 8;      // not C
        case 'N': return 1 | 2 | 4 | 8;  // any
        default: return 1 | 2 | 4 | 8;
      }
    };
    const int dim = a.size();
    std::vector<int8_t> t(static_cast<size_t>(dim) * static_cast<size_t>(dim));
    for (int x = 0; x < dim; ++x)
      for (int y = 0; y < dim; ++y) {
        const unsigned sx = base_set(a.decode(static_cast<uint8_t>(x)));
        const unsigned sy = base_set(a.decode(static_cast<uint8_t>(y)));
        const double p = static_cast<double>(__builtin_popcount(sx & sy)) /
                         (__builtin_popcount(sx) * __builtin_popcount(sy));
        const double s = 5.0 * p - 4.0 * (1.0 - p);
        t[static_cast<size_t>(x) * static_cast<size_t>(dim) +
          static_cast<size_t>(y)] =
            static_cast<int8_t>(s >= 0 ? s + 0.5 : s - 0.5);
      }
    return ScoreMatrix("dna_iupac", a, t, dim);
  }();
  return m;
}

std::vector<std::string> ScoreMatrix::builtin_names() {
  return {"blosum45", "blosum50", "blosum62", "blosum80",
          "blosum90", "pam120",   "pam250"};
}

}  // namespace swve::matrix
