#include "matrix/query_profile.hpp"

#include <stdexcept>

namespace swve::matrix {

using seq::kMatrixStride;

template <typename T>
StripedProfile<T>::StripedProfile(seq::SeqView query, const ScoreMatrix& m, int lanes,
                                  T pad_value, int bias)
    : lanes_(lanes), query_length_(static_cast<int>(query.length)), bias_(bias) {
  if (lanes <= 0) throw std::invalid_argument("StripedProfile: lanes must be positive");
  seg_len_ = (query_length_ + lanes_ - 1) / lanes_;
  if (seg_len_ == 0) seg_len_ = 1;  // keep rows non-empty for empty queries
  row_size_ = static_cast<size_t>(seg_len_) * static_cast<size_t>(lanes_);
  data_.assign(row_size_ * kMatrixStride, pad_value);
  for (int c = 0; c < kMatrixStride; ++c) {
    T* row = data_.data() + static_cast<size_t>(c) * row_size_;
    for (int v = 0; v < seg_len_; ++v) {
      for (int k = 0; k < lanes_; ++k) {
        int i = k * seg_len_ + v;
        if (i < query_length_)
          row[static_cast<size_t>(v) * lanes_ + k] =
              static_cast<T>(m.score(query[static_cast<size_t>(i)],
                                     static_cast<uint8_t>(c)) +
                             bias);
      }
    }
  }
}

template <typename T>
SequentialProfile<T>::SequentialProfile(seq::SeqView query, const ScoreMatrix& m,
                                        int padding, T pad_value, int bias)
    : query_length_(static_cast<int>(query.length)), bias_(bias) {
  if (padding < 0) throw std::invalid_argument("SequentialProfile: negative padding");
  row_size_ = static_cast<size_t>(query_length_) + static_cast<size_t>(padding);
  if (row_size_ == 0) row_size_ = 1;
  data_.assign(row_size_ * kMatrixStride, pad_value);
  for (int c = 0; c < kMatrixStride; ++c) {
    T* row = data_.data() + static_cast<size_t>(c) * row_size_;
    for (int i = 0; i < query_length_; ++i)
      row[i] = static_cast<T>(
          m.score(query[static_cast<size_t>(i)], static_cast<uint8_t>(c)) + bias);
  }
}

template class StripedProfile<uint8_t>;
template class StripedProfile<int16_t>;
template class StripedProfile<int32_t>;
template class SequentialProfile<uint8_t>;
template class SequentialProfile<int16_t>;
template class SequentialProfile<int32_t>;

}  // namespace swve::matrix
