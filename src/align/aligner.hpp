// Public pairwise-alignment facade.
//
// An Aligner owns a Workspace and reuses it across calls, so repeated
// alignments allocate nothing once warm — this is the paper's scenario 3
// ("SW as a subroutine": many small alignments, working set in cache).
#pragma once

#include "core/dispatch.hpp"
#include "core/params.hpp"
#include "core/result.hpp"
#include "core/scalar_ref.hpp"

namespace swve::align {

using core::AlignConfig;
using core::Alignment;
using core::GapModel;
using core::ScoreScheme;
using core::Width;
using simd::Isa;

class Aligner {
 public:
  explicit Aligner(AlignConfig cfg = {}) : cfg_(cfg) { cfg_.validate(); }

  const AlignConfig& config() const noexcept { return cfg_; }
  void set_config(const AlignConfig& cfg) {
    cfg.validate();
    cfg_ = cfg;
  }

  /// Align query against reference with the diagonal kernel family
  /// (ISA-dispatched, adaptive width, optional traceback per config).
  Alignment align(seq::SeqView query, seq::SeqView reference) {
    return core::diag_align(query, reference, cfg_, ws_);
  }

  /// Access the workspace (advanced: sharing with the batch kernels).
  core::Workspace& workspace() noexcept { return ws_; }

 private:
  AlignConfig cfg_;
  core::Workspace ws_;
};

/// One-shot convenience wrapper.
///
/// DEPRECATED (soft): this function used to allocate a fresh Workspace on
/// every call, which made it a trap in hot loops. It now reuses one
/// `thread_local` workspace per thread, so repeated calls allocate nothing
/// once warm — but the workspace is never freed until thread exit, and the
/// call still re-resolves ISA/delivery per invocation.
///
/// Migration:
///   - hot loops / long-lived callers:  hold an `align::Aligner` (explicit
///     workspace lifetime, config validated once);
///   - async / many-caller services:    use `service::AlignService::submit`
///     (queued, instrumented, future-based);
///   - one-off scripts:                 this function is fine as-is.
inline Alignment align(seq::SeqView query, seq::SeqView reference,
                       const AlignConfig& cfg = {}) {
  thread_local core::Workspace ws;
  return core::diag_align(query, reference, cfg, ws);
}

}  // namespace swve::align
