// Alignment score statistics: Karlin-Altschul parameters, E-values and bit
// scores for database-search hits.
//
// Local-alignment scores of unrelated sequences follow an extreme-value
// (Gumbel) distribution: E = K * m * n * exp(-lambda * S). This module
// provides lambda three ways:
//   * analytically for ungapped scoring (the classical Karlin-Altschul
//     equation sum p_i p_j exp(lambda s_ij) = 1, solved by bisection);
//   * from a small table of published gapped parameters for common
//     (matrix, gap) combinations;
//   * by empirical calibration: align random sequence pairs with the actual
//     kernel configuration and fit a Gumbel by the method of moments —
//     works for any scoring scheme, including banded alignment.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>

#include "core/params.hpp"

namespace swve::align {

struct KarlinParams {
  double lambda = 0;  ///< scale of the score distribution (nats per score)
  double K = 0;       ///< search-space prefactor
  double H = 0;       ///< relative entropy per aligned pair (nats); 0 if n/a
  bool gapped = false;
};

/// Exact ungapped lambda and H for a matrix and residue background
/// (`background` has one frequency per code; typically
/// seq::protein_background()). K is approximated as H/lambda (documented
/// rough estimate — calibrate empirically when accurate E-values matter).
/// Throws if the expected score is non-negative (no Gumbel regime).
KarlinParams karlin_ungapped(const matrix::ScoreMatrix& matrix,
                             std::span<const double> background);

/// Published gapped parameters (ALP/BLAST values) for common
/// configurations; nullopt if the combination is not in the table.
std::optional<KarlinParams> published_gapped(const std::string& matrix_name,
                                             int gap_open, int gap_extend);

/// Empirical calibration: align `samples` random length-`len` pairs under
/// `cfg` (through the real kernels) and fit a Gumbel by moments:
///   lambda = pi / (sd * sqrt(6)),  mu = mean - gamma/lambda,
///   K = exp(lambda * mu) / (len * len).
/// Deterministic for a given seed. `cfg.traceback` is ignored.
KarlinParams calibrate_gapped(const core::AlignConfig& cfg, int samples = 300,
                              uint32_t len = 200, uint64_t seed = 99);

/// Expected number of chance hits with score >= S for a query of length m
/// against db_residues of target.
double evalue(const KarlinParams& p, int score, uint64_t query_length,
              uint64_t db_residues);

/// Normalized score in bits: (lambda*S - ln K) / ln 2.
double bitscore(const KarlinParams& p, int score);

}  // namespace swve::align
