// Scenario 1: one query streamed against a sequence database, partitioned
// across threads by residue count, with deterministic top-k merging.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "align/aligner.hpp"
#include "core/batch32.hpp"
#include "parallel/thread_pool.hpp"
#include "seq/database.hpp"

namespace swve::align {

struct Hit {
  uint32_t seq_index = 0;  ///< index into the database
  int score = 0;
  int end_query = -1;
  int end_ref = -1;

  /// Ordering for top-k: higher score first, then lower index (stable and
  /// thread-count independent).
  friend bool operator<(const Hit& a, const Hit& b) {
    if (a.score != b.score) return a.score > b.score;
    return a.seq_index < b.seq_index;
  }
};

struct SearchResult {
  std::vector<Hit> hits;  ///< top-k, best first
  core::KernelStats stats;
  double seconds = 0;
  uint64_t query_length = 0;
  uint64_t db_residues = 0;
  double gcups() const {
    return seconds > 0
               ? static_cast<double>(query_length) *
                     static_cast<double>(db_residues) / seconds / 1e9
               : 0.0;
  }
};

/// How DatabaseSearch scores the database.
enum class SearchMode {
  /// Stream every sequence through the intra-sequence diagonal kernel
  /// (adaptive width). Hits carry exact end positions.
  Diagonal,
  /// Score through the inter-sequence batch32 kernel (the database is
  /// packed once at construction), then re-align only the top-k hits with
  /// the diagonal kernel for end positions. Fastest for scoring whole
  /// databases; identical hits and scores.
  Batch,
};

class DatabaseSearch {
 public:
  DatabaseSearch(const seq::SequenceDatabase& db, AlignConfig cfg,
                 SearchMode mode = SearchMode::Diagonal);

  /// Search with `pool` (or single-threaded when null). Results are
  /// identical for every thread count and for both search modes.
  SearchResult search(seq::SeqView query, size_t top_k,
                      parallel::ThreadPool* pool = nullptr) const;

  SearchMode mode() const noexcept { return mode_; }

 private:
  SearchResult search_diagonal(seq::SeqView query, size_t top_k,
                               parallel::ThreadPool* pool) const;
  SearchResult search_batch(seq::SeqView query, size_t top_k,
                            parallel::ThreadPool* pool) const;

  const seq::SequenceDatabase* db_;
  AlignConfig cfg_;
  SearchMode mode_;
  std::unique_ptr<core::Batch32Db> bdb_;  // Batch mode only
};

}  // namespace swve::align
