// Scenario 1: one query streamed against a sequence database, partitioned
// across threads by residue count, with deterministic top-k merging.
//
// The actual search loops live in the stateless `engine` namespace: they
// take the database, config, and an ExecContext (pool / cancellation /
// deadline) explicitly, so both the synchronous DatabaseSearch facade and
// the async service::AlignService drive the exact same code and get
// bit-identical results.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "align/aligner.hpp"
#include "align/exec_context.hpp"
#include "core/batch32.hpp"
#include "core/error.hpp"
#include "parallel/thread_pool.hpp"
#include "seq/database.hpp"

namespace swve::align {

class ShardedSearch;    // align/sharded_search.hpp
struct ShardOptions;

struct Hit {
  uint32_t seq_index = 0;  ///< index into the database
  int score = 0;
  int end_query = -1;
  int end_ref = -1;

  /// Ordering for top-k: higher score first, then lower index (stable and
  /// thread-count independent).
  friend bool operator<(const Hit& a, const Hit& b) {
    if (a.score != b.score) return a.score > b.score;
    return a.seq_index < b.seq_index;
  }
};

struct SearchResult {
  std::vector<Hit> hits;  ///< top-k, best first
  core::KernelStats stats;
  /// Batch-path accounting (zero for the diagonal path): 8-bit kernel cells
  /// split into useful vs padding, and the rescore ladder's work. The ratio
  /// useful_cells8 / cells8 is the packing efficiency of this search.
  core::BatchSearchStats batch_stats;
  double seconds = 0;
  uint64_t query_length = 0;
  uint64_t db_residues = 0;
  /// True when the engine stopped early (cancellation or deadline); hits
  /// then cover only the sequences scanned before the stop and must not be
  /// treated as a complete answer.
  bool truncated = false;
  double gcups() const {
    return seconds > 0
               ? static_cast<double>(query_length) *
                     static_cast<double>(db_residues) / seconds / 1e9
               : 0.0;
  }
};

/// How DatabaseSearch scores the database.
enum class SearchMode {
  /// Stream every sequence through the intra-sequence diagonal kernel
  /// (adaptive width). Hits carry exact end positions.
  Diagonal,
  /// Score through the inter-sequence batch32 kernel (the database is
  /// packed once at construction), then re-align only the top-k hits with
  /// the diagonal kernel for end positions. Fastest for scoring whole
  /// databases; identical hits and scores.
  Batch,
};

namespace engine {

/// Stateless scenario-1 engine, diagonal-kernel path. `cfg` must already be
/// validated with traceback off. Deterministic for any pool size; honors
/// ctx cancellation/deadline at per-sequence granularity.
SearchResult search_diagonal(const seq::SequenceDatabase& db,
                             const core::AlignConfig& cfg, seq::SeqView query,
                             size_t top_k, const ExecContext& ctx);

/// Stateless scenario-1 engine, batch32-kernel path. `bdb` is the database
/// packed for the batch kernel (see core::Batch32Db); cancellation/deadline
/// is honored at per-batch granularity.
SearchResult search_batch(const seq::SequenceDatabase& db,
                          const core::Batch32Db& bdb,
                          const core::AlignConfig& cfg, seq::SeqView query,
                          size_t top_k, const ExecContext& ctx);

}  // namespace engine

/// Synchronous facade over the engines (owns the packed database in Batch
/// mode). service::AlignService is the asynchronous, instrumented front
/// door over the same engines.
class DatabaseSearch {
 public:
  /// `packing` selects how Batch mode packs the database (ignored in
  /// Diagonal mode); every policy returns identical hits and scores — see
  /// core::PackingPolicy.
  DatabaseSearch(const seq::SequenceDatabase& db, AlignConfig cfg,
                 SearchMode mode = SearchMode::Diagonal,
                 core::PackingPolicy packing = core::PackingPolicy::LengthSorted);

  /// Batch-mode facade over an externally-owned packed database (the
  /// mmap'd-artifact path: a core::MappedDb's batch_db()). Nothing is
  /// packed or copied here; `db` and `packed` must describe the same
  /// database and outlive the facade. Results are bit-identical to the
  /// owning constructor with the same lanes/policy.
  DatabaseSearch(const seq::SequenceDatabase& db,
                 const core::Batch32Db& packed, AlignConfig cfg);

  ~DatabaseSearch();  // out of line: ShardedSearch is incomplete here
  DatabaseSearch(DatabaseSearch&&) noexcept;
  DatabaseSearch& operator=(DatabaseSearch&&) noexcept;

  /// Search with `pool` (or single-threaded when null). Results are
  /// identical for every thread count and for both search modes.
  SearchResult search(seq::SeqView query, size_t top_k,
                      parallel::ThreadPool* pool = nullptr) const;

  /// Search with an explicit execution context (pool + cancel + deadline).
  SearchResult search(seq::SeqView query, size_t top_k,
                      const ExecContext& ctx) const;

  SearchMode mode() const noexcept { return mode_; }
  /// Batch mode's packed database (null in Diagonal mode); exposes packing
  /// efficiency and policy for metrics/benchmarks. Owned or external,
  /// depending on the constructor used.
  const core::Batch32Db* packed_db() const noexcept { return packed_; }

  /// Shard Batch mode across NUMA nodes (align::ShardedSearch): subsequent
  /// search() calls fan out over per-node pinned pools and merge bounded
  /// per-shard top-k heaps — bit-identical results, local memory traffic.
  /// Fails (ConfigError) in Diagonal mode or when opt.shards exceeds the
  /// packed batch count; the facade stays unsharded on failure.
  core::ErrorOr<void> enable_sharding(const ShardOptions& opt);
  /// Non-null after a successful enable_sharding (per-shard stats access).
  const ShardedSearch* sharded() const noexcept { return sharded_.get(); }

 private:
  const seq::SequenceDatabase* db_;
  AlignConfig cfg_;
  SearchMode mode_;
  std::unique_ptr<core::Batch32Db> bdb_;          // owning Batch mode only
  const core::Batch32Db* packed_ = nullptr;       // Batch mode (either ctor)
  std::unique_ptr<ShardedSearch> sharded_;        // Batch mode, opt-in
};

}  // namespace swve::align
