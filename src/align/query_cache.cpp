#include "align/query_cache.hpp"

#include "simd/cpu.hpp"

namespace swve::align {

namespace {

// FNV-1a; queries are short enough (hundreds to a few thousand bytes) that
// byte-at-a-time hashing is noise next to the DP it precedes.
uint64_t fnv1a(const uint8_t* p, size_t n, uint64_t h = 0xCBF29CE484222325ull) {
  for (size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 0x100000001B3ull;
  }
  return h;
}

uint64_t mix(uint64_t h, uint64_t v) {
  h ^= v + 0x9E3779B97F4A7C15ull + (h << 6) + (h >> 2);
  return h;
}

}  // namespace

bool QueryStateCache::Key::operator==(const Key& o) const noexcept {
  return matrix == o.matrix && match == o.match && mismatch == o.mismatch &&
         gap_open == o.gap_open && gap_extend == o.gap_extend &&
         scheme == o.scheme && gap_model == o.gap_model && isa == o.isa &&
         qbytes == o.qbytes;
}

size_t QueryStateCache::KeyHash::operator()(const Key& k) const noexcept {
  uint64_t h = fnv1a(k.qbytes.data(), k.qbytes.size());
  h = mix(h, reinterpret_cast<uintptr_t>(k.matrix));
  h = mix(h, (static_cast<uint64_t>(static_cast<uint32_t>(k.match)) << 32) |
                 static_cast<uint32_t>(k.mismatch));
  h = mix(h, (static_cast<uint64_t>(static_cast<uint32_t>(k.gap_open)) << 32) |
                 static_cast<uint32_t>(k.gap_extend));
  h = mix(h, (uint64_t{k.scheme} << 16) | (uint64_t{k.gap_model} << 8) |
                 uint64_t{k.isa});
  return static_cast<size_t>(h);
}

QueryStateCache::QueryStateCache(size_t capacity, size_t max_pool)
    : capacity_(capacity == 0 ? 1 : capacity), max_pool_(max_pool) {}

std::shared_ptr<const core::PreparedQuery> QueryStateCache::prepared(
    seq::SeqView query, const core::AlignConfig& cfg) {
  Key key;
  key.qbytes.assign(query.data, query.data + query.length);
  // Matrix identity matters only under the Matrix scheme, match/mismatch
  // only under Fixed — normalize the irrelevant half so equivalent configs
  // share an entry.
  const bool is_matrix = cfg.scheme == core::ScoreScheme::Matrix;
  key.matrix = is_matrix ? static_cast<const void*>(cfg.matrix) : nullptr;
  key.match = is_matrix ? 0 : cfg.match;
  key.mismatch = is_matrix ? 0 : cfg.mismatch;
  key.gap_open = cfg.gap_open;
  key.gap_extend = cfg.gap_extend;
  key.scheme = static_cast<uint8_t>(cfg.scheme);
  key.gap_model = static_cast<uint8_t>(cfg.gap_model);
  key.isa = static_cast<uint8_t>(simd::resolve_isa(cfg.isa));

  {
    std::lock_guard<std::mutex> lk(mu_);
    auto it = map_.find(key);
    if (it != map_.end()) {
      lru_.splice(lru_.begin(), lru_, it->second);  // refresh recency
      ++stats_.hits;
      return it->second->prep;
    }
  }

  // Build outside the lock: construction is O(query) but other requests
  // (different queries) shouldn't serialize behind it. A racing duplicate
  // build of the same query is harmless — last one in wins the LRU slot
  // and both copies are correct.
  auto prep = std::make_shared<const core::PreparedQuery>(query);

  std::lock_guard<std::mutex> lk(mu_);
  ++stats_.misses;
  auto it = map_.find(key);
  if (it != map_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second);
    return it->second->prep;
  }
  stats_.prepared_bytes += prep->memory_bytes();
  lru_.push_front(Entry{std::move(key), prep});
  map_.emplace(lru_.front().key, lru_.begin());
  while (lru_.size() > capacity_) {
    stats_.prepared_bytes -= lru_.back().prep->memory_bytes();
    map_.erase(lru_.back().key);
    lru_.pop_back();
    ++stats_.evictions;
  }
  return prep;
}

QueryStateCache::WorkspaceLease QueryStateCache::lease_workspace() {
  std::unique_lock<std::mutex> lk(mu_);
  if (!pool_.empty()) {
    std::unique_ptr<core::Workspace> ws = std::move(pool_.back());
    pool_.pop_back();
    ++stats_.ws_reuses;
    lk.unlock();
    return WorkspaceLease(std::move(ws), this);
  }
  ++stats_.ws_creates;
  lk.unlock();
  return WorkspaceLease(std::make_unique<core::Workspace>(), this);
}

void QueryStateCache::return_workspace(std::unique_ptr<core::Workspace> ws) {
  std::lock_guard<std::mutex> lk(mu_);
  if (pool_.size() < max_pool_) pool_.push_back(std::move(ws));
  // else: pool full, let it free
}

QueryStateCache::WorkspaceLease::~WorkspaceLease() {
  if (owner_ != nullptr && ws_ != nullptr)
    owner_->return_workspace(std::move(ws_));
}

QueryCacheStats QueryStateCache::stats() const {
  std::lock_guard<std::mutex> lk(mu_);
  QueryCacheStats s = stats_;
  s.entries = lru_.size();
  s.pooled_workspaces = pool_.size();
  return s;
}

void QueryStateCache::clear() {
  std::lock_guard<std::mutex> lk(mu_);
  lru_.clear();
  map_.clear();
  pool_.clear();
  stats_.prepared_bytes = 0;
}

}  // namespace swve::align
