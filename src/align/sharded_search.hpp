// Sharded scenario-1 search with NUMA-aware placement and a bit-identical
// top-k merge.
//
// The flat batch path (engine::search_batch) fans one thread pool over one
// packed database: on a multi-socket host every socket streams columns it
// does not own, and the hottest loads in the system cross the interconnect.
// ShardedSearch splits a Batch32Db into S shards *between* batches (batches
// are the packing's length bins, so packing efficiency survives the split
// untouched), gives each shard a thread-pool slice pinned to one NUMA node
// (parallel/topology.hpp) with its own workspace arena (a per-shard
// QueryStateCache partition), places each shard's column bytes on its node
// (mbind under `bind`, page-interleave under `interleave`, first-touch
// otherwise), and scans all shards concurrently into bounded per-shard
// top-k heaps.
//
// Determinism: per-sequence scores are exact (the 8-bit kernel plus the
// 16/32-bit rescore ladder is deterministic, and batches are never split),
// and Hit's ordering is a strict total order (score desc, then seq_index
// asc, with seq_index unique). Top-k selection under a strict total order
// is a unique set whatever the partition shape, so merging the per-shard
// heaps at the end — SWAPHI's shard/merge shape, with NUMA nodes playing
// the coprocessor cards — returns results bit-identical to the unsharded
// path for every shard count, packing policy, and ILP depth. The
// shard/topk_identical bench sentinel and tests/test_sharded_search.cpp
// hold that line.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "align/db_search.hpp"
#include "core/error.hpp"
#include "parallel/topology.hpp"

namespace swve::core {
class MappedDb;
}

namespace swve::align {

class QueryStateCache;

/// Construction-time knobs (ServiceOptions.search mirrors these).
struct ShardOptions {
  /// 0 = auto: one shard per NUMA node (after the runtime hint below), so a
  /// single-node host runs one shard; N >= 1 forces exactly N shards.
  /// Explicitly requesting more shards than the database has batches is a
  /// typed config error (auto clamps instead).
  int shards = 0;
  /// Thread/memory placement. Off still shards (useful for the merge-path
  /// tests and for cache-partitioning on one socket) but pins nothing.
  parallel::NumaPolicy numa = parallel::NumaPolicy::Off;
  /// Worker threads across all shards; 0 = one per online CPU. Each shard
  /// gets at least one.
  unsigned total_threads = 0;
  /// When the packed db is a mapped artifact, madvise each shard's column
  /// byte range at construction (MappedDb::advise_batch_columns) so shards
  /// prefault only their own stream.
  const core::MappedDb* mapped = nullptr;
};

/// Lifetime per-shard accounting snapshot (relaxed-atomic reads).
struct ShardStats {
  size_t first_batch = 0;
  size_t end_batch = 0;
  uint64_t sequences = 0;     ///< database sequences owned by the shard
  uint64_t padded_residues = 0;  ///< kernel-walked residues per query pass
  int node = -1;              ///< NUMA node the shard is pinned to (-1: none)
  unsigned threads = 0;
  bool bound = false;         ///< mbind of the shard's columns succeeded
  uint64_t searches = 0;
  uint64_t batches = 0;       ///< batch-kernel batches scanned (lifetime)
  uint64_t cells = 0;         ///< DP cells (8-bit + rescore ladder)
  uint64_t useful_cells = 0;
  uint64_t rescored = 0;
  double busy_seconds = 0;    ///< summed worker wall time inside this shard
  uint64_t llc_misses = 0;    ///< PMU deltas over shard scans (0: no PMU)
  uint64_t cycles = 0;
  size_t queue_depth = 0;     ///< jobs outstanding on the shard's pool now

  /// Shard throughput over its own busy time (not wall time): imbalance
  /// shows up as shards with equal gcups but unequal busy_seconds.
  double gcups() const noexcept {
    return busy_seconds > 0
               ? static_cast<double>(cells) / busy_seconds / 1e9
               : 0.0;
  }
};

/// Runtime hyperparameter used when ShardOptions.shards == 0 (auto): lets
/// the GA tuner (tune::apply_runtime_settings, "shards=N") co-tune shard
/// count with batch-ILP and prefetch distance. 0 restores topology auto.
void set_shard_count_hint(int shards) noexcept;
int shard_count_hint() noexcept;

class ShardedSearch {
 public:
  /// Plan + pin + place. `db`/`packed` must outlive the instance. Fails
  /// with ConfigError{Unsupported} when opt.shards exceeds the batch count
  /// (a shard with no batches could never be scanned) or is negative.
  static core::ErrorOr<std::unique_ptr<ShardedSearch>> create(
      const seq::SequenceDatabase& db, const core::Batch32Db& packed,
      const ShardOptions& opt);

  ~ShardedSearch();
  ShardedSearch(const ShardedSearch&) = delete;
  ShardedSearch& operator=(const ShardedSearch&) = delete;

  /// Scenario-1 batch search across all shards concurrently. `cfg` must be
  /// validated with traceback off (same contract as engine::search_batch);
  /// ctx.pool is ignored (shards own their pools), ctx cancel/deadline is
  /// honored at batch-group granularity inside every shard, ctx.query_cache
  /// supplies the shared prepared query. Bit-identical to
  /// engine::search_batch for every shard count. Thread-safe.
  SearchResult search(const core::AlignConfig& cfg, seq::SeqView query,
                      size_t top_k, const ExecContext& ctx) const;

  size_t shard_count() const noexcept;
  ShardStats shard_stats(size_t s) const noexcept;
  parallel::NumaPolicy numa_policy() const noexcept { return numa_; }
  const parallel::Topology& topology() const noexcept { return topo_; }
  /// Contiguous batch range [first, end) owned by shard `s`.
  std::pair<size_t, size_t> shard_range(size_t s) const noexcept;

  /// Split [0, batch_count) into `shards` contiguous ranges balanced by
  /// padded cells (sum of max_len * lanes), the quantity the kernel
  /// actually walks per query residue — so length-sorted packings don't
  /// starve the short-sequence shards. Exposed for tests.
  static std::vector<std::pair<size_t, size_t>> plan_shards(
      const core::Batch32Db& packed, size_t shards);

 private:
  struct Shard;
  ShardedSearch(const seq::SequenceDatabase& db, const core::Batch32Db& packed);

  const seq::SequenceDatabase* db_;
  const core::Batch32Db* packed_;
  parallel::Topology topo_;
  parallel::NumaPolicy numa_ = parallel::NumaPolicy::Off;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace swve::align
