// Human-readable rendering of alignments (pairwise blocks, identity stats).
#pragma once

#include <string>

#include "core/params.hpp"
#include "core/result.hpp"
#include "seq/sequence.hpp"

namespace swve::align {

/// Column-level composition of an alignment derived from its CIGAR.
struct AlignmentStats {
  uint64_t columns = 0;     ///< aligned columns (M + I + D)
  uint64_t matches = 0;     ///< identical M columns
  uint64_t mismatches = 0;  ///< non-identical M columns
  uint64_t gaps = 0;        ///< I + D columns
  uint64_t gap_openings = 0;
  double identity() const {
    return columns ? static_cast<double>(matches) / static_cast<double>(columns)
                   : 0.0;
  }
};

/// Compute column statistics. Requires a traceback-bearing alignment
/// (throws std::invalid_argument on an empty CIGAR with positive score).
AlignmentStats alignment_stats(const seq::Sequence& query,
                               const seq::Sequence& target,
                               const core::Alignment& aln);

/// Render a BLAST-style pairwise block:
///   Query  12  MKTAYIAKQR--QISF  25
///              ||||||||||  ||.|
///   Sbjct  3   MKTAYIAKQRDDQITF  18
/// Wrapped at `width` columns. Coordinates are 1-based inclusive. Returns
/// "" for empty alignments.
std::string format_alignment(const seq::Sequence& query,
                             const seq::Sequence& target,
                             const core::Alignment& aln, int width = 60);

}  // namespace swve::align
