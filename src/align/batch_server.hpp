// Scenario 2: a centralized server accumulating many queries and scoring
// them against a shared database. The database is packed once into
// transposed 32/64-lane batches (Fig 5); each query is scored by the
// inter-sequence 8-bit kernel with exact 16/32-bit re-scoring of saturated
// lanes; queries fan out across threads. The paper found this batching
// "enhances computational efficiency by a factor of two in some cases".
//
// Like scenario 1, the scoring loop lives in the stateless `engine`
// namespace so the synchronous BatchServer facade and the async
// service::AlignService run identical code.
#pragma once

#include <vector>

#include "align/db_search.hpp"
#include "core/batch32.hpp"

namespace swve::align {

struct BatchQueryResult {
  SearchResult result;
  core::BatchSearchStats batch_stats;
};

namespace engine {

/// Stateless scenario-2 engine: score every query against the packed
/// database; one top-k result per query, in query order (deterministic for
/// any pool size). Cancellation/deadline is honored at per-query
/// granularity: remaining queries come back with `result.truncated` set.
std::vector<BatchQueryResult> batch_run(const seq::SequenceDatabase& db,
                                        const core::Batch32Db& bdb,
                                        const core::AlignConfig& cfg,
                                        const std::vector<seq::Sequence>& queries,
                                        size_t top_k, const ExecContext& ctx);

/// Widest batch-kernel lane count this CPU supports (64 with
/// AVX-512-VBMI, else 32).
int batch_server_lanes();

}  // namespace engine

class BatchServer {
 public:
  /// Packs the database for the widest batch kernel this CPU supports
  /// (64 lanes with AVX-512-VBMI, else 32).
  BatchServer(const seq::SequenceDatabase& db, AlignConfig cfg);

  /// Score every query against the database; returns one top-k result per
  /// query, in query order (deterministic for any thread count).
  std::vector<BatchQueryResult> run(const std::vector<seq::Sequence>& queries,
                                    size_t top_k,
                                    parallel::ThreadPool* pool = nullptr) const;

  /// Run with an explicit execution context (pool + cancel + deadline).
  std::vector<BatchQueryResult> run(const std::vector<seq::Sequence>& queries,
                                    size_t top_k, const ExecContext& ctx) const;

  /// Re-align one hit exactly, with traceback, using the diagonal kernel.
  core::Alignment realign(const seq::Sequence& query, const Hit& hit) const;

  int lanes() const noexcept { return bdb_.lanes(); }
  const core::Batch32Db& packed_db() const noexcept { return bdb_; }

 private:
  const seq::SequenceDatabase* db_;
  AlignConfig cfg_;
  core::Batch32Db bdb_;
};

}  // namespace swve::align
