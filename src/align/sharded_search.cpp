#include "align/sharded_search.hpp"

#include <algorithm>
#include <condition_variable>
#include <mutex>

#include "align/query_cache.hpp"
#include "core/dispatch.hpp"
#include "core/mapped_db.hpp"
#include "obs/pmu.hpp"
#include "perf/metrics.hpp"
#include "perf/timer.hpp"

namespace swve::align {

namespace {

/// Keep the k best hits of a range scanned in index order (same bounded
/// heap as db_search.cpp's; the merge relies on offer() being selection,
/// not ordering — any insertion order yields the same k survivors).
class TopK {
 public:
  explicit TopK(size_t k) : k_(k) {}
  void offer(const Hit& h) {
    if (h.score <= 0) return;
    hits_.push_back(h);
    std::push_heap(hits_.begin(), hits_.end());
    if (hits_.size() > k_) {
      std::pop_heap(hits_.begin(), hits_.end());
      hits_.pop_back();
    }
  }
  std::vector<Hit> sorted() && {
    std::sort(hits_.begin(), hits_.end());
    return std::move(hits_);
  }

 private:
  size_t k_;
  std::vector<Hit> hits_;
};

obs::TruncCause trunc_cause(const ExecContext& ctx) {
  return ctx.cancelled() ? obs::TruncCause::Cancelled
                         : obs::TruncCause::Deadline;
}

std::atomic<int> g_shard_hint{0};

}  // namespace

void set_shard_count_hint(int shards) noexcept {
  g_shard_hint.store(std::clamp(shards, 0, 64), std::memory_order_relaxed);
}
int shard_count_hint() noexcept {
  return g_shard_hint.load(std::memory_order_relaxed);
}

/// One shard: a contiguous batch range, its pinned pool + workspace arena,
/// and lifetime counters (relaxed atomics, read by shard_stats()).
struct ShardedSearch::Shard {
  size_t first_batch = 0;
  size_t end_batch = 0;
  uint64_t sequences = 0;
  uint64_t padded_residues = 0;
  int node = -1;
  bool bound = false;
  std::unique_ptr<parallel::ThreadPool> pool;
  std::unique_ptr<QueryStateCache> cache;

  std::atomic<uint64_t> searches{0};
  std::atomic<uint64_t> batches{0};
  std::atomic<uint64_t> cells{0};
  std::atomic<uint64_t> useful_cells{0};
  std::atomic<uint64_t> rescored{0};
  std::atomic<uint64_t> busy_ns{0};
  std::atomic<uint64_t> llc_misses{0};
  std::atomic<uint64_t> cycles{0};
};

ShardedSearch::ShardedSearch(const seq::SequenceDatabase& db,
                             const core::Batch32Db& packed)
    : db_(&db), packed_(&packed) {}

ShardedSearch::~ShardedSearch() = default;

std::vector<std::pair<size_t, size_t>> ShardedSearch::plan_shards(
    const core::Batch32Db& packed, size_t shards) {
  const size_t n = packed.batch_count();
  std::vector<std::pair<size_t, size_t>> ranges;
  if (shards == 0 || n == 0) return ranges;
  shards = std::min(shards, n);
  // Balance by padded cells per query residue: each batch costs
  // max_len * lanes kernel cells whatever it holds, so cutting at equal
  // fractions of that prefix equalizes DP work, not batch counts.
  const auto records = packed.batch_records();
  uint64_t total = 0;
  for (const auto& r : records)
    total += static_cast<uint64_t>(r.max_len) * packed.lanes();
  size_t begin = 0;
  uint64_t prefix = 0;
  for (size_t s = 0; s < shards; ++s) {
    const uint64_t target = total * (s + 1) / shards;
    size_t end = begin;
    // Leave at least one batch per remaining shard; always take one.
    const size_t max_end = n - (shards - 1 - s);
    while (end < max_end && (end == begin || prefix < target)) {
      prefix +=
          static_cast<uint64_t>(records[end].max_len) * packed.lanes();
      ++end;
    }
    ranges.emplace_back(begin, end);
    begin = end;
  }
  ranges.back().second = n;  // absorb rounding into the last (ragged) shard
  return ranges;
}

core::ErrorOr<std::unique_ptr<ShardedSearch>> ShardedSearch::create(
    const seq::SequenceDatabase& db, const core::Batch32Db& packed,
    const ShardOptions& opt) {
  using Code = core::ConfigError::Code;
  if (opt.shards < 0)
    return core::ConfigError{Code::Unsupported,
                             "ShardedSearch: shards must be >= 0"};
  const size_t batches = packed.batch_count();
  if (batches == 0)
    return core::ConfigError{Code::NoDatabase,
                             "ShardedSearch: packed database has no batches"};
  if (opt.shards > 0 && static_cast<size_t>(opt.shards) > batches)
    return core::ConfigError{
        Code::Unsupported,
        "ShardedSearch: shards (" + std::to_string(opt.shards) +
            ") exceeds packed batch count (" + std::to_string(batches) +
            "); a shard would own no batches"};

  std::unique_ptr<ShardedSearch> s(new ShardedSearch(db, packed));
  s->topo_ = parallel::Topology::detect();
  s->numa_ = parallel::numa_disabled_by_env() ? parallel::NumaPolicy::Off
                                              : opt.numa;
  size_t shards = static_cast<size_t>(opt.shards);
  if (shards == 0) {
    const int hint = shard_count_hint();
    shards = hint > 0 ? static_cast<size_t>(hint) : s->topo_.node_count();
    shards = std::min(shards, batches);  // auto degrades, never errors
  }
  const auto ranges = plan_shards(packed, shards);

  unsigned total_threads = opt.total_threads != 0
                               ? opt.total_threads
                               : std::max(1u, s->topo_.total_cpus());
  const unsigned per_shard =
      std::max(1u, total_threads / static_cast<unsigned>(ranges.size()));

  for (size_t i = 0; i < ranges.size(); ++i) {
    auto shard = std::make_unique<Shard>();
    shard->first_batch = ranges[i].first;
    shard->end_batch = ranges[i].second;
    for (size_t b = shard->first_batch; b < shard->end_batch; ++b) {
      const auto batch = packed.batch(b);
      shard->sequences += batch.count;
      shard->padded_residues +=
          static_cast<uint64_t>(batch.max_len) * packed.lanes();
    }
    std::vector<int> cpus;  // empty = unpinned
    if (s->numa_ != parallel::NumaPolicy::Off && !s->topo_.synthetic) {
      const auto& node =
          s->topo_.nodes[i % s->topo_.node_count()];
      shard->node = node.id;
      cpus = node.cpus;
    }
    shard->pool =
        std::make_unique<parallel::ThreadPool>(per_shard, std::move(cpus));
    // Per-shard workspace arena: leases never migrate across shards, so
    // first-touch puts each arena's pages on the shard's own node.
    shard->cache = std::make_unique<QueryStateCache>(
        /*capacity=*/8, /*max_pool=*/per_shard * 2);

    const auto range =
        packed.column_range(shard->first_batch, shard->end_batch);
    if (s->numa_ == parallel::NumaPolicy::Bind && shard->node >= 0)
      shard->bound = parallel::bind_memory_to_node(range.data(), range.size(),
                                                   shard->node);
    if (opt.mapped != nullptr)
      opt.mapped->advise_batch_columns(shard->first_batch, shard->end_batch,
                                       core::MappedDbOptions::Madvise::WillNeed);
    s->shards_.push_back(std::move(shard));
  }
  if (s->numa_ == parallel::NumaPolicy::Interleave && s->topo_.multi_node()) {
    const auto all = packed.column_bytes();
    parallel::interleave_memory(
        all.data(), all.size(),
        static_cast<unsigned>(s->topo_.node_count()));
  }
  return core::ErrorOr<std::unique_ptr<ShardedSearch>>(std::move(s));
}

size_t ShardedSearch::shard_count() const noexcept { return shards_.size(); }

std::pair<size_t, size_t> ShardedSearch::shard_range(size_t s) const noexcept {
  if (s >= shards_.size()) return {0, 0};
  return {shards_[s]->first_batch, shards_[s]->end_batch};
}

ShardStats ShardedSearch::shard_stats(size_t s) const noexcept {
  ShardStats out;
  if (s >= shards_.size()) return out;
  const Shard& sh = *shards_[s];
  out.first_batch = sh.first_batch;
  out.end_batch = sh.end_batch;
  out.sequences = sh.sequences;
  out.padded_residues = sh.padded_residues;
  out.node = sh.node;
  out.threads = sh.pool->size();
  out.bound = sh.bound;
  out.searches = sh.searches.load(std::memory_order_relaxed);
  out.batches = sh.batches.load(std::memory_order_relaxed);
  out.cells = sh.cells.load(std::memory_order_relaxed);
  out.useful_cells = sh.useful_cells.load(std::memory_order_relaxed);
  out.rescored = sh.rescored.load(std::memory_order_relaxed);
  out.busy_seconds =
      static_cast<double>(sh.busy_ns.load(std::memory_order_relaxed)) * 1e-9;
  out.llc_misses = sh.llc_misses.load(std::memory_order_relaxed);
  out.cycles = sh.cycles.load(std::memory_order_relaxed);
  out.queue_depth = sh.pool->pending();
  return out;
}

SearchResult ShardedSearch::search(const core::AlignConfig& cfg,
                                   seq::SeqView query, size_t top_k,
                                   const ExecContext& ctx) const {
  perf::Stopwatch sw;
  SearchResult out;
  out.query_length = query.length;
  out.db_residues = db_->total_residues();
  if (db_->empty() || query.empty()) return out;

  std::shared_ptr<const core::PreparedQuery> prep;
  if (ctx.query_cache != nullptr) prep = ctx.query_cache->prepared(query, cfg);

  const seq::SequenceDatabase& db = *db_;
  const core::Batch32Db& bdb = *packed_;
  const simd::Isa isa = simd::resolve_isa(cfg.isa);
  const int k_ilp = core::resolved_ilp(isa);
  const size_t nshards = shards_.size();

  // Phase 1: every shard scans its batch range concurrently, each worker
  // folding lane scores into a bounded per-worker heap; heaps are merged
  // per shard, then globally — selection under Hit's strict total order is
  // partition-shape independent, so this equals the unsharded answer.
  struct ShardRun {
    std::vector<std::vector<Hit>> worker_hits;  // [worker] sorted top-k
    core::BatchSearchStats stats;
    std::mutex mu;
  };
  std::vector<ShardRun> runs(nshards);
  std::atomic<bool> truncated{false};

  std::mutex done_mu;
  std::condition_variable done_cv;
  size_t shards_left = nshards;

  for (size_t si = 0; si < nshards; ++si) {
    Shard& shard = *shards_[si];
    ShardRun& run = runs[si];
    run.worker_hits.resize(shard.pool->size());
    const size_t nbatches = shard.end_batch - shard.first_batch;
    shard.searches.fetch_add(1, std::memory_order_relaxed);

    auto scan = [this, &db, &bdb, &cfg, &ctx, &run, &shard, &truncated, prep,
                 query, top_k, isa, k_ilp, si](size_t rel_begin,
                                               size_t rel_end, unsigned w) {
      const obs::PmuReading pmu0 = obs::PmuSession::instance().read();
      obs::Span span(ctx.trace, "chunk.shard_search");
      span.set_kernel(perf::batch_kernel_variant(k_ilp));
      span.set_ilp(static_cast<uint8_t>(k_ilp));
      span.set_index(si);
      span.set_isa(isa);
      span.set_width_bits(8);
      span.set_lanes(static_cast<uint32_t>(bdb.lanes()));
      auto lease = shard.cache->lease_workspace();
      core::Workspace& ws = lease.ws();
      core::BatchSearchStats local{};
      TopK top(top_k);
      core::AlignConfig wide = cfg;
      wide.width = core::Width::W16;
      const size_t b_begin = shard.first_batch + rel_begin;
      const size_t b_end = shard.first_batch + rel_end;
      uint64_t scanned = 0;
      for (size_t b = b_begin; b < b_end;) {
        if (ctx.should_stop()) {  // per-group cancellation/deadline check
          truncated.store(true, std::memory_order_relaxed);
          span.set_trunc(trunc_cause(ctx));
          break;
        }
        const int group = static_cast<int>(
            std::min<size_t>(static_cast<size_t>(k_ilp), b_end - b));
        core::Batch32Db::Batch batch[core::kMaxBatchInterleave];
        core::BatchCols cols[core::kMaxBatchInterleave];
        core::Batch8Result r8[core::kMaxBatchInterleave];
        for (int g = 0; g < group; ++g) {
          batch[g] = bdb.batch(b + static_cast<size_t>(g));
          cols[g] = core::BatchCols{batch[g].columns, batch[g].max_len};
        }
        core::batch32_align_u8_group(query, cols, group, bdb.lanes(), cfg, ws,
                                     isa, k_ilp, r8);
        for (int g = 0; g < group; ++g) {
          local.cells8 += static_cast<uint64_t>(batch[g].max_len) *
                          query.length * static_cast<uint64_t>(bdb.lanes());
          local.useful_cells8 += batch[g].real_residues * query.length;
          for (uint32_t k = 0; k < batch[g].count; ++k) {
            const uint32_t seq_idx = batch[g].seq_index[k];
            int score;
            if (r8[g].saturated_mask & (uint64_t{1} << k)) {
              core::Alignment a =
                  core::diag_align(query, db[seq_idx], wide, ws, prep.get());
              if (a.saturated) {
                core::AlignConfig w32 = wide;
                w32.width = core::Width::W32;
                a = core::diag_align(query, db[seq_idx], w32, ws, prep.get());
              }
              score = a.score;
              ++local.rescored;
              local.rescored_cells += a.stats.cells;
            } else {
              score = r8[g].max_score[k];
            }
            top.offer(Hit{seq_idx, score, -1, -1});
          }
        }
        scanned += static_cast<uint64_t>(group);
        b += static_cast<size_t>(group);
      }
      span.add_cells(local.cells8 + local.rescored_cells);
      span.set_useful_cells(local.useful_cells8 + local.rescored_cells);
      span.end();
      const obs::PmuReading pmu1 = obs::PmuSession::instance().read();
      const obs::PmuDelta d = obs::PmuSession::delta(pmu0, pmu1);
      shard.busy_ns.fetch_add(d.wall_ns, std::memory_order_relaxed);
      if (d.hw) {
        shard.llc_misses.fetch_add(d.llc_misses, std::memory_order_relaxed);
        shard.cycles.fetch_add(d.cycles, std::memory_order_relaxed);
      }
      shard.batches.fetch_add(scanned, std::memory_order_relaxed);
      shard.cells.fetch_add(local.cells8 + local.rescored_cells,
                            std::memory_order_relaxed);
      shard.useful_cells.fetch_add(local.useful_cells8,
                                   std::memory_order_relaxed);
      shard.rescored.fetch_add(local.rescored, std::memory_order_relaxed);
      {
        std::lock_guard<std::mutex> lk(run.mu);
        run.worker_hits[w] = std::move(top).sorted();
        run.stats += local;
      }
    };
    shard.pool->parallel_for_async(nbatches, std::move(scan),
                                   [&done_mu, &done_cv, &shards_left] {
                                     std::lock_guard<std::mutex> lk(done_mu);
                                     if (--shards_left == 0)
                                       done_cv.notify_all();
                                   });
  }
  {
    std::unique_lock<std::mutex> lk(done_mu);
    done_cv.wait(lk, [&shards_left] { return shards_left == 0; });
  }

  core::BatchSearchStats agg{};
  TopK merged(top_k);
  for (size_t si = 0; si < nshards; ++si) {
    agg += runs[si].stats;
    for (const auto& worker : runs[si].worker_hits)
      for (const Hit& h : worker) merged.offer(h);
  }
  out.truncated = truncated.load(std::memory_order_relaxed);
  out.batch_stats = agg;
  if (out.truncated) {  // partial answer; skip the exact re-alignment pass
    out.seconds = sw.seconds();
    return out;
  }

  // Phase 2: exact re-alignment of just the winners for end positions —
  // same pass as engine::search_batch, over the identical winner set.
  out.hits = std::move(merged).sorted();
  auto lease = QueryStateCache::lease(ctx.query_cache);
  core::Workspace& ws = lease.ws();
  for (Hit& h : out.hits) {
    core::Alignment a =
        core::diag_align(query, db[h.seq_index], cfg, ws, prep.get());
    h.end_query = a.end_query;
    h.end_ref = a.end_ref;
    out.stats += a.stats;
  }
  out.stats.cells += agg.cells8 + agg.rescored_cells;
  out.stats.vector_cells += agg.cells8;
  out.seconds = sw.seconds();
  return out;
}

}  // namespace swve::align
