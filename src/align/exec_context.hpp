// Execution context threaded through the scenario engines.
//
// The engines (engine::search_diagonal / search_batch / batch_run) are
// stateless: everything they need — the thread pool to fan out over, a
// cooperative cancellation flag, a deadline — arrives in an ExecContext.
// Cancellation/deadline is checked at sequence-chunk granularity: an engine
// polls should_stop() between sequences (diagonal path) or between batches
// (batch path) and returns early with the result marked truncated.
#pragma once

#include <atomic>
#include <chrono>

#include "obs/trace.hpp"
#include "parallel/thread_pool.hpp"

namespace swve::align {

class QueryStateCache;

struct ExecContext {
  using Clock = std::chrono::steady_clock;

  /// Pool for intra-request parallelism; null runs single-threaded.
  parallel::ThreadPool* pool = nullptr;

  /// Optional query-state cache (prepared query feeds + pooled workspaces,
  /// see align::QueryStateCache). Null means build everything per request —
  /// bit-identical results, just more per-request setup.
  QueryStateCache* query_cache = nullptr;

  /// Optional external cancellation: when *cancel becomes true the engine
  /// stops at the next chunk boundary.
  const std::atomic<bool>* cancel = nullptr;

  /// Optional deadline; time_point{} (epoch) means none.
  Clock::time_point deadline{};

  /// Tracing: engines open obs::Span chunks against this. Inactive (no
  /// sink) by default, in which case every span call is one null check.
  obs::TraceContext trace{};

  bool has_deadline() const noexcept {
    return deadline.time_since_epoch().count() != 0;
  }
  bool expired() const noexcept {
    return has_deadline() && Clock::now() >= deadline;
  }
  bool cancelled() const noexcept {
    return cancel != nullptr && cancel->load(std::memory_order_relaxed);
  }
  /// Polled by engines between chunks. Reads the clock only when a deadline
  /// is set, so the common (no-deadline) path costs one predictable branch.
  bool should_stop() const noexcept { return cancelled() || expired(); }
};

}  // namespace swve::align
