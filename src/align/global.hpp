// Global (Needleman-Wunsch) and semi-global alignment.
//
// The paper — and this library's SIMD kernels — target local
// Smith-Waterman; real pipelines built on it (read mapping, MSA seeding,
// the paper's scenario 3) regularly also need the global family. This
// module provides exact scalar implementations with full traceback, sharing
// the library's scoring configuration, gap conventions, and CIGAR
// machinery. Vectorizing these modes is listed as future work in DESIGN.md
// (their negative boundary conditions do not fit the zero-clamped unsigned
// domain of the diagonal kernel).
//
// Modes:
//   Global      both sequences end-to-end (Needleman-Wunsch); end gaps pay.
//   SemiGlobal  the whole QUERY must align, gaps at the ends of the
//               REFERENCE are free ("glocal": read-vs-window mapping).
//   Overlap     free end gaps on both sequences (dovetail/overlap
//               detection): the path must touch (0,*)/(*,0) and end on the
//               last row or column, interior gaps pay.
#pragma once

#include "core/params.hpp"
#include "core/result.hpp"
#include "seq/sequence.hpp"

namespace swve::align {

enum class GlobalMode { Global, SemiGlobal, Overlap };

/// Align under `mode`. Uses cfg's scoring/gap settings; cfg.width/isa are
/// ignored (exact 32-bit scalar), cfg.band restricts |i-j| like the local
/// kernel (with out-of-band treated as unreachable, score -inf).
/// cfg.traceback controls CIGAR production. The returned Alignment's
/// begin/end are the aligned spans of each sequence (for Global the spans
/// are the whole sequences).
core::Alignment global_align(seq::SeqView query, seq::SeqView reference,
                             const core::AlignConfig& cfg,
                             GlobalMode mode = GlobalMode::Global);

}  // namespace swve::align
