#include "align/stats.hpp"

#include <cmath>
#include <random>
#include <stdexcept>
#include <vector>

#include "core/dispatch.hpp"
#include "seq/synthetic.hpp"

namespace swve::align {

namespace {
constexpr double kEulerGamma = 0.5772156649015329;

double sum_exp(const matrix::ScoreMatrix& m, std::span<const double> bg,
               double lambda) {
  double s = 0;
  const int dim = static_cast<int>(bg.size());
  for (int a = 0; a < dim; ++a) {
    if (bg[static_cast<size_t>(a)] == 0) continue;
    for (int b = 0; b < dim; ++b) {
      if (bg[static_cast<size_t>(b)] == 0) continue;
      s += bg[static_cast<size_t>(a)] * bg[static_cast<size_t>(b)] *
           std::exp(lambda *
                    m.score(static_cast<uint8_t>(a), static_cast<uint8_t>(b)));
    }
  }
  return s;
}
}  // namespace

KarlinParams karlin_ungapped(const matrix::ScoreMatrix& matrix,
                             std::span<const double> background) {
  if (background.empty() ||
      static_cast<int>(background.size()) > matrix.dim())
    throw std::invalid_argument("karlin_ungapped: background size mismatch");

  // Requirement for the Gumbel regime: negative expected score, positive
  // maximum score.
  double expected = 0;
  const int dim = static_cast<int>(background.size());
  for (int a = 0; a < dim; ++a)
    for (int b = 0; b < dim; ++b)
      expected += background[static_cast<size_t>(a)] *
                  background[static_cast<size_t>(b)] *
                  matrix.score(static_cast<uint8_t>(a), static_cast<uint8_t>(b));
  if (expected >= 0)
    throw std::invalid_argument(
        "karlin_ungapped: expected score must be negative");

  // f(lambda) = sum p_i p_j exp(lambda s_ij): f(0) = 1, dips below 1 (E[s] <
  // 0), then grows without bound (max score > 0). Bracket the nontrivial
  // root and bisect.
  double hi = 0.5;
  while (sum_exp(matrix, background, hi) < 1.0) {
    hi *= 2;
    if (hi > 100)
      throw std::runtime_error("karlin_ungapped: failed to bracket lambda");
  }
  double lo = hi / 2;
  while (sum_exp(matrix, background, lo) > 1.0) lo /= 2;
  for (int it = 0; it < 200; ++it) {
    double mid = 0.5 * (lo + hi);
    (sum_exp(matrix, background, mid) < 1.0 ? lo : hi) = mid;
  }
  const double lambda = 0.5 * (lo + hi);

  // Relative entropy H = sum q_ij * lambda * s_ij with q_ij the aligned-pair
  // frequencies p_i p_j exp(lambda s_ij).
  double H = 0;
  for (int a = 0; a < dim; ++a)
    for (int b = 0; b < dim; ++b) {
      double s = matrix.score(static_cast<uint8_t>(a), static_cast<uint8_t>(b));
      double q = background[static_cast<size_t>(a)] *
                 background[static_cast<size_t>(b)] * std::exp(lambda * s);
      H += q * lambda * s;
    }

  KarlinParams p;
  p.lambda = lambda;
  p.H = H;
  p.K = H / lambda;  // documented rough approximation
  p.gapped = false;
  return p;
}

std::optional<KarlinParams> published_gapped(const std::string& matrix_name,
                                             int gap_open, int gap_extend) {
  // ALP / NCBI-BLAST published gapped Gumbel parameters.
  struct Row {
    const char* matrix;
    int open, ext;
    double lambda, K, H;
  };
  static constexpr Row kTable[] = {
      {"blosum62", 11, 1, 0.267, 0.041, 0.140},
      {"blosum62", 10, 1, 0.243, 0.035, 0.120},
      {"blosum62", 12, 1, 0.280, 0.046, 0.190},
      {"blosum62", 10, 2, 0.255, 0.035, 0.130},
      {"blosum50", 13, 2, 0.232, 0.057, 0.110},
      {"blosum50", 10, 3, 0.210, 0.040, 0.090},
      {"blosum45", 14, 2, 0.202, 0.041, 0.090},
      {"blosum80", 10, 1, 0.300, 0.072, 0.270},
      {"blosum90", 10, 1, 0.310, 0.084, 0.310},
      {"pam250", 14, 2, 0.174, 0.023, 0.070},
      {"pam120", 16, 2, 0.280, 0.056, 0.250},
  };
  for (const Row& r : kTable)
    if (matrix_name == r.matrix && gap_open == r.open && gap_extend == r.ext) {
      KarlinParams p;
      p.lambda = r.lambda;
      p.K = r.K;
      p.H = r.H;
      p.gapped = true;
      return p;
    }
  return std::nullopt;
}

KarlinParams calibrate_gapped(const core::AlignConfig& cfg, int samples,
                              uint32_t len, uint64_t seed) {
  if (samples < 30) throw std::invalid_argument("calibrate_gapped: samples < 30");
  core::AlignConfig c = cfg;
  c.traceback = false;
  core::Workspace ws;
  std::vector<double> scores;
  scores.reserve(static_cast<size_t>(samples));
  const seq::AlphabetKind kind = c.scheme == core::ScoreScheme::Matrix
                                     ? c.matrix->alphabet().kind()
                                     : seq::AlphabetKind::Protein;
  for (int k = 0; k < samples; ++k) {
    auto q = seq::generate_sequence(seed + 2 * static_cast<uint64_t>(k), len, kind);
    auto r =
        seq::generate_sequence(seed + 2 * static_cast<uint64_t>(k) + 1, len, kind);
    scores.push_back(core::diag_align(q, r, c, ws).score);
  }

  double mean = 0;
  for (double s : scores) mean += s;
  mean /= samples;
  double var = 0;
  for (double s : scores) var += (s - mean) * (s - mean);
  var /= (samples - 1);
  if (var <= 0) throw std::runtime_error("calibrate_gapped: degenerate scores");

  KarlinParams p;
  p.lambda = M_PI / std::sqrt(6.0 * var);
  const double mu = mean - kEulerGamma / p.lambda;
  p.K = std::exp(p.lambda * mu) / (static_cast<double>(len) * len);
  p.H = 0;
  p.gapped = true;
  return p;
}

double evalue(const KarlinParams& p, int score, uint64_t query_length,
              uint64_t db_residues) {
  return p.K * static_cast<double>(query_length) *
         static_cast<double>(db_residues) * std::exp(-p.lambda * score);
}

double bitscore(const KarlinParams& p, int score) {
  return (p.lambda * score - std::log(p.K)) / std::log(2.0);
}

}  // namespace swve::align
